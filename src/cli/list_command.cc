// `ldpr list`: the discovery surface — subcommands, their flag
// summaries, and whatever scenarios the binary linked in (the full
// bench registry when built with scenarios, empty otherwise).

#include <cstdio>
#include <string>

#include "cli/cli.h"
#include "runner/registry.h"

namespace ldpr {
namespace cli {

int ListCommand(const FlagParser& flags) {
  for (const std::string& unused : flags.unused_flags()) {
    std::fprintf(stderr, "error: unknown flag --%s\n", unused.c_str());
    return 1;
  }
  std::printf(
      "commands:\n"
      "  run           --protocol --attack --dataset|--csv --epsilon --beta\n"
      "                --eta --targets --trials --seed --scale --top_k\n"
      "                --threads --out FILE\n"
      "  stream        run's shared flags plus --window --stride --wave\n"
      "  shard-worker  spec flags (--protocol --attack --dataset --d --n\n"
      "                --scale --epsilon --beta --targets --eta --seed\n"
      "                --users_per_chunk --reports_per_chunk) plus\n"
      "                --workers N --worker I --out FILE|-\n"
      "  shard-merge   spec flags plus partial files as operands,\n"
      "                --allow_missing, --out DIR, or --inprocess\n"
      "                --workers N for the in-process reference\n"
      "  list          this listing\n");

  const auto scenarios = ScenarioRegistry::Global().scenarios();
  if (scenarios.empty()) {
    std::printf(
        "\nscenarios: none linked into this binary (use ldpr_bench)\n");
    return 0;
  }
  std::printf("\nscenarios (runnable via ldpr_bench --scenario <id>):\n");
  for (const Scenario* scenario : scenarios) {
    std::printf("  %-18s %s\n", scenario->spec.id.c_str(),
                scenario->spec.title.c_str());
  }
  return 0;
}

}  // namespace cli
}  // namespace ldpr
