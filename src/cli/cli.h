// The `ldpr` subcommand CLI: one binary fronting every interactive
// entry point of the library behind a shared flag layer.
//
//   ldpr run           batch poisoning + recovery pipeline
//   ldpr stream        windowed streaming ingest replay
//   ldpr shard-worker  compute one worker's partial support counts
//   ldpr shard-merge   merge worker partials into a result tree
//   ldpr list          subcommands and registered scenarios
//
// Shared flags (--protocol/--attack/--dataset/--epsilon/--beta/
// --eta/--targets/--seed/--scale/...) parse identically across
// subcommands; each subcommand validates the subset it uses and
// rejects unknown flags via FlagParser::unused_flags().
//
// `tools/ldprecover_cli.cc` survives as a thin deprecation shim that
// maps its legacy flag-only interface (--stream selects the mode)
// onto `ldpr stream` / `ldpr run`.
//
// Exit codes: 0 success, 1 any error (bad flags, I/O, failed merge) —
// the same contract the legacy binary had.

#ifndef LDPR_CLI_CLI_H_
#define LDPR_CLI_CLI_H_

#include <cstdio>
#include <memory>
#include <string>

#include "data/dataset.h"
#include "runner/result_sink.h"
#include "util/flags.h"
#include "util/status.h"

namespace ldpr {
namespace cli {

/// Dataset selection shared by `run` and `stream`: --csv FILE, or
/// --dataset (ipums|fire|zipf|uniform) with --d/--n/--zipf_s shape
/// knobs for the synthetic generators.
StatusOr<Dataset> ParseDatasetFlags(const FlagParser& flags);

/// The console-plus-optional-file sink `run` and `stream` write
/// through: always a ConsoleSink, plus a CsvSink (or JsonlSink when
/// `out_path` ends in .jsonl) when `out_path` is non-empty.  The
/// scenario banner carries `scenario_id`.  Errors when the file
/// cannot be opened — callers fail fast before any expensive run.
StatusOr<std::unique_ptr<ResultSink>> MakeRunSink(
    const std::string& out_path, const std::string& scenario_id);

/// Subcommand entry points; each consumes the flags *after* the
/// subcommand word and returns the process exit code.
int RunCommand(const FlagParser& flags);
int StreamCommand(const FlagParser& flags);
int ShardWorkerCommand(const FlagParser& flags);
int ShardMergeCommand(const FlagParser& flags);
int ListCommand(const FlagParser& flags);

void PrintUsage(std::FILE* out);

/// Full dispatch: argv[1] selects the subcommand, the rest parses
/// through one FlagParser handed to the subcommand.
int Main(int argc, char** argv);

}  // namespace cli
}  // namespace ldpr

#endif  // LDPR_CLI_CLI_H_
