// `ldpr stream`: replay the dataset as a time-ordered arrival stream
// through the windowed streaming engine (src/stream/) and print one
// row per closed window.
//
//   # A mid-stream MGA wave over sliding windows:
//   ldpr stream --protocol=OUE --dataset=zipf
//       --wave=wave --beta=0.25 --window=10000 --stride=5000
//
// Extra knobs over the shared layer: --window [n/10 reports],
// --stride [0 = tumbling], --wave [constant]
// (none|constant|wave|ramp; `wave` switches the MGA cohort on over
// the middle [0.3n, 0.7n) of the stream), with --beta as the (peak)
// attacker fraction and --targets as the MGA target count.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "ldp/factory.h"
#include "stream/streaming_engine.h"

namespace ldpr {
namespace cli {
namespace {

StatusOr<WaveShape> ParseWaveShape(const std::string& name) {
  if (name == "none") return WaveShape::kNone;
  if (name == "constant") return WaveShape::kConstant;
  if (name == "wave") return WaveShape::kWave;
  if (name == "ramp") return WaveShape::kRamp;
  return InvalidArgumentError("unknown wave shape: " + name);
}

}  // namespace

int StreamCommand(const FlagParser& flags) {
  const auto protocol_or =
      ParseProtocolKind(flags.GetString("protocol", "GRR"));
  auto dataset_or = ParseDatasetFlags(flags);
  const auto epsilon = flags.GetDouble("epsilon", 0.5);
  const auto beta = flags.GetDouble("beta", 0.05);
  const auto eta = flags.GetDouble("eta", 0.2);
  const auto targets = flags.GetInt("targets", 10);
  const auto seed = flags.GetInt("seed", 1);
  const auto scale = flags.GetDouble("scale", 1.0);
  const auto window = flags.GetInt("window", 0);
  const auto stride = flags.GetInt("stride", 0);
  const auto wave_or = ParseWaveShape(flags.GetString("wave", "constant"));
  const std::string out_path = flags.GetString("out", "");
  // The legacy shim forwards its full flag set; tolerate its mode
  // selector and the batch-only knobs the old binary accepted in
  // stream mode.
  (void)flags.GetBool("stream", false);
  (void)flags.GetString("attack", "AA");  // the stream attacker is MGA
  (void)flags.GetInt("trials", 5);
  (void)flags.GetInt("top_k", 10);
  (void)flags.GetInt("threads", 0);

  for (const Status& status :
       {protocol_or.ok() ? Status::Ok() : protocol_or.status(),
        dataset_or.ok() ? Status::Ok() : dataset_or.status(),
        epsilon.ok() ? Status::Ok() : epsilon.status(),
        beta.ok() ? Status::Ok() : beta.status(),
        eta.ok() ? Status::Ok() : eta.status(),
        targets.ok() ? Status::Ok() : targets.status(),
        seed.ok() ? Status::Ok() : seed.status(),
        scale.ok() ? Status::Ok() : scale.status(),
        window.ok() ? Status::Ok() : window.status(),
        stride.ok() ? Status::Ok() : stride.status(),
        wave_or.ok() ? Status::Ok() : wave_or.status()}) {
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  for (const std::string& unused : flags.unused_flags()) {
    std::fprintf(stderr, "error: unknown flag --%s\n", unused.c_str());
    return 1;
  }
  if (!(*scale > 0.0 && *scale <= 1.0)) {
    std::fprintf(stderr,
                 "error: INVALID_ARGUMENT: --scale must be in (0, 1]\n");
    return 1;
  }
  const Dataset dataset = ScaleDataset(*dataset_or, *scale);

  StreamSpec spec;
  spec.total_reports = dataset.num_users();
  spec.window_reports = *window > 0
                            ? static_cast<size_t>(*window)
                            : std::max<size_t>(1, spec.total_reports / 10);
  spec.stride_reports = *stride > 0 ? static_cast<size_t>(*stride) : 0;
  spec.item_counts = dataset.item_counts;
  spec.wave = *wave_or;
  spec.attacker_fraction = spec.wave == WaveShape::kNone ? 0.0 : *beta;
  spec.num_targets = static_cast<size_t>(*targets);
  if (spec.wave == WaveShape::kWave) {
    spec.wave_start = spec.total_reports * 3 / 10;
    spec.wave_end = spec.total_reports * 7 / 10;
  }
  if (const Status valid = ValidateStreamSpec(spec); !valid.ok()) {
    std::fprintf(stderr, "error: %s\n", valid.ToString().c_str());
    return 1;
  }

  auto sink_or = MakeRunSink(out_path, "cli-stream");
  if (!sink_or.ok()) {
    std::fprintf(stderr, "error: %s\n", sink_or.status().ToString().c_str());
    return 1;
  }
  ResultSink& sink = **sink_or;

  const auto protocol =
      MakeProtocol(*protocol_or, dataset.domain_size(), *epsilon);
  StreamEngineOptions options;
  options.recover.eta = *eta;
  const double base = ApproxGenuineSuspicionRate(*protocol, spec.num_targets);
  const double peak =
      spec.attacker_fraction > 0.0 ? spec.attacker_fraction : 0.25;
  options.detect_fraction = base + peak * (1.0 - base) / 2.0;

  std::printf("ldpr stream: %s on %s (d=%zu, n=%llu), eps=%g, "
              "wave=%s, beta=%g, window=%zu, stride=%zu\n\n",
              ProtocolKindName(*protocol_or), dataset.name.c_str(),
              dataset.domain_size(),
              static_cast<unsigned long long>(spec.total_reports), *epsilon,
              WaveShapeName(spec.wave), spec.attacker_fraction,
              spec.window_reports, spec.stride_reports);

  const StreamSummary summary =
      RunStream(*protocol, spec, options, static_cast<uint64_t>(*seed));

  sink.BeginTable("Streaming windows",
                  {"Reports", "Attackers", "MSE", "RecMSE", "Detected"});
  for (const WindowResult& w : summary.windows) {
    sink.AddRow("win" + std::to_string(w.index),
                {static_cast<double>(w.report_count),
                 static_cast<double>(w.attackers), w.mse_estimate,
                 w.mse_recovered, w.detected ? 1.0 : 0.0});
  }
  sink.EndTable();

  if (summary.windows_to_detection == kNoDetection) {
    std::printf("windows to detection: none flagged\n");
  } else {
    std::printf("windows to detection: %lld after attack onset\n",
                static_cast<long long>(summary.windows_to_detection));
  }
  std::printf("total: %zu reports (%zu attackers), peak buffer %zu "
              "reports, mean window MSE %.3e (recovered %.3e)\n",
              summary.total_reports, summary.total_attackers,
              summary.peak_buffered_reports, summary.mean_mse_estimate,
              summary.mean_mse_recovered);

  const Status finish = sink.Finish();
  if (!finish.ok()) {
    std::fprintf(stderr, "error: %s\n", finish.ToString().c_str());
    return 1;
  }
  if (!out_path.empty()) std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace cli
}  // namespace ldpr
