// `ldpr shard-worker` / `ldpr shard-merge`: the multi-process face of
// the sharded aggregation pipeline (src/shard/).
//
//   # Split one MGA trial across 4 worker processes, then merge
//   # (each command on one shell line; wrapped here for width):
//   for i in 0 1 2 3; do
//     ldpr shard-worker --protocol=OUE --attack=MGA --dataset=zipf
//         --seed=7 --workers=4 --worker=$i --out=part$i.jsonl
//   done
//   ldpr shard-merge --protocol=OUE --attack=MGA --dataset=zipf
//       --seed=7 --out=merged/ part0.jsonl part1.jsonl part2.jsonl
//       part3.jsonl
//
//   # The in-process reference tree for ldpr_diff --exact:
//   ldpr shard-merge --protocol=OUE --attack=MGA --dataset=zipf
//       --seed=7 --workers=4 --inprocess --out=reference/
//
// Both commands derive the trial from the same spec flags
// (--protocol/--epsilon/--dataset/--d/--n/--scale/--attack/--beta/
// --targets/--eta/--seed/--users_per_chunk/--reports_per_chunk), so
// the merger independently recomputes the chunk geometry the workers
// used and validates completeness against it.  Dataset must be a
// named generator (no --csv): every process has to be able to rebuild
// the population from the spec alone.
//
// shard-worker extras: --workers N, --worker I, --out FILE ("-" =
// stdout).  shard-merge extras: partial files as positional operands,
// --out DIR (result tree: results.csv/results.jsonl/manifest.json),
// --allow_missing (estimate from surviving coverage instead of
// failing), --inprocess + --workers N (compute the reference merge
// without reading files).

#include <cstdio>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "ldp/factory.h"
#include "runner/scenario_runner.h"
#include "shard/merge.h"
#include "shard/shard_task.h"
#include "shard/wire.h"
#include "sim/pipeline.h"

namespace ldpr {
namespace cli {
namespace {

// Parses the shared spec flags.  Every flag has the library default,
// so a worker and a merger launched with the same explicit flags
// always agree on the spec (and therefore on chunk geometry).
StatusOr<ShardTaskSpec> ParseShardSpec(const FlagParser& flags) {
  ShardTaskSpec spec;
  const auto protocol = ParseProtocolKind(flags.GetString("protocol", "GRR"));
  if (!protocol.ok()) return protocol.status();
  spec.protocol = *protocol;
  const auto attack = ParseAttackKind(flags.GetString("attack", "none"));
  if (!attack.ok()) return attack.status();
  spec.attack = *attack;
  if (!flags.GetString("csv", "").empty())
    return InvalidArgumentError(
        "shard commands need a named dataset generator, not --csv: every "
        "process must rebuild the population from the spec alone");
  spec.dataset = flags.GetString("dataset", "zipf");
  const auto epsilon = flags.GetDouble("epsilon", spec.epsilon);
  if (!epsilon.ok()) return epsilon.status();
  spec.epsilon = *epsilon;
  const auto d = flags.GetInt("d", 0);
  if (!d.ok()) return d.status();
  if (*d < 0) return InvalidArgumentError("--d must be >= 0");
  spec.d_override = static_cast<uint64_t>(*d);
  const auto n = flags.GetInt("n", 0);
  if (!n.ok()) return n.status();
  if (*n < 0) return InvalidArgumentError("--n must be >= 0");
  spec.n_override = static_cast<uint64_t>(*n);
  const auto scale = flags.GetDouble("scale", 1.0);
  if (!scale.ok()) return scale.status();
  if (!(*scale > 0.0 && *scale <= 1.0))
    return InvalidArgumentError("--scale must be in (0, 1]");
  spec.scale = *scale;
  const auto beta = flags.GetDouble("beta", spec.beta);
  if (!beta.ok()) return beta.status();
  spec.beta = *beta;
  const auto targets = flags.GetInt("targets", 10);
  if (!targets.ok()) return targets.status();
  if (*targets < 1) return InvalidArgumentError("--targets must be >= 1");
  spec.num_targets = static_cast<uint64_t>(*targets);
  const auto eta = flags.GetDouble("eta", spec.eta);
  if (!eta.ok()) return eta.status();
  spec.eta = *eta;
  const auto seed = flags.GetInt("seed", 1);
  if (!seed.ok()) return seed.status();
  spec.seed = static_cast<uint64_t>(*seed);
  const auto upc = flags.GetInt("users_per_chunk", 0);
  if (!upc.ok()) return upc.status();
  if (*upc < 0) return InvalidArgumentError("--users_per_chunk must be >= 0");
  if (*upc > 0) spec.chunking.users_per_chunk = static_cast<uint64_t>(*upc);
  const auto rpc = flags.GetInt("reports_per_chunk", 0);
  if (!rpc.ok()) return rpc.status();
  if (*rpc < 0)
    return InvalidArgumentError("--reports_per_chunk must be >= 0");
  if (*rpc > 0) spec.chunking.reports_per_chunk = static_cast<uint64_t>(*rpc);
  return spec;
}

StatusOr<ShardTaskPlan> ResolvePlan(const ShardTaskSpec& spec,
                                    Dataset* dataset_out) {
  auto dataset = ResolveBenchDataset(spec.dataset, spec.scale,
                                     static_cast<size_t>(spec.d_override),
                                     spec.n_override);
  if (!dataset.ok()) return dataset.status();
  auto plan = BuildShardTaskPlan(spec, *dataset);
  if (!plan.ok()) return plan.status();
  if (dataset_out != nullptr) *dataset_out = *std::move(dataset);
  return plan;
}

int FailUnusedFlags(const FlagParser& flags) {
  for (const std::string& unused : flags.unused_flags()) {
    std::fprintf(stderr, "error: unknown flag --%s\n", unused.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int ShardWorkerCommand(const FlagParser& flags) {
  auto spec = ParseShardSpec(flags);
  const auto workers = flags.GetInt("workers", 1);
  const auto worker = flags.GetInt("worker", 0);
  const std::string out_path = flags.GetString("out", "-");
  for (const Status& status :
       {spec.ok() ? Status::Ok() : spec.status(),
        workers.ok() ? Status::Ok() : workers.status(),
        worker.ok() ? Status::Ok() : worker.status()}) {
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (int rc = FailUnusedFlags(flags); rc != 0) return rc;
  if (!flags.positional().empty()) {
    std::fprintf(stderr, "error: shard-worker takes no positional operands\n");
    return 1;
  }
  if (*workers < 1 || *worker < 0 || *worker >= *workers) {
    std::fprintf(stderr,
                 "error: need --workers >= 1 and 0 <= --worker < workers\n");
    return 1;
  }

  auto plan = ResolvePlan(*spec, nullptr);
  if (!plan.ok()) {
    std::fprintf(stderr, "error: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  const std::vector<PartialRecord> records = ComputeWorkerPartials(
      *plan, static_cast<uint64_t>(*worker), static_cast<uint64_t>(*workers));
  const Status written = WritePartialFile(out_path, records);
  if (!written.ok()) {
    std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
    return 1;
  }
  if (out_path != "-") {
    std::fprintf(stderr,
                 "shard-worker %lld/%lld: %zu partial record(s) -> %s\n",
                 static_cast<long long>(*worker),
                 static_cast<long long>(*workers), records.size(),
                 out_path.c_str());
  }
  return 0;
}

int ShardMergeCommand(const FlagParser& flags) {
  auto spec = ParseShardSpec(flags);
  const auto workers = flags.GetInt("workers", 1);
  const bool inprocess = flags.GetBool("inprocess", false);
  const bool allow_missing = flags.GetBool("allow_missing", false);
  const std::string out_dir = flags.GetString("out", "");
  for (const Status& status :
       {spec.ok() ? Status::Ok() : spec.status(),
        workers.ok() ? Status::Ok() : workers.status()}) {
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (int rc = FailUnusedFlags(flags); rc != 0) return rc;
  if (inprocess && !flags.positional().empty()) {
    std::fprintf(stderr,
                 "error: --inprocess computes its own partials; drop the "
                 "file operands\n");
    return 1;
  }
  if (!inprocess && flags.positional().empty()) {
    std::fprintf(stderr, "error: no partial files to merge (or --inprocess)\n");
    return 1;
  }

  Dataset dataset;
  auto plan = ResolvePlan(*spec, &dataset);
  if (!plan.ok()) {
    std::fprintf(stderr, "error: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  StatusOr<MergedPartials> merged = [&]() -> StatusOr<MergedPartials> {
    if (inprocess) {
      if (*workers < 1)
        return InvalidArgumentError("--workers must be >= 1 for --inprocess");
      return RunShardTaskInProcess(*plan, static_cast<uint64_t>(*workers));
    }
    std::vector<std::string> lines;
    for (const std::string& path : flags.positional()) {
      auto file_lines = ReadPartialLines(path);
      if (!file_lines.ok()) return file_lines.status();
      for (std::string& line : *file_lines) lines.push_back(std::move(line));
    }
    MergeOptions options;
    options.allow_missing = allow_missing;
    return MergeShardPartials(*plan, lines, options);
  }();
  if (!merged.ok()) {
    std::fprintf(stderr, "error: %s\n", merged.status().ToString().c_str());
    return 1;
  }

  const ShardOutcome outcome = ComputeShardOutcome(*plan, dataset, *merged);
  const MergeStats& stats = merged->stats;
  std::printf(
      "shard-merge: %zu line(s), %zu used, %zu rejected, %zu duplicate(s) "
      "dropped\n"
      "coverage: %llu/%llu users, %llu/%llu reports, %llu chunk(s) lost\n"
      "poisoned MSE %.6e, recovered MSE %.6e\n",
      stats.lines_total, stats.records_used, stats.lines_rejected,
      stats.duplicates_dropped,
      static_cast<unsigned long long>(stats.users_covered),
      static_cast<unsigned long long>(plan->n),
      static_cast<unsigned long long>(stats.reports_covered),
      static_cast<unsigned long long>(plan->m),
      static_cast<unsigned long long>(stats.genuine_chunks_lost +
                                      stats.malicious_chunks_lost),
      outcome.poisoned_mse, outcome.recovered_mse);

  if (!out_dir.empty()) {
    const Status written =
        WriteShardResultTree(out_dir, *plan, dataset, outcome, stats);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s/{results.csv,results.jsonl,manifest.json}\n",
                out_dir.c_str());
  }
  return 0;
}

}  // namespace cli
}  // namespace ldpr
