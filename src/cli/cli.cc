#include "cli/cli.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "data/loader.h"
#include "data/synthetic.h"

namespace ldpr {
namespace cli {

StatusOr<Dataset> ParseDatasetFlags(const FlagParser& flags) {
  const std::string csv = flags.GetString("csv", "");
  if (!csv.empty()) {
    auto loaded = LoadItemCsv(csv);
    if (!loaded.ok()) return loaded.status();
    return std::move(loaded).value().dataset;
  }
  const std::string name = flags.GetString("dataset", "ipums");
  const auto d = flags.GetInt("d", 102);
  const auto n = flags.GetInt("n", 100000);
  const auto s = flags.GetDouble("zipf_s", 1.0);
  if (!d.ok()) return d.status();
  if (!n.ok()) return n.status();
  if (!s.ok()) return s.status();
  if (*d < 2) return InvalidArgumentError("--d must be >= 2");
  if (*n < 1) return InvalidArgumentError("--n must be >= 1");
  if (name == "ipums") return MakeIpumsLike();
  if (name == "fire") return MakeFireLike();
  if (name == "zipf") {
    return MakeZipfDataset("zipf", static_cast<size_t>(*d),
                           static_cast<uint64_t>(*n), *s, /*shuffle_seed=*/17);
  }
  if (name == "uniform") {
    return MakeUniformDataset("uniform", static_cast<size_t>(*d),
                              static_cast<uint64_t>(*n));
  }
  return InvalidArgumentError("unknown dataset: " + name);
}

StatusOr<std::unique_ptr<ResultSink>> MakeRunSink(
    const std::string& out_path, const std::string& scenario_id) {
  // The console table and the optional --out file are two sinks over
  // one row stream, so the file always mirrors what was printed.
  // Opened before the run so a bad path fails in milliseconds, not
  // after a paper-scale experiment.
  std::vector<std::unique_ptr<ResultSink>> sinks;
  sinks.push_back(std::make_unique<ConsoleSink>());
  if (!out_path.empty()) {
    const bool jsonl = out_path.size() >= 6 &&
                       out_path.compare(out_path.size() - 6, 6, ".jsonl") == 0;
    if (jsonl) {
      auto out_sink = std::make_unique<JsonlSink>(out_path);
      if (!out_sink->ok())
        return NotFoundError("cannot write " + out_path);
      sinks.push_back(std::move(out_sink));
    } else {
      auto out_sink = std::make_unique<CsvSink>(out_path);
      if (!out_sink->ok())
        return NotFoundError("cannot write " + out_path);
      sinks.push_back(std::move(out_sink));
    }
  }
  auto sink = std::make_unique<MultiSink>(std::move(sinks));
  ScenarioRunInfo info;
  info.id = scenario_id;
  sink->BeginScenario(info);
  return StatusOr<std::unique_ptr<ResultSink>>(std::move(sink));
}

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: ldpr <command> [--flags]\n"
               "\n"
               "commands:\n"
               "  run           batch poisoning + recovery pipeline\n"
               "  stream        windowed streaming ingest replay\n"
               "  shard-worker  compute one worker's partial support counts\n"
               "  shard-merge   merge worker partials into a result tree\n"
               "  list          subcommands and registered scenarios\n"
               "\n"
               "run `ldpr list` for the shared flags of each command.\n");
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage(stderr);
    return 1;
  }
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    PrintUsage(stdout);
    return 0;
  }
  if (!command.empty() && command[0] == '-') {
    std::fprintf(stderr,
                 "error: expected a subcommand before flags (got %s)\n",
                 command.c_str());
    PrintUsage(stderr);
    return 1;
  }
  // The subcommand's FlagParser sees argv[1] as its program name, so
  // file operands of shard-merge land in positional().
  const FlagParser flags(argc - 1, argv + 1);
  if (command == "run") return RunCommand(flags);
  if (command == "stream") return StreamCommand(flags);
  if (command == "shard-worker") return ShardWorkerCommand(flags);
  if (command == "shard-merge") return ShardMergeCommand(flags);
  if (command == "list") return ListCommand(flags);
  std::fprintf(stderr, "error: unknown command: %s\n", command.c_str());
  PrintUsage(stderr);
  return 1;
}

}  // namespace cli
}  // namespace ldpr
