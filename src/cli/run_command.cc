// `ldpr run`: the batch poisoning + recovery pipeline (the legacy
// ldprecover_cli default mode).
//
// Examples:
//   # Paper defaults against MGA on the IPUMS stand-in:
//   ldpr run --protocol=OUE --attack=MGA --dataset=ipums
//
//   # A custom Zipf population from CSV-free synthetic data:
//   ldpr run --protocol=GRR --attack=AA --dataset=zipf
//       --d=64 --n=100000 --zipf_s=1.1 --beta=0.1 --trials=10
//
//   # Your own data (one item per row, first column, header skipped):
//   ldpr run --protocol=OLH --attack=MGA --csv=items.csv
//
// Flags (defaults in brackets): --protocol [GRR], --attack [AA]
// (none|Manip|MGA|AA|MGA-IPA|MUL-AA), --dataset [ipums]
// (ipums|fire|zipf|uniform), --csv FILE, --d [102], --n [100000],
// --zipf_s [1.0], --epsilon [0.5], --beta [0.05], --eta [0.2],
// --targets [10], --trials [5], --seed [1], --scale [1.0],
// --top_k [10], --threads [0 = auto], --out FILE (CSV, or JSONL when
// FILE ends in .jsonl).  Results are bit-identical at any --threads
// value.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "ldp/factory.h"
#include "recover/ldprecover.h"
#include "sim/experiment.h"
#include "tasks/heavy_hitters.h"

namespace ldpr {
namespace cli {

int RunCommand(const FlagParser& flags) {
  const auto protocol_or =
      ParseProtocolKind(flags.GetString("protocol", "GRR"));
  const auto attack_or = ParseAttackKind(flags.GetString("attack", "AA"));
  auto dataset_or = ParseDatasetFlags(flags);
  const auto epsilon = flags.GetDouble("epsilon", 0.5);
  const auto beta = flags.GetDouble("beta", 0.05);
  const auto eta = flags.GetDouble("eta", 0.2);
  const auto targets = flags.GetInt("targets", 10);
  const auto trials = flags.GetInt("trials", 5);
  const auto seed = flags.GetInt("seed", 1);
  const auto scale = flags.GetDouble("scale", 1.0);
  const auto top_k = flags.GetInt("top_k", 10);
  const auto threads = flags.GetInt("threads", 0);
  const std::string out_path = flags.GetString("out", "");
  // The legacy shim forwards its mode selector even when it resolved
  // to batch mode (--stream=false); tolerate it.
  (void)flags.GetBool("stream", false);

  for (const Status& status :
       {protocol_or.ok() ? Status::Ok() : protocol_or.status(),
        attack_or.ok() ? Status::Ok() : attack_or.status(),
        dataset_or.ok() ? Status::Ok() : dataset_or.status(),
        epsilon.ok() ? Status::Ok() : epsilon.status(),
        beta.ok() ? Status::Ok() : beta.status(),
        eta.ok() ? Status::Ok() : eta.status(),
        targets.ok() ? Status::Ok() : targets.status(),
        trials.ok() ? Status::Ok() : trials.status(),
        seed.ok() ? Status::Ok() : seed.status(),
        scale.ok() ? Status::Ok() : scale.status(),
        top_k.ok() ? Status::Ok() : top_k.status(),
        threads.ok() ? Status::Ok() : threads.status()}) {
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  for (const std::string& unused : flags.unused_flags()) {
    std::fprintf(stderr, "error: unknown flag --%s\n", unused.c_str());
    return 1;
  }

  ExperimentConfig config;
  config.protocol = *protocol_or;
  config.epsilon = *epsilon;
  config.pipeline.attack = *attack_or;
  config.pipeline.beta = *beta;
  config.pipeline.num_targets = static_cast<size_t>(*targets);
  config.eta = *eta;
  config.trials = static_cast<size_t>(*trials);
  config.seed = static_cast<uint64_t>(*seed);
  config.threads = *threads < 0 ? 0 : static_cast<size_t>(*threads);

  // Surface bad knobs as status errors before any CHECK-guarded
  // library code can abort on them (empty/scaled-away datasets, zero
  // trials, out-of-range epsilon/beta/eta/targets, ...).
  if (!(*scale > 0.0 && *scale <= 1.0)) {
    std::fprintf(stderr,
                 "error: INVALID_ARGUMENT: --scale must be in (0, 1]\n");
    return 1;
  }
  if (*top_k < 1) {
    std::fprintf(stderr, "error: INVALID_ARGUMENT: --top_k must be >= 1\n");
    return 1;
  }
  const Dataset dataset = ScaleDataset(*dataset_or, *scale);
  if (const Status valid = ValidateExperimentInputs(config, dataset);
      !valid.ok()) {
    std::fprintf(stderr, "error: %s\n", valid.ToString().c_str());
    return 1;
  }

  auto sink_or = MakeRunSink(out_path, "cli");
  if (!sink_or.ok()) {
    std::fprintf(stderr, "error: %s\n", sink_or.status().ToString().c_str());
    return 1;
  }
  ResultSink& sink = **sink_or;

  std::printf("ldpr run: %s under %s on %s (d=%zu, n=%llu), eps=%g, "
              "beta=%g, eta=%g, %zu trials\n\n",
              ProtocolKindName(config.protocol),
              AttackKindName(config.pipeline.attack), dataset.name.c_str(),
              dataset.domain_size(),
              static_cast<unsigned long long>(dataset.num_users()),
              config.epsilon, config.pipeline.beta, config.eta, config.trials);

  const ExperimentResult r = RunExperiment(config, dataset);

  sink.BeginTable("Recovery accuracy", {"MSE", "FG", "samples"});
  sink.AddRow("Before", {r.mse_before.mean(), r.fg_before.mean(),
                         static_cast<double>(r.mse_before.count())});
  if (r.mse_detection.count() > 0) {
    sink.AddRow("Detection", {r.mse_detection.mean(), r.fg_detection.mean(),
                              static_cast<double>(r.mse_detection.count())});
  }
  sink.AddRow("LDPRecover", {r.mse_recover.mean(), r.fg_recover.mean(),
                             static_cast<double>(r.mse_recover.count())});
  if (r.mse_recover_star.count() > 0) {
    sink.AddRow("LDPRecover*",
                {r.mse_recover_star.mean(), r.fg_recover_star.mean(),
                 static_cast<double>(r.mse_recover_star.count())});
  }
  sink.EndTable();

  // Task-level view: how intact is the published top-k?
  // (single representative trial for the ranking illustration)
  const auto protocol =
      MakeProtocol(config.protocol, dataset.domain_size(), config.epsilon);
  Rng rng(config.seed);
  const TrialOutput t =
      RunPoisoningTrial(*protocol, config.pipeline, dataset, rng);
  RecoverOptions ropts;
  ropts.eta = config.eta;
  if (!t.attack_targets.empty()) ropts.known_targets = t.attack_targets;
  const LdpRecover recover(*protocol, ropts);
  const auto recovered = recover.Recover(t.poisoned_freqs);
  const size_t k = static_cast<size_t>(*top_k);
  std::printf("top-%zu displacement vs truth: poisoned %.2f, recovered %.2f\n",
              k, TopKDisplacement(t.true_freqs, t.poisoned_freqs, k),
              TopKDisplacement(t.true_freqs, recovered, k));
  if (!t.attack_targets.empty()) {
    std::printf("attacker targets inside top-%zu: poisoned %zu, recovered "
                "%zu (of %zu)\n",
                k, CountInTopK(t.poisoned_freqs, t.attack_targets, k),
                CountInTopK(recovered, t.attack_targets, k),
                t.attack_targets.size());
  }

  const Status finish = sink.Finish();
  if (!finish.ok()) {
    std::fprintf(stderr, "error: %s\n", finish.ToString().c_str());
    return 1;
  }
  if (!out_path.empty()) std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace cli
}  // namespace ldpr
