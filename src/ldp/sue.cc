#include "ldp/sue.h"

#include <cmath>

namespace ldpr {

namespace {
double SueP(double epsilon) {
  const double half = std::exp(epsilon / 2.0);
  return half / (half + 1.0);
}
}  // namespace

Sue::Sue(size_t d, double epsilon)
    : UnaryEncoding(d, epsilon, SueP(epsilon), 1.0 - SueP(epsilon)) {}

}  // namespace ldpr
