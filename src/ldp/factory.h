// Construction of protocols by kind/name, used by the simulation
// harness and benchmark binaries.

#ifndef LDPR_LDP_FACTORY_H_
#define LDPR_LDP_FACTORY_H_

#include <memory>
#include <string>

#include "ldp/protocol.h"
#include "util/status.h"

namespace ldpr {

/// Creates a protocol of the given kind over domain size `d` with
/// privacy budget `epsilon` (OLH uses its default g).
std::unique_ptr<FrequencyProtocol> MakeProtocol(ProtocolKind kind, size_t d,
                                                double epsilon);

/// Parses "GRR" / "OUE" / "OLH" (case-insensitive).
StatusOr<ProtocolKind> ParseProtocolKind(const std::string& name);

/// The paper's three protocols, in the order its figures list them.
inline constexpr ProtocolKind kAllProtocolKinds[] = {
    ProtocolKind::kGrr, ProtocolKind::kOue, ProtocolKind::kOlh};

/// Every protocol the library implements (the paper's three plus the
/// SUE and BLH extensions).
inline constexpr ProtocolKind kExtendedProtocolKinds[] = {
    ProtocolKind::kGrr, ProtocolKind::kOue, ProtocolKind::kOlh,
    ProtocolKind::kSue, ProtocolKind::kBlh};

}  // namespace ldpr

#endif  // LDPR_LDP_FACTORY_H_
