// Symmetric Unary Encoding (SUE) — the unary scheme of basic RAPPOR
// (Erlingsson et al. 2014), with p = e^{eps/2}/(e^{eps/2} + 1) and
// q = 1 - p.  Included because the paper's framework (and therefore
// LDPRecover) applies to *any* pure LDP protocol; SUE is the most
// widely deployed unary variant and a natural extra evaluation point
// beyond the paper's GRR/OUE/OLH trio.

#ifndef LDPR_LDP_SUE_H_
#define LDPR_LDP_SUE_H_

#include "ldp/unary.h"

namespace ldpr {

class Sue final : public UnaryEncoding {
 public:
  Sue(size_t d, double epsilon);

  ProtocolKind kind() const override { return ProtocolKind::kSue; }
  std::string Name() const override { return "SUE"; }
};

}  // namespace ldpr

#endif  // LDPR_LDP_SUE_H_
