// ReportBatch: a batch view of many reports, the unit of the batched
// aggregation hot path.
//
// The streaming Aggregator pays a virtual AccumulateSupports call per
// report; for the support-set protocols (OLH/BLH, OUE/SUE) that call
// is itself O(d), so accumulating m malicious MGA reports costs
// O(m*d) virtual-dispatch-laden work.  ReportBatch hands
// FrequencyProtocol::AccumulateSupportsBatch a whole span at once so
// each protocol can run one tight specialized loop instead (value
// histogram for GRR, per-column bit sums for the unary family,
// item-block x report-block tiles for local hashing).
//
// Two modes:
//
//  * Span mode — constructed over a contiguous Report array.  O(1):
//    nothing is copied up front.  The SoA field arrays (seeds[],
//    values[], packed bit rows) materialize lazily on first access,
//    so each protocol pays only for the fields its loop wants (GRR
//    reads the span directly and copies nothing).
//  * Builder mode — Append() one report at a time (the
//    DetectionFilter / streaming flush buffers).  Fields are SoA from
//    the start, so accumulation never touches the 40-byte Report
//    stride at all.
//
// Lazy materialization mutates const-visible caches: a batch may be
// shared across threads only after the needed fields have been
// materialized (every current use is batch-per-worker-chunk).
//
// Determinism: support counts are sums of 1.0's, exactly
// representable integers far below 2^53, so *any* regrouping of the
// additions yields byte-identical doubles.  Every batched override
// exploits exactly this — accumulate integer subtotals, add each
// subtotal once — and therefore matches the per-report path bit for
// bit (enforced by tests/aggregation_batch_test.cc).
//
// A builder-mode batch is homogeneous: either every appended report
// carries a bit row of the same width or none does (checked on
// Append).  Span mode checks row widths when (and only when) the bit
// matrix is materialized.

#ifndef LDPR_LDP_REPORT_BATCH_H_
#define LDPR_LDP_REPORT_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ldp/report.h"

namespace ldpr {

class ReportBatch {
 public:
  /// An empty builder-mode batch.
  ReportBatch() = default;

  /// Span mode: a zero-copy view of `n` contiguous reports.  The span
  /// must outlive the batch.
  ReportBatch(const Report* reports, size_t n);
  explicit ReportBatch(const std::vector<Report>& reports)
      : ReportBatch(reports.data(), reports.size()) {}

  /// Builder mode: appends one report.  Every appended report must
  /// agree on the presence and width of the bit row.  Not available
  /// on span-mode batches.
  void Append(const Report& report);

  /// Drops all reports (and any span view) but keeps allocated
  /// capacity — lets a streaming producer reuse one batch as a flush
  /// buffer.
  void Clear();

  /// Pre-allocates builder-mode room for `n` reports whose bit rows
  /// are `bits_width` wide (0 for bit-less encodings).
  void Reserve(size_t n, size_t bits_width);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Span mode only: the underlying contiguous Report array — lets a
  /// protocol whose loop needs just one field skip materialization
  /// entirely.  Null in builder mode.
  const Report* span() const { return span_; }
  bool has_span() const { return span_ != nullptr; }

  /// Width of each bit row; 0 when the reports carry no bits.  In
  /// span mode this is the first report's width (heterogeneous spans
  /// are rejected when the bit matrix materializes).
  size_t bits_width() const { return bits_width_; }

  /// SoA field arrays, each of length size().  In span mode the first
  /// call materializes the array (see the laziness note above).
  const uint64_t* seeds() const;
  const uint32_t* values() const;

  /// Row i of the packed bit matrix (bits_width() bytes).  Only valid
  /// when bits_width() > 0.  In span mode the first call packs all
  /// rows (checking every report has the same width).
  const uint8_t* bits_row(size_t i) const;

  /// Reconstructs report i into `out`, reusing out.bits storage — the
  /// building block of the generic per-report fallback in
  /// FrequencyProtocol::AccumulateSupportsBatch.
  void ExtractReport(size_t i, Report& out) const;

 private:
  const Report* span_ = nullptr;
  size_t size_ = 0;
  size_t bits_width_ = 0;  // fixed by the first bit-carrying report
  // Builder-mode storage, or span-mode lazy caches.
  mutable std::vector<uint64_t> seeds_;
  mutable std::vector<uint32_t> values_;
  mutable std::vector<uint8_t> bits_;  // row-major, size_ x bits_width_
};

}  // namespace ldpr

#endif  // LDPR_LDP_REPORT_BATCH_H_
