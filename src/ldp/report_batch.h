// ReportBatch: a batch of many reports in SoA layout, the unit of the
// batched generation + aggregation hot path.
//
// The streaming Aggregator pays a virtual AccumulateSupports call per
// report; for the support-set protocols (OLH/BLH, OUE/SUE) that call
// is itself O(d), so accumulating m malicious MGA reports costs
// O(m*d) virtual-dispatch-laden work.  ReportBatch hands
// FrequencyProtocol::AccumulateSupportsBatch a whole batch at once so
// each protocol can run one tight specialized loop instead (value
// histogram for GRR, per-column bit sums for the unary family,
// item-block x report-block tiles for local hashing).
//
// Three modes:
//
//  * Builder mode — the primary hot path.  A ReportBatch::Builder
//    writes straight into the SoA field arrays (seeds[], values[],
//    packed bit rows): protocol generation overrides
//    (FrequencyProtocol::AppendGenuineReports) and attack crafting
//    overrides (Attack::CraftBatch) produce reports here without a
//    per-user Report ever materializing.
//  * View mode — Slice() of a builder batch: borrowed pointers into
//    the parent's SoA arrays (the unit the sharded aggregator hands
//    each worker).  Appending to the parent invalidates slices.
//  * Span mode — a zero-copy view over a contiguous Report array,
//    kept as a compat shim for AoS call sites (tests, small tools).
//    Span batches expose only span()/ExtractReport(); there is no SoA
//    materialization — protocols that want field arrays gather their
//    own tiles.
//
// Determinism: support counts are sums of 1.0's, exactly
// representable integers far below 2^53, so *any* regrouping of the
// additions yields byte-identical doubles.  Every batched override
// exploits exactly this — accumulate integer subtotals, add each
// subtotal once — and therefore matches the per-report path bit for
// bit (enforced by tests/aggregation_batch_test.cc and
// tests/report_gen_batch_test.cc).
//
// A builder-mode batch is homogeneous: either every appended report
// carries a bit row of the same width or none does (checked on
// append).

#ifndef LDPR_LDP_REPORT_BATCH_H_
#define LDPR_LDP_REPORT_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ldp/report.h"

namespace ldpr {

class ReportBatch {
 public:
  class Builder;

  /// An empty builder-mode batch.
  ReportBatch() = default;

  /// Span mode: a zero-copy view of `n` contiguous reports.  The span
  /// must outlive the batch.
  ReportBatch(const Report* reports, size_t n);
  explicit ReportBatch(const std::vector<Report>& reports)
      : ReportBatch(reports.data(), reports.size()) {}

  /// Builder mode: appends one report.  Every appended report must
  /// agree on the presence and width of the bit row.  Not available
  /// on span-mode or view-mode batches.
  void Append(const Report& report);

  /// Row-copies report i of `src` (any mode) into this builder-mode
  /// batch without materializing a Report — the survivor path of the
  /// detection flush buffers.
  void AppendFrom(const ReportBatch& src, size_t i);

  /// Drops all reports (and any span/slice view) but keeps allocated
  /// capacity — lets a streaming producer reuse one batch as a flush
  /// buffer.
  void Clear();

  /// Pre-allocates builder-mode room for `n` reports whose bit rows
  /// are `bits_width` wide (0 for bit-less encodings).
  void Reserve(size_t n, size_t bits_width);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Span mode only: the underlying contiguous Report array.  Null in
  /// builder/view mode.
  const Report* span() const { return span_; }
  bool has_span() const { return span_ != nullptr; }

  /// Width of each bit row; 0 when the reports carry no bits.  In
  /// span mode this is the first report's width.
  size_t bits_width() const { return bits_width_; }

  /// SoA field arrays, each of length size().  Builder/view mode
  /// only — span batches have no SoA arrays (use span() or
  /// ExtractReport).
  const uint64_t* seeds() const;
  const uint32_t* values() const;

  /// Base of the packed row-major bit matrix (size() x bits_width()
  /// bytes).  Builder/view mode with bits_width() > 0 only.
  const uint8_t* bits() const;

  /// Row i of the packed bit matrix (bits_width() bytes).
  const uint8_t* bits_row(size_t i) const { return bits() + i * bits_width_; }

  /// View mode: a borrowed sub-range [begin, end) of this builder- or
  /// view-mode batch's SoA arrays.  O(1), no copy.  The parent must
  /// outlive the slice and must not be appended to while slices are
  /// live.
  ReportBatch Slice(size_t begin, size_t end) const;

  /// Reconstructs report i into `out`, reusing out.bits storage — the
  /// building block of the generic per-report fallback in
  /// FrequencyProtocol::AccumulateSupportsBatch.  Works in any mode.
  void ExtractReport(size_t i, Report& out) const;

 private:
  bool is_builder() const {
    return span_ == nullptr && seeds_view_ == nullptr;
  }

  const Report* span_ = nullptr;
  size_t size_ = 0;
  size_t bits_width_ = 0;  // fixed by the first bit-carrying report
  // View mode: borrowed SoA pointers into a parent batch.
  const uint64_t* seeds_view_ = nullptr;
  const uint32_t* values_view_ = nullptr;
  const uint8_t* bits_view_ = nullptr;
  // Builder-mode storage.
  std::vector<uint64_t> seeds_;
  std::vector<uint32_t> values_;
  std::vector<uint8_t> bits_;  // row-major, size_ x bits_width_
};

/// Writes reports straight into a builder-mode ReportBatch's SoA
/// arrays.  The generation hot path: protocols append a value, a
/// (seed, value) pair, or a zeroed bit row they then fill in place —
/// no per-user Report object exists anywhere on the path.
class ReportBatch::Builder {
 public:
  /// Wraps `batch`, which must be in builder mode (possibly
  /// non-empty: crafting appends after genuine generation).
  explicit Builder(ReportBatch& batch);

  /// Fixes the bit-row width before the first AddBitsRow (idempotent;
  /// must agree with any width the batch already has).
  void SetBitsWidth(size_t width);

  /// Pre-allocates room for `n` more reports.
  void Reserve(size_t n);

  /// Appends a value-only report (GRR).  seed is 0.
  void AddValue(uint32_t value);

  /// Appends a (seed, value) report (OLH/BLH).
  void AddSeedValue(uint64_t seed, uint32_t value);

  /// Appends a bit-row report (OUE/SUE) and returns its zeroed row of
  /// SetBitsWidth() bytes for the caller to fill in place.  The
  /// pointer is invalidated by the next append.
  uint8_t* AddBitsRow();

  /// Compat append of a materialized Report (the generic fallbacks).
  void Add(const Report& report) { batch_->Append(report); }

  size_t size() const { return batch_->size_; }
  const ReportBatch& batch() const { return *batch_; }

 private:
  ReportBatch* batch_;
};

}  // namespace ldpr

#endif  // LDPR_LDP_REPORT_BATCH_H_
