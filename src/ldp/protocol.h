// FrequencyProtocol: the common interface of pure LDP protocols for
// frequency estimation (Section III of the paper).
//
// A protocol is a pair (Psi, Phi): users perturb with Psi
// (Perturb()), and the server aggregates with Phi, which for every
// pure protocol has the unified form of Eq. (11):
//
//     Phi_eps(v) = (C(v) - n*q) / (p - q),
//
// where C(v) counts the reports whose support set contains v
// (Eq. (12)-(13)).  Each concrete protocol supplies its perturbation
// probabilities p and q, its perturbation algorithm, and its support
// predicate; the shared aggregation and estimation logic lives here.
//
// Aggregation comes in three flavors (docs/architecture.md):
//
//  1. Streaming: Aggregator::Add folds materialized reports one at a
//     time (O(d) memory, any report source).
//  2. Closed-form sampling: SampleSupportCounts draws the aggregate
//     support-count vector of a whole genuine population directly
//     from its distribution, without per-user reports.
//  3. Sharded: the *Sharded variants split the population (or report
//     stream) into fixed-size contiguous chunks, process chunk c on
//     its own Rng(DeriveSeed(seed, c)), and merge partial
//     support-count vectors in chunk order.  Because the chunk
//     decomposition depends only on the population — never on the
//     worker count — the output is byte-identical at any `shards`
//     value; shards only decide how many pool workers chew on the
//     chunks.  This is what lets one paper-scale trial (millions of
//     users) use every core.
//
// The canonical user ordering behind the sharded paths: users are
// grouped by item, items ascending — user indices [0, n_0) hold item
// 0, [n_0, n_0 + n_1) hold item 1, and so on.

#ifndef LDPR_LDP_PROTOCOL_H_
#define LDPR_LDP_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ldp/report.h"
#include "ldp/report_batch.h"
#include "util/random.h"

namespace ldpr {

/// Discriminates concrete protocol implementations; attacks switch on
/// this to craft protocol-specific malicious reports.
enum class ProtocolKind {
  kGrr,
  kOue,
  kOlh,
  kSue,  // symmetric unary encoding (basic RAPPOR)
  kBlh,  // binary local hashing (OLH with g = 2)
};

const char* ProtocolKindName(ProtocolKind kind);

/// Users per aggregation shard.  Fixed (rather than derived from the
/// worker count) so the shard decomposition — and therefore every
/// sharded sampling output — depends only on the population size.
inline constexpr uint64_t kUsersPerAggregationShard = 1u << 16;

/// Reports per chunk in Aggregator::AddAllSharded.  Chosen so one
/// chunk is a few milliseconds of support accumulation even for the
/// O(d)-per-report protocols (OLH, unary).
inline constexpr size_t kReportsPerAggregationShard = 1u << 13;

/// How many canonical users of one item fall inside
/// [user_begin, user_end), given that the item's user block starts at
/// `item_offset` and holds `item_count` users.  The single home of
/// the canonical-ordering clipping arithmetic — used by
/// RestrictItemCountsToUsers and the protocol range samplers.
inline uint64_t UsersOfItemInRange(uint64_t item_offset, uint64_t item_count,
                                   uint64_t user_begin, uint64_t user_end) {
  const uint64_t lo = item_offset < user_begin ? user_begin : item_offset;
  const uint64_t item_end = item_offset + item_count;
  const uint64_t hi = item_end < user_end ? item_end : user_end;
  return hi > lo ? hi - lo : 0;
}

/// Restriction of a population histogram to the canonical users
/// [user_begin, user_end): entry v is how many of those users hold
/// item v.  The canonical ordering groups users by item, items
/// ascending.  Requires user_begin <= user_end <= sum(item_counts).
std::vector<uint64_t> RestrictItemCountsToUsers(
    const std::vector<uint64_t>& item_counts, uint64_t user_begin,
    uint64_t user_end);

/// Canonical user-chunk decomposition of an n-user population: chunk
/// c covers users [c*users_per_chunk, min(n, (c+1)*users_per_chunk)).
/// An empty population still forms one (empty) chunk, matching
/// ShardedSupportCounts.  Exported so out-of-process shard workers
/// (src/shard/) agree with the in-process path on the decomposition.
inline uint64_t UserChunkCount(
    uint64_t n, uint64_t users_per_chunk = kUsersPerAggregationShard) {
  return n == 0 ? 1 : (n + users_per_chunk - 1) / users_per_chunk;
}

/// Canonical report-chunk decomposition of an m-report batch: chunk c
/// covers reports [c*reports_per_chunk, min(m, (c+1)*
/// reports_per_chunk)).  An empty batch has zero chunks, matching
/// Aggregator::AddAllSharded's no-op on empty input.
inline uint64_t ReportChunkCount(
    uint64_t m, uint64_t reports_per_chunk = kReportsPerAggregationShard) {
  return (m + reports_per_chunk - 1) / reports_per_chunk;
}

/// The shared scaffolding of every sharded-over-users aggregation
/// path: cuts an n-user population into kUsersPerAggregationShard-
/// sized chunks, runs per_chunk(user_begin, user_end, rng) for chunk
/// c on Rng(DeriveSeed(seed, c)) across `shards` pool workers (0 =
/// auto), and merges the returned length-d partial vectors in chunk
/// order.  The chunk decomposition depends only on n, so the output
/// is byte-identical at every `shards` value.
std::vector<double> ShardedSupportCounts(
    uint64_t n, size_t d, uint64_t seed, size_t shards,
    const std::function<std::vector<double>(uint64_t user_begin,
                                            uint64_t user_end, Rng& rng)>&
        per_chunk);

/// Interface of a pure LDP frequency-estimation protocol.
class FrequencyProtocol {
 public:
  /// `d` is the input-domain size |D| (>= 2); `epsilon` the privacy
  /// budget (> 0).
  FrequencyProtocol(size_t d, double epsilon);
  virtual ~FrequencyProtocol() = default;

  FrequencyProtocol(const FrequencyProtocol&) = delete;
  FrequencyProtocol& operator=(const FrequencyProtocol&) = delete;

  virtual ProtocolKind kind() const = 0;
  virtual std::string Name() const = 0;

  size_t domain_size() const { return d_; }
  double epsilon() const { return epsilon_; }

  /// Probability that a genuine report supports the reporter's own
  /// item ("p" in the paper's unified notation).
  virtual double p() const = 0;

  /// Probability that a genuine report supports any other given item
  /// ("q").
  virtual double q() const = 0;

  /// The user-side perturbation algorithm Psi_eps.
  virtual Report Perturb(ItemId item, Rng& rng) const = 0;

  /// The support predicate: true iff `item` is in S(report)
  /// (Eq. (13)).
  virtual bool Supports(const Report& report, ItemId item) const = 0;

  /// Adds the report's support indicator for every item to `counts`
  /// (size d).  The default loops Supports(); concrete protocols
  /// override with O(|S|) implementations where possible.
  virtual void AccumulateSupports(const Report& report,
                                  std::vector<double>& counts) const;

  /// Batched AccumulateSupports: folds every report of `batch` into
  /// `counts` (size d), byte-identical to calling AccumulateSupports
  /// once per report in batch order (support counts are integer sums,
  /// so any regrouping of the additions is exact — see
  /// ldp/report_batch.h).  The default replays the per-report loop;
  /// concrete protocols override with one tight specialized pass:
  /// GRR a value histogram (O(n + d) with no per-report virtual
  /// dispatch), the unary family packed per-column bit sums, and
  /// local hashing an (item-block x report-block) tiling that keeps
  /// the seeds/values slices and the active counts window in cache.
  /// This is the hot path of every report-heavy aggregation
  /// (Aggregator::AddAll*, DetectionFilter, the MGA/IPA malicious
  /// report stream).
  virtual void AccumulateSupportsBatch(const ReportBatch& batch,
                                       std::vector<double>& counts) const;

  /// Server-side estimation Phi_eps: converts raw support counts into
  /// unbiased count estimates, Eq. (11): (C(v) - n*q) / (p - q).
  std::vector<double> AdjustCounts(const std::vector<double>& support_counts,
                                   size_t n) const;

  /// Converts raw support counts into estimated *frequencies*,
  /// i.e. AdjustCounts() divided by n.
  std::vector<double> EstimateFrequencies(
      const std::vector<double>& support_counts, size_t n) const;

  /// Theoretical variance of the estimated count Phi(v) for an item
  /// with true frequency f (Eqs. (4), (7), (10)).
  virtual double CountVariance(double f, size_t n) const = 0;

  /// Theoretical variance of the estimated *frequency* of an item
  /// with true frequency f: CountVariance / n^2.
  double FrequencyVariance(double f, size_t n) const;

  /// Samples the support-count vector the server would observe from
  /// genuine users holding `item_counts[v]` copies of each item,
  /// without materializing per-user reports.
  ///
  /// The default implementation simulates each user exactly.  GRR and
  /// OUE override with exact closed-form sampling (multinomial /
  /// independent binomials); OLH overrides with per-item-exact
  /// binomials (the per-item marginal law is exactly binomial; only
  /// the cross-item correlation induced by shared hash seeds is
  /// dropped — see DESIGN.md section 5).
  virtual std::vector<double> SampleSupportCounts(
      const std::vector<uint64_t>& item_counts, Rng& rng) const;

  /// Samples the support-count contribution of the canonical users
  /// [user_begin, user_end) only — the shard-level building block of
  /// SampleSupportCountsSharded.  Every closed-form sampler
  /// decomposes over user subsets (sums of independent binomials /
  /// multinomials recompose), so the default restricts the histogram
  /// and delegates to SampleSupportCounts; OLH and the unary family
  /// override to skip the intermediate histogram.
  virtual std::vector<double> SampleSupportCountsRange(
      const std::vector<uint64_t>& item_counts, uint64_t user_begin,
      uint64_t user_end, Rng& rng) const;

  /// Appends `count` genuine perturbed reports for users holding
  /// `item` straight into a builder-mode batch — the SoA generation
  /// hot path.  Draws exactly the same randomness, in the same
  /// per-user order, as `count` calls to Perturb(item, rng): overrides
  /// replace only the report *materialization* (writing seeds/values/
  /// bit rows in place), never the draw sequence, so any consumer of
  /// the Rng stream afterwards sees an identical state (locked in by
  /// tests/report_gen_batch_test.cc).  The default materializes via
  /// Perturb.
  virtual void AppendGenuineReports(ItemId item, uint64_t count, Rng& rng,
                                    ReportBatch::Builder& out) const;

  /// Batched genuine report generation for a whole population: for
  /// each item in ascending order, appends item_counts[v] perturbed
  /// reports via AppendGenuineReports.  The canonical user ordering
  /// (and Rng draw order) of the per-user samplers.
  void SampleReportsBatch(const std::vector<uint64_t>& item_counts, Rng& rng,
                          ReportBatch::Builder& out) const;

  /// Appends one crafted report supporting `item` (the SoA form of
  /// CraftSupportingReport, same Rng draws).  The default materializes
  /// via CraftSupportingReport.
  virtual void AppendCraftedReport(ItemId item, Rng& rng,
                                   ReportBatch::Builder& out) const;

  /// Per-user exact simulation of a population's support counts:
  /// generates every user's report through AppendGenuineReports (in
  /// the canonical per-user Rng draw order) and accumulates through
  /// the batched path in kBatchFlushReports-sized SoA flushes.
  /// Non-virtual — the shared engine of the default
  /// SampleSupportCounts and the exact-genuine reference path
  /// (sim/pipeline's ExactGenuineSupportCounts).
  std::vector<double> ExactSupportCounts(
      const std::vector<uint64_t>& item_counts, Rng& rng) const;

  /// Sharded, deterministic SampleSupportCounts: splits the
  /// population into kUsersPerAggregationShard-sized contiguous
  /// chunks of the canonical user ordering, samples chunk c on
  /// Rng(DeriveSeed(seed, c)) via SampleSupportCountsRange, and merges
  /// the partial vectors in chunk order across `shards` pool workers
  /// (0 = auto, 1 = run chunks serially).  Output is byte-identical
  /// at every `shards` value because neither the chunking nor the
  /// per-chunk RNG streams depend on it.
  std::vector<double> SampleSupportCountsSharded(
      const std::vector<uint64_t>& item_counts, uint64_t seed,
      size_t shards) const;

  /// The per-chunk unit of SampleSupportCountsSharded, exported so an
  /// out-of-process shard worker (src/shard/) can compute exactly the
  /// partial the in-process path would: support counts of canonical
  /// user chunk `chunk` (see UserChunkCount) sampled on
  /// Rng(DeriveSeed(seed, chunk)).  Summing the chunks in ascending
  /// order reproduces SampleSupportCountsSharded byte for byte at the
  /// default chunk size (integer-valued partials sum exactly).
  std::vector<double> SampleSupportCountsChunk(
      const std::vector<uint64_t>& item_counts, uint64_t seed, uint64_t chunk,
      uint64_t users_per_chunk = kUsersPerAggregationShard) const;

  /// Crafts a report in the *encoded* domain that deterministically
  /// supports `item` — the building block of poisoning attacks, which
  /// bypass the perturbation step (Section IV-A).
  virtual Report CraftSupportingReport(ItemId item, Rng& rng) const = 0;

  /// Expected number of items a CraftSupportingReport() report
  /// supports, E[sum_v 1_{S(y)}(v)].  GRR and one-hot OUE reports
  /// support exactly the chosen item (budget 1 — the paper's adaptive
  /// attack model); an OLH report additionally supports every item
  /// colliding into its bucket, budget 1 + (d-1)/g.
  virtual double CraftedSupportBudget() const { return 1.0; }

 protected:
  size_t d_;
  double epsilon_;
};

/// Reports per flush of the streaming batch buffers (the
/// BatchingAccumulator below): large enough to amortize the batched
/// dispatch, small enough to bound the buffered unary bit rows
/// (4096 * d bytes — 16 MB at the scaling scenarios' largest
/// d=4096, a few hundred KB at paper-table domain sizes).
/// The windowed stream engine (stream/streaming_engine.h) flushes its
/// per-pane buffers at this same size, so it also caps that path's
/// peak_buffered_reports.
inline constexpr size_t kBatchFlushReports = 4096;

/// Streaming adapter over AccumulateSupportsBatch: buffers added
/// reports and flushes them through the protocol's batched path every
/// kBatchFlushReports reports (and on Flush()).  Batching regroups
/// exact integer sums only (ldp/report_batch.h), so the counts are
/// byte-identical to per-report accumulation in add order.  This is
/// the one home of the buffer-and-flush idiom used by the per-user
/// exact samplers and the Detection filter.
class BatchingAccumulator {
 public:
  /// Both references must outlive the accumulator; `counts` must be
  /// sized to the protocol's domain.
  BatchingAccumulator(const FrequencyProtocol& protocol,
                      std::vector<double>& counts)
      : protocol_(protocol), counts_(counts) {}

  /// Buffers one report, flushing if the buffer is full.
  void Add(const Report& report);

  /// Accumulates any buffered reports.  Call once after the last
  /// Add; safe to call on an empty buffer.
  void Flush();

 private:
  const FrequencyProtocol& protocol_;
  std::vector<double>& counts_;
  ReportBatch buffer_;
};

/// Streaming server-side aggregator: feeds reports one at a time and
/// keeps only the d support counters, so aggregating hundreds of
/// thousands of reports is O(d) memory.
class Aggregator {
 public:
  explicit Aggregator(const FrequencyProtocol& protocol);

  /// Folds one report into the support counts.
  void Add(const Report& report);

  /// Folds a batch of reports through the protocol's specialized
  /// AccumulateSupportsBatch path; byte-identical to calling Add once
  /// per report.
  void AddAll(const ReportBatch& batch);
  void AddAll(const std::vector<Report>& reports);

  /// Folds a batch of reports across `shards` pool workers (0 =
  /// auto): the batch splits into kReportsPerAggregationShard-sized
  /// chunks, each chunk runs AccumulateSupportsBatch into its own
  /// partial vector, and the partials merge in chunk order.  Support
  /// counts are sums of 1.0's (exact in double well past 2^50
  /// reports), so the result is byte-identical to AddAll at every
  /// shard count.  The ReportBatch overload takes a builder-mode
  /// batch and shards it via zero-copy Slice() views.
  void AddAllSharded(const ReportBatch& batch, size_t shards);
  void AddAllSharded(const std::vector<Report>& reports, size_t shards);

  /// Samples and folds the aggregate of a whole genuine population
  /// via the protocol's sharded closed-form sampler (see
  /// FrequencyProtocol::SampleSupportCountsSharded for the
  /// determinism contract).
  void AddSampledPopulation(const std::vector<uint64_t>& item_counts,
                            uint64_t seed, size_t shards);

  /// Number of reports aggregated so far.
  size_t report_count() const { return report_count_; }

  /// Raw support counts C(v).
  const std::vector<double>& support_counts() const { return counts_; }

  /// Merges pre-sampled support counts for `n` additional users (fast
  /// simulation path).
  void AddSampledCounts(const std::vector<double>& counts, size_t n);

  /// Unbiased frequency estimates over all reports seen so far.
  std::vector<double> EstimateFrequencies() const;

  /// Unbiased frequency estimates normalizing by an explicit user
  /// count (used by Detection, which drops reports after the fact).
  std::vector<double> EstimateFrequencies(size_t n_override) const;

 private:
  const FrequencyProtocol& protocol_;
  std::vector<double> counts_;
  size_t report_count_ = 0;
};

}  // namespace ldpr

#endif  // LDPR_LDP_PROTOCOL_H_
