#include "ldp/olh.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace ldpr {

OlhBase::OlhBase(size_t d, double epsilon, uint32_t g)
    : FrequencyProtocol(d, epsilon), g_(g) {
  LDPR_CHECK(g_ >= 2);
  const double e = std::exp(epsilon);
  p_ = e / (e + static_cast<double>(g_) - 1.0);
  q_ = 1.0 / static_cast<double>(g_);
}

Report OlhBase::Perturb(ItemId item, Rng& rng) const {
  LDPR_CHECK(item < d_);
  Report r;
  r.seed = rng.Next();
  const uint32_t hashed = Hash(r.seed, item);
  // GRR over the g-sized hashed domain.
  if (rng.Bernoulli(p_)) {
    r.value = hashed;
  } else {
    uint64_t draw = rng.UniformU64(g_ - 1);
    if (draw >= hashed) ++draw;
    r.value = static_cast<uint32_t>(draw);
  }
  return r;
}

bool OlhBase::Supports(const Report& report, ItemId item) const {
  LDPR_CHECK(item < d_);
  return Hash(report.seed, item) == report.value;
}

void OlhBase::AccumulateSupports(const Report& report,
                                 std::vector<double>& counts) const {
  LDPR_CHECK(counts.size() == d_);
  const SeededHash h(report.seed, g_);
  for (ItemId v = 0; v < d_; ++v) {
    if (h(v) == report.value) counts[v] += 1.0;
  }
}

void OlhBase::AccumulateSupportsBatch(const ReportBatch& batch,
                                      std::vector<double>& counts) const {
  LDPR_CHECK(counts.size() == d_);
  const uint64_t* seeds = batch.seeds();
  const uint32_t* values = batch.values();
  const size_t n = batch.size();
  // Report tiles keep the active seeds/values slice L1-resident
  // (256 * 12 bytes = 3 KiB) while the item sweep revisits it d
  // times.  The additions to counts[v] happen in ascending
  // report-tile order and sum integers, so the result is
  // byte-identical to the per-report loop.
  constexpr size_t kReportTile = 256;
  for (size_t i0 = 0; i0 < n; i0 += kReportTile) {
    const size_t i1 = std::min(n, i0 + kReportTile);
    for (size_t v = 0; v < d_; ++v) {
      uint32_t supported = 0;
      for (size_t i = i0; i < i1; ++i) {
        supported += (Hash(seeds[i], static_cast<ItemId>(v)) == values[i]);
      }
      if (supported != 0) counts[v] += static_cast<double>(supported);
    }
  }
}

double OlhBase::CountVariance(double f, size_t n) const {
  (void)f;
  const double diff = p_ - q_;
  return static_cast<double>(n) * q_ * (1.0 - q_) / (diff * diff);
}

std::vector<double> OlhBase::SampleSupportCounts(
    const std::vector<uint64_t>& item_counts, Rng& rng) const {
  LDPR_CHECK(item_counts.size() == d_);
  uint64_t n = 0;
  for (uint64_t c : item_counts) n += c;
  std::vector<double> counts(d_);
  for (size_t v = 0; v < d_; ++v) {
    const uint64_t own = item_counts[v];
    const uint64_t from_own = rng.Binomial(own, p_);
    const uint64_t from_rest = rng.Binomial(n - own, q_);
    counts[v] = static_cast<double>(from_own + from_rest);
  }
  return counts;
}

std::vector<double> OlhBase::SampleSupportCountsRange(
    const std::vector<uint64_t>& item_counts, uint64_t user_begin,
    uint64_t user_end, Rng& rng) const {
  LDPR_CHECK(item_counts.size() == d_);
  LDPR_CHECK(user_begin <= user_end);
  const uint64_t chunk_n = user_end - user_begin;
  std::vector<double> counts(d_);
  uint64_t offset = 0;
  for (size_t v = 0; v < d_; ++v) {
    const uint64_t own =
        UsersOfItemInRange(offset, item_counts[v], user_begin, user_end);
    offset += item_counts[v];
    const uint64_t from_own = rng.Binomial(own, p_);
    const uint64_t from_rest = rng.Binomial(chunk_n - own, q_);
    counts[v] = static_cast<double>(from_own + from_rest);
  }
  return counts;
}

Report OlhBase::CraftSupportingReport(ItemId item, Rng& rng) const {
  LDPR_CHECK(item < d_);
  Report r;
  r.seed = rng.Next();
  r.value = Hash(r.seed, item);
  return r;
}

namespace {
uint32_t DefaultG(double epsilon, uint32_t g) {
  if (g != 0) return g;
  return static_cast<uint32_t>(std::ceil(std::exp(epsilon) + 1.0));
}
}  // namespace

Olh::Olh(size_t d, double epsilon, uint32_t g)
    : OlhBase(d, epsilon, DefaultG(epsilon, g)) {}

}  // namespace ldpr
