#include "ldp/olh.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/simd.h"

namespace ldpr {

OlhBase::OlhBase(size_t d, double epsilon, uint32_t g)
    : FrequencyProtocol(d, epsilon), g_(g), mod_(g) {
  LDPR_CHECK(g_ >= 2);
  const double e = std::exp(epsilon);
  p_ = e / (e + static_cast<double>(g_) - 1.0);
  q_ = 1.0 / static_cast<double>(g_);
}

Report OlhBase::Perturb(ItemId item, Rng& rng) const {
  LDPR_CHECK(item < d_);
  Report r;
  r.seed = rng.Next();
  const uint32_t hashed = Hash(r.seed, item);
  // GRR over the g-sized hashed domain.
  if (rng.Bernoulli(p_)) {
    r.value = hashed;
  } else {
    uint64_t draw = rng.UniformU64(g_ - 1);
    if (draw >= hashed) ++draw;
    r.value = static_cast<uint32_t>(draw);
  }
  return r;
}

bool OlhBase::Supports(const Report& report, ItemId item) const {
  LDPR_CHECK(item < d_);
  return Hash(report.seed, item) == report.value;
}

void OlhBase::AccumulateSupports(const Report& report,
                                 std::vector<double>& counts) const {
  LDPR_CHECK(counts.size() == d_);
  const SeededHash h(report.seed, g_);
  for (ItemId v = 0; v < d_; ++v) {
    if (h(v) == report.value) counts[v] += 1.0;
  }
}

void OlhBase::AppendGenuineReports(ItemId item, uint64_t count, Rng& rng,
                                   ReportBatch::Builder& out) const {
  LDPR_CHECK(item < d_);
  // All `count` users hold the same item, so the item-only xxHash
  // half computes once for the whole run; the per-seed finish plus
  // FastMod is bit-identical to Hash() (util/hash_family.h).
  const uint64_t round0 = XxHash64Round0(item);
  out.Reserve(count);
  for (uint64_t u = 0; u < count; ++u) {
    const uint64_t seed = rng.Next();
    const uint32_t hashed = static_cast<uint32_t>(
        mod_(XxHash64Key8WithRound0(round0, XxHash64SeedAcc(seed))));
    uint32_t value;
    if (rng.Bernoulli(p_)) {
      value = hashed;
    } else {
      uint64_t draw = rng.UniformU64(g_ - 1);
      if (draw >= hashed) ++draw;
      value = static_cast<uint32_t>(draw);
    }
    out.AddSeedValue(seed, value);
  }
}

void OlhBase::AppendCraftedReport(ItemId item, Rng& rng,
                                  ReportBatch::Builder& out) const {
  LDPR_CHECK(item < d_);
  const uint64_t seed = rng.Next();
  out.AddSeedValue(seed, static_cast<uint32_t>(mod_(XxHash64Key8(item, seed))));
}

void OlhBase::AccumulateSupportsBatch(const ReportBatch& batch,
                                      std::vector<double>& counts) const {
  LDPR_CHECK(counts.size() == d_);
  const size_t n = batch.size();
  if (!batch.has_span()) {
    SimdOlhSupportAdd(batch.seeds(), batch.values(), n, d_, g_,
                      counts.data());
    return;
  }
  // Span compat path: gather each report tile's seeds/values off the
  // 40-byte Report stride into stack arrays, then run the same tile
  // kernel.  The kernel's internal tile matches this gather tile, so
  // the addition order is identical either way (and integer support
  // sums make any order byte-identical regardless).
  constexpr size_t kReportTile = 256;
  uint64_t seeds[kReportTile];
  uint32_t values[kReportTile];
  const Report* span = batch.span();
  for (size_t i0 = 0; i0 < n; i0 += kReportTile) {
    const size_t tn = std::min(n - i0, kReportTile);
    for (size_t i = 0; i < tn; ++i) {
      seeds[i] = span[i0 + i].seed;
      values[i] = span[i0 + i].value;
    }
    SimdOlhSupportAdd(seeds, values, tn, d_, g_, counts.data());
  }
}

double OlhBase::CountVariance(double f, size_t n) const {
  (void)f;
  const double diff = p_ - q_;
  return static_cast<double>(n) * q_ * (1.0 - q_) / (diff * diff);
}

std::vector<double> OlhBase::SampleSupportCounts(
    const std::vector<uint64_t>& item_counts, Rng& rng) const {
  LDPR_CHECK(item_counts.size() == d_);
  uint64_t n = 0;
  for (uint64_t c : item_counts) n += c;
  std::vector<double> counts(d_);
  for (size_t v = 0; v < d_; ++v) {
    const uint64_t own = item_counts[v];
    const uint64_t from_own = rng.Binomial(own, p_);
    const uint64_t from_rest = rng.Binomial(n - own, q_);
    counts[v] = static_cast<double>(from_own + from_rest);
  }
  return counts;
}

std::vector<double> OlhBase::SampleSupportCountsRange(
    const std::vector<uint64_t>& item_counts, uint64_t user_begin,
    uint64_t user_end, Rng& rng) const {
  LDPR_CHECK(item_counts.size() == d_);
  LDPR_CHECK(user_begin <= user_end);
  const uint64_t chunk_n = user_end - user_begin;
  std::vector<double> counts(d_);
  uint64_t offset = 0;
  for (size_t v = 0; v < d_; ++v) {
    const uint64_t own =
        UsersOfItemInRange(offset, item_counts[v], user_begin, user_end);
    offset += item_counts[v];
    const uint64_t from_own = rng.Binomial(own, p_);
    const uint64_t from_rest = rng.Binomial(chunk_n - own, q_);
    counts[v] = static_cast<double>(from_own + from_rest);
  }
  return counts;
}

Report OlhBase::CraftSupportingReport(ItemId item, Rng& rng) const {
  LDPR_CHECK(item < d_);
  Report r;
  r.seed = rng.Next();
  r.value = Hash(r.seed, item);
  return r;
}

namespace {
uint32_t DefaultG(double epsilon, uint32_t g) {
  if (g != 0) return g;
  return static_cast<uint32_t>(std::ceil(std::exp(epsilon) + 1.0));
}
}  // namespace

Olh::Olh(size_t d, double epsilon, uint32_t g)
    : OlhBase(d, epsilon, DefaultG(epsilon, g)) {}

}  // namespace ldpr
