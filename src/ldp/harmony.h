// Harmony-style mean estimation under LDP (Nguyen et al. 2016),
// Section VII-A of the paper.
//
// Harmony discretizes a numeric value x in [-1, 1] into the binary
// item {+1, -1} — reporting +1 with probability (1 + x)/2 — and then
// applies binary randomized response (which is exactly GRR with
// d = 2).  The server's mean estimate is a linear function of the
// estimated frequency of the "+1" item.  Because the pipeline reduces
// to frequency estimation, LDPRecover applies verbatim: poisoned
// means are repaired by recovering the underlying binary frequency
// vector.  examples/mean_estimation.cc demonstrates this end to end.

#ifndef LDPR_LDP_HARMONY_H_
#define LDPR_LDP_HARMONY_H_

#include <memory>
#include <vector>

#include "ldp/grr.h"

namespace ldpr {

class Harmony {
 public:
  /// Binary item indices in the induced frequency-estimation problem.
  static constexpr ItemId kPlusOne = 0;
  static constexpr ItemId kMinusOne = 1;

  explicit Harmony(double epsilon);

  /// The underlying binary frequency protocol (GRR with d = 2, i.e.
  /// Warner's randomized response).  Attacks and recovery operate on
  /// this protocol directly.
  const Grr& protocol() const { return rr_; }

  /// Client side: discretizes `value` in [-1, 1] and perturbs.
  Report Perturb(double value, Rng& rng) const;

  /// Discretization alone (for tests): +1 item with prob (1+value)/2.
  ItemId Discretize(double value, Rng& rng) const;

  /// Server side: estimated mean from the reports.
  double EstimateMean(const std::vector<Report>& reports) const;

  /// Same estimate, with support aggregation sharded across `shards`
  /// pool workers (0 = auto).  Byte-identical to EstimateMean at any
  /// shard count (see Aggregator::AddAllSharded).
  double EstimateMeanSharded(const std::vector<Report>& reports,
                             size_t shards) const;

  /// Converts an estimated binary frequency vector
  /// [f(+1), f(-1)] into a mean estimate: 2*f(+1) - 1.
  ///
  /// This is the hook LDPRecover uses — recover the frequencies, then
  /// map back to the mean.
  static double MeanFromFrequencies(const std::vector<double>& freqs);

  /// The frequency vector induced by a population mean:
  /// [ (1+mean)/2, (1-mean)/2 ].
  static std::vector<double> FrequenciesFromMean(double mean);

 private:
  Grr rr_;
};

}  // namespace ldpr

#endif  // LDPR_LDP_HARMONY_H_
