#include "ldp/report_batch.h"

#include "util/logging.h"

namespace ldpr {

ReportBatch::ReportBatch(const Report* reports, size_t n)
    : span_(reports), size_(n) {
  if (n > 0) bits_width_ = reports[0].bits.size();
}

void ReportBatch::Append(const Report& report) {
  LDPR_CHECK(is_builder());
  if (!report.bits.empty()) {
    if (size_ == 0 && bits_width_ == 0) {
      bits_width_ = report.bits.size();
    } else {
      LDPR_CHECK(report.bits.size() == bits_width_);
    }
    bits_.insert(bits_.end(), report.bits.begin(), report.bits.end());
  } else {
    LDPR_CHECK(bits_width_ == 0);
  }
  seeds_.push_back(report.seed);
  values_.push_back(report.value);
  ++size_;
}

void ReportBatch::AppendFrom(const ReportBatch& src, size_t i) {
  LDPR_CHECK(is_builder());
  LDPR_CHECK(i < src.size_);
  if (src.span_ != nullptr) {
    Append(src.span_[i]);
    return;
  }
  const size_t width = src.bits_width_;
  if (width > 0) {
    if (size_ == 0 && bits_width_ == 0) {
      bits_width_ = width;
    } else {
      LDPR_CHECK(width == bits_width_);
    }
    const uint8_t* row = src.bits() + i * width;
    bits_.insert(bits_.end(), row, row + width);
  } else {
    LDPR_CHECK(bits_width_ == 0);
  }
  seeds_.push_back(src.seeds()[i]);
  values_.push_back(src.values()[i]);
  ++size_;
}

void ReportBatch::Clear() {
  span_ = nullptr;
  size_ = 0;
  bits_width_ = 0;
  seeds_view_ = nullptr;
  values_view_ = nullptr;
  bits_view_ = nullptr;
  seeds_.clear();
  values_.clear();
  bits_.clear();
}

void ReportBatch::Reserve(size_t n, size_t bits_width) {
  LDPR_CHECK(is_builder());
  seeds_.reserve(n);
  values_.reserve(n);
  if (bits_width > 0) bits_.reserve(n * bits_width);
}

const uint64_t* ReportBatch::seeds() const {
  LDPR_CHECK(span_ == nullptr);
  return seeds_view_ != nullptr ? seeds_view_ : seeds_.data();
}

const uint32_t* ReportBatch::values() const {
  LDPR_CHECK(span_ == nullptr);
  return values_view_ != nullptr ? values_view_ : values_.data();
}

const uint8_t* ReportBatch::bits() const {
  LDPR_CHECK(span_ == nullptr);
  LDPR_CHECK(bits_width_ > 0);
  return bits_view_ != nullptr ? bits_view_ : bits_.data();
}

ReportBatch ReportBatch::Slice(size_t begin, size_t end) const {
  LDPR_CHECK(span_ == nullptr);
  LDPR_CHECK(begin <= end && end <= size_);
  ReportBatch view;
  view.size_ = end - begin;
  view.bits_width_ = bits_width_;
  view.seeds_view_ = seeds() + begin;
  view.values_view_ = values() + begin;
  if (bits_width_ > 0) view.bits_view_ = bits() + begin * bits_width_;
  return view;
}

void ReportBatch::ExtractReport(size_t i, Report& out) const {
  LDPR_CHECK(i < size_);
  if (span_ != nullptr) {
    out.seed = span_[i].seed;
    out.value = span_[i].value;
    out.bits = span_[i].bits;
    return;
  }
  out.seed = seeds()[i];
  out.value = values()[i];
  if (bits_width_ == 0) {
    out.bits.clear();
  } else {
    const uint8_t* row = bits() + i * bits_width_;
    out.bits.assign(row, row + bits_width_);
  }
}

ReportBatch::Builder::Builder(ReportBatch& batch) : batch_(&batch) {
  LDPR_CHECK(batch.is_builder());
}

void ReportBatch::Builder::SetBitsWidth(size_t width) {
  LDPR_CHECK(width > 0);
  if (batch_->size_ == 0 && batch_->bits_width_ == 0) {
    batch_->bits_width_ = width;
  } else {
    LDPR_CHECK(width == batch_->bits_width_);
  }
}

void ReportBatch::Builder::Reserve(size_t n) {
  batch_->Reserve(batch_->size_ + n, batch_->bits_width_);
}

void ReportBatch::Builder::AddValue(uint32_t value) { AddSeedValue(0, value); }

void ReportBatch::Builder::AddSeedValue(uint64_t seed, uint32_t value) {
  LDPR_CHECK(batch_->bits_width_ == 0);
  batch_->seeds_.push_back(seed);
  batch_->values_.push_back(value);
  ++batch_->size_;
}

uint8_t* ReportBatch::Builder::AddBitsRow() {
  const size_t width = batch_->bits_width_;
  LDPR_CHECK(width > 0);
  batch_->seeds_.push_back(0);
  batch_->values_.push_back(0);
  batch_->bits_.resize(batch_->bits_.size() + width);  // zero-filled
  ++batch_->size_;
  return batch_->bits_.data() + (batch_->size_ - 1) * width;
}

}  // namespace ldpr
