#include "ldp/report_batch.h"

#include <algorithm>

#include "util/logging.h"

namespace ldpr {

ReportBatch::ReportBatch(const Report* reports, size_t n)
    : span_(reports), size_(n) {
  if (n > 0) bits_width_ = reports[0].bits.size();
}

void ReportBatch::Append(const Report& report) {
  LDPR_CHECK(span_ == nullptr);
  if (!report.bits.empty()) {
    if (size_ == 0 && bits_width_ == 0) {
      bits_width_ = report.bits.size();
    } else {
      LDPR_CHECK(report.bits.size() == bits_width_);
    }
    bits_.insert(bits_.end(), report.bits.begin(), report.bits.end());
  } else {
    LDPR_CHECK(bits_width_ == 0);
  }
  seeds_.push_back(report.seed);
  values_.push_back(report.value);
  ++size_;
}

void ReportBatch::Clear() {
  span_ = nullptr;
  size_ = 0;
  bits_width_ = 0;
  seeds_.clear();
  values_.clear();
  bits_.clear();
}

void ReportBatch::Reserve(size_t n, size_t bits_width) {
  LDPR_CHECK(span_ == nullptr);
  seeds_.reserve(n);
  values_.reserve(n);
  if (bits_width > 0) bits_.reserve(n * bits_width);
}

const uint64_t* ReportBatch::seeds() const {
  if (span_ != nullptr && seeds_.size() != size_) {
    seeds_.resize(size_);
    for (size_t i = 0; i < size_; ++i) seeds_[i] = span_[i].seed;
  }
  return seeds_.data();
}

const uint32_t* ReportBatch::values() const {
  if (span_ != nullptr && values_.size() != size_) {
    values_.resize(size_);
    for (size_t i = 0; i < size_; ++i) values_[i] = span_[i].value;
  }
  return values_.data();
}

const uint8_t* ReportBatch::bits_row(size_t i) const {
  LDPR_CHECK(i < size_);
  LDPR_CHECK(bits_width_ > 0);
  if (span_ != nullptr && bits_.size() != size_ * bits_width_) {
    bits_.resize(size_ * bits_width_);
    for (size_t r = 0; r < size_; ++r) {
      LDPR_CHECK(span_[r].bits.size() == bits_width_);
      std::copy(span_[r].bits.begin(), span_[r].bits.end(),
                bits_.begin() + r * bits_width_);
    }
  }
  return bits_.data() + i * bits_width_;
}

void ReportBatch::ExtractReport(size_t i, Report& out) const {
  LDPR_CHECK(i < size_);
  if (span_ != nullptr) {
    out.seed = span_[i].seed;
    out.value = span_[i].value;
    out.bits = span_[i].bits;
    return;
  }
  out.seed = seeds_[i];
  out.value = values_[i];
  if (bits_width_ == 0) {
    out.bits.clear();
  } else {
    out.bits.assign(bits_.data() + i * bits_width_,
                    bits_.data() + (i + 1) * bits_width_);
  }
}

}  // namespace ldpr
