#include "ldp/harmony.h"

#include "util/logging.h"
#include "util/math_util.h"

namespace ldpr {

Harmony::Harmony(double epsilon) : rr_(/*d=*/2, epsilon) {}

ItemId Harmony::Discretize(double value, Rng& rng) const {
  LDPR_CHECK(value >= -1.0 && value <= 1.0);
  return rng.Bernoulli((1.0 + value) / 2.0) ? kPlusOne : kMinusOne;
}

Report Harmony::Perturb(double value, Rng& rng) const {
  return rr_.Perturb(Discretize(value, rng), rng);
}

double Harmony::EstimateMean(const std::vector<Report>& reports) const {
  return EstimateMeanSharded(reports, /*shards=*/1);
}

double Harmony::EstimateMeanSharded(const std::vector<Report>& reports,
                                    size_t shards) const {
  LDPR_CHECK(!reports.empty());
  Aggregator agg(rr_);
  agg.AddAllSharded(reports, shards);
  return MeanFromFrequencies(agg.EstimateFrequencies());
}

double Harmony::MeanFromFrequencies(const std::vector<double>& freqs) {
  LDPR_CHECK(freqs.size() == 2);
  return 2.0 * freqs[kPlusOne] - 1.0;
}

std::vector<double> Harmony::FrequenciesFromMean(double mean) {
  LDPR_CHECK(mean >= -1.0 && mean <= 1.0);
  return {(1.0 + mean) / 2.0, (1.0 - mean) / 2.0};
}

}  // namespace ldpr
