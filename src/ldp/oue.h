// Optimized Unary Encoding (OUE), Wang et al. 2017;
// Section III-B of the paper, Eqs. (5)-(7).
//
// The unary-encoding member with (p, q) = (1/2, 1/(e^eps + 1)),
// which minimizes the estimation variance among unary schemes.
// Shared mechanics live in ldp/unary.h.

#ifndef LDPR_LDP_OUE_H_
#define LDPR_LDP_OUE_H_

#include "ldp/unary.h"

namespace ldpr {

class Oue final : public UnaryEncoding {
 public:
  Oue(size_t d, double epsilon);

  ProtocolKind kind() const override { return ProtocolKind::kOue; }
  std::string Name() const override { return "OUE"; }

  /// Eq. (7): Var[Phi(v)] = n * 4 e^eps / (e^eps - 1)^2 — the paper's
  /// (frequency-independent) form; the exact unary variance is
  /// available through UnaryEncoding::CountVariance's formula with
  /// f-dependence, which Eq. (7) upper-approximates at f ~ 0.
  double CountVariance(double f, size_t n) const override;
};

}  // namespace ldpr

#endif  // LDPR_LDP_OUE_H_
