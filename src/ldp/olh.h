// Optimized Local Hashing (OLH), Wang et al. 2017;
// Section III-B of the paper, Eqs. (8)-(10).
//
// Each user picks a hash function H uniformly from a seeded family
// mapping D into {0, ..., g-1}, perturbs the hashed bucket with GRR
// over the g-sized domain, and reports the tuple (H, bucket).  A
// report (H, b) supports every item v with H(v) == b.  OlhBase
// implements the mechanics for any g; Olh fixes the paper's optimal
// g = ceil(e^eps + 1), and ldp/blh.h fixes g = 2 (binary local
// hashing).

#ifndef LDPR_LDP_OLH_H_
#define LDPR_LDP_OLH_H_

#include "ldp/protocol.h"
#include "util/hash_family.h"

namespace ldpr {

class OlhBase : public FrequencyProtocol {
 public:
  /// Local-hashing protocol with an explicit hash range g >= 2.
  OlhBase(size_t d, double epsilon, uint32_t g);

  /// p = e^eps / (e^eps + g - 1): the GRR-over-g retention
  /// probability, which is exactly the support probability of the
  /// reporter's own item.
  double p() const override { return p_; }

  /// q = 1/g: a non-held item hashes into the reported bucket
  /// uniformly.
  double q() const override { return q_; }

  uint32_t g() const { return g_; }

  /// H_seed(item) in {0, ..., g-1}.
  uint32_t Hash(uint64_t seed, ItemId item) const {
    return SeededHash(seed, g_)(item);
  }

  Report Perturb(ItemId item, Rng& rng) const override;
  bool Supports(const Report& report, ItemId item) const override;
  void AccumulateSupports(const Report& report,
                          std::vector<double>& counts) const override;

  /// SoA generation: appends (seed, value) pairs with the same draws
  /// as Perturb, hoisting the item-only xxHash half across the whole
  /// run of same-item users and strength-reducing the bucket modulus
  /// (bit-identical hashing — util/hash_family.h).
  void AppendGenuineReports(ItemId item, uint64_t count, Rng& rng,
                            ReportBatch::Builder& out) const override;

  /// SoA crafting: seed = rng.Next(), value = H_seed(item), same
  /// draws as CraftSupportingReport.
  void AppendCraftedReport(ItemId item, Rng& rng,
                           ReportBatch::Builder& out) const override;

  /// Batched path: tiles the O(n*d) hash evaluation into report
  /// blocks so the SoA seeds/values slice stays L1-resident across
  /// the item sweep (the split-hash tile kernel of util/simd.h), with
  /// the per-item support counted in an integer register —
  /// byte-identical to the per-report loop (integer sums), minus the
  /// per-report virtual dispatch and out-of-line hash call.
  void AccumulateSupportsBatch(const ReportBatch& batch,
                               std::vector<double>& counts) const override;

  /// Generic pure-protocol variance n * q(1-q)/(p-q)^2; with the
  /// optimal g this equals Eq. (10)'s 4 e^eps / (e^eps - 1)^2 up to
  /// the integrality of g.
  double CountVariance(double f, size_t n) const override;

  /// Per-item-exact fast sampling: each item's support count is
  /// exactly Binomial(n_v, p) + Binomial(n - n_v, 1/g).  Cross-item
  /// correlation through shared seeds is not reproduced; see
  /// DESIGN.md section 5 and tests/sim_equivalence_test.cc.  The
  /// binomials decompose over user subsets, so the sharded path
  /// recomposes the exact same per-item law.
  std::vector<double> SampleSupportCounts(
      const std::vector<uint64_t>& item_counts, Rng& rng) const override;

  /// Shard building block: the two binomials above, restricted to the
  /// canonical users [user_begin, user_end), without materializing
  /// the restricted histogram.  Draws in the same order as
  /// SampleSupportCounts on the restriction (bit-compatible).
  std::vector<double> SampleSupportCountsRange(
      const std::vector<uint64_t>& item_counts, uint64_t user_begin,
      uint64_t user_end, Rng& rng) const override;

  /// An attacker-crafted report for `item`: a uniformly random seed
  /// with the bucket set to H_seed(item), so the report is guaranteed
  /// to support `item` (and incidentally ~d/g others, as for genuine
  /// reports).
  Report CraftSupportingReport(ItemId item, Rng& rng) const override;

  /// 1 + (d-1)/g: the crafted item plus uniform hash collisions.
  double CraftedSupportBudget() const override {
    return 1.0 + static_cast<double>(d_ - 1) / static_cast<double>(g_);
  }

 private:
  uint32_t g_;
  double p_;
  double q_;
  FastMod mod_;  // exact strength-reduced % g_
};

class Olh final : public OlhBase {
 public:
  /// Uses the paper's default g = ceil(e^eps + 1) when `g` is 0.
  Olh(size_t d, double epsilon, uint32_t g = 0);

  ProtocolKind kind() const override { return ProtocolKind::kOlh; }
  std::string Name() const override { return "OLH"; }
};

}  // namespace ldpr

#endif  // LDPR_LDP_OLH_H_
