// Binary Local Hashing (BLH) — OLH with the hash range fixed to
// g = 2 (Bassily & Smith 2015 style).  Strictly dominated by OLH's
// optimized g in estimation variance, but commonly deployed for its
// single-bit reports; included as an extra pure protocol the paper's
// recovery framework covers.
//
// Aggregation (streaming, closed-form, and the sharded
// SampleSupportCountsRange/Sharded pair) is inherited wholesale from
// OlhBase with q = 1/2.

#ifndef LDPR_LDP_BLH_H_
#define LDPR_LDP_BLH_H_

#include "ldp/olh.h"

namespace ldpr {

class Blh final : public OlhBase {
 public:
  Blh(size_t d, double epsilon) : OlhBase(d, epsilon, /*g=*/2) {}

  ProtocolKind kind() const override { return ProtocolKind::kBlh; }
  std::string Name() const override { return "BLH"; }
};

}  // namespace ldpr

#endif  // LDPR_LDP_BLH_H_
