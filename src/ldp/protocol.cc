#include "ldp/protocol.h"

#include <algorithm>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace ldpr {

std::vector<uint64_t> RestrictItemCountsToUsers(
    const std::vector<uint64_t>& item_counts, uint64_t user_begin,
    uint64_t user_end) {
  LDPR_CHECK(user_begin <= user_end);
  std::vector<uint64_t> restricted(item_counts.size(), 0);
  uint64_t offset = 0;  // canonical index of the first user of item v
  for (size_t v = 0; v < item_counts.size() && offset < user_end; ++v) {
    restricted[v] =
        UsersOfItemInRange(offset, item_counts[v], user_begin, user_end);
    offset += item_counts[v];
  }
  return restricted;
}

const char* ProtocolKindName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kGrr:
      return "GRR";
    case ProtocolKind::kOue:
      return "OUE";
    case ProtocolKind::kOlh:
      return "OLH";
    case ProtocolKind::kSue:
      return "SUE";
    case ProtocolKind::kBlh:
      return "BLH";
  }
  return "UNKNOWN";
}

FrequencyProtocol::FrequencyProtocol(size_t d, double epsilon)
    : d_(d), epsilon_(epsilon) {
  LDPR_CHECK(d >= 2);
  LDPR_CHECK(epsilon > 0.0);
}

void FrequencyProtocol::AccumulateSupports(const Report& report,
                                           std::vector<double>& counts) const {
  LDPR_CHECK(counts.size() == d_);
  for (ItemId v = 0; v < d_; ++v) {
    if (Supports(report, v)) counts[v] += 1.0;
  }
}

void FrequencyProtocol::AccumulateSupportsBatch(
    const ReportBatch& batch, std::vector<double>& counts) const {
  // Correctness fallback for protocols without a specialized pass:
  // replay the per-report path.  A span-mode batch is walked in
  // place; a builder-mode batch reuses one scratch Report.
  if (batch.has_span()) {
    const Report* reports = batch.span();
    for (size_t i = 0; i < batch.size(); ++i)
      AccumulateSupports(reports[i], counts);
    return;
  }
  Report scratch;
  for (size_t i = 0; i < batch.size(); ++i) {
    batch.ExtractReport(i, scratch);
    AccumulateSupports(scratch, counts);
  }
}

std::vector<double> FrequencyProtocol::AdjustCounts(
    const std::vector<double>& support_counts, size_t n) const {
  LDPR_CHECK(support_counts.size() == d_);
  const double pp = p();
  const double qq = q();
  LDPR_CHECK(pp > qq);
  std::vector<double> est(d_);
  const double nq = static_cast<double>(n) * qq;
  const double denom = pp - qq;
  for (size_t v = 0; v < d_; ++v) est[v] = (support_counts[v] - nq) / denom;
  return est;
}

std::vector<double> FrequencyProtocol::EstimateFrequencies(
    const std::vector<double>& support_counts, size_t n) const {
  LDPR_CHECK(n > 0);
  std::vector<double> est = AdjustCounts(support_counts, n);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (double& e : est) e *= inv_n;
  return est;
}

double FrequencyProtocol::FrequencyVariance(double f, size_t n) const {
  LDPR_CHECK(n > 0);
  const double nd = static_cast<double>(n);
  return CountVariance(f, n) / (nd * nd);
}

void FrequencyProtocol::AppendGenuineReports(ItemId item, uint64_t count,
                                             Rng& rng,
                                             ReportBatch::Builder& out) const {
  for (uint64_t u = 0; u < count; ++u) out.Add(Perturb(item, rng));
}

void FrequencyProtocol::SampleReportsBatch(
    const std::vector<uint64_t>& item_counts, Rng& rng,
    ReportBatch::Builder& out) const {
  LDPR_CHECK(item_counts.size() == d_);
  for (ItemId item = 0; item < d_; ++item) {
    AppendGenuineReports(item, item_counts[item], rng, out);
  }
}

void FrequencyProtocol::AppendCraftedReport(ItemId item, Rng& rng,
                                            ReportBatch::Builder& out) const {
  out.Add(CraftSupportingReport(item, rng));
}

std::vector<double> FrequencyProtocol::ExactSupportCounts(
    const std::vector<uint64_t>& item_counts, Rng& rng) const {
  LDPR_CHECK(item_counts.size() == d_);
  std::vector<double> counts(d_, 0.0);
  // Reports are generated straight into an SoA flush buffer (the
  // perturbation draws stay in per-user order — the RNG stream is
  // unchanged) and accumulated through the batched path every
  // kBatchFlushReports reports.  Integer support sums make the
  // regrouping byte-identical to per-report accumulation.
  ReportBatch buffer;
  ReportBatch::Builder builder(buffer);
  for (ItemId item = 0; item < d_; ++item) {
    uint64_t remaining = item_counts[item];
    while (remaining > 0) {
      const uint64_t room = kBatchFlushReports - buffer.size();
      const uint64_t take = remaining < room ? remaining : room;
      AppendGenuineReports(item, take, rng, builder);
      remaining -= take;
      if (buffer.size() >= kBatchFlushReports) {
        AccumulateSupportsBatch(buffer, counts);
        buffer.Clear();
      }
    }
  }
  if (!buffer.empty()) AccumulateSupportsBatch(buffer, counts);
  return counts;
}

std::vector<double> FrequencyProtocol::SampleSupportCounts(
    const std::vector<uint64_t>& item_counts, Rng& rng) const {
  return ExactSupportCounts(item_counts, rng);
}

std::vector<double> FrequencyProtocol::SampleSupportCountsRange(
    const std::vector<uint64_t>& item_counts, uint64_t user_begin,
    uint64_t user_end, Rng& rng) const {
  LDPR_CHECK(item_counts.size() == d_);
  return SampleSupportCounts(
      RestrictItemCountsToUsers(item_counts, user_begin, user_end), rng);
}

std::vector<double> ShardedSupportCounts(
    uint64_t n, size_t d, uint64_t seed, size_t shards,
    const std::function<std::vector<double>(uint64_t, uint64_t, Rng&)>&
        per_chunk) {
  const uint64_t per_shard = kUsersPerAggregationShard;
  const size_t num_chunks = static_cast<size_t>(UserChunkCount(n));

  std::vector<std::vector<double>> partials(num_chunks);
  ParallelFor(shards, num_chunks, [&](size_t chunk) {
    Rng rng(DeriveSeed(seed, chunk));
    const uint64_t begin = static_cast<uint64_t>(chunk) * per_shard;
    const uint64_t end = std::min(n, begin + per_shard);
    partials[chunk] = per_chunk(begin, end, rng);
  });

  // In-order merge.  (Partial counts are integer-valued doubles, so
  // the sum is exact; the fixed order is belt and braces for any
  // future non-integer partials.)
  std::vector<double> counts(d, 0.0);
  for (const std::vector<double>& partial : partials) {
    LDPR_CHECK(partial.size() == d);
    for (size_t v = 0; v < d; ++v) counts[v] += partial[v];
  }
  return counts;
}

std::vector<double> FrequencyProtocol::SampleSupportCountsSharded(
    const std::vector<uint64_t>& item_counts, uint64_t seed,
    size_t shards) const {
  LDPR_CHECK(item_counts.size() == d_);
  uint64_t n = 0;
  for (uint64_t c : item_counts) n += c;
  return ShardedSupportCounts(
      n, d_, seed, shards,
      [&](uint64_t begin, uint64_t end, Rng& rng) {
        return SampleSupportCountsRange(item_counts, begin, end, rng);
      });
}

std::vector<double> FrequencyProtocol::SampleSupportCountsChunk(
    const std::vector<uint64_t>& item_counts, uint64_t seed, uint64_t chunk,
    uint64_t users_per_chunk) const {
  LDPR_CHECK(item_counts.size() == d_);
  LDPR_CHECK(users_per_chunk > 0);
  uint64_t n = 0;
  for (uint64_t c : item_counts) n += c;
  LDPR_CHECK(chunk < UserChunkCount(n, users_per_chunk));
  // Mirrors ShardedSupportCounts' per-chunk setup exactly: the chunk
  // RNG is keyed by (seed, chunk index), never by the worker running
  // it.
  Rng rng(DeriveSeed(seed, chunk));
  const uint64_t begin = chunk * users_per_chunk;
  const uint64_t end = std::min(n, begin + users_per_chunk);
  return SampleSupportCountsRange(item_counts, begin, end, rng);
}

void BatchingAccumulator::Add(const Report& report) {
  buffer_.Append(report);
  if (buffer_.size() >= kBatchFlushReports) Flush();
}

void BatchingAccumulator::Flush() {
  if (buffer_.empty()) return;
  protocol_.AccumulateSupportsBatch(buffer_, counts_);
  buffer_.Clear();
}

Aggregator::Aggregator(const FrequencyProtocol& protocol)
    : protocol_(protocol), counts_(protocol.domain_size(), 0.0) {}

void Aggregator::Add(const Report& report) {
  protocol_.AccumulateSupports(report, counts_);
  ++report_count_;
}

void Aggregator::AddAll(const ReportBatch& batch) {
  protocol_.AccumulateSupportsBatch(batch, counts_);
  report_count_ += batch.size();
}

void Aggregator::AddAll(const std::vector<Report>& reports) {
  AddAll(ReportBatch(reports.data(), reports.size()));
}

void Aggregator::AddAllSharded(const ReportBatch& batch, size_t shards) {
  const size_t per_chunk = kReportsPerAggregationShard;
  const size_t num_chunks = static_cast<size_t>(ReportChunkCount(batch.size()));
  if (num_chunks <= 1) {
    AddAll(batch);
    return;
  }
  std::vector<std::vector<double>> partials(num_chunks);
  ParallelFor(shards, num_chunks, [&](size_t chunk) {
    std::vector<double> partial(counts_.size(), 0.0);
    const size_t begin = chunk * per_chunk;
    const size_t end = std::min(batch.size(), begin + per_chunk);
    protocol_.AccumulateSupportsBatch(batch.Slice(begin, end), partial);
    partials[chunk] = std::move(partial);
  });
  for (const std::vector<double>& partial : partials) {
    for (size_t v = 0; v < counts_.size(); ++v) counts_[v] += partial[v];
  }
  report_count_ += batch.size();
}

void Aggregator::AddAllSharded(const std::vector<Report>& reports,
                               size_t shards) {
  const size_t per_chunk = kReportsPerAggregationShard;
  const size_t num_chunks =
      static_cast<size_t>(ReportChunkCount(reports.size()));
  if (num_chunks <= 1) {
    AddAll(reports);
    return;
  }
  std::vector<std::vector<double>> partials(num_chunks);
  ParallelFor(shards, num_chunks, [&](size_t chunk) {
    std::vector<double> partial(counts_.size(), 0.0);
    const size_t begin = chunk * per_chunk;
    const size_t end = std::min(reports.size(), begin + per_chunk);
    const ReportBatch batch(reports.data() + begin, end - begin);
    protocol_.AccumulateSupportsBatch(batch, partial);
    partials[chunk] = std::move(partial);
  });
  for (const std::vector<double>& partial : partials) {
    for (size_t v = 0; v < counts_.size(); ++v) counts_[v] += partial[v];
  }
  report_count_ += reports.size();
}

void Aggregator::AddSampledPopulation(const std::vector<uint64_t>& item_counts,
                                      uint64_t seed, size_t shards) {
  uint64_t n = 0;
  for (uint64_t c : item_counts) n += c;
  AddSampledCounts(protocol_.SampleSupportCountsSharded(item_counts, seed,
                                                        shards),
                   static_cast<size_t>(n));
}

void Aggregator::AddSampledCounts(const std::vector<double>& counts,
                                  size_t n) {
  LDPR_CHECK(counts.size() == counts_.size());
  for (size_t v = 0; v < counts_.size(); ++v) counts_[v] += counts[v];
  report_count_ += n;
}

std::vector<double> Aggregator::EstimateFrequencies() const {
  return EstimateFrequencies(report_count_);
}

std::vector<double> Aggregator::EstimateFrequencies(size_t n_override) const {
  LDPR_CHECK(n_override > 0);
  return protocol_.EstimateFrequencies(counts_, n_override);
}

}  // namespace ldpr
