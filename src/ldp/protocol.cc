#include "ldp/protocol.h"

#include "util/logging.h"

namespace ldpr {

const char* ProtocolKindName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kGrr:
      return "GRR";
    case ProtocolKind::kOue:
      return "OUE";
    case ProtocolKind::kOlh:
      return "OLH";
    case ProtocolKind::kSue:
      return "SUE";
    case ProtocolKind::kBlh:
      return "BLH";
  }
  return "UNKNOWN";
}

FrequencyProtocol::FrequencyProtocol(size_t d, double epsilon)
    : d_(d), epsilon_(epsilon) {
  LDPR_CHECK(d >= 2);
  LDPR_CHECK(epsilon > 0.0);
}

void FrequencyProtocol::AccumulateSupports(const Report& report,
                                           std::vector<double>& counts) const {
  LDPR_CHECK(counts.size() == d_);
  for (ItemId v = 0; v < d_; ++v) {
    if (Supports(report, v)) counts[v] += 1.0;
  }
}

std::vector<double> FrequencyProtocol::AdjustCounts(
    const std::vector<double>& support_counts, size_t n) const {
  LDPR_CHECK(support_counts.size() == d_);
  const double pp = p();
  const double qq = q();
  LDPR_CHECK(pp > qq);
  std::vector<double> est(d_);
  const double nq = static_cast<double>(n) * qq;
  const double denom = pp - qq;
  for (size_t v = 0; v < d_; ++v) est[v] = (support_counts[v] - nq) / denom;
  return est;
}

std::vector<double> FrequencyProtocol::EstimateFrequencies(
    const std::vector<double>& support_counts, size_t n) const {
  LDPR_CHECK(n > 0);
  std::vector<double> est = AdjustCounts(support_counts, n);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (double& e : est) e *= inv_n;
  return est;
}

double FrequencyProtocol::FrequencyVariance(double f, size_t n) const {
  LDPR_CHECK(n > 0);
  const double nd = static_cast<double>(n);
  return CountVariance(f, n) / (nd * nd);
}

std::vector<double> FrequencyProtocol::SampleSupportCounts(
    const std::vector<uint64_t>& item_counts, Rng& rng) const {
  LDPR_CHECK(item_counts.size() == d_);
  std::vector<double> counts(d_, 0.0);
  for (ItemId item = 0; item < d_; ++item) {
    for (uint64_t u = 0; u < item_counts[item]; ++u) {
      const Report r = Perturb(item, rng);
      AccumulateSupports(r, counts);
    }
  }
  return counts;
}

Aggregator::Aggregator(const FrequencyProtocol& protocol)
    : protocol_(protocol), counts_(protocol.domain_size(), 0.0) {}

void Aggregator::Add(const Report& report) {
  protocol_.AccumulateSupports(report, counts_);
  ++report_count_;
}

void Aggregator::AddAll(const std::vector<Report>& reports) {
  for (const Report& r : reports) Add(r);
}

void Aggregator::AddSampledCounts(const std::vector<double>& counts,
                                  size_t n) {
  LDPR_CHECK(counts.size() == counts_.size());
  for (size_t v = 0; v < counts_.size(); ++v) counts_[v] += counts[v];
  report_count_ += n;
}

std::vector<double> Aggregator::EstimateFrequencies() const {
  return EstimateFrequencies(report_count_);
}

std::vector<double> Aggregator::EstimateFrequencies(size_t n_override) const {
  LDPR_CHECK(n_override > 0);
  return protocol_.EstimateFrequencies(counts_, n_override);
}

}  // namespace ldpr
