#include "ldp/factory.h"

#include <algorithm>
#include <cctype>

#include "ldp/blh.h"
#include "ldp/grr.h"
#include "ldp/olh.h"
#include "ldp/oue.h"
#include "ldp/sue.h"

namespace ldpr {

std::unique_ptr<FrequencyProtocol> MakeProtocol(ProtocolKind kind, size_t d,
                                                double epsilon) {
  switch (kind) {
    case ProtocolKind::kGrr:
      return std::make_unique<Grr>(d, epsilon);
    case ProtocolKind::kOue:
      return std::make_unique<Oue>(d, epsilon);
    case ProtocolKind::kOlh:
      return std::make_unique<Olh>(d, epsilon);
    case ProtocolKind::kSue:
      return std::make_unique<Sue>(d, epsilon);
    case ProtocolKind::kBlh:
      return std::make_unique<Blh>(d, epsilon);
  }
  return nullptr;
}

StatusOr<ProtocolKind> ParseProtocolKind(const std::string& name) {
  std::string upper(name);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (upper == "GRR") return ProtocolKind::kGrr;
  if (upper == "OUE") return ProtocolKind::kOue;
  if (upper == "OLH") return ProtocolKind::kOlh;
  if (upper == "SUE") return ProtocolKind::kSue;
  if (upper == "BLH") return ProtocolKind::kBlh;
  return InvalidArgumentError("unknown protocol: " + name);
}

}  // namespace ldpr
