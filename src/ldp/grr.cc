#include "ldp/grr.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/simd.h"

namespace ldpr {

Grr::Grr(size_t d, double epsilon) : FrequencyProtocol(d, epsilon) {
  const double e = std::exp(epsilon);
  const double denom = static_cast<double>(d) - 1.0 + e;
  p_ = e / denom;
  q_ = 1.0 / denom;
}

Report Grr::Perturb(ItemId item, Rng& rng) const {
  LDPR_CHECK(item < d_);
  Report r;
  if (rng.Bernoulli(p_)) {
    r.value = item;
  } else {
    // Uniform over the d-1 items other than `item`.
    uint64_t draw = rng.UniformU64(d_ - 1);
    if (draw >= item) ++draw;
    r.value = static_cast<uint32_t>(draw);
  }
  return r;
}

bool Grr::Supports(const Report& report, ItemId item) const {
  return report.value == item;
}

void Grr::AccumulateSupports(const Report& report,
                             std::vector<double>& counts) const {
  LDPR_CHECK(report.value < counts.size());
  counts[report.value] += 1.0;
}

void Grr::AppendGenuineReports(ItemId item, uint64_t count, Rng& rng,
                               ReportBatch::Builder& out) const {
  LDPR_CHECK(item < d_);
  out.Reserve(count);
  for (uint64_t u = 0; u < count; ++u) {
    if (rng.Bernoulli(p_)) {
      out.AddValue(item);
    } else {
      // Uniform over the d-1 items other than `item` — the same draw
      // and skip adjustment as Perturb.
      uint64_t draw = rng.UniformU64(d_ - 1);
      if (draw >= item) ++draw;
      out.AddValue(static_cast<uint32_t>(draw));
    }
  }
}

void Grr::AppendCraftedReport(ItemId item, Rng& rng,
                              ReportBatch::Builder& out) const {
  (void)rng;
  LDPR_CHECK(item < d_);
  out.AddValue(item);
}

void Grr::AccumulateSupportsBatch(const ReportBatch& batch,
                                  std::vector<double>& counts) const {
  LDPR_CHECK(counts.size() == d_);
  const size_t n = batch.size();
  if (n < d_ / 4) {
    // Sparse batch: the O(d) histogram merge would dominate.
    if (batch.has_span()) {
      const Report* reports = batch.span();
      for (size_t i = 0; i < n; ++i) {
        const uint32_t v = reports[i].value;
        LDPR_CHECK(v < d_);
        counts[v] += 1.0;
      }
    } else {
      const uint32_t* values = batch.values();
      for (size_t i = 0; i < n; ++i) {
        const uint32_t v = values[i];
        LDPR_CHECK(v < d_);
        counts[v] += 1.0;
      }
    }
    return;
  }
  // Dense batch: count occurrences in integers (the bank-interleaved
  // histogram kernel), add each bucket once.  n consecutive +1.0's
  // and one +n are the same exact double.
  std::vector<uint64_t> hist(d_, 0);
  if (batch.has_span()) {
    // Gather value tiles off the 40-byte Report stride, then run the
    // kernel on each contiguous tile.
    constexpr size_t kValueTile = 8192;
    uint32_t tile[kValueTile];
    const Report* reports = batch.span();
    for (size_t i0 = 0; i0 < n; i0 += kValueTile) {
      const size_t tn = std::min(n - i0, kValueTile);
      for (size_t i = 0; i < tn; ++i) tile[i] = reports[i0 + i].value;
      SimdValueHistogramAdd(tile, tn, d_, hist.data());
    }
  } else {
    SimdValueHistogramAdd(batch.values(), n, d_, hist.data());
  }
  for (size_t v = 0; v < d_; ++v) {
    if (hist[v] != 0) counts[v] += static_cast<double>(hist[v]);
  }
}

double Grr::CountVariance(double f, size_t n) const {
  const double e = std::exp(epsilon_);
  const double nd = static_cast<double>(n);
  const double dd = static_cast<double>(d_);
  return nd * (dd - 2.0 + e) / ((e - 1.0) * (e - 1.0)) +
         nd * f * (dd - 2.0) / (e - 1.0);
}

std::vector<double> Grr::SampleSupportCounts(
    const std::vector<uint64_t>& item_counts, Rng& rng) const {
  LDPR_CHECK(item_counts.size() == d_);
  std::vector<double> counts(d_, 0.0);
  // Reusable uniform weights over d-1 "other" bins.
  std::vector<double> uniform_other(d_ - 1, 1.0);
  for (ItemId item = 0; item < d_; ++item) {
    const uint64_t n_item = item_counts[item];
    if (n_item == 0) continue;
    const uint64_t kept = rng.Binomial(n_item, p_);
    counts[item] += static_cast<double>(kept);
    const uint64_t misreports = n_item - kept;
    if (misreports == 0) continue;
    // Spread misreports uniformly over the other d-1 items.
    const std::vector<uint64_t> spread =
        SampleMultinomial(misreports, uniform_other, rng);
    for (size_t j = 0; j < spread.size(); ++j) {
      const size_t target = (j < item) ? j : j + 1;
      counts[target] += static_cast<double>(spread[j]);
    }
  }
  return counts;
}

Report Grr::CraftSupportingReport(ItemId item, Rng& rng) const {
  (void)rng;
  LDPR_CHECK(item < d_);
  Report r;
  r.value = item;
  return r;
}

}  // namespace ldpr
