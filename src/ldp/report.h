// The wire format of one user's perturbed report.
//
// Pure LDP protocols differ in their encoded domain (Section III-B of
// the paper): GRR sends an item index, OUE a d-bit vector, OLH a
// (hash seed, bucket) tuple.  Report is the tagged union all three
// share; each protocol reads only the fields it defined.

#ifndef LDPR_LDP_REPORT_H_
#define LDPR_LDP_REPORT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ldpr {

/// Identifier of an item in the input domain D = {0, ..., d-1}.
using ItemId = uint32_t;

/// One perturbed (or attacker-crafted) report in the encoded domain.
struct Report {
  /// OLH: the hash-function seed chosen by the user.
  uint64_t seed = 0;
  /// GRR: the reported item.  OLH: the reported bucket in {0,...,g-1}.
  uint32_t value = 0;
  /// OUE: the d perturbed bits (one byte per bit for simplicity; the
  /// aggregation path is support-count based so memory is transient).
  std::vector<uint8_t> bits;
};

}  // namespace ldpr

#endif  // LDPR_LDP_REPORT_H_
