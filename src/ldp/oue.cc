#include "ldp/oue.h"

#include <cmath>

namespace ldpr {

Oue::Oue(size_t d, double epsilon)
    : UnaryEncoding(d, epsilon, /*p_keep=*/0.5,
                    /*q_flip=*/1.0 / (std::exp(epsilon) + 1.0)) {}

double Oue::CountVariance(double f, size_t n) const {
  (void)f;  // Eq. (7) is frequency-independent.
  const double e = std::exp(epsilon_);
  return static_cast<double>(n) * 4.0 * e / ((e - 1.0) * (e - 1.0));
}

}  // namespace ldpr
