// Generalized Randomized Response (GRR), Kairouz et al. 2014;
// Section III-B of the paper, Eqs. (2)-(4).
//
// Each user reports her true item with probability
// p = e^eps / (d - 1 + e^eps) and any other specific item with
// probability q = 1 / (d - 1 + e^eps).  A report supports exactly the
// single item it carries.

#ifndef LDPR_LDP_GRR_H_
#define LDPR_LDP_GRR_H_

#include "ldp/protocol.h"

namespace ldpr {

class Grr final : public FrequencyProtocol {
 public:
  Grr(size_t d, double epsilon);

  ProtocolKind kind() const override { return ProtocolKind::kGrr; }
  std::string Name() const override { return "GRR"; }

  double p() const override { return p_; }
  double q() const override { return q_; }

  Report Perturb(ItemId item, Rng& rng) const override;
  bool Supports(const Report& report, ItemId item) const override;
  void AccumulateSupports(const Report& report,
                          std::vector<double>& counts) const override;

  /// SoA generation: appends perturbed values straight into the
  /// batch's values[] array — the same Bernoulli/uniform draws as
  /// Perturb, without materializing a Report.
  void AppendGenuineReports(ItemId item, uint64_t count, Rng& rng,
                            ReportBatch::Builder& out) const override;

  /// SoA crafting: the crafted GRR report is the item itself.
  void AppendCraftedReport(ItemId item, Rng& rng,
                           ReportBatch::Builder& out) const override;

  /// Batched path: a report-heavy batch folds through an integer
  /// value histogram (O(n + d), one virtual call for the whole batch,
  /// bank-interleaved via util/simd.h); a sparse one adds values
  /// directly.  Both orderings sum the same integers, so the result
  /// is byte-identical to the per-report loop.
  void AccumulateSupportsBatch(const ReportBatch& batch,
                               std::vector<double>& counts) const override;

  /// Eq. (4): Var[Phi(v)] = n*(d-2+e^eps)/(e^eps-1)^2
  ///                        + n*f*(d-2)/(e^eps-1).
  double CountVariance(double f, size_t n) const override;

  /// Exact closed-form sampling: kept reports are Binomial(n_v, p);
  /// each misreport lands uniformly on one of the d-1 other items, so
  /// misreports from item v spread multinomially.  O(d^2) worst case,
  /// O(#populated items * d) in practice.
  ///
  /// The sharded aggregation path uses the inherited
  /// SampleSupportCountsRange (restrict histogram, then this sampler):
  /// the binomial/multinomial split decomposes over user subsets, and
  /// the n_item == 0 fast path below already skips every item absent
  /// from a chunk, so no bespoke range override is needed.
  std::vector<double> SampleSupportCounts(
      const std::vector<uint64_t>& item_counts, Rng& rng) const override;

  /// An attacker-crafted GRR report for `item` is simply the item
  /// itself (malicious users bypass perturbation).
  Report CraftSupportingReport(ItemId item, Rng& rng) const override;

 private:
  double p_;
  double q_;
};

}  // namespace ldpr

#endif  // LDPR_LDP_GRR_H_
