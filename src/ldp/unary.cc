#include "ldp/unary.h"

#include <algorithm>

#include "util/logging.h"
#include "util/simd.h"

namespace ldpr {

UnaryEncoding::UnaryEncoding(size_t d, double epsilon, double p_keep,
                             double q_flip)
    : FrequencyProtocol(d, epsilon), p_keep_(p_keep), q_flip_(q_flip) {
  LDPR_CHECK(p_keep_ > q_flip_);
  LDPR_CHECK(q_flip_ > 0.0 && p_keep_ < 1.0);
}

Report UnaryEncoding::Perturb(ItemId item, Rng& rng) const {
  LDPR_CHECK(item < d_);
  Report r;
  r.bits.assign(d_, 0);
  for (size_t i = 0; i < d_; ++i) {
    const double keep_prob = (i == item) ? p_keep_ : q_flip_;
    r.bits[i] = rng.Bernoulli(keep_prob) ? 1 : 0;
  }
  return r;
}

bool UnaryEncoding::Supports(const Report& report, ItemId item) const {
  LDPR_CHECK(report.bits.size() == d_);
  LDPR_CHECK(item < d_);
  return report.bits[item] != 0;
}

void UnaryEncoding::AccumulateSupports(const Report& report,
                                       std::vector<double>& counts) const {
  LDPR_CHECK(report.bits.size() == d_);
  LDPR_CHECK(counts.size() == d_);
  for (size_t i = 0; i < d_; ++i) {
    if (report.bits[i]) counts[i] += 1.0;
  }
}

void UnaryEncoding::AppendGenuineReports(ItemId item, uint64_t count, Rng& rng,
                                         ReportBatch::Builder& out) const {
  LDPR_CHECK(item < d_);
  out.SetBitsWidth(d_);
  out.Reserve(count);
  for (uint64_t u = 0; u < count; ++u) {
    uint8_t* row = out.AddBitsRow();
    // Same per-bit draws, in the same order, as Perturb.
    for (size_t i = 0; i < d_; ++i) {
      const double keep_prob = (i == item) ? p_keep_ : q_flip_;
      row[i] = rng.Bernoulli(keep_prob) ? 1 : 0;
    }
  }
}

void UnaryEncoding::AppendCraftedReport(ItemId item, Rng& rng,
                                        ReportBatch::Builder& out) const {
  (void)rng;
  LDPR_CHECK(item < d_);
  out.SetBitsWidth(d_);
  out.AddBitsRow()[item] = 1;
}

void UnaryEncoding::AccumulateSupportsBatch(const ReportBatch& batch,
                                            std::vector<double>& counts) const {
  LDPR_CHECK(counts.size() == d_);
  if (batch.empty()) return;
  LDPR_CHECK(batch.bits_width() == d_);
  // Per-column integer sums over row tiles: the tile bounds the
  // uint32 column accumulators (bits are 0/1, so a tile of < 2^32
  // rows cannot overflow); per tile, each column total is added to
  // counts once, in ascending column order.  The column summation
  // itself runs through the byte-lane SIMD kernels: the packed
  // builder matrix feeds SimdUnaryColumnsAddPacked directly, span
  // rows go through row-pointer tiles (each report's bit vector is
  // already a contiguous d-byte row; no pack copy needed).
  const Report* span = batch.span();
  constexpr size_t kRowTile = 1u << 22;
  std::vector<uint32_t> column_ones(d_);
  for (size_t row0 = 0; row0 < batch.size(); row0 += kRowTile) {
    const size_t row1 = std::min(batch.size(), row0 + kRowTile);
    std::fill(column_ones.begin(), column_ones.end(), 0u);
    if (span == nullptr) {
      SimdUnaryColumnsAddPacked(batch.bits() + row0 * d_, row1 - row0, d_,
                                column_ones.data());
    } else {
      constexpr size_t kPtrTile = 1024;
      const uint8_t* rows[kPtrTile];
      for (size_t i0 = row0; i0 < row1; i0 += kPtrTile) {
        const size_t tn = std::min(row1 - i0, kPtrTile);
        for (size_t i = 0; i < tn; ++i) {
          LDPR_CHECK(span[i0 + i].bits.size() == d_);
          rows[i] = span[i0 + i].bits.data();
        }
        SimdUnaryColumnsAddRows(rows, tn, d_, column_ones.data());
      }
    }
    for (size_t v = 0; v < d_; ++v) {
      if (column_ones[v] != 0) counts[v] += static_cast<double>(column_ones[v]);
    }
  }
}

double UnaryEncoding::CountVariance(double f, size_t n) const {
  const double nd = static_cast<double>(n);
  const double diff = p_keep_ - q_flip_;
  return (nd * f * p_keep_ * (1.0 - p_keep_) +
          nd * (1.0 - f) * q_flip_ * (1.0 - q_flip_)) /
         (diff * diff);
}

std::vector<double> UnaryEncoding::SampleSupportCounts(
    const std::vector<uint64_t>& item_counts, Rng& rng) const {
  LDPR_CHECK(item_counts.size() == d_);
  uint64_t n = 0;
  for (uint64_t c : item_counts) n += c;
  std::vector<double> counts(d_);
  for (size_t v = 0; v < d_; ++v) {
    const uint64_t own = item_counts[v];
    counts[v] = static_cast<double>(rng.Binomial(own, p_keep_) +
                                    rng.Binomial(n - own, q_flip_));
  }
  return counts;
}

std::vector<double> UnaryEncoding::SampleSupportCountsRange(
    const std::vector<uint64_t>& item_counts, uint64_t user_begin,
    uint64_t user_end, Rng& rng) const {
  LDPR_CHECK(item_counts.size() == d_);
  LDPR_CHECK(user_begin <= user_end);
  const uint64_t chunk_n = user_end - user_begin;
  std::vector<double> counts(d_);
  uint64_t offset = 0;
  for (size_t v = 0; v < d_; ++v) {
    const uint64_t own =
        UsersOfItemInRange(offset, item_counts[v], user_begin, user_end);
    offset += item_counts[v];
    counts[v] = static_cast<double>(rng.Binomial(own, p_keep_) +
                                    rng.Binomial(chunk_n - own, q_flip_));
  }
  return counts;
}

Report UnaryEncoding::CraftSupportingReport(ItemId item, Rng& rng) const {
  (void)rng;
  LDPR_CHECK(item < d_);
  Report r;
  r.bits.assign(d_, 0);
  r.bits[item] = 1;
  return r;
}

double UnaryEncoding::ExpectedOnes() const {
  return p_keep_ + static_cast<double>(d_ - 1) * q_flip_;
}

}  // namespace ldpr
