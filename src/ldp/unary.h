// Unary-encoding protocol family (Wang et al. 2017).
//
// The user one-hot encodes her item into a d-bit vector and perturbs
// each bit independently: the 1-bit stays 1 with probability p_keep,
// each 0-bit flips to 1 with probability q_flip.  OUE (ldp/oue.h)
// optimizes (p_keep, q_flip) = (1/2, 1/(e^eps + 1)); SUE (basic
// RAPPOR, ldp/sue.h) uses the symmetric (e^{eps/2}/(e^{eps/2}+1),
// 1/(e^{eps/2}+1)).  Everything structural — perturbation, support,
// exact closed-form aggregation sampling — is shared here.

#ifndef LDPR_LDP_UNARY_H_
#define LDPR_LDP_UNARY_H_

#include "ldp/protocol.h"

namespace ldpr {

class UnaryEncoding : public FrequencyProtocol {
 public:
  double p() const override { return p_keep_; }
  double q() const override { return q_flip_; }

  Report Perturb(ItemId item, Rng& rng) const override;
  bool Supports(const Report& report, ItemId item) const override;
  void AccumulateSupports(const Report& report,
                          std::vector<double>& counts) const override;

  /// SoA generation: fills zeroed packed bit rows in place with the
  /// same per-bit Bernoulli draws as Perturb — no per-user
  /// std::vector<uint8_t> allocation.
  void AppendGenuineReports(ItemId item, uint64_t count, Rng& rng,
                            ReportBatch::Builder& out) const override;

  /// SoA crafting: a one-hot packed row.
  void AppendCraftedReport(ItemId item, Rng& rng,
                           ReportBatch::Builder& out) const override;

  /// Batched path: sums the batch's packed 0/1 bit rows into integer
  /// column totals (byte-lane SIMD accumulation, util/simd.h) and
  /// adds each column total once — byte-identical to the per-report
  /// +1.0 sequence, without the per-report virtual dispatch and
  /// per-bit branch.
  void AccumulateSupportsBatch(const ReportBatch& batch,
                               std::vector<double>& counts) const override;

  /// Exact generic unary variance:
  /// Var[Phi(v)] = (n f p(1-p) + n(1-f) q(1-q)) / (p-q)^2.
  double CountVariance(double f, size_t n) const override;

  /// Exact closed-form sampling: bits are independent across items,
  /// so per-item support counts are Binomial(n_v, p) +
  /// Binomial(n - n_v, q) jointly independently.  Both binomials
  /// decompose over user subsets, so the sharded path recomposes the
  /// exact same joint law.
  std::vector<double> SampleSupportCounts(
      const std::vector<uint64_t>& item_counts, Rng& rng) const override;

  /// Shard building block: the same two binomials restricted to the
  /// canonical users [user_begin, user_end), without materializing
  /// the restricted histogram.  Draws in the same order as
  /// SampleSupportCounts on the restriction (bit-compatible).
  std::vector<double> SampleSupportCountsRange(
      const std::vector<uint64_t>& item_counts, uint64_t user_begin,
      uint64_t user_end, Rng& rng) const override;

  /// One-hot crafted vector (the adaptive-attack sample encoding).
  Report CraftSupportingReport(ItemId item, Rng& rng) const override;

  /// Expected number of 1-bits in a genuine report: p + (d-1) q.
  /// MGA pads crafted vectors to this count.
  double ExpectedOnes() const;

 protected:
  UnaryEncoding(size_t d, double epsilon, double p_keep, double q_flip);

 private:
  double p_keep_;
  double q_flip_;
};

}  // namespace ldpr

#endif  // LDPR_LDP_UNARY_H_
