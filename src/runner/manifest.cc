#include "runner/manifest.h"

#include <cstdio>

#include "util/json_writer.h"
#include "util/simd.h"

namespace ldpr {

std::string GitDescribe() {
#ifdef LDPR_GIT_DESCRIBE
  return LDPR_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

RunManifest MakeRunManifest(const ScenarioSpec& spec,
                            const ScenarioRunInfo& info,
                            const ScenarioRunReport& report,
                            std::vector<std::string> files) {
  RunManifest manifest;
  manifest.scenario_id = spec.id;
  manifest.artifact = spec.artifact;
  manifest.title = spec.title;
  manifest.seed = info.seed;
  manifest.scale = info.scale;
  manifest.trials = info.trials;
  manifest.threads = info.threads;
  manifest.outer_workers = report.outer_workers;
  manifest.shards = report.shards;
  manifest.tables = report.tables;
  manifest.rows = report.rows;
  manifest.simd = ActiveSimdBackendName();
  manifest.git_describe = GitDescribe();
  manifest.datasets = info.datasets;
  manifest.columns = spec.columns;
  manifest.timing_columns = spec.timing_columns;
  manifest.files = std::move(files);
  return manifest;
}

std::string ManifestToJson(const RunManifest& manifest) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  w.Int(manifest.schema_version);
  w.Key("scenario");
  w.String(manifest.scenario_id);
  w.Key("artifact");
  w.String(manifest.artifact);
  w.Key("title");
  w.String(manifest.title);
  w.Key("seed");
  w.UInt(manifest.seed);
  w.Key("scale");
  w.Number(manifest.scale);
  w.Key("trials");
  w.UInt(manifest.trials);
  w.Key("threads");
  w.UInt(manifest.threads);
  w.Key("outer_workers");
  w.UInt(manifest.outer_workers);
  w.Key("shards");
  w.UInt(manifest.shards);
  w.Key("tables");
  w.UInt(manifest.tables);
  w.Key("rows");
  w.UInt(manifest.rows);
  w.Key("simd");
  w.String(manifest.simd);
  w.Key("git_describe");
  w.String(manifest.git_describe);
  w.Key("datasets");
  w.BeginArray();
  for (const auto& ds : manifest.datasets) {
    w.BeginObject();
    w.Key("name");
    w.String(ds.display);
    w.Key("domain_size");
    w.UInt(ds.domain_size);
    w.Key("num_users");
    w.UInt(ds.num_users);
    w.EndObject();
  }
  w.EndArray();
  w.Key("columns");
  w.BeginArray();
  for (const std::string& column : manifest.columns) w.String(column);
  w.EndArray();
  w.Key("timing_columns");
  w.BeginArray();
  for (const std::string& column : manifest.timing_columns) w.String(column);
  w.EndArray();
  w.Key("files");
  w.BeginArray();
  for (const std::string& file : manifest.files) w.String(file);
  w.EndArray();
  w.EndObject();
  return w.str();
}

namespace {

Status WriteJsonLine(const std::string& path, const std::string& body) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr)
    return InternalError("cannot open for writing: " + path);
  const std::string json = body + "\n";
  const bool wrote =
      std::fwrite(json.data(), 1, json.size(), file) == json.size();
  const bool flushed = std::fflush(file) == 0 && std::ferror(file) == 0;
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !flushed || !closed)
    return InternalError("partial manifest write: " + path);
  return Status::Ok();
}

}  // namespace

Status WriteManifest(const std::string& path, const RunManifest& manifest) {
  return WriteJsonLine(path, ManifestToJson(manifest));
}

std::string TreeManifestToJson(const TreeManifest& manifest) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  w.Int(manifest.schema_version);
  w.Key("kind");
  w.String("ldpr_result_tree");
  w.Key("git_describe");
  w.String(manifest.git_describe);
  w.Key("scenarios");
  w.BeginArray();
  for (const TreeManifest::Entry& entry : manifest.scenarios) {
    w.BeginObject();
    w.Key("id");
    w.String(entry.id);
    w.Key("seed");
    w.UInt(entry.seed);
    w.Key("scale");
    w.Number(entry.scale);
    w.Key("trials");
    w.UInt(entry.trials);
    w.Key("files");
    w.BeginArray();
    for (const std::string& file : entry.files) w.String(file);
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

Status WriteTreeManifest(const std::string& path,
                         const TreeManifest& manifest) {
  return WriteJsonLine(path, TreeManifestToJson(manifest));
}

}  // namespace ldpr
