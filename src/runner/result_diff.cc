#include "runner/result_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "util/json_reader.h"
#include "util/json_writer.h"

namespace ldpr {

namespace {

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return InternalError("cannot read: " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return InternalError("read failed: " + path);
  return ss.str();
}

std::vector<std::string> StringArrayOr(const JsonValue& object,
                                       const std::string& key) {
  std::vector<std::string> out;
  const JsonValue* array = object.Find(key);
  if (array == nullptr || !array->is_array()) return out;
  for (const JsonValue& entry : array->array()) {
    if (entry.is_string()) out.push_back(entry.string());
  }
  return out;
}

// Loads one scenario directory: manifest.json (run knobs, timing
// columns) + results.jsonl (the rows).
StatusOr<ScenarioResults> LoadScenarioDir(const std::string& dir) {
  auto manifest_text = ReadFile(dir + "/manifest.json");
  if (!manifest_text.ok()) return manifest_text.status();
  auto manifest = ParseJson(*manifest_text);
  if (!manifest.ok())
    return InvalidArgumentError(dir + "/manifest.json: " +
                                manifest.status().message());

  ScenarioResults scenario;
  scenario.id = manifest->StringOr(
      "scenario", std::filesystem::path(dir).filename().string());
  scenario.schema_version =
      static_cast<int>(manifest->NumberOr("schema_version", 1));
  scenario.seed = static_cast<uint64_t>(manifest->NumberOr("seed", 0));
  scenario.scale = manifest->NumberOr("scale", 0);
  scenario.trials = static_cast<size_t>(manifest->NumberOr("trials", 0));
  scenario.timing_columns = StringArrayOr(*manifest, "timing_columns");

  const std::string rows_path = dir + "/results.jsonl";
  auto rows_text = ReadFile(rows_path);
  if (!rows_text.ok()) return rows_text.status();

  std::map<std::pair<std::string, std::string>, bool> seen;
  std::istringstream lines(*rows_text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto parsed = ParseJson(line);
    if (!parsed.ok())
      return InvalidArgumentError(rows_path + ":" + std::to_string(line_no) +
                                  ": " + parsed.status().message());
    ResultRow row;
    const std::string row_scenario = parsed->StringOr("scenario", "");
    if (row_scenario != scenario.id)
      return InvalidArgumentError(
          rows_path + ":" + std::to_string(line_no) + ": row scenario '" +
          row_scenario + "' does not match manifest '" + scenario.id + "'");
    row.table = parsed->StringOr("table", "");
    row.row = parsed->StringOr("row", "");
    if (row.table.empty() || row.row.empty())
      return InvalidArgumentError(rows_path + ":" + std::to_string(line_no) +
                                  ": row is missing its table/row key");
    const JsonValue* values = parsed->Find("values");
    if (values == nullptr || !values->is_object())
      return InvalidArgumentError(rows_path + ":" + std::to_string(line_no) +
                                  ": row has no values object");
    for (const auto& member : values->object()) {
      double value;
      if (member.second.is_number()) {
        value = member.second.number();
      } else if (member.second.is_null()) {
        // JsonNumber renders NaN/Inf as null; load them back as NaN
        // so both-NaN cells compare as equal.
        value = std::nan("");
      } else {
        return InvalidArgumentError(
            rows_path + ":" + std::to_string(line_no) + ": column '" +
            member.first + "' is not a number");
      }
      row.values.emplace_back(member.first, value);
    }
    if (!seen.emplace(std::make_pair(row.table, row.row), true).second)
      return InvalidArgumentError(rows_path + ":" + std::to_string(line_no) +
                                  ": duplicate row key (" + row.table +
                                  " | " + row.row + ")");
    scenario.rows.push_back(std::move(row));
  }
  return scenario;
}

}  // namespace

StatusOr<ResultTree> LoadResultTree(const std::string& root) {
  std::error_code ec;
  if (!std::filesystem::is_directory(root, ec))
    return InvalidArgumentError("not a directory: " + root);

  ResultTree tree;
  tree.root = root;

  const std::string top_manifest_path = root + "/manifest.json";
  if (std::filesystem::exists(top_manifest_path, ec)) {
    auto text = ReadFile(top_manifest_path);
    if (!text.ok()) return text.status();
    auto manifest = ParseJson(*text);
    if (!manifest.ok())
      return InvalidArgumentError(top_manifest_path + ": " +
                                  manifest.status().message());
    const JsonValue* scenarios = manifest->Find("scenarios");
    if (scenarios != nullptr && scenarios->is_array()) {
      // A tree manifest: load exactly the scenarios it lists.
      for (const JsonValue& entry : scenarios->array()) {
        const std::string id = entry.StringOr("id", "");
        if (id.empty())
          return InvalidArgumentError(top_manifest_path +
                                      ": scenario entry without an id");
        auto scenario = LoadScenarioDir(root + "/" + id);
        if (!scenario.ok()) return scenario.status();
        tree.scenarios.push_back(std::move(*scenario));
      }
      return tree;
    }
    // A per-scenario manifest: `root` is itself one scenario dir.
    auto scenario = LoadScenarioDir(root);
    if (!scenario.ok()) return scenario.status();
    tree.scenarios.push_back(std::move(*scenario));
    return tree;
  }

  // No top-level manifest (pre-v2 trees): scan subdirectories, in
  // name order for a stable report.
  std::vector<std::string> dirs;
  for (const auto& entry : std::filesystem::directory_iterator(root, ec)) {
    if (entry.is_directory() &&
        std::filesystem::exists(entry.path() / "manifest.json"))
      dirs.push_back(entry.path().string());
  }
  if (ec) return InternalError("cannot scan: " + root);
  std::sort(dirs.begin(), dirs.end());
  if (dirs.empty())
    return InvalidArgumentError(root +
                                " is not a result tree (no manifest.json "
                                "at the root or in any subdirectory)");
  for (const std::string& dir : dirs) {
    auto scenario = LoadScenarioDir(dir);
    if (!scenario.ok()) return scenario.status();
    tree.scenarios.push_back(std::move(*scenario));
  }
  return tree;
}

double RelativeDrift(double a, double b, double abs_floor) {
  if (std::isnan(a) && std::isnan(b)) return 0;
  if (a == b) return 0;
  const double denom = std::max(std::fabs(a), std::fabs(b));
  if (std::isnan(a) || std::isnan(b)) return std::nan("");
  if (denom <= abs_floor) return 0;
  return std::fabs(a - b) / denom;
}

namespace {

bool Contains(const std::vector<std::string>& list, const std::string& name) {
  return std::find(list.begin(), list.end(), name) != list.end();
}

void DiffScenario(const ScenarioResults& a, const ScenarioResults& b,
                  const DiffOptions& options, DiffReport& report) {
  ScenarioDriftSummary summary;
  summary.id = a.id;

  const auto manifest_mismatch = [&](const std::string& field,
                                     const std::string& got,
                                     const std::string& want) {
    DiffViolation v;
    v.kind = "manifest-mismatch";
    v.scenario = a.id;
    v.detail = field + " differs: " + got + " vs " + want;
    report.violations.push_back(std::move(v));
    ++summary.violations;
  };
  if (a.seed != b.seed)
    manifest_mismatch("seed", std::to_string(a.seed), std::to_string(b.seed));
  if (a.trials != b.trials)
    manifest_mismatch("trials", std::to_string(a.trials),
                      std::to_string(b.trials));
  if (a.scale != b.scale)
    manifest_mismatch("scale", JsonNumber(a.scale), JsonNumber(b.scale));

  // Timing columns never gate; take the union so a tree written by an
  // older binary still skips the other side's timing columns.
  std::vector<std::string> timing = a.timing_columns;
  for (const std::string& column : b.timing_columns) {
    if (!Contains(timing, column)) timing.push_back(column);
  }

  std::map<std::pair<std::string, std::string>, const ResultRow*> b_rows;
  for (const ResultRow& row : b.rows)
    b_rows[std::make_pair(row.table, row.row)] = &row;

  for (const ResultRow& row_a : a.rows) {
    const auto key = std::make_pair(row_a.table, row_a.row);
    const auto it = b_rows.find(key);
    if (it == b_rows.end()) {
      DiffViolation v;
      v.kind = "missing-row";
      v.scenario = a.id;
      v.table = row_a.table;
      v.row = row_a.row;
      v.detail = "row present in A only";
      report.violations.push_back(std::move(v));
      ++summary.violations;
      continue;
    }
    const ResultRow& row_b = *it->second;
    b_rows.erase(it);
    ++summary.rows;

    for (const auto& [column, value_a] : row_a.values) {
      const auto found =
          std::find_if(row_b.values.begin(), row_b.values.end(),
                       [&](const auto& kv) { return kv.first == column; });
      if (found == row_b.values.end()) {
        DiffViolation v;
        v.kind = "schema-mismatch";
        v.scenario = a.id;
        v.table = row_a.table;
        v.row = row_a.row;
        v.column = column;
        v.detail = "column present in A only";
        report.violations.push_back(std::move(v));
        ++summary.violations;
        continue;
      }
      const double value_b = found->second;
      // Exact mode means bit-equal: the noise floor only applies to
      // tolerance mode (drift between near-zero noise is
      // meaningless, but *any* difference between same-seed runs is
      // a determinism break).
      const double drift = RelativeDrift(
          value_a, value_b, options.exact ? 0.0 : options.abs_floor);

      if (Contains(timing, column)) {
        if (!std::isnan(drift))
          summary.max_timing_drift =
              std::max(summary.max_timing_drift, drift);
        continue;
      }

      ++summary.values;
      const bool worst = std::isnan(drift) || drift > summary.max_drift;
      if (worst && drift != 0) {
        summary.max_drift = drift;
        summary.max_cell = row_a.table + " | " + row_a.row + " | " + column;
      }
      const bool violated = options.exact
                                ? drift != 0
                                : (std::isnan(drift) ||
                                   drift > options.tolerance);
      if (violated) {
        DiffViolation v;
        v.kind = "value-drift";
        v.scenario = a.id;
        v.table = row_a.table;
        v.row = row_a.row;
        v.column = column;
        v.a = value_a;
        v.b = value_b;
        v.drift = drift;
        report.violations.push_back(std::move(v));
        ++summary.violations;
      }
    }
    for (const auto& [column, value_b] : row_b.values) {
      (void)value_b;
      const auto found =
          std::find_if(row_a.values.begin(), row_a.values.end(),
                       [&](const auto& kv) { return kv.first == column; });
      if (found == row_a.values.end()) {
        DiffViolation v;
        v.kind = "schema-mismatch";
        v.scenario = a.id;
        v.table = row_a.table;
        v.row = row_a.row;
        v.column = column;
        v.detail = "column present in B only";
        report.violations.push_back(std::move(v));
        ++summary.violations;
      }
    }
  }
  for (const auto& [key, row_b] : b_rows) {
    (void)key;
    DiffViolation v;
    v.kind = "extra-row";
    v.scenario = a.id;
    v.table = row_b->table;
    v.row = row_b->row;
    v.detail = "row present in B only";
    report.violations.push_back(std::move(v));
    ++summary.violations;
  }
  report.scenarios.push_back(std::move(summary));
}

}  // namespace

DiffReport DiffResultTrees(const ResultTree& a, const ResultTree& b,
                           const DiffOptions& options) {
  DiffReport report;
  std::map<std::string, const ScenarioResults*> b_scenarios;
  for (const ScenarioResults& scenario : b.scenarios)
    b_scenarios[scenario.id] = &scenario;

  for (const ScenarioResults& scenario_a : a.scenarios) {
    const auto it = b_scenarios.find(scenario_a.id);
    if (it == b_scenarios.end()) {
      DiffViolation v;
      v.kind = "missing-scenario";
      v.scenario = scenario_a.id;
      v.detail = "scenario present in A only";
      report.violations.push_back(std::move(v));
      ScenarioDriftSummary summary;
      summary.id = scenario_a.id;
      summary.violations = 1;
      report.scenarios.push_back(std::move(summary));
      continue;
    }
    DiffScenario(scenario_a, *it->second, options, report);
    b_scenarios.erase(it);
  }
  for (const auto& [id, scenario_b] : b_scenarios) {
    (void)scenario_b;
    DiffViolation v;
    v.kind = "extra-scenario";
    v.scenario = id;
    v.detail = "scenario present in B only";
    report.violations.push_back(std::move(v));
    ScenarioDriftSummary summary;
    summary.id = id;
    summary.violations = 1;
    report.scenarios.push_back(std::move(summary));
  }
  return report;
}

std::string FormatDriftTable(const DiffReport& report,
                             size_t max_violations) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-14s %5s %7s %10s %6s  %s\n", "scenario",
                "rows", "values", "max-drift", "viol", "worst cell");
  out += buf;
  out += std::string(78, '-') + "\n";
  for (const ScenarioDriftSummary& s : report.scenarios) {
    std::snprintf(buf, sizeof(buf), "%-14s %5zu %7zu %10.3g %6zu  %s\n",
                  s.id.c_str(), s.rows, s.values, s.max_drift, s.violations,
                  s.max_cell.empty() ? "-" : s.max_cell.c_str());
    out += buf;
    if (s.max_timing_drift > 0) {
      std::snprintf(buf, sizeof(buf),
                    "%-14s %5s %7s %10.3g %6s  (timing columns, not gated)\n",
                    "", "", "", s.max_timing_drift, "");
      out += buf;
    }
  }

  if (report.violations.empty()) return out;
  out += "\nviolations";
  if (max_violations != 0 && report.violations.size() > max_violations) {
    std::snprintf(buf, sizeof(buf), " (first %zu of %zu)", max_violations,
                  report.violations.size());
    out += buf;
  }
  out += ":\n";
  size_t shown = 0;
  for (const DiffViolation& v : report.violations) {
    if (max_violations != 0 && shown == max_violations) break;
    ++shown;
    out += "  [" + v.kind + "] " + v.scenario;
    if (!v.table.empty()) out += " | " + v.table;
    if (!v.row.empty()) out += " | " + v.row;
    if (!v.column.empty()) out += " | " + v.column;
    if (v.kind == "value-drift") {
      std::snprintf(buf, sizeof(buf), ": %s vs %s (drift %.3g)",
                    JsonNumber(v.a).c_str(), JsonNumber(v.b).c_str(),
                    v.drift);
      out += buf;
    } else if (!v.detail.empty()) {
      out += ": " + v.detail;
    }
    out += "\n";
  }
  return out;
}

}  // namespace ldpr
