// ScenarioRegistry: the process-wide table of runnable scenarios.
//
// A scenario is a declarative ScenarioSpec (sim/scenario_spec.h) plus
// the two pieces of code a figure reproduction genuinely needs:
//
//   - format_row: maps one lowered row's ExperimentResults onto the
//     spec's output columns (grid scenarios);
//   - run: a full custom run loop writing through the ResultSink
//     (bespoke scenarios: ablation, ext_protocols, fig9) — when set,
//     the generic grid engine is bypassed.
//
// Registration is explicit (bench/scenarios.h's
// RegisterAllScenarios()), not static-initializer magic, so linking
// the scenario library from tests or tools always yields the same
// registry contents.

#ifndef LDPR_RUNNER_REGISTRY_H_
#define LDPR_RUNNER_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "runner/result_sink.h"
#include "sim/scenario_spec.h"

namespace ldpr {

/// What a scenario run did — recorded into the run manifest.
struct ScenarioRunReport {
  size_t tables = 0;
  size_t rows = 0;
  /// Top-level split of the thread budget over the scenario's
  /// parallel units (configs for grid scenarios, cell x trial for
  /// bespoke grids): `outer_workers` concurrent units, each with
  /// `shards` within-trial aggregation workers.
  size_t outer_workers = 1;
  size_t shards = 1;
  /// The resolved run knobs and dataset sizes this run used — the
  /// same info the sinks received, so manifest writers never have to
  /// re-resolve anything.
  ScenarioRunInfo info;
};

/// Everything a custom scenario run receives: the resolved knobs, the
/// already-resolved datasets (spec.datasets order), the sink to write
/// through, and the report to fill in.
struct ScenarioContext {
  const ScenarioSpec& spec;
  uint64_t seed = 0;
  size_t trials = 1;
  double scale = 1.0;
  size_t threads = 1;
  const std::vector<Dataset>& datasets;
  ResultSink& sink;
  ScenarioRunReport& report;
};

using ScenarioRunFn = std::function<Status(ScenarioContext&)>;

/// Maps the ExperimentResults of one lowered row (one per
/// spec.attacks entry, in attack order) to the row's column values.
using RowFormatFn =
    std::function<std::vector<double>(const std::vector<ExperimentResult>&)>;

struct Scenario {
  ScenarioSpec spec;
  RowFormatFn format_row;  // required unless spec.custom
  ScenarioRunFn run;       // required iff spec.custom
};

class ScenarioRegistry {
 public:
  /// The process-wide registry every driver/test shares.
  static ScenarioRegistry& Global();

  /// Registers a scenario; aborts on duplicate ids or on a scenario
  /// missing its required callback.
  void Register(Scenario scenario);

  /// Looks a scenario up by spec id; nullptr when absent.  Pointers
  /// stay valid for the registry's lifetime.
  const Scenario* Find(const std::string& id) const;

  /// All scenarios in registration order.
  std::vector<const Scenario*> scenarios() const;

  size_t size() const { return scenarios_.size(); }

 private:
  std::vector<std::unique_ptr<Scenario>> scenarios_;
};

}  // namespace ldpr

#endif  // LDPR_RUNNER_REGISTRY_H_
