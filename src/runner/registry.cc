#include "runner/registry.h"

#include "util/logging.h"

namespace ldpr {

ScenarioRegistry& ScenarioRegistry::Global() {
  static ScenarioRegistry* registry = new ScenarioRegistry();
  return *registry;
}

void ScenarioRegistry::Register(Scenario scenario) {
  LDPR_CHECK(!scenario.spec.id.empty());
  LDPR_CHECK(Find(scenario.spec.id) == nullptr);
  if (scenario.spec.custom) {
    LDPR_CHECK(scenario.run != nullptr);
  } else {
    LDPR_CHECK(scenario.format_row != nullptr);
  }
  scenarios_.push_back(std::make_unique<Scenario>(std::move(scenario)));
}

const Scenario* ScenarioRegistry::Find(const std::string& id) const {
  for (const auto& scenario : scenarios_) {
    if (scenario->spec.id == id) return scenario.get();
  }
  return nullptr;
}

std::vector<const Scenario*> ScenarioRegistry::scenarios() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const auto& scenario : scenarios_) out.push_back(scenario.get());
  return out;
}

}  // namespace ldpr
