#include "runner/result_sink.h"

#include "util/csv.h"
#include "util/json_writer.h"
#include "util/logging.h"

namespace ldpr {

void ResultSink::BeginScenario(const ScenarioRunInfo& info) { info_ = info; }

// ----------------------------------------------------------- console

void ConsoleSink::BeginScenario(const ScenarioRunInfo& info) {
  ResultSink::BeginScenario(info);
  // An info without a title is a bare id tag (the CLI): no banner.
  if (info.title.empty()) return;
  std::printf("%s\n", info.title.c_str());
  std::printf("scenario=%s seed=%llu scale=%.3g trials=%zu\n",
              info.id.c_str(), static_cast<unsigned long long>(info.seed),
              info.scale, info.trials);
  // Kept on its own line: the determinism harness strips lines
  // mentioning the thread count before diffing runs.
  std::printf("threads=%zu (LDPR_THREADS)\n", info.threads);
  for (size_t i = 0; i < info.datasets.size(); ++i) {
    const auto& ds = info.datasets[i];
    std::printf("%s%s: d=%zu n=%llu", i == 0 ? "" : " | ",
                ds.display.c_str(), ds.domain_size,
                static_cast<unsigned long long>(ds.num_users));
  }
  if (!info.datasets.empty()) std::printf("\n");
  std::printf("\n");
}

void ConsoleSink::BeginTable(const std::string& title,
                             const std::vector<std::string>& columns) {
  LDPR_CHECK(table_ == nullptr);
  table_ = std::make_unique<TablePrinter>(title, columns);
}

void ConsoleSink::AddRow(const std::string& label,
                         const std::vector<double>& values) {
  LDPR_CHECK(table_ != nullptr);
  table_->AddRow(label, values);
}

void ConsoleSink::AddSeparator() {
  LDPR_CHECK(table_ != nullptr);
  table_->AddSeparator();
}

void ConsoleSink::EndTable() {
  LDPR_CHECK(table_ != nullptr);
  table_->Print();
  table_.reset();
}

Status ConsoleSink::Finish() {
  LDPR_CHECK(table_ == nullptr);  // every table was closed
  return Status::Ok();
}

// --------------------------------------------------------------- csv

CsvSink::CsvSink(const std::string& path) : path_(path), writer_(path) {}

void CsvSink::BeginTable(const std::string& title,
                         const std::vector<std::string>& columns) {
  table_ = title;
  columns_ = columns;
  if (columns != header_written_for_) {
    std::vector<std::string> header = {"scenario", "table", "row"};
    header.insert(header.end(), columns.begin(), columns.end());
    writer_.WriteRow(header);
    header_written_for_ = columns;
  }
}

void CsvSink::AddRow(const std::string& label,
                     const std::vector<double>& values) {
  LDPR_CHECK(values.size() == columns_.size());
  std::vector<std::string> fields = {info_.id, table_, label};
  for (double v : values) fields.push_back(JsonNumber(v));
  writer_.WriteRow(fields);
}

Status CsvSink::Finish() {
  if (writer_.Close()) return Status::Ok();
  if (!writer_.opened())
    return InternalError("cannot open for writing: " + path_);
  return InternalError("partial CSV write: " + path_);
}

// ------------------------------------------------------------- jsonl

JsonlSink::JsonlSink(const std::string& path)
    : path_(path), file_(std::fopen(path.c_str(), "w")) {}

JsonlSink::~JsonlSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlSink::BeginTable(const std::string& title,
                           const std::vector<std::string>& columns) {
  table_ = title;
  columns_ = columns;
}

void JsonlSink::AddRow(const std::string& label,
                       const std::vector<double>& values) {
  LDPR_CHECK(values.size() == columns_.size());
  if (file_ == nullptr) return;
  JsonWriter w;
  w.BeginObject();
  w.Key("scenario");
  w.String(info_.id);
  w.Key("table");
  w.String(table_);
  w.Key("row");
  w.String(label);
  w.Key("values");
  w.BeginObject();
  for (size_t i = 0; i < values.size(); ++i) {
    w.Key(columns_[i]);
    w.Number(values[i]);
  }
  w.EndObject();
  w.EndObject();
  const std::string line = w.str() + "\n";
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size())
    write_error_ = true;
}

Status JsonlSink::Finish() {
  if (finished_) return finish_result_;  // latched: repeats don't mask errors
  finished_ = true;
  if (file_ == nullptr) {
    finish_result_ = InternalError("cannot open for writing: " + path_);
    return finish_result_;
  }
  const bool flush_failed = std::fflush(file_) != 0 || std::ferror(file_) != 0;
  const bool close_failed = std::fclose(file_) != 0;
  file_ = nullptr;
  if (write_error_ || flush_failed || close_failed)
    finish_result_ = InternalError("partial JSONL write: " + path_);
  return finish_result_;
}

// ------------------------------------------------------------- multi

MultiSink::MultiSink(std::vector<std::unique_ptr<ResultSink>> sinks)
    : sinks_(std::move(sinks)) {
  for (const auto& sink : sinks_) LDPR_CHECK(sink != nullptr);
}

void MultiSink::BeginScenario(const ScenarioRunInfo& info) {
  ResultSink::BeginScenario(info);
  for (auto& sink : sinks_) sink->BeginScenario(info);
}

void MultiSink::BeginTable(const std::string& title,
                           const std::vector<std::string>& columns) {
  for (auto& sink : sinks_) sink->BeginTable(title, columns);
}

void MultiSink::AddRow(const std::string& label,
                       const std::vector<double>& values) {
  for (auto& sink : sinks_) sink->AddRow(label, values);
}

void MultiSink::AddSeparator() {
  for (auto& sink : sinks_) sink->AddSeparator();
}

void MultiSink::EndTable() {
  for (auto& sink : sinks_) sink->EndTable();
}

Status MultiSink::Finish() {
  Status first = Status::Ok();
  for (auto& sink : sinks_) {
    Status status = sink->Finish();
    if (!status.ok() && first.ok()) first = status;
  }
  return first;
}

}  // namespace ldpr
