// ResultSink: the one output interface every scenario (and
// ldprecover_cli) writes results through.  A sink consumes the same
// row stream the paper-style console tables render — BeginTable /
// AddRow / AddSeparator / EndTable — so the console view, the CSV
// file, and the JSONL file of one run are three serializations of
// identical rows.
//
// Error model: writes are buffered/streamed without per-call error
// returns; Finish() flushes and reports the first I/O failure
// (including partial writes detected via ferror/fclose).  Callers
// must check Finish() — a sink that never Finish()es cleanly must be
// treated as having produced garbage.
//
// Determinism: CSV and JSONL render doubles with the shortest
// round-trip representation (util/json_writer.h), so byte-identical
// metric vectors produce byte-identical files — the property the
// scenario determinism ctest entries diff across thread counts.

#ifndef LDPR_RUNNER_RESULT_SINK_H_
#define LDPR_RUNNER_RESULT_SINK_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "util/csv.h"
#include "util/status.h"
#include "util/table.h"

namespace ldpr {

/// Run metadata a sink may surface (the console banner) or attach to
/// rows (the scenario id column).
struct ScenarioRunInfo {
  std::string id;
  std::string title;
  uint64_t seed = 0;
  double scale = 0;
  size_t trials = 0;
  size_t threads = 0;
  struct DatasetInfo {
    std::string display;
    size_t domain_size = 0;
    uint64_t num_users = 0;
  };
  std::vector<DatasetInfo> datasets;
};

class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Announces the run this sink will receive rows for.  Optional;
  /// sinks default to an anonymous scenario.
  virtual void BeginScenario(const ScenarioRunInfo& info);

  /// Opens a table; every AddRow until EndTable belongs to it.
  virtual void BeginTable(const std::string& title,
                          const std::vector<std::string>& columns) = 0;

  /// Emits one row; values.size() must equal the open table's column
  /// count.
  virtual void AddRow(const std::string& label,
                      const std::vector<double>& values) = 0;

  /// Visual group separator (console only; data sinks ignore it).
  virtual void AddSeparator() {}

  virtual void EndTable() {}

  /// Flushes and reports the first write failure.  Idempotent.
  virtual Status Finish() = 0;

 protected:
  ScenarioRunInfo info_;
};

/// Renders tables to stdout via TablePrinter, prefixed by the
/// scenario banner — the view the old bench_* binaries printed.
class ConsoleSink : public ResultSink {
 public:
  void BeginScenario(const ScenarioRunInfo& info) override;
  void BeginTable(const std::string& title,
                  const std::vector<std::string>& columns) override;
  void AddRow(const std::string& label,
              const std::vector<double>& values) override;
  void AddSeparator() override;
  void EndTable() override;
  Status Finish() override;

 private:
  std::unique_ptr<TablePrinter> table_;
};

/// Streams rows to one CSV file (via util/csv.h's CsvWriter).
/// Layout: a header line `scenario,table,row,<columns...>` precedes
/// the rows of every table whose column set differs from the previous
/// table's; rows carry the scenario id and table title so
/// concatenated scenario files stay self-describing.
class CsvSink : public ResultSink {
 public:
  explicit CsvSink(const std::string& path);

  /// False when the file could not be opened (Finish() reports why).
  bool ok() const { return writer_.ok(); }

  void BeginTable(const std::string& title,
                  const std::vector<std::string>& columns) override;
  void AddRow(const std::string& label,
              const std::vector<double>& values) override;
  Status Finish() override;

 private:
  std::string path_;
  CsvWriter writer_;
  std::string table_;
  std::vector<std::string> columns_;
  std::vector<std::string> header_written_for_;
};

/// Streams one JSON object per row:
/// {"scenario":...,"table":...,"row":...,"values":{col:val,...}}
class JsonlSink : public ResultSink {
 public:
  explicit JsonlSink(const std::string& path);
  ~JsonlSink() override;

  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  bool ok() const { return file_ != nullptr && !write_error_; }

  void BeginTable(const std::string& title,
                  const std::vector<std::string>& columns) override;
  void AddRow(const std::string& label,
              const std::vector<double>& values) override;
  Status Finish() override;

 private:
  std::string path_;
  std::FILE* file_;
  bool write_error_ = false;
  bool finished_ = false;
  Status finish_result_;
  std::string table_;
  std::vector<std::string> columns_;
};

/// Fans every call out to a set of owned child sinks; Finish()
/// returns the first child error.
class MultiSink : public ResultSink {
 public:
  explicit MultiSink(std::vector<std::unique_ptr<ResultSink>> sinks);

  void BeginScenario(const ScenarioRunInfo& info) override;
  void BeginTable(const std::string& title,
                  const std::vector<std::string>& columns) override;
  void AddRow(const std::string& label,
              const std::vector<double>& values) override;
  void AddSeparator() override;
  void EndTable() override;
  Status Finish() override;

 private:
  std::vector<std::unique_ptr<ResultSink>> sinks_;
};

}  // namespace ldpr

#endif  // LDPR_RUNNER_RESULT_SINK_H_
