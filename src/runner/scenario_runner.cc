#include "runner/scenario_runner.h"

#include <cstdlib>

#include "data/synthetic.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace ldpr {

double DefaultBenchScale() {
  const char* env = std::getenv("LDPR_BENCH_SCALE");
  if (env == nullptr) return 0.05;
  return Clamp(std::atof(env), 1e-4, 1.0);
}

size_t DefaultBenchTrials() {
  const char* env = std::getenv("LDPR_BENCH_TRIALS");
  if (env == nullptr) return 3;
  const long v = std::atol(env);
  return v < 1 ? 1 : static_cast<size_t>(v);
}

StatusOr<Dataset> ResolveBenchDataset(const std::string& name, double scale) {
  if (scale <= 0.0 || scale > 1.0)
    return InvalidArgumentError("dataset scale out of (0, 1]");
  Dataset dataset;
  if (name == "ipums") {
    dataset = MakeIpumsLike();
  } else if (name == "fire") {
    dataset = MakeFireLike();
  } else if (name == "zipf") {
    dataset = MakeZipfDataset("zipf", /*d=*/102, /*n=*/100000, /*s=*/1.0,
                              /*shuffle_seed=*/17);
  } else if (name == "uniform") {
    dataset = MakeUniformDataset("uniform", /*d=*/102, /*n=*/100000);
  } else {
    return InvalidArgumentError("unknown scenario dataset: " + name);
  }
  return ScaleDataset(dataset, scale);
}

std::string BenchDatasetDisplayName(const std::string& name) {
  if (name == "ipums") return "IPUMS-like";
  if (name == "fire") return "Fire-like";
  return name;
}

std::vector<ExperimentResult> RunExperimentGrid(
    const std::vector<ExperimentConfig>& configs, const Dataset& dataset,
    ThreadBudget* budget_out) {
  // Split the pool between the configuration fan-out and each
  // experiment's own trial fan-out (the shared SplitThreadBudget
  // policy); the remainder of the division goes to the first configs
  // so no worker sits idle (results don't depend on thread counts,
  // so this stays deterministic).
  const size_t threads = DefaultThreadCount();
  const ThreadBudget budget = SplitThreadBudget(threads, configs.size());
  if (budget_out != nullptr) *budget_out = budget;
  const size_t used = budget.inner * budget.outer;
  const size_t remainder = threads > used ? threads - used : 0;

  std::vector<ExperimentResult> results(configs.size());
  ParallelFor(budget.outer, configs.size(), [&](size_t i) {
    ExperimentConfig config = configs[i];
    config.threads = budget.inner + (i < remainder ? 1 : 0);
    results[i] = RunExperiment(config, dataset);
  });
  return results;
}

namespace {

// Runs a lowered grid scenario: per dataset, the configs of every
// table batch into one RunExperimentGrid call (so the pool sees the
// whole per-dataset grid at once, as the old sweep benches did), then
// rows format and emit in lowering order.
Status RunGridScenario(const Scenario& scenario, const LoweredScenario& lowered,
                       const std::vector<Dataset>& datasets,
                       ScenarioContext& ctx) {
  const std::vector<std::string>& columns = scenario.spec.columns;
  for (size_t ds = 0; ds < datasets.size(); ++ds) {
    std::vector<ExperimentConfig> batch;
    for (const LoweredTable& table : lowered.tables) {
      if (table.dataset_index != ds) continue;
      for (const LoweredRow& row : table.rows)
        batch.insert(batch.end(), row.configs.begin(), row.configs.end());
    }
    if (batch.empty()) continue;
    // Every dataset lowers to the same config count, so the split the
    // grid engine reports for any batch speaks for the whole run.
    ThreadBudget budget;
    const std::vector<ExperimentResult> results =
        RunExperimentGrid(batch, datasets[ds], &budget);
    ctx.report.outer_workers = budget.outer;
    ctx.report.shards = budget.inner;

    size_t next = 0;
    for (const LoweredTable& table : lowered.tables) {
      if (table.dataset_index != ds) continue;
      ctx.sink.BeginTable(table.title, columns);
      for (const LoweredRow& row : table.rows) {
        std::vector<ExperimentResult> row_results(
            results.begin() + next, results.begin() + next + row.configs.size());
        next += row.configs.size();
        const std::vector<double> values = scenario.format_row(row_results);
        LDPR_CHECK(values.size() == columns.size());
        ctx.sink.AddRow(row.label, values);
        ++ctx.report.rows;
      }
      ctx.sink.EndTable();
      ++ctx.report.tables;
    }
    LDPR_CHECK(next == results.size());
  }
  return Status::Ok();
}

}  // namespace

StatusOr<ScenarioRunReport> RunScenario(const Scenario& scenario,
                                        const ScenarioRunOptions& options,
                                        ResultSink& sink) {
  const ScenarioSpec& spec = scenario.spec;
  Status valid = ValidateScenarioSpec(spec);
  if (!valid.ok()) return valid;

  const uint64_t seed = options.seed != 0 ? options.seed : spec.defaults.seed;
  const size_t trials =
      options.trials != 0 ? options.trials : DefaultBenchTrials();
  const double scale = options.scale != 0 ? options.scale : DefaultBenchScale();
  const size_t threads = DefaultThreadCount();

  // Resolve every declared dataset up front — the banner reports
  // their scaled sizes and the grid engine runs against them.
  std::vector<Dataset> datasets;
  ScenarioRunInfo info;
  info.id = spec.id;
  info.title = spec.title;
  info.seed = seed;
  info.scale = scale;
  info.trials = trials;
  info.threads = threads;
  for (const std::string& name : spec.datasets) {
    auto dataset = ResolveBenchDataset(name, scale);
    if (!dataset.ok()) return dataset.status();
    info.datasets.push_back({BenchDatasetDisplayName(name),
                             dataset->domain_size(), dataset->num_users()});
    datasets.push_back(std::move(*dataset));
  }
  sink.BeginScenario(info);

  ScenarioRunReport report;
  report.info = info;
  ScenarioContext ctx{spec,    seed, trials, scale, threads,
                      datasets, sink, report};

  if (spec.custom) {
    Status status = scenario.run(ctx);
    if (!status.ok()) return status;
    return report;
  }

  auto lowered = LowerScenario(spec, trials, seed);
  if (!lowered.ok()) return lowered.status();
  Status status = RunGridScenario(scenario, *lowered, datasets, ctx);
  if (!status.ok()) return status;
  return report;
}

}  // namespace ldpr
