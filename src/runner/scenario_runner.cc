#include "runner/scenario_runner.h"

#include <cstdlib>

#include "data/synthetic.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace ldpr {

double DefaultBenchScale() {
  const char* env = std::getenv("LDPR_BENCH_SCALE");
  if (env == nullptr) return 0.05;
  return Clamp(std::atof(env), 1e-4, 1.0);
}

size_t DefaultBenchTrials() {
  const char* env = std::getenv("LDPR_BENCH_TRIALS");
  if (env == nullptr) return 3;
  const long v = std::atol(env);
  return v < 1 ? 1 : static_cast<size_t>(v);
}

namespace {

// The registered bench dataset generators.  A generator owns its
// default shape; the resizable synthetic families additionally accept
// per-row d/n overrides (the scaling-law dataset axes), while the
// paper's fixed-shape stand-ins reject them.
struct BenchDatasetGenerator {
  const char* name;
  const char* display;
  bool resizable;
  size_t default_d;
  uint64_t default_n;
  Dataset (*make)(size_t d, uint64_t n);
};

constexpr size_t kSyntheticDefaultD = 102;
constexpr uint64_t kSyntheticDefaultN = 100000;

Dataset MakeIpumsBench(size_t, uint64_t) { return MakeIpumsLike(); }
Dataset MakeFireBench(size_t, uint64_t) { return MakeFireLike(); }
Dataset MakeZipfBench(size_t d, uint64_t n) {
  return MakeZipfDataset("zipf", d, n, /*s=*/1.0, /*shuffle_seed=*/17);
}
Dataset MakeUniformBench(size_t d, uint64_t n) {
  return MakeUniformDataset("uniform", d, n);
}

constexpr BenchDatasetGenerator kBenchDatasetGenerators[] = {
    {"ipums", "IPUMS-like", false, 0, 0, MakeIpumsBench},
    {"fire", "Fire-like", false, 0, 0, MakeFireBench},
    {"zipf", "zipf", true, kSyntheticDefaultD, kSyntheticDefaultN,
     MakeZipfBench},
    {"uniform", "uniform", true, kSyntheticDefaultD, kSyntheticDefaultN,
     MakeUniformBench},
};

const BenchDatasetGenerator* FindBenchDatasetGenerator(
    const std::string& name) {
  for (const BenchDatasetGenerator& gen : kBenchDatasetGenerators) {
    if (name == gen.name) return &gen;
  }
  return nullptr;
}

}  // namespace

StatusOr<Dataset> ResolveBenchDataset(const std::string& name, double scale,
                                      size_t d_override,
                                      uint64_t n_override) {
  if (scale <= 0.0 || scale > 1.0)
    return InvalidArgumentError("dataset scale out of (0, 1]");
  const BenchDatasetGenerator* gen = FindBenchDatasetGenerator(name);
  if (gen == nullptr)
    return InvalidArgumentError("unknown scenario dataset: " + name);
  if ((d_override != 0 || n_override != 0) && !gen->resizable)
    return InvalidArgumentError(
        "dataset '" + name +
        "' has a fixed shape and accepts no d/n overrides (use a "
        "synthetic generator for dataset-axis sweeps)");
  const size_t d = d_override != 0 ? d_override : gen->default_d;
  const uint64_t n = n_override != 0 ? n_override : gen->default_n;
  return ScaleDataset(gen->make(d, n), scale);
}

bool BenchDatasetResizable(const std::string& name) {
  const BenchDatasetGenerator* gen = FindBenchDatasetGenerator(name);
  return gen != nullptr && gen->resizable;
}

std::string BenchDatasetDisplayName(const std::string& name) {
  const BenchDatasetGenerator* gen = FindBenchDatasetGenerator(name);
  return gen != nullptr ? gen->display : name;
}

std::vector<ExperimentResult> RunExperimentGrid(
    const std::vector<ExperimentConfig>& configs, const Dataset& dataset,
    ThreadBudget* budget_out) {
  // Split the pool between the configuration fan-out and each
  // experiment's own trial fan-out (the shared SplitThreadBudget
  // policy); the remainder of the division goes to the first configs
  // so no worker sits idle (results don't depend on thread counts,
  // so this stays deterministic).
  const size_t threads = DefaultThreadCount();
  const ThreadBudget budget = SplitThreadBudget(threads, configs.size());
  if (budget_out != nullptr) *budget_out = budget;
  const size_t used = budget.inner * budget.outer;
  const size_t remainder = threads > used ? threads - used : 0;

  std::vector<ExperimentResult> results(configs.size());
  ParallelFor(budget.outer, configs.size(), [&](size_t i) {
    ExperimentConfig config = configs[i];
    config.threads = budget.inner + (i < remainder ? 1 : 0);
    results[i] = RunExperiment(config, dataset);
  });
  return results;
}

namespace {

// Runs a lowered grid scenario.  Per dataset, rows group by their
// dataset *variant* — the row-level n/d overrides of the scaling-law
// axes; rows without overrides share the pre-resolved dataset — and
// each variant's configs batch into one RunExperimentGrid call (so
// the pool still sees whole grids at once, as the old sweep benches
// did).  Results scatter back to their (table, row) slots and emit in
// lowering order, so the sink output is independent of the grouping.
Status RunGridScenario(const Scenario& scenario, const LoweredScenario& lowered,
                       const std::vector<Dataset>& datasets,
                       ScenarioContext& ctx) {
  const std::vector<std::string>& columns = scenario.spec.columns;
  std::vector<std::vector<std::vector<ExperimentResult>>> results(
      lowered.tables.size());
  for (size_t t = 0; t < lowered.tables.size(); ++t)
    results[t].resize(lowered.tables[t].rows.size());

  // The manifest records one representative thread split; the largest
  // batch's split is the one that dominated the run.
  size_t largest_batch = 0;
  for (size_t ds = 0; ds < datasets.size(); ++ds) {
    struct RowRef {
      size_t table;
      size_t row;
    };
    struct Variant {
      uint64_t n;
      size_t d;
      std::vector<RowRef> rows;
    };
    std::vector<Variant> variants;  // first-appearance order
    for (size_t t = 0; t < lowered.tables.size(); ++t) {
      const LoweredTable& table = lowered.tables[t];
      if (table.dataset_index != ds) continue;
      for (size_t r = 0; r < table.rows.size(); ++r) {
        const LoweredRow& row = table.rows[r];
        Variant* variant = nullptr;
        for (Variant& v : variants) {
          if (v.n == row.n_override && v.d == row.d_override) {
            variant = &v;
            break;
          }
        }
        if (variant == nullptr) {
          variants.push_back({row.n_override, row.d_override, {}});
          variant = &variants.back();
        }
        variant->rows.push_back({t, r});
      }
    }

    for (const Variant& variant : variants) {
      std::vector<ExperimentConfig> batch;
      for (const RowRef& ref : variant.rows) {
        const std::vector<ExperimentConfig>& configs =
            lowered.tables[ref.table].rows[ref.row].configs;
        batch.insert(batch.end(), configs.begin(), configs.end());
      }
      if (batch.empty()) continue;

      Dataset resized;
      const Dataset* dataset = &datasets[ds];
      if (variant.n != 0 || variant.d != 0) {
        auto resolved = ResolveBenchDataset(ctx.spec.datasets[ds], ctx.scale,
                                            variant.d, variant.n);
        if (!resolved.ok()) return resolved.status();
        resized = std::move(*resolved);
        dataset = &resized;
      }

      ThreadBudget budget;
      const std::vector<ExperimentResult> batch_results =
          RunExperimentGrid(batch, *dataset, &budget);
      if (batch.size() >= largest_batch) {
        largest_batch = batch.size();
        ctx.report.outer_workers = budget.outer;
        ctx.report.shards = budget.inner;
      }

      size_t next = 0;
      for (const RowRef& ref : variant.rows) {
        const size_t count =
            lowered.tables[ref.table].rows[ref.row].configs.size();
        results[ref.table][ref.row].assign(batch_results.begin() + next,
                                           batch_results.begin() + next +
                                               count);
        next += count;
      }
      LDPR_CHECK(next == batch_results.size());
    }
  }

  for (size_t t = 0; t < lowered.tables.size(); ++t) {
    const LoweredTable& table = lowered.tables[t];
    ctx.sink.BeginTable(table.title, columns);
    for (size_t r = 0; r < table.rows.size(); ++r) {
      const std::vector<double> values = scenario.format_row(results[t][r]);
      LDPR_CHECK(values.size() == columns.size());
      ctx.sink.AddRow(table.rows[r].label, values);
      ++ctx.report.rows;
    }
    ctx.sink.EndTable();
    ++ctx.report.tables;
  }
  return Status::Ok();
}

}  // namespace

StatusOr<ScenarioRunReport> RunScenario(const Scenario& scenario,
                                        const ScenarioRunOptions& options,
                                        ResultSink& sink) {
  const ScenarioSpec& spec = scenario.spec;
  Status valid = ValidateScenarioSpec(spec);
  if (!valid.ok()) return valid;

  const uint64_t seed = options.seed != 0 ? options.seed : spec.defaults.seed;
  const size_t trials =
      options.trials != 0 ? options.trials : DefaultBenchTrials();
  const double scale = options.scale != 0 ? options.scale : DefaultBenchScale();
  const size_t threads = DefaultThreadCount();

  // Grid scenarios lower before the banner renders: a dataset whose
  // every row overrides the shape (the dataset-axis sweeps) never
  // runs at its default size, and the banner/manifest should say so
  // rather than present the default as a run shape.
  LoweredScenario lowered;
  std::vector<bool> runs_default_shape(spec.datasets.size(), true);
  if (!spec.custom) {
    auto lowered_or = LowerScenario(spec, trials, seed);
    if (!lowered_or.ok()) return lowered_or.status();
    lowered = std::move(*lowered_or);
    runs_default_shape.assign(spec.datasets.size(), false);
    for (const LoweredTable& table : lowered.tables) {
      for (const LoweredRow& row : table.rows) {
        if (row.n_override == 0 && row.d_override == 0)
          runs_default_shape[table.dataset_index] = true;
      }
    }
  }

  // Resolve every declared dataset up front — the banner reports
  // their scaled sizes and the grid engine runs against them (rows
  // with shape overrides resolve their variants later).
  std::vector<Dataset> datasets;
  ScenarioRunInfo info;
  info.id = spec.id;
  info.title = spec.title;
  info.seed = seed;
  info.scale = scale;
  info.trials = trials;
  info.threads = threads;
  for (size_t ds = 0; ds < spec.datasets.size(); ++ds) {
    auto dataset = ResolveBenchDataset(spec.datasets[ds], scale);
    if (!dataset.ok()) return dataset.status();
    std::string display = BenchDatasetDisplayName(spec.datasets[ds]);
    if (!runs_default_shape[ds]) display += " (shape swept per row)";
    info.datasets.push_back(
        {std::move(display), dataset->domain_size(), dataset->num_users()});
    datasets.push_back(std::move(*dataset));
  }
  sink.BeginScenario(info);

  ScenarioRunReport report;
  report.info = info;
  ScenarioContext ctx{spec,    seed, trials, scale, threads,
                      datasets, sink, report};

  if (spec.custom) {
    Status status = scenario.run(ctx);
    if (!status.ok()) return status;
    return report;
  }

  Status status = RunGridScenario(scenario, lowered, datasets, ctx);
  if (!status.ok()) return status;
  return report;
}

}  // namespace ldpr
