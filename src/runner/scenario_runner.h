// The scenario run engine: resolves run knobs (seed/scale/trials from
// options, environment, or spec defaults), lowers grid scenarios to
// their ExperimentConfig grids, fans the grid across the thread
// budget, and streams every row through the ResultSink.  Custom
// scenarios get a ScenarioContext and the RunTrialGrid helper
// instead (the streaming_* scenarios run one RunStream per trial
// inside RunTrialGrid — serial per trial, parallel across cells).
//
// Determinism: a scenario's sink output is a pure function of
// (spec, seed, scale, trials) — the thread budget never reaches the
// metrics (see docs/architecture.md), which is what lets the
// scenario_*_determinism ctest entries diff --out files across
// LDPR_THREADS values.

#ifndef LDPR_RUNNER_SCENARIO_RUNNER_H_
#define LDPR_RUNNER_SCENARIO_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "runner/registry.h"
#include "runner/result_sink.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace ldpr {

/// Run knobs; zero fields fall back to the environment
/// (LDPR_BENCH_SCALE, LDPR_BENCH_TRIALS) and then to the paper
/// defaults (scale 0.05, trials 3, spec seed).
struct ScenarioRunOptions {
  uint64_t seed = 0;
  size_t trials = 0;
  double scale = 0;
};

/// LDPR_BENCH_SCALE, clamped to [1e-4, 1]; default 0.05.
double DefaultBenchScale();

/// LDPR_BENCH_TRIALS, at least 1; default 3.
size_t DefaultBenchTrials();

/// Builds the dataset a spec names — one of the registered bench
/// generators ("ipums", "fire", "zipf", "uniform") — scaled by
/// `scale`.  Non-zero `d_override` / `n_override` re-shape the
/// generator before scaling (the dataset-axis sweeps: n_override is
/// the pre-scale user count, so an axis value of 1e6 at scale 0.05
/// yields 50k users); only the resizable synthetic generators
/// ("zipf", "uniform") accept overrides.
StatusOr<Dataset> ResolveBenchDataset(const std::string& name, double scale,
                                      size_t d_override = 0,
                                      uint64_t n_override = 0);

/// True when `name` is a registered generator that accepts d/n
/// overrides (the synthetic "zipf"/"uniform" families).
bool BenchDatasetResizable(const std::string& name);

/// Banner name of a spec dataset ("IPUMS-like").
std::string BenchDatasetDisplayName(const std::string& name);

/// Runs one scenario end to end: banner, grid (or custom loop), row
/// emission.  The caller owns sink.Finish().
StatusOr<ScenarioRunReport> RunScenario(const Scenario& scenario,
                                        const ScenarioRunOptions& options,
                                        ResultSink& sink);

/// Runs every config against `dataset`, fanning the (config, trial)
/// grid across the LDPR_THREADS worker pool: configurations run
/// concurrently on the outer pool and each experiment's trials split
/// whatever threads remain.  Results are returned in input order and
/// are bit-identical to running each config serially.  When
/// `budget_out` is set, the applied split is recorded there (the
/// manifest's outer_workers/shards).
std::vector<ExperimentResult> RunExperimentGrid(
    const std::vector<ExperimentConfig>& configs, const Dataset& dataset,
    ThreadBudget* budget_out = nullptr);

/// Runs the (cell x trial) grid of a custom scenario across the
/// LDPR_THREADS budget: flat index i = cell * trials + trial runs
/// fn(cell, shards, DeriveSeed(seed, i)) on the budgeted outer
/// fan-out (SplitThreadBudget in util/thread_pool.h), where `shards`
/// is each trial's within-trial aggregation share.  Rows come back
/// in flat order, so merging them per cell in trial order keeps
/// scenario output byte-identical at any thread count.  When
/// `budget_out` is set, the applied split is recorded there (custom
/// scenarios forward it to their ScenarioRunReport).
template <typename Row, typename TrialFn>
std::vector<Row> RunTrialGrid(size_t cells, size_t trials, uint64_t seed,
                              const TrialFn& fn,
                              ThreadBudget* budget_out = nullptr) {
  const size_t total = cells * trials;
  const ThreadBudget budget = SplitThreadBudget(0, total);
  if (budget_out != nullptr) *budget_out = budget;
  std::vector<Row> rows(total);
  ParallelFor(budget.outer, total, [&](size_t i) {
    rows[i] = fn(i / trials, budget.inner, DeriveSeed(seed, i));
  });
  return rows;
}

}  // namespace ldpr

#endif  // LDPR_RUNNER_SCENARIO_RUNNER_H_
