// Result-tree comparison: the library behind tools/ldpr_diff.
//
// An `ldpr_bench --out` tree is self-describing — per-scenario
// results.jsonl rows keyed by (scenario, table, row) plus a
// manifest.json carrying run knobs and the timing-column list.  This
// module loads two such trees, joins their rows by key, and reports
// per-metric relative drift:
//
//   exact mode      — every non-timing value must be bit-equal (two
//                     same-seed runs of the same binary, e.g. the
//                     1-vs-N-thread determinism checks);
//   tolerance mode  — relative drift up to `tolerance` is accepted
//                     (cross-revision comparisons where RNG streams
//                     legitimately change, the CI regression gate).
//
// Columns a scenario declares in timing_columns are wall-clock
// measurements; they are reported (max drift per scenario) but never
// gate in either mode.  Structural differences — a row, column, or
// whole scenario present on one side only, mismatched run knobs —
// are violations in both modes.

#ifndef LDPR_RUNNER_RESULT_DIFF_H_
#define LDPR_RUNNER_RESULT_DIFF_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ldpr {

/// One results.jsonl row: ordered (column, value) pairs under a
/// (table, row) key.  Values the sink wrote as JSON null (NaN/Inf
/// metrics) load back as NaN.
struct ResultRow {
  std::string table;
  std::string row;
  std::vector<std::pair<std::string, double>> values;
};

/// One scenario directory: the manifest facts that must agree for a
/// comparison to be meaningful, plus every result row in file order.
struct ScenarioResults {
  std::string id;
  int schema_version = 1;
  uint64_t seed = 0;
  double scale = 0;
  size_t trials = 0;
  std::vector<std::string> timing_columns;
  std::vector<ResultRow> rows;
};

/// A loaded `--out` tree.
struct ResultTree {
  std::string root;
  std::vector<ScenarioResults> scenarios;
};

/// Loads a result tree rooted at `root`.  Accepts three layouts: a
/// tree with a top-level manifest.json listing its scenarios
/// (ldpr_bench --out since schema v2), a tree of scenario
/// subdirectories each holding a manifest.json (older trees), or a
/// single scenario directory.  Duplicate (table, row) keys and
/// malformed files are load errors.
StatusOr<ResultTree> LoadResultTree(const std::string& root);

struct DiffOptions {
  /// Exact mode when true; tolerance mode otherwise.
  bool exact = true;
  /// Tolerance-mode bound on relative drift |a-b| / max(|a|, |b|).
  double tolerance = 0.05;
  /// Tolerance mode only: values whose magnitudes both fall below
  /// this floor count as drift-free (relative drift between
  /// near-zero noise is meaningless).  Exact mode ignores it — any
  /// difference between same-seed runs is a determinism break.
  double abs_floor = 1e-12;
};

/// One comparison failure.  `kind` is one of: value-drift,
/// missing-row, extra-row, schema-mismatch, missing-scenario,
/// extra-scenario, manifest-mismatch.
struct DiffViolation {
  std::string kind;
  std::string scenario;
  std::string table;
  std::string row;
  std::string column;
  double a = 0;
  double b = 0;
  double drift = 0;
  /// Human-readable specifics for structural violations.
  std::string detail;
};

/// Per-scenario drift summary (one drift-table line).
struct ScenarioDriftSummary {
  std::string id;
  size_t rows = 0;
  size_t values = 0;
  size_t violations = 0;
  double max_drift = 0;
  /// "table | row | column" of the worst non-timing drift.
  std::string max_cell;
  double max_timing_drift = 0;
};

struct DiffReport {
  std::vector<ScenarioDriftSummary> scenarios;
  std::vector<DiffViolation> violations;
  bool ok() const { return violations.empty(); }
};

/// Relative drift |a-b| / max(|a|, |b|); 0 when both magnitudes are
/// at or below `abs_floor` or both values are NaN.
double RelativeDrift(double a, double b, double abs_floor);

/// Joins two trees by (scenario, table, row) and compares every
/// column under `options`.
DiffReport DiffResultTrees(const ResultTree& a, const ResultTree& b,
                           const DiffOptions& options);

/// Renders the compact drift table plus the first `max_violations`
/// violations (0 = all).
std::string FormatDriftTable(const DiffReport& report,
                             size_t max_violations = 20);

}  // namespace ldpr

#endif  // LDPR_RUNNER_RESULT_DIFF_H_
