// Per-run manifest: the machine-readable sidecar `ldpr_bench --out`
// writes next to each scenario's result files, recording everything
// needed to regenerate or diff a figure across machines — scenario
// id, seed, scale, trials, thread budget and its top-level split,
// the git version of the binary, and the resolved dataset sizes.
//
// The manifest deliberately carries the *machine-dependent* facts
// (threads, split) so they stay out of the result files, which must
// diff clean across thread counts.

#ifndef LDPR_RUNNER_MANIFEST_H_
#define LDPR_RUNNER_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "runner/registry.h"
#include "runner/result_sink.h"
#include "util/status.h"

namespace ldpr {

/// The version stamp compiled into the binary (CMake runs
/// `git describe --always --dirty` at configure time; "unknown" when
/// built outside a git checkout).
std::string GitDescribe();

/// Manifest schema version.  v2 added `schema_version` itself, the
/// spec's `columns`/`timing_columns` (so comparators know which
/// columns are wall-clock measurements), and the top-level tree
/// manifest `ldpr_bench --out` writes next to the scenario dirs.
/// Readers treat a missing version as v1.
inline constexpr int kManifestSchemaVersion = 2;

struct RunManifest {
  int schema_version = kManifestSchemaVersion;
  std::string scenario_id;
  std::string artifact;
  std::string title;
  uint64_t seed = 0;
  double scale = 0;
  size_t trials = 0;
  size_t threads = 0;
  size_t outer_workers = 0;
  size_t shards = 0;
  size_t tables = 0;
  size_t rows = 0;
  /// The SIMD backend the aggregation kernels dispatched to for this
  /// run (see util/simd.h) — machine-dependent, like `threads`, and
  /// recorded for the same reason: results must diff clean across it.
  std::string simd;
  std::string git_describe;
  std::vector<ScenarioRunInfo::DatasetInfo> datasets;
  /// The spec's output columns, and the subset holding wall-clock
  /// measurements (ldpr_diff excludes the latter from exact
  /// comparisons).
  std::vector<std::string> columns;
  std::vector<std::string> timing_columns;
  /// Result files, relative to the manifest's directory.
  std::vector<std::string> files;
};

/// Assembles the manifest of one completed scenario run.
RunManifest MakeRunManifest(const ScenarioSpec& spec,
                            const ScenarioRunInfo& info,
                            const ScenarioRunReport& report,
                            std::vector<std::string> files);

/// Serializes the manifest as pretty-stable single-line JSON.
std::string ManifestToJson(const RunManifest& manifest);

/// Writes the manifest to `path`, failing on partial writes.
Status WriteManifest(const std::string& path, const RunManifest& manifest);

/// The top-level manifest `ldpr_bench --out DIR` writes at
/// DIR/manifest.json, summarizing every scenario run of the
/// invocation so the tree is self-describing for ldpr_diff.
struct TreeManifest {
  int schema_version = kManifestSchemaVersion;
  std::string git_describe;
  struct Entry {
    std::string id;
    uint64_t seed = 0;
    double scale = 0;
    size_t trials = 0;
    /// Result files, relative to the tree root ("fig3/results.csv").
    std::vector<std::string> files;
  };
  std::vector<Entry> scenarios;
};

/// Serializes the tree manifest as single-line JSON.
std::string TreeManifestToJson(const TreeManifest& manifest);

/// Writes the tree manifest to `path`, failing on partial writes.
Status WriteTreeManifest(const std::string& path,
                         const TreeManifest& manifest);

}  // namespace ldpr

#endif  // LDPR_RUNNER_MANIFEST_H_
