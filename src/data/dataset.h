// Dataset abstraction.
//
// For frequency estimation only the item histogram matters (users are
// exchangeable), so Dataset stores per-item counts rather than a
// per-user item list.  This makes the closed-form aggregation
// samplers O(d) instead of O(n) and keeps the Fire-scale datasets
// (667k users) trivially cheap to carry around.

#ifndef LDPR_DATA_DATASET_H_
#define LDPR_DATA_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ldpr {

struct Dataset {
  std::string name;
  /// Per-item user counts; the domain size is item_counts.size().
  std::vector<uint64_t> item_counts;

  size_t domain_size() const { return item_counts.size(); }

  /// Total number of users.
  uint64_t num_users() const;

  /// The exact item frequencies f_X (counts / n).
  std::vector<double> TrueFrequencies() const;
};

/// Builds a dataset from an explicit histogram.
Dataset MakeDatasetFromCounts(std::string name,
                              std::vector<uint64_t> item_counts);

/// Builds a dataset of n users whose items follow the given frequency
/// vector as exactly as integer rounding permits (largest-remainder
/// apportionment), so TrueFrequencies() ~= freqs.
Dataset MakeDatasetFromFrequencies(std::string name,
                                   const std::vector<double>& freqs,
                                   uint64_t n);

/// Scales a dataset's user count by `factor` in (0, 1], preserving
/// the frequency shape (largest-remainder rounding).  The benchmark
/// harness uses this to run CI-sized versions of the paper's
/// experiments.
Dataset ScaleDataset(const Dataset& dataset, double factor);

}  // namespace ldpr

#endif  // LDPR_DATA_DATASET_H_
