#include "data/loader.h"

#include <unordered_map>

#include "util/csv.h"

namespace ldpr {

StatusOr<LoadedDataset> LoadItemCsv(const std::string& path,
                                    const LoadOptions& options) {
  auto rows_or = ReadCsvFile(path);
  if (!rows_or.ok()) return rows_or.status();
  const auto& rows = rows_or.value();

  LoadedDataset out;
  // Determinism audit (lint rule R2): this map is keyed-access only —
  // `emplace` + `it->second` below.  It is never iterated, so its
  // hash-dependent element order cannot reach any output.  The
  // label -> id assignment that DOES reach output (item_labels,
  // item_counts, and every downstream estimate indexed by id) is fixed
  // by first-appearance row order: ids.size() at insertion time.  Do
  // not "clean this up" into a std::map — sorted order would reassign
  // ids and break byte-equality against ci/baseline.
  // tests/loader_test.cc (HashOrderNeverReachesOutput) pins this down.
  std::unordered_map<std::string, size_t> ids;
  std::vector<uint64_t> counts;

  size_t row_index = 0;
  for (const auto& row : rows) {
    ++row_index;
    if (options.has_header && row_index == 1) continue;
    if (options.column >= row.size()) {
      return InvalidArgumentError("row " + std::to_string(row_index) +
                                  " has no column " +
                                  std::to_string(options.column) + " in " +
                                  path);
    }
    const std::string& label = row[options.column];
    auto [it, inserted] = ids.emplace(label, ids.size());
    if (inserted) {
      out.item_labels.push_back(label);
      counts.push_back(0);
    }
    ++counts[it->second];
  }

  if (counts.size() < 2) {
    return InvalidArgumentError("dataset needs at least 2 distinct items: " +
                                path);
  }
  out.dataset = MakeDatasetFromCounts(path, std::move(counts));
  return out;
}

}  // namespace ldpr
