#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace ldpr {

uint64_t Dataset::num_users() const {
  uint64_t total = 0;
  for (uint64_t c : item_counts) total += c;
  return total;
}

std::vector<double> Dataset::TrueFrequencies() const {
  const uint64_t n = num_users();
  LDPR_CHECK(n > 0);
  std::vector<double> freqs(item_counts.size());
  for (size_t v = 0; v < item_counts.size(); ++v)
    freqs[v] = static_cast<double>(item_counts[v]) / static_cast<double>(n);
  return freqs;
}

Dataset MakeDatasetFromCounts(std::string name,
                              std::vector<uint64_t> item_counts) {
  LDPR_CHECK(item_counts.size() >= 2);
  Dataset ds;
  ds.name = std::move(name);
  ds.item_counts = std::move(item_counts);
  LDPR_CHECK(ds.num_users() > 0);
  return ds;
}

namespace {

// Largest-remainder apportionment of n over the given weights.
std::vector<uint64_t> Apportion(const std::vector<double>& weights,
                                uint64_t n) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  LDPR_CHECK(total > 0.0);
  const size_t d = weights.size();
  std::vector<uint64_t> counts(d);
  std::vector<std::pair<double, size_t>> remainders(d);
  uint64_t assigned = 0;
  for (size_t v = 0; v < d; ++v) {
    const double exact = static_cast<double>(n) * weights[v] / total;
    counts[v] = static_cast<uint64_t>(std::floor(exact));
    assigned += counts[v];
    remainders[v] = {exact - std::floor(exact), v};
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (size_t i = 0; assigned < n; ++i, ++assigned)
    ++counts[remainders[i % d].second];
  return counts;
}

}  // namespace

Dataset MakeDatasetFromFrequencies(std::string name,
                                   const std::vector<double>& freqs,
                                   uint64_t n) {
  LDPR_CHECK(freqs.size() >= 2);
  LDPR_CHECK(n > 0);
  return MakeDatasetFromCounts(std::move(name), Apportion(freqs, n));
}

Dataset ScaleDataset(const Dataset& dataset, double factor) {
  LDPR_CHECK(factor > 0.0 && factor <= 1.0);
  if (factor == 1.0) return dataset;
  const uint64_t n = dataset.num_users();
  const uint64_t target = std::max<uint64_t>(
      dataset.domain_size(),
      static_cast<uint64_t>(std::llround(factor * static_cast<double>(n))));
  std::vector<double> weights(dataset.domain_size());
  for (size_t v = 0; v < weights.size(); ++v)
    weights[v] = static_cast<double>(dataset.item_counts[v]);
  Dataset out;
  out.name = dataset.name;
  out.item_counts = Apportion(weights, target);
  return out;
}

}  // namespace ldpr
