// CSV dataset loading: builds an item histogram from a column of a
// CSV file, assigning dense ItemIds in order of first appearance.
// This is the path a deployment with the real IPUMS/Fire extracts
// would use; the repository's benches use the synthetic stand-ins.

#ifndef LDPR_DATA_LOADER_H_
#define LDPR_DATA_LOADER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace ldpr {

struct LoadOptions {
  /// Zero-based column holding the item value.
  size_t column = 0;
  /// Skip the first row (header).
  bool has_header = true;
};

/// Result of a load: the histogram dataset plus the item-id -> label
/// mapping.
struct LoadedDataset {
  Dataset dataset;
  std::vector<std::string> item_labels;
};

/// Loads a CSV file into a histogram dataset.  Fails when the file is
/// missing, the column is out of range on any row, or fewer than two
/// distinct items appear.
StatusOr<LoadedDataset> LoadItemCsv(const std::string& path,
                                    const LoadOptions& options = {});

}  // namespace ldpr

#endif  // LDPR_DATA_LOADER_H_
