#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace ldpr {

Dataset MakeZipfDataset(std::string name, size_t d, uint64_t n, double s,
                        uint64_t shuffle_seed) {
  LDPR_CHECK(d >= 2);
  LDPR_CHECK(n > 0);
  std::vector<double> weights(d);
  for (size_t i = 0; i < d; ++i)
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
  if (shuffle_seed != 0) {
    Rng rng(shuffle_seed);
    for (size_t i = d; i > 1; --i)
      std::swap(weights[i - 1], weights[rng.UniformU64(i)]);
  }
  return MakeDatasetFromFrequencies(std::move(name), weights, n);
}

Dataset MakeUniformDataset(std::string name, size_t d, uint64_t n) {
  LDPR_CHECK(d >= 2);
  return MakeDatasetFromFrequencies(std::move(name),
                                    std::vector<double>(d, 1.0), n);
}

Dataset MakeIpumsLike(uint64_t shuffle_seed) {
  return MakeZipfDataset("IPUMS", /*d=*/102, /*n=*/389894, /*s=*/1.05,
                         shuffle_seed);
}

Dataset MakeFireLike(uint64_t shuffle_seed) {
  return MakeZipfDataset("Fire", /*d=*/490, /*n=*/667574, /*s=*/0.8,
                         shuffle_seed);
}

}  // namespace ldpr
