// Synthetic dataset generators, including the documented stand-ins
// for the paper's two real-world datasets (see DESIGN.md section 4):
//
//   IPUMS  — U.S. census "city" attribute, d = 102, n = 389,894;
//   Fire   — SF fire-department "unit ID" under Alarms, d = 490,
//            n = 667,574.
//
// Neither raw dataset ships offline, so MakeIpumsLike/MakeFireLike
// generate Zipf histograms with the same (d, n).  The recovery and
// attack mathematics are distribution-agnostic; what matters for the
// reproduced figures is a skewed histogram with a long tail at the
// same scale, which these provide deterministically.

#ifndef LDPR_DATA_SYNTHETIC_H_
#define LDPR_DATA_SYNTHETIC_H_

#include "data/dataset.h"

namespace ldpr {

/// n users over d items with Zipf(s) frequencies.  `shuffle_seed`
/// permutes which item gets which rank so target items are not
/// trivially the heaviest; 0 keeps rank order.
Dataset MakeZipfDataset(std::string name, size_t d, uint64_t n, double s,
                        uint64_t shuffle_seed = 0);

/// Uniform histogram: n users over d items.
Dataset MakeUniformDataset(std::string name, size_t d, uint64_t n);

/// IPUMS stand-in: d = 102, n = 389,894, Zipf s = 1.05 (census city
/// populations are classically near-Zipf with exponent ~1).
Dataset MakeIpumsLike(uint64_t shuffle_seed = 17);

/// Fire stand-in: d = 490, n = 667,574, Zipf s = 0.8 (dispatch unit
/// loads are skewed but flatter than city populations).
Dataset MakeFireLike(uint64_t shuffle_seed = 23);

}  // namespace ldpr

#endif  // LDPR_DATA_SYNTHETIC_H_
