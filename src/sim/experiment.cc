#include "sim/experiment.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "ldp/factory.h"
#include "recover/detection.h"
#include "recover/ldprecover.h"
#include "recover/outlier.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace ldpr {

namespace {

// The attacker-selected items LDPRecover* and Detection are given:
// the true target set for targeted attacks, the top-r/2 frequency
// gainers otherwise (Section VI-A4).
std::vector<ItemId> StarTargets(const ExperimentConfig& config,
                                const TrialOutput& trial) {
  if (!trial.attack_targets.empty()) return trial.attack_targets;
  const size_t k = std::max<size_t>(1, config.pipeline.num_targets / 2);
  return TopFrequencyGainers(trial.genuine_freqs, trial.poisoned_freqs, k);
}

// The trial body, parameterized on a prebuilt protocol so the
// parallel fan-out shares one immutable protocol instance across
// workers instead of rebuilding hash families per trial.
TrialMetrics RunTrialWithProtocol(const FrequencyProtocol& protocol,
                                  const ExperimentConfig& config,
                                  const Dataset& dataset,
                                  uint64_t trial_seed) {
  Rng rng(trial_seed);
  TrialMetrics out;

  const TrialOutput t =
      RunPoisoningTrial(protocol, config.pipeline, dataset, rng);
  const bool attacked = t.m > 0;
  const bool targeted = !t.attack_targets.empty();

  out.mse_before = Mse(t.true_freqs, t.poisoned_freqs);
  if (targeted) {
    out.fg_before =
        FrequencyGain(t.genuine_freqs, t.poisoned_freqs, t.attack_targets);
  }

  // LDPRecover (non-knowledge).
  RecoverOptions base_opts;
  base_opts.eta = config.eta;
  base_opts.paper_literal_subdomain_sum = config.paper_literal_subdomain_sum;
  const LdpRecover recover(protocol, base_opts);
  const std::vector<double> recovered = recover.Recover(t.poisoned_freqs);
  out.mse_recover = Mse(t.true_freqs, recovered);
  if (targeted) {
    out.fg_recover =
        FrequencyGain(t.genuine_freqs, recovered, t.attack_targets);
  }
  if (attacked) {
    out.mse_malicious_recover =
        Mse(t.malicious_freqs,
            recover.EstimateMaliciousFrequencies(t.poisoned_freqs));
  }

  // LDPRecover* (partial knowledge) and Detection share the
  // attacker-selected item set.
  if (attacked && (config.run_star || config.run_detection)) {
    const std::vector<ItemId> star_targets = StarTargets(config, t);

    if (config.run_star && !star_targets.empty() &&
        star_targets.size() < dataset.domain_size()) {
      RecoverOptions star_opts = base_opts;
      star_opts.known_targets = star_targets;
      const LdpRecover star(protocol, star_opts);
      const std::vector<double> recovered_star = star.Recover(t.poisoned_freqs);
      out.mse_recover_star = Mse(t.true_freqs, recovered_star);
      if (targeted) {
        out.fg_recover_star =
            FrequencyGain(t.genuine_freqs, recovered_star, t.attack_targets);
      }
      out.mse_malicious_recover_star =
          Mse(t.malicious_freqs,
              star.EstimateMaliciousFrequencies(t.poisoned_freqs));
    }

    if (config.run_detection && !star_targets.empty()) {
      DetectionFilter filter(protocol, star_targets);
      // Genuine reports are re-drawn for the filtered aggregate;
      // detection metrics are averaged across trials, so using an
      // independent realization of the genuine randomness is
      // statistically equivalent (see DESIGN.md).
      if (config.pipeline.exact_genuine) {
        filter.OfferExactGenuine(dataset.item_counts, rng);
      } else {
        // One seed drawn from the trial stream keys the sharded
        // filter fan-out, so the trial's draw count — and the filter
        // output — are independent of the shard count.
        filter.OfferSampledGenuineSharded(dataset.item_counts, rng.Next(),
                                          config.pipeline.shards);
      }
      filter.OfferAll(t.malicious_reports);
      if (filter.kept() > 0) {
        const std::vector<double> detected = filter.Estimate();
        out.mse_detection = Mse(t.true_freqs, detected);
        if (targeted) {
          out.fg_detection =
              FrequencyGain(t.genuine_freqs, detected, t.attack_targets);
        }
      }
    }
  }
  return out;
}

}  // namespace

Status ValidateExperimentInputs(const ExperimentConfig& config,
                                const Dataset& dataset) {
  if (dataset.domain_size() < 2) {
    return InvalidArgumentError("dataset needs a domain of at least 2 items");
  }
  if (dataset.num_users() == 0) {
    return InvalidArgumentError(
        "dataset is empty (zero users): nothing to aggregate");
  }
  if (!(config.epsilon > 0.0)) {  // negated so NaN fails too
    return InvalidArgumentError("epsilon must be > 0");
  }
  if (config.trials < 1) {
    return InvalidArgumentError("trials must be >= 1");
  }
  const PipelineConfig& p = config.pipeline;
  if (!(p.beta >= 0.0 && p.beta < 1.0)) {
    return InvalidArgumentError("beta must be in [0, 1)");
  }
  if (!(config.eta >= 0.0)) {
    return InvalidArgumentError("eta must be >= 0");
  }
  switch (p.attack) {
    case AttackKind::kMga:
    case AttackKind::kMgaIpa:
      if (p.num_targets < 1 || p.num_targets > dataset.domain_size()) {
        return InvalidArgumentError(
            "targets must be in [1, domain size] for MGA attacks");
      }
      break;
    case AttackKind::kManip:
      if (!(p.manip_domain_fraction >= 0.0 &&
            p.manip_domain_fraction <= 1.0)) {
        return InvalidArgumentError("Manip domain fraction must be in [0, 1]");
      }
      break;
    case AttackKind::kMultiAdaptive:
      if (p.num_attackers < 1) {
        return InvalidArgumentError("MUL-AA needs at least 1 attacker");
      }
      break;
    case AttackKind::kNone:
    case AttackKind::kAdaptive:
      break;
  }
  return Status::Ok();
}

TrialMetrics RunSingleTrial(const ExperimentConfig& config,
                            const Dataset& dataset, uint64_t trial_seed) {
  const std::unique_ptr<FrequencyProtocol> protocol =
      MakeProtocol(config.protocol, dataset.domain_size(), config.epsilon);
  return RunTrialWithProtocol(*protocol, config, dataset, trial_seed);
}

void MergeTrialMetrics(const TrialMetrics& trial, ExperimentResult& result) {
  const auto add = [](const std::optional<double>& value, RunningStat& stat) {
    if (value.has_value()) stat.Add(*value);
  };
  add(trial.mse_before, result.mse_before);
  add(trial.mse_recover, result.mse_recover);
  add(trial.mse_recover_star, result.mse_recover_star);
  add(trial.mse_detection, result.mse_detection);
  add(trial.fg_before, result.fg_before);
  add(trial.fg_recover, result.fg_recover);
  add(trial.fg_recover_star, result.fg_recover_star);
  add(trial.fg_detection, result.fg_detection);
  add(trial.mse_malicious_recover, result.mse_malicious_recover);
  add(trial.mse_malicious_recover_star, result.mse_malicious_recover_star);
}

ExperimentResult RunExperiment(const ExperimentConfig& config,
                               const Dataset& dataset) {
  LDPR_CHECK(config.trials >= 1);
  const std::unique_ptr<FrequencyProtocol> protocol =
      MakeProtocol(config.protocol, dataset.domain_size(), config.epsilon);

  // Split the thread budget between the two parallelism levels so
  // they never oversubscribe: with many trials the fan-out takes the
  // whole budget and each trial aggregates serially; with few (down
  // to one) trials the leftover goes to within-trial aggregation
  // shards.
  const ThreadBudget budget = SplitThreadBudget(config.threads, config.trials);
  ExperimentConfig budgeted = config;
  budgeted.pipeline.shards = budget.inner;

  // Every trial runs on its own counter-derived RNG stream, writes
  // its own slot, and the slots merge in trial order below — so the
  // result is bit-identical no matter how trials land on workers.
  // Timing rides along in its own slot vector: wall clocks are
  // machine-dependent, but merging them in trial order keeps the
  // deterministic metrics untouched.
  std::vector<TrialMetrics> trials(config.trials);
  std::vector<double> seconds(config.trials);
  ParallelFor(budget.outer, config.trials, [&](size_t trial) {
    const auto start = std::chrono::steady_clock::now();
    trials[trial] = RunTrialWithProtocol(*protocol, budgeted, dataset,
                                         DeriveSeed(config.seed, trial));
    seconds[trial] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  });

  ExperimentResult result;
  for (const TrialMetrics& trial : trials) MergeTrialMetrics(trial, result);
  for (double s : seconds) result.trial_seconds.Add(s);
  result.users_per_trial = dataset.num_users();
  return result;
}

}  // namespace ldpr
