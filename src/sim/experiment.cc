#include "sim/experiment.h"

#include <algorithm>

#include "ldp/factory.h"
#include "recover/detection.h"
#include "recover/ldprecover.h"
#include "recover/outlier.h"
#include "util/logging.h"

namespace ldpr {

namespace {

// The attacker-selected items LDPRecover* and Detection are given:
// the true target set for targeted attacks, the top-r/2 frequency
// gainers otherwise (Section VI-A4).
std::vector<ItemId> StarTargets(const ExperimentConfig& config,
                                const TrialOutput& trial) {
  if (!trial.attack_targets.empty()) return trial.attack_targets;
  const size_t k = std::max<size_t>(1, config.pipeline.num_targets / 2);
  return TopFrequencyGainers(trial.genuine_freqs, trial.poisoned_freqs, k);
}

}  // namespace

ExperimentResult RunExperiment(const ExperimentConfig& config,
                               const Dataset& dataset) {
  LDPR_CHECK(config.trials >= 1);
  const std::unique_ptr<FrequencyProtocol> protocol =
      MakeProtocol(config.protocol, dataset.domain_size(), config.epsilon);

  ExperimentResult result;
  Rng rng(config.seed);

  for (size_t trial = 0; trial < config.trials; ++trial) {
    const TrialOutput t =
        RunPoisoningTrial(*protocol, config.pipeline, dataset, rng);
    const bool attacked = t.m > 0;
    const bool targeted = !t.attack_targets.empty();

    result.mse_before.Add(Mse(t.true_freqs, t.poisoned_freqs));
    if (targeted) {
      result.fg_before.Add(FrequencyGain(t.genuine_freqs, t.poisoned_freqs,
                                         t.attack_targets));
    }

    // LDPRecover (non-knowledge).
    RecoverOptions base_opts;
    base_opts.eta = config.eta;
    base_opts.paper_literal_subdomain_sum = config.paper_literal_subdomain_sum;
    const LdpRecover recover(*protocol, base_opts);
    const std::vector<double> recovered = recover.Recover(t.poisoned_freqs);
    result.mse_recover.Add(Mse(t.true_freqs, recovered));
    if (targeted) {
      result.fg_recover.Add(
          FrequencyGain(t.genuine_freqs, recovered, t.attack_targets));
    }
    if (attacked) {
      result.mse_malicious_recover.Add(
          Mse(t.malicious_freqs,
              recover.EstimateMaliciousFrequencies(t.poisoned_freqs)));
    }

    // LDPRecover* (partial knowledge) and Detection share the
    // attacker-selected item set.
    if (attacked && (config.run_star || config.run_detection)) {
      const std::vector<ItemId> star_targets = StarTargets(config, t);

      if (config.run_star && !star_targets.empty() &&
          star_targets.size() < dataset.domain_size()) {
        RecoverOptions star_opts = base_opts;
        star_opts.known_targets = star_targets;
        const LdpRecover star(*protocol, star_opts);
        const std::vector<double> recovered_star =
            star.Recover(t.poisoned_freqs);
        result.mse_recover_star.Add(Mse(t.true_freqs, recovered_star));
        if (targeted) {
          result.fg_recover_star.Add(FrequencyGain(
              t.genuine_freqs, recovered_star, t.attack_targets));
        }
        result.mse_malicious_recover_star.Add(
            Mse(t.malicious_freqs,
                star.EstimateMaliciousFrequencies(t.poisoned_freqs)));
      }

      if (config.run_detection && !star_targets.empty()) {
        DetectionFilter filter(*protocol, star_targets);
        // Genuine reports are re-drawn for the filtered aggregate;
        // detection metrics are averaged across trials, so using an
        // independent realization of the genuine randomness is
        // statistically equivalent (see DESIGN.md).
        if (config.pipeline.exact_genuine) {
          for (ItemId item = 0; item < dataset.item_counts.size(); ++item) {
            for (uint64_t u = 0; u < dataset.item_counts[item]; ++u)
              filter.Offer(protocol->Perturb(item, rng));
          }
        } else {
          filter.OfferSampledGenuine(dataset.item_counts, rng);
        }
        filter.OfferAll(t.malicious_reports);
        if (filter.kept() > 0) {
          const std::vector<double> detected = filter.Estimate();
          result.mse_detection.Add(Mse(t.true_freqs, detected));
          if (targeted) {
            result.fg_detection.Add(
                FrequencyGain(t.genuine_freqs, detected, t.attack_targets));
          }
        }
      }
    }
  }
  return result;
}

}  // namespace ldpr
