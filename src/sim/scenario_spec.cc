#include "sim/scenario_spec.h"

#include <cstdio>

namespace ldpr {

namespace {

// Display names used in table titles, matching the paper's figures.
std::string DatasetDisplayName(const std::string& name) {
  if (name == "ipums") return "IPUMS";
  if (name == "fire") return "Fire";
  return name;
}

std::string SweepRowLabel(SweepParam param, double value) {
  char buf[48];
  // Dataset axes are integer-valued; "%g" would render 1e6 as
  // "1e+06", which makes a poor join key.
  if (param == SweepParam::kNumUsers || param == SweepParam::kDomainSize) {
    std::snprintf(buf, sizeof(buf), "%s=%llu", SweepParamLabel(param),
                  static_cast<unsigned long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%s=%g", SweepParamLabel(param), value);
  }
  return buf;
}

ExperimentConfig ConfigFromDefaults(const ScenarioSpec& spec,
                                    ProtocolKind protocol, AttackKind attack,
                                    size_t trials, uint64_t seed) {
  ExperimentConfig config;
  config.protocol = protocol;
  config.epsilon = spec.defaults.epsilon;
  config.pipeline.attack = attack;
  config.pipeline.beta = spec.defaults.beta;
  config.pipeline.num_targets = spec.defaults.num_targets;
  config.pipeline.num_attackers = spec.defaults.num_attackers;
  config.eta = spec.defaults.eta;
  config.run_detection = spec.defaults.run_detection;
  config.run_star = spec.defaults.run_star;
  config.trials = trials;
  config.seed = seed;
  return config;
}

// Dataset axes re-shape the row's dataset; every other param lands in
// the row's ExperimentConfigs.
bool IsDatasetAxis(SweepParam param) {
  return param == SweepParam::kNumUsers || param == SweepParam::kDomainSize;
}

Status ApplySweepValue(SweepParam param, double value,
                       ExperimentConfig& config) {
  switch (param) {
    case SweepParam::kBeta:
      config.pipeline.beta = value;
      return Status::Ok();
    case SweepParam::kEpsilon:
      config.epsilon = value;
      return Status::Ok();
    case SweepParam::kEta:
      config.eta = value;
      return Status::Ok();
    case SweepParam::kXi:
      return InvalidArgumentError(
          "xi sweeps have no ExperimentConfig lowering (custom scenarios "
          "only)");
    case SweepParam::kNumUsers:
    case SweepParam::kDomainSize:
      return InvalidArgumentError(
          "dataset axes lower to row overrides, not configs");
  }
  return InvalidArgumentError("unknown sweep param");
}

Status ApplyDatasetAxisValue(SweepParam param, double value, LoweredRow& row) {
  if (value < 1.0 || value != static_cast<double>(
                                  static_cast<uint64_t>(value)))
    return InvalidArgumentError(std::string(SweepParamName(param)) +
                                " sweep values must be positive integers");
  if (param == SweepParam::kNumUsers)
    row.n_override = static_cast<uint64_t>(value);
  else
    row.d_override = static_cast<size_t>(value);
  return Status::Ok();
}

}  // namespace

const char* SweepParamName(SweepParam param) {
  switch (param) {
    case SweepParam::kBeta:
      return "beta";
    case SweepParam::kEpsilon:
      return "epsilon";
    case SweepParam::kEta:
      return "eta";
    case SweepParam::kXi:
      return "xi";
    case SweepParam::kNumUsers:
      return "n";
    case SweepParam::kDomainSize:
      return "d";
  }
  return "unknown";
}

const char* SweepParamLabel(SweepParam param) {
  switch (param) {
    case SweepParam::kBeta:
      return "beta";
    case SweepParam::kEpsilon:
      return "eps";
    case SweepParam::kEta:
      return "eta";
    case SweepParam::kXi:
      return "xi";
    case SweepParam::kNumUsers:
      return "n";
    case SweepParam::kDomainSize:
      return "d";
  }
  return "unknown";
}

Status ValidateScenarioSpec(const ScenarioSpec& spec) {
  if (spec.id.empty()) return InvalidArgumentError("scenario id is empty");
  if (spec.title.empty())
    return InvalidArgumentError(spec.id + ": title is empty");
  if (spec.datasets.empty())
    return InvalidArgumentError(spec.id + ": no datasets");
  if (spec.columns.empty())
    return InvalidArgumentError(spec.id + ": no output columns");
  if (!spec.cells.empty() && !spec.sweeps.empty())
    return InvalidArgumentError(spec.id +
                                ": cells and sweeps are mutually exclusive");
  for (const std::string& timing : spec.timing_columns) {
    bool found = false;
    for (const std::string& column : spec.columns) {
      if (column == timing) {
        found = true;
        break;
      }
    }
    if (!found)
      return InvalidArgumentError(spec.id + ": timing column '" + timing +
                                  "' is not a declared column");
  }
  if (spec.custom) return Status::Ok();
  if (spec.cells.empty()) {
    if (spec.protocols.empty())
      return InvalidArgumentError(spec.id + ": no protocols");
    if (spec.attacks.empty())
      return InvalidArgumentError(spec.id + ": no attacks");
  }
  for (const SweepSpec& sweep : spec.sweeps) {
    if (sweep.values.empty())
      return InvalidArgumentError(spec.id + ": empty sweep over " +
                                  SweepParamName(sweep.param));
    if (sweep.param == SweepParam::kXi)
      return InvalidArgumentError(spec.id +
                                  ": xi sweeps require a custom scenario");
  }
  return Status::Ok();
}

StatusOr<LoweredScenario> LowerScenario(const ScenarioSpec& spec,
                                        size_t trials, uint64_t seed) {
  if (spec.custom)
    return InvalidArgumentError(spec.id +
                                ": custom scenarios own their run loop and "
                                "do not lower to a config grid");
  Status valid = ValidateScenarioSpec(spec);
  if (!valid.ok()) return valid;
  if (trials < 1) return InvalidArgumentError(spec.id + ": trials < 1");

  const std::string label =
      spec.table_label.empty() ? spec.artifact : spec.table_label;
  LoweredScenario lowered;

  for (size_t ds = 0; ds < spec.datasets.size(); ++ds) {
    const std::string ds_name = DatasetDisplayName(spec.datasets[ds]);

    if (!spec.cells.empty()) {
      // Explicit (attack, protocol) rows, one table per dataset.
      LoweredTable table;
      table.title = label + " (" + ds_name + "): " + spec.metric_desc;
      table.dataset_index = ds;
      for (const ScenarioCell& cell : spec.cells) {
        LoweredRow row;
        row.label = std::string(AttackKindName(cell.attack)) + "-" +
                    ProtocolKindName(cell.protocol);
        row.configs.push_back(
            ConfigFromDefaults(spec, cell.protocol, cell.attack, trials, seed));
        table.rows.push_back(std::move(row));
        ++lowered.config_count;
      }
      lowered.tables.push_back(std::move(table));
      continue;
    }

    if (spec.sweeps.empty()) {
      // One table per dataset, one row per protocol.
      LoweredTable table;
      table.title = label + " (" + ds_name + "): " + spec.metric_desc;
      table.dataset_index = ds;
      for (ProtocolKind protocol : spec.protocols) {
        LoweredRow row;
        row.label = spec.row_label_prefix + ProtocolKindName(protocol);
        for (AttackKind attack : spec.attacks) {
          row.configs.push_back(
              ConfigFromDefaults(spec, protocol, attack, trials, seed));
          ++lowered.config_count;
        }
        table.rows.push_back(std::move(row));
      }
      lowered.tables.push_back(std::move(table));
      continue;
    }

    // One table per (protocol x sweep), one row per swept value.
    for (ProtocolKind protocol : spec.protocols) {
      for (const SweepSpec& sweep : spec.sweeps) {
        LoweredTable table;
        table.title = label + " (" + ds_name + ", " + spec.protocol_tag +
                      ProtocolKindName(protocol) + spec.protocol_tag_suffix +
                      "): " + spec.metric_desc;
        if (spec.title_appends_param)
          table.title += std::string(" vs ") + SweepParamName(sweep.param);
        table.dataset_index = ds;
        for (double value : sweep.values) {
          LoweredRow row;
          // Dataset axes validate before the label renders: the
          // label's integer cast is only defined for values the
          // override check accepted.
          if (IsDatasetAxis(sweep.param)) {
            Status applied = ApplyDatasetAxisValue(sweep.param, value, row);
            if (!applied.ok()) return applied;
          }
          row.label = SweepRowLabel(sweep.param, value);
          for (AttackKind attack : spec.attacks) {
            ExperimentConfig config =
                ConfigFromDefaults(spec, protocol, attack, trials, seed);
            if (!IsDatasetAxis(sweep.param)) {
              Status applied = ApplySweepValue(sweep.param, value, config);
              if (!applied.ok()) return applied;
            }
            row.configs.push_back(std::move(config));
            ++lowered.config_count;
          }
          table.rows.push_back(std::move(row));
        }
        lowered.tables.push_back(std::move(table));
      }
    }
  }
  return lowered;
}

}  // namespace ldpr
