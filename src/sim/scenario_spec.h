// ScenarioSpec: one paper figure/table evaluation declared as data.
//
// A scenario names its protocol set, attack set, dataset list, and
// parameter sweep axes; LowerScenario() turns the declaration into
// the concrete (table x row x ExperimentConfig) grid the experiment
// engine runs.  The bespoke per-bench grid wiring this replaces lived
// in twelve bench_* mains; a scenario is now a registration
// (see src/runner/registry.h) of one of these specs plus a
// row-formatting callback.
//
// Lowering rules (in priority order):
//
//   1. `cells` non-empty — explicit (attack, protocol) rows, one
//      table per dataset (Figure 3's mixed attack/protocol grid).
//   2. `sweeps` non-empty — one table per (dataset x protocol x
//      sweep), one row per swept value, one ExperimentConfig per row
//      per entry of `attacks` (Figures 5-8, 10; Figure 8 compares two
//      attacks column-wise in the same row).
//   3. otherwise — one table per dataset, one row per protocol
//      (Table I, Figure 4).
//
// Custom scenarios (ablation, ext_protocols, fig9, and the
// streaming_* windowed-ingest cells in bench/scenario_streaming.cc)
// set `custom` and run their own trial loops; their spec still
// declares the axes as data for --list, documentation, and the
// registry round-trip test.

#ifndef LDPR_SIM_SCENARIO_SPEC_H_
#define LDPR_SIM_SCENARIO_SPEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ldp/protocol.h"
#include "sim/experiment.h"
#include "sim/pipeline.h"
#include "util/status.h"

namespace ldpr {

/// The parameter a sweep table varies.  kXi belongs to the k-means
/// defense (custom scenarios only; generic lowering rejects it).
/// kNumUsers and kDomainSize are *dataset* axes: instead of touching
/// the ExperimentConfig they re-shape the table's dataset per row
/// (scaling-law scenarios), which requires every spec dataset to be a
/// resizable synthetic generator ("zipf"/"uniform") — the runner
/// rejects fixed-shape datasets at resolution time.
enum class SweepParam { kBeta, kEpsilon, kEta, kXi, kNumUsers, kDomainSize };

/// Long name used in table titles ("beta", "epsilon", "eta", "xi",
/// "n", "d").
const char* SweepParamName(SweepParam param);

/// Short name used in row labels ("beta", "eps", "eta", "xi", "n",
/// "d").
const char* SweepParamLabel(SweepParam param);

struct SweepSpec {
  SweepParam param;
  std::vector<double> values;
};

/// One explicit (attack, protocol) grid cell (Figure 3 style rows).
struct ScenarioCell {
  AttackKind attack;
  ProtocolKind protocol;
};

/// Paper-default experiment parameters a spec starts from; swept axes
/// override the matching field per row.
struct ScenarioDefaults {
  double epsilon = 0.5;
  double beta = 0.05;
  double eta = 0.2;
  size_t num_targets = 10;
  size_t num_attackers = 5;
  bool run_detection = true;
  bool run_star = true;
  uint64_t seed = 20240213;
};

struct ScenarioSpec {
  /// Stable id used on the ldpr_bench command line ("fig3").
  std::string id;
  /// One-line banner ("Figure 3 — recovery accuracy (MSE)").
  std::string title;
  /// The paper artifact this regenerates ("Figure 3", "Table I",
  /// "extension" for beyond-paper scenarios).
  std::string artifact;
  /// Prefix of every table title; defaults to `artifact` when empty
  /// (Figures 5/6 share the label "Fig 5/6").
  std::string table_label;
  /// Trailing segment of every table title ("MSE", "frequency gain
  /// under MGA").
  std::string metric_desc;
  /// Appends " vs <param>" to sweep-table titles (Figures 5/6).
  bool title_appends_param = false;

  /// Dataset names resolvable by the runner ("ipums", "fire", "zipf",
  /// "uniform").
  std::vector<std::string> datasets;
  /// Protocol axis (row axis unless `cells` or `sweeps` is set).
  std::vector<ProtocolKind> protocols;
  /// Attack axis: one ExperimentConfig per row per entry.  Unused
  /// when `cells` is set (each cell carries its own attack).
  std::vector<AttackKind> attacks;
  /// Explicit (attack, protocol) rows; mutually exclusive with
  /// `sweeps`.
  std::vector<ScenarioCell> cells;
  /// Sweep axes; each entry becomes its own table group.
  std::vector<SweepSpec> sweeps;

  /// Output column headers; a scenario's row formatter must produce
  /// exactly this many values per row.
  std::vector<std::string> columns;
  /// The subset of `columns` holding wall-clock measurements
  /// (scaling-law scenarios).  Timing values are machine-dependent by
  /// nature, so they are carried in the run manifest and excluded
  /// from exact result comparisons (`ldpr_diff --exact`, the
  /// determinism ctest entries); every other column must stay a pure
  /// function of (spec, seed, scale, trials).
  std::vector<std::string> timing_columns;
  /// Prepended to protocol row labels ("MGA-" makes "MGA-GRR").
  std::string row_label_prefix;
  /// Tag decorating sweep-table titles: "(<dataset>, <tag><protocol>
  /// <tag_suffix>)" — e.g. "AA-" + "GRR", or "MUL-AA-" + "GRR" +
  /// ", 5 attackers".
  std::string protocol_tag;
  std::string protocol_tag_suffix;

  ScenarioDefaults defaults;
  /// True for scenarios that run their own trial loop instead of the
  /// generic grid engine (ablation, ext_protocols, fig9).
  bool custom = false;
};

/// One output row: a label plus the configs whose results fill its
/// columns (one config per spec.attacks entry; usually one).
/// Dataset-axis sweeps (kNumUsers/kDomainSize) land here rather than
/// in the configs: a non-zero override asks the runner to re-shape
/// the table's dataset for this row before running its configs.
struct LoweredRow {
  std::string label;
  std::vector<ExperimentConfig> configs;
  /// Target user count before the run's `scale` factor; 0 = the
  /// dataset's default shape.
  uint64_t n_override = 0;
  /// Target domain size; 0 = the dataset's default shape.
  size_t d_override = 0;
};

/// One output table, bound to a dataset by index into spec.datasets.
struct LoweredTable {
  std::string title;
  size_t dataset_index = 0;
  std::vector<LoweredRow> rows;
};

struct LoweredScenario {
  std::vector<LoweredTable> tables;
  /// Total ExperimentConfig count across all tables/rows.
  size_t config_count = 0;
};

/// Structural validation shared by lowering and the registry
/// round-trip test: id/title/columns/datasets present, axes
/// consistent (cells xor sweeps, protocols where required).
Status ValidateScenarioSpec(const ScenarioSpec& spec);

/// Lowers a declarative spec into the concrete experiment grid.
/// `trials` and `seed` land verbatim in every ExperimentConfig
/// (per-trial seeds are derived downstream by RunExperiment).
/// Rejects specs with `custom` set — those own their run loop.
StatusOr<LoweredScenario> LowerScenario(const ScenarioSpec& spec,
                                        size_t trials, uint64_t seed);

}  // namespace ldpr

#endif  // LDPR_SIM_SCENARIO_SPEC_H_
