// Experiment harness: runs multi-trial poisoning + recovery
// experiments and collects the paper's metrics (MSE, Eq. (36);
// frequency gain, Eq. (37)) for each method:
//
//   Before      — the raw poisoned estimate f~_Z;
//   Detection   — Cao et al.'s detection baseline (needs targets);
//   LDPRecover  — non-knowledge recovery;
//   LDPRecover* — partial-knowledge recovery, fed either the true
//                 target set (MGA) or the top-r/2 frequency gainers
//                 (AA and other untargeted attacks), matching
//                 Section VI-A4.
//
// MSE is measured against the exact genuine frequencies f_X; FG is
// measured against the genuine LDP estimate f~_X per Eq. (37).
//
// Threading contract (docs/architecture.md): RunExperiment owns one
// thread budget (config.threads, 0 = auto) and splits it between two
// levels of parallelism — the trial fan-out and each trial's
// within-trial aggregation shards — so the two levels never
// oversubscribe the machine: trial_workers = min(threads, trials),
// shards = threads / trial_workers.  Many trials => trials fan out
// and aggregation runs serially inside each; a single huge trial =>
// the whole budget goes to its aggregation shards.  Results are
// byte-identical under every split because per-trial and per-shard
// RNG streams are counter-derived and every merge happens in index
// order.

#ifndef LDPR_SIM_EXPERIMENT_H_
#define LDPR_SIM_EXPERIMENT_H_

#include <cstddef>
#include <cstdint>
#include <optional>

#include "data/dataset.h"
#include "sim/pipeline.h"
#include "util/metrics.h"
#include "util/status.h"

namespace ldpr {

struct ExperimentConfig {
  ProtocolKind protocol = ProtocolKind::kGrr;
  double epsilon = 0.5;
  PipelineConfig pipeline;
  /// The server's eta for LDPRecover / LDPRecover*.
  double eta = 0.2;
  size_t trials = 10;
  uint64_t seed = 1;
  /// Evaluate the Detection baseline (requires a target set; skipped
  /// for AttackKind::kNone).
  bool run_detection = true;
  /// Evaluate LDPRecover*.
  bool run_star = true;
  /// Reproduce the paper's literal Eq. (28); see
  /// recover/malicious_stats.h.
  bool paper_literal_subdomain_sum = false;
  /// Worker-thread budget shared by the trial fan-out and the
  /// within-trial aggregation shards: 0 = auto (LDPR_THREADS or
  /// hardware concurrency), 1 = fully serial.  RunExperiment splits
  /// the budget (see the file header); pipeline.shards is overridden
  /// with the within-trial share.  Results are bit-identical at
  /// every thread count: each trial runs on its own counter-derived
  /// RNG stream, sharded aggregation chunks likewise, and all merges
  /// happen in index order.
  size_t threads = 0;
};

/// The metrics one trial contributes to the averages.  An unset field
/// means the trial did not produce that metric (e.g. FG without a
/// target set, Detection disabled).
struct TrialMetrics {
  std::optional<double> mse_before;
  std::optional<double> mse_recover;
  std::optional<double> mse_recover_star;
  std::optional<double> mse_detection;
  std::optional<double> fg_before;
  std::optional<double> fg_recover;
  std::optional<double> fg_recover_star;
  std::optional<double> fg_detection;
  std::optional<double> mse_malicious_recover;
  std::optional<double> mse_malicious_recover_star;
};

/// Averaged metrics over the configured trials.  FG statistics are
/// only populated when the attack has a target set.
struct ExperimentResult {
  RunningStat mse_before;
  RunningStat mse_recover;
  RunningStat mse_recover_star;
  RunningStat mse_detection;
  RunningStat fg_before;
  RunningStat fg_recover;
  RunningStat fg_recover_star;
  RunningStat fg_detection;
  /// Figure 7: MSE of the estimated malicious frequencies f~'_Y /
  /// f~*_Y against the trial's actual f~_Y.
  RunningStat mse_malicious_recover;
  RunningStat mse_malicious_recover_star;
  /// Wall-clock seconds per trial, measured around RunSingleTrial by
  /// RunExperiment.  Machine-dependent by nature — scenarios may only
  /// surface it through columns listed in ScenarioSpec.timing_columns,
  /// which result comparisons (ldpr_diff) exclude from exact checks.
  RunningStat trial_seconds;
  /// Genuine users each trial aggregated (the dataset's n), so
  /// scaling scenarios can derive throughput as
  /// users_per_trial / trial_seconds.mean().
  uint64_t users_per_trial = 0;
};

/// Validates the user-reachable knobs of an experiment *before* any
/// CHECK-guarded internal code runs: empty dataset (zero users — the
/// aggregation layer has nothing to estimate from and would abort),
/// degenerate domain, non-positive epsilon, zero trials, beta outside
/// [0, 1), negative eta, and attack-specific target/attacker counts.
/// Drivers that accept arbitrary user input (ldprecover_cli) surface
/// the returned InvalidArgument as an error status instead of
/// tripping an LDPR_CHECK abort.
Status ValidateExperimentInputs(const ExperimentConfig& config,
                                const Dataset& dataset);

/// Runs one trial end to end — poisoning, recovery, detection — on a
/// fresh Rng(trial_seed).  Pure in (config, dataset, trial_seed):
/// same inputs, same metrics, regardless of what else is running.
/// `config.trials` and `config.threads` are ignored here; the trial
/// fan-out lives in RunExperiment.
TrialMetrics RunSingleTrial(const ExperimentConfig& config,
                            const Dataset& dataset, uint64_t trial_seed);

/// Folds one trial's metrics into the running averages.
void MergeTrialMetrics(const TrialMetrics& trial, ExperimentResult& result);

/// Runs config.trials trials across config.threads workers (0 =
/// auto).  Deterministic in config.seed alone: trial t runs on
/// Rng(DeriveSeed(config.seed, t)) and results merge in trial order,
/// so the output is bit-identical at any thread count.
ExperimentResult RunExperiment(const ExperimentConfig& config,
                               const Dataset& dataset);

}  // namespace ldpr

#endif  // LDPR_SIM_EXPERIMENT_H_
