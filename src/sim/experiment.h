// Experiment harness: runs multi-trial poisoning + recovery
// experiments and collects the paper's metrics (MSE, Eq. (36);
// frequency gain, Eq. (37)) for each method:
//
//   Before      — the raw poisoned estimate f~_Z;
//   Detection   — Cao et al.'s detection baseline (needs targets);
//   LDPRecover  — non-knowledge recovery;
//   LDPRecover* — partial-knowledge recovery, fed either the true
//                 target set (MGA) or the top-r/2 frequency gainers
//                 (AA and other untargeted attacks), matching
//                 Section VI-A4.
//
// MSE is measured against the exact genuine frequencies f_X; FG is
// measured against the genuine LDP estimate f~_X per Eq. (37).

#ifndef LDPR_SIM_EXPERIMENT_H_
#define LDPR_SIM_EXPERIMENT_H_

#include <cstddef>
#include <cstdint>

#include "data/dataset.h"
#include "sim/pipeline.h"
#include "util/metrics.h"

namespace ldpr {

struct ExperimentConfig {
  ProtocolKind protocol = ProtocolKind::kGrr;
  double epsilon = 0.5;
  PipelineConfig pipeline;
  /// The server's eta for LDPRecover / LDPRecover*.
  double eta = 0.2;
  size_t trials = 10;
  uint64_t seed = 1;
  /// Evaluate the Detection baseline (requires a target set; skipped
  /// for AttackKind::kNone).
  bool run_detection = true;
  /// Evaluate LDPRecover*.
  bool run_star = true;
  /// Reproduce the paper's literal Eq. (28); see
  /// recover/malicious_stats.h.
  bool paper_literal_subdomain_sum = false;
};

/// Averaged metrics over the configured trials.  FG statistics are
/// only populated when the attack has a target set.
struct ExperimentResult {
  RunningStat mse_before;
  RunningStat mse_recover;
  RunningStat mse_recover_star;
  RunningStat mse_detection;
  RunningStat fg_before;
  RunningStat fg_recover;
  RunningStat fg_recover_star;
  RunningStat fg_detection;
  /// Figure 7: MSE of the estimated malicious frequencies f~'_Y /
  /// f~*_Y against the trial's actual f~_Y.
  RunningStat mse_malicious_recover;
  RunningStat mse_malicious_recover_star;
};

/// Runs the experiment.  Deterministic in config.seed.
ExperimentResult RunExperiment(const ExperimentConfig& config,
                               const Dataset& dataset);

}  // namespace ldpr

#endif  // LDPR_SIM_EXPERIMENT_H_
