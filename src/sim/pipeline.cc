#include "sim/pipeline.h"

#include <cmath>

#include "attack/adaptive.h"
#include "attack/ipa.h"
#include "attack/manip.h"
#include "attack/mga.h"
#include "attack/multi_attacker.h"
#include "util/logging.h"

namespace ldpr {

const char* AttackKindName(AttackKind kind) {
  switch (kind) {
    case AttackKind::kNone:
      return "none";
    case AttackKind::kManip:
      return "Manip";
    case AttackKind::kMga:
      return "MGA";
    case AttackKind::kAdaptive:
      return "AA";
    case AttackKind::kMgaIpa:
      return "MGA-IPA";
    case AttackKind::kMultiAdaptive:
      return "MUL-AA";
  }
  return "unknown";
}

size_t MaliciousUserCount(double beta, uint64_t n) {
  LDPR_CHECK(beta >= 0.0 && beta < 1.0);
  return static_cast<size_t>(
      std::llround(beta * static_cast<double>(n) / (1.0 - beta)));
}

std::unique_ptr<Attack> MakeAttack(const PipelineConfig& config, size_t d,
                                   Rng& rng) {
  switch (config.attack) {
    case AttackKind::kNone:
      return nullptr;
    case AttackKind::kManip: {
      ManipOptions opts;
      opts.domain_fraction = config.manip_domain_fraction;
      return std::make_unique<ManipAttack>(opts);
    }
    case AttackKind::kMga:
      return std::make_unique<MgaAttack>(
          MgaAttack::SampleTargets(d, config.num_targets, rng));
    case AttackKind::kAdaptive:
      return std::make_unique<AdaptiveAttack>();
    case AttackKind::kMgaIpa:
      return MakeMgaIpa(d,
                        MgaAttack::SampleTargets(d, config.num_targets, rng));
    case AttackKind::kMultiAdaptive:
      return MakeMultiAdaptive(config.num_attackers);
  }
  return nullptr;
}

std::vector<double> ExactGenuineSupportCounts(
    const FrequencyProtocol& protocol,
    const std::vector<uint64_t>& item_counts, Rng& rng) {
  LDPR_CHECK(item_counts.size() == protocol.domain_size());
  std::vector<double> counts(protocol.domain_size(), 0.0);
  for (ItemId item = 0; item < item_counts.size(); ++item) {
    for (uint64_t u = 0; u < item_counts[item]; ++u) {
      const Report r = protocol.Perturb(item, rng);
      protocol.AccumulateSupports(r, counts);
    }
  }
  return counts;
}

TrialOutput RunPoisoningTrial(const FrequencyProtocol& protocol,
                              const PipelineConfig& config,
                              const Dataset& dataset, Rng& rng) {
  const size_t d = protocol.domain_size();
  LDPR_CHECK(dataset.domain_size() == d);

  TrialOutput out;
  out.n = dataset.num_users();
  out.m = (config.attack == AttackKind::kNone)
              ? 0
              : MaliciousUserCount(config.beta, out.n);
  out.true_freqs = dataset.TrueFrequencies();

  // Genuine side: aggregate support counts, closed-form or per-user.
  const std::vector<double> genuine_counts =
      config.exact_genuine
          ? ExactGenuineSupportCounts(protocol, dataset.item_counts, rng)
          : protocol.SampleSupportCounts(dataset.item_counts, rng);
  out.genuine_freqs = protocol.EstimateFrequencies(genuine_counts, out.n);

  // Attacker side.
  std::vector<double> malicious_counts(d, 0.0);
  if (out.m > 0) {
    const std::unique_ptr<Attack> attack = MakeAttack(config, d, rng);
    LDPR_CHECK(attack != nullptr);
    out.attack_targets = attack->targets();
    out.malicious_reports = attack->Craft(protocol, out.m, rng);
    LDPR_CHECK(out.malicious_reports.size() == out.m);
    for (const Report& r : out.malicious_reports)
      protocol.AccumulateSupports(r, malicious_counts);
    out.malicious_freqs =
        protocol.EstimateFrequencies(malicious_counts, out.m);
  }

  // Server side: the poisoned estimate over all n + m reports.
  std::vector<double> combined(d);
  for (size_t v = 0; v < d; ++v)
    combined[v] = genuine_counts[v] + malicious_counts[v];
  out.poisoned_freqs = protocol.EstimateFrequencies(combined, out.n + out.m);
  return out;
}

}  // namespace ldpr
