#include "sim/pipeline.h"

#include <cmath>

#include "attack/adaptive.h"
#include "attack/ipa.h"
#include "attack/manip.h"
#include "attack/mga.h"
#include "attack/multi_attacker.h"
#include "util/logging.h"

namespace ldpr {

const char* AttackKindName(AttackKind kind) {
  switch (kind) {
    case AttackKind::kNone:
      return "none";
    case AttackKind::kManip:
      return "Manip";
    case AttackKind::kMga:
      return "MGA";
    case AttackKind::kAdaptive:
      return "AA";
    case AttackKind::kMgaIpa:
      return "MGA-IPA";
    case AttackKind::kMultiAdaptive:
      return "MUL-AA";
  }
  return "unknown";
}

StatusOr<AttackKind> ParseAttackKind(const std::string& name) {
  if (name == "none") return AttackKind::kNone;
  if (name == "Manip" || name == "manip") return AttackKind::kManip;
  if (name == "MGA" || name == "mga") return AttackKind::kMga;
  if (name == "AA" || name == "aa") return AttackKind::kAdaptive;
  if (name == "MGA-IPA" || name == "mga-ipa") return AttackKind::kMgaIpa;
  if (name == "MUL-AA" || name == "mul-aa") return AttackKind::kMultiAdaptive;
  return InvalidArgumentError("unknown attack: " + name);
}

size_t MaliciousUserCount(double beta, uint64_t n) {
  LDPR_CHECK(beta >= 0.0 && beta < 1.0);
  return static_cast<size_t>(
      std::llround(beta * static_cast<double>(n) / (1.0 - beta)));
}

std::unique_ptr<Attack> MakeAttack(const PipelineConfig& config, size_t d,
                                   Rng& rng) {
  switch (config.attack) {
    case AttackKind::kNone:
      return nullptr;
    case AttackKind::kManip: {
      ManipOptions opts;
      opts.domain_fraction = config.manip_domain_fraction;
      return std::make_unique<ManipAttack>(opts);
    }
    case AttackKind::kMga:
      return std::make_unique<MgaAttack>(
          MgaAttack::SampleTargets(d, config.num_targets, rng));
    case AttackKind::kAdaptive:
      return std::make_unique<AdaptiveAttack>();
    case AttackKind::kMgaIpa:
      return MakeMgaIpa(d,
                        MgaAttack::SampleTargets(d, config.num_targets, rng));
    case AttackKind::kMultiAdaptive:
      return MakeMultiAdaptive(config.num_attackers);
  }
  return nullptr;
}

std::vector<double> ExactGenuineSupportCounts(
    const FrequencyProtocol& protocol,
    const std::vector<uint64_t>& item_counts, Rng& rng) {
  // Perturbation draws stay in per-user order (unchanged RNG stream);
  // generation and accumulation run through the protocol's batched
  // SoA path (byte-identical: integer sums regroup exactly).
  return protocol.ExactSupportCounts(item_counts, rng);
}

std::vector<double> ExactGenuineSupportCountsSharded(
    const FrequencyProtocol& protocol,
    const std::vector<uint64_t>& item_counts, uint64_t seed, size_t shards) {
  LDPR_CHECK(item_counts.size() == protocol.domain_size());
  uint64_t n = 0;
  for (uint64_t c : item_counts) n += c;
  return ShardedSupportCounts(
      n, protocol.domain_size(), seed, shards,
      [&](uint64_t begin, uint64_t end, Rng& rng) {
        return ExactGenuineSupportCounts(
            protocol, RestrictItemCountsToUsers(item_counts, begin, end), rng);
      });
}

TrialOutput RunPoisoningTrial(const FrequencyProtocol& protocol,
                              const PipelineConfig& config,
                              const Dataset& dataset, Rng& rng) {
  const size_t d = protocol.domain_size();
  LDPR_CHECK(dataset.domain_size() == d);

  TrialOutput out;
  out.n = dataset.num_users();
  out.m = (config.attack == AttackKind::kNone)
              ? 0
              : MaliciousUserCount(config.beta, out.n);
  out.true_freqs = dataset.TrueFrequencies();

  // Genuine side: aggregate support counts, closed-form or per-user,
  // sharded across config.shards workers.  One seed drawn from the
  // trial RNG keys the sharded fan-out, so the number of draws
  // consumed here — and therefore everything downstream of `rng` —
  // is independent of the shard count.
  const uint64_t genuine_seed = rng.Next();
  const std::vector<double> genuine_counts =
      config.exact_genuine
          ? ExactGenuineSupportCountsSharded(protocol, dataset.item_counts,
                                             genuine_seed, config.shards)
          : protocol.SampleSupportCountsSharded(dataset.item_counts,
                                                genuine_seed, config.shards);
  out.genuine_freqs = protocol.EstimateFrequencies(genuine_counts, out.n);

  // Attacker side.  Crafting stays serial on the trial RNG (attacks
  // are stateful samplers); the support accumulation — the O(m*d)
  // part for OLH/unary — shards over the report chunks.
  std::vector<double> malicious_counts(d, 0.0);
  if (out.m > 0) {
    const std::unique_ptr<Attack> attack = MakeAttack(config, d, rng);
    LDPR_CHECK(attack != nullptr);
    out.attack_targets = attack->targets();
    ReportBatch::Builder builder(out.malicious_reports);
    attack->CraftBatch(protocol, out.m, rng, builder);
    LDPR_CHECK(out.malicious_reports.size() == out.m);
    Aggregator malicious_agg(protocol);
    malicious_agg.AddAllSharded(out.malicious_reports, config.shards);
    malicious_counts = malicious_agg.support_counts();
    out.malicious_freqs =
        protocol.EstimateFrequencies(malicious_counts, out.m);
  }

  // Server side: the poisoned estimate over all n + m reports.
  std::vector<double> combined(d);
  for (size_t v = 0; v < d; ++v)
    combined[v] = genuine_counts[v] + malicious_counts[v];
  out.poisoned_freqs = protocol.EstimateFrequencies(combined, out.n + out.m);
  return out;
}

}  // namespace ldpr
