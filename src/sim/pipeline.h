// End-to-end poisoning simulation pipeline (the framework of Figure 2
// in the paper): genuine users perturb their items with the LDP
// protocol, the attacker crafts malicious reports, and the server
// aggregates genuine, malicious, and combined (poisoned) frequency
// estimates.  One call = one trial.

#ifndef LDPR_SIM_PIPELINE_H_
#define LDPR_SIM_PIPELINE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "attack/attack.h"
#include "data/dataset.h"
#include "ldp/protocol.h"
#include "util/random.h"
#include "util/status.h"

namespace ldpr {

/// Attacks the pipeline knows how to instantiate per trial.
enum class AttackKind {
  kNone,           // beta = 0 control (Table I)
  kManip,          // untargeted manipulation attack
  kMga,            // maximal gain attack (targets resampled per trial)
  kAdaptive,       // the paper's adaptive attack (random P per trial)
  kMgaIpa,         // MGA under input poisoning (Figure 8/9)
  kMultiAdaptive,  // several adaptive attackers (Figure 10)
};

const char* AttackKindName(AttackKind kind);

/// Inverse of AttackKindName, plus the lowercase aliases the CLI has
/// always accepted ("mga", "aa", ...).  The one parser shared by the
/// subcommand CLI (src/cli/) and the shard wire format (src/shard/).
StatusOr<AttackKind> ParseAttackKind(const std::string& name);

struct PipelineConfig {
  AttackKind attack = AttackKind::kAdaptive;
  /// Fraction of malicious users beta = m / (n + m).
  double beta = 0.05;
  /// Number of target items r (MGA variants).
  size_t num_targets = 10;
  /// Manip's |H| / |D|.
  double manip_domain_fraction = 0.5;
  /// Number of attackers (kMultiAdaptive).
  size_t num_attackers = 5;
  /// Simulate every genuine user individually instead of sampling the
  /// aggregate from its closed-form law (slow; used by equivalence
  /// tests).
  bool exact_genuine = false;
  /// Pool workers for the *within-trial* aggregation fan-out (genuine
  /// support sampling, per-user exact simulation, malicious report
  /// accumulation): 0 = auto, 1 = serial.  The trial output is
  /// byte-identical at every value — the population splits into
  /// fixed-size chunks whose RNG streams are derived from the trial
  /// seed, and partial counts merge in chunk order — so this knob
  /// only decides how many cores one trial may use.  RunExperiment
  /// budgets it against the trial-level fan-out (see experiment.h).
  size_t shards = 1;
};

/// Everything one trial produces.  All frequency vectors have length
/// d.
struct TrialOutput {
  /// Exact item frequencies f_X of the genuine data.
  std::vector<double> true_freqs;
  /// LDP estimate from genuine users only, f~_X.
  std::vector<double> genuine_freqs;
  /// LDP estimate from the combined report set, f~_Z.
  std::vector<double> poisoned_freqs;
  /// LDP estimate from malicious reports only, f~_Y (empty if m = 0).
  std::vector<double> malicious_freqs;
  /// The attack's declared targets (empty for untargeted/none).
  std::vector<ItemId> attack_targets;
  /// The crafted malicious reports (for Detection / k-means), in SoA
  /// builder-mode batch form — no per-user Report is materialized
  /// anywhere on the malicious path.
  ReportBatch malicious_reports;
  size_t n = 0;  ///< genuine users
  size_t m = 0;  ///< malicious users
};

/// Number of malicious users implied by beta and n:
/// m = beta * n / (1 - beta), rounded.
size_t MaliciousUserCount(double beta, uint64_t n);

/// Instantiates the configured attack (fresh per trial so that MGA
/// resamples targets and AA resamples its distribution).
std::unique_ptr<Attack> MakeAttack(const PipelineConfig& config, size_t d,
                                   Rng& rng);

/// Runs one poisoning trial of `config` for `protocol` on `dataset`.
TrialOutput RunPoisoningTrial(const FrequencyProtocol& protocol,
                              const PipelineConfig& config,
                              const Dataset& dataset, Rng& rng);

/// Per-user exact genuine aggregation (the reference path the fast
/// samplers are validated against).
std::vector<double> ExactGenuineSupportCounts(
    const FrequencyProtocol& protocol, const std::vector<uint64_t>& item_counts,
    Rng& rng);

/// Sharded per-user exact aggregation: canonical user chunk c
/// perturbs on Rng(DeriveSeed(seed, c)) and partial support counts
/// merge in chunk order across `shards` pool workers (0 = auto).
/// Byte-identical at every shard count; this is what lets a single
/// million-user trial use the whole machine.
std::vector<double> ExactGenuineSupportCountsSharded(
    const FrequencyProtocol& protocol, const std::vector<uint64_t>& item_counts,
    uint64_t seed, size_t shards);

}  // namespace ldpr

#endif  // LDPR_SIM_PIPELINE_H_
