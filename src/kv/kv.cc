#include "kv/kv.h"

#include <algorithm>
#include <cmath>

#include "recover/ldprecover.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace ldpr {

KvProtocol::KvProtocol(size_t d, double eps_key, double eps_value)
    : d_(d), key_grr_(d, eps_key) {
  LDPR_CHECK(eps_value > 0.0);
  value_p_ = std::exp(eps_value) / (std::exp(eps_value) + 1.0);
}

KvReport KvProtocol::Perturb(const KvPair& pair, Rng& rng) const {
  LDPR_CHECK(pair.key < d_);
  LDPR_CHECK(pair.value >= -1.0 && pair.value <= 1.0);
  KvReport out;
  const Report key_report = key_grr_.Perturb(pair.key, rng);
  out.key = key_report.value;
  if (out.key == pair.key) {
    // True key survived: discretize the value and perturb its sign.
    const bool plus = rng.Bernoulli((1.0 + pair.value) / 2.0);
    const bool keep = rng.Bernoulli(value_p_);
    out.plus_bit = (plus == keep) ? 1 : 0;
  } else {
    // Key flipped: attach PrivKV's uniform fake value bit.
    out.plus_bit = rng.Bernoulli(0.5) ? 1 : 0;
  }
  return out;
}

KvReport KvProtocol::CraftReport(ItemId key) const {
  LDPR_CHECK(key < d_);
  KvReport out;
  out.key = key;
  out.plus_bit = 1;  // worst-case promotion: always +1
  return out;
}

KvAggregator::KvAggregator(const KvProtocol& protocol)
    : protocol_(protocol),
      key_counts_(protocol.domain_size(), 0.0),
      plus_counts_(protocol.domain_size(), 0.0) {}

void KvAggregator::Add(const KvReport& report) {
  LDPR_CHECK(report.key < key_counts_.size());
  key_counts_[report.key] += 1.0;
  if (report.plus_bit) plus_counts_[report.key] += 1.0;
  ++n_;
}

void KvAggregator::AddAll(const std::vector<KvReport>& reports) {
  for (const KvReport& r : reports) Add(r);
}

namespace {

// Debiases per-key means from (key count, plus count) tallies.
//
// Reports carrying key k mix T_k true-key holders (plus probability
// (1 + mu_k b)/2 with b = 2 p_value - 1) and flipped-in users (plus
// probability exactly 1/2), so E[2 plus_k - C_k] = T_k mu_k b with
// T_k = n f_k p.  Frequencies may come from the raw estimate or from
// recovery.
std::vector<double> DebiasMeans(const KvProtocol& protocol,
                                const std::vector<double>& key_counts,
                                const std::vector<double>& plus_counts,
                                const std::vector<double>& frequencies,
                                double effective_n) {
  const size_t d = protocol.domain_size();
  const double p = protocol.key_protocol().p();
  const double b = 2.0 * protocol.value_keep_probability() - 1.0;
  LDPR_CHECK(b > 0.0);
  std::vector<double> means(d, 0.0);
  for (size_t k = 0; k < d; ++k) {
    const double true_count = effective_n * frequencies[k] * p;
    if (true_count < 1.0) continue;  // no support: report 0
    const double raw = (2.0 * plus_counts[k] - key_counts[k]) /
                       (true_count * b);
    means[k] = Clamp(raw, -1.0, 1.0);
  }
  return means;
}

}  // namespace

KvEstimate KvAggregator::Estimate() const {
  LDPR_CHECK(n_ > 0);
  KvEstimate out;
  out.frequencies =
      protocol_.key_protocol().EstimateFrequencies(key_counts_, n_);
  out.means = DebiasMeans(protocol_, key_counts_, plus_counts_,
                          out.frequencies, static_cast<double>(n_));
  return out;
}

KvEstimate KvRecover(const KvProtocol& protocol, const KvAggregator& poisoned,
                     const KvRecoverOptions& options) {
  LDPR_CHECK(poisoned.report_count() > 0);
  const Grr& grr = protocol.key_protocol();
  const double total = static_cast<double>(poisoned.report_count());
  // The server assumes at most eta*n malicious users: N = n + m with
  // m = eta * n gives the implied genuine population.
  const double n_genuine = total / (1.0 + options.eta);
  const double m_malicious = total - n_genuine;

  // Key channel: LDPRecover exactly as in the paper.
  const std::vector<double> poisoned_freqs = grr.EstimateFrequencies(
      poisoned.key_counts(), poisoned.report_count());
  RecoverOptions ropts;
  ropts.eta = options.eta;
  ropts.known_targets = options.known_targets;
  const LdpRecover recover(grr, ropts);
  KvEstimate out;
  out.frequencies = recover.Recover(poisoned_freqs);

  // Value channel: translate the learnt malicious frequencies back
  // into implied raw malicious report counts per key,
  //   c_mal(k) = m * (f~_Y(k) (p - q) + q),
  // and deduct them from both tallies under the worst-case assumption
  // that crafted values are +1.
  const std::vector<double> malicious_freqs =
      recover.EstimateMaliciousFrequencies(poisoned_freqs);
  const double p = grr.p();
  const double q = grr.q();
  const size_t d = protocol.domain_size();
  std::vector<double> corrected_keys(d), corrected_plus(d);
  for (size_t k = 0; k < d; ++k) {
    double c_mal = m_malicious * (malicious_freqs[k] * (p - q) + q);
    c_mal = Clamp(c_mal, 0.0, poisoned.key_counts()[k]);
    corrected_keys[k] = poisoned.key_counts()[k] - c_mal;
    corrected_plus[k] =
        Clamp(poisoned.plus_counts()[k] - c_mal, 0.0, corrected_keys[k]);
  }
  out.means = DebiasMeans(protocol, corrected_keys, corrected_plus,
                          out.frequencies, n_genuine);
  return out;
}

}  // namespace ldpr
