// Key-value collection under LDP and poisoning recovery for it — a
// prototype of the extension named in the paper's conclusion
// ("extend LDPRecover to poisoning attacks on LDP protocols for more
// complex tasks, such as key-value pairs collection").
//
// The collection protocol is a single-round PrivKV-style mechanism:
// each user holds one (key, value) pair with value in [-1, 1];
//
//   * the key is perturbed with GRR(d, eps_key);
//   * if the reported key equals the true key, the value is
//     discretized into {+1, -1} (probability (1 + v)/2 for +1) and
//     perturbed with binary randomized response at eps_value;
//   * if the key flipped to another key, the user attaches a uniform
//     fake value bit — PrivKV's fake-value rule, which keeps the
//     value channel independent of the true pair.
//
// The server estimates per-key frequencies with the GRR estimator and
// per-key means by debiasing the +1 counts against the known mixture
// of true-key and flipped-in reports.
//
// A poisoning attacker injects crafted (target key, +1) reports to
// inflate both the target's frequency and its mean.  KvRecover
// extends LDPRecover: key frequencies are recovered exactly as in the
// paper, and the learnt malicious frequencies additionally yield an
// estimate of the malicious report count per key, which is subtracted
// from the +1/count tallies before the mean is re-estimated (under
// the worst-case assumption that crafted values are +1).

#ifndef LDPR_KV_KV_H_
#define LDPR_KV_KV_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "ldp/grr.h"
#include "ldp/report.h"
#include "util/random.h"

namespace ldpr {

/// One user's datum: a key in {0, ..., d-1} and a value in [-1, 1].
struct KvPair {
  ItemId key = 0;
  double value = 0.0;
};

/// One perturbed key-value report.
struct KvReport {
  /// Reported (perturbed) key.
  ItemId key = 0;
  /// Perturbed value bit: 1 encodes +1, 0 encodes -1.
  uint8_t plus_bit = 0;
};

/// Aggregated server-side estimate.
struct KvEstimate {
  /// Per-key frequency estimates (GRR-debiased; may contain negatives
  /// before recovery).
  std::vector<double> frequencies;
  /// Per-key mean estimates in [-1, 1] (clamped).  Keys with
  /// non-positive estimated support fall back to 0.
  std::vector<double> means;
};

class KvProtocol {
 public:
  /// `d` keys; the privacy budget is split between the key and value
  /// channels (eps_key + eps_value composes to the total budget).
  KvProtocol(size_t d, double eps_key, double eps_value);

  size_t domain_size() const { return d_; }
  const Grr& key_protocol() const { return key_grr_; }

  /// Probability a perturbed value bit keeps its discretized sign.
  double value_keep_probability() const { return value_p_; }

  /// Client side: perturbs one key-value pair.
  KvReport Perturb(const KvPair& pair, Rng& rng) const;

  /// Crafted malicious report promoting `key` with value +1
  /// (bypasses perturbation, Section IV-A threat model).
  KvReport CraftReport(ItemId key) const;

 private:
  size_t d_;
  Grr key_grr_;
  double value_p_;
};

/// Streaming aggregator for key-value reports.
class KvAggregator {
 public:
  explicit KvAggregator(const KvProtocol& protocol);

  void Add(const KvReport& report);
  void AddAll(const std::vector<KvReport>& reports);

  size_t report_count() const { return n_; }

  /// Debiased frequency + mean estimates over everything seen.
  KvEstimate Estimate() const;

  /// Raw per-key report counts (used by recovery).
  const std::vector<double>& key_counts() const { return key_counts_; }
  /// Raw per-key +1-bit counts (used by recovery).
  const std::vector<double>& plus_counts() const { return plus_counts_; }

 private:
  const KvProtocol& protocol_;
  std::vector<double> key_counts_;
  std::vector<double> plus_counts_;
  size_t n_ = 0;
};

/// Options for key-value recovery (mirrors RecoverOptions).
struct KvRecoverOptions {
  /// The server's (over-)estimate of m/n.
  double eta = 0.2;
  /// Known attacker-selected keys (LDPRecover* mode).
  std::optional<std::vector<ItemId>> known_targets;
};

/// Recovers frequency and mean estimates from a poisoned aggregate:
/// frequencies via LDPRecover on the key channel; means by removing
/// the implied malicious (key, +1) tallies before re-debiasing.
KvEstimate KvRecover(const KvProtocol& protocol, const KvAggregator& poisoned,
                     const KvRecoverOptions& options = {});

}  // namespace ldpr

#endif  // LDPR_KV_KV_H_
