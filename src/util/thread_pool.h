// Fixed-size worker thread pool and the ParallelFor helper that the
// experiment engine and the figure benches schedule work on.
//
// Design notes:
//
//  - The pool is a plain task queue: Submit() enqueues a closure,
//    Wait() blocks until every submitted closure has finished.  The
//    destructor drains the queue before joining, so a pool can be
//    used fire-and-forget.
//
//  - ParallelFor(threads, n, fn) runs fn(0) ... fn(n-1) with dynamic
//    (work-stealing counter) scheduling.  Callers own determinism:
//    every index must write only its own output slot, and any
//    randomness must be derived from the index (see DeriveSeed in
//    util/random.h), never from execution order.  Under that
//    contract results are bit-identical at any thread count,
//    including the serial threads <= 1 fast path.
//
//  - The first exception thrown by any index is captured and
//    rethrown on the calling thread after all workers finish.
//
// Thread count resolution: an explicit count wins; 0 means "auto",
// which honors the LDPR_THREADS environment variable and falls back
// to std::thread::hardware_concurrency().

#ifndef LDPR_UTIL_THREAD_POOL_H_
#define LDPR_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ldpr {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues one task.  Tasks must not throw — an exception escapes
  /// the worker thread and terminates the process; use ParallelFor
  /// for exception propagation.  Tasks must not Submit() to the same
  /// pool and then Wait() on it from inside a task (deadlock).
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// Runs fn(begin) ... fn(end-1) across the pool's workers and
  /// blocks until all indices are done.  Rethrows the first
  /// exception any index threw.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_cv_;  // signals workers: task or stop
  std::condition_variable idle_cv_;  // signals Wait(): all drained
  size_t in_flight_ = 0;             // queued + currently running
  bool stop_ = false;
};

/// LDPR_THREADS if set (clamped to >= 1), else hardware concurrency,
/// else 1.  This is the pool size every "0 = auto" caller gets.
size_t DefaultThreadCount();

/// One-shot parallel loop: runs fn(0) ... fn(n-1) on `num_threads`
/// workers (0 = DefaultThreadCount()).  Runs inline without spawning
/// threads when num_threads <= 1 or n <= 1.  Blocks until done and
/// rethrows the first exception.
void ParallelFor(size_t num_threads, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace ldpr

#endif  // LDPR_UTIL_THREAD_POOL_H_
