// Fixed-size worker thread pool and the ParallelFor helper that the
// experiment engine, the sharded aggregation path, and the figure
// benches schedule work on.
//
// Public contract (see also docs/architecture.md):
//
//  - The pool is a plain task queue: Submit() enqueues a closure,
//    Wait() blocks until every submitted closure has finished.  The
//    destructor drains the queue before joining, so a pool can be
//    used fire-and-forget.
//
//  - ParallelFor(threads, n, fn) runs fn(0) ... fn(n-1) with dynamic
//    (work-stealing counter) scheduling.  Callers own determinism:
//    every index must write only its own output slot, and any
//    randomness must be derived from the index (see DeriveSeed in
//    util/random.h), never from execution order.  Under that
//    contract results are bit-identical at any thread count,
//    including the serial threads <= 1 fast path.
//
//  - The first exception thrown by any index is captured and
//    rethrown on the calling thread after all workers finish.
//
//  - The free ParallelFor reuses one process-wide lazily-created
//    pool (GlobalThreadPool()) instead of spawning a transient pool
//    per call, so many small parallel loops pay thread-spawn cost
//    once.  Calls *nested inside* a pool task — e.g. shard-level
//    aggregation inside a trial-level fan-out — never re-enter the
//    caller's pool (that would deadlock: the task would Wait() on a
//    queue it occupies); they run on a small transient pool instead,
//    budgeted by the caller (see RunExperiment's split of the thread
//    budget between trials and shards).
//
// Thread count resolution: an explicit count wins; 0 means "auto",
// which honors the LDPR_THREADS environment variable and falls back
// to std::thread::hardware_concurrency().

#ifndef LDPR_UTIL_THREAD_POOL_H_
#define LDPR_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ldpr {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues one task.  Tasks must not throw — an exception escapes
  /// the worker thread and terminates the process; use ParallelFor
  /// for exception propagation.  Tasks must not Submit() to the same
  /// pool and then Wait() on it from inside a task (deadlock).
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.  Must not
  /// be called from inside one of this pool's own tasks — in_flight_
  /// would include the caller and never drain (enforced by a check);
  /// waiting on a *different* pool from a task is fine.
  void Wait();

  /// Runs fn(begin) ... fn(end-1) across the pool's workers and
  /// blocks until all indices are done.  Rethrows the first
  /// exception any index threw.  `max_runners` caps how many workers
  /// participate (0 = all of them) so a shared pool can serve a
  /// caller that asked for fewer threads than the pool holds.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn,
                   size_t max_runners = 0);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_cv_;  // signals workers: task or stop
  std::condition_variable idle_cv_;  // signals Wait(): all drained
  size_t in_flight_ = 0;             // queued + currently running
  bool stop_ = false;
};

/// LDPR_THREADS if set (clamped to >= 1), else hardware concurrency,
/// else 1.  This is the pool size every "0 = auto" caller gets.
size_t DefaultThreadCount();

/// The process-wide pool the free ParallelFor schedules on, created
/// lazily with DefaultThreadCount() workers on first use (so
/// LDPR_THREADS is read once, at first parallel work).  Thread-safe;
/// the workers idle between parallel regions and join at process
/// exit.
ThreadPool& GlobalThreadPool();

/// True iff the calling thread is a ThreadPool worker (any pool).
/// ParallelFor uses this to detect nested parallelism.
bool InThreadPoolWorker();

/// Two-level split of one worker-thread budget: `outer` workers fan
/// an n-item grid out and every item gets `inner` workers for its
/// own nested parallelism, with outer * inner <= the budget — the
/// policy RunExperiment applies to (trials x aggregation shards) and
/// the bench grids apply to (cells x shards).  `num_threads` 0 means
/// auto (DefaultThreadCount()).  Splitting never affects results,
/// only which level the cores serve.
struct ThreadBudget {
  size_t outer;
  size_t inner;
};
ThreadBudget SplitThreadBudget(size_t num_threads, size_t n);

/// Parallel loop: runs fn(0) ... fn(n-1) on `num_threads` workers
/// (0 = DefaultThreadCount()).  Runs inline without touching any
/// pool when num_threads <= 1 or n <= 1; otherwise schedules on
/// GlobalThreadPool() — or, when called from inside a pool task
/// (nested parallelism) or when more than DefaultThreadCount()
/// workers are requested, on a transient pool of its own.  Blocks
/// until done and rethrows the first exception.
void ParallelFor(size_t num_threads, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace ldpr

#endif  // LDPR_UTIL_THREAD_POOL_H_
