// Portable SIMD layer for the batched aggregation kernels.
//
// Three hot kernels dominate report-heavy aggregation (see
// docs/architecture.md):
//
//   * column sums over packed unary 0/1 bit rows (OUE/SUE),
//   * the GRR value histogram,
//   * batched SeededHash evaluation for OLH/BLH report tiles.
//
// Each kernel ships a scalar reference implementation (always
// compiled, the exact shape of the pre-SIMD per-report code) plus
// accelerated paths: AVX2/SSE2 byte-lane accumulation for the unary
// columns, bank-interleaved counting for the histogram, and the
// inline split-xxHash + FastMod evaluation of util/hash_family.h for
// local hashing.  Dispatch is compile-time (only backends the target
// architecture can express are compiled; see the LDPR_SIMD CMake
// option) narrowed at runtime by cpuid, and every kernel is bit-exact
// across backends: support counts are integer sums, so regrouped or
// vectorized accumulation yields byte-identical doubles
// (tests/report_gen_batch_test.cc locks each kernel to its scalar
// reference).
//
// Setting LDPR_FORCE_SCALAR=1 in the environment pins the scalar
// reference paths — the lever the CI determinism job uses to prove
// SIMD-vs-scalar result trees `ldpr_diff --exact`-identical.

#ifndef LDPR_UTIL_SIMD_H_
#define LDPR_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace ldpr {

/// The kernel implementations this build can dispatch to.  kScalar is
/// always available; the others require both compile-time support and
/// (on x86) a runtime cpuid check.
enum class SimdBackend {
  kScalar,
  kSse2,
  kAvx2,
  kNeon,
};

const char* SimdBackendName(SimdBackend backend);

/// The backend every kernel currently dispatches to: the best
/// available one, unless the LDPR_SIMD CMake option pinned or
/// disabled dispatch, LDPR_FORCE_SCALAR=1 is set in the environment
/// (checked once, at first use), or a test override is active.
SimdBackend ActiveSimdBackend();
const char* ActiveSimdBackendName();

/// Test hooks: pin dispatch to `backend` / restore auto-detection.
/// The caller must only pin backends available on the running
/// machine (kScalar always is).
void SetSimdBackendForTest(SimdBackend backend);
void ClearSimdBackendForTest();

// ------------------------------------------------------------------
// Kernels.  All "Add" kernels accumulate into their output (callers
// zero or carry totals); all are bit-exact across backends.

/// Unary column sums, packed rows: for each column v < d, adds the
/// number of rows whose byte row[v] is nonzero to acc[v].  `rows`
/// holds n contiguous d-byte rows.  Requires n < 2^32 per call.
void SimdUnaryColumnsAddPacked(const uint8_t* rows, size_t n, size_t d,
                               uint32_t* acc);

/// Unary column sums over n separately-stored rows of d bytes each
/// (the AoS span compat path).  Requires n < 2^32 per call.
void SimdUnaryColumnsAddRows(const uint8_t* const* rows, size_t n, size_t d,
                             uint32_t* acc);

/// GRR value histogram: adds the occurrence count of each value v to
/// hist[v].  Checks every value against d.
void SimdValueHistogramAdd(const uint32_t* values, size_t n, size_t d,
                           uint64_t* hist);

/// Batched OLH/BLH support counting: for each item v < d, adds
/// |{ i : H_{seeds[i]}(v) == values[i] }| to counts[v], where H is
/// the SeededHash family with range g.  Bit-identical to the
/// per-report SeededHash loop.  Intended for report tiles (a few
/// hundred reports) so seeds/values stay L1-resident across the item
/// sweep; any n works.
void SimdOlhSupportAdd(const uint64_t* seeds, const uint32_t* values,
                       size_t n, size_t d, uint32_t g, double* counts);

}  // namespace ldpr

#endif  // LDPR_UTIL_SIMD_H_
