#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace ldpr {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  SplitMix64 mix(seed);
  for (auto& word : s_) word = mix.Next();
  // Guard against the (astronomically unlikely) all-zero state, which
  // is the one fixed point of xoshiro.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

void Rng::Jump() {
  static constexpr uint64_t kJump[] = {0x180EC6D33CFD0ABAULL,
                                       0xD5A61266F0C9392CULL,
                                       0xA9582618E03FC9AAULL,
                                       0x39ABDC4529B1661CULL};
  uint64_t t[4] = {0, 0, 0, 0};
  for (uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (uint64_t{1} << b)) {
        t[0] ^= s_[0];
        t[1] ^= s_[1];
        t[2] ^= s_[2];
        t[3] ^= s_[3];
      }
      Next();
    }
  }
  s_[0] = t[0];
  s_[1] = t[1];
  s_[2] = t[2];
  s_[3] = t[3];
}

uint64_t Rng::UniformU64(uint64_t n) {
  LDPR_CHECK(n > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < n) {
    uint64_t threshold = (0 - n) % n;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * n;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

uint64_t Rng::BinomialInversion(uint64_t n, double p) {
  // Sequential search on the CDF; O(n*p) expected iterations.
  const double q = 1.0 - p;
  const double s = p / q;
  const double a = static_cast<double>(n + 1) * s;
  double r = std::pow(q, static_cast<double>(n));
  double u = UniformDouble();
  uint64_t x = 0;
  while (u > r) {
    u -= r;
    ++x;
    if (x > n) return n;  // numeric safety
    r *= (a / static_cast<double>(x)) - s;
  }
  return x;
}

namespace {

// The Stirling series tail ln(k!) - [ln(sqrt(2*pi*k)) + k*ln(k) - k],
// tabulated for k <= 9, asymptotic otherwise (Hormann 1993).  Local
// so the sampler never touches libc's lgamma, whose glibc
// implementation writes the process-global signgam — a data race
// when aggregation shards sample binomials concurrently.
double StirlingTail(double k) {
  static constexpr double kTail[] = {
      0.0810614667953272,  0.0413406959554092,  0.0276779256849983,
      0.02079067210376509, 0.0166446911898211,  0.0138761288230707,
      0.0118967099458917,  0.0104112652619720,  0.00925546218271273,
      0.00833056343336287};
  if (k <= 9.0) return kTail[static_cast<int>(k)];
  const double kp1sq = (k + 1.0) * (k + 1.0);
  return (1.0 / 12 - (1.0 / 360 - 1.0 / 1260 / kp1sq) / kp1sq) / (k + 1.0);
}

}  // namespace

uint64_t Rng::BinomialBtrs(uint64_t n, double p) {
  // BTRS, Hormann 1993: transformed rejection with squeeze, the
  // standard large-n*p binomial sampler (requires n*p >= 10 and
  // p <= 0.5, which Binomial() guarantees).  Self-contained —
  // thread-safe and O(1) expected draws — unlike
  // std::binomial_distribution, whose setup calls glibc lgamma.
  const double nd = static_cast<double>(n);
  const double stddev = std::sqrt(nd * p * (1.0 - p));
  const double b = 1.15 + 2.53 * stddev;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = nd * p + 0.5;
  const double v_r = 0.92 - 4.2 / b;
  const double r = p / (1.0 - p);
  const double alpha = (2.83 + 5.1 / b) * stddev;
  const double m = std::floor((nd + 1.0) * p);
  for (;;) {
    const double u = UniformDouble() - 0.5;
    double v = UniformDouble();
    const double us = 0.5 - std::fabs(u);
    const double k = std::floor((2.0 * a / us + b) * u + c);
    // Inside the squeeze region the bounding box is tight enough to
    // accept without evaluating the density.
    if (us >= 0.07 && v <= v_r) return static_cast<uint64_t>(k);
    if (k < 0.0 || k > nd) continue;
    v = std::log(v * alpha / (a / (us * us) + b));
    const double upper =
        (m + 0.5) * std::log((m + 1.0) / (r * (nd - m + 1.0))) +
        (nd + 1.0) * std::log((nd - m + 1.0) / (nd - k + 1.0)) +
        (k + 0.5) * std::log(r * (nd - k + 1.0) / (k + 1.0)) +
        StirlingTail(m) + StirlingTail(nd - m) - StirlingTail(k) -
        StirlingTail(nd - k);
    if (v <= upper) return static_cast<uint64_t>(k);
  }
}

uint64_t Rng::Binomial(uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  const bool flip = p > 0.5;
  const double pp = flip ? 1.0 - p : p;
  const double np = static_cast<double>(n) * pp;
  uint64_t x = (np < 10.0) ? BinomialInversion(n, pp) : BinomialBtrs(n, pp);
  return flip ? n - x : x;
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  LDPR_CHECK(!weights.empty());
  const size_t d = weights.size();
  double total = 0.0;
  for (double w : weights) {
    LDPR_CHECK(w >= 0.0);
    total += w;
  }
  LDPR_CHECK(total > 0.0);

  normalized_.resize(d);
  for (size_t i = 0; i < d; ++i) normalized_[i] = weights[i] / total;

  prob_.assign(d, 0.0);
  alias_.assign(d, 0);
  std::vector<double> scaled(d);
  for (size_t i = 0; i < d; ++i)
    scaled[i] = normalized_[i] * static_cast<double>(d);

  std::vector<uint32_t> small, large;
  small.reserve(d);
  large.reserve(d);
  for (size_t i = 0; i < d; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;  // numeric leftovers
}

size_t AliasSampler::Sample(Rng& rng) const {
  const size_t column = rng.UniformU64(prob_.size());
  return rng.UniformDouble() < prob_[column] ? column : alias_[column];
}

std::vector<double> ZipfSampler::MakeWeights(size_t d, double s) {
  LDPR_CHECK(d > 0);
  std::vector<double> w(d);
  for (size_t i = 0; i < d; ++i)
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
  return w;
}

ZipfSampler::ZipfSampler(size_t d, double s) : alias_(MakeWeights(d, s)) {}

std::vector<uint64_t> SampleMultinomial(uint64_t n,
                                        const std::vector<double>& weights,
                                        Rng& rng) {
  LDPR_CHECK(!weights.empty());
  double remaining_weight =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  LDPR_CHECK(remaining_weight > 0.0);
  std::vector<uint64_t> counts(weights.size(), 0);
  uint64_t remaining = n;
  for (size_t i = 0; i + 1 < weights.size() && remaining > 0; ++i) {
    const double p = weights[i] / remaining_weight;
    const uint64_t c = rng.Binomial(remaining, std::min(1.0, std::max(0.0, p)));
    counts[i] = c;
    remaining -= c;
    remaining_weight -= weights[i];
    if (remaining_weight <= 0.0) break;
  }
  counts.back() += remaining;
  return counts;
}

std::vector<double> SampleRandomDistribution(size_t d, Rng& rng) {
  LDPR_CHECK(d > 0);
  // Flat Dirichlet via normalized i.i.d. Exp(1) draws.
  std::vector<double> p(d);
  double total = 0.0;
  for (size_t i = 0; i < d; ++i) {
    double u = rng.UniformDouble();
    // Avoid log(0).
    u = std::max(u, 1e-300);
    p[i] = -std::log(u);
    total += p[i];
  }
  for (double& v : p) v /= total;
  return p;
}

std::vector<uint32_t> SampleWithoutReplacement(size_t d, size_t k, Rng& rng) {
  LDPR_CHECK(k <= d);
  std::vector<uint32_t> pool(d);
  std::iota(pool.begin(), pool.end(), 0u);
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + rng.UniformU64(d - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

uint64_t DeriveSeed(uint64_t seed, uint64_t stream) {
  // Round 1 decorrelates the user seed; round 2 folds the stream
  // counter in through an odd-multiplier injection so that adjacent
  // streams land in unrelated parts of the SplitMix64 orbit.
  SplitMix64 outer(seed);
  const uint64_t mixed_seed = outer.Next();
  SplitMix64 inner(mixed_seed ^
                   (stream * 0xBF58476D1CE4E5B9ULL + 0x94D049BB133111EBULL));
  return inner.Next();
}

}  // namespace ldpr
