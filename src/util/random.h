// Deterministic PRNG stack used throughout the library.
//
// All randomness flows through ldpr::Rng, a xoshiro256** engine seeded
// via SplitMix64.  Experiments take explicit seeds so that every table
// and figure in the paper reproduction is bit-reproducible.
//
// On top of the raw engine this header provides the samplers the
// protocols and attacks need: uniform integers/reals, Bernoulli,
// Binomial, an O(1) alias-method sampler for arbitrary discrete
// distributions (used by the adaptive attack), and a Zipf sampler
// (used by the synthetic dataset generators).

#ifndef LDPR_UTIL_RANDOM_H_
#define LDPR_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace ldpr {

/// SplitMix64: a tiny, high-quality 64-bit mixer.  Used to expand one
/// user-provided seed into the four words of xoshiro state, and as a
/// stateless hash in tests.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit value in the sequence.
  uint64_t Next();

 private:
  uint64_t state_;
};

/// xoshiro256**: fast, high-quality general-purpose 64-bit PRNG
/// (Blackman & Vigna).  Satisfies std::uniform_random_bit_generator,
/// so it can drive <random> distributions as well.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four state words by iterating SplitMix64 over `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Returns the next raw 64-bit output.
  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Uniform integer in [0, n).  Uses Lemire's unbiased multiply-shift
  /// rejection method.  Requires n > 0.
  uint64_t UniformU64(uint64_t n);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Binomial(n, p) draw.
  ///
  /// Uses inversion for small n*p and the BTRS transformed-rejection
  /// algorithm (Hormann 1993) otherwise, so sampling counts for
  /// hundreds of thousands of users is O(1) per item instead of
  /// O(n).  Self-contained: never calls libc lgamma, whose glibc
  /// implementation writes the global signgam — important because
  /// sharded aggregation samples binomials from many threads at
  /// once.
  uint64_t Binomial(uint64_t n, double p);

  /// Jumps the generator forward by 2^128 steps; handy for carving
  /// independent substreams out of one seed.
  void Jump();

 private:
  uint64_t PoissonApproxBinomial(uint64_t n, double p);
  uint64_t BinomialInversion(uint64_t n, double p);
  uint64_t BinomialBtrs(uint64_t n, double p);

  uint64_t s_[4];
};

/// Alias-method sampler: O(d) build, O(1) sample from an arbitrary
/// discrete distribution over {0, ..., d-1}.
///
/// The adaptive attack samples millions of malicious reports from an
/// attacker-designed distribution; the alias method keeps that linear
/// in the number of reports rather than in d * reports.
class AliasSampler {
 public:
  /// Builds the sampler from (unnormalized, non-negative) weights.
  /// At least one weight must be positive.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws one index distributed proportionally to the weights.
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

  /// Normalized probability of index i (for tests / introspection).
  double probability(size_t i) const { return normalized_[i]; }

 private:
  std::vector<double> prob_;       // acceptance probability per column
  std::vector<uint32_t> alias_;    // alias column
  std::vector<double> normalized_; // normalized input distribution
};

/// Zipf(s) sampler over {0, ..., d-1}: P(i) proportional to 1/(i+1)^s.
/// Implemented on top of AliasSampler (d is at most a few thousand in
/// this library, so the O(d) table is cheap).
class ZipfSampler {
 public:
  ZipfSampler(size_t d, double s);

  size_t Sample(Rng& rng) const { return alias_.Sample(rng); }

  /// The exact probability mass of item i.
  double probability(size_t i) const { return alias_.probability(i); }

  size_t size() const { return alias_.size(); }

 private:
  static std::vector<double> MakeWeights(size_t d, double s);
  AliasSampler alias_;
};

/// Samples a multinomial allocation: distributes `n` balls over bins
/// with the given (normalized or unnormalized) weights, using
/// conditional binomials.  O(bins) time, exact distribution.
std::vector<uint64_t> SampleMultinomial(uint64_t n,
                                        const std::vector<double>& weights,
                                        Rng& rng);

/// Samples a uniformly random probability vector over d items
/// (flat Dirichlet) — the paper's "randomly generated attacker-designed
/// distribution" for the adaptive attack.
std::vector<double> SampleRandomDistribution(size_t d, Rng& rng);

/// Samples k distinct indices uniformly from {0, ..., d-1}
/// (partial Fisher-Yates).  Requires k <= d.
std::vector<uint32_t> SampleWithoutReplacement(size_t d, size_t k, Rng& rng);

/// Counter-based seed derivation: collapses (seed, stream) into one
/// well-mixed 64-bit seed via two SplitMix64 rounds, in O(1).
///
/// This is how the parallel experiment engine gives every trial its
/// own statistically independent RNG stream: trial t of an
/// experiment seeded with s runs on Rng(DeriveSeed(s, t)).  Because
/// the derivation depends only on (s, t) — never on execution order —
/// results are bit-identical at any thread count.
uint64_t DeriveSeed(uint64_t seed, uint64_t stream);

}  // namespace ldpr

#endif  // LDPR_UTIL_RANDOM_H_
