// Seeded hash family for OLH.
//
// OLH requires each user to pick a hash function H uniformly from a
// family such that H(v) is uniform over {0, ..., g-1} for each item
// and (approximately) independent across items.  We realize the
// family as { v -> XXH64(v, seed) mod g : seed in uint64 }, matching
// the construction in Wang et al.'s reference implementation.

#ifndef LDPR_UTIL_HASH_FAMILY_H_
#define LDPR_UTIL_HASH_FAMILY_H_

#include <cstdint>

#include "util/xxhash.h"

namespace ldpr {

/// One member of the OLH hash family, identified by its seed.
class SeededHash {
 public:
  /// Creates the family member with the given seed mapping into
  /// {0, ..., g-1}.  Requires g >= 2.
  SeededHash(uint64_t seed, uint32_t g) : seed_(seed), g_(g) {}

  /// H_seed(item) in {0, ..., g-1}.
  uint32_t operator()(uint64_t item) const {
    return static_cast<uint32_t>(XxHash64(item, seed_) % g_);
  }

  uint64_t seed() const { return seed_; }
  uint32_t range() const { return g_; }

 private:
  uint64_t seed_;
  uint32_t g_;
};

}  // namespace ldpr

#endif  // LDPR_UTIL_HASH_FAMILY_H_
