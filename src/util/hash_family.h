// Seeded hash family for OLH.
//
// OLH requires each user to pick a hash function H uniformly from a
// family such that H(v) is uniform over {0, ..., g-1} for each item
// and (approximately) independent across items.  We realize the
// family as { v -> XXH64(v, seed) mod g : seed in uint64 }, matching
// the construction in Wang et al.'s reference implementation.
//
// Besides the one-at-a-time SeededHash this header provides the
// batched evaluation building blocks the SIMD aggregation kernels
// (util/simd.h) are built from:
//
//  * FastMod — an exact strength-reduced `x % g` for a loop-invariant
//    g (power-of-two mask, else one high multiply + one correction
//    subtract).  Exactness for every 64-bit x is what keeps the
//    batched OLH path bit-identical to SeededHash, and is locked in
//    by tests/report_gen_batch_test.cc.
//  * SeededHashTileEval — evaluates H_seed(item) for one item against
//    a whole tile of report seeds, hoisting the item-only half of the
//    8-byte xxHash (XxHash64Round0) out of the per-seed loop.

#ifndef LDPR_UTIL_HASH_FAMILY_H_
#define LDPR_UTIL_HASH_FAMILY_H_

#include <cstddef>
#include <cstdint>

#include "util/xxhash.h"

namespace ldpr {

/// Exact division-free `x % g` for a fixed divisor g >= 1.
///
/// Power-of-two g reduces to a mask.  Otherwise, with
/// m = floor(2^64 / g), the quotient estimate
/// q = floor(m * x / 2^64) satisfies floor(x/g) - q in {0, 1}
/// (the error term e*x/(g*2^64) with e = 2^64 mod g < g is < 1 for
/// every x < 2^64), so one conditional subtract of g makes the
/// remainder exact for all 64-bit x.
class FastMod {
 public:
  FastMod() : FastMod(1) {}
  explicit FastMod(uint64_t g)
      : g_(g),
        mask_(g - 1),
        pow2_((g & (g - 1)) == 0),
        m_(pow2_ ? 0
                 : static_cast<uint64_t>(
                       (static_cast<unsigned __int128>(1) << 64) / g)) {}

  uint64_t divisor() const { return g_; }

  uint64_t operator()(uint64_t x) const {
    if (pow2_) return x & mask_;
    const uint64_t q = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(m_) * x) >> 64);
    uint64_t r = x - q * g_;
    if (r >= g_) r -= g_;
    return r;
  }

 private:
  uint64_t g_;
  uint64_t mask_;
  bool pow2_;
  uint64_t m_;  // floor(2^64 / g); fits u64 for every non-pow2 g >= 3
};

/// One member of the OLH hash family, identified by its seed.
class SeededHash {
 public:
  /// Creates the family member with the given seed mapping into
  /// {0, ..., g-1}.  Requires g >= 2.
  SeededHash(uint64_t seed, uint32_t g) : seed_(seed), g_(g) {}

  /// H_seed(item) in {0, ..., g-1}.
  uint32_t operator()(uint64_t item) const {
    return static_cast<uint32_t>(XxHash64(item, seed_) % g_);
  }

  uint64_t seed() const { return seed_; }
  uint32_t range() const { return g_; }

 private:
  uint64_t seed_;
  uint32_t g_;
};

/// Batched SeededHash evaluation: one item against a tile of seeds.
///
/// `seed_accs[i]` must hold XxHash64SeedAcc(seed_i) (precomputed once
/// per tile); `Eval(i)` then returns H_{seed_i}(item) in
/// {0, ..., g-1}, bit-identical to SeededHash(seed_i, g)(item) — the
/// item-only xxHash half and the modulus are exact refactorings, not
/// approximations.
class SeededHashTileEval {
 public:
  SeededHashTileEval(uint64_t item, const uint64_t* seed_accs,
                     const FastMod& mod)
      : round0_(XxHash64Round0(item)), seed_accs_(seed_accs), mod_(mod) {}

  uint32_t Eval(size_t i) const {
    return static_cast<uint32_t>(
        mod_(XxHash64Key8WithRound0(round0_, seed_accs_[i])));
  }

 private:
  uint64_t round0_;
  const uint64_t* seed_accs_;
  const FastMod& mod_;
};

}  // namespace ldpr

#endif  // LDPR_UTIL_HASH_FAMILY_H_
