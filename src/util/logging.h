// Lightweight CHECK macros for internal invariants.
//
// These guard programmer contracts (never user input — user input goes
// through Status).  On violation they print the failing condition with
// file/line context and abort.

#ifndef LDPR_UTIL_LOGGING_H_
#define LDPR_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace ldpr {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition) {
  std::fprintf(stderr, "LDPR_CHECK failed at %s:%d: %s\n", file, line,
               condition);
  std::abort();
}

}  // namespace internal
}  // namespace ldpr

/// Aborts if `condition` is false.  Always enabled (not only in debug
/// builds): invariant violations in statistical code silently corrupt
/// results otherwise.
#define LDPR_CHECK(condition)                                      \
  do {                                                             \
    if (!(condition)) {                                            \
      ::ldpr::internal::CheckFailed(__FILE__, __LINE__, #condition); \
    }                                                              \
  } while (0)

#define LDPR_CHECK_OK(status_expr)                                    \
  do {                                                                \
    const auto& ldpr_check_status_ = (status_expr);                   \
    if (!ldpr_check_status_.ok()) {                                   \
      std::fprintf(stderr, "LDPR_CHECK_OK failed at %s:%d: %s\n",     \
                   __FILE__, __LINE__,                                \
                   ldpr_check_status_.ToString().c_str());            \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

#endif  // LDPR_UTIL_LOGGING_H_
