// Paper-style result-table rendering for the benchmark harness.
//
// The scenario layer's ConsoleSink (runner/result_sink.h) renders
// every ldpr_bench table through TablePrinter so that the console
// output mirrors the rows/series the paper reports (method x setting
// -> metric).

#ifndef LDPR_UTIL_TABLE_H_
#define LDPR_UTIL_TABLE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace ldpr {

/// Accumulates rows of (label, values...) and renders them with
/// aligned columns and scientific notation, the way the paper's tables
/// and figure series read.
class TablePrinter {
 public:
  /// `title` is printed as a banner; `columns` are the value headers
  /// (the first implicit column holds row labels).
  TablePrinter(std::string title, std::vector<std::string> columns);

  /// Adds one row.  values.size() must equal the number of columns.
  void AddRow(const std::string& label, const std::vector<double>& values);

  /// Adds a separator line between logical row groups.
  void AddSeparator();

  /// Renders the table to a string.
  std::string ToString() const;

  /// Renders to stdout.
  void Print() const;

 private:
  struct Row {
    bool separator = false;
    std::string label;
    std::vector<double> values;
  };

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

/// Formats a double in compact scientific notation (e.g. "5.89e-04"),
/// matching the precision the paper uses in Table I.
std::string FormatScientific(double value);

}  // namespace ldpr

#endif  // LDPR_UTIL_TABLE_H_
