#include "util/json_writer.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace ldpr {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  LDPR_CHECK(result.ec == std::errc());
  return std::string(buf, result.ptr);
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;  // the key already positioned us
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_.push_back(',');
    need_comma_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  need_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  LDPR_CHECK(!need_comma_.empty() && !after_key_);
  need_comma_.pop_back();
  out_.push_back('}');
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  need_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  LDPR_CHECK(!need_comma_.empty() && !after_key_);
  need_comma_.pop_back();
  out_.push_back(']');
}

void JsonWriter::Key(const std::string& key) {
  LDPR_CHECK(!need_comma_.empty() && !after_key_);
  if (need_comma_.back()) out_.push_back(',');
  need_comma_.back() = true;
  out_.push_back('"');
  out_ += JsonEscape(key);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_.push_back('"');
  out_ += JsonEscape(value);
  out_.push_back('"');
}

void JsonWriter::Number(double value) {
  BeforeValue();
  out_ += JsonNumber(value);
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

}  // namespace ldpr
