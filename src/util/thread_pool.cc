#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <utility>

#include "util/logging.h"

namespace ldpr {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    LDPR_CHECK(!stop_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;

  // Dynamic scheduling: each runner task pulls the next index off a
  // shared counter, so uneven per-index cost balances automatically.
  // Wait() below guarantees every runner finishes before this frame
  // unwinds, so the shared state lives on the stack.
  std::atomic<size_t> next{begin};
  std::exception_ptr error;
  std::mutex error_mu;

  const size_t runners = n < num_threads() ? n : num_threads();
  for (size_t r = 0; r < runners; ++r) {
    Submit([&next, &error, &error_mu, end, &fn] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= end) return;
        try {
          fn(i);
        } catch (...) {
          std::unique_lock<std::mutex> lock(error_mu);
          if (!error) error = std::current_exception();
        }
      }
    });
  }
  Wait();
  if (error) std::rethrow_exception(error);
}

size_t DefaultThreadCount() {
  const char* env = std::getenv("LDPR_THREADS");
  if (env != nullptr) {
    const long v = std::atol(env);
    return v < 1 ? 1 : static_cast<size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw < 1 ? 1 : static_cast<size_t>(hw);
}

void ParallelFor(size_t num_threads, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (num_threads == 0) num_threads = DefaultThreadCount();
  if (num_threads <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(num_threads < n ? num_threads : n);
  pool.ParallelFor(0, n, fn);
}

}  // namespace ldpr
