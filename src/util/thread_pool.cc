#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <utility>

#include "util/logging.h"

namespace ldpr {

namespace {
// The pool whose WorkerLoop owns this thread (null on non-worker
// threads).  Lets the free ParallelFor recognize nested calls (which
// must not re-enter the pool they run on — see the header) and lets
// Wait() trap same-pool re-entry, the one call shape that deadlocks.
thread_local const ThreadPool* t_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    LDPR_CHECK(!stop_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  // Waiting on the pool from inside one of its own tasks deadlocks:
  // in_flight_ includes the calling task, so it can never reach 0.
  LDPR_CHECK(t_worker_pool != this);
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  t_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn,
                             size_t max_runners) {
  if (begin >= end) return;
  const size_t n = end - begin;

  // Dynamic scheduling: each runner task pulls the next index off a
  // shared counter, so uneven per-index cost balances automatically.
  // Wait() below guarantees every runner finishes before this frame
  // unwinds, so the shared state lives on the stack.
  std::atomic<size_t> next{begin};
  std::exception_ptr error;
  std::mutex error_mu;

  size_t runners = n < num_threads() ? n : num_threads();
  if (max_runners != 0 && max_runners < runners) runners = max_runners;
  for (size_t r = 0; r < runners; ++r) {
    Submit([&next, &error, &error_mu, end, &fn] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= end) return;
        try {
          fn(i);
        } catch (...) {
          std::unique_lock<std::mutex> lock(error_mu);
          if (!error) error = std::current_exception();
        }
      }
    });
  }
  Wait();
  if (error) std::rethrow_exception(error);
}

size_t DefaultThreadCount() {
  const char* env = std::getenv("LDPR_THREADS");
  if (env != nullptr) {
    const long v = std::atol(env);
    return v < 1 ? 1 : static_cast<size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw < 1 ? 1 : static_cast<size_t>(hw);
}

ThreadBudget SplitThreadBudget(size_t num_threads, size_t n) {
  if (num_threads == 0) num_threads = DefaultThreadCount();
  ThreadBudget budget;
  budget.outer = n < 1 ? 1 : (num_threads < n ? num_threads : n);
  budget.inner = num_threads / budget.outer;
  if (budget.inner < 1) budget.inner = 1;
  return budget;
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool pool(DefaultThreadCount());
  return pool;
}

bool InThreadPoolWorker() { return t_worker_pool != nullptr; }

void ParallelFor(size_t num_threads, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (num_threads == 0) num_threads = DefaultThreadCount();
  if (num_threads <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (!InThreadPoolWorker()) {
    ThreadPool& pool = GlobalThreadPool();
    // The shared pool serves any request it can cover; oversized
    // requests (more workers than LDPR_THREADS / the hardware has)
    // keep the old transient-pool semantics below.
    if (num_threads <= pool.num_threads()) {
      pool.ParallelFor(0, n, fn, /*max_runners=*/num_threads);
      return;
    }
  }
  // Nested inside a pool task, or wider than the global pool: a
  // transient pool sized by the caller's (budgeted) request.
  ThreadPool pool(num_threads < n ? num_threads : n);
  pool.ParallelFor(0, n, fn);
}

}  // namespace ldpr
