#include "util/flags.h"

#include <cstdlib>

namespace ldpr {

FlagParser::FlagParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" when the next token is not a flag; else boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[i + 1];
      ++i;
    } else {
      flags_[body] = "";
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  queried_[name] = true;
  return flags_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

StatusOr<double> FlagParser::GetDouble(const std::string& name,
                                       double fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return InvalidArgumentError("flag --" + name +
                                " expects a number, got: " + it->second);
  }
  return v;
}

StatusOr<int64_t> FlagParser::GetInt(const std::string& name,
                                     int64_t fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return InvalidArgumentError("flag --" + name +
                                " expects an integer, got: " + it->second);
  }
  return static_cast<int64_t>(v);
}

bool FlagParser::GetBool(const std::string& name, bool fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second.empty() || it->second == "true" || it->second == "1";
}

std::vector<std::string> FlagParser::unused_flags() const {
  std::vector<std::string> unused;
  for (const auto& [name, value] : flags_) {
    (void)value;
    if (queried_.count(name) == 0) unused.push_back(name);
  }
  return unused;
}

}  // namespace ldpr
