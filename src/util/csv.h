// Tiny CSV reader/writer.  The reader backs dataset loading; the
// writer is a low-level building block (result emission goes through
// runner/result_sink.h, which layers scenario/table context and
// partial-write detection on top of the same quoting rules).

#ifndef LDPR_UTIL_CSV_H_
#define LDPR_UTIL_CSV_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.h"

namespace ldpr {

/// Parses one CSV line into fields.  Supports double-quoted fields with
/// embedded commas and doubled quotes; does not support embedded
/// newlines (the datasets this library reads have none).
std::vector<std::string> SplitCsvLine(const std::string& line);

/// Reads the whole file into rows of fields.  Empty lines are skipped.
StatusOr<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

/// Quotes a field for CSV output when it contains commas, quotes, or
/// newlines (doubling embedded quotes); returns it verbatim otherwise.
std::string QuoteCsvField(const std::string& field);

/// Incremental CSV writer with partial-write detection (the backing
/// store of runner/result_sink.h's CsvSink).
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates).  Check ok() before use.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// True while the file is open and every write has succeeded.
  bool ok() const { return file_ != nullptr && !write_error_; }

  /// True iff the constructor managed to open the file — lets callers
  /// distinguish "never opened" from "write cut short" when Close()
  /// fails.
  bool opened() const { return opened_; }

  /// Writes a row, quoting fields that contain commas or quotes.
  /// Short writes latch a failure reported by ok()/Close().
  void WriteRow(const std::vector<std::string>& fields);

  /// Convenience: writes label followed by numeric values.
  void WriteNumericRow(const std::string& label,
                       const std::vector<double>& values);

  /// Flushes and closes; false if the file never opened, any write
  /// was partial, or the flush/close failed.  Idempotent (later
  /// calls return the first result); the destructor closes without
  /// reporting.
  bool Close();

 private:
  std::FILE* file_;
  bool opened_;
  bool write_error_ = false;
  bool closed_ = false;
  bool close_result_ = false;
};

}  // namespace ldpr

#endif  // LDPR_UTIL_CSV_H_
