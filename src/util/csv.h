// Tiny CSV reader/writer used by dataset loading and by the benchmark
// harness to dump per-figure series for external plotting.

#ifndef LDPR_UTIL_CSV_H_
#define LDPR_UTIL_CSV_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.h"

namespace ldpr {

/// Parses one CSV line into fields.  Supports double-quoted fields with
/// embedded commas and doubled quotes; does not support embedded
/// newlines (the datasets this library reads have none).
std::vector<std::string> SplitCsvLine(const std::string& line);

/// Reads the whole file into rows of fields.  Empty lines are skipped.
StatusOr<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

/// Incremental CSV writer.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates).  Check ok() before use.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  bool ok() const { return file_ != nullptr; }

  /// Writes a row, quoting fields that contain commas or quotes.
  void WriteRow(const std::vector<std::string>& fields);

  /// Convenience: writes label followed by numeric values.
  void WriteNumericRow(const std::string& label,
                       const std::vector<double>& values);

 private:
  std::FILE* file_;
};

}  // namespace ldpr

#endif  // LDPR_UTIL_CSV_H_
