// Self-contained xxHash64 implementation.
//
// The OLH protocol requires a family of hash functions whose outputs
// are uniform over {0, ..., g-1} and pairwise independent-looking
// across seeds.  The original paper (and Wang et al.'s reference
// implementation) use xxhash; we reimplement xxHash64 from the public
// specification so that the library has no external dependencies.
// The implementation is validated against the reference test vectors
// in tests/xxhash_test.cc.

#ifndef LDPR_UTIL_XXHASH_H_
#define LDPR_UTIL_XXHASH_H_

#include <cstddef>
#include <cstdint>

namespace ldpr {

/// Computes the 64-bit xxHash of `len` bytes starting at `data`,
/// using `seed`.  Bit-compatible with the canonical XXH64.
uint64_t XxHash64(const void* data, size_t len, uint64_t seed);

/// Convenience overload hashing a 64-bit integer key (little-endian
/// byte order, matching XXH64 of the 8 raw bytes).
uint64_t XxHash64(uint64_t key, uint64_t seed);

}  // namespace ldpr

#endif  // LDPR_UTIL_XXHASH_H_
