// Self-contained xxHash64 implementation.
//
// The OLH protocol requires a family of hash functions whose outputs
// are uniform over {0, ..., g-1} and pairwise independent-looking
// across seeds.  The original paper (and Wang et al.'s reference
// implementation) use xxhash; we reimplement xxHash64 from the public
// specification so that the library has no external dependencies.
// The implementation is validated against the reference test vectors
// in tests/xxhash_test.cc.
//
// Besides the general byte-stream entry point this header exposes the
// specialized 8-byte-key path inline (XxHash64Key8 and its
// Round0/finish split).  OLH evaluates the hash of the *same* item
// against thousands of report seeds per batch; splitting the
// computation lets the item-only half (one multiply + rotate) hoist
// out of the per-seed loop, and inlining removes the per-evaluation
// call that dominates the out-of-line path.  The split is an exact
// algebraic refactoring of the spec's len==8 case, so the result is
// bit-identical to XxHash64(key, seed) (locked in by
// tests/report_gen_batch_test.cc).

#ifndef LDPR_UTIL_XXHASH_H_
#define LDPR_UTIL_XXHASH_H_

#include <cstddef>
#include <cstdint>

namespace ldpr {

namespace xxhash_detail {

inline constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
inline constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
inline constexpr uint64_t kPrime3 = 0x165667B19E3779F9ULL;
inline constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
inline constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline uint64_t Rotl64(uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline uint64_t Avalanche(uint64_t h) {
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace xxhash_detail

/// Computes the 64-bit xxHash of `len` bytes starting at `data`,
/// using `seed`.  Bit-compatible with the canonical XXH64.
uint64_t XxHash64(const void* data, size_t len, uint64_t seed);

/// The seed-independent half of the 8-byte-key path: the spec's
/// Round(0, key).  Precompute once per item, then finish against any
/// number of seeds with XxHash64Key8WithRound0.
inline uint64_t XxHash64Round0(uint64_t key) {
  using namespace xxhash_detail;
  return Rotl64(key * kPrime2, 31) * kPrime1;
}

/// The seed-dependent half: `seed_acc` must be seed + kPrime5 + 8
/// (see XxHash64SeedAcc), `round0` the item's XxHash64Round0.
inline uint64_t XxHash64Key8WithRound0(uint64_t round0, uint64_t seed_acc) {
  using namespace xxhash_detail;
  uint64_t h = seed_acc ^ round0;
  h = Rotl64(h, 27) * kPrime1 + kPrime4;
  return Avalanche(h);
}

/// The per-seed accumulator the len==8 path starts from.
inline uint64_t XxHash64SeedAcc(uint64_t seed) {
  return seed + xxhash_detail::kPrime5 + 8;
}

/// Inline specialization of XxHash64 for an 8-byte little-endian key;
/// bit-identical to XxHash64(&key, 8, seed).
inline uint64_t XxHash64Key8(uint64_t key, uint64_t seed) {
  return XxHash64Key8WithRound0(XxHash64Round0(key), XxHash64SeedAcc(seed));
}

/// Convenience overload hashing a 64-bit integer key (little-endian
/// byte order, matching XXH64 of the 8 raw bytes).
uint64_t XxHash64(uint64_t key, uint64_t seed);

}  // namespace ldpr

#endif  // LDPR_UTIL_XXHASH_H_
