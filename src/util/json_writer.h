// Minimal streaming JSON emitter used by the machine-readable result
// sinks (JSONL rows, run manifests).  No parsing, no DOM — just a
// correct, deterministic serializer: keys/values are written in call
// order, doubles render via the shortest round-trip representation,
// so identical inputs always produce identical bytes (the property
// the scenario determinism tests diff).

#ifndef LDPR_UTIL_JSON_WRITER_H_
#define LDPR_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ldpr {

/// Escapes a string for use inside a JSON string literal (quotes not
/// included).
std::string JsonEscape(const std::string& s);

/// Shortest decimal representation that round-trips to the same
/// double (std::to_chars).  NaN/Inf — which JSON cannot represent —
/// render as "null".
std::string JsonNumber(double value);

/// Incremental JSON value builder.  Usage:
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("scenario"); w.String("fig3");
///   w.Key("values"); w.BeginArray(); w.Number(0.5); w.EndArray();
///   w.EndObject();
///   out = w.str();
///
/// Commas and colons are inserted automatically; the caller owns
/// well-formedness (every Key followed by exactly one value, matched
/// Begin/End pairs — violations abort via LDPR_CHECK).
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits an object key; must be inside an object and followed by a
  /// value (or a Begin*).
  void Key(const std::string& key);

  void String(const std::string& value);
  void Number(double value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  void Bool(bool value);
  void Null();

  /// The serialized value so far.
  const std::string& str() const { return out_; }

 private:
  // Called before any value/key token: writes the pending comma.
  void BeforeValue();

  std::string out_;
  // One entry per open container: whether the next element needs a
  // leading comma.
  std::vector<bool> need_comma_;
  bool after_key_ = false;
};

}  // namespace ldpr

#endif  // LDPR_UTIL_JSON_WRITER_H_
