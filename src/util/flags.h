// Minimal command-line flag parsing for the tools/ binaries.
//
// Supports --name=value and --name value forms plus boolean
// --name.  No registration; callers query by name with a default.
// Unknown-flag detection is the caller's job via unused_flags().

#ifndef LDPR_UTIL_FLAGS_H_
#define LDPR_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace ldpr {

class FlagParser {
 public:
  /// Parses argv (argv[0] is skipped).  Arguments not starting with
  /// "--" are collected as positional.
  FlagParser(int argc, const char* const* argv);

  /// String flag, or `fallback` when absent.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;

  /// Double flag; returns an error when present but unparsable.
  StatusOr<double> GetDouble(const std::string& name, double fallback) const;

  /// Integer flag; returns an error when present but unparsable.
  StatusOr<int64_t> GetInt(const std::string& name, int64_t fallback) const;

  /// Boolean flag: present without value (or "true"/"1") => true.
  bool GetBool(const std::string& name, bool fallback) const;

  /// True iff the flag appeared on the command line.
  bool Has(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were parsed but never queried — typo detection.
  std::vector<std::string> unused_flags() const;

 private:
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace ldpr

#endif  // LDPR_UTIL_FLAGS_H_
