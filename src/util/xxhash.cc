#include "util/xxhash.h"

#include <cstring>

namespace ldpr {

namespace {

using xxhash_detail::kPrime1;
using xxhash_detail::kPrime2;
using xxhash_detail::kPrime3;
using xxhash_detail::kPrime4;
using xxhash_detail::kPrime5;
using xxhash_detail::Avalanche;
using xxhash_detail::Rotl64;

inline uint64_t Read64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // assumes little-endian host (x86-64 / aarch64-le)
}

inline uint32_t Read32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl64(acc, 31);
  acc *= kPrime1;
  return acc;
}

inline uint64_t MergeRound(uint64_t acc, uint64_t val) {
  val = Round(0, val);
  acc ^= val;
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

}  // namespace

uint64_t XxHash64(const void* data, size_t len, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint8_t* const end = p + len;
  uint64_t h;

  if (len >= 32) {
    const uint8_t* const limit = end - 32;
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed + 0;
    uint64_t v4 = seed - kPrime1;
    do {
      v1 = Round(v1, Read64(p));
      p += 8;
      v2 = Round(v2, Read64(p));
      p += 8;
      v3 = Round(v3, Read64(p));
      p += 8;
      v4 = Round(v4, Read64(p));
      p += 8;
    } while (p <= limit);

    h = Rotl64(v1, 1) + Rotl64(v2, 7) + Rotl64(v3, 12) + Rotl64(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<uint64_t>(len);

  while (p + 8 <= end) {
    h ^= Round(0, Read64(p));
    h = Rotl64(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(Read32(p)) * kPrime1;
    h = Rotl64(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(*p) * kPrime5;
    h = Rotl64(h, 11) * kPrime1;
    ++p;
  }

  return Avalanche(h);
}

uint64_t XxHash64(uint64_t key, uint64_t seed) {
  return XxHash64(&key, sizeof(key), seed);
}

}  // namespace ldpr
