// Evaluation metrics used by the paper's experiments (Section VI-B)
// plus a few standard distributional distances used in tests.

#ifndef LDPR_UTIL_METRICS_H_
#define LDPR_UTIL_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ldpr {

/// Mean squared error between two frequency vectors (Eq. 36):
/// (1/d) * sum_v (a_v - b_v)^2.  Sizes must match and be non-empty.
double Mse(const std::vector<double>& a, const std::vector<double>& b);

/// Mean absolute error between two frequency vectors.
double Mae(const std::vector<double>& a, const std::vector<double>& b);

/// L1 distance: sum_v |a_v - b_v|.
double L1Distance(const std::vector<double>& a, const std::vector<double>& b);

/// L2 (Euclidean) distance.
double L2Distance(const std::vector<double>& a, const std::vector<double>& b);

/// L-infinity distance: max_v |a_v - b_v|.
double LInfDistance(const std::vector<double>& a,
                    const std::vector<double>& b);

/// Frequency gain of a targeted attack (Eq. 37):
/// FG = sum_{t in targets} (after[t] - genuine[t]).
///
/// Note the paper writes FG = sum (f~_X(t) - f~*_Z(t)) and reports
/// positive gains for successful attacks; we use (after - genuine) so
/// that a positive FG always means "the attack inflated the targets",
/// matching the plotted quantity in Figure 4.
double FrequencyGain(const std::vector<double>& genuine,
                     const std::vector<double>& after,
                     const std::vector<uint32_t>& targets);

/// Total variation distance between two probability vectors.
double TotalVariation(const std::vector<double>& a,
                      const std::vector<double>& b);

/// KL divergence KL(a || b) with additive smoothing `eps` applied to
/// both arguments (the LDP estimates can contain zeros/negatives).
double KlDivergence(const std::vector<double>& a, const std::vector<double>& b,
                    double eps = 1e-12);

/// Streaming accumulator for mean/variance across trials (Welford).
class RunningStat {
 public:
  void Add(double x);
  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace ldpr

#endif  // LDPR_UTIL_METRICS_H_
