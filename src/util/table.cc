#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace ldpr {

std::string FormatScientific(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3e", value);
  return buf;
}

TablePrinter::TablePrinter(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values) {
  LDPR_CHECK(values.size() == columns_.size());
  rows_.push_back(Row{false, label, values});
}

void TablePrinter::AddSeparator() { rows_.push_back(Row{true, "", {}}); }

std::string TablePrinter::ToString() const {
  size_t label_width = 8;
  for (const Row& row : rows_)
    label_width = std::max(label_width, row.label.size());
  size_t col_width = 11;
  for (const std::string& c : columns_)
    col_width = std::max(col_width, c.size());

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  // Header.
  out << std::string(label_width, ' ');
  for (const std::string& c : columns_) {
    out << "  ";
    out << std::string(col_width - c.size(), ' ') << c;
  }
  out << "\n";
  const size_t total_width = label_width + columns_.size() * (col_width + 2);
  out << std::string(total_width, '-') << "\n";
  for (const Row& row : rows_) {
    if (row.separator) {
      out << std::string(total_width, '-') << "\n";
      continue;
    }
    out << row.label << std::string(label_width - row.label.size(), ' ');
    for (double v : row.values) {
      const std::string s = FormatScientific(v);
      out << "  " << std::string(col_width - s.size(), ' ') << s;
    }
    out << "\n";
  }
  return out.str();
}

void TablePrinter::Print() const {
  const std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fputc('\n', stdout);
}

}  // namespace ldpr
