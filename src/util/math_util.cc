#include "util/math_util.h"

#include <cmath>

#include "util/logging.h"

namespace ldpr {

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014326779399461;
constexpr double kInvSqrt2 = 0.7071067811865475244008444;
}  // namespace

double NormalPdf(double x) { return kInvSqrt2Pi * std::exp(-0.5 * x * x); }

double NormalPdf(double x, double mean, double stddev) {
  LDPR_CHECK(stddev > 0.0);
  const double z = (x - mean) / stddev;
  return NormalPdf(z) / stddev;
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x * kInvSqrt2); }

double NormalCdf(double x, double mean, double stddev) {
  LDPR_CHECK(stddev > 0.0);
  return NormalCdf((x - mean) / stddev);
}

double Sum(const std::vector<double>& v) {
  double total = 0.0;
  for (double x : v) total += x;
  return total;
}

std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b) {
  LDPR_CHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<double> Subtract(const std::vector<double>& a,
                             const std::vector<double>& b) {
  LDPR_CHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<double> Scale(const std::vector<double>& v, double c) {
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = c * v[i];
  return out;
}

std::vector<double> Normalize(const std::vector<double>& v) {
  const double total = Sum(v);
  LDPR_CHECK(total > 0.0);
  return Scale(v, 1.0 / total);
}

bool IsProbabilityVector(const std::vector<double>& v, double tolerance) {
  double total = 0.0;
  for (double x : v) {
    if (!std::isfinite(x) || x < -tolerance) return false;
    total += x;
  }
  return std::fabs(total - 1.0) <= tolerance * static_cast<double>(v.size());
}

double Clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

}  // namespace ldpr
