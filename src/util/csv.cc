#include "util/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ldpr {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // Tolerate CRLF files.
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

StatusOr<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open CSV file: " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    rows.push_back(SplitCsvLine(line));
  }
  return rows;
}

std::string QuoteCsvField(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

CsvWriter::CsvWriter(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")), opened_(file_ != nullptr) {}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (file_ == nullptr) return;
  std::string line;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line.push_back(',');
    line += QuoteCsvField(fields[i]);
  }
  line.push_back('\n');
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size())
    write_error_ = true;
}

bool CsvWriter::Close() {
  if (closed_) return close_result_;
  closed_ = true;
  if (file_ == nullptr) {
    close_result_ = false;
    return false;
  }
  const bool flushed = std::fflush(file_) == 0 && std::ferror(file_) == 0;
  const bool closed_ok = std::fclose(file_) == 0;
  file_ = nullptr;
  close_result_ = !write_error_ && flushed && closed_ok;
  return close_result_;
}

void CsvWriter::WriteNumericRow(const std::string& label,
                                const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size() + 1);
  fields.push_back(label);
  for (double v : values) {
    std::ostringstream ss;
    ss << v;
    fields.push_back(ss.str());
  }
  WriteRow(fields);
}

}  // namespace ldpr
