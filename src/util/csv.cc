#include "util/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ldpr {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // Tolerate CRLF files.
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

StatusOr<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open CSV file: " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    rows.push_back(SplitCsvLine(line));
  }
  return rows;
}

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (file_ == nullptr) return;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) std::fputc(',', file_);
    const std::string quoted = QuoteField(fields[i]);
    std::fwrite(quoted.data(), 1, quoted.size(), file_);
  }
  std::fputc('\n', file_);
}

void CsvWriter::WriteNumericRow(const std::string& label,
                                const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size() + 1);
  fields.push_back(label);
  for (double v : values) {
    std::ostringstream ss;
    ss << v;
    fields.push_back(ss.str());
  }
  WriteRow(fields);
}

}  // namespace ldpr
