#include "util/simd.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "util/hash_family.h"
#include "util/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#define LDPR_SIMD_X86 1
#include <immintrin.h>
#endif

#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#define LDPR_SIMD_NEON 1
#include <arm_neon.h>
#endif

// The LDPR_SIMD CMake option narrows what DetectBackend may pick:
// LDPR_SIMD_MODE 0=off 1=auto 2=avx2 3=sse2 4=neon.  Pinning an
// unavailable backend degrades to scalar (the manifest's `simd` field
// records what actually ran).
#ifndef LDPR_SIMD_MODE
#define LDPR_SIMD_MODE 1
#endif

namespace ldpr {

namespace {

bool ForceScalarEnv() {
  const char* env = std::getenv("LDPR_FORCE_SCALAR");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

bool Avx2Available() {
#if defined(LDPR_SIMD_X86)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool Sse2Available() {
#if defined(__x86_64__)
  return true;  // baseline of the x86-64 ABI
#elif defined(__i386__)
  return __builtin_cpu_supports("sse2");
#else
  return false;
#endif
}

bool NeonAvailable() {
#if defined(LDPR_SIMD_NEON)
  return true;
#else
  return false;
#endif
}

SimdBackend DetectBackend() {
  if (LDPR_SIMD_MODE == 0 || ForceScalarEnv()) return SimdBackend::kScalar;
  if (LDPR_SIMD_MODE == 2)
    return Avx2Available() ? SimdBackend::kAvx2 : SimdBackend::kScalar;
  if (LDPR_SIMD_MODE == 3)
    return Sse2Available() ? SimdBackend::kSse2 : SimdBackend::kScalar;
  if (LDPR_SIMD_MODE == 4)
    return NeonAvailable() ? SimdBackend::kNeon : SimdBackend::kScalar;
  if (Avx2Available()) return SimdBackend::kAvx2;
  if (Sse2Available()) return SimdBackend::kSse2;
  if (NeonAvailable()) return SimdBackend::kNeon;
  return SimdBackend::kScalar;
}

// -1 = no override; else the pinned SimdBackend.
std::atomic<int> g_backend_override{-1};

}  // namespace

const char* SimdBackendName(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kScalar:
      return "scalar";
    case SimdBackend::kSse2:
      return "sse2";
    case SimdBackend::kAvx2:
      return "avx2";
    case SimdBackend::kNeon:
      return "neon";
  }
  return "unknown";
}

SimdBackend ActiveSimdBackend() {
  static const SimdBackend detected = DetectBackend();
  const int override_value = g_backend_override.load(std::memory_order_relaxed);
  return override_value < 0 ? detected
                            : static_cast<SimdBackend>(override_value);
}

const char* ActiveSimdBackendName() {
  return SimdBackendName(ActiveSimdBackend());
}

void SetSimdBackendForTest(SimdBackend backend) {
  g_backend_override.store(static_cast<int>(backend),
                           std::memory_order_relaxed);
}

void ClearSimdBackendForTest() {
  g_backend_override.store(-1, std::memory_order_relaxed);
}

// ==================================================================
// Unary column sums.
//
// The accelerated paths accumulate nonzero indicators in 8-bit lanes
// (32 columns per AVX2 add, 16 per SSE2/NEON) and widen into the
// 32-bit accumulator every kByteLaneRows rows — before a lane can
// overflow.  min(row[v], 1) turns any nonzero byte into exactly 1,
// matching the scalar `row[v] != 0` indicator bit for bit.

namespace {

constexpr size_t kByteLaneRows = 255;

template <typename RowAt>
void UnaryColumnsScalar(RowAt row_at, size_t n, size_t d, uint32_t* acc) {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* row = row_at(i);
    for (size_t v = 0; v < d; ++v) acc[v] += (row[v] != 0);
  }
}

#if defined(LDPR_SIMD_X86)

template <typename RowAt>
void UnaryColumnsSse2(RowAt row_at, size_t n, size_t d, uint32_t* acc) {
  std::vector<uint8_t> acc8(d);
  const __m128i one = _mm_set1_epi8(1);
  for (size_t base = 0; base < n; base += kByteLaneRows) {
    const size_t rows = std::min(n - base, kByteLaneRows);
    std::memset(acc8.data(), 0, d);
    for (size_t i = 0; i < rows; ++i) {
      const uint8_t* row = row_at(base + i);
      size_t v = 0;
      for (; v + 16 <= d; v += 16) {
        const __m128i x = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(row + v));
        __m128i a = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(acc8.data() + v));
        a = _mm_add_epi8(a, _mm_min_epu8(x, one));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(acc8.data() + v), a);
      }
      for (; v < d; ++v) acc8[v] += (row[v] != 0);
    }
    for (size_t v = 0; v < d; ++v) acc[v] += acc8[v];
  }
}

template <typename RowAt>
__attribute__((target("avx2"))) void UnaryColumnsAvx2(RowAt row_at, size_t n,
                                                      size_t d,
                                                      uint32_t* acc) {
  std::vector<uint8_t> acc8(d);
  const __m256i one = _mm256_set1_epi8(1);
  for (size_t base = 0; base < n; base += kByteLaneRows) {
    const size_t rows = std::min(n - base, kByteLaneRows);
    std::memset(acc8.data(), 0, d);
    for (size_t i = 0; i < rows; ++i) {
      const uint8_t* row = row_at(base + i);
      size_t v = 0;
      for (; v + 32 <= d; v += 32) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(row + v));
        __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(acc8.data() + v));
        a = _mm256_add_epi8(a, _mm256_min_epu8(x, one));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc8.data() + v), a);
      }
      for (; v < d; ++v) acc8[v] += (row[v] != 0);
    }
    for (size_t v = 0; v < d; ++v) acc[v] += acc8[v];
  }
}

#endif  // LDPR_SIMD_X86

#if defined(LDPR_SIMD_NEON)

template <typename RowAt>
void UnaryColumnsNeon(RowAt row_at, size_t n, size_t d, uint32_t* acc) {
  std::vector<uint8_t> acc8(d);
  const uint8x16_t one = vdupq_n_u8(1);
  for (size_t base = 0; base < n; base += kByteLaneRows) {
    const size_t rows = std::min(n - base, kByteLaneRows);
    std::memset(acc8.data(), 0, d);
    for (size_t i = 0; i < rows; ++i) {
      const uint8_t* row = row_at(base + i);
      size_t v = 0;
      for (; v + 16 <= d; v += 16) {
        const uint8x16_t x = vld1q_u8(row + v);
        uint8x16_t a = vld1q_u8(acc8.data() + v);
        a = vaddq_u8(a, vminq_u8(x, one));
        vst1q_u8(acc8.data() + v, a);
      }
      for (; v < d; ++v) acc8[v] += (row[v] != 0);
    }
    for (size_t v = 0; v < d; ++v) acc[v] += acc8[v];
  }
}

#endif  // LDPR_SIMD_NEON

template <typename RowAt>
void UnaryColumnsDispatch(RowAt row_at, size_t n, size_t d, uint32_t* acc) {
  switch (ActiveSimdBackend()) {
#if defined(LDPR_SIMD_X86)
    case SimdBackend::kAvx2:
      UnaryColumnsAvx2(row_at, n, d, acc);
      return;
    case SimdBackend::kSse2:
      UnaryColumnsSse2(row_at, n, d, acc);
      return;
#endif
#if defined(LDPR_SIMD_NEON)
    case SimdBackend::kNeon:
      UnaryColumnsNeon(row_at, n, d, acc);
      return;
#endif
    default:
      UnaryColumnsScalar(row_at, n, d, acc);
      return;
  }
}

}  // namespace

void SimdUnaryColumnsAddPacked(const uint8_t* rows, size_t n, size_t d,
                               uint32_t* acc) {
  LDPR_CHECK(n < (uint64_t{1} << 32));
  UnaryColumnsDispatch([rows, d](size_t i) { return rows + i * d; }, n, d,
                       acc);
}

void SimdUnaryColumnsAddRows(const uint8_t* const* rows, size_t n, size_t d,
                             uint32_t* acc) {
  LDPR_CHECK(n < (uint64_t{1} << 32));
  UnaryColumnsDispatch([rows](size_t i) { return rows[i]; }, n, d, acc);
}

// ==================================================================
// GRR value histogram.
//
// A scatter histogram does not vectorize without conflict detection,
// but the MGA report stream concentrates on a handful of targets, so
// the scalar loop stalls on store-to-load forwarding of the same hot
// counter.  The accelerated path interleaves four independent
// 32-bit count banks (one per unrolled lane) and merges them once —
// the same integer total in a different grouping, hence bit-exact.

void SimdValueHistogramAdd(const uint32_t* values, size_t n, size_t d,
                           uint64_t* hist) {
  if (ActiveSimdBackend() == SimdBackend::kScalar) {
    for (size_t i = 0; i < n; ++i) {
      const uint32_t v = values[i];
      LDPR_CHECK(v < d);
      ++hist[v];
    }
    return;
  }
  std::vector<uint32_t> banks(4 * d, 0);
  // Flush banks before any 32-bit counter can wrap.
  constexpr size_t kFlushEvery = size_t{1} << 31;
  for (size_t base = 0; base < n; base += kFlushEvery) {
    const size_t count = std::min(n - base, kFlushEvery);
    const uint32_t* chunk = values + base;
    size_t i = 0;
    for (; i + 4 <= count; i += 4) {
      const uint32_t v0 = chunk[i + 0];
      const uint32_t v1 = chunk[i + 1];
      const uint32_t v2 = chunk[i + 2];
      const uint32_t v3 = chunk[i + 3];
      LDPR_CHECK(v0 < d && v1 < d && v2 < d && v3 < d);
      ++banks[v0];
      ++banks[d + v1];
      ++banks[2 * d + v2];
      ++banks[3 * d + v3];
    }
    for (; i < count; ++i) {
      const uint32_t v = chunk[i];
      LDPR_CHECK(v < d);
      ++banks[v];
    }
    for (size_t v = 0; v < d; ++v) {
      const uint64_t total = uint64_t{banks[v]} + banks[d + v] +
                             banks[2 * d + v] + banks[3 * d + v];
      if (total != 0) hist[v] += total;
    }
    if (base + kFlushEvery < n) std::fill(banks.begin(), banks.end(), 0u);
  }
}

// ==================================================================
// OLH/BLH batched support counting.
//
// The scalar reference evaluates the canonical SeededHash per
// (report, item) pair — an out-of-line XxHash64 call plus a hardware
// modulo.  The accelerated path is the algebraically identical
// split-hash evaluation of util/hash_family.h: the item-only xxHash
// round hoists out of the per-seed loop, the per-seed finish inlines
// to four multiplies, and FastMod strength-reduces `% g` (a mask for
// the power-of-two g of the default OLH/BLH parameterizations).  The
// four-way unrolled loop keeps those multiply chains pipelined.

namespace {

void OlhSupportScalar(const uint64_t* seeds, const uint32_t* values, size_t n,
                      size_t d, uint32_t g, double* counts) {
  constexpr size_t kReportTile = 256;
  for (size_t i0 = 0; i0 < n; i0 += kReportTile) {
    const size_t i1 = std::min(n, i0 + kReportTile);
    for (size_t v = 0; v < d; ++v) {
      uint32_t supported = 0;
      for (size_t i = i0; i < i1; ++i) {
        supported += (SeededHash(seeds[i], g)(v) == values[i]);
      }
      if (supported != 0) counts[v] += static_cast<double>(supported);
    }
  }
}

void OlhSupportFast(const uint64_t* seeds, const uint32_t* values, size_t n,
                    size_t d, uint32_t g, double* counts) {
  const FastMod mod(g);
  constexpr size_t kReportTile = 256;
  uint64_t seed_accs[kReportTile];
  for (size_t i0 = 0; i0 < n; i0 += kReportTile) {
    const size_t tn = std::min(n - i0, kReportTile);
    const uint32_t* tile_values = values + i0;
    for (size_t i = 0; i < tn; ++i)
      seed_accs[i] = XxHash64SeedAcc(seeds[i0 + i]);
    for (size_t v = 0; v < d; ++v) {
      const SeededHashTileEval eval(v, seed_accs, mod);
      uint32_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
      size_t i = 0;
      for (; i + 4 <= tn; i += 4) {
        s0 += (eval.Eval(i + 0) == tile_values[i + 0]);
        s1 += (eval.Eval(i + 1) == tile_values[i + 1]);
        s2 += (eval.Eval(i + 2) == tile_values[i + 2]);
        s3 += (eval.Eval(i + 3) == tile_values[i + 3]);
      }
      for (; i < tn; ++i) s0 += (eval.Eval(i) == tile_values[i]);
      const uint32_t supported = s0 + s1 + s2 + s3;
      if (supported != 0) counts[v] += static_cast<double>(supported);
    }
  }
}

}  // namespace

void SimdOlhSupportAdd(const uint64_t* seeds, const uint32_t* values,
                       size_t n, size_t d, uint32_t g, double* counts) {
  if (ActiveSimdBackend() == SimdBackend::kScalar) {
    OlhSupportScalar(seeds, values, n, d, g, counts);
  } else {
    OlhSupportFast(seeds, values, n, d, g, counts);
  }
}

}  // namespace ldpr
