// Minimal JSON parser — the read side of util/json_writer.h, used by
// the ldpr_diff result-tree comparator to load manifests and JSONL
// rows.  Recursive-descent over the full JSON grammar; objects keep
// their key order (result rows list metric columns in table order,
// and drift reports should too).
//
// Deliberately small: no streaming, no SAX, inputs are the KB-sized
// files our own sinks write.  Numbers parse as double (the sinks
// never emit integers a double cannot hold exactly).

#ifndef LDPR_UTIL_JSON_READER_H_
#define LDPR_UTIL_JSON_READER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ldpr {

/// One parsed JSON value.  Containers own their children; objects
/// preserve insertion order and expect unique keys (duplicates are a
/// parse error — our writers never produce them).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& string() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& object() const {
    return object_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Typed member accessors with fallbacks, for tolerant manifest
  /// reading (older schema versions simply lack newer fields).
  double NumberOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;

  static JsonValue Null();
  static JsonValue Bool(bool value);
  static JsonValue Number(double value);
  static JsonValue String(std::string value);
  static JsonValue Array(std::vector<JsonValue> values);
  static JsonValue Object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses exactly one JSON document; trailing non-whitespace is an
/// error.  Error messages carry a byte offset.
StatusOr<JsonValue> ParseJson(const std::string& text);

}  // namespace ldpr

#endif  // LDPR_UTIL_JSON_READER_H_
