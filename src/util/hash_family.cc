#include "util/hash_family.h"

// Header-only; this file exists so the target has a translation unit
// and to hold future non-inline members.
