// Small numeric helpers shared by the estimator analysis code:
// normal pdf/cdf, Berry-Esseen style bounds, and vector arithmetic on
// frequency vectors.

#ifndef LDPR_UTIL_MATH_UTIL_H_
#define LDPR_UTIL_MATH_UTIL_H_

#include <cstddef>
#include <vector>

namespace ldpr {

/// Standard normal probability density at x.
double NormalPdf(double x);

/// Normal density with the given mean and standard deviation.
double NormalPdf(double x, double mean, double stddev);

/// Standard normal cumulative distribution at x (via erfc).
double NormalCdf(double x);

/// Normal CDF with the given mean and standard deviation.
double NormalCdf(double x, double mean, double stddev);

/// Sum of a vector's entries.
double Sum(const std::vector<double>& v);

/// Elementwise a + b.  Sizes must match.
std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Elementwise a - b.  Sizes must match.
std::vector<double> Subtract(const std::vector<double>& a,
                             const std::vector<double>& b);

/// Scalar multiple c * v.
std::vector<double> Scale(const std::vector<double>& v, double c);

/// Rescales v so it sums to 1.  Requires a positive sum.
std::vector<double> Normalize(const std::vector<double>& v);

/// True when every entry is finite, non-negative, and the vector sums
/// to 1 within `tolerance` — i.e. v lies on the probability simplex.
bool IsProbabilityVector(const std::vector<double>& v,
                         double tolerance = 1e-9);

/// Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);

}  // namespace ldpr

#endif  // LDPR_UTIL_MATH_UTIL_H_
