#include "util/json_reader.h"

#include <cctype>
#include <cstdlib>

namespace ldpr {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& member : object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_number() ? value->number() : fallback;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_string() ? value->string() : fallback;
}

JsonValue JsonValue::Null() { return JsonValue(); }

JsonValue JsonValue::Bool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::String(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> values) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(values);
  return v;
}

JsonValue JsonValue::Object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> ParseDocument() {
    auto value = ParseValue();
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return InvalidArgumentError("JSON parse error at byte " +
                                std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  StatusOr<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        auto s = ParseString();
        if (!s.ok()) return s.status();
        return JsonValue::String(std::move(*s));
      }
      case 't':
        if (ConsumeLiteral("true")) return JsonValue::Bool(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue::Bool(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue::Null();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  StatusOr<JsonValue> ParseObject() {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue::Object(std::move(members));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return Error("expected object key");
      auto key = ParseString();
      if (!key.ok()) return key.status();
      for (const auto& member : members) {
        if (member.first == *key) return Error("duplicate key '" + *key + "'");
      }
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      auto value = ParseValue();
      if (!value.ok()) return value;
      members.emplace_back(std::move(*key), std::move(*value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue::Object(std::move(members));
      return Error("expected ',' or '}'");
    }
  }

  StatusOr<JsonValue> ParseArray() {
    ++pos_;  // '['
    std::vector<JsonValue> values;
    SkipWhitespace();
    if (Consume(']')) return JsonValue::Array(std::move(values));
    while (true) {
      auto value = ParseValue();
      if (!value.ok()) return value;
      values.push_back(std::move(*value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue::Array(std::move(values));
      return Error("expected ',' or ']'");
    }
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9')
                code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code += static_cast<unsigned>(h - 'A' + 10);
              else
                return Error("invalid \\u escape");
            }
            // UTF-8 encode the code point (no surrogate-pair joining:
            // our writers only escape control characters).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error("invalid escape");
        }
        continue;
      }
      out.push_back(c);
      ++pos_;
    }
    return Error("unterminated string");
  }

  StatusOr<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return Error("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0')
      return Error("invalid number '" + token + "'");
    return JsonValue::Number(value);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).ParseDocument();
}

}  // namespace ldpr
