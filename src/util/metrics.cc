#include "util/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace ldpr {

double Mse(const std::vector<double>& a, const std::vector<double>& b) {
  LDPR_CHECK(!a.empty());
  LDPR_CHECK(a.size() == b.size());
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    total += diff * diff;
  }
  return total / static_cast<double>(a.size());
}

double Mae(const std::vector<double>& a, const std::vector<double>& b) {
  LDPR_CHECK(!a.empty());
  LDPR_CHECK(a.size() == b.size());
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) total += std::fabs(a[i] - b[i]);
  return total / static_cast<double>(a.size());
}

double L1Distance(const std::vector<double>& a, const std::vector<double>& b) {
  LDPR_CHECK(a.size() == b.size());
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) total += std::fabs(a[i] - b[i]);
  return total;
}

double L2Distance(const std::vector<double>& a, const std::vector<double>& b) {
  LDPR_CHECK(a.size() == b.size());
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    total += diff * diff;
  }
  return std::sqrt(total);
}

double LInfDistance(const std::vector<double>& a,
                    const std::vector<double>& b) {
  LDPR_CHECK(a.size() == b.size());
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  return worst;
}

double FrequencyGain(const std::vector<double>& genuine,
                     const std::vector<double>& after,
                     const std::vector<uint32_t>& targets) {
  LDPR_CHECK(genuine.size() == after.size());
  double gain = 0.0;
  for (uint32_t t : targets) {
    LDPR_CHECK(t < genuine.size());
    gain += after[t] - genuine[t];
  }
  return gain;
}

double TotalVariation(const std::vector<double>& a,
                      const std::vector<double>& b) {
  return 0.5 * L1Distance(a, b);
}

double KlDivergence(const std::vector<double>& a, const std::vector<double>& b,
                    double eps) {
  LDPR_CHECK(a.size() == b.size());
  LDPR_CHECK(eps > 0.0);
  // Smooth, clip negatives to 0, renormalize both.
  double za = 0.0, zb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    za += std::max(a[i], 0.0) + eps;
    zb += std::max(b[i], 0.0) + eps;
  }
  double kl = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double pa = (std::max(a[i], 0.0) + eps) / za;
    const double pb = (std::max(b[i], 0.0) + eps) / zb;
    kl += pa * std::log(pa / pb);
  }
  return kl;
}

void RunningStat::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace ldpr
