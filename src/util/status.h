// Minimal Status / StatusOr error-handling vocabulary.
//
// The library does not throw exceptions across its public boundary
// (Google C++ style).  Fallible operations return Status (or
// StatusOr<T> when they produce a value).  Internal invariants use the
// LDPR_CHECK* macros from util/logging.h, which abort on violation.

#ifndef LDPR_UTIL_STATUS_H_
#define LDPR_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace ldpr {

/// Canonical error codes, a small subset of absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kUnimplemented = 6,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: an error code plus a message.
///
/// A default-constructed Status is OK.  Status is cheap to copy and is
/// intended to be returned by value.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "CODE: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Convenience constructors mirroring absl::
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);

/// A value-or-error union.  Accessing value() on an error aborts, so
/// callers must test ok() (or use value_or) first.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value: allows `return v;` in StatusOr functions.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from error status; must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok() && "value() called on errored StatusOr");
    return *value_;
  }
  T& value() & {
    assert(ok() && "value() called on errored StatusOr");
    return *value_;
  }
  T&& value() && {
    assert(ok() && "value() called on errored StatusOr");
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

}  // namespace ldpr

#endif  // LDPR_UTIL_STATUS_H_
