// The merger side of multi-process sharded aggregation: validates a
// set of wire lines against one trial's canonical chunk geometry,
// combines the surviving partials in ascending chunk order, and turns
// the merged support counts into the trial's frequency estimates.
//
// Validation ladder (per line):
//   1. DecodePartialLine — torn frames and flipped payload bits die
//      here (frame scan / checksum); counted as rejected lines.
//   2. Spec equality — a partial from a different run is a hard
//      error, not a rejection: mixing runs silently would be the one
//      unrecoverable corruption.
//   3. Geometry — chunk ranges must lie inside the source's chunk
//      space and carry exactly the unit range the chunk arithmetic
//      implies.
//   4. Duplicates — byte-equal re-deliveries of a (source, range) are
//      dropped (at-least-once delivery is fine); same range with
//      different counts is a hard error.  Partial overlaps are hard
//      errors too.
//
// Gaps after all of that are lost chunks.  Strict mode (the default)
// errors on any loss or rejection; MergeOptions::allow_missing
// tolerates them and reports coverage in the stats — the fault
// scenarios use that to measure estimate error as a function of the
// lost-shard fraction.

#ifndef LDPR_SHARD_MERGE_H_
#define LDPR_SHARD_MERGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "shard/shard_task.h"
#include "shard/wire.h"
#include "util/status.h"

namespace ldpr {

struct MergeOptions {
  /// Tolerate rejected lines and lost chunks, estimating from
  /// whatever coverage survived (fault experiments).  The default is
  /// strict: any loss is an error.
  bool allow_missing = false;
};

/// What the merger saw and kept; every field is deterministic given
/// the input lines.
struct MergeStats {
  size_t lines_total = 0;
  /// Lines DecodePartialLine refused (torn, checksum, bad version).
  size_t lines_rejected = 0;
  /// Records folded into the counts (after duplicate dropping).
  size_t records_used = 0;
  size_t duplicates_dropped = 0;
  uint64_t genuine_chunks_lost = 0;
  uint64_t malicious_chunks_lost = 0;
  /// Units actually covered by merged records; the effective n and m
  /// of the downstream estimate.
  uint64_t users_covered = 0;
  uint64_t reports_covered = 0;
};

struct MergedPartials {
  std::vector<double> genuine_counts;
  std::vector<double> malicious_counts;
  MergeStats stats;
};

/// Merges wire lines against the plan's chunk geometry.  Errors on
/// corruption the options don't allow; zero surviving genuine users
/// is always an error (nothing to estimate from).
StatusOr<MergedPartials> MergeShardPartials(const ShardTaskPlan& plan,
                                            const std::vector<std::string>& lines,
                                            const MergeOptions& options = {});

/// The in-process reference: computes every worker's partials,
/// serializes them through the wire format, and merges strictly —
/// the path `ldpr shard-merge --inprocess` runs and the equivalence
/// tests lock against Aggregator::AddAllSharded.
StatusOr<MergedPartials> RunShardTaskInProcess(const ShardTaskPlan& plan,
                                               uint64_t num_workers);

/// The trial outcome computed from merged counts.  Estimates use the
/// *covered* populations (n_eff, m_eff), so losing shards biases the
/// estimate only through the lost mass, not through a wrong
/// normalizer.
struct ShardOutcome {
  std::vector<double> poisoned_freqs;
  std::vector<double> recovered_freqs;
  double poisoned_mse = 0.0;   // vs the dataset's true frequencies
  double recovered_mse = 0.0;  // after LDPRecover at the spec's eta
  uint64_t n_eff = 0;
  uint64_t m_eff = 0;
  /// xxHash64 of the merged count bytes folded to 32 bits — an exact
  /// byte-identity witness small enough to live in a result column.
  double genuine_digest = 0.0;
  double malicious_digest = 0.0;
};

ShardOutcome ComputeShardOutcome(const ShardTaskPlan& plan,
                                 const Dataset& dataset,
                                 const MergedPartials& merged);

/// Writes `dir`/results.csv, results.jsonl, and manifest.json in the
/// single-scenario-directory layout LoadResultTree accepts, so two
/// merge outputs (multi-process vs --inprocess) compare with
/// `ldpr_diff --exact`.
Status WriteShardResultTree(const std::string& dir, const ShardTaskPlan& plan,
                            const Dataset& dataset,
                            const ShardOutcome& outcome,
                            const MergeStats& stats);

}  // namespace ldpr

#endif  // LDPR_SHARD_MERGE_H_
