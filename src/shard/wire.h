// The shard wire format: one partial support-count vector per line,
// versioned and checksummed, exchanged between `ldpr shard-worker`
// processes and the `ldpr shard-merge` merger over files or pipes.
//
// Line layout (JSONL — one record per '\n'-terminated line):
//
//   {"payload":{...},"crc64":"<16 hex digits>"}
//
// The checksum is xxHash64 over the payload's exact serialized bytes
// (the substring between `{"payload":` and `,"crc64":`), so a decoder
// verifies the very bytes it is about to parse: a torn/truncated
// write fails the frame scan or the JSON parse, and a flipped payload
// bit fails the checksum.  The payload carries the full ShardTaskSpec
// (so a merger can reject partials from a different run), the source
// stream ("genuine" user chunks or "malicious" report chunks), the
// canonical chunk range [chunk_begin, chunk_end) within that source,
// the unit range (users or reports) those chunks cover, and the
// length-d counts vector.
//
// Determinism: counts are integer-valued doubles far below 2^53 and
// serialize via the shortest round-trip representation
// (util/json_writer.h), so encode(decode(line)) == line byte for
// byte and merged sums regroup exactly.  Seeds are full 64-bit values
// (DeriveSeed output), which a JSON double cannot hold — they travel
// as 16-hex-digit strings.
//
// Everything here is pure serialization; chunk semantics live in
// shard_task.h, merging in merge.h, fault injection in fault.h.

#ifndef LDPR_SHARD_WIRE_H_
#define LDPR_SHARD_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ldp/protocol.h"
#include "sim/pipeline.h"
#include "util/status.h"

namespace ldpr {

/// Wire format version; bumped on any incompatible payload change.
/// Decoders reject other versions outright — partials are transient
/// artifacts of one run, never archived across releases.
inline constexpr int kShardWireVersion = 1;

/// Seed of the xxHash64 payload checksum ("LDPR" in ASCII).
inline constexpr uint64_t kShardChecksumSeed = 0x4c445052;

/// Chunk sizes of the shard decomposition.  The defaults match the
/// in-process paths (SampleSupportCountsSharded, AddAllSharded), which
/// is what makes a default-chunking merge byte-identical to them; the
/// fault scenarios shrink the chunks so CI-scale populations still
/// split into enough chunks to lose fractions of.
struct ShardChunking {
  uint64_t users_per_chunk = kUsersPerAggregationShard;
  uint64_t reports_per_chunk = kReportsPerAggregationShard;
};

/// Everything that identifies one shard-aggregated trial.  Workers
/// and the merger each derive their view of the trial from this spec
/// alone (plus the dataset), so two processes with equal specs agree
/// on every chunk boundary and every RNG stream.
struct ShardTaskSpec {
  ProtocolKind protocol = ProtocolKind::kGrr;
  double epsilon = 0.5;
  /// Dataset descriptor: a runner generator name ("ipums", "fire",
  /// "zipf", "uniform") resolvable via ResolveBenchDataset, or
  /// "custom" for in-memory datasets (scenarios) — the CLI rejects
  /// "custom" since it cannot rebuild the data.
  std::string dataset = "zipf";
  /// Pre-scale d/n overrides for the resizable generators; 0 = the
  /// generator's default shape.
  uint64_t d_override = 0;
  uint64_t n_override = 0;
  double scale = 1.0;
  AttackKind attack = AttackKind::kNone;
  double beta = 0.05;
  uint64_t num_targets = 10;
  double eta = 0.2;
  uint64_t seed = 1;
  ShardChunking chunking;
};

/// Field-wise spec equality (the merger's cross-partial consistency
/// check).
bool ShardTaskSpecsEqual(const ShardTaskSpec& a, const ShardTaskSpec& b);

/// The two partial sources a worker can emit.
inline constexpr const char* kShardSourceGenuine = "genuine";
inline constexpr const char* kShardSourceMalicious = "malicious";

/// One wire record: the sum of the canonical chunks
/// [chunk_begin, chunk_end) of `source`, accumulated in ascending
/// chunk order (so merging records in ascending chunk order equals
/// the in-process chunk-order merge).
struct PartialRecord {
  ShardTaskSpec spec;
  std::string source;        // kShardSourceGenuine | kShardSourceMalicious
  uint64_t chunk_begin = 0;  // within the source's chunk space
  uint64_t chunk_end = 0;
  uint64_t unit_begin = 0;   // users (genuine) or reports (malicious)
  uint64_t unit_end = 0;
  std::vector<double> counts;
};

/// Serializes one record as a single '\n'-terminated wire line.
std::string EncodePartialLine(const PartialRecord& record);

/// Parses and verifies one wire line (trailing '\n' optional).
/// Rejects torn frames, checksum mismatches, unknown versions, and
/// structurally invalid payloads with an error naming the cause.
StatusOr<PartialRecord> DecodePartialLine(const std::string& line);

/// Writes records as wire lines to `path` ("-" for stdout), failing
/// on partial writes.
Status WritePartialFile(const std::string& path,
                        const std::vector<PartialRecord>& records);

/// Reads the raw lines of a partial file (no decoding — the merger
/// decides how to treat undecodable lines).
StatusOr<std::vector<std::string>> ReadPartialLines(const std::string& path);

}  // namespace ldpr

#endif  // LDPR_SHARD_WIRE_H_
