#include "shard/wire.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "ldp/factory.h"
#include "util/json_reader.h"
#include "util/json_writer.h"
#include "util/xxhash.h"

namespace ldpr {
namespace {

// The frame around the payload bytes.  The checksum covers exactly
// the substring between them, so encoder and decoder hash the same
// bytes without re-serializing.
constexpr const char kFramePrefix[] = "{\"payload\":";
constexpr const char kFrameInfix[] = ",\"crc64\":\"";
constexpr const char kFrameSuffix[] = "\"}";

std::string ToHex16(uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
  return std::string(buf, 16);
}

StatusOr<uint64_t> FromHex16(const std::string& hex) {
  if (hex.size() != 16)
    return InvalidArgumentError("hex field must be 16 digits: " + hex);
  uint64_t value = 0;
  for (char c : hex) {
    uint64_t digit;
    if (c >= '0' && c <= '9')
      digit = static_cast<uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      digit = static_cast<uint64_t>(c - 'a') + 10;
    else
      return InvalidArgumentError("bad hex digit in field: " + hex);
    value = (value << 4) | digit;
  }
  return value;
}

// Reads a JSON number member that must hold an exact non-negative
// integer (chunk indices, unit counts, overrides).  Everything stored
// this way is far below 2^53, so the double round-trip is exact; the
// one full-64-bit field (the seed) travels as hex instead.
StatusOr<uint64_t> GetUInt(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->is_number())
    return InvalidArgumentError("missing numeric field: " + key);
  const double x = v->number();
  const uint64_t u = static_cast<uint64_t>(x);
  if (x < 0 || static_cast<double>(u) != x)
    return InvalidArgumentError("field not a non-negative integer: " + key);
  return u;
}

StatusOr<double> GetNumber(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->is_number())
    return InvalidArgumentError("missing numeric field: " + key);
  return v->number();
}

StatusOr<std::string> GetString(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->is_string())
    return InvalidArgumentError("missing string field: " + key);
  return v->string();
}

void EncodeSpec(const ShardTaskSpec& spec, JsonWriter& w) {
  w.BeginObject();
  w.Key("protocol");
  w.String(ProtocolKindName(spec.protocol));
  w.Key("epsilon");
  w.Number(spec.epsilon);
  w.Key("dataset");
  w.String(spec.dataset);
  w.Key("d");
  w.UInt(spec.d_override);
  w.Key("n");
  w.UInt(spec.n_override);
  w.Key("scale");
  w.Number(spec.scale);
  w.Key("attack");
  w.String(AttackKindName(spec.attack));
  w.Key("beta");
  w.Number(spec.beta);
  w.Key("targets");
  w.UInt(spec.num_targets);
  w.Key("eta");
  w.Number(spec.eta);
  w.Key("seed");
  w.String(ToHex16(spec.seed));
  w.Key("users_per_chunk");
  w.UInt(spec.chunking.users_per_chunk);
  w.Key("reports_per_chunk");
  w.UInt(spec.chunking.reports_per_chunk);
  w.EndObject();
}

StatusOr<ShardTaskSpec> DecodeSpec(const JsonValue& obj) {
  ShardTaskSpec spec;
  const auto protocol_name = GetString(obj, "protocol");
  if (!protocol_name.ok()) return protocol_name.status();
  const auto protocol = ParseProtocolKind(*protocol_name);
  if (!protocol.ok()) return protocol.status();
  spec.protocol = *protocol;
  const auto epsilon = GetNumber(obj, "epsilon");
  if (!epsilon.ok()) return epsilon.status();
  spec.epsilon = *epsilon;
  const auto dataset = GetString(obj, "dataset");
  if (!dataset.ok()) return dataset.status();
  spec.dataset = *dataset;
  const auto d_override = GetUInt(obj, "d");
  if (!d_override.ok()) return d_override.status();
  spec.d_override = *d_override;
  const auto n_override = GetUInt(obj, "n");
  if (!n_override.ok()) return n_override.status();
  spec.n_override = *n_override;
  const auto scale = GetNumber(obj, "scale");
  if (!scale.ok()) return scale.status();
  spec.scale = *scale;
  const auto attack_name = GetString(obj, "attack");
  if (!attack_name.ok()) return attack_name.status();
  const auto attack = ParseAttackKind(*attack_name);
  if (!attack.ok()) return attack.status();
  spec.attack = *attack;
  const auto beta = GetNumber(obj, "beta");
  if (!beta.ok()) return beta.status();
  spec.beta = *beta;
  const auto targets = GetUInt(obj, "targets");
  if (!targets.ok()) return targets.status();
  spec.num_targets = *targets;
  const auto eta = GetNumber(obj, "eta");
  if (!eta.ok()) return eta.status();
  spec.eta = *eta;
  const auto seed_hex = GetString(obj, "seed");
  if (!seed_hex.ok()) return seed_hex.status();
  const auto seed = FromHex16(*seed_hex);
  if (!seed.ok()) return seed.status();
  spec.seed = *seed;
  const auto users_per_chunk = GetUInt(obj, "users_per_chunk");
  if (!users_per_chunk.ok()) return users_per_chunk.status();
  spec.chunking.users_per_chunk = *users_per_chunk;
  const auto reports_per_chunk = GetUInt(obj, "reports_per_chunk");
  if (!reports_per_chunk.ok()) return reports_per_chunk.status();
  spec.chunking.reports_per_chunk = *reports_per_chunk;
  if (spec.chunking.users_per_chunk == 0 ||
      spec.chunking.reports_per_chunk == 0)
    return InvalidArgumentError("chunk sizes must be positive");
  return spec;
}

}  // namespace

bool ShardTaskSpecsEqual(const ShardTaskSpec& a, const ShardTaskSpec& b) {
  return a.protocol == b.protocol && a.epsilon == b.epsilon &&
         a.dataset == b.dataset && a.d_override == b.d_override &&
         a.n_override == b.n_override && a.scale == b.scale &&
         a.attack == b.attack && a.beta == b.beta &&
         a.num_targets == b.num_targets && a.eta == b.eta &&
         a.seed == b.seed &&
         a.chunking.users_per_chunk == b.chunking.users_per_chunk &&
         a.chunking.reports_per_chunk == b.chunking.reports_per_chunk;
}

std::string EncodePartialLine(const PartialRecord& record) {
  JsonWriter w;
  w.BeginObject();
  w.Key("version");
  w.Int(kShardWireVersion);
  w.Key("spec");
  EncodeSpec(record.spec, w);
  w.Key("source");
  w.String(record.source);
  w.Key("chunk_begin");
  w.UInt(record.chunk_begin);
  w.Key("chunk_end");
  w.UInt(record.chunk_end);
  w.Key("unit_begin");
  w.UInt(record.unit_begin);
  w.Key("unit_end");
  w.UInt(record.unit_end);
  w.Key("counts");
  w.BeginArray();
  for (double c : record.counts) w.Number(c);
  w.EndArray();
  w.EndObject();

  const std::string& payload = w.str();
  const uint64_t crc =
      XxHash64(payload.data(), payload.size(), kShardChecksumSeed);
  std::string line;
  line.reserve(payload.size() + 48);
  line += kFramePrefix;
  line += payload;
  line += kFrameInfix;
  line += ToHex16(crc);
  line += kFrameSuffix;
  line += '\n';
  return line;
}

StatusOr<PartialRecord> DecodePartialLine(const std::string& line) {
  std::string body = line;
  while (!body.empty() && (body.back() == '\n' || body.back() == '\r'))
    body.pop_back();

  // Frame scan: the payload is the substring between the fixed prefix
  // and the final infix/suffix.  A torn line loses the tail and fails
  // here before any hashing or parsing.
  const size_t prefix_len = sizeof(kFramePrefix) - 1;
  const size_t infix_len = sizeof(kFrameInfix) - 1;
  const size_t suffix_len = sizeof(kFrameSuffix) - 1;
  if (body.compare(0, prefix_len, kFramePrefix) != 0)
    return InvalidArgumentError("wire frame: missing payload prefix");
  if (body.size() < suffix_len ||
      body.compare(body.size() - suffix_len, suffix_len, kFrameSuffix) != 0)
    return InvalidArgumentError("wire frame: missing trailer");
  const size_t infix_pos = body.rfind(kFrameInfix);
  if (infix_pos == std::string::npos || infix_pos < prefix_len)
    return InvalidArgumentError("wire frame: missing checksum field");
  const size_t crc_begin = infix_pos + infix_len;
  if (body.size() - suffix_len < crc_begin ||
      body.size() - suffix_len - crc_begin != 16)
    return InvalidArgumentError("wire frame: malformed checksum");

  const auto expected_crc = FromHex16(body.substr(crc_begin, 16));
  if (!expected_crc.ok()) return expected_crc.status();
  const std::string payload = body.substr(prefix_len, infix_pos - prefix_len);
  const uint64_t actual_crc =
      XxHash64(payload.data(), payload.size(), kShardChecksumSeed);
  if (actual_crc != *expected_crc)
    return InvalidArgumentError("wire checksum mismatch");

  const auto root = ParseJson(payload);
  if (!root.ok()) return root.status();
  if (!root->is_object())
    return InvalidArgumentError("wire payload is not an object");
  const auto version = GetUInt(*root, "version");
  if (!version.ok()) return version.status();
  if (*version != static_cast<uint64_t>(kShardWireVersion))
    return InvalidArgumentError("unsupported wire version: " +
                                std::to_string(*version));

  PartialRecord record;
  const JsonValue* spec = root->Find("spec");
  if (spec == nullptr || !spec->is_object())
    return InvalidArgumentError("missing spec object");
  auto decoded_spec = DecodeSpec(*spec);
  if (!decoded_spec.ok()) return decoded_spec.status();
  record.spec = *std::move(decoded_spec);
  auto source = GetString(*root, "source");
  if (!source.ok()) return source.status();
  record.source = *std::move(source);
  if (record.source != kShardSourceGenuine &&
      record.source != kShardSourceMalicious)
    return InvalidArgumentError("unknown partial source: " + record.source);
  const auto chunk_begin = GetUInt(*root, "chunk_begin");
  if (!chunk_begin.ok()) return chunk_begin.status();
  record.chunk_begin = *chunk_begin;
  const auto chunk_end = GetUInt(*root, "chunk_end");
  if (!chunk_end.ok()) return chunk_end.status();
  record.chunk_end = *chunk_end;
  const auto unit_begin = GetUInt(*root, "unit_begin");
  if (!unit_begin.ok()) return unit_begin.status();
  record.unit_begin = *unit_begin;
  const auto unit_end = GetUInt(*root, "unit_end");
  if (!unit_end.ok()) return unit_end.status();
  record.unit_end = *unit_end;
  if (record.chunk_begin > record.chunk_end ||
      record.unit_begin > record.unit_end)
    return InvalidArgumentError("inverted chunk/unit range");

  const JsonValue* counts = root->Find("counts");
  if (counts == nullptr || !counts->is_array())
    return InvalidArgumentError("missing counts array");
  record.counts.reserve(counts->array().size());
  for (const JsonValue& c : counts->array()) {
    if (!c.is_number())
      return InvalidArgumentError("non-numeric count entry");
    record.counts.push_back(c.number());
  }
  return record;
}

Status WritePartialFile(const std::string& path,
                        const std::vector<PartialRecord>& records) {
  std::string out;
  for (const PartialRecord& record : records) out += EncodePartialLine(record);
  if (path == "-") {
    std::cout << out;
    std::cout.flush();
    if (!std::cout) return InternalError("stdout write failed");
    return Status::Ok();
  }
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return NotFoundError("cannot open for write: " + path);
  file << out;
  file.flush();
  if (!file) return InternalError("short write: " + path);
  return Status::Ok();
}

StatusOr<std::vector<std::string>> ReadPartialLines(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return NotFoundError("cannot open partial file: " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(file, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

}  // namespace ldpr
