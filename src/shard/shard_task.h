// The worker side of multi-process sharded aggregation: turns a
// ShardTaskSpec into the canonical chunk decomposition of one
// poisoning trial and computes a worker's partial support counts.
//
// The chunk space is the concatenation of the trial's two streams:
//
//   [0, G)       genuine user chunks (users_per_chunk users each,
//                chunk c perturbs on Rng(DeriveSeed(genuine_seed, c)))
//   [G, G + M)   malicious report chunks (reports_per_chunk crafted
//                reports each)
//
// Worker w of W owns the contiguous range WorkerChunkRange(G+M, w, W)
// and emits at most two PartialRecords — one per source stream it
// touches — with chunk counts accumulated in ascending chunk order.
// Support counts are sums of 1.0's (exact in double far past 2^50),
// so any regrouping of the chunk sums is exact: the merger's output
// is byte-identical to the in-process Aggregator::AddAllSharded /
// SampleSupportCountsSharded paths no matter how chunks were split
// across workers.
//
// RNG discipline mirrors sim/pipeline.cc RunPoisoningTrial exactly:
// the trial Rng(seed) first yields the genuine fan-out seed, then
// drives attack construction and crafting.  Every worker that owns
// malicious chunks replays the full (serial) craft — crafting is a
// stateful sampler and cannot be entered mid-stream — while
// genuine-only workers skip it entirely since the genuine stream is
// keyed off genuine_seed alone.

#ifndef LDPR_SHARD_SHARD_TASK_H_
#define LDPR_SHARD_SHARD_TASK_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "ldp/protocol.h"
#include "ldp/report_batch.h"
#include "shard/wire.h"
#include "util/status.h"

namespace ldpr {

/// Contiguous chunk range [first, second) of worker `worker` out of
/// `num_workers` over `total_chunks` chunks (the canonical
/// even-as-possible partition; empty for workers past the chunk
/// count).
std::pair<uint64_t, uint64_t> WorkerChunkRange(uint64_t total_chunks,
                                               uint64_t worker,
                                               uint64_t num_workers);

/// One trial's resolved shard decomposition: the protocol instance,
/// the dataset histogram, the chunk geometry of both streams, and —
/// when the spec carries an attack — the fully crafted malicious
/// batch.  Built identically by every worker and by the in-process
/// reference path from the spec alone.
struct ShardTaskPlan {
  ShardTaskSpec spec;
  std::unique_ptr<FrequencyProtocol> protocol;
  std::vector<uint64_t> item_counts;
  uint64_t n = 0;               // genuine users
  uint64_t m = 0;               // malicious users
  uint64_t genuine_seed = 0;    // keys the genuine chunk fan-out
  uint64_t genuine_chunks = 0;  // G
  uint64_t malicious_chunks = 0;  // M
  std::vector<ItemId> targets;
  /// Builder-mode batch of all m crafted reports (empty when the
  /// attack is none); chunk j aggregates Slice(j*rpc, ...) of it.
  ReportBatch malicious_reports;

  uint64_t total_chunks() const { return genuine_chunks + malicious_chunks; }
};

/// Resolves `spec` against an already-loaded dataset, replaying the
/// trial RNG sequence of RunPoisoningTrial (genuine seed draw, attack
/// construction, report crafting).  `dataset.domain_size()` fixes d.
StatusOr<ShardTaskPlan> BuildShardTaskPlan(const ShardTaskSpec& spec,
                                           const Dataset& dataset);

/// Partial counts of a single genuine user chunk / malicious report
/// chunk (the unit the worker loop and the equivalence tests share).
std::vector<double> GenuineChunkCounts(const ShardTaskPlan& plan,
                                       uint64_t chunk);
std::vector<double> MaliciousChunkCounts(const ShardTaskPlan& plan,
                                         uint64_t chunk);

/// Computes worker `worker`'s partial records over its canonical
/// chunk range: at most one record per source stream, chunks
/// accumulated in ascending order.
std::vector<PartialRecord> ComputeWorkerPartials(const ShardTaskPlan& plan,
                                                 uint64_t worker,
                                                 uint64_t num_workers);

}  // namespace ldpr

#endif  // LDPR_SHARD_SHARD_TASK_H_
