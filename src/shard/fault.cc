#include "shard/fault.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/random.h"

namespace ldpr {
namespace {

// Shuffled worker order drawn on its own derived stream.
std::vector<uint64_t> ShuffledWorkers(uint64_t num_workers, uint64_t seed,
                                      uint64_t stream) {
  std::vector<uint64_t> order(num_workers);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(DeriveSeed(seed, stream));
  for (uint64_t i = num_workers; i > 1; --i)
    std::swap(order[i - 1], order[rng.Next() % i]);
  return order;
}

uint64_t PickCount(double fraction, uint64_t num_workers) {
  LDPR_CHECK(fraction >= 0.0 && fraction <= 1.0);
  return static_cast<uint64_t>(
      std::llround(fraction * static_cast<double>(num_workers)));
}

// Damages one wire line so the merger's checksum must catch it: flips
// the low bit of the byte in the middle of the payload region.
void FlipPayloadBit(std::string& line) {
  constexpr size_t kPrefixLen = sizeof("{\"payload\":") - 1;
  if (line.size() <= kPrefixLen + 2) return;
  const size_t payload_len = line.size() - kPrefixLen;
  line[kPrefixLen + payload_len / 2] ^= 0x01;
}

}  // namespace

FaultPlan MakeFaultPlan(const FaultSpec& spec, uint64_t num_workers) {
  FaultPlan plan;
  plan.fates.assign(num_workers, WorkerFate::kHealthy);
  plan.duplicated.assign(num_workers, false);
  plan.torn.assign(num_workers, false);
  plan.bitflipped.assign(num_workers, false);
  if (num_workers == 0) return plan;

  // Kill/straggler assignments come off one shuffled order so they
  // never collide; both fates drop the worker's delivery.
  uint64_t num_killed = PickCount(spec.kill_fraction, num_workers);
  uint64_t num_stragglers = PickCount(spec.straggler_fraction, num_workers);
  num_killed = std::min(num_killed, num_workers);
  num_stragglers = std::min(num_stragglers, num_workers - num_killed);
  const std::vector<uint64_t> fate_order =
      ShuffledWorkers(num_workers, spec.seed, 1);
  for (uint64_t i = 0; i < num_killed; ++i)
    plan.fates[fate_order[i]] = WorkerFate::kKilled;
  for (uint64_t i = 0; i < num_stragglers; ++i)
    plan.fates[fate_order[num_killed + i]] = WorkerFate::kStraggler;

  // Line-level faults pick disjoint workers among the survivors (a
  // second shuffled order, skipping dropped workers), so every
  // injected fault stays observable on its own delivered line.
  std::vector<uint64_t> survivors;
  for (uint64_t w : ShuffledWorkers(num_workers, spec.seed, 2)) {
    if (plan.fates[w] == WorkerFate::kHealthy) survivors.push_back(w);
  }
  uint64_t num_duplicated = std::min<uint64_t>(
      PickCount(spec.duplicate_fraction, num_workers), survivors.size());
  uint64_t num_torn =
      std::min<uint64_t>(PickCount(spec.torn_fraction, num_workers),
                         survivors.size() - num_duplicated);
  uint64_t num_flipped = std::min<uint64_t>(
      PickCount(spec.bitflip_fraction, num_workers),
      survivors.size() - num_duplicated - num_torn);
  size_t next = 0;
  for (uint64_t i = 0; i < num_duplicated; ++i)
    plan.duplicated[survivors[next++]] = true;
  for (uint64_t i = 0; i < num_torn; ++i) plan.torn[survivors[next++]] = true;
  for (uint64_t i = 0; i < num_flipped; ++i)
    plan.bitflipped[survivors[next++]] = true;
  return plan;
}

FaultyDelivery ApplyFaultPlan(
    const FaultPlan& plan,
    const std::vector<std::vector<std::string>>& worker_lines) {
  LDPR_CHECK(plan.fates.size() == worker_lines.size());
  FaultyDelivery delivery;
  for (size_t w = 0; w < worker_lines.size(); ++w) {
    const std::vector<std::string>& lines = worker_lines[w];
    if (plan.fates[w] == WorkerFate::kKilled) {
      if (!lines.empty()) ++delivery.workers_killed;
      continue;
    }
    if (plan.fates[w] == WorkerFate::kStraggler) {
      if (!lines.empty()) ++delivery.workers_straggling;
      continue;
    }
    std::vector<std::string> delivered = lines;
    if (plan.torn[w] && !delivered.empty()) {
      delivered.front().resize(delivered.front().size() / 2);
      ++delivery.lines_torn;
    } else if (plan.bitflipped[w] && !delivered.empty()) {
      FlipPayloadBit(delivered.front());
      ++delivery.lines_flipped;
    }
    for (const std::string& line : delivered) delivery.lines.push_back(line);
    if (plan.duplicated[w] && !delivered.empty()) {
      for (const std::string& line : delivered)
        delivery.lines.push_back(line);
      delivery.lines_duplicated += delivered.size();
    }
  }
  return delivery;
}

}  // namespace ldpr
