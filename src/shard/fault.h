// Deterministic fault injection for the multi-process shard pipeline.
//
// A FaultSpec names the failure modes of one delivery — killed
// workers, stragglers that miss the merge deadline, duplicate
// partial deliveries, torn (truncated) writes, and payload bit flips
// — as fractions of the worker fleet plus a seed.  MakeFaultPlan
// resolves the fractions into per-worker assignments with
// Rng(DeriveSeed(seed, stream)) draws only, so a (spec, fleet size)
// pair always yields the same plan; the fault scenarios rely on that
// to sweep loss fractions reproducibly.
//
// ApplyFaultPlan operates on the *serialized* wire lines each worker
// produced, not on in-memory records: torn writes and bit flips
// damage real bytes, so the merger's frame scan and checksum are
// genuinely exercised, and duplicate delivery re-sends byte-equal
// lines the merger must deduplicate idempotently.

#ifndef LDPR_SHARD_FAULT_H_
#define LDPR_SHARD_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ldpr {

struct FaultSpec {
  /// Fraction of workers whose output never arrives (process killed).
  double kill_fraction = 0.0;
  /// Fraction of workers whose output arrives after the merge
  /// deadline — same observable effect as a kill, tallied separately.
  double straggler_fraction = 0.0;
  /// Fraction of workers whose lines are delivered twice.
  double duplicate_fraction = 0.0;
  /// Fraction of workers whose first line is truncated mid-payload.
  double torn_fraction = 0.0;
  /// Fraction of workers with one payload bit flipped in their first
  /// line (always caught by the wire checksum).
  double bitflip_fraction = 0.0;
  uint64_t seed = 0;
};

enum class WorkerFate {
  kHealthy,
  kKilled,
  kStraggler,
};

/// The resolved per-worker assignment.  Kill/straggler picks are
/// disjoint (drawn off one shuffled worker order), as are
/// duplicate/torn/bitflip picks among the surviving deliveries — so
/// every counted fault is observable on its own line.
struct FaultPlan {
  std::vector<WorkerFate> fates;
  std::vector<bool> duplicated;
  std::vector<bool> torn;
  std::vector<bool> bitflipped;
};

FaultPlan MakeFaultPlan(const FaultSpec& spec, uint64_t num_workers);

/// What arrived at the merger, plus the tally of injected faults.
struct FaultyDelivery {
  std::vector<std::string> lines;
  size_t workers_killed = 0;
  size_t workers_straggling = 0;
  size_t lines_duplicated = 0;
  size_t lines_torn = 0;
  size_t lines_flipped = 0;
};

/// Applies the plan to each worker's serialized lines
/// (worker_lines[w] = worker w's wire output, in emit order).
FaultyDelivery ApplyFaultPlan(const FaultPlan& plan,
                              const std::vector<std::vector<std::string>>&
                                  worker_lines);

}  // namespace ldpr

#endif  // LDPR_SHARD_FAULT_H_
