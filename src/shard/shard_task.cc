#include "shard/shard_task.h"

#include <algorithm>

#include "ldp/factory.h"
#include "sim/pipeline.h"
#include "util/logging.h"
#include "util/random.h"

namespace ldpr {

std::pair<uint64_t, uint64_t> WorkerChunkRange(uint64_t total_chunks,
                                               uint64_t worker,
                                               uint64_t num_workers) {
  LDPR_CHECK(num_workers > 0);
  LDPR_CHECK(worker < num_workers);
  // Even-as-possible contiguous split; the first (total % W) workers
  // take one extra chunk.  Chunk counts are tiny (≤ millions), so the
  // multiplications cannot overflow.
  const uint64_t begin = total_chunks * worker / num_workers;
  const uint64_t end = total_chunks * (worker + 1) / num_workers;
  return {begin, end};
}

StatusOr<ShardTaskPlan> BuildShardTaskPlan(const ShardTaskSpec& spec,
                                           const Dataset& dataset) {
  if (spec.chunking.users_per_chunk == 0 ||
      spec.chunking.reports_per_chunk == 0)
    return InvalidArgumentError("chunk sizes must be positive");
  if (dataset.domain_size() < 2)
    return InvalidArgumentError("dataset domain too small for a protocol");

  ShardTaskPlan plan;
  plan.spec = spec;
  plan.item_counts = dataset.item_counts;
  plan.protocol =
      MakeProtocol(spec.protocol, dataset.domain_size(), spec.epsilon);
  plan.n = dataset.num_users();
  plan.genuine_chunks = UserChunkCount(plan.n, spec.chunking.users_per_chunk);

  // The trial RNG sequence of RunPoisoningTrial, draw for draw: one
  // Next() keys the genuine fan-out, then attack construction and
  // crafting consume the stream.  This is what makes the merged
  // multi-process result equal the in-process trial bit for bit.
  Rng rng(spec.seed);
  plan.genuine_seed = rng.Next();

  if (spec.attack != AttackKind::kNone) {
    plan.m = MaliciousUserCount(spec.beta, plan.n);
    PipelineConfig config;
    config.attack = spec.attack;
    config.beta = spec.beta;
    config.num_targets = spec.num_targets;
    const std::unique_ptr<Attack> attack =
        MakeAttack(config, dataset.domain_size(), rng);
    LDPR_CHECK(attack != nullptr);
    plan.targets = attack->targets();
    if (plan.m > 0) {
      ReportBatch::Builder builder(plan.malicious_reports);
      attack->CraftBatch(*plan.protocol, plan.m, rng, builder);
      LDPR_CHECK(plan.malicious_reports.size() == plan.m);
    }
  }
  plan.malicious_chunks =
      ReportChunkCount(plan.m, spec.chunking.reports_per_chunk);
  return plan;
}

std::vector<double> GenuineChunkCounts(const ShardTaskPlan& plan,
                                       uint64_t chunk) {
  LDPR_CHECK(chunk < plan.genuine_chunks);
  return plan.protocol->SampleSupportCountsChunk(
      plan.item_counts, plan.genuine_seed, chunk,
      plan.spec.chunking.users_per_chunk);
}

std::vector<double> MaliciousChunkCounts(const ShardTaskPlan& plan,
                                         uint64_t chunk) {
  LDPR_CHECK(chunk < plan.malicious_chunks);
  const uint64_t rpc = plan.spec.chunking.reports_per_chunk;
  const uint64_t begin = chunk * rpc;
  const uint64_t end = std::min<uint64_t>(plan.m, begin + rpc);
  std::vector<double> counts(plan.protocol->domain_size(), 0.0);
  plan.protocol->AccumulateSupportsBatch(
      plan.malicious_reports.Slice(static_cast<size_t>(begin),
                                   static_cast<size_t>(end)),
      counts);
  return counts;
}

namespace {

void AddInto(std::vector<double>& acc, const std::vector<double>& part) {
  LDPR_CHECK(acc.size() == part.size());
  for (size_t v = 0; v < acc.size(); ++v) acc[v] += part[v];
}

}  // namespace

std::vector<PartialRecord> ComputeWorkerPartials(const ShardTaskPlan& plan,
                                                 uint64_t worker,
                                                 uint64_t num_workers) {
  const auto [begin, end] =
      WorkerChunkRange(plan.total_chunks(), worker, num_workers);
  const uint64_t g = plan.genuine_chunks;
  const size_t d = plan.protocol->domain_size();
  std::vector<PartialRecord> records;

  const uint64_t genuine_begin = std::min(begin, g);
  const uint64_t genuine_end = std::min(end, g);
  if (genuine_begin < genuine_end) {
    PartialRecord rec;
    rec.spec = plan.spec;
    rec.source = kShardSourceGenuine;
    rec.chunk_begin = genuine_begin;
    rec.chunk_end = genuine_end;
    const uint64_t upc = plan.spec.chunking.users_per_chunk;
    rec.unit_begin = std::min<uint64_t>(plan.n, genuine_begin * upc);
    rec.unit_end = std::min<uint64_t>(plan.n, genuine_end * upc);
    rec.counts.assign(d, 0.0);
    for (uint64_t c = genuine_begin; c < genuine_end; ++c)
      AddInto(rec.counts, GenuineChunkCounts(plan, c));
    records.push_back(std::move(rec));
  }

  const uint64_t malicious_begin = std::max(begin, g) - g;
  const uint64_t malicious_end = end > g ? end - g : 0;
  if (malicious_begin < malicious_end) {
    PartialRecord rec;
    rec.spec = plan.spec;
    rec.source = kShardSourceMalicious;
    rec.chunk_begin = malicious_begin;
    rec.chunk_end = malicious_end;
    const uint64_t rpc = plan.spec.chunking.reports_per_chunk;
    rec.unit_begin = std::min<uint64_t>(plan.m, malicious_begin * rpc);
    rec.unit_end = std::min<uint64_t>(plan.m, malicious_end * rpc);
    rec.counts.assign(d, 0.0);
    for (uint64_t c = malicious_begin; c < malicious_end; ++c)
      AddInto(rec.counts, MaliciousChunkCounts(plan, c));
    records.push_back(std::move(rec));
  }
  return records;
}

}  // namespace ldpr
