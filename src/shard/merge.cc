#include "shard/merge.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <memory>
#include <utility>

#include "recover/ldprecover.h"
#include "runner/manifest.h"
#include "runner/result_sink.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/xxhash.h"

namespace ldpr {
namespace {

// One source stream's expected geometry.
struct SourceGeometry {
  uint64_t chunks = 0;
  uint64_t units = 0;       // users or reports
  uint64_t units_per_chunk = 0;
};

// Validates a record's chunk/unit arithmetic against `geo`; the unit
// range must be exactly what the chunk range implies.
Status CheckGeometry(const PartialRecord& rec, const SourceGeometry& geo) {
  if (rec.chunk_end > geo.chunks || rec.chunk_begin >= rec.chunk_end)
    return InvalidArgumentError("partial chunk range outside chunk space");
  const uint64_t want_begin =
      std::min(geo.units, rec.chunk_begin * geo.units_per_chunk);
  const uint64_t want_end =
      std::min(geo.units, rec.chunk_end * geo.units_per_chunk);
  if (rec.unit_begin != want_begin || rec.unit_end != want_end)
    return InvalidArgumentError("partial unit range disagrees with chunks");
  return Status::Ok();
}

// Merges one source's accepted records: sorts by chunk range, drops
// byte-equal duplicates, rejects conflicts/overlaps, accumulates in
// ascending chunk order, and counts gap chunks.  Counts are exact
// integer-valued doubles, so the ascending-order sum is byte-equal to
// the in-process chunk-order merge no matter how records group
// chunks.
Status MergeSource(std::vector<const PartialRecord*>& records,
                   const SourceGeometry& geo, size_t d,
                   std::vector<double>& counts, uint64_t& chunks_lost,
                   uint64_t& units_covered, size_t& used,
                   size_t& duplicates_dropped) {
  std::sort(records.begin(), records.end(),
            [](const PartialRecord* a, const PartialRecord* b) {
              if (a->chunk_begin != b->chunk_begin)
                return a->chunk_begin < b->chunk_begin;
              return a->chunk_end < b->chunk_end;
            });
  counts.assign(d, 0.0);
  uint64_t cursor = 0;
  const PartialRecord* prev = nullptr;
  for (const PartialRecord* rec : records) {
    if (rec->counts.size() != d)
      return InvalidArgumentError("partial counts length disagrees with d");
    if (prev != nullptr && rec->chunk_begin == prev->chunk_begin &&
        rec->chunk_end == prev->chunk_end) {
      if (rec->counts != prev->counts)
        return InvalidArgumentError(
            "conflicting partials for the same chunk range");
      ++duplicates_dropped;  // at-least-once re-delivery: idempotent
      continue;
    }
    if (rec->chunk_begin < cursor)
      return InvalidArgumentError("overlapping partial chunk ranges");
    chunks_lost += rec->chunk_begin - cursor;
    for (size_t v = 0; v < d; ++v) counts[v] += rec->counts[v];
    units_covered += rec->unit_end - rec->unit_begin;
    cursor = rec->chunk_end;
    prev = rec;
    ++used;
  }
  chunks_lost += geo.chunks - cursor;
  return Status::Ok();
}

uint64_t CountsDigest(const std::vector<double>& counts) {
  const uint64_t h = XxHash64(counts.data(), counts.size() * sizeof(double),
                              kShardChecksumSeed);
  return (h ^ (h >> 32)) & 0xffffffffu;
}

}  // namespace

StatusOr<MergedPartials> MergeShardPartials(
    const ShardTaskPlan& plan, const std::vector<std::string>& lines,
    const MergeOptions& options) {
  const size_t d = plan.protocol->domain_size();
  const SourceGeometry genuine_geo{plan.genuine_chunks, plan.n,
                                   plan.spec.chunking.users_per_chunk};
  const SourceGeometry malicious_geo{plan.malicious_chunks, plan.m,
                                     plan.spec.chunking.reports_per_chunk};

  MergedPartials merged;
  merged.stats.lines_total = lines.size();

  std::vector<PartialRecord> accepted;
  accepted.reserve(lines.size());
  for (const std::string& line : lines) {
    auto record = DecodePartialLine(line);
    if (!record.ok()) {
      // Torn frame or flipped bit: the wire layer caught it; the
      // worker's chunks become lost coverage below.
      ++merged.stats.lines_rejected;
      continue;
    }
    if (!ShardTaskSpecsEqual(record->spec, plan.spec))
      return InvalidArgumentError(
          "partial from a different task spec (mixed runs?)");
    const SourceGeometry& geo =
        record->source == kShardSourceGenuine ? genuine_geo : malicious_geo;
    const Status geometry = CheckGeometry(*record, geo);
    if (!geometry.ok()) return geometry;
    accepted.push_back(*std::move(record));
  }

  std::vector<const PartialRecord*> genuine, malicious;
  for (const PartialRecord& rec : accepted) {
    (rec.source == kShardSourceGenuine ? genuine : malicious).push_back(&rec);
  }
  Status status = MergeSource(
      genuine, genuine_geo, d, merged.genuine_counts,
      merged.stats.genuine_chunks_lost, merged.stats.users_covered,
      merged.stats.records_used, merged.stats.duplicates_dropped);
  if (!status.ok()) return status;
  status = MergeSource(
      malicious, malicious_geo, d, merged.malicious_counts,
      merged.stats.malicious_chunks_lost, merged.stats.reports_covered,
      merged.stats.records_used, merged.stats.duplicates_dropped);
  if (!status.ok()) return status;

  if (merged.stats.users_covered == 0)
    return FailedPreconditionError(
        "no genuine users survived the merge; nothing to estimate from");
  if (!options.allow_missing) {
    if (merged.stats.lines_rejected > 0)
      return InvalidArgumentError("rejected " +
                                  std::to_string(merged.stats.lines_rejected) +
                                  " corrupt partial line(s) in strict mode");
    if (merged.stats.genuine_chunks_lost > 0 ||
        merged.stats.malicious_chunks_lost > 0)
      return FailedPreconditionError(
          "incomplete merge: " +
          std::to_string(merged.stats.genuine_chunks_lost +
                         merged.stats.malicious_chunks_lost) +
          " chunk(s) missing");
  }
  return merged;
}

StatusOr<MergedPartials> RunShardTaskInProcess(const ShardTaskPlan& plan,
                                               uint64_t num_workers) {
  if (num_workers == 0)
    return InvalidArgumentError("num_workers must be positive");
  std::vector<std::string> lines;
  for (uint64_t w = 0; w < num_workers; ++w) {
    for (const PartialRecord& rec : ComputeWorkerPartials(plan, w, num_workers))
      lines.push_back(EncodePartialLine(rec));
  }
  return MergeShardPartials(plan, lines, MergeOptions{});
}

ShardOutcome ComputeShardOutcome(const ShardTaskPlan& plan,
                                 const Dataset& dataset,
                                 const MergedPartials& merged) {
  const size_t d = plan.protocol->domain_size();
  ShardOutcome outcome;
  outcome.n_eff = merged.stats.users_covered;
  outcome.m_eff = merged.stats.reports_covered;

  std::vector<double> combined(d, 0.0);
  for (size_t v = 0; v < d; ++v)
    combined[v] = merged.genuine_counts[v] + merged.malicious_counts[v];
  outcome.poisoned_freqs = plan.protocol->EstimateFrequencies(
      combined, static_cast<size_t>(outcome.n_eff + outcome.m_eff));

  RecoverOptions recover_options;
  recover_options.eta = plan.spec.eta;
  const LdpRecover recover(*plan.protocol, recover_options);
  outcome.recovered_freqs = recover.Recover(outcome.poisoned_freqs);

  const std::vector<double> true_freqs = dataset.TrueFrequencies();
  outcome.poisoned_mse = Mse(outcome.poisoned_freqs, true_freqs);
  outcome.recovered_mse = Mse(outcome.recovered_freqs, true_freqs);
  outcome.genuine_digest =
      static_cast<double>(CountsDigest(merged.genuine_counts));
  outcome.malicious_digest =
      static_cast<double>(CountsDigest(merged.malicious_counts));
  return outcome;
}

Status WriteShardResultTree(const std::string& dir, const ShardTaskPlan& plan,
                            const Dataset& dataset,
                            const ShardOutcome& outcome,
                            const MergeStats& stats) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return InternalError("cannot create " + dir + ": " + ec.message());

  // A synthetic one-row scenario in the single-scenario-directory
  // layout LoadResultTree accepts: `ldpr_diff --exact` between a
  // multi-process tree and an --inprocess tree is the byte-identity
  // gate CI runs.
  ScenarioSpec spec;
  spec.id = "shard_merge";
  spec.title = "Sharded merge outcome";
  spec.artifact = "extension";
  spec.datasets = {plan.spec.dataset};
  spec.protocols = {plan.spec.protocol};
  spec.attacks = {plan.spec.attack};
  spec.columns = {"PoisonedMSE", "RecoveredMSE", "Neff",
                  "Meff",        "GenDigest",    "MalDigest",
                  "ChunksLost",  "LinesRejected", "DupsDropped"};
  spec.defaults.seed = plan.spec.seed;
  spec.defaults.epsilon = plan.spec.epsilon;
  spec.defaults.beta = plan.spec.beta;
  spec.defaults.eta = plan.spec.eta;
  spec.custom = true;

  ScenarioRunInfo info;
  info.id = spec.id;
  info.title = spec.title;
  info.seed = plan.spec.seed;
  info.scale = plan.spec.scale;
  info.trials = 1;
  info.threads = 1;
  info.datasets.push_back({dataset.name, dataset.domain_size(),
                           dataset.num_users()});

  CsvSink csv(dir + "/results.csv");
  JsonlSink jsonl(dir + "/results.jsonl");
  if (!csv.ok() || !jsonl.ok())
    return InternalError("cannot open result files under " + dir);

  const std::string row_label = std::string(ProtocolKindName(plan.spec.protocol)) +
                                "/" + AttackKindName(plan.spec.attack);
  const std::vector<double> values = {
      outcome.poisoned_mse,
      outcome.recovered_mse,
      static_cast<double>(outcome.n_eff),
      static_cast<double>(outcome.m_eff),
      outcome.genuine_digest,
      outcome.malicious_digest,
      static_cast<double>(stats.genuine_chunks_lost +
                          stats.malicious_chunks_lost),
      static_cast<double>(stats.lines_rejected),
      static_cast<double>(stats.duplicates_dropped)};
  for (ResultSink* sink : {static_cast<ResultSink*>(&csv),
                           static_cast<ResultSink*>(&jsonl)}) {
    sink->BeginScenario(info);
    sink->BeginTable("Shard merge (" + dataset.name + ")", spec.columns);
    sink->AddRow(row_label, values);
    sink->EndTable();
    const Status finished = sink->Finish();
    if (!finished.ok()) return finished;
  }

  ScenarioRunReport report;
  report.tables = 1;
  report.rows = 1;
  report.info = info;
  const RunManifest manifest =
      MakeRunManifest(spec, info, report, {"results.csv", "results.jsonl"});
  return WriteManifest(dir + "/manifest.json", manifest);
}

}  // namespace ldpr
