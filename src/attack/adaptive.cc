#include "attack/adaptive.h"

#include "util/logging.h"

namespace ldpr {

AdaptiveAttack::AdaptiveAttack(std::vector<double> distribution)
    : distribution_(std::move(distribution)) {
  LDPR_CHECK(!distribution_->empty());
}

std::vector<Report> AdaptiveAttack::Craft(const FrequencyProtocol& protocol,
                                          size_t m, Rng& rng) const {
  const size_t d = protocol.domain_size();
  std::vector<double> p;
  if (distribution_.has_value()) {
    LDPR_CHECK(distribution_->size() == d);
    p = *distribution_;
  } else {
    p = SampleRandomDistribution(d, rng);
  }
  const AliasSampler sampler(p);

  std::vector<Report> reports;
  reports.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    const ItemId v = static_cast<ItemId>(sampler.Sample(rng));
    reports.push_back(protocol.CraftSupportingReport(v, rng));
  }
  return reports;
}

}  // namespace ldpr
