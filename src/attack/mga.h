// MGA: the Maximal Gain Attack of Cao, Jia & Gong (USENIX Security
// 2021) — the targeted poisoning attack the paper evaluates against.
//
// The attacker picks r target items T and crafts each malicious
// user's report so that it supports as many targets as the encoding
// permits:
//   * GRR   — a report carries one item, so each fake user sends one
//             target (uniformly over T, i.e. the paper's adaptive-
//             attack distribution with mass 1/r on each target);
//   * OUE   — the crafted bit vector sets the bit of *every* target;
//             optionally the vector is padded with random non-target
//             bits up to the expected 1-count of a genuine report so
//             that simple length-based anomaly checks do not flag it;
//   * OLH   — the attacker searches random hash seeds for one whose
//             induced partition maps many targets into a common
//             bucket, then reports (seed, that bucket).

#ifndef LDPR_ATTACK_MGA_H_
#define LDPR_ATTACK_MGA_H_

#include "attack/attack.h"

namespace ldpr {

/// Options of the MGA attack.
struct MgaOptions {
  /// Pad crafted OUE vectors to the expected genuine 1-count.
  bool pad_oue = true;
  /// Random seeds tried per crafted OLH report.
  size_t olh_seed_tries = 64;
};

class MgaAttack final : public Attack {
 public:
  /// `targets` must be non-empty and within the domain of every
  /// protocol this attack is used with.
  MgaAttack(std::vector<ItemId> targets, MgaOptions options = MgaOptions());

  std::string Name() const override { return "MGA"; }
  std::vector<ItemId> targets() const override { return targets_; }

  std::vector<Report> Craft(const FrequencyProtocol& protocol, size_t m,
                            Rng& rng) const override;

  /// SoA crafting, bit-identical to Craft (same draws): OUE/SUE
  /// target-and-pad bits write straight into packed rows; the OLH
  /// seed search hoists the per-target xxHash half out of the
  /// seed-try loop (util/hash_family.h) and emits (seed, bucket)
  /// pairs.
  void CraftBatch(const FrequencyProtocol& protocol, size_t m, Rng& rng,
                  ReportBatch::Builder& out) const override;

  /// Picks r distinct random targets in {0, ..., d-1} — the paper's
  /// "randomly select target items" (Section VI-A3).
  static std::vector<ItemId> SampleTargets(size_t d, size_t r, Rng& rng);

 private:
  Report CraftOue(const FrequencyProtocol& protocol, Rng& rng) const;
  Report CraftOlh(const FrequencyProtocol& protocol, Rng& rng) const;

  std::vector<ItemId> targets_;
  MgaOptions options_;
};

}  // namespace ldpr

#endif  // LDPR_ATTACK_MGA_H_
