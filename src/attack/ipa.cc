#include "attack/ipa.h"

#include "util/logging.h"

namespace ldpr {

InputPoisoningAttack::InputPoisoningAttack(
    std::string name, std::vector<double> input_distribution,
    std::vector<ItemId> targets)
    : name_(std::move(name)),
      input_distribution_(std::move(input_distribution)),
      targets_(std::move(targets)) {
  LDPR_CHECK(!input_distribution_.empty());
}

std::vector<Report> InputPoisoningAttack::Craft(
    const FrequencyProtocol& protocol, size_t m, Rng& rng) const {
  LDPR_CHECK(input_distribution_.size() == protocol.domain_size());
  const AliasSampler sampler(input_distribution_);
  std::vector<Report> reports;
  reports.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    const ItemId v = static_cast<ItemId>(sampler.Sample(rng));
    reports.push_back(protocol.Perturb(v, rng));  // honest perturbation
  }
  return reports;
}

void InputPoisoningAttack::CraftBatch(const FrequencyProtocol& protocol,
                                      size_t m, Rng& rng,
                                      ReportBatch::Builder& out) const {
  LDPR_CHECK(input_distribution_.size() == protocol.domain_size());
  const AliasSampler sampler(input_distribution_);
  for (size_t i = 0; i < m; ++i) {
    const ItemId v = static_cast<ItemId>(sampler.Sample(rng));
    protocol.AppendGenuineReports(v, 1, rng, out);  // honest perturbation
  }
}

std::unique_ptr<InputPoisoningAttack> MakeMgaIpa(size_t d,
                                                 std::vector<ItemId> targets) {
  LDPR_CHECK(!targets.empty());
  std::vector<double> dist(d, 0.0);
  for (ItemId t : targets) {
    LDPR_CHECK(t < d);
    dist[t] = 1.0;
  }
  return std::make_unique<InputPoisoningAttack>("MGA-IPA", std::move(dist),
                                                std::move(targets));
}

}  // namespace ldpr
