#include "attack/attack.h"

// Interface-only translation unit.
