#include "attack/attack.h"

namespace ldpr {

void Attack::CraftBatch(const FrequencyProtocol& protocol, size_t m, Rng& rng,
                        ReportBatch::Builder& out) const {
  for (const Report& report : Craft(protocol, m, rng)) out.Add(report);
}

}  // namespace ldpr
