#include "attack/multi_attacker.h"

#include <algorithm>

#include "attack/adaptive.h"
#include "util/logging.h"

namespace ldpr {

MultiAttacker::MultiAttacker(std::vector<std::unique_ptr<Attack>> attackers)
    : attackers_(std::move(attackers)) {
  LDPR_CHECK(!attackers_.empty());
  for (const auto& a : attackers_) LDPR_CHECK(a != nullptr);
}

std::string MultiAttacker::Name() const {
  return "MUL-" + attackers_.front()->Name() + "-x" +
         std::to_string(attackers_.size());
}

std::vector<ItemId> MultiAttacker::targets() const {
  std::vector<ItemId> all;
  for (const auto& a : attackers_) {
    const std::vector<ItemId> t = a->targets();
    all.insert(all.end(), t.begin(), t.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

std::vector<Report> MultiAttacker::Craft(const FrequencyProtocol& protocol,
                                         size_t m, Rng& rng) const {
  // Assign each malicious user to an attacker uniformly at random.
  const std::vector<double> uniform(attackers_.size(), 1.0);
  const std::vector<uint64_t> shares = SampleMultinomial(m, uniform, rng);

  std::vector<Report> all;
  all.reserve(m);
  for (size_t a = 0; a < attackers_.size(); ++a) {
    std::vector<Report> part = attackers_[a]->Craft(protocol, shares[a], rng);
    std::move(part.begin(), part.end(), std::back_inserter(all));
  }
  return all;
}

std::unique_ptr<MultiAttacker> MakeMultiAdaptive(size_t k) {
  LDPR_CHECK(k >= 1);
  std::vector<std::unique_ptr<Attack>> attackers;
  attackers.reserve(k);
  for (size_t i = 0; i < k; ++i)
    attackers.push_back(std::make_unique<AdaptiveAttack>());
  return std::make_unique<MultiAttacker>(std::move(attackers));
}

}  // namespace ldpr
