#include "attack/manip.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace ldpr {

std::vector<Report> ManipAttack::Craft(const FrequencyProtocol& protocol,
                                       size_t m, Rng& rng) const {
  const size_t d = protocol.domain_size();
  const size_t h = std::max<size_t>(
      1, static_cast<size_t>(std::llround(options_.domain_fraction *
                                          static_cast<double>(d))));
  LDPR_CHECK(h <= d);
  const std::vector<uint32_t> sub_domain = SampleWithoutReplacement(d, h, rng);

  std::vector<Report> reports;
  reports.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    const ItemId v = sub_domain[rng.UniformU64(sub_domain.size())];
    reports.push_back(protocol.CraftSupportingReport(v, rng));
  }
  return reports;
}

void ManipAttack::CraftBatch(const FrequencyProtocol& protocol, size_t m,
                             Rng& rng, ReportBatch::Builder& out) const {
  const size_t d = protocol.domain_size();
  const size_t h = std::max<size_t>(
      1, static_cast<size_t>(std::llround(options_.domain_fraction *
                                          static_cast<double>(d))));
  LDPR_CHECK(h <= d);
  const std::vector<uint32_t> sub_domain = SampleWithoutReplacement(d, h, rng);
  for (size_t i = 0; i < m; ++i) {
    const ItemId v = sub_domain[rng.UniformU64(sub_domain.size())];
    protocol.AppendCraftedReport(v, rng, out);
  }
}

}  // namespace ldpr
