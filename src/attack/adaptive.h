// AA: the paper's Adaptive Attack (Section V-C), which unifies
// existing poisoning attacks as sampling malicious data from an
// attacker-designed distribution P over the encoded domain.
//
// The experimental instantiation (Section VI-A3) generates P at
// random: P is a uniformly random probability vector over the d items
// (a flat-Dirichlet draw), each malicious value is sampled from P,
// and the crafted encoded report deterministically supports the
// sampled item.  MGA is the special case where P puts mass 1/r on
// each of the r targets; Manip is the special case where P is uniform
// over a random sub-domain.

#ifndef LDPR_ATTACK_ADAPTIVE_H_
#define LDPR_ATTACK_ADAPTIVE_H_

#include <optional>

#include "attack/attack.h"

namespace ldpr {

class AdaptiveAttack final : public Attack {
 public:
  /// Random-P variant: a fresh attacker-designed distribution is
  /// drawn for every Craft() call (i.e. per trial), matching the
  /// paper's "randomly generate the attacker-designed distribution".
  AdaptiveAttack() = default;

  /// Fixed-P variant: samples from the given distribution over the
  /// input domain (used by tests and the multi-attacker harness).
  explicit AdaptiveAttack(std::vector<double> distribution);

  std::string Name() const override { return "AA"; }

  std::vector<Report> Craft(const FrequencyProtocol& protocol, size_t m,
                            Rng& rng) const override;

  /// The fixed distribution, if any.
  const std::optional<std::vector<double>>& distribution() const {
    return distribution_;
  }

 private:
  std::optional<std::vector<double>> distribution_;
};

}  // namespace ldpr

#endif  // LDPR_ATTACK_ADAPTIVE_H_
