#include "attack/mga.h"

#include <algorithm>
#include <cmath>

#include "ldp/olh.h"
#include "ldp/unary.h"
#include "util/logging.h"

namespace ldpr {

MgaAttack::MgaAttack(std::vector<ItemId> targets, MgaOptions options)
    : targets_(std::move(targets)), options_(options) {
  LDPR_CHECK(!targets_.empty());
}

std::vector<ItemId> MgaAttack::SampleTargets(size_t d, size_t r, Rng& rng) {
  LDPR_CHECK(r >= 1 && r <= d);
  return SampleWithoutReplacement(d, r, rng);
}

Report MgaAttack::CraftOue(const FrequencyProtocol& protocol,
                           Rng& rng) const {
  const auto& oue = static_cast<const UnaryEncoding&>(protocol);
  const size_t d = oue.domain_size();
  Report r;
  r.bits.assign(d, 0);
  size_t ones = 0;
  for (ItemId t : targets_) {
    LDPR_CHECK(t < d);
    if (!r.bits[t]) {
      r.bits[t] = 1;
      ++ones;
    }
  }
  if (options_.pad_oue) {
    // Bring the 1-count up to the expected count of a genuine report
    // so the crafted vectors pass a naive 1-count anomaly check.
    const size_t expected =
        static_cast<size_t>(std::llround(oue.ExpectedOnes()));
    size_t guard = 0;
    while (ones < expected && guard < 16 * d) {
      const ItemId v = static_cast<ItemId>(rng.UniformU64(d));
      ++guard;
      if (!r.bits[v]) {
        r.bits[v] = 1;
        ++ones;
      }
    }
  }
  return r;
}

Report MgaAttack::CraftOlh(const FrequencyProtocol& protocol,
                           Rng& rng) const {
  const auto& olh = static_cast<const OlhBase&>(protocol);
  const uint32_t g = olh.g();
  Report best;
  size_t best_hits = 0;
  std::vector<uint32_t> bucket_hits(g);
  for (size_t attempt = 0; attempt < options_.olh_seed_tries; ++attempt) {
    const uint64_t seed = rng.Next();
    std::fill(bucket_hits.begin(), bucket_hits.end(), 0u);
    for (ItemId t : targets_) ++bucket_hits[olh.Hash(seed, t)];
    const auto it = std::max_element(bucket_hits.begin(), bucket_hits.end());
    const size_t hits = *it;
    if (hits > best_hits) {
      best_hits = hits;
      best.seed = seed;
      best.value = static_cast<uint32_t>(it - bucket_hits.begin());
      if (best_hits == targets_.size()) break;  // cannot do better
    }
  }
  LDPR_CHECK(best_hits >= 1);
  return best;
}

void MgaAttack::CraftBatch(const FrequencyProtocol& protocol, size_t m,
                           Rng& rng, ReportBatch::Builder& out) const {
  switch (protocol.kind()) {
    case ProtocolKind::kGrr: {
      out.Reserve(m);
      for (size_t i = 0; i < m; ++i) {
        const ItemId t = targets_[rng.UniformU64(targets_.size())];
        protocol.AppendCraftedReport(t, rng, out);
      }
      break;
    }
    case ProtocolKind::kOue:
    case ProtocolKind::kSue: {
      const auto& oue = static_cast<const UnaryEncoding&>(protocol);
      const size_t d = oue.domain_size();
      out.SetBitsWidth(d);
      out.Reserve(m);
      const size_t expected =
          static_cast<size_t>(std::llround(oue.ExpectedOnes()));
      for (size_t i = 0; i < m; ++i) {
        // Same bit writes and pad draws as CraftOue, into the packed
        // row (AddBitsRow returns it zeroed).
        uint8_t* row = out.AddBitsRow();
        size_t ones = 0;
        for (ItemId t : targets_) {
          LDPR_CHECK(t < d);
          if (!row[t]) {
            row[t] = 1;
            ++ones;
          }
        }
        if (options_.pad_oue) {
          size_t guard = 0;
          while (ones < expected && guard < 16 * d) {
            const ItemId v = static_cast<ItemId>(rng.UniformU64(d));
            ++guard;
            if (!row[v]) {
              row[v] = 1;
              ++ones;
            }
          }
        }
      }
      break;
    }
    case ProtocolKind::kOlh:
    case ProtocolKind::kBlh: {
      const auto& olh = static_cast<const OlhBase&>(protocol);
      const uint32_t g = olh.g();
      const FastMod mod(g);
      // The targets are fixed across all m reports and all seed
      // tries: precompute each target's item-only xxHash half once
      // (bit-identical hashing — util/hash_family.h).
      std::vector<uint64_t> round0(targets_.size());
      for (size_t j = 0; j < targets_.size(); ++j)
        round0[j] = XxHash64Round0(targets_[j]);
      std::vector<uint32_t> bucket_hits(g);
      out.Reserve(m);
      for (size_t i = 0; i < m; ++i) {
        uint64_t best_seed = 0;
        uint32_t best_value = 0;
        size_t best_hits = 0;
        for (size_t attempt = 0; attempt < options_.olh_seed_tries;
             ++attempt) {
          const uint64_t seed = rng.Next();
          const uint64_t seed_acc = XxHash64SeedAcc(seed);
          std::fill(bucket_hits.begin(), bucket_hits.end(), 0u);
          for (size_t j = 0; j < targets_.size(); ++j) {
            ++bucket_hits[mod(XxHash64Key8WithRound0(round0[j], seed_acc))];
          }
          const auto it =
              std::max_element(bucket_hits.begin(), bucket_hits.end());
          const size_t hits = *it;
          if (hits > best_hits) {
            best_hits = hits;
            best_seed = seed;
            best_value = static_cast<uint32_t>(it - bucket_hits.begin());
            if (best_hits == targets_.size()) break;  // cannot do better
          }
        }
        LDPR_CHECK(best_hits >= 1);
        out.AddSeedValue(best_seed, best_value);
      }
      break;
    }
  }
}

std::vector<Report> MgaAttack::Craft(const FrequencyProtocol& protocol,
                                     size_t m, Rng& rng) const {
  std::vector<Report> reports;
  reports.reserve(m);
  switch (protocol.kind()) {
    case ProtocolKind::kGrr:
      for (size_t i = 0; i < m; ++i) {
        const ItemId t = targets_[rng.UniformU64(targets_.size())];
        reports.push_back(protocol.CraftSupportingReport(t, rng));
      }
      break;
    case ProtocolKind::kOue:
    case ProtocolKind::kSue:
      for (size_t i = 0; i < m; ++i) reports.push_back(CraftOue(protocol, rng));
      break;
    case ProtocolKind::kOlh:
    case ProtocolKind::kBlh:
      for (size_t i = 0; i < m; ++i) reports.push_back(CraftOlh(protocol, rng));
      break;
  }
  return reports;
}

}  // namespace ldpr
