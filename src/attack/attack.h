// Attack: the interface of poisoning attacks against LDP frequency
// estimation (threat model of Section IV-A).
//
// An attacker controls m malicious users and crafts the data they
// send.  In the *general* poisoning attack the crafted data lives in
// the encoded domain and bypasses the perturbation algorithm; the
// input poisoning attack (attack/ipa.h) instead samples input items
// and perturbs them honestly.  Either way, an attack is a recipe for
// producing m reports given the protocol in use.

#ifndef LDPR_ATTACK_ATTACK_H_
#define LDPR_ATTACK_ATTACK_H_

#include <cstddef>
#include <string>
#include <vector>

#include "ldp/protocol.h"
#include "util/random.h"

namespace ldpr {

class Attack {
 public:
  virtual ~Attack() = default;

  virtual std::string Name() const = 0;

  /// Crafts the reports of `m` malicious users against `protocol`.
  virtual std::vector<Report> Craft(const FrequencyProtocol& protocol,
                                    size_t m, Rng& rng) const = 0;

  /// Crafts the same m reports straight into a builder-mode
  /// ReportBatch (SoA seeds/values/packed bit rows) — the malicious
  /// half of the batched trial pipeline.  Overrides must draw exactly
  /// the same randomness, in the same order, as Craft, so the two
  /// paths produce bit-identical reports AND leave the Rng in the
  /// same state (locked in by tests/report_gen_batch_test.cc).  The
  /// default materializes via Craft and appends.
  virtual void CraftBatch(const FrequencyProtocol& protocol, size_t m,
                          Rng& rng, ReportBatch::Builder& out) const;

  /// Target items of a targeted attack; empty for untargeted attacks.
  virtual std::vector<ItemId> targets() const { return {}; }
};

}  // namespace ldpr

#endif  // LDPR_ATTACK_ATTACK_H_
