// Multi-attacker composition (Section VII-C of the paper): several
// independent attackers each control a share of the malicious users.
// The paper observes this is equivalent to a single attacker sampling
// from the mixture of the individual attacker-designed distributions,
// so LDPRecover applies unchanged; Figure 10 verifies it empirically
// with five adaptive attackers.

#ifndef LDPR_ATTACK_MULTI_ATTACKER_H_
#define LDPR_ATTACK_MULTI_ATTACKER_H_

#include <memory>

#include "attack/attack.h"

namespace ldpr {

class MultiAttacker final : public Attack {
 public:
  /// Takes ownership of the component attacks.  Malicious users are
  /// assigned to attackers uniformly at random (multinomially), as in
  /// the paper's "randomly assign malicious users to these attackers".
  explicit MultiAttacker(std::vector<std::unique_ptr<Attack>> attackers);

  std::string Name() const override;

  /// Union of the component attacks' targets (deduplicated).
  std::vector<ItemId> targets() const override;

  std::vector<Report> Craft(const FrequencyProtocol& protocol, size_t m,
                            Rng& rng) const override;

  size_t attacker_count() const { return attackers_.size(); }

 private:
  std::vector<std::unique_ptr<Attack>> attackers_;
};

/// Convenience: k independent adaptive attackers (the Figure 10
/// configuration with k = 5).
std::unique_ptr<MultiAttacker> MakeMultiAdaptive(size_t k);

}  // namespace ldpr

#endif  // LDPR_ATTACK_MULTI_ATTACKER_H_
