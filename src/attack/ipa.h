// Input poisoning attacks (IPA), Section VII-B of the paper.
//
// Under IPA, malicious users choose adversarial *input* items but
// then follow the LDP perturbation honestly, so their reports are
// statistically indistinguishable from genuine reports conditioned on
// the input.  IPA is far weaker than the general poisoning attack
// (Figure 8) because the perturbation dilutes the attacker's signal
// by the same factor it dilutes everyone's.
//
// InputPoisoningAttack wraps any input-domain distribution; MakeMgaIpa
// builds the MGA-IPA instantiation used in Figure 8 (inputs uniform
// over the target items).

#ifndef LDPR_ATTACK_IPA_H_
#define LDPR_ATTACK_IPA_H_

#include <memory>

#include "attack/attack.h"

namespace ldpr {

class InputPoisoningAttack final : public Attack {
 public:
  /// `input_distribution` is an (unnormalized) weight vector over the
  /// input domain from which malicious inputs are drawn.
  /// `name` labels the attack in experiment output.
  /// `targets` is recorded for FG evaluation (may be empty).
  InputPoisoningAttack(std::string name, std::vector<double> input_distribution,
                       std::vector<ItemId> targets);

  std::string Name() const override { return name_; }
  std::vector<ItemId> targets() const override { return targets_; }

  /// Samples an input item per malicious user and perturbs it with
  /// the protocol's genuine perturbation algorithm.
  std::vector<Report> Craft(const FrequencyProtocol& protocol, size_t m,
                            Rng& rng) const override;

  /// SoA crafting via the protocol's batched genuine generation
  /// (same draws: one alias sample + one perturbation per report).
  void CraftBatch(const FrequencyProtocol& protocol, size_t m, Rng& rng,
                  ReportBatch::Builder& out) const override;

 private:
  std::string name_;
  std::vector<double> input_distribution_;
  std::vector<ItemId> targets_;
};

/// MGA-IPA: malicious inputs uniform over `targets`, honestly
/// perturbed (the Figure 8 baseline).
std::unique_ptr<InputPoisoningAttack> MakeMgaIpa(size_t d,
                                                 std::vector<ItemId> targets);

}  // namespace ldpr

#endif  // LDPR_ATTACK_IPA_H_
