// Manip: the untargeted manipulation attack of Cheu, Smith & Ullman
// (S&P 2021), as instantiated in Section VI-A3 of the paper: the
// attacker samples a malicious sub-domain H of D, then draws each
// malicious user's value uniformly from H and sends the crafted
// encoded report directly (bypassing perturbation).  The effect is an
// indiscriminate distortion of the aggregated distribution.

#ifndef LDPR_ATTACK_MANIP_H_
#define LDPR_ATTACK_MANIP_H_

#include "attack/attack.h"

namespace ldpr {

/// Options of the Manip attack.
struct ManipOptions {
  /// |H| / |D|: fraction of the domain included in the malicious
  /// sub-domain (at least one item is always included).
  double domain_fraction = 0.5;
};

class ManipAttack final : public Attack {
 public:
  explicit ManipAttack(ManipOptions options = ManipOptions())
      : options_(options) {}

  std::string Name() const override { return "Manip"; }

  /// Samples H once per call, then m uniform values from H, crafting
  /// a maximally-supporting encoded report for each.
  std::vector<Report> Craft(const FrequencyProtocol& protocol, size_t m,
                            Rng& rng) const override;

  /// SoA crafting via the protocol's AppendCraftedReport (same
  /// draws).
  void CraftBatch(const FrequencyProtocol& protocol, size_t m, Rng& rng,
                  ReportBatch::Builder& out) const override;

 private:
  ManipOptions options_;
};

}  // namespace ldpr

#endif  // LDPR_ATTACK_MANIP_H_
