#include "tasks/heavy_hitters.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace ldpr {

namespace {

// Item ids of the top-k entries (frequency desc, id asc on ties).
std::vector<ItemId> TopKIds(const std::vector<double>& frequencies,
                            size_t k) {
  std::vector<ItemId> order(frequencies.size());
  std::iota(order.begin(), order.end(), 0u);
  k = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](ItemId a, ItemId b) {
                      if (frequencies[a] != frequencies[b])
                        return frequencies[a] > frequencies[b];
                      return a < b;
                    });
  order.resize(k);
  return order;
}

// Dense membership mask over the domain: O(d + k) to build, O(1) per
// lookup — top-k vectors scale with the domain, so a std::find per
// probed item would be quadratic in k.
std::vector<uint8_t> TopKMask(const std::vector<ItemId>& top, size_t d) {
  std::vector<uint8_t> mask(d, 0);
  for (ItemId v : top) mask[v] = 1;
  return mask;
}

}  // namespace

std::vector<HeavyHitter> IdentifyHeavyHitters(
    const std::vector<double>& frequencies,
    const HeavyHitterOptions& options) {
  LDPR_CHECK(!frequencies.empty());
  LDPR_CHECK(options.k >= 1);
  std::vector<HeavyHitter> hitters;
  for (ItemId id : TopKIds(frequencies, options.k)) {
    if (frequencies[id] <= options.min_frequency) break;  // sorted: done
    hitters.push_back(HeavyHitter{id, frequencies[id]});
  }
  return hitters;
}

double TopKDisplacement(const std::vector<double>& true_frequencies,
                        const std::vector<double>& estimated_frequencies,
                        size_t k) {
  LDPR_CHECK(true_frequencies.size() == estimated_frequencies.size());
  LDPR_CHECK(k >= 1);
  const std::vector<ItemId> truth = TopKIds(true_frequencies, k);
  const std::vector<uint8_t> in_estimate = TopKMask(
      TopKIds(estimated_frequencies, k), estimated_frequencies.size());
  size_t missing = 0;
  for (ItemId t : truth) {
    if (!in_estimate[t]) ++missing;
  }
  return static_cast<double>(missing) / static_cast<double>(truth.size());
}

size_t CountInTopK(const std::vector<double>& frequencies,
                   const std::vector<ItemId>& items, size_t k) {
  const std::vector<uint8_t> in_top =
      TopKMask(TopKIds(frequencies, k), frequencies.size());
  size_t count = 0;
  for (ItemId item : items) {
    if (item < in_top.size() && in_top[item]) ++count;
  }
  return count;
}

}  // namespace ldpr
