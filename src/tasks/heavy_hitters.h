// Heavy-hitter identification on top of LDP frequency estimation —
// the "more advanced task built on the frequency building block" the
// paper's related-work section points to, and the setting where
// targeted poisoning hurts most (MGA exists to push attacker items
// into the published top-k).
//
// The module identifies top-k items from any frequency vector and
// quantifies how much an attack corrupted a published ranking, so the
// paper's recovery can be evaluated on the task-level outcome rather
// than raw MSE.

#ifndef LDPR_TASKS_HEAVY_HITTERS_H_
#define LDPR_TASKS_HEAVY_HITTERS_H_

#include <cstddef>
#include <vector>

#include "ldp/report.h"

namespace ldpr {

struct HeavyHitter {
  ItemId item = 0;
  double frequency = 0.0;
};

struct HeavyHitterOptions {
  /// How many hitters to report.
  size_t k = 10;
  /// Discard candidates whose estimated frequency is below this
  /// threshold (estimates can be noisy near zero).
  double min_frequency = 0.0;
};

/// The top-k items of a frequency vector, sorted by decreasing
/// frequency (ties broken by item id for determinism).  Items whose
/// frequency is <= min_frequency are excluded, so fewer than k
/// entries may be returned.
std::vector<HeavyHitter> IdentifyHeavyHitters(
    const std::vector<double>& frequencies,
    const HeavyHitterOptions& options = {});

/// Fraction of the *true* top-k that is missing from the estimate's
/// top-k (0 = ranking intact, 1 = completely displaced).  The
/// task-level counterpart of MSE for heavy-hitter publication.
double TopKDisplacement(const std::vector<double>& true_frequencies,
                        const std::vector<double>& estimated_frequencies,
                        size_t k);

/// Number of `items` present in the top-k of `frequencies` — counts
/// how many attacker targets made it into a published ranking.
size_t CountInTopK(const std::vector<double>& frequencies,
                   const std::vector<ItemId>& items, size_t k);

}  // namespace ldpr

#endif  // LDPR_TASKS_HEAVY_HITTERS_H_
