// R1 — banned nondeterminism sources.
//
// Every random draw in this codebase must flow through util/random's
// counter-seeded Rng (DeriveSeed streams), and wall-clock reads are
// confined to declared timing columns; anything else can silently
// break the bit-identical-results contract.  The token list below is
// the denylist; string literals and comments never match (the scanner
// blanked them), and `// lint: nondet-ok(<reason>)` suppresses a
// deliberate exception.

#include <string>
#include <vector>

#include "lint/lint.h"

namespace ldpr {
namespace lint {
namespace {

struct BannedToken {
  const char* token;
  const char* why;
  // Wall-clock tokens are whitelisted in sim/experiment.cc (the one
  // timing-column producer in src/) and in bench drivers.
  bool is_clock = false;
  // std::shuffle/std::sample are fine when the call visibly takes the
  // repo Rng; anything else (default URBG, raw std engine) is not.
  bool rng_arg_exempts = false;
  // Raw engines live in util/random only; everything else derives.
  bool util_random_exempts = false;
};

constexpr BannedToken kBanned[] = {
    {"std::rand", "libc PRNG with hidden global state", false, false, false},
    {"srand(", "seeds the hidden libc PRNG", false, false, false},
    {"rand(", "libc PRNG with hidden global state", false, false, false},
    {"random_device", "nondeterministic hardware entropy", false, false,
     false},
    {"std::shuffle", "ordering draw outside the seeded Rng", false, true,
     false},
    {"std::sample", "sampling draw outside the seeded Rng", false, true,
     false},
    {"lgamma", "glibc writes the process-global signgam (TSan race)", false,
     false, false},
    {"lgammaf", "glibc writes the process-global signgam (TSan race)", false,
     false, false},
    {"lgamma_r", "glibc lgamma family is banned for portability", false,
     false, false},
    {"signgam", "process-global written by glibc lgamma", false, false,
     false},
    {"mt19937", "raw std engine outside util/random", false, false, true},
    {"default_random_engine", "raw std engine outside util/random", false,
     false, true},
    {"steady_clock", "wall-clock read outside a timing column", true, false,
     false},
    {"system_clock", "wall-clock read outside a timing column", true, false,
     false},
    {"high_resolution_clock", "wall-clock read outside a timing column", true,
     false, false},
    {"time(", "libc wall-clock read", true, false, false},
    {"clock(", "libc CPU-clock read", true, false, false},
    {"gettimeofday", "libc wall-clock read", true, false, false},
    {"localtime", "wall-clock + timezone read", true, false, false},
    {"gmtime", "wall-clock read", true, false, false},
};

bool StartsWith(const std::string& s, const char* prefix) {
  return s.compare(0, std::string(prefix).size(), prefix) == 0;
}

}  // namespace

void CheckNondeterminismSources(const SourceFile& file,
                                std::vector<Finding>* out) {
  // The timing-column whitelist: sim/experiment.cc times RunSingleTrial
  // for the declared secs-per-trial columns, and bench drivers time by
  // definition.  util/random is the one home of raw std engines.
  const bool clock_whitelisted = file.path == "src/sim/experiment.cc" ||
                                 StartsWith(file.path, "bench/");
  const bool is_util_random = StartsWith(file.path, "src/util/random.");

  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    // Matched spans are blanked in a scratch copy so overlapping
    // tokens ("std::rand" then "rand(") report once.
    std::string line = file.code_lines[i];
    for (const BannedToken& banned : kBanned) {
      if (banned.is_clock && clock_whitelisted) continue;
      if (banned.util_random_exempts && is_util_random) continue;
      for (size_t pos = FindToken(line, banned.token); pos != std::string::npos;
           pos = FindToken(line, banned.token, pos)) {
        const size_t len = std::string(banned.token).size();
        if (banned.rng_arg_exempts &&
            FindToken(line, "Rng") != std::string::npos) {
          pos += len;
          continue;
        }
        out->push_back(Finding{
            file.path, i + 1, "R1",
            std::string("banned nondeterminism source '") + banned.token +
                "': " + banned.why +
                " — route randomness through util/random Rng or add "
                "`// lint: nondet-ok(<reason>)`"});
        for (size_t k = pos; k < pos + len && k < line.size(); ++k) {
          line[k] = ' ';
        }
      }
    }
  }
}

}  // namespace lint
}  // namespace ldpr
