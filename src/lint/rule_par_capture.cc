// R7 — by-reference captures written inside parallel lambdas.
//
// The class of bug TSan caught in PR 2 (concurrent writes through a
// shared global) only trips a sanitizer when a test happens to race;
// this rule rejects the pattern statically.  Inside a lambda passed
// to ParallelFor or Submit, a by-reference capture (`[&]` or `[&x]`)
// that is *written* — assignment, compound assignment, `++`/`--`, or
// a known-mutating method call — races across workers unless every
// worker touches a disjoint slot.  The one disjointness proof a token
// scanner can check is the repo's own idiom: the write target is
// indexed by the lambda's loop parameter (`partials[chunk] = ...`).
// Anything else needs a `// lint: par-capture-ok(<reason>)` pragma
// naming the synchronization (mutex, atomic, serial fast path) or an
// `R7 <path> <substring>` allowlist entry.
//
// src/util/thread_pool.cc is exempt: it IS the synchronization layer
// (its Submit lambdas hand-roll the atomics and mutexes everything
// else delegates to).  tests/ are not scanned for R7 — racy-looking
// fixtures are how the pool itself is exercised.

#include <string>
#include <vector>

#include "lint/lint.h"

namespace ldpr {
namespace lint {
namespace {

struct Pos {
  size_t index = std::string::npos;  // offset into the flattened text
};

/// Keywords that can directly precede an identifier without declaring
/// it (`return x`, `case x:`...).  Everything else in that position is
/// treated as a type token, i.e. a declaration.
bool IsNonTypeKeyword(const std::string& token) {
  for (const char* keyword :
       {"return", "throw", "case", "new", "delete", "else", "do", "goto",
        "sizeof", "typedef", "using", "namespace", "break", "continue",
        "co_return", "co_yield", "co_await", "operator", "if", "in"}) {
    if (token == keyword) return true;
  }
  return false;
}

/// Methods whose call mutates the receiver — the conservative core of
/// the "non-const method call" heuristic.
const char* const kMutatingMethods[] = {
    "push_back", "emplace_back", "pop_back", "clear",  "resize", "reserve",
    "insert",    "erase",        "assign",   "append", "swap",   "Add",
};

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  for (const std::string& candidate : v) {
    if (candidate == s) return true;
  }
  return false;
}

/// Flattens code lines into one string; `line_of(i)` recovers the
/// 1-based line from a flat offset.
struct FlatText {
  std::string text;
  std::vector<size_t> line_starts;  // offset of each line

  explicit FlatText(const std::vector<std::string>& lines) {
    for (const std::string& line : lines) {
      line_starts.push_back(text.size());
      text += line;
      text += '\n';
    }
  }

  size_t LineOf(size_t index) const {
    size_t lo = 0;
    size_t hi = line_starts.size();
    while (lo + 1 < hi) {
      const size_t mid = (lo + hi) / 2;
      if (line_starts[mid] <= index) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo + 1;
  }
};

/// Matching closer for the opener at `open` ('(' or '{' or '['),
/// or npos when unbalanced.
size_t MatchingClose(const std::string& text, size_t open) {
  const char open_c = text[open];
  const char close_c = open_c == '(' ? ')' : (open_c == '{' ? '}' : ']');
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == open_c) ++depth;
    if (text[i] == close_c && --depth == 0) return i;
  }
  return std::string::npos;
}

size_t SkipSpaces(const std::string& text, size_t i) {
  while (i < text.size() &&
         (text[i] == ' ' || text[i] == '\t' || text[i] == '\n')) {
    ++i;
  }
  return i;
}

/// One parallel lambda: its capture list, loop parameter, and body.
struct ParallelLambda {
  bool default_ref_capture = false;
  std::vector<std::string> ref_captures;    // [&x] names
  std::vector<std::string> value_captures;  // [x], [x = ...] names
  std::string loop_var;                     // first lambda parameter, or ""
  size_t body_begin = 0;                    // offset of '{' + 1
  size_t body_end = 0;                      // offset of matching '}'
};

/// Parses the lambda literal whose capture list opens at `open`
/// (text[open] == '['); false when it does not parse as a lambda.
bool ParseLambda(const std::string& text, size_t open, ParallelLambda* out) {
  const size_t close = MatchingClose(text, open);
  if (close == std::string::npos) return false;

  // Capture list: comma-split, each entry `&`, `=`, `&name`, `name`,
  // `name = init`, `this`, `*this`.
  std::string entry;
  std::vector<std::string> entries;
  int depth = 0;
  for (size_t i = open + 1; i < close; ++i) {
    const char c = text[i];
    if (c == '(' || c == '{' || c == '[' || c == '<') ++depth;
    if (c == ')' || c == '}' || c == ']' || c == '>') --depth;
    if (c == ',' && depth == 0) {
      entries.push_back(entry);
      entry.clear();
    } else {
      entry.push_back(c);
    }
  }
  entries.push_back(entry);
  for (std::string& capture : entries) {
    const size_t first = capture.find_first_not_of(" \t\n");
    if (first == std::string::npos) continue;
    const size_t last = capture.find_last_not_of(" \t\n");
    capture = capture.substr(first, last - first + 1);
    if (capture == "&") {
      out->default_ref_capture = true;
      continue;
    }
    if (capture == "=" || capture == "this" || capture == "*this") continue;
    const bool by_ref = capture[0] == '&';
    std::string name = by_ref ? capture.substr(1) : capture;
    const size_t eq = name.find('=');
    if (eq != std::string::npos) name.resize(eq);  // init capture
    while (!name.empty() && (name.back() == ' ' || name.back() == '\t')) {
      name.pop_back();
    }
    if (name.empty()) return false;
    (by_ref ? out->ref_captures : out->value_captures).push_back(name);
  }

  // Optional parameter list; the first parameter's trailing
  // identifier is the loop variable.
  size_t i = SkipSpaces(text, close + 1);
  if (i < text.size() && text[i] == '(') {
    const size_t params_close = MatchingClose(text, i);
    if (params_close == std::string::npos) return false;
    std::string first_param;
    for (size_t j = i + 1; j < params_close && text[j] != ','; ++j) {
      first_param.push_back(text[j]);
    }
    size_t end = first_param.size();
    while (end > 0 && !IsIdentChar(first_param[end - 1])) --end;
    size_t start = end;
    while (start > 0 && IsIdentChar(first_param[start - 1])) --start;
    out->loop_var = first_param.substr(start, end - start);
    i = SkipSpaces(text, params_close + 1);
  }
  // Skip `mutable`, `noexcept`, `-> ret` up to the body brace.
  while (i < text.size() && text[i] != '{') ++i;
  if (i >= text.size()) return false;
  const size_t body_close = MatchingClose(text, i);
  if (body_close == std::string::npos) return false;
  out->body_begin = i + 1;
  out->body_end = body_close;
  return true;
}

/// Identifier token ending at `end` (exclusive), or "".
std::string IdentEndingAt(const std::string& text, size_t end) {
  size_t start = end;
  while (start > 0 && IsIdentChar(text[start - 1])) --start;
  return text.substr(start, end - start);
}

/// Collects names that look declared inside [begin, end): an
/// identifier whose preceding token is another identifier (a type),
/// `>`, `&`, or `*` — `size_t i`, `auto& kv`, `std::vector<double> p`.
void CollectLocals(const std::string& text, size_t begin, size_t end,
                   std::vector<std::string>* locals) {
  for (size_t i = begin; i < end; ++i) {
    if (!IsIdentChar(text[i]) || (i > 0 && IsIdentChar(text[i - 1]))) continue;
    size_t token_end = i;
    while (token_end < end && IsIdentChar(text[token_end])) ++token_end;
    const std::string name = text.substr(i, token_end - i);
    size_t before = i;
    while (before > begin && (text[before - 1] == ' ' || text[before - 1] == '\t')) {
      --before;
    }
    bool declared = false;
    if (before > begin) {
      const char prev = text[before - 1];
      if (prev == '>' || prev == '&' || prev == '*') {
        declared = true;
      } else if (IsIdentChar(prev)) {
        declared = !IsNonTypeKeyword(IdentEndingAt(text, before));
      }
    }
    if (declared && !Contains(*locals, name)) locals->push_back(name);
    i = token_end;
  }
}

/// The written target ending at `end` (exclusive, just past the last
/// target char): an identifier with `[...]` / `.` / `->` chains, as in
/// R3's extraction.  Returns the full chain; `base` gets the leftmost
/// identifier (the object actually captured).
std::string ExtractTarget(const std::string& text, size_t end,
                          std::string* base) {
  size_t start = end;
  int brackets = 0;
  while (start > 0) {
    const char c = text[start - 1];
    if (c == ']') ++brackets;
    if (c == '[') --brackets;
    if (brackets > 0 || IsIdentChar(c) || c == ']' || c == '[' || c == '.' ||
        (c == '>' && start > 1 && text[start - 2] == '-')) {
      --start;
      if (c == '>' && text[start] == '>') --start;  // consumed '->'
    } else {
      break;
    }
  }
  const std::string target = text.substr(start, end - start);
  size_t base_end = 0;
  while (base_end < target.size() && IsIdentChar(target[base_end])) ++base_end;
  *base = target.substr(0, base_end);
  return target;
}

/// True when `op_at` in `text` is a plain assignment `=` rather than
/// a comparison or part of a compound token already handled.
bool IsPlainAssign(const std::string& text, size_t op_at) {
  if (text[op_at] != '=') return false;
  if (op_at + 1 < text.size() && text[op_at + 1] == '=') return false;
  if (op_at == 0) return false;
  const char prev = text[op_at - 1];
  if (prev == '=' || prev == '!' || prev == '<' || prev == '>') return false;
  return true;
}

void CheckLambda(const SourceFile& file, const FlatText& flat,
                 const ParallelLambda& lambda, const std::string& call,
                 std::vector<Finding>* out) {
  const std::string& text = flat.text;
  std::vector<std::string> locals;
  if (!lambda.loop_var.empty()) locals.push_back(lambda.loop_var);
  CollectLocals(text, lambda.body_begin, lambda.body_end, &locals);

  auto flag = [&](size_t at, const std::string& target,
                  const std::string& how) {
    out->push_back(Finding{
        file.path, flat.LineOf(at), "R7",
        "lambda passed to " + call + " " + how + " by-reference capture '" +
            target + "' without indexing by the loop variable" +
            (lambda.loop_var.empty() ? "" : " '" + lambda.loop_var + "'") +
            " — concurrent workers race on it; write through a "
            "loop-indexed slot, make it a local, or add "
            "`// lint: par-capture-ok(<reason>)`"});
  };

  auto is_suspect = [&](const std::string& base, const std::string& target) {
    if (base.empty() || Contains(locals, base)) return false;
    if (Contains(lambda.value_captures, base)) return false;
    if (!lambda.default_ref_capture &&
        !Contains(lambda.ref_captures, base)) {
      return false;  // not captured at all (globals are R1's business)
    }
    // Indexed by the loop variable anywhere in the chain = disjoint
    // slots, the sanctioned pattern.
    if (!lambda.loop_var.empty() &&
        FindToken(target, lambda.loop_var) != std::string::npos &&
        target != lambda.loop_var) {
      return false;
    }
    return true;
  };

  for (size_t i = lambda.body_begin; i < lambda.body_end; ++i) {
    const char c = text[i];
    // Compound assignment and plain assignment.
    bool is_write = false;
    size_t target_end = 0;
    if (c == '=' && IsPlainAssign(text, i)) {
      is_write = true;
      target_end = i;
    } else if (i + 1 < lambda.body_end && text[i + 1] == '=' &&
               (c == '+' || c == '-' || c == '*' || c == '/' || c == '|' ||
                c == '&' || c == '^' || c == '%')) {
      is_write = true;
      target_end = i;
      ++i;  // consume the '='
    } else if ((c == '+' && text[i + 1] == '+') ||
               (c == '-' && text[i + 1] == '-')) {
      // Postfix: target before.  Prefix: target after.
      size_t end = i;
      while (end > lambda.body_begin && text[end - 1] == ' ') --end;
      if (end > lambda.body_begin &&
          (IsIdentChar(text[end - 1]) || text[end - 1] == ']')) {
        is_write = true;
        target_end = end;
      } else {
        size_t start = SkipSpaces(text, i + 2);
        size_t token_end = start;
        int brackets = 0;
        while (token_end < lambda.body_end &&
               (IsIdentChar(text[token_end]) || text[token_end] == '[' ||
                text[token_end] == ']' || text[token_end] == '.' ||
                brackets > 0)) {
          if (text[token_end] == '[') ++brackets;
          if (text[token_end] == ']') --brackets;
          ++token_end;
        }
        if (token_end > start) {
          is_write = true;
          target_end = token_end;
        }
      }
      ++i;  // consume the second +/-
    }
    if (is_write) {
      std::string base;
      size_t end = target_end;
      while (end > lambda.body_begin && text[end - 1] == ' ') --end;
      const std::string target = ExtractTarget(text, end, &base);
      if (target.empty()) continue;
      // `Type name = init` is a declaration, not a write: the token
      // before the target is a type.
      size_t before = end - target.size();
      while (before > lambda.body_begin &&
             (text[before - 1] == ' ' || text[before - 1] == '\t')) {
        --before;
      }
      const char prev = before > lambda.body_begin ? text[before - 1] : '\0';
      if (prev == '>' || prev == '&' || prev == '*' ||
          (IsIdentChar(prev) &&
           !IsNonTypeKeyword(IdentEndingAt(text, before)))) {
        continue;
      }
      if (is_suspect(base, target)) flag(end, target, "writes");
      continue;
    }
    // Mutating method call: target.method( / target->method(.
    if (c == '.' ||
        (c == '-' && i + 1 < lambda.body_end && text[i + 1] == '>')) {
      const size_t name_start = c == '.' ? i + 1 : i + 2;
      size_t name_end = name_start;
      while (name_end < lambda.body_end && IsIdentChar(text[name_end])) {
        ++name_end;
      }
      if (name_end >= lambda.body_end || text[name_end] != '(') continue;
      const std::string method = text.substr(name_start, name_end - name_start);
      bool mutating = false;
      for (const char* candidate : kMutatingMethods) {
        if (method == candidate) mutating = true;
      }
      if (!mutating) continue;
      std::string base;
      const std::string target = ExtractTarget(text, i, &base);
      if (is_suspect(base, target)) {
        flag(i, target + (c == '.' ? "." : "->") + method + "()",
             "calls mutating method on");
      }
    }
  }
}

}  // namespace

void CheckParallelCaptures(const SourceFile& file,
                           std::vector<Finding>* out) {
  if (file.path == "src/util/thread_pool.cc") return;  // the sync layer itself
  const FlatText flat(file.code_lines);
  const std::string& text = flat.text;

  for (const char* call : {"ParallelFor", "Submit"}) {
    for (size_t pos = FindToken(text, call); pos != std::string::npos;
         pos = FindToken(text, call, pos + 1)) {
      size_t open = pos + std::string(call).size();
      open = SkipSpaces(text, open);
      if (open >= text.size() || text[open] != '(') continue;
      const size_t close = MatchingClose(text, open);
      if (close == std::string::npos) continue;
      // The first '[' among the arguments starts the lambda literal
      // (the repo passes lambdas inline; named callables are opaque
      // to this rule by design).
      size_t bracket = std::string::npos;
      int depth = 0;
      for (size_t i = open; i < close; ++i) {
        if (text[i] == '(') ++depth;
        if (text[i] == ')') --depth;
        if (text[i] == '[' && depth == 1) {
          bracket = i;
          break;
        }
      }
      if (bracket == std::string::npos) continue;
      ParallelLambda lambda;
      if (!ParseLambda(text, bracket, &lambda)) continue;
      if (!lambda.default_ref_capture && lambda.ref_captures.empty()) continue;
      CheckLambda(file, flat, lambda, call, out);
    }
  }
}

}  // namespace lint
}  // namespace ldpr
