// Machine-readable emitters for ldpr_lint findings.
//
// The plain `file:line: [rule] message` format stays the default for
// humans and greps; these two exist so the CI lint job can annotate
// PR diffs inline instead of burying findings in a log:
//
//   --format=sarif   SARIF 2.1.0, one run, one result per finding —
//                    uploaded to GitHub code scanning.
//   --format=github  GitHub Actions workflow commands
//                    (`::error file=...,line=...::...`) — the
//                    fallback when code-scanning upload is
//                    unavailable (forks, token scopes).
//
// Both emitters are byte-deterministic functions of the finding list
// (locked by golden tests), so SARIF diffs in CI artifacts are
// meaningful.

#ifndef LDPR_LINT_FORMAT_H_
#define LDPR_LINT_FORMAT_H_

#include <string>
#include <vector>

#include "lint/lint.h"

namespace ldpr {
namespace lint {

/// One-line description of a rule id ("R1".."R8", "allowlist"); ""
/// for unknown ids.  Single source of truth for the SARIF rule table.
std::string RuleDescription(const std::string& rule);

/// SARIF 2.1.0 document: tool driver "ldpr_lint", the full rule
/// table, one result per finding (level "error").
std::string FindingsToSarif(const std::vector<Finding>& findings);

/// GitHub Actions annotations, one `::error` command per finding,
/// terminated by a newline each.
std::string FindingsToGithub(const std::vector<Finding>& findings);

}  // namespace lint
}  // namespace ldpr

#endif  // LDPR_LINT_FORMAT_H_
