// R2 — no iteration over std::unordered_map/unordered_set in src/.
//
// Hash-table iteration order is unspecified and varies across
// libstdc++ versions, so letting it reach a sink, a table row, or a
// support-count merge silently breaks `ldpr_diff --exact`.  Keyed
// access (find/emplace/at/operator[]/count) is deterministic and
// stays allowed; what this rule flags is *walking* the container:
// range-for over it, explicit begin()/end(), or std::begin/std::end.
//
// Detection is declaration-driven: collect every identifier declared
// in this file (and its paired header) with an unordered type, then
// flag iteration syntax over those names.

#include <string>
#include <vector>

#include "lint/lint.h"

namespace ldpr {
namespace lint {
namespace {

/// Collects identifiers declared as unordered_map/unordered_set on a
/// single line: `std::unordered_map<K, V> name` (references, pointers
/// and members included; multi-line template args are rare enough to
/// skip).
void CollectUnorderedNames(const SourceFile& file,
                           std::vector<std::string>* names) {
  for (const std::string& line : file.code_lines) {
    for (const char* type : {"unordered_map", "unordered_set"}) {
      size_t pos = FindToken(line, type);
      if (pos == std::string::npos) continue;
      pos += std::string(type).size();
      // Balance the template argument list.
      if (pos >= line.size() || line[pos] != '<') continue;
      int depth = 0;
      while (pos < line.size()) {
        if (line[pos] == '<') ++depth;
        if (line[pos] == '>') {
          --depth;
          if (depth == 0) {
            ++pos;
            break;
          }
        }
        ++pos;
      }
      if (depth != 0) continue;  // args continue on the next line
      while (pos < line.size() &&
             (line[pos] == ' ' || line[pos] == '&' || line[pos] == '*')) {
        ++pos;
      }
      const size_t name_start = pos;
      while (pos < line.size() && IsIdentChar(line[pos])) ++pos;
      if (pos > name_start) {
        names->push_back(line.substr(name_start, pos - name_start));
      }
    }
  }
}

}  // namespace

void CheckUnorderedIteration(const SourceFile& file,
                             std::vector<Finding>* out) {
  std::vector<std::string> names;
  CollectUnorderedNames(file, &names);
  if (names.empty()) return;

  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& line = file.code_lines[i];
    for (const std::string& name : names) {
      bool hit = false;
      // Range-for: `for (... : name)` — a token-bounded name directly
      // after a ':' (skipping spaces) inside a line containing `for`.
      for (size_t pos = FindToken(line, name); pos != std::string::npos;
           pos = FindToken(line, name, pos + 1)) {
        size_t before = pos;
        while (before > 0 && line[before - 1] == ' ') --before;
        if (before > 0 && line[before - 1] == ':' &&
            (before < 2 || line[before - 2] != ':') &&
            FindToken(line, "for") != std::string::npos) {
          hit = true;
        }
      }
      // Iterator walk: name.begin()/end()/cbegin()/... or
      // std::begin(name)/std::end(name).
      for (const char* method :
           {".begin(", ".end(", ".cbegin(", ".cend(", ".rbegin(", ".rend("}) {
        if (FindToken(line, name + method) != std::string::npos) hit = true;
      }
      for (const char* fn : {"begin(", "end(", "cbegin(", "cend("}) {
        if (FindToken(line, std::string(fn) + name + ")") !=
            std::string::npos) {
          hit = true;
        }
      }
      if (hit) {
        out->push_back(Finding{
            file.path, i + 1, "R2",
            "iteration over unordered container '" + name +
                "': hash order must never feed output or merges — use a "
                "sorted container/key order, or add "
                "`// lint: unordered-iter-ok(<reason>)`"});
      }
    }
  }
}

}  // namespace lint
}  // namespace ldpr
