#include "lint/format.h"

namespace ldpr {
namespace lint {
namespace {

/// The rules a SARIF consumer can see, in id order.  Kept in sync
/// with lint.h's rule list; RuleDescription is the lookup.
struct RuleMeta {
  const char* id;
  const char* description;
};

constexpr RuleMeta kRules[] = {
    {"R1", "Banned nondeterminism source (rand/random_device/clock/lgamma)"},
    {"R2", "Iteration over an unordered container in src/"},
    {"R3", "Floating-point accumulation in a loop outside the exact-sum "
           "allowlist"},
    {"R4", "Test/tool registration drift between CMake and the CI matrix"},
    {"R5", "Non-canonical or missing include guard"},
    {"R6", "Layer-DAG violation in the src/ include graph"},
    {"R7", "By-reference capture written inside a parallel lambda"},
    {"R8", "Rng seeded outside the DeriveSeed discipline"},
    {"allowlist", "Stale allowlist entry that matches no finding"},
};

/// JSON string escaping (quotes, backslash, control characters).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string RuleDescription(const std::string& rule) {
  for (const RuleMeta& meta : kRules) {
    if (rule == meta.id) return meta.description;
  }
  return "";
}

std::string FindingsToSarif(const std::vector<Finding>& findings) {
  std::string out;
  out += "{\n";
  out += "  \"version\": \"2.1.0\",\n";
  out +=
      "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
      "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n";
  out += "  \"runs\": [\n";
  out += "    {\n";
  out += "      \"tool\": {\n";
  out += "        \"driver\": {\n";
  out += "          \"name\": \"ldpr_lint\",\n";
  out += "          \"informationUri\": "
         "\"https://example.invalid/ldprecover/docs/architecture\",\n";
  out += "          \"rules\": [\n";
  for (size_t i = 0; i < sizeof(kRules) / sizeof(kRules[0]); ++i) {
    out += "            {\"id\": \"" + std::string(kRules[i].id) +
           "\", \"shortDescription\": {\"text\": \"" +
           JsonEscape(kRules[i].description) + "\"}}";
    out += i + 1 < sizeof(kRules) / sizeof(kRules[0]) ? ",\n" : "\n";
  }
  out += "          ]\n";
  out += "        }\n";
  out += "      },\n";
  out += "      \"results\": [\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "        {\n";
    out += "          \"ruleId\": \"" + JsonEscape(f.rule) + "\",\n";
    out += "          \"level\": \"error\",\n";
    out += "          \"message\": {\"text\": \"" + JsonEscape(f.message) +
           "\"},\n";
    out += "          \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           JsonEscape(f.path) +
           "\"}, \"region\": {\"startLine\": " + std::to_string(f.line) +
           "}}}]\n";
    out += i + 1 < findings.size() ? "        },\n" : "        }\n";
  }
  out += "      ]\n";
  out += "    }\n";
  out += "  ]\n";
  out += "}\n";
  return out;
}

std::string FindingsToGithub(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    // Workflow-command escaping: %, CR, LF in the message body.
    std::string message = "[" + f.rule + "] " + f.message;
    std::string escaped;
    for (char c : message) {
      if (c == '%') {
        escaped += "%25";
      } else if (c == '\r') {
        escaped += "%0D";
      } else if (c == '\n') {
        escaped += "%0A";
      } else {
        escaped += c;
      }
    }
    out += "::error file=" + f.path + ",line=" + std::to_string(f.line) +
           ",title=ldpr_lint " + f.rule + "::" + escaped + "\n";
  }
  return out;
}

}  // namespace lint
}  // namespace ldpr
