// R8 — seed discipline for Rng construction.
//
// Trial streams stay independent only because every Rng is keyed by a
// counter-derived seed (util/random's DeriveSeed(seed, stream)).  A
// fresh `Rng(42)` somewhere in a trial path silently correlates with
// every other literal-42 stream, and a function taking `Rng` by value
// forks the stream — both caller and callee replay the same draws.
// So outside util/random (the one home of raw seeding) every `Rng`
// construction must visibly take a DeriveSeed(...) expression or an
// identifier whose name ends in `seed` (`trial_seed`, `config.seed`),
// and `Rng` parameters must be passed by reference or pointer.
// tests/ are exempt: fixture determinism *wants* pinned literals.
//
// Escape hatch: `// lint: seed-ok(<reason>)` or an `R8 <path>
// <substring>` allowlist entry.

#include <string>
#include <vector>

#include "lint/lint.h"

namespace ldpr {
namespace lint {
namespace {

bool StartsWith(const std::string& s, const char* prefix_cstr) {
  const std::string prefix(prefix_cstr);
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const char* suffix_cstr) {
  const std::string suffix(suffix_cstr);
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// True when the argument text of an Rng construction shows seed
/// provenance: a DeriveSeed(...) call or an identifier ending in
/// "seed" (covers `seed`, `trial_seed`, `config.seed`, `spec.seed`).
bool HasSeedEvidence(const std::string& args) {
  if (FindToken(args, "DeriveSeed") != std::string::npos) return true;
  for (size_t i = 0; i < args.size(); ++i) {
    if (!IsIdentChar(args[i]) || (i > 0 && IsIdentChar(args[i - 1]))) continue;
    size_t end = i;
    while (end < args.size() && IsIdentChar(args[end])) ++end;
    const std::string token = args.substr(i, end - i);
    std::string lowered = token;
    for (char& c : lowered) {
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    }
    if (EndsWith(lowered, "seed")) return true;
    i = end;
  }
  return false;
}

/// The balanced argument text after the '(' or '{' at `open` on
/// `line`, or "" on imbalance (multi-line constructions are rare and
/// skipped rather than mis-parsed).
std::string BalancedArgs(const std::string& line, size_t open) {
  const char open_c = line[open];
  const char close_c = open_c == '(' ? ')' : '}';
  int depth = 0;
  for (size_t i = open; i < line.size(); ++i) {
    if (line[i] == open_c) ++depth;
    if (line[i] == close_c && --depth == 0) {
      return line.substr(open + 1, i - open - 1);
    }
  }
  return "";
}

}  // namespace

void CheckSeedDiscipline(const SourceFile& file, std::vector<Finding>* out) {
  if (StartsWith(file.path, "src/util/random.")) return;  // the seed layer

  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& line = file.code_lines[i];
    for (size_t pos = FindToken(line, "Rng"); pos != std::string::npos;
         pos = FindToken(line, "Rng", pos + 1)) {
      size_t after = pos + 3;
      while (after < line.size() && line[after] == ' ') ++after;
      if (after >= line.size()) break;
      const char next = line[after];
      if (next == '&' || next == '*' || next == ':') continue;  // ref/ptr/Rng::

      // `Rng name` — a declaration: construction `Rng name(args)` /
      // `Rng name{args}`, or a by-value parameter `Rng name,` /
      // `Rng name)`.
      std::string args;
      bool have_construction = false;
      if (IsIdentChar(next)) {
        size_t name_end = after;
        while (name_end < line.size() && IsIdentChar(line[name_end])) {
          ++name_end;
        }
        size_t open = name_end;
        while (open < line.size() && line[open] == ' ') ++open;
        if (open < line.size() && (line[open] == '(' || line[open] == '{')) {
          args = BalancedArgs(line, open);
          have_construction = true;
        } else if (open < line.size() &&
                   (line[open] == ',' || line[open] == ')')) {
          out->push_back(Finding{
              file.path, i + 1, "R8",
              "Rng parameter '" + line.substr(after, name_end - after) +
                  "' is passed by value: copying an Rng forks the stream "
                  "(caller and callee replay the same draws) — take Rng& "
                  "or add `// lint: seed-ok(<reason>)`"});
          continue;
        } else {
          continue;  // `Rng name;` member declarations etc.
        }
      } else if (next == '(' || next == '{') {
        // Temporary: `Rng(expr)` / `Rng{expr}`.
        args = BalancedArgs(line, after);
        have_construction = true;
      }
      if (!have_construction) continue;
      if (HasSeedEvidence(args)) continue;
      const bool empty =
          args.find_first_not_of(" \t") == std::string::npos;
      out->push_back(Finding{
          file.path, i + 1, "R8",
          std::string("Rng constructed ") +
              (empty ? "without an explicit seed"
                     : "from '" + args + "'") +
              ": seeds must visibly derive from the trial stream — pass "
              "DeriveSeed(...) or a *_seed identifier, or add "
              "`// lint: seed-ok(<reason>)`"});
    }
  }
}

}  // namespace lint
}  // namespace ldpr
