// R4 — test registration and sanitizer-matrix consistency.
//
// The suite only protects what it runs.  This rule cross-checks four
// sources of truth that historically drift apart by hand-editing:
//   - CMakeLists.txt must register every tests/*_test.cc (the repo
//     does this with one glob; if the glob disappears, every test
//     file must be named explicitly or the rule fires);
//   - in .github/workflows/ci.yml, the TSan and ASan jobs must run
//     every test they build and build every test they run, and each
//     such test must exist on disk;
//   - every test CMakeLists links against the scenario registrations
//     (ldpr_scenarios) must appear in BOTH sanitizer matrices — the
//     registration files are exactly where new scenario code lands,
//     so they must be sanitized from day one;
//   - every tools/*.cc main must have a CMake target (a source
//     mention) and at least one CI smoke invocation (`/<tool> ...`) —
//     an unbuilt tool bit-rots, an uninvoked one regresses silently.
//
// This is a repo-level rule: it reads CMakeLists.txt and the CI
// workflow out of the scanned tree (raw lines — they are not C++),
// and has no pragma escape; fix the wiring instead.

#include <algorithm>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace ldpr {
namespace lint {
namespace {

bool EndsWith(const std::string& s, const char* suffix_cstr) {
  const std::string suffix(suffix_cstr);
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

/// All `foo_test` identifiers on a line; `runs_only` keeps just the
/// `./foo_test` invocation form.
void CollectTestNames(const std::string& line, bool runs_only,
                      std::vector<std::string>* names) {
  for (size_t i = 0; i < line.size(); ++i) {
    if (!IsIdentChar(line[i])) continue;
    size_t end = i;
    while (end < line.size() && IsIdentChar(line[end])) ++end;
    const std::string token = line.substr(i, end - i);
    if (EndsWith(token, "_test")) {
      const bool is_run = i >= 2 && line[i - 1] == '/' && line[i - 2] == '.';
      if ((runs_only ? is_run : !is_run) && !Contains(*names, token)) {
        names->push_back(token);
      }
    }
    i = end;
  }
}

/// One sanitizer job's build/run sets, sliced out of the workflow by
/// its `  <name>:` header line.
struct CiJob {
  std::string name;
  size_t header_line = 0;  // 1-based, for findings
  std::vector<std::string> built;
  std::vector<std::string> run;
};

CiJob ParseJob(const SourceFile& workflow, const std::string& job_name) {
  CiJob job;
  job.name = job_name;
  bool inside = false;
  for (size_t i = 0; i < workflow.raw_lines.size(); ++i) {
    const std::string& line = workflow.raw_lines[i];
    if (line == "  " + job_name + ":") {
      inside = true;
      job.header_line = i + 1;
      continue;
    }
    if (!inside) continue;
    // The next 2-space-indented `name:` line starts another job.
    if (line.size() > 2 && line[0] == ' ' && line[1] == ' ' && line[2] != ' ' &&
        line.back() == ':') {
      break;
    }
    CollectTestNames(line, /*runs_only=*/true, &job.run);
    CollectTestNames(line, /*runs_only=*/false, &job.built);
  }
  return job;
}

}  // namespace

void CheckTestRegistration(const LintTree& tree, std::vector<Finding>* out) {
  const SourceFile* cmake = tree.Find("CMakeLists.txt");
  const SourceFile* workflow = tree.Find(".github/workflows/ci.yml");
  if (cmake == nullptr) return;  // fixture trees without build files

  std::vector<std::string> test_files;  // names, e.g. "grr_test"
  for (const SourceFile& file : tree.files) {
    if (file.path.compare(0, 6, "tests/") == 0 &&
        EndsWith(file.path, "_test.cc")) {
      test_files.push_back(
          file.path.substr(6, file.path.size() - 6 - 3));  // strip ".cc"
    }
  }

  // (a) the registration glob — or an explicit mention of every test.
  bool has_glob = false;
  for (const std::string& line : cmake->raw_lines) {
    if (line.find("tests/*_test.cc") != std::string::npos) has_glob = true;
  }
  if (!has_glob) {
    for (const std::string& test : test_files) {
      bool mentioned = false;
      for (const std::string& line : cmake->raw_lines) {
        if (line.find("tests/" + test + ".cc") != std::string::npos) {
          mentioned = true;
        }
      }
      if (!mentioned) {
        out->push_back(Finding{
            "CMakeLists.txt", 1, "R4",
            "tests/" + test + ".cc is not registered: no tests/*_test.cc "
            "glob and no explicit add_executable source mention"});
      }
    }
  }

  // (b) every tools/*.cc main has a build target: its source file
  // must be named somewhere in CMakeLists.txt (add_executable).
  std::vector<std::string> tool_stems;
  for (const SourceFile& file : tree.files) {
    if (file.path.compare(0, 6, "tools/") == 0 && EndsWith(file.path, ".cc")) {
      tool_stems.push_back(file.path.substr(6, file.path.size() - 6 - 3));
    }
  }
  for (const std::string& tool : tool_stems) {
    bool mentioned = false;
    for (const std::string& line : cmake->raw_lines) {
      if (line.find("tools/" + tool + ".cc") != std::string::npos) {
        mentioned = true;
      }
    }
    if (!mentioned) {
      out->push_back(Finding{
          "CMakeLists.txt", 1, "R4",
          "tools/" + tool + ".cc has no CMake target: add_executable must "
          "name the source file"});
    }
  }

  // Tests linked against the scenario registrations.
  std::vector<std::string> scenario_linked;
  for (const std::string& line : cmake->raw_lines) {
    if (line.find("ldpr_scenarios") == std::string::npos) continue;
    std::vector<std::string> names;
    CollectTestNames(line, /*runs_only=*/false, &names);
    for (const std::string& name : names) {
      if (!Contains(scenario_linked, name)) scenario_linked.push_back(name);
    }
  }

  if (workflow == nullptr) return;
  for (const char* job_cstr : {"tsan", "asan"}) {
    const std::string job_name(job_cstr);
    const CiJob job = ParseJob(*workflow, job_name);
    if (job.header_line == 0) {
      out->push_back(Finding{workflow->path, 1, "R4",
                             "sanitizer job '" + job_name +
                                 "' is missing from the CI workflow"});
      continue;
    }
    for (const std::string& test : job.built) {
      if (!Contains(job.run, test)) {
        out->push_back(Finding{
            workflow->path, job.header_line, "R4",
            job_name + " job builds " + test + " but never runs it"});
      }
      if (!Contains(test_files, test)) {
        out->push_back(Finding{workflow->path, job.header_line, "R4",
                               job_name + " job names " + test +
                                   " but tests/" + test + ".cc does not exist"});
      }
    }
    for (const std::string& test : job.run) {
      if (!Contains(job.built, test)) {
        out->push_back(Finding{
            workflow->path, job.header_line, "R4",
            job_name + " job runs " + test + " without building it"});
      }
    }
    for (const std::string& test : scenario_linked) {
      if (!Contains(test_files, test)) continue;  // not a test target
      if (!Contains(job.run, test)) {
        out->push_back(Finding{
            workflow->path, job.header_line, "R4",
            "scenario-registration test " + test + " is missing from the " +
                job_name + " matrix — new scenario code must be sanitized "
                "from day one"});
      }
    }
  }

  // (c) every tool is smoke-invoked somewhere in CI: a `/<tool>`
  // occurrence followed by a non-identifier character (so ldpr does
  // not match ldpr_bench's path).
  for (const std::string& tool : tool_stems) {
    const std::string needle = "/" + tool;
    bool invoked = false;
    for (const std::string& line : workflow->raw_lines) {
      for (size_t at = line.find(needle); at != std::string::npos;
           at = line.find(needle, at + 1)) {
        const size_t after = at + needle.size();
        if (after >= line.size() || !IsIdentChar(line[after])) {
          invoked = true;
          break;
        }
      }
      if (invoked) break;
    }
    if (!invoked) {
      out->push_back(Finding{
          workflow->path, 1, "R4",
          "tools/" + tool + ".cc is never invoked by CI: add a smoke step "
          "running the built binary"});
    }
  }
}

}  // namespace lint
}  // namespace ldpr
