// The cross-TU half of ldpr_lint: the `#include` graph over src/.
//
// PR 8's rules are single-file — nothing in a token scan of one TU
// can see that src/util/ grew an upward include into src/shard/ and
// closed a layering cycle.  This module builds the quote-include
// graph from the already-scanned tree (no extra IO: include targets
// are resolved against the repo-relative paths the scanner recorded)
// and feeds rule R6, which enforces the declarative layer order
// committed as ci/lint_layers.txt: a file in src/<X>/ may include its
// own subdirectory or any subdirectory listed on an earlier line,
// nothing later.  The same graph is rendered as graphviz so the
// layering docs embed the measured picture, not a hand-drawn one.
//
// Include lines are taken from raw_lines (the scanner blanks string
// literals, which is exactly where the include path lives) but only
// on lines whose code view still carries the `#include` token — a
// commented-out include is not an edge.

#ifndef LDPR_LINT_INCLUDE_GRAPH_H_
#define LDPR_LINT_INCLUDE_GRAPH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace ldpr {
namespace lint {

/// One `#include "target"` edge out of a scanned file under src/.
/// `target` is the include string verbatim (resolved against -Isrc,
/// so "ldp/grr.h" means src/ldp/grr.h); `subdir`/`target_subdir` are
/// the first path components on each side ("" when the target is not
/// a src/ subdirectory — e.g. "gtest/gtest.h").
struct IncludeEdge {
  std::string path;    // including file, repo-relative (src/...)
  size_t line = 0;     // 1-based line of the #include
  std::string target;  // include string, src-relative
  std::string subdir;
  std::string target_subdir;
};

/// The include graph over every scanned file under src/.
struct IncludeGraph {
  std::vector<IncludeEdge> edges;  // in (path, line) scan order
};

/// Extracts the quote-include edges of all src/ files in `tree`.
/// A target subdir counts as a src/ subdir when some scanned file
/// lives under it (fixture trees) — external includes get "".
IncludeGraph BuildIncludeGraph(const LintTree& tree);

/// The committed layer order: one subdir per line, '#' comments and
/// blank lines skipped, lowest layer first.
std::vector<std::string> ParseLayerOrder(const SourceFile& layers_file);

/// Renders the subdir-level condensation of the graph as graphviz:
/// one node per src/ subdir (annotated with its layer index), one
/// edge per subdir pair labelled with the include count.  Output is
/// deterministic (sorted) so the emitted file is diff-stable.
std::string IncludeGraphDot(const IncludeGraph& graph,
                            const std::vector<std::string>& layers);

/// R6 — layer-DAG enforcement over the include graph, driven by the
/// ci/lint_layers.txt file loaded into the tree (absent = skipped,
/// so fixture trees opt in).  Findings: upward includes, includes of
/// unlisted subdirs, src/ subdirs missing from the layer file, and
/// file-level include cycles.
void CheckLayering(const LintTree& tree, std::vector<Finding>* out);

}  // namespace lint
}  // namespace ldpr

#endif  // LDPR_LINT_INCLUDE_GRAPH_H_
