// R3 — floating-point accumulation order in the hot directories.
//
// Support counts stay bit-identical across shard counts only because
// every merged sum is exact (integer-valued doubles below 2^53 —
// docs/architecture.md).  A new `double acc += ...` in a loop in
// src/ldp/, src/stream/, or src/recover/ is exactly where that
// argument silently stops holding, so each one must either live in a
// file on the exact-sum allowlist (an `R3 <file> ...` entry in
// ci/lint_allowlist.txt, asserting every fp accumulation there is an
// exact sum) or carry `// lint: fp-order-ok(<reason>)` explaining why
// regrouping is safe (e.g. a serial fixed-order loop).
//
// "Floating-point" is decided from evidence the scanner can see: the
// accumulation target is declared float/double in this file or its
// paired header, or the right-hand side contains an fp literal or an
// explicit cast to float/double.

#include <string>
#include <vector>

#include "lint/lint.h"

namespace ldpr {
namespace lint {
namespace {

bool EndsWith(const std::string& s, const char* suffix_cstr) {
  const std::string suffix(suffix_cstr);
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Collects identifiers declared with a float/double-ish type on one
/// line: `double x`, `float x`, `std::vector<double>& xs`,
/// `std::array<float, 4> xs`, `double* x`.
void CollectFpNames(const SourceFile& file, std::vector<std::string>* names) {
  for (const std::string& line : file.code_lines) {
    for (const char* type : {"double", "float"}) {
      for (size_t pos = FindToken(line, type); pos != std::string::npos;
           pos = FindToken(line, type, pos + 1)) {
        size_t after = pos + std::string(type).size();
        // Skip to the declared name through template closers,
        // ref/pointer sigils, and an optional container size arg.
        while (after < line.size() &&
               (line[after] == ' ' || line[after] == '>' ||
                line[after] == '&' || line[after] == '*' ||
                line[after] == ',' || IsIdentChar(line[after]))) {
          // `double foo` — capture foo; `vector<double, Alloc>` keeps
          // scanning past the alloc to the closer.
          if (IsIdentChar(line[after])) {
            const size_t name_start = after;
            while (after < line.size() && IsIdentChar(line[after])) ++after;
            // A name directly followed by '(' is a function/cast, not
            // a variable; "const"/type keywords are skipped.
            const std::string name = line.substr(name_start, after - name_start);
            if (name == "const" || name == "static" || name == "constexpr") {
              continue;
            }
            if (after < line.size() && line[after] == '(') break;
            // Single-letter names (helper parameters like `a`, `b`)
            // are too collision-prone for a scope-blind name table.
            if (name.size() > 1) names->push_back(name);
            break;
          }
          ++after;
        }
      }
    }
  }
}

bool Contains(const std::vector<std::string>& names, const std::string& name) {
  for (const std::string& candidate : names) {
    if (candidate == name) return true;
  }
  return false;
}

/// True when `expr` shows floating-point evidence: a `1.0`-style
/// literal, an fp cast, or a name from `fp_names`.
bool LooksFloating(const std::string& expr,
                   const std::vector<std::string>& fp_names) {
  // `1.0`-style literal: digit '.' digit with no identifier leading in.
  for (size_t i = 1; i + 1 < expr.size(); ++i) {
    const bool digits_around = expr[i] == '.' && expr[i - 1] >= '0' &&
                               expr[i - 1] <= '9' && expr[i + 1] >= '0' &&
                               expr[i + 1] <= '9';
    if (!digits_around) continue;
    size_t start = i - 1;
    while (start > 0 && (expr[start - 1] >= '0' && expr[start - 1] <= '9')) {
      --start;
    }
    if (start == 0 || !IsIdentChar(expr[start - 1])) return true;
  }
  if (FindToken(expr, "static_cast<double>") != std::string::npos) return true;
  if (FindToken(expr, "static_cast<float>") != std::string::npos) return true;
  if (FindToken(expr, "double(") != std::string::npos) return true;
  for (const std::string& name : fp_names) {
    if (FindToken(expr, name) != std::string::npos) return true;
  }
  return false;
}

/// Marks, per line, whether it sits inside a for/while loop body —
/// brace-depth tracking plus the single-statement forms (`for (...)
/// stmt;` on the same or next line).
std::vector<bool> ComputeInLoop(const std::vector<std::string>& code_lines) {
  std::vector<bool> in_loop(code_lines.size(), false);
  std::vector<int> loop_stack;  // brace depths whose scope is a loop body
  int depth = 0;
  int pending_loop_parens = 0;   // inside `for (...)` / `while (...)` header
  bool expect_loop_body = false;  // header closed; next { or stmt is the body
  for (size_t i = 0; i < code_lines.size(); ++i) {
    const std::string& line = code_lines[i];
    if (!loop_stack.empty() || expect_loop_body) in_loop[i] = true;
    for (size_t j = 0; j < line.size(); ++j) {
      const char c = line[j];
      if (pending_loop_parens > 0) {
        if (c == '(') ++pending_loop_parens;
        if (c == ')') {
          --pending_loop_parens;
          if (pending_loop_parens == 1) {  // header's own paren closed
            pending_loop_parens = 0;
            expect_loop_body = true;
            // Anything after the header on this line is loop body.
            in_loop[i] = true;
          }
        }
        continue;
      }
      if (c == '{') {
        ++depth;
        if (expect_loop_body) {
          loop_stack.push_back(depth);
          expect_loop_body = false;
        }
      } else if (c == '}') {
        if (!loop_stack.empty() && loop_stack.back() == depth) {
          loop_stack.pop_back();
        }
        --depth;
      } else if (c == ';' && expect_loop_body) {
        expect_loop_body = false;  // single-statement body ended
      } else if ((c == 'f' || c == 'w') && IsIdentChar(c)) {
        if ((FindToken(line, "for", j) == j || FindToken(line, "while", j) == j)) {
          // Start of a loop header: wait for its parens.
          pending_loop_parens = 1;
          size_t k = j + (line[j] == 'f' ? 3 : 5);
          while (k < line.size() && line[k] == ' ') ++k;
          if (k < line.size() && line[k] == '(') {
            j = k;  // the '(' increments to 2, closing back to 1 ends it
            ++pending_loop_parens;
          } else {
            pending_loop_parens = 0;  // `for` token without '(': not a loop
          }
        }
      }
    }
    if (expect_loop_body && i + 1 < code_lines.size()) {
      // Single-statement body continuing on the next line.
      in_loop[i + 1] = true;
    }
  }
  return in_loop;
}

}  // namespace

void CheckFpAccumulationOrder(const LintTree& tree, const SourceFile& file,
                              std::vector<Finding>* out) {
  if (!EndsWith(file.path, ".cc")) return;

  std::vector<std::string> fp_names;
  CollectFpNames(file, &fp_names);
  // Members are declared in the paired header (foo.cc -> foo.h).
  std::string header_path = file.path;
  header_path.replace(header_path.size() - 3, 3, ".h");
  const SourceFile* header = tree.Find(header_path);
  if (header != nullptr) CollectFpNames(*header, &fp_names);

  const std::vector<bool> in_loop = ComputeInLoop(file.code_lines);
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    if (!in_loop[i]) continue;
    const std::string& line = file.code_lines[i];
    for (const char* op : {"+=", "-="}) {
      for (size_t pos = line.find(op); pos != std::string::npos;
           pos = line.find(op, pos + 2)) {
        // Target: the identifier (with optional [index]/.member chain)
        // ending just before the operator.
        size_t end = pos;
        while (end > 0 && line[end - 1] == ' ') --end;
        size_t start = end;
        int brackets = 0;
        while (start > 0) {
          const char c = line[start - 1];
          if (c == ']') ++brackets;
          if (c == '[') --brackets;
          if (brackets > 0 || IsIdentChar(c) || c == ']' || c == '[' ||
              c == '.' || c == '_') {
            --start;
          } else {
            break;
          }
        }
        const std::string target = line.substr(start, end - start);
        std::string base = target;
        const size_t bracket = base.find('[');
        if (bracket != std::string::npos) base.resize(bracket);
        const size_t dot = base.rfind('.');
        if (dot != std::string::npos) base = base.substr(dot + 1);
        const std::string rhs = line.substr(pos + 2);
        if (!Contains(fp_names, base) && !LooksFloating(rhs, fp_names)) {
          continue;
        }
        out->push_back(Finding{
            file.path, i + 1, "R3",
            "floating-point accumulation '" + target + " " + op +
                " ...' inside a loop: regrouping across shards changes "
                "bits unless the sum is exact — add this file to the R3 "
                "exact-sum allowlist or `// lint: fp-order-ok(<reason>)`"});
      }
    }
  }
}

}  // namespace lint
}  // namespace ldpr
