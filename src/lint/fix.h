// `ldpr_lint --fix=header-guards` — mechanical rewrite of R5 guards.
//
// R5 findings are pure renames (the canonical guard is a function of
// the path), so the fix is safe to automate: replace every
// token-bounded occurrence of the wrong guard name with the canonical
// one — the #ifndef, the #define, and the trailing `#endif  // X`
// comment all reference the same identifier, so one token-wise
// replacement fixes all three and nothing else.  Headers with no
// guard at all are NOT auto-fixed (inserting one is a layout
// decision); they stay R5 findings.
//
// The CLI is dry-run by default (prints the plan, exits 1 when fixes
// are pending so it can gate) and rewrites only under --apply.  The
// rewrite is idempotent: after one application the plan is empty.

#ifndef LDPR_LINT_FIX_H_
#define LDPR_LINT_FIX_H_

#include <string>
#include <vector>

#include "lint/lint.h"

namespace ldpr {
namespace lint {

/// One planned guard rename.
struct HeaderGuardFix {
  std::string path;       // repo-relative header path
  std::string old_guard;  // current (wrong) guard identifier
  std::string new_guard;  // canonical LDPR_<PATH>_H_ identifier
};

/// The canonical guard for a src/ header path (src/ldp/grr.h ->
/// LDPR_LDP_GRR_H_).
std::string CanonicalHeaderGuard(const std::string& path);

/// Plans fixes over a scanned tree: every src/**/*.h whose first
/// #ifndef names a non-canonical guard.  Sorted by path.
std::vector<HeaderGuardFix> PlanHeaderGuardFixes(const LintTree& tree);

/// Applies one rename to a file's full text: every token-bounded
/// occurrence of old_guard (comments included — the #endif trailer
/// lives in one) becomes new_guard.  Pure function; applying twice is
/// a no-op because old_guard no longer occurs.
std::string ApplyHeaderGuardFix(const std::string& text,
                                const HeaderGuardFix& fix);

}  // namespace lint
}  // namespace ldpr

#endif  // LDPR_LINT_FIX_H_
