#include "lint/source_file.h"

#include <fstream>
#include <sstream>

namespace ldpr {
namespace lint {

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

size_t FindToken(const std::string& line, const std::string& token,
                 size_t from) {
  if (token.empty()) return std::string::npos;
  for (size_t pos = line.find(token, from); pos != std::string::npos;
       pos = line.find(token, pos + 1)) {
    const bool left_ok =
        !IsIdentChar(token.front()) || pos == 0 || !IsIdentChar(line[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = !IsIdentChar(token.back()) || end >= line.size() ||
                          !IsIdentChar(line[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string::npos;
}

bool SourceFile::SuppressedAt(size_t line, const std::string& key) const {
  for (const LintPragma& pragma : pragmas) {
    if (pragma.key != key || pragma.reason.empty()) continue;
    if (pragma.line == line) return true;
    // Standalone pragma on the line above: its own line has no code.
    if (pragma.line + 1 == line && pragma.line <= code_lines.size()) {
      const std::string& code = code_lines[pragma.line - 1];
      if (code.find_first_not_of(" \t") == std::string::npos) return true;
    }
  }
  return false;
}

namespace {

/// Parses `lint: <key>-ok(<reason>)` out of one comment's text.
void ExtractPragma(const std::string& comment, size_t line,
                   std::vector<LintPragma>* pragmas) {
  const size_t tag = comment.find("lint:");
  if (tag == std::string::npos) return;
  size_t pos = tag + 5;
  while (pos < comment.size() && comment[pos] == ' ') ++pos;
  const size_t key_start = pos;
  while (pos < comment.size() &&
         (IsIdentChar(comment[pos]) || comment[pos] == '-')) {
    ++pos;
  }
  std::string key = comment.substr(key_start, pos - key_start);
  const std::string suffix = "-ok";
  if (key.size() <= suffix.size() ||
      key.compare(key.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return;
  }
  key.resize(key.size() - suffix.size());
  if (pos >= comment.size() || comment[pos] != '(') return;
  const size_t close = comment.find(')', pos + 1);
  if (close == std::string::npos) return;
  std::string reason = comment.substr(pos + 1, close - pos - 1);
  if (reason.find_first_not_of(" \t") == std::string::npos) return;
  pragmas->push_back(LintPragma{line, std::move(key), std::move(reason)});
}

/// The lexical state machine: walks the whole text once, blanking
/// comment and literal bodies, collecting pragmas from comments.
class Scanner {
 public:
  explicit Scanner(const std::string& text) : text_(text) {}

  void Run(SourceFile* out) {
    std::string code = text_;  // blanked in place
    enum class State {
      kCode,
      kLineComment,
      kBlockComment,
      kString,
      kChar,
      kRawString,
    };
    State state = State::kCode;
    std::string raw_delim;      // for kRawString: the `)delim"` closer
    std::string comment_text;   // accumulates the current comment
    size_t comment_line = 1;    // line the current comment started on
    size_t line = 1;
    for (size_t i = 0; i < text_.size(); ++i) {
      const char c = text_[i];
      const char next = i + 1 < text_.size() ? text_[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            state = State::kLineComment;
            comment_text.clear();
            comment_line = line;
            code[i] = code[i + 1] = ' ';
            ++i;
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            comment_text.clear();
            comment_line = line;
            code[i] = code[i + 1] = ' ';
            ++i;
          } else if (c == '"' &&
                     (i == 0 || text_[i - 1] != 'R')) {
            state = State::kString;
          } else if (c == '"') {  // R"delim( ... )delim"
            state = State::kRawString;
            size_t j = i + 1;
            while (j < text_.size() && text_[j] != '(') ++j;
            raw_delim = ")" + text_.substr(i + 1, j - i - 1) + "\"";
            for (size_t k = i; k < j && k < text_.size(); ++k) code[k] = ' ';
            code[i] = '"';  // keep a quote so the line still "has" a literal
            i = j < text_.size() ? j : text_.size() - 1;
          } else if (c == '\'' &&
                     (i == 0 || !IsIdentChar(text_[i - 1]))) {
            // Identifier-adjacent ' is a digit separator (1'000), not
            // a char literal.
            state = State::kChar;
          }
          break;
        case State::kLineComment:
          if (c == '\n') {
            ExtractPragma(comment_text, comment_line, &out->pragmas);
            state = State::kCode;
          } else {
            comment_text.push_back(c);
            code[i] = ' ';
          }
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            ExtractPragma(comment_text, comment_line, &out->pragmas);
            state = State::kCode;
            code[i] = code[i + 1] = ' ';
            ++i;
          } else {
            comment_text.push_back(c);
            if (c != '\n') code[i] = ' ';
          }
          break;
        case State::kString:
          if (c == '\\' && next != '\0') {
            code[i] = code[i + 1] = ' ';
            ++i;
          } else if (c == '"') {
            state = State::kCode;
          } else if (c != '\n') {
            code[i] = ' ';
          }
          break;
        case State::kChar:
          if (c == '\\' && next != '\0') {
            code[i] = code[i + 1] = ' ';
            ++i;
          } else if (c == '\'') {
            state = State::kCode;
          } else if (c != '\n') {
            code[i] = ' ';
          }
          break;
        case State::kRawString:
          if (text_.compare(i, raw_delim.size(), raw_delim) == 0) {
            for (size_t k = i; k < i + raw_delim.size(); ++k) code[k] = ' ';
            code[i + raw_delim.size() - 1] = '"';
            i += raw_delim.size() - 1;
            state = State::kCode;
          } else if (c != '\n') {
            code[i] = ' ';
          }
          break;
      }
      if (text_[i] == '\n') ++line;
    }
    if (state == State::kLineComment) {
      ExtractPragma(comment_text, comment_line, &out->pragmas);
    }

    SplitLines(text_, &out->raw_lines);
    SplitLines(code, &out->code_lines);
  }

 private:
  static void SplitLines(const std::string& text,
                         std::vector<std::string>* lines) {
    std::string current;
    for (char c : text) {
      if (c == '\n') {
        lines->push_back(current);
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    if (!current.empty()) lines->push_back(current);
  }

  const std::string& text_;
};

}  // namespace

SourceFile ScanSource(const std::string& repo_path, const std::string& text) {
  SourceFile out;
  out.path = repo_path;
  Scanner(text).Run(&out);
  return out;
}

StatusOr<SourceFile> LoadSourceFile(const std::string& disk_path,
                                    const std::string& repo_path) {
  std::ifstream in(disk_path, std::ios::binary);
  if (!in) return NotFoundError("cannot open " + disk_path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return InternalError("read failed: " + disk_path);
  return ScanSource(repo_path, buffer.str());
}

}  // namespace lint
}  // namespace ldpr
