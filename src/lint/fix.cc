#include "lint/fix.h"

#include <algorithm>

namespace ldpr {
namespace lint {
namespace {

/// First `#ifndef X` argument in the file's code view (same "first
/// ifndef anywhere" scan R5 uses); "" when the file has none.
std::string FirstIfndefArg(const SourceFile& file) {
  for (const std::string& line : file.code_lines) {
    size_t pos = line.find_first_not_of(" \t");
    if (pos == std::string::npos || line[pos] != '#') continue;
    pos = line.find_first_not_of(" \t", pos + 1);
    if (pos == std::string::npos || line.compare(pos, 6, "ifndef") != 0) {
      continue;
    }
    pos = line.find_first_not_of(" \t", pos + 6);
    if (pos == std::string::npos) return "";
    size_t end = pos;
    while (end < line.size() && IsIdentChar(line[end])) ++end;
    return line.substr(pos, end - pos);
  }
  return "";
}

}  // namespace

std::string CanonicalHeaderGuard(const std::string& path) {
  // Mirrors rule_headers.cc's derivation: strip "src/", uppercase,
  // '/' and '.' become '_', trailing '_'.
  std::string guard = "LDPR_";
  const std::string rel =
      path.compare(0, 4, "src/") == 0 ? path.substr(4) : path;
  for (char c : rel) {
    if (c == '/' || c == '.') {
      guard.push_back('_');
    } else if (c >= 'a' && c <= 'z') {
      guard.push_back(static_cast<char>(c - 'a' + 'A'));
    } else {
      guard.push_back(c);
    }
  }
  guard.push_back('_');
  return guard;
}

std::vector<HeaderGuardFix> PlanHeaderGuardFixes(const LintTree& tree) {
  std::vector<HeaderGuardFix> fixes;
  for (const SourceFile& file : tree.files) {
    if (file.path.compare(0, 4, "src/") != 0) continue;
    if (file.path.size() < 2 ||
        file.path.compare(file.path.size() - 2, 2, ".h") != 0) {
      continue;
    }
    const std::string have = FirstIfndefArg(file);
    if (have.empty()) continue;  // guard-less: R5 finding, not fixable
    const std::string want = CanonicalHeaderGuard(file.path);
    if (have == want) continue;
    fixes.push_back(HeaderGuardFix{file.path, have, want});
  }
  std::sort(fixes.begin(), fixes.end(),
            [](const HeaderGuardFix& a, const HeaderGuardFix& b) {
              return a.path < b.path;
            });
  return fixes;
}

std::string ApplyHeaderGuardFix(const std::string& text,
                                const HeaderGuardFix& fix) {
  std::string out;
  out.reserve(text.size());
  size_t pos = 0;
  while (pos < text.size()) {
    size_t hit = text.find(fix.old_guard, pos);
    if (hit == std::string::npos) {
      out.append(text, pos, text.size() - pos);
      break;
    }
    const bool left_ok = hit == 0 || !IsIdentChar(text[hit - 1]);
    const size_t end = hit + fix.old_guard.size();
    const bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    out.append(text, pos, hit - pos);
    if (left_ok && right_ok) {
      out += fix.new_guard;
    } else {
      out.append(text, hit, fix.old_guard.size());
    }
    pos = end;
  }
  return out;
}

}  // namespace lint
}  // namespace ldpr
