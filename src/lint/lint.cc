#include "lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <tuple>

#include "lint/include_graph.h"

namespace ldpr {
namespace lint {

namespace fs = std::filesystem;

std::string FormatFinding(const Finding& finding) {
  return finding.path + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

const SourceFile* LintTree::Find(const std::string& path) const {
  for (const SourceFile& file : files) {
    if (file.path == path) return &file;
  }
  return nullptr;
}

std::string PragmaKeyForRule(const std::string& rule) {
  if (rule == "R1") return "nondet";
  if (rule == "R2") return "unordered-iter";
  if (rule == "R3") return "fp-order";
  if (rule == "R5") return "header-guard";
  if (rule == "R6") return "layering";
  if (rule == "R7") return "par-capture";
  if (rule == "R8") return "seed";
  return "";  // R4 and allowlist errors have no pragma escape
}

namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Routes one file through every per-file rule whose scope covers it.
void LintOneFile(const LintTree& tree, const SourceFile& file,
                 std::vector<Finding>* findings) {
  const bool in_src = StartsWith(file.path, "src/");
  const bool in_tools = StartsWith(file.path, "tools/");
  const bool in_bench = StartsWith(file.path, "bench/");
  const bool in_examples = StartsWith(file.path, "examples/");
  if (in_src || in_tools || in_bench || in_examples) {
    CheckNondeterminismSources(file, findings);
    // R7/R8 guard runtime code wherever it runs — the examples are
    // runnable code too, and tutorial snippets get copied verbatim.
    // tests/ stay exempt: fixtures pin literal seeds on purpose.
    CheckParallelCaptures(file, findings);
    CheckSeedDiscipline(file, findings);
  }
  if (in_src) {
    CheckUnorderedIteration(file, findings);
    if (EndsWith(file.path, ".h")) CheckHeaderGuard(file, findings);
  }
  if (StartsWith(file.path, "src/ldp/") ||
      StartsWith(file.path, "src/stream/") ||
      StartsWith(file.path, "src/recover/")) {
    CheckFpAccumulationOrder(tree, file, findings);
  }
}

struct AllowlistEntry {
  size_t line = 0;
  std::string rule;
  std::string path;
  std::string substring;
  bool used = false;
};

std::vector<AllowlistEntry> ParseAllowlist(const std::string& text) {
  std::vector<AllowlistEntry> entries;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const size_t last = line.find_last_not_of(" \t");
    line = line.substr(first, last - first + 1);

    AllowlistEntry entry;
    entry.line = line_no;
    const size_t sp1 = line.find(' ');
    const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      // Malformed entries surface as stale (they can never match).
      entry.rule = line;
      entries.push_back(entry);
      continue;
    }
    entry.rule = line.substr(0, sp1);
    entry.path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    entry.substring = line.substr(sp2 + 1);
    entries.push_back(entry);
  }
  return entries;
}

}  // namespace

LintResult LintScannedTree(const LintTree& tree,
                           const std::string& allowlist_text,
                           const std::string& allowlist_path) {
  std::vector<Finding> raw;
  for (const SourceFile& file : tree.files) {
    if (EndsWith(file.path, ".cc") || EndsWith(file.path, ".h") ||
        EndsWith(file.path, ".cpp")) {
      LintOneFile(tree, file, &raw);
    }
  }
  CheckTestRegistration(tree, &raw);
  CheckLayering(tree, &raw);

  // Pragma suppression: a finding on a line covered by its rule's
  // `<key>-ok(<reason>)` pragma is dropped.
  std::vector<Finding> unsuppressed;
  for (Finding& finding : raw) {
    const std::string key = PragmaKeyForRule(finding.rule);
    const SourceFile* file = tree.Find(finding.path);
    if (!key.empty() && file != nullptr &&
        file->SuppressedAt(finding.line, key)) {
      continue;
    }
    unsuppressed.push_back(std::move(finding));
  }

  // Allowlist suppression; every entry must still match something.
  std::vector<AllowlistEntry> entries = ParseAllowlist(allowlist_text);
  std::vector<Finding> kept;
  for (Finding& finding : unsuppressed) {
    bool suppressed = false;
    for (AllowlistEntry& entry : entries) {
      if (entry.rule == finding.rule && entry.path == finding.path &&
          finding.message.find(entry.substring) != std::string::npos) {
        entry.used = true;
        suppressed = true;  // keep scanning: several entries may match
      }
    }
    if (!suppressed) kept.push_back(std::move(finding));
  }
  for (const AllowlistEntry& entry : entries) {
    if (entry.used) continue;
    kept.push_back(Finding{
        allowlist_path.empty() ? "lint_allowlist.txt" : allowlist_path,
        entry.line, "allowlist",
        "stale allowlist entry '" + entry.rule +
            (entry.path.empty() ? "" : " " + entry.path) +
            "': no current finding matches it — delete the entry"});
  }

  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.path, a.line, a.rule, a.message) <
           std::tie(b.path, b.line, b.rule, b.message);
  });

  LintResult result;
  result.findings = std::move(kept);
  result.files_scanned = tree.files.size();
  bool has_src = false;
  for (const SourceFile& file : tree.files) {
    if (StartsWith(file.path, "src/")) has_src = true;
  }
  if (has_src) {
    const SourceFile* layers_file = tree.Find("ci/lint_layers.txt");
    std::vector<std::string> layers;
    if (layers_file != nullptr) layers = ParseLayerOrder(*layers_file);
    result.include_graph_dot = IncludeGraphDot(BuildIncludeGraph(tree), layers);
  }
  return result;
}

namespace {

/// Loads `disk` into `tree` under the repo-relative `repo_path`;
/// missing files are skipped when `optional`.
Status LoadInto(const fs::path& disk, const std::string& repo_path,
                bool optional, LintTree* tree) {
  std::error_code ec;
  if (!fs::exists(disk, ec) || ec) {
    if (optional) return Status::Ok();
    return NotFoundError("no such file or directory: " + disk.string());
  }
  auto file = LoadSourceFile(disk.string(), repo_path);
  if (!file.ok()) return file.status();
  tree->files.push_back(std::move(file).value());
  return Status::Ok();
}

}  // namespace

StatusOr<LintTree> ScanTree(const LintOptions& options) {
  LintTree tree;
  tree.repo_root = options.repo_root;
  const fs::path repo_root(options.repo_root);

  std::vector<fs::path> scan_files;
  for (const std::string& root : options.roots) {
    fs::path root_path(root);
    if (root_path.is_relative() && !options.repo_root.empty()) {
      root_path = repo_root / root_path;
    }
    std::error_code ec;
    if (fs::is_directory(root_path, ec)) {
      for (fs::recursive_directory_iterator it(root_path, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (!it->is_regular_file()) continue;
        const std::string ext = it->path().extension().string();
        if (ext == ".cc" || ext == ".h" || ext == ".cpp") {
          scan_files.push_back(it->path());
        }
      }
      if (ec) return InternalError("walking " + root_path.string() + ": " +
                                   ec.message());
    } else if (fs::is_regular_file(root_path, ec)) {
      scan_files.push_back(root_path);
    } else {
      return NotFoundError("no such file or directory: " + root);
    }
  }
  // Deterministic scan order regardless of directory-entry order.
  std::sort(scan_files.begin(), scan_files.end());

  const std::string root_prefix =
      options.repo_root.empty()
          ? ""
          : fs::path(options.repo_root).generic_string() + "/";
  for (const fs::path& path : scan_files) {
    std::string repo_path = path.generic_string();
    if (!root_prefix.empty() && StartsWith(repo_path, root_prefix)) {
      repo_path = repo_path.substr(root_prefix.size());
    }
    auto file = LoadSourceFile(path.string(), repo_path);
    if (!file.ok()) return file.status();
    tree.files.push_back(std::move(file).value());
  }

  // R4's inputs (the build registration and the CI matrix) and R6's
  // (the declared layer order).
  if (!options.repo_root.empty()) {
    Status status = LoadInto(repo_root / "CMakeLists.txt", "CMakeLists.txt",
                             /*optional=*/true, &tree);
    if (!status.ok()) return status;
    status = LoadInto(repo_root / ".github/workflows/ci.yml",
                      ".github/workflows/ci.yml", /*optional=*/true, &tree);
    if (!status.ok()) return status;
    status = LoadInto(repo_root / "ci/lint_layers.txt", "ci/lint_layers.txt",
                      /*optional=*/true, &tree);
    if (!status.ok()) return status;
  }
  return tree;
}

StatusOr<LintResult> RunLint(const LintOptions& options) {
  auto tree = ScanTree(options);
  if (!tree.ok()) return tree.status();

  std::string allowlist_text;
  if (!options.allowlist_path.empty()) {
    fs::path allowlist(options.allowlist_path);
    if (allowlist.is_relative() && !options.repo_root.empty()) {
      allowlist = fs::path(options.repo_root) / allowlist;
    }
    std::error_code ec;
    if (fs::exists(allowlist, ec) && !ec) {
      auto file = LoadSourceFile(allowlist.string(), options.allowlist_path);
      if (!file.ok()) return file.status();
      for (const std::string& line : file.value().raw_lines) {
        allowlist_text += line;
        allowlist_text += '\n';
      }
    }
  }

  return LintScannedTree(tree.value(), allowlist_text, options.allowlist_path);
}

}  // namespace lint
}  // namespace ldpr
