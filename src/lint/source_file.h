// Source model for ldpr_lint: a file loaded once, split into lines,
// with comments and string/char literals blanked out so rules match
// code tokens only (a banned identifier inside a string literal or a
// comment is not a call), and `// lint: <key>-ok(<reason>)` pragmas
// extracted from the comments before they are stripped.
//
// This is deliberately a token-lite scanner, not a parser: the same
// recursive single-pass state machine style as util/json_reader, but
// over the C++ lexical grammar (line/block comments, narrow string
// and char literals, raw strings).  Rules built on top accept the
// usual lint trade-off — a heuristic match with pragma/allowlist
// escape hatches — in exchange for zero build-graph coupling.

#ifndef LDPR_LINT_SOURCE_FILE_H_
#define LDPR_LINT_SOURCE_FILE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.h"

namespace ldpr {
namespace lint {

/// One `// lint: <key>-ok(<reason>)` suppression pragma.  The reason
/// is mandatory: a pragma without one does not suppress anything.
struct LintPragma {
  size_t line = 0;  // 1-based line the pragma comment sits on
  std::string key;  // e.g. "fp-order" for `fp-order-ok(...)`
  std::string reason;
};

/// A scanned source file.  `code_lines` parallels `raw_lines` with
/// every comment and literal body replaced by spaces (line structure
/// and column positions preserved).
struct SourceFile {
  std::string path;  // repo-relative, forward slashes
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;
  std::vector<LintPragma> pragmas;

  /// True when a `<key>-ok(...)` pragma covers 1-based `line`: the
  /// pragma sits on the line itself, or alone on the line above.
  bool SuppressedAt(size_t line, const std::string& key) const;
};

/// Reads and scans `disk_path`; `repo_path` is recorded in findings.
StatusOr<SourceFile> LoadSourceFile(const std::string& disk_path,
                                    const std::string& repo_path);

/// Scans in-memory text (fixture tests).
SourceFile ScanSource(const std::string& repo_path, const std::string& text);

/// True for [A-Za-z0-9_] — C++ identifier characters.
bool IsIdentChar(char c);

/// Finds `token` in `line` at or after `from`, requiring identifier
/// boundaries on whichever ends of the token are identifier
/// characters ("time(" needs only a left boundary).  Returns
/// std::string::npos when absent.
size_t FindToken(const std::string& line, const std::string& token,
                 size_t from = 0);

}  // namespace lint
}  // namespace ldpr

#endif  // LDPR_LINT_SOURCE_FILE_H_
