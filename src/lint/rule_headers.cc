// R5 — canonical include guards on public headers.
//
// Every header under src/ must open with the guard derived from its
// path (src/ldp/grr.h -> LDPR_LDP_GRR_H_): a wrong or duplicated
// guard silently drops declarations when two headers collide, and the
// guard is also what the generated one-TU-per-header self-containment
// target (ldpr_header_selfcontain in CMakeLists.txt) relies on to
// compile each header alone.  This rule is the static half; the build
// target is the proof.

#include <string>
#include <vector>

#include "lint/lint.h"

namespace ldpr {
namespace lint {
namespace {

std::string CanonicalGuard(const std::string& path) {
  // Strip the leading "src/"; headers elsewhere are out of scope.
  std::string guard = "LDPR_";
  const std::string rel =
      path.compare(0, 4, "src/") == 0 ? path.substr(4) : path;
  for (char c : rel) {
    if (c == '/' || c == '.') {
      guard.push_back('_');
    } else if (c >= 'a' && c <= 'z') {
      guard.push_back(static_cast<char>(c - 'a' + 'A'));
    } else {
      guard.push_back(c);
    }
  }
  guard.push_back('_');
  return guard;
}

/// The directive's argument, or "" when the line is not `#<name> X`.
std::string DirectiveArg(const std::string& line, const std::string& name) {
  size_t pos = line.find_first_not_of(" \t");
  if (pos == std::string::npos || line[pos] != '#') return "";
  pos = line.find_first_not_of(" \t", pos + 1);
  if (pos == std::string::npos || line.compare(pos, name.size(), name) != 0) {
    return "";
  }
  pos = line.find_first_not_of(" \t", pos + name.size());
  if (pos == std::string::npos) return "";
  size_t end = pos;
  while (end < line.size() && IsIdentChar(line[end])) ++end;
  return line.substr(pos, end - pos);
}

}  // namespace

void CheckHeaderGuard(const SourceFile& file, std::vector<Finding>* out) {
  const std::string want = CanonicalGuard(file.path);
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string guard = DirectiveArg(file.code_lines[i], "ifndef");
    if (guard.empty()) continue;
    if (guard != want) {
      out->push_back(Finding{
          file.path, i + 1, "R5",
          "include guard '" + guard + "' is not the canonical '" + want +
              "' for this path — colliding guards silently drop "
              "declarations"});
      return;
    }
    // The matching #define must follow on the next directive line.
    for (size_t j = i + 1; j < file.code_lines.size(); ++j) {
      const std::string& next = file.code_lines[j];
      if (next.find_first_not_of(" \t") == std::string::npos) continue;
      const std::string defined = DirectiveArg(next, "define");
      if (defined != want) {
        out->push_back(Finding{
            file.path, j + 1, "R5",
            "include guard '" + want + "' has no matching #define " + want +
                " directly after its #ifndef"});
      }
      return;
    }
    return;
  }
  out->push_back(Finding{
      file.path, 1, "R5",
      "missing include guard: expected #ifndef " + want +
          " as the first directive (self-containment contract)"});
}

}  // namespace lint
}  // namespace ldpr
