// ldpr_lint — the repo's determinism/portability linter.
//
// The core guarantee of this codebase is bit-identical results at any
// thread/shard/SIMD-backend count (docs/architecture.md).  The
// runtime half of that contract is `ldpr_diff --exact`; this is the
// static half: a rule registry over a token-lite scan of src/,
// tools/, bench/, and tests/ that rejects code which *could* violate
// the contract before it ever produces a result tree.
//
// Rules (each finding prints `file:line: [rule-id] message`):
//   R1  banned nondeterminism sources: std::rand/srand, random_device,
//       wall-clock reads outside the timing whitelist
//       (sim/experiment.cc and bench drivers), libc lgamma/signgam
//       (glibc writes a process-global — the PR 2 TSan race),
//       std::shuffle/std::sample without an explicit Rng, and raw
//       std::mt19937/default_random_engine outside util/random.
//   R2  no iteration over std::unordered_map/unordered_set in src/:
//       hash order must never feed sinks, table rows, or merges.
//       Keyed lookups (find/emplace/at/[]) are fine.
//   R3  float/double accumulation (`+=`/`-=`) inside loops in
//       src/ldp/, src/stream/, src/recover/ must sit in a file on the
//       exact-sum allowlist (ci/lint_allowlist.txt) or carry a
//       `// lint: fp-order-ok(<reason>)` pragma — regrouping fp sums
//       across shard counts changes bits unless the sums are exact.
//   R4  test registration: the CMakeLists tests/*_test.cc glob is
//       present, every test the sanitizer CI jobs build is also run
//       (and vice versa), every such test exists on disk, every test
//       linking the scenario registrations appears in both the ASan
//       and TSan matrices, and every tools/*.cc main has a CMake
//       target plus a CI smoke invocation.
//   R5  public headers in src/ carry the canonical include guard
//       (LDPR_<PATH>_H_) — the static complement of the generated
//       one-TU-per-header self-containment build check.
//   R6  the src/ include graph respects the declarative layer order
//       in ci/lint_layers.txt (one subdir per line, low to high):
//       a file may only include headers from its own or lower layers,
//       and include cycles are rejected outright.  The measured DAG
//       is emitted as DOT for the CI artifact trail.
//   R7  lambdas handed to ParallelFor/Submit must not write through a
//       by-reference capture unless the written slot is indexed by
//       the loop variable (the one sanctioned "each iteration owns
//       its slot" pattern) — anything else is a cross-iteration race
//       that TSan only catches when the schedule cooperates.
//   R8  every Rng constructed outside util/random and tests/ must be
//       seeded from DeriveSeed(...) or a *_seed identifier, and Rng
//       must never be passed by value (copying forks the stream).
//
// Escape hatches: a same/previous-line `// lint: <key>-ok(<reason>)`
// pragma (keys: nondet, unordered-iter, fp-order, header-guard,
// layering, par-capture, seed), or a `ci/lint_allowlist.txt` entry
// `<rule> <path> <substring>`.  Stale allowlist entries (matching no
// finding) are themselves findings, so suppressions cannot outlive
// the code they excuse.

#ifndef LDPR_LINT_LINT_H_
#define LDPR_LINT_LINT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "lint/source_file.h"
#include "util/status.h"

namespace ldpr {
namespace lint {

/// One rule violation.  `rule` is the stable id ("R1".."R8", or
/// "allowlist" for stale-entry errors).
struct Finding {
  std::string path;
  size_t line = 0;
  std::string rule;
  std::string message;
};

/// Renders "path:line: [rule] message" (the `file:line:` prefix makes
/// findings clickable in editors and CI logs).
std::string FormatFinding(const Finding& finding);

/// The scanned tree shared by all rules.
struct LintTree {
  std::string repo_root;  // absolute; "" when scanning fixtures only
  std::vector<SourceFile> files;

  /// Returns the scanned file at `path` (repo-relative), or nullptr.
  const SourceFile* Find(const std::string& path) const;
};

// ------------------------------------------------------------- rules
// Per-file rules append findings for one file; the driver routes
// files by directory and applies pragmas/allowlist afterwards.

void CheckNondeterminismSources(const SourceFile& file,
                                std::vector<Finding>* out);  // R1
void CheckUnorderedIteration(const SourceFile& file,
                             std::vector<Finding>* out);  // R2
void CheckFpAccumulationOrder(const LintTree& tree, const SourceFile& file,
                              std::vector<Finding>* out);  // R3
void CheckTestRegistration(const LintTree& tree,
                           std::vector<Finding>* out);  // R4 (repo-level)
void CheckHeaderGuard(const SourceFile& file,
                      std::vector<Finding>* out);  // R5
void CheckLayering(const LintTree& tree,
                   std::vector<Finding>* out);  // R6 (repo-level;
                                                // see include_graph.h)
void CheckParallelCaptures(const SourceFile& file,
                           std::vector<Finding>* out);  // R7
void CheckSeedDiscipline(const SourceFile& file,
                         std::vector<Finding>* out);  // R8

/// Pragma key a rule id answers to ("" when the rule has none).
std::string PragmaKeyForRule(const std::string& rule);

// ------------------------------------------------------------ driver

struct LintOptions {
  /// Directories (or single files) to scan, absolute or repo-relative.
  std::vector<std::string> roots;
  /// Repo root (where CMakeLists.txt and .github/ live).  R4 is
  /// skipped when empty or when the root has no CMakeLists.txt.
  std::string repo_root;
  /// Allowlist path; "" disables allowlist processing.
  std::string allowlist_path;
};

struct LintResult {
  std::vector<Finding> findings;  // sorted by (path, line, rule)
  size_t files_scanned = 0;
  /// DOT rendering of the src/ include DAG R6 measured ("" when the
  /// scan covered no src/ files).  The CLI writes it via --dot=FILE;
  /// CI attaches it as an artifact so layer drift is reviewable.
  std::string include_graph_dot;
};

/// Scans the roots (plus the repo-level inputs: CMakeLists.txt, the
/// CI workflow, ci/lint_layers.txt) into a tree without running any
/// rule — the shared front half of RunLint, also used by --fix modes
/// that need the scanned files themselves.
StatusOr<LintTree> ScanTree(const LintOptions& options);

/// Scans, runs every rule, applies pragmas and the allowlist.
/// Returns an error only for environment problems (unreadable root);
/// rule violations are findings, not errors.
StatusOr<LintResult> RunLint(const LintOptions& options);

/// Rule routing on an already-scanned tree (fixture tests use this to
/// lint in-memory files).  Applies pragmas and `allowlist_text`
/// (contents of ci/lint_allowlist.txt; "" for none).
LintResult LintScannedTree(const LintTree& tree,
                           const std::string& allowlist_text,
                           const std::string& allowlist_path);

}  // namespace lint
}  // namespace ldpr

#endif  // LDPR_LINT_LINT_H_
