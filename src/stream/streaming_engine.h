// Windowed streaming ingest engine.
//
// Reports arrive in time order from an ArrivalStream (stream/arrival.h)
// and are consumed under tumbling or sliding windows:
//
//   * The stream splits into *panes* of `stride` reports (a sliding
//     window of W reports advancing by S is P = W/S consecutive
//     panes; a tumbling window is the P = 1 case).
//   * Arrivals append into one SoA flush buffer that drains through
//     FrequencyProtocol::AccumulateSupportsBatch — the PR 6 batched
//     SIMD kernels — every kBatchFlushReports reports and at pane
//     boundaries, and simultaneously through
//     DetectionFilter::OfferStreaming, whose per-window counters are
//     closed with ResetWindow at each pane boundary.
//   * At each pane boundary the engine snapshots its cumulative
//     totals (support counts, genuine item tally, attacker /
//     suspicious counts).  A window closes once P panes beyond its
//     start snapshot exist; its aggregate is the difference of two
//     snapshots — exact, because support counts are integer sums
//     (ldp/report_batch.h) and integer-valued doubles below 2^53
//     subtract exactly.
//   * Each closing window emits an incremental frequency estimate, an
//     LDPRecover re-run on that estimate, the window's MSE against
//     its own genuine ground truth, and a detection verdict
//     (suspicious fraction above the configured threshold).
//
// Memory bound: the engine never materializes a window.  Live state
// is the flush buffer (<= kBatchFlushReports reports — the "flush
// slack") plus P+1 boundary snapshots of O(d) each: O(d * W/S)
// doubles total, independent of the stream length.  The stress test
// (tests/streaming_stress_test.cc) asserts the buffered-report bound;
// peak_buffered_reports in the summary is the witness.
//
// Determinism: the engine adds no randomness of its own — all draws
// happen inside ArrivalStream, serially in arrival order — and every
// aggregate is an exact integer sum, so StreamSummary is a pure
// function of (protocol, spec, options, seed), byte-identical at any
// thread count and identical to the batch path on the same seed: a
// single window spanning the whole stream reproduces
// Aggregator::AddAllSharded on the replayed batch bit for bit
// (tests/streaming_engine_test.cc).

#ifndef LDPR_STREAM_STREAMING_ENGINE_H_
#define LDPR_STREAM_STREAMING_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "recover/ldprecover.h"
#include "stream/arrival.h"

namespace ldpr {

/// Sentinel of StreamSummary::windows_to_detection: no attack was
/// scheduled, or no window ever crossed the detection threshold.
inline constexpr ptrdiff_t kNoDetection = -1;

/// Server-side per-window processing knobs.
struct StreamEngineOptions {
  /// A window is flagged as under attack when its filter-suspicious
  /// fraction exceeds this.  Calibrate above the genuine-only
  /// suspicion rate (ApproxGenuineSuspicionRate below) — genuine
  /// perturbed reports trip the target filter at a protocol-dependent
  /// base rate even with no attacker present.
  double detect_fraction = 0.5;
  /// Options of the per-window LDPRecover re-run.
  RecoverOptions recover;
  /// Skip the recovery re-run (mse_recovered = 0) — for equivalence
  /// tests that only exercise the aggregation path.
  bool run_recovery = true;
};

/// One closed window's aggregate.
struct WindowResult {
  size_t index = 0;         ///< emission order, 0-based
  size_t first_report = 0;  ///< stream index of the window's first report
  size_t report_count = 0;  ///< reports in the window (genuine + attacker)
  size_t attackers = 0;     ///< scheduled attacker slots (ground truth)
  size_t suspicious = 0;    ///< reports the DetectionFilter flagged
  bool detected = false;    ///< suspicious fraction above threshold
  /// MSE of the window's frequency estimate against the window's own
  /// genuine item distribution (0 when the window has no genuine
  /// reports).
  double mse_estimate = 0.0;
  /// Same after the LDPRecover re-run (0 when run_recovery is off).
  double mse_recovered = 0.0;
  /// The window's raw support counts and estimated frequencies.
  std::vector<double> support_counts;
  std::vector<double> estimate;
  /// The window's genuine item tally (ground truth).
  std::vector<uint64_t> genuine_tally;
};

/// The whole stream's result.
struct StreamSummary {
  std::vector<WindowResult> windows;
  size_t total_reports = 0;
  size_t total_attackers = 0;
  /// Whole-stream support counts: every pane accumulated exactly
  /// once, in arrival order — byte-identical to the batch path on the
  /// same replayed reports.
  std::vector<double> final_support_counts;
  /// Whole-stream genuine item tally.
  std::vector<uint64_t> final_genuine_tally;
  /// Means over the emitted windows (0 when no window emitted).
  double mean_mse_estimate = 0.0;
  double mean_mse_recovered = 0.0;
  /// Detection latency in windows: 1 means the earliest-closing
  /// window containing the attack onset already detected it;
  /// kNoDetection (-1) when no attack was scheduled or no window at
  /// or after onset detected.
  ptrdiff_t windows_to_detection = kNoDetection;
  /// High-water mark of the SoA flush buffer — the memory-bound
  /// witness (never exceeds kBatchFlushReports).
  size_t peak_buffered_reports = 0;
};

/// Runs one StreamSpec end to end.  Pure function of its arguments
/// (see the header comment); `protocol` must outlive the call and
/// match the spec's domain.
StreamSummary RunStream(const FrequencyProtocol& protocol,
                        const StreamSpec& spec,
                        const StreamEngineOptions& options, uint64_t seed);

/// Approximate probability that a *genuine* report trips a
/// DetectionFilter over r random targets — the no-attack base rate a
/// detect_fraction threshold must clear.  Uses the protocol's (p, q)
/// and the filter's protocol-specific threshold, treating target
/// supports as independent (exact for GRR and the unary family;
/// for OLH/BLH a binomial approximation of the shared-seed law,
/// computed iteratively with no libm special functions).
double ApproxGenuineSuspicionRate(const FrequencyProtocol& protocol,
                                  size_t num_targets);

}  // namespace ldpr

#endif  // LDPR_STREAM_STREAMING_ENGINE_H_
