// Deterministic arrival schedules for the windowed streaming ingest
// engine (src/stream/streaming_engine.h).
//
// A StreamSpec declares a report stream as data: how many reports
// arrive, how genuine arrivals draw their items (a fixed histogram or
// a zipf distribution whose exponent drifts across the stream), and
// where attacker-crafted reports interleave (no attack, a constant
// fraction, a mid-stream wave, or a ramping fraction).  ArrivalStream
// materializes that stream one report at a time, in arrival order,
// writing straight into SoA ReportBatch builders through the
// protocols' batched generation path.
//
// Determinism contract: the emitted stream is a pure function of
// (protocol, spec, seed).
//
//   * The genuine/attacker interleaving is *quota-based*, not
//     sampled: slot i is an attacker slot iff the scheduled density
//     integral F(k) = sum_{j<k} FractionAt(j) crosses an integer at
//     i.  The mix therefore consumes no randomness, attacker counts
//     track the scheduled density exactly (ramps yield monotone
//     per-window counts), and a naive replay of the floor arithmetic
//     reproduces the schedule bit for bit
//     (tests/streaming_scenario_test.cc).
//   * All randomness — target selection, genuine item draws, the
//     protocols' perturbation draws, MGA crafting — flows through one
//     Rng(seed) consumed serially in arrival order.  Two streams of
//     the same (protocol, spec, seed) are byte-identical however
//     their reports are later windowed, which is what makes the
//     streaming engine's single-window run byte-identical to the
//     batch path (tests/streaming_engine_test.cc).

#ifndef LDPR_STREAM_ARRIVAL_H_
#define LDPR_STREAM_ARRIVAL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "attack/mga.h"
#include "ldp/protocol.h"
#include "util/random.h"
#include "util/status.h"

namespace ldpr {

/// Shape of the attacker-fraction schedule over the stream.
enum class WaveShape {
  kNone,      ///< no attacker slots anywhere
  kConstant,  ///< flat `attacker_fraction` across the whole stream
  kWave,      ///< `attacker_fraction` inside [wave_start, wave_end)
  kRamp,      ///< density ramps linearly 0 -> `attacker_fraction`
};

const char* WaveShapeName(WaveShape shape);

/// One streaming trial declared as data.  Validated by
/// ValidateStreamSpec before any engine code runs.
struct StreamSpec {
  /// Stream length: total reports (genuine + attacker slots).
  size_t total_reports = 0;
  /// Window size W in reports.
  size_t window_reports = 0;
  /// Window stride S in reports: S == W is a tumbling window, S < W
  /// a sliding window (S must divide W so windows decompose into
  /// panes); 0 means tumbling.
  size_t stride_reports = 0;

  /// Genuine item source, fixed-histogram mode: arriving genuine
  /// users draw their item from this histogram's frequencies (a
  /// Dataset's item_counts).  Used when `zipf_segments` == 0.
  std::vector<uint64_t> item_counts;

  /// Genuine item source, drifting-zipf mode (`zipf_segments` > 0):
  /// the stream splits into `zipf_segments` equal report-index
  /// segments and a genuine arrival in segment k draws from
  /// Zipf(s_k) over `domain_size` items, with s_k interpolating
  /// zipf_s_start -> zipf_s_end.  The rank->item permutation is
  /// derived once from `zipf_shuffle_seed` and shared by every
  /// segment, so drift redistributes mass over fixed item
  /// identities.  Segment boundaries are fixed by the spec —
  /// independent of any window geometry.
  size_t domain_size = 0;
  double zipf_s_start = 1.0;
  double zipf_s_end = 1.0;
  size_t zipf_segments = 0;
  uint64_t zipf_shuffle_seed = 17;

  /// Attack schedule: MGA with `num_targets` targets (sampled once
  /// per stream) interleaved per `wave` at peak density
  /// `attacker_fraction`.
  WaveShape wave = WaveShape::kNone;
  double attacker_fraction = 0.0;
  size_t num_targets = 10;
  /// [wave_start, wave_end) report-index range of WaveShape::kWave.
  size_t wave_start = 0;
  size_t wave_end = 0;
};

/// Structural validation: positive stream/window sizes, stride
/// dividing the window, a usable item source, attacker fraction in
/// [0, 1), wave range inside the stream, targets within the domain.
Status ValidateStreamSpec(const StreamSpec& spec);

/// The spec's domain size: item_counts.size() in fixed-histogram
/// mode, `domain_size` in drifting-zipf mode.
size_t StreamDomainSize(const StreamSpec& spec);

/// Scheduled attacker density at report slot i — the pure function
/// the quota interleaving integrates.  Zero for kNone and outside a
/// kWave's range; a * i / total for kRamp.
double AttackerFractionAt(const StreamSpec& spec, size_t i);

/// First report index with positive scheduled attacker density, or
/// total_reports when the schedule never turns on.
size_t AttackOnsetReport(const StreamSpec& spec);

/// Materializes a StreamSpec's reports one arrival at a time.
class ArrivalStream {
 public:
  /// The protocol reference must outlive the stream; the spec must
  /// already validate and its domain must equal the protocol's.
  ArrivalStream(const FrequencyProtocol& protocol, const StreamSpec& spec,
                uint64_t seed);

  size_t total_reports() const { return spec_.total_reports; }
  size_t position() const { return position_; }
  bool done() const { return position_ >= spec_.total_reports; }

  /// Appends the next report in arrival order into `out` (SoA
  /// generation path) and advances.  Returns true iff the slot was an
  /// attacker slot (the report is MGA-crafted).
  bool Next(ReportBatch::Builder& out);

  /// The MGA target set the stream's attacker slots promote (sampled
  /// at construction; also what the server-side DetectionFilter
  /// watches).  Non-empty iff num_targets > 0.
  const std::vector<ItemId>& targets() const { return targets_; }

  /// Per-item tally of the *genuine* items emitted so far — the
  /// ground-truth histogram windows measure their estimates against.
  const std::vector<uint64_t>& genuine_item_tally() const { return tally_; }

  size_t attackers_emitted() const { return attackers_emitted_; }

 private:
  ItemId NextGenuineItem();

  const FrequencyProtocol& protocol_;
  const StreamSpec spec_;
  Rng rng_;
  std::vector<ItemId> targets_;
  std::unique_ptr<MgaAttack> attack_;
  // Fixed-histogram mode: one alias sampler over the histogram.
  std::unique_ptr<AliasSampler> histogram_;
  // Drifting-zipf mode: the sampler of the current segment, rebuilt
  // lazily when the stream crosses a segment boundary, plus the
  // shared rank->item permutation.
  std::unique_ptr<ZipfSampler> zipf_;
  size_t zipf_segment_ = 0;
  std::vector<ItemId> rank_to_item_;
  // Quota interleaving state: the density integral and how many
  // attacker slots it has produced.
  double density_integral_ = 0.0;
  size_t attacker_quota_used_ = 0;
  size_t attackers_emitted_ = 0;
  size_t position_ = 0;
  std::vector<uint64_t> tally_;
};

/// Reference replay: materializes the whole stream into one
/// builder-mode batch and reports which slots were attacker slots
/// (same draws as driving ArrivalStream::Next to exhaustion — this
/// *is* that loop).  The batch-path side of the streaming-vs-batch
/// equivalence tests; also handy for tools.
struct StreamReplay {
  ReportBatch reports;
  std::vector<uint8_t> is_attacker;  // one flag per report
  std::vector<ItemId> targets;
  std::vector<uint64_t> genuine_item_counts;
};
StreamReplay ReplayStream(const FrequencyProtocol& protocol,
                          const StreamSpec& spec, uint64_t seed);

}  // namespace ldpr

#endif  // LDPR_STREAM_ARRIVAL_H_
