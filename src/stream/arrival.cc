#include "stream/arrival.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace ldpr {

const char* WaveShapeName(WaveShape shape) {
  switch (shape) {
    case WaveShape::kNone:
      return "none";
    case WaveShape::kConstant:
      return "constant";
    case WaveShape::kWave:
      return "wave";
    case WaveShape::kRamp:
      return "ramp";
  }
  return "unknown";
}

size_t StreamDomainSize(const StreamSpec& spec) {
  return spec.zipf_segments > 0 ? spec.domain_size : spec.item_counts.size();
}

Status ValidateStreamSpec(const StreamSpec& spec) {
  if (spec.total_reports == 0) {
    return InvalidArgumentError("stream needs at least one report");
  }
  if (spec.window_reports == 0) {
    return InvalidArgumentError("window_reports must be >= 1");
  }
  const size_t stride =
      spec.stride_reports == 0 ? spec.window_reports : spec.stride_reports;
  if (stride > spec.window_reports) {
    return InvalidArgumentError("stride_reports must not exceed the window");
  }
  if (spec.window_reports % stride != 0) {
    return InvalidArgumentError(
        "stride_reports must divide window_reports (pane decomposition)");
  }
  if (spec.zipf_segments > 0) {
    if (!spec.item_counts.empty()) {
      return InvalidArgumentError(
          "drifting-zipf mode and item_counts are mutually exclusive");
    }
    if (spec.domain_size < 2) {
      return InvalidArgumentError(
          "drifting-zipf mode needs domain_size >= 2");
    }
    if (!(spec.zipf_s_start > 0.0) || !(spec.zipf_s_end > 0.0)) {
      return InvalidArgumentError("zipf exponents must be > 0");
    }
  } else {
    if (spec.item_counts.size() < 2) {
      return InvalidArgumentError(
          "fixed-histogram mode needs item_counts over a domain of >= 2");
    }
    const uint64_t mass = std::accumulate(spec.item_counts.begin(),
                                          spec.item_counts.end(), uint64_t{0});
    if (mass == 0) {
      return InvalidArgumentError("item_counts must have positive total mass");
    }
  }
  if (!(spec.attacker_fraction >= 0.0 && spec.attacker_fraction < 1.0)) {
    return InvalidArgumentError("attacker_fraction must be in [0, 1)");
  }
  if (spec.wave == WaveShape::kWave) {
    if (spec.wave_start > spec.wave_end ||
        spec.wave_end > spec.total_reports) {
      return InvalidArgumentError(
          "wave range must satisfy wave_start <= wave_end <= total_reports");
    }
  }
  const bool attacks = spec.wave != WaveShape::kNone &&
                       spec.attacker_fraction > 0.0;
  if (attacks && spec.num_targets == 0) {
    return InvalidArgumentError("an attack schedule needs num_targets >= 1");
  }
  if (spec.num_targets > StreamDomainSize(spec)) {
    return InvalidArgumentError("num_targets must not exceed the domain");
  }
  return Status::Ok();
}

double AttackerFractionAt(const StreamSpec& spec, size_t i) {
  switch (spec.wave) {
    case WaveShape::kNone:
      return 0.0;
    case WaveShape::kConstant:
      return spec.attacker_fraction;
    case WaveShape::kWave:
      return (i >= spec.wave_start && i < spec.wave_end)
                 ? spec.attacker_fraction
                 : 0.0;
    case WaveShape::kRamp:
      return spec.attacker_fraction * static_cast<double>(i) /
             static_cast<double>(spec.total_reports);
  }
  return 0.0;
}

size_t AttackOnsetReport(const StreamSpec& spec) {
  if (spec.attacker_fraction <= 0.0) return spec.total_reports;
  switch (spec.wave) {
    case WaveShape::kNone:
      return spec.total_reports;
    case WaveShape::kConstant:
      return 0;
    case WaveShape::kWave:
      return spec.wave_start < spec.wave_end ? spec.wave_start
                                             : spec.total_reports;
    case WaveShape::kRamp:
      // Density a*i/total is zero at slot 0 and positive from slot 1.
      return spec.total_reports > 1 ? 1 : spec.total_reports;
  }
  return spec.total_reports;
}

namespace {

// The shared rank->item permutation of drifting-zipf mode: a full
// Fisher-Yates shuffle on its own Rng, mirroring the synthetic
// dataset generators (data/synthetic.cc) so "which items are popular"
// is a spec property, independent of the arrival seed.
std::vector<ItemId> MakeRankPermutation(size_t d, uint64_t shuffle_seed) {
  std::vector<ItemId> perm(d);
  for (size_t i = 0; i < d; ++i) perm[i] = static_cast<ItemId>(i);
  Rng rng(shuffle_seed);
  for (size_t i = d - 1; i > 0; --i) {
    const size_t j = rng.UniformU64(i + 1);
    std::swap(perm[i], perm[j]);
  }
  return perm;
}

double ZipfExponentForSegment(const StreamSpec& spec, size_t segment) {
  if (spec.zipf_segments <= 1) return spec.zipf_s_start;
  const double t = static_cast<double>(segment) /
                   static_cast<double>(spec.zipf_segments - 1);
  return spec.zipf_s_start + (spec.zipf_s_end - spec.zipf_s_start) * t;
}

}  // namespace

ArrivalStream::ArrivalStream(const FrequencyProtocol& protocol,
                             const StreamSpec& spec, uint64_t seed)
    : protocol_(protocol), spec_(spec), rng_(seed) {
  LDPR_CHECK_OK(ValidateStreamSpec(spec_));
  LDPR_CHECK(StreamDomainSize(spec_) == protocol_.domain_size());

  // Targets are sampled unconditionally (when requested) so that the
  // genuine item/perturbation draws that follow are identical across
  // clean and attacked cells of one scenario: the clean cell consumes
  // the same target draws and then never crafts.
  if (spec_.num_targets > 0) {
    targets_ = MgaAttack::SampleTargets(protocol_.domain_size(),
                                        spec_.num_targets, rng_);
    attack_ = std::make_unique<MgaAttack>(targets_);
  }

  if (spec_.zipf_segments > 0) {
    rank_to_item_ =
        MakeRankPermutation(spec_.domain_size, spec_.zipf_shuffle_seed);
    zipf_ = std::make_unique<ZipfSampler>(
        spec_.domain_size, ZipfExponentForSegment(spec_, 0));
  } else {
    std::vector<double> weights(spec_.item_counts.begin(),
                                spec_.item_counts.end());
    histogram_ = std::make_unique<AliasSampler>(weights);
  }
  tally_.assign(protocol_.domain_size(), 0);
}

ItemId ArrivalStream::NextGenuineItem() {
  if (histogram_) return static_cast<ItemId>(histogram_->Sample(rng_));
  // Drifting zipf: rebuild the sampler when the stream crosses into a
  // new segment.  Segment boundaries depend only on (position, spec),
  // never on window geometry or the RNG, so the item stream is the
  // same however it is windowed.
  const size_t segment = position_ * spec_.zipf_segments / spec_.total_reports;
  if (segment != zipf_segment_) {
    zipf_segment_ = segment;
    zipf_ = std::make_unique<ZipfSampler>(
        spec_.domain_size, ZipfExponentForSegment(spec_, segment));
  }
  return rank_to_item_[zipf_->Sample(rng_)];
}

bool ArrivalStream::Next(ReportBatch::Builder& out) {
  LDPR_CHECK(!done());
  // Quota interleaving: slot i is an attacker slot iff the density
  // integral crosses an integer here.  Per-slot density < 1, so the
  // floor advances by at most one per slot.
  density_integral_ += AttackerFractionAt(spec_, position_);
  const size_t quota = static_cast<size_t>(std::floor(density_integral_));
  bool attacker = false;
  if (quota > attacker_quota_used_ && attack_ != nullptr) {
    ++attacker_quota_used_;
    ++attackers_emitted_;
    attack_->CraftBatch(protocol_, 1, rng_, out);
    attacker = true;
  } else {
    const ItemId item = NextGenuineItem();
    ++tally_[item];
    protocol_.AppendGenuineReports(item, 1, rng_, out);
  }
  ++position_;
  return attacker;
}

StreamReplay ReplayStream(const FrequencyProtocol& protocol,
                          const StreamSpec& spec, uint64_t seed) {
  ArrivalStream stream(protocol, spec, seed);
  StreamReplay replay;
  replay.is_attacker.reserve(spec.total_reports);
  ReportBatch::Builder builder(replay.reports);
  builder.Reserve(spec.total_reports);
  while (!stream.done()) {
    replay.is_attacker.push_back(stream.Next(builder) ? 1 : 0);
  }
  replay.targets = stream.targets();
  replay.genuine_item_counts = stream.genuine_item_tally();
  return replay;
}

}  // namespace ldpr
