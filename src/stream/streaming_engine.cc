#include "stream/streaming_engine.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>

#include "recover/detection.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace ldpr {

namespace {

// Cumulative engine totals at one pane boundary.  Window aggregates
// are snapshot differences: support counts are integer-valued doubles
// far below 2^53, so the subtraction is exact and per-window counts
// sum back to the stream totals bit for bit.
struct PaneSnapshot {
  std::vector<double> counts;
  std::vector<uint64_t> tally;
  size_t reports = 0;
  size_t attackers = 0;
  size_t suspicious = 0;
};

WindowResult CloseWindow(const FrequencyProtocol& protocol,
                         const StreamEngineOptions& options,
                         const LdpRecover& recover, const PaneSnapshot& start,
                         const PaneSnapshot& end, size_t index) {
  const size_t d = protocol.domain_size();
  WindowResult w;
  w.index = index;
  w.first_report = start.reports;
  w.report_count = end.reports - start.reports;
  w.attackers = end.attackers - start.attackers;
  w.suspicious = end.suspicious - start.suspicious;

  w.support_counts.resize(d);
  w.genuine_tally.resize(d);
  for (size_t v = 0; v < d; ++v) {
    w.support_counts[v] = end.counts[v] - start.counts[v];
    w.genuine_tally[v] = end.tally[v] - start.tally[v];
  }
  w.estimate = protocol.EstimateFrequencies(w.support_counts, w.report_count);

  const size_t genuine = w.report_count - w.attackers;
  if (genuine > 0) {
    std::vector<double> true_freqs(d);
    for (size_t v = 0; v < d; ++v) {
      true_freqs[v] = static_cast<double>(w.genuine_tally[v]) /
                      static_cast<double>(genuine);
    }
    w.mse_estimate = Mse(true_freqs, w.estimate);
    if (options.run_recovery) {
      w.mse_recovered = Mse(true_freqs, recover.Recover(w.estimate));
    }
  }
  w.detected =
      w.report_count > 0 &&
      static_cast<double>(w.suspicious) >
          options.detect_fraction * static_cast<double>(w.report_count);
  return w;
}

}  // namespace

StreamSummary RunStream(const FrequencyProtocol& protocol,
                        const StreamSpec& spec,
                        const StreamEngineOptions& options, uint64_t seed) {
  const size_t window = spec.window_reports;
  const size_t stride = spec.stride_reports == 0 ? window : spec.stride_reports;
  const size_t panes_per_window = window / stride;
  const size_t d = protocol.domain_size();

  ArrivalStream stream(protocol, spec, seed);
  const LdpRecover recover(protocol, options.recover);

  // The server-side filter watches the same target set the attack
  // promotes (the Detection baseline's knowledge model).  Streams
  // without targets run unfiltered.
  std::unique_ptr<DetectionFilter> filter;
  if (!stream.targets().empty()) {
    filter = std::make_unique<DetectionFilter>(protocol, stream.targets());
  }

  StreamSummary summary;
  std::vector<double> cum_counts(d, 0.0);
  size_t cum_attackers = 0;
  size_t cum_suspicious = 0;

  std::deque<PaneSnapshot> snaps;
  snaps.push_back(PaneSnapshot{std::vector<double>(d, 0.0),
                               std::vector<uint64_t>(d, 0), 0, 0, 0});
  size_t last_emitted_end = 0;

  // The one SoA flush buffer: arrivals append here, and the buffer
  // drains through the batched SIMD accumulation kernels plus the
  // filter's streaming offer — so live report storage never exceeds
  // kBatchFlushReports (the flush slack), whatever the window size.
  ReportBatch buffer;
  ReportBatch::Builder builder(buffer);
  const auto flush = [&] {
    if (buffer.empty()) return;
    protocol.AccumulateSupportsBatch(buffer, cum_counts);
    if (filter) filter->OfferStreaming(buffer);
    buffer.Clear();
  };

  while (!stream.done()) {
    if (stream.Next(builder)) ++cum_attackers;
    summary.peak_buffered_reports =
        std::max(summary.peak_buffered_reports, buffer.size());
    if (buffer.size() >= kBatchFlushReports) flush();

    const size_t pos = stream.position();
    if (pos % stride == 0 || stream.done()) {
      // Pane boundary (the final pane may be partial): drain the
      // buffer, close the filter's window, snapshot the totals.
      flush();
      if (filter) {
        cum_suspicious += filter->offered() - filter->kept();
        filter->ResetWindow();
      }
      snaps.push_back(PaneSnapshot{cum_counts, stream.genuine_item_tally(),
                                   pos, cum_attackers, cum_suspicious});
      if (snaps.size() == panes_per_window + 1) {
        summary.windows.push_back(CloseWindow(protocol, options, recover,
                                              snaps.front(), snaps.back(),
                                              summary.windows.size()));
        last_emitted_end = snaps.back().reports;
        snaps.pop_front();
      }
    }
  }

  // Sliding-window tail: when the stream ends before the last panes
  // fill a whole window (or before any window at all), emit one final
  // shortened window over the uncovered tail panes.
  if (snaps.back().reports != last_emitted_end) {
    summary.windows.push_back(CloseWindow(protocol, options, recover,
                                          snaps.front(), snaps.back(),
                                          summary.windows.size()));
  }

  summary.total_reports = stream.position();
  summary.total_attackers = cum_attackers;
  summary.final_support_counts = std::move(cum_counts);
  summary.final_genuine_tally = stream.genuine_item_tally();

  if (!summary.windows.empty()) {
    double sum_est = 0.0;
    double sum_rec = 0.0;
    for (const WindowResult& w : summary.windows) {
      // lint: fp-order-ok(serial loop in window order; never sharded)
      sum_est += w.mse_estimate;
      sum_rec += w.mse_recovered;  // lint: fp-order-ok(same serial loop)
    }
    const double n = static_cast<double>(summary.windows.size());
    summary.mean_mse_estimate = sum_est / n;
    summary.mean_mse_recovered = sum_rec / n;
  }

  // Detection latency: windows emit in closing order, so the first
  // window containing the onset report is the earliest-closing one.
  const size_t onset = AttackOnsetReport(spec);
  if (onset < spec.total_reports) {
    ptrdiff_t onset_window = -1;
    for (const WindowResult& w : summary.windows) {
      if (w.first_report <= onset && onset < w.first_report + w.report_count) {
        onset_window = static_cast<ptrdiff_t>(w.index);
        break;
      }
    }
    if (onset_window >= 0) {
      for (size_t i = static_cast<size_t>(onset_window);
           i < summary.windows.size(); ++i) {
        if (summary.windows[i].detected) {
          summary.windows_to_detection =
              static_cast<ptrdiff_t>(i) - onset_window + 1;
          break;
        }
      }
    }
  }
  return summary;
}

double ApproxGenuineSuspicionRate(const FrequencyProtocol& protocol,
                                  size_t num_targets) {
  if (num_targets == 0) return 0.0;
  const double r = static_cast<double>(num_targets);
  const double p = protocol.p();
  const double q = protocol.q();
  // Probability the reporter's own item is a target, under a uniform
  // prior over the domain — a base-rate approximation, not a per-item
  // law.
  const double f_t =
      std::min(1.0, r / static_cast<double>(protocol.domain_size()));
  switch (protocol.kind()) {
    case ProtocolKind::kGrr:
      // The report supports exactly its carried value; threshold 1.
      return f_t * (p + (r - 1.0) * q) + (1.0 - f_t) * r * q;
    case ProtocolKind::kOue:
    case ProtocolKind::kSue: {
      // All r target bits must be set; bits are independent.
      const double q_pow = std::pow(q, r - 1.0);
      return f_t * p * q_pow + (1.0 - f_t) * q_pow * q;
    }
    case ProtocolKind::kOlh:
    case ProtocolKind::kBlh: {
      // Majority rule over r targets, each hashing into the reported
      // bucket with probability ~q = 1/g (independence approximation
      // of the shared-seed law).  Binomial tail via the iterative pmf
      // recurrence — no libm special functions (glibc lgamma writes
      // the global signgam; see util/random.h).
      const size_t threshold =
          std::max<size_t>(1, (num_targets + 1) / 2);
      double pmf = std::pow(1.0 - q, r);
      double tail = 0.0;
      for (size_t k = 0; k <= num_targets; ++k) {
        // lint: fp-order-ok(serial pmf recurrence, ascending k is the contract)
        if (k >= threshold) tail += pmf;
        if (k < num_targets) {
          pmf *= (r - static_cast<double>(k)) /
                 (static_cast<double>(k) + 1.0) * (q / (1.0 - q));
        }
      }
      return std::min(1.0, tail);
    }
  }
  return 0.0;
}

}  // namespace ldpr
