// The genuine frequency estimator and its analysis (Section V-B and
// V-E of the paper).
//
// The analytical framework models the poisoned frequency f~_Z(v) as a
// mixture of the genuine f~_X(v) and malicious f~_Y(v) frequencies
// (Eq. (14)) and derives their asymptotic normal laws:
//
//   Lemma 1:  f~_Y(v)  ~  N(mu_y, sigma_y^2),
//             mu_y = (s_v - q)/(p - q),
//             sigma_y^2 = s_v (1 - s_v) / ((p - q)^2 m),
//             where s_v is the probability a crafted report supports v.
//   Lemma 2:  f~_X(v)  ~  N(f_X(v), sigma_x^2),
//             sigma_x^2 = q(1-q)/(n (p-q)^2) + f_X(v)(1-p-q)/(n (p-q)).
//   Thm 1:    f~_Z(v)  ~  N(mu_z, sigma_z^2) with the eta-weighted
//             mixture of the two.
//
// From these the paper obtains the genuine frequency estimator
// (Eq. (19)):   f~_X(v) = (1 + eta) f~_Z(v) - eta f~_Y(v),
// which is approximately unbiased (Thm 2) with variance sigma_x^2
// (Thm 3).  Theorems 4-5 bound the CLT approximation error via
// Berry-Esseen.

#ifndef LDPR_RECOVER_ESTIMATOR_H_
#define LDPR_RECOVER_ESTIMATOR_H_

#include <vector>

#include "ldp/protocol.h"

namespace ldpr {

/// Mean and variance of an asymptotically normal estimate.
struct Moments {
  double mean = 0.0;
  double variance = 0.0;
};

/// Lemma 1: asymptotic moments of the malicious frequency f~_Y(v) for
/// an item that each crafted report supports with probability
/// `support_prob`, aggregated over m malicious users.
Moments MaliciousFrequencyMoments(const FrequencyProtocol& protocol,
                                  double support_prob, size_t m);

/// Lemma 2: asymptotic moments of the genuine frequency f~_X(v) for
/// an item with true frequency `true_freq`, aggregated over n users.
Moments GenuineFrequencyMoments(const FrequencyProtocol& protocol,
                                double true_freq, size_t n);

/// Theorem 1: moments of the poisoned frequency f~_Z(v) as the
/// eta-weighted mixture of genuine and malicious moments
/// (eta = m/n).
Moments PoisonedFrequencyMoments(const Moments& genuine,
                                 const Moments& malicious, double eta);

/// Eq. (19): pointwise genuine-frequency estimator
/// (1 + eta) * poisoned - eta * malicious.  Sizes must match.
std::vector<double> RecoverGenuineFrequencies(
    const std::vector<double>& poisoned, const std::vector<double>& malicious,
    double eta);

/// Berry-Esseen bound used by Theorems 4 and 5: the CDF of the
/// normalized sum of `count` i.i.d. terms with absolute third central
/// moment `g3` and per-sample standard deviation `sigma` differs from
/// the normal CDF by at most 0.33554 (g3 + 0.415 sigma^3) /
/// (sigma^3 sqrt(count)).
double BerryEsseenBound(double g3, double sigma, size_t count);

/// Theorem 4 specialization: approximation error bound for f~_Y(v)
/// when each crafted report supports v with probability
/// `support_prob`, over m malicious users.
double MaliciousApproximationErrorBound(const FrequencyProtocol& protocol,
                                        double support_prob, size_t m);

/// Theorem 5 specialization: approximation error bound for f~_X(v)
/// for an item with true frequency `true_freq`, over n genuine users.
double GenuineApproximationErrorBound(const FrequencyProtocol& protocol,
                                      double true_freq, size_t n);

}  // namespace ldpr

#endif  // LDPR_RECOVER_ESTIMATOR_H_
