// Malicious frequency learning (Step 2 of LDPRecover, Section V-C).
//
// The server cannot observe the malicious frequencies f~_Y directly,
// but because crafted reports bypass perturbation while still passing
// through the aggregation algorithm Phi, the *expected summation* of
// malicious frequencies over the whole domain is a closed-form
// function of the protocol alone (Eq. (20)-(21)):
//
//     sum_v f~_Y(v)  =  (1 - q d) / (p - q),
//
// independent of the attacker-designed distribution P (which always
// sums to 1).  With partial knowledge of the attacker-selected item
// set T, the sum further splits across D' = D \ T (where P(v) = 0)
// and D'' = T (Eq. (28)-(29)).

#ifndef LDPR_RECOVER_MALICIOUS_STATS_H_
#define LDPR_RECOVER_MALICIOUS_STATS_H_

#include <cstddef>

#include "ldp/protocol.h"

namespace ldpr {

/// Eq. (21): the expected (and assumed) summation of malicious
/// frequencies over the full domain, (1 - q d) / (p - q).
///
/// This is the paper's one-hot support model: each crafted report is
/// treated as carrying exactly one encoded item.  It is exact for GRR
/// and for one-hot OUE crafting; for MGA-padded OUE or OLH the actual
/// crafted sum differs (see CraftedMaliciousFrequencySum), but the
/// model is what the server — ignorant of the attack — learns, and
/// the uniform-split recovery is insensitive to the absolute value
/// (a uniform offset cancels in the simplex refinement).
double ExpectedMaliciousFrequencySum(const FrequencyProtocol& protocol);

/// The *actual* expected malicious frequency sum of reports produced
/// by CraftSupportingReport(): (CraftedSupportBudget() - q d)/(p - q).
/// Coincides with Eq. (21) for GRR and OUE; for OLH it accounts for
/// hash-bucket collisions.  Exposed for analysis and tests.
double CraftedMaliciousFrequencySum(const FrequencyProtocol& protocol);

/// Eq. (28): the expected summation of malicious frequencies over a
/// sub-domain of `subdomain_size` items on which the attacker places
/// zero probability mass.
///
/// The mathematically exact value is -q * |D'| / (p - q): each of the
/// |D'| items contributes an expected estimate of (0 - q)/(p - q).
/// The paper's Eq. (28) literally writes -q*d/(p - q) (with the full
/// domain size d); pass `paper_literal` = true to reproduce that
/// variant.  The two differ by the small factor d/|D'| (the paper's
/// target sets satisfy |T| << d), and DESIGN.md section 2 records the
/// discrepancy.
double ZeroMassSubdomainSum(const FrequencyProtocol& protocol,
                            size_t subdomain_size, bool paper_literal = false);

/// Eq. (29): the remaining malicious-frequency mass attributed to the
/// attacker-selected items, i.e. full-domain sum minus the zero-mass
/// sub-domain sum.
double TargetSubdomainSum(const FrequencyProtocol& protocol,
                          size_t non_target_count,
                          bool paper_literal = false);

}  // namespace ldpr

#endif  // LDPR_RECOVER_MALICIOUS_STATS_H_
