#include "recover/kmeans_defense.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "recover/ldprecover.h"
#include "recover/simplex_projection.h"
#include "util/logging.h"

namespace ldpr {

namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    total += diff * diff;  // lint: fp-order-ok(serial per-row loop)
  }
  return total;
}

std::vector<double> MeanOfRows(const std::vector<std::vector<double>>& rows,
                               const std::vector<uint8_t>& mask,
                               uint8_t which) {
  std::vector<double> mean;
  size_t count = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (mask[i] != which) continue;
    if (mean.empty()) mean.assign(rows[i].size(), 0.0);
    // lint: fp-order-ok(serial row-order loop; never sharded)
    for (size_t j = 0; j < rows[i].size(); ++j) mean[j] += rows[i][j];
    ++count;
  }
  if (count == 0) return {};
  for (double& x : mean) x /= static_cast<double>(count);
  return mean;
}

}  // namespace

std::vector<uint8_t> TwoMeansCluster(
    const std::vector<std::vector<double>>& rows, size_t max_iterations,
    size_t restarts, Rng& rng) {
  LDPR_CHECK(rows.size() >= 2);
  const size_t n = rows.size();

  std::vector<uint8_t> best_labels(n, 0);
  double best_inertia = std::numeric_limits<double>::infinity();

  for (size_t restart = 0; restart < std::max<size_t>(1, restarts);
       ++restart) {
    // Init centroids from two distinct random rows.
    size_t i0 = rng.UniformU64(n);
    size_t i1 = rng.UniformU64(n - 1);
    if (i1 >= i0) ++i1;
    std::vector<double> c0 = rows[i0];
    std::vector<double> c1 = rows[i1];

    std::vector<uint8_t> labels(n, 0);
    for (size_t iter = 0; iter < max_iterations; ++iter) {
      bool changed = false;
      for (size_t i = 0; i < n; ++i) {
        const uint8_t label =
            SquaredDistance(rows[i], c1) < SquaredDistance(rows[i], c0) ? 1
                                                                        : 0;
        if (label != labels[i]) {
          labels[i] = label;
          changed = true;
        }
      }
      std::vector<double> m0 = MeanOfRows(rows, labels, 0);
      std::vector<double> m1 = MeanOfRows(rows, labels, 1);
      if (!m0.empty()) c0 = std::move(m0);
      if (!m1.empty()) c1 = std::move(m1);
      if (!changed) break;
    }

    double inertia = 0.0;
    for (size_t i = 0; i < n; ++i)
      // lint: fp-order-ok(serial row-order loop)
      inertia += SquaredDistance(rows[i], labels[i] ? c1 : c0);
    if (inertia < best_inertia) {
      best_inertia = inertia;
      best_labels = labels;
    }
  }

  // Canonicalize: label 1 = minority cluster.
  size_t ones = 0;
  for (uint8_t l : best_labels) ones += l;
  if (ones * 2 > n) {
    for (uint8_t& l : best_labels) l = static_cast<uint8_t>(1 - l);
  }
  return best_labels;
}

KMeansDefenseResult RunKMeansDefense(const FrequencyProtocol& protocol,
                                     const std::vector<Report>& reports,
                                     const KMeansDefenseOptions& options,
                                     Rng& rng) {
  LDPR_CHECK(!reports.empty());
  LDPR_CHECK(options.sample_rate > 0.0 && options.sample_rate <= 0.5);

  // Partition the users into ~1/xi disjoint subsets.
  const size_t n = reports.size();
  const size_t num_subsets = std::max<size_t>(
      2, static_cast<size_t>(std::llround(1.0 / options.sample_rate)));
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  for (size_t i = n; i > 1; --i)
    std::swap(order[i - 1], order[rng.UniformU64(i)]);

  std::vector<std::vector<uint32_t>> members(num_subsets);
  for (size_t i = 0; i < n; ++i) members[i % num_subsets].push_back(order[i]);

  KMeansDefenseResult result;
  result.subset_estimates.reserve(num_subsets);
  for (const auto& subset : members) {
    Aggregator agg(protocol);
    for (uint32_t idx : subset) agg.Add(reports[idx]);
    result.subset_estimates.push_back(agg.EstimateFrequencies());
  }

  result.subset_is_malicious = TwoMeansCluster(
      result.subset_estimates, options.max_iterations, options.restarts, rng);

  size_t malicious_subsets = 0;
  for (uint8_t b : result.subset_is_malicious) malicious_subsets += b;
  result.malicious_subset_fraction =
      static_cast<double>(malicious_subsets) / static_cast<double>(num_subsets);

  // Re-aggregate over the *users* of each cluster: the defense keeps
  // only the genuine cluster's reports.
  Aggregator genuine(protocol);
  Aggregator malicious(protocol);
  for (size_t s = 0; s < num_subsets; ++s) {
    Aggregator& sink = result.subset_is_malicious[s] ? malicious : genuine;
    for (uint32_t idx : members[s]) sink.Add(reports[idx]);
  }
  LDPR_CHECK(genuine.report_count() > 0);
  result.genuine_estimate = genuine.EstimateFrequencies();
  if (malicious.report_count() > 0)
    result.malicious_estimate = malicious.EstimateFrequencies();
  return result;
}

std::vector<double> LdpRecoverKm(const FrequencyProtocol& protocol,
                                 const std::vector<Report>& reports,
                                 const KMeansDefenseOptions& options,
                                 double eta, Rng& rng) {
  const KMeansDefenseResult defense =
      RunKMeansDefense(protocol, reports, options, rng);

  // Full-population (poisoned) estimate.
  Aggregator all(protocol);
  all.AddAll(reports);
  const std::vector<double> poisoned = all.EstimateFrequencies();

  if (defense.malicious_estimate.empty()) {
    // Clustering found no malicious minority: fall back to projecting
    // the poisoned estimate.
    return ProjectToSimplexKkt(poisoned);
  }

  // The minority centroid is the learnt malicious frequency vector:
  // under IPA the crafted reports are honestly perturbed, so the
  // minority cluster's LDP estimate plays the role Eq. (26)'s uniform
  // split plays in the general attack.
  RecoverOptions opts;
  opts.eta = eta;
  opts.malicious_freqs_override = defense.malicious_estimate;
  const LdpRecover recover(protocol, opts);
  return recover.Recover(poisoned);
}

}  // namespace ldpr
