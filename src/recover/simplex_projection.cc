#include "recover/simplex_projection.h"

#include <cstdint>

#include "util/logging.h"

namespace ldpr {

namespace {

// Runs the iterative KKT refinement.  When `iterations` is non-null it
// receives the number of passes performed.
std::vector<double> Project(const std::vector<double>& estimate,
                            size_t* iterations) {
  LDPR_CHECK(!estimate.empty());
  const size_t d = estimate.size();

  // active[v] == 1 iff v is still in D* (Algorithm 1 lines 6-11).
  std::vector<uint8_t> active(d, 1);
  size_t active_count = d;
  std::vector<double> out(d, 0.0);
  size_t iters = 0;

  while (true) {
    ++iters;
    LDPR_CHECK(active_count > 0);
    // mu/2 = (sum_{D*} f~ - 1) / |D*|   (Eq. (34) folded into (35)).
    double active_sum = 0.0;
    for (size_t v = 0; v < d; ++v) {
      if (active[v]) active_sum += estimate[v];
    }
    const double shift =
        (active_sum - 1.0) / static_cast<double>(active_count);

    bool any_negative = false;
    for (size_t v = 0; v < d; ++v) {
      if (!active[v]) {
        out[v] = 0.0;
        continue;
      }
      const double value = estimate[v] - shift;  // Eq. (35)
      if (value < 0.0) {
        active[v] = 0;  // move v from D* to its complement
        --active_count;
        out[v] = 0.0;
        any_negative = true;
      } else {
        out[v] = value;
      }
    }
    if (!any_negative) break;
  }

  if (iterations != nullptr) *iterations = iters;
  return out;
}

}  // namespace

std::vector<double> ProjectToSimplexKkt(const std::vector<double>& estimate) {
  return Project(estimate, nullptr);
}

size_t SimplexProjectionIterations(const std::vector<double>& estimate) {
  size_t iters = 0;
  Project(estimate, &iters);
  return iters;
}

}  // namespace ldpr
