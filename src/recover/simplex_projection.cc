#include "recover/simplex_projection.h"

#include <cstdint>
#include <numeric>

#include "util/logging.h"

namespace ldpr {

namespace {

// Runs the iterative KKT refinement.  When `iterations` is non-null it
// receives the number of passes performed.
//
// D* is kept as a compacted ascending index list, so each pass costs
// O(|D*|) rather than rescanning all d items (on MGA-boosted
// estimates most of the domain deactivates in the first passes, which
// made the dense scan O(d * passes)).  Compaction preserves ascending
// order, so the active-sum accumulates the exact same doubles in the
// exact same order as the dense scan — the output is bit-identical
// (locked in by tests/simplex_projection_test.cc's reference check).
std::vector<double> Project(const std::vector<double>& estimate,
                            size_t* iterations) {
  LDPR_CHECK(!estimate.empty());
  const size_t d = estimate.size();

  // The indices still in D*, ascending (Algorithm 1 lines 6-11).
  std::vector<uint32_t> active(d);
  std::iota(active.begin(), active.end(), 0u);
  std::vector<double> out(d, 0.0);
  size_t iters = 0;

  while (true) {
    ++iters;
    LDPR_CHECK(!active.empty());
    // mu/2 = (sum_{D*} f~ - 1) / |D*|   (Eq. (34) folded into (35)).
    double active_sum = 0.0;
    // lint: fp-order-ok(ascending active-index order is the bit-stability contract)
    for (uint32_t v : active) active_sum += estimate[v];
    const double shift =
        (active_sum - 1.0) / static_cast<double>(active.size());

    size_t kept = 0;
    for (uint32_t v : active) {
      const double value = estimate[v] - shift;  // Eq. (35)
      if (value < 0.0) {
        out[v] = 0.0;  // move v from D* to its complement
      } else {
        out[v] = value;
        active[kept++] = v;  // in-place compaction keeps ascending order
      }
    }
    const bool any_negative = kept != active.size();
    active.resize(kept);
    if (!any_negative) break;
  }

  if (iterations != nullptr) *iterations = iters;
  return out;
}

}  // namespace

std::vector<double> ProjectToSimplexKkt(const std::vector<double>& estimate) {
  return Project(estimate, nullptr);
}

size_t SimplexProjectionIterations(const std::vector<double>& estimate) {
  size_t iters = 0;
  Project(estimate, &iters);
  return iters;
}

}  // namespace ldpr
