#include "recover/malicious_stats.h"

#include "util/logging.h"

namespace ldpr {

double ExpectedMaliciousFrequencySum(const FrequencyProtocol& protocol) {
  const double p = protocol.p();
  const double q = protocol.q();
  const double d = static_cast<double>(protocol.domain_size());
  return (1.0 - q * d) / (p - q);
}

double CraftedMaliciousFrequencySum(const FrequencyProtocol& protocol) {
  const double p = protocol.p();
  const double q = protocol.q();
  const double d = static_cast<double>(protocol.domain_size());
  return (protocol.CraftedSupportBudget() - q * d) / (p - q);
}

double ZeroMassSubdomainSum(const FrequencyProtocol& protocol,
                            size_t subdomain_size, bool paper_literal) {
  LDPR_CHECK(subdomain_size <= protocol.domain_size());
  const double p = protocol.p();
  const double q = protocol.q();
  const double scale = paper_literal
                           ? static_cast<double>(protocol.domain_size())
                           : static_cast<double>(subdomain_size);
  return -q * scale / (p - q);
}

double TargetSubdomainSum(const FrequencyProtocol& protocol,
                          size_t non_target_count, bool paper_literal) {
  return ExpectedMaliciousFrequencySum(protocol) -
         ZeroMassSubdomainSum(protocol, non_target_count, paper_literal);
}

}  // namespace ldpr
