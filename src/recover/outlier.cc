#include "recover/outlier.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/metrics.h"

namespace ldpr {

std::vector<ItemId> DetectFrequencyOutliers(
    const std::vector<std::vector<double>>& history,
    const std::vector<double>& current,
    const OutlierDetectorOptions& options) {
  LDPR_CHECK(!current.empty());
  std::vector<ItemId> outliers;
  if (history.size() < options.min_history) return outliers;
  for (const auto& epoch : history) LDPR_CHECK(epoch.size() == current.size());

  for (size_t v = 0; v < current.size(); ++v) {
    RunningStat stat;
    for (const auto& epoch : history) stat.Add(epoch[v]);
    const double sd = std::max(stat.stddev(), options.stddev_floor);
    const double z = (current[v] - stat.mean()) / sd;
    if (z > options.z_threshold) outliers.push_back(static_cast<ItemId>(v));
  }
  return outliers;
}

std::vector<ItemId> TopFrequencyGainers(const std::vector<double>& baseline,
                                        const std::vector<double>& current,
                                        size_t k) {
  LDPR_CHECK(baseline.size() == current.size());
  LDPR_CHECK(k >= 1);
  k = std::min(k, current.size());
  std::vector<ItemId> order(current.size());
  std::iota(order.begin(), order.end(), 0u);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](ItemId a, ItemId b) {
                      return (current[a] - baseline[a]) >
                             (current[b] - baseline[b]);
                    });
  order.resize(k);
  return order;
}

}  // namespace ldpr
