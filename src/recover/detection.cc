#include "recover/detection.h"

#include <algorithm>
#include <cmath>

#include "ldp/grr.h"
#include "ldp/olh.h"
#include "ldp/unary.h"
#include "util/hash_family.h"
#include "util/logging.h"

namespace ldpr {

namespace {

// How many of the r targets a report must support to be flagged.
// GRR reports carry a single item, so supporting any target is the
// crafted signature.  A crafted OUE vector sets *every* target bit
// (Cao et al.'s MGA), while a genuine report hits all r only with
// probability ~q^r — so the all-targets rule separates cleanly.  OLH
// seed search packs most-but-not-always-all targets into one bucket;
// a majority rule balances catch rate against collateral damage.
size_t SuspicionThreshold(ProtocolKind kind, size_t num_targets) {
  switch (kind) {
    case ProtocolKind::kGrr:
      return 1;
    case ProtocolKind::kOue:
    case ProtocolKind::kSue:
      return num_targets;
    case ProtocolKind::kOlh:
    case ProtocolKind::kBlh:
      return std::max<size_t>(1, (num_targets + 1) / 2);
  }
  return 1;
}

}  // namespace

DetectionFilter::DetectionFilter(const FrequencyProtocol& protocol,
                                 std::vector<ItemId> targets)
    : protocol_(protocol),
      targets_(std::move(targets)),
      is_target_(protocol.domain_size(), 0),
      kept_counts_(protocol.domain_size(), 0.0) {
  LDPR_CHECK(!targets_.empty());
  for (ItemId t : targets_) {
    LDPR_CHECK(t < protocol_.domain_size());
    is_target_[t] = 1;
  }
  threshold_ = SuspicionThreshold(protocol.kind(), targets_.size());
}

bool DetectionFilter::IsSuspicious(const Report& report) const {
  size_t supported = 0;
  for (ItemId t : targets_) {
    if (protocol_.Supports(report, t)) {
      ++supported;
      if (supported >= threshold_) return true;
    }
  }
  return false;
}

void DetectionFilter::Offer(const Report& report) {
  ++offered_;
  if (IsSuspicious(report)) return;
  ++kept_;
  protocol_.AccumulateSupports(report, kept_counts_);
}

void DetectionFilter::OfferInto(const Report& report,
                                BatchingAccumulator& kept) {
  ++offered_;
  if (IsSuspicious(report)) return;
  ++kept_;
  kept.Add(report);
}

void DetectionFilter::OfferAll(const ReportBatch& batch) {
  const size_t n = batch.size();
  if (n == 0) return;
  if (batch.has_span()) {
    // AoS compat path: classify per report, accumulate the survivors
    // through the protocol's batched path — byte-identical to Offer()
    // per report (integer support sums).
    BatchingAccumulator kept(protocol_, kept_counts_);
    const Report* span = batch.span();
    for (size_t i = 0; i < n; ++i) OfferInto(span[i], kept);
    kept.Flush();
    return;
  }

  // SoA classification.  Each branch computes the same supported-
  // target count IsSuspicious does (early exit changes nothing about
  // the >= threshold outcome), reading the field arrays directly.
  const size_t d = protocol_.domain_size();
  std::vector<uint8_t> flagged(n, 0);
  switch (protocol_.kind()) {
    case ProtocolKind::kGrr: {
      // A GRR report supports exactly the value it carries;
      // threshold is 1.
      const uint32_t* values = batch.values();
      for (size_t i = 0; i < n; ++i) {
        const uint32_t v = values[i];
        LDPR_CHECK(v < d);
        flagged[i] = is_target_[v];
      }
      break;
    }
    case ProtocolKind::kOue:
    case ProtocolKind::kSue: {
      LDPR_CHECK(batch.bits_width() == d);
      const uint8_t* bits = batch.bits();
      for (size_t i = 0; i < n; ++i) {
        const uint8_t* row = bits + i * d;
        size_t supported = 0;
        for (ItemId t : targets_) supported += (row[t] != 0);
        flagged[i] = supported >= threshold_;
      }
      break;
    }
    case ProtocolKind::kOlh:
    case ProtocolKind::kBlh: {
      const auto& olh = static_cast<const OlhBase&>(protocol_);
      const FastMod mod(olh.g());
      // The target set is fixed: hoist each target's item-only xxHash
      // half out of the report loop (bit-identical hashing).
      std::vector<uint64_t> round0(targets_.size());
      for (size_t j = 0; j < targets_.size(); ++j)
        round0[j] = XxHash64Round0(targets_[j]);
      const uint64_t* seeds = batch.seeds();
      const uint32_t* values = batch.values();
      for (size_t i = 0; i < n; ++i) {
        const uint64_t seed_acc = XxHash64SeedAcc(seeds[i]);
        size_t supported = 0;
        for (size_t j = 0; j < round0.size(); ++j) {
          supported +=
              (mod(XxHash64Key8WithRound0(round0[j], seed_acc)) == values[i]);
        }
        flagged[i] = supported >= threshold_;
      }
      break;
    }
  }

  // Row-copy the survivors into a flush buffer and accumulate them
  // through the batched path — the same counts, in the same order,
  // as Offer() on each survivor.
  ReportBatch kept;
  size_t kept_here = 0;
  for (size_t i = 0; i < n; ++i) {
    if (flagged[i]) continue;
    kept.AppendFrom(batch, i);
    ++kept_here;
    if (kept.size() >= kBatchFlushReports) {
      protocol_.AccumulateSupportsBatch(kept, kept_counts_);
      kept.Clear();
    }
  }
  if (!kept.empty()) protocol_.AccumulateSupportsBatch(kept, kept_counts_);
  offered_ += n;
  kept_ += kept_here;
}

void DetectionFilter::OfferAll(const std::vector<Report>& reports) {
  OfferAll(ReportBatch(reports.data(), reports.size()));
}

void DetectionFilter::OfferExactGenuine(
    const std::vector<uint64_t>& item_counts, Rng& rng) {
  LDPR_CHECK(item_counts.size() == protocol_.domain_size());
  // Generate SoA report tiles in the canonical per-user order (the
  // Rng stream matches Perturb per user exactly) and filter each
  // tile; classification consumes no randomness, so tiling leaves the
  // draw sequence unchanged.
  ReportBatch buffer;
  ReportBatch::Builder builder(buffer);
  for (ItemId item = 0; item < item_counts.size(); ++item) {
    uint64_t remaining = item_counts[item];
    while (remaining > 0) {
      const uint64_t room = kBatchFlushReports - buffer.size();
      const uint64_t take = remaining < room ? remaining : room;
      protocol_.AppendGenuineReports(item, take, rng, builder);
      remaining -= take;
      if (buffer.size() >= kBatchFlushReports) {
        OfferAll(buffer);
        buffer.Clear();
      }
    }
  }
  if (!buffer.empty()) OfferAll(buffer);
}

void DetectionFilter::OfferSampledGrr(const std::vector<uint64_t>& item_counts,
                                      Rng& rng) {
  // A GRR report supports exactly the item it carries, so filtering
  // simply drops reports landing on targets.  Sample the full report
  // histogram exactly, then zero the target rows.
  const std::vector<double> counts =
      protocol_.SampleSupportCounts(item_counts, rng);
  uint64_t total = 0;
  for (uint64_t c : item_counts) total += c;
  offered_ += total;
  double kept_total = 0.0;
  for (size_t v = 0; v < counts.size(); ++v) {
    if (is_target_[v]) continue;
    kept_counts_[v] += counts[v];
    kept_total += counts[v];
  }
  kept_ += static_cast<size_t>(kept_total);
}

void DetectionFilter::OfferSampledOue(const std::vector<uint64_t>& item_counts,
                                      Rng& rng) {
  // OUE flags a report only when *all* r target bits are 1.  Bits are
  // independent across items, so:
  //   * a user is flagged with probability prod_t Pr[bit_t = 1]
  //     (q^r for non-target holders, (1/2) q^(r-1) for holders of a
  //     target item);
  //   * non-target bits are independent of the flag event, so kept
  //     users' non-target support counts keep the genuine law;
  //   * target bits are conditioned on "not all ones":
  //     Pr[bit_t = 1 | kept] = (Pr[bit_t = 1] - p_all) / (1 - p_all).
  const auto& oue = static_cast<const UnaryEncoding&>(protocol_);
  const double p = oue.p();
  const double q = oue.q();
  const size_t d = oue.domain_size();
  const size_t r = targets_.size();
  LDPR_CHECK(item_counts.size() == d);

  const double flag_nontarget = std::pow(q, static_cast<double>(r));
  const double flag_target =
      p * std::pow(q, static_cast<double>(r - 1));

  std::vector<uint64_t> kept_hist(d);
  uint64_t kept_total = 0;
  uint64_t offered_total = 0;
  for (size_t v = 0; v < d; ++v) {
    offered_total += item_counts[v];
    const double keep = 1.0 - (is_target_[v] ? flag_target : flag_nontarget);
    kept_hist[v] = rng.Binomial(item_counts[v], keep);
    kept_total += kept_hist[v];
  }
  offered_ += offered_total;
  kept_ += kept_total;

  for (size_t v = 0; v < d; ++v) {
    const uint64_t own = kept_hist[v];
    const uint64_t rest = kept_total - own;
    if (!is_target_[v]) {
      // Unconditioned genuine law.
      kept_counts_[v] +=
          static_cast<double>(rng.Binomial(own, p) + rng.Binomial(rest, q));
      continue;
    }
    // Target rows: condition each holder class on "kept".
    const double own_bit =
        (p - flag_target) / (1.0 - flag_target);
    const double rest_bit =
        (q - flag_nontarget) / (1.0 - flag_nontarget);
    kept_counts_[v] += static_cast<double>(rng.Binomial(own, own_bit) +
                                           rng.Binomial(rest, rest_bit));
  }
}

void DetectionFilter::OfferStreamingGenuine(
    const std::vector<uint64_t>& item_counts, Rng& rng) {
  // Per-user perturbation order (and so the RNG stream) is unchanged;
  // generation and filtering run through the SoA tile path.
  OfferExactGenuine(item_counts, rng);
}

void DetectionFilter::OfferStreaming(const ReportBatch& batch) {
  OfferAll(batch);
}

void DetectionFilter::ResetWindow() {
  total_offered_base_ += offered_;
  total_kept_base_ += kept_;
  offered_ = 0;
  kept_ = 0;
  std::fill(kept_counts_.begin(), kept_counts_.end(), 0.0);
}

void DetectionFilter::OfferSampledGenuine(
    const std::vector<uint64_t>& item_counts, Rng& rng) {
  LDPR_CHECK(item_counts.size() == protocol_.domain_size());
  switch (protocol_.kind()) {
    case ProtocolKind::kGrr:
      OfferSampledGrr(item_counts, rng);
      return;
    case ProtocolKind::kOue:
    case ProtocolKind::kSue:
      OfferSampledOue(item_counts, rng);
      return;
    case ProtocolKind::kOlh:
    case ProtocolKind::kBlh:
      // Shared hash seeds correlate target and non-target support, so
      // there is no clean product-form fast path; stream per user.
      OfferStreamingGenuine(item_counts, rng);
      return;
  }
}

void DetectionFilter::OfferSampledGenuineSharded(
    const std::vector<uint64_t>& item_counts, uint64_t seed, size_t shards) {
  const size_t d = protocol_.domain_size();
  LDPR_CHECK(item_counts.size() == d);
  uint64_t n = 0;
  for (uint64_t c : item_counts) n += c;

  // Every per-protocol sampler decomposes over user subsets (the
  // closed-form laws are products over independent users; streaming
  // is per-user by construction), so each chunk runs the ordinary
  // OfferSampledGenuine on its restricted histogram through a local
  // filter and exports its kept support counts plus — in one extra
  // trailing slot — its kept-report count.
  const std::vector<double> merged = ShardedSupportCounts(
      n, d + 1, seed, shards,
      [&](uint64_t begin, uint64_t end, Rng& rng) {
        DetectionFilter local(protocol_, targets_);
        local.OfferSampledGenuine(
            RestrictItemCountsToUsers(item_counts, begin, end), rng);
        std::vector<double> partial = std::move(local.kept_counts_);
        partial.push_back(static_cast<double>(local.kept_));
        return partial;
      });

  offered_ += n;
  kept_ += static_cast<size_t>(merged[d]);
  for (size_t v = 0; v < d; ++v) kept_counts_[v] += merged[v];
}

std::vector<double> DetectionFilter::Estimate() const {
  LDPR_CHECK(kept_ > 0);
  return protocol_.EstimateFrequencies(kept_counts_, kept_);
}

}  // namespace ldpr
