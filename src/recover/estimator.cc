#include "recover/estimator.h"

#include <cmath>

#include "util/logging.h"

namespace ldpr {

namespace {

// Absolute third central moment of the per-report support indicator
// estimate Phi_y(v) = (1_{S(y)}(v) - q)/(p - q) when the support
// probability is s: the indicator is Bernoulli(s), so
// E|X - s|^3 = s(1-s)(s^2 + (1-s)^2), scaled by 1/(p-q)^3.
double BernoulliThirdAbsMoment(double s) {
  const double t = 1.0 - s;
  return s * t * (s * s + t * t);
}

}  // namespace

Moments MaliciousFrequencyMoments(const FrequencyProtocol& protocol,
                                  double support_prob, size_t m) {
  LDPR_CHECK(m > 0);
  LDPR_CHECK(support_prob >= 0.0 && support_prob <= 1.0);
  const double p = protocol.p();
  const double q = protocol.q();
  const double diff = p - q;
  Moments out;
  out.mean = (support_prob - q) / diff;
  out.variance =
      support_prob * (1.0 - support_prob) /
      (diff * diff * static_cast<double>(m));
  return out;
}

Moments GenuineFrequencyMoments(const FrequencyProtocol& protocol,
                                double true_freq, size_t n) {
  LDPR_CHECK(n > 0);
  LDPR_CHECK(true_freq >= 0.0 && true_freq <= 1.0);
  const double p = protocol.p();
  const double q = protocol.q();
  const double diff = p - q;
  const double nd = static_cast<double>(n);
  Moments out;
  out.mean = true_freq;
  out.variance = q * (1.0 - q) / (nd * diff * diff) +
                 true_freq * (1.0 - p - q) / (nd * diff);
  return out;
}

Moments PoisonedFrequencyMoments(const Moments& genuine,
                                 const Moments& malicious, double eta) {
  LDPR_CHECK(eta >= 0.0);
  const double w = 1.0 + eta;
  Moments out;
  out.mean = genuine.mean / w + eta * malicious.mean / w;
  out.variance =
      genuine.variance / (w * w) + eta * eta * malicious.variance / (w * w);
  return out;
}

std::vector<double> RecoverGenuineFrequencies(
    const std::vector<double>& poisoned, const std::vector<double>& malicious,
    double eta) {
  LDPR_CHECK(poisoned.size() == malicious.size());
  LDPR_CHECK(eta >= 0.0);
  std::vector<double> out(poisoned.size());
  for (size_t v = 0; v < poisoned.size(); ++v)
    out[v] = (1.0 + eta) * poisoned[v] - eta * malicious[v];
  return out;
}

double BerryEsseenBound(double g3, double sigma, size_t count) {
  LDPR_CHECK(sigma > 0.0);
  LDPR_CHECK(count > 0);
  const double s3 = sigma * sigma * sigma;
  return 0.33554 * (g3 + 0.415 * s3) /
         (s3 * std::sqrt(static_cast<double>(count)));
}

double MaliciousApproximationErrorBound(const FrequencyProtocol& protocol,
                                        double support_prob, size_t m) {
  const double p = protocol.p();
  const double q = protocol.q();
  const double diff = p - q;
  // Per-report standard deviation and third absolute moment of
  // Phi_y(v); the common 1/(p-q)^3 scale cancels in the ratio, so we
  // work with the raw Bernoulli moments.
  const double var = support_prob * (1.0 - support_prob);
  if (var <= 0.0) return 0.0;  // degenerate: the CLT is exact (constant)
  const double sigma = std::sqrt(var) / diff;
  const double g3 = BernoulliThirdAbsMoment(support_prob) / (diff * diff * diff);
  return BerryEsseenBound(g3, sigma, m);
}

double GenuineApproximationErrorBound(const FrequencyProtocol& protocol,
                                      double true_freq, size_t n) {
  const double p = protocol.p();
  const double q = protocol.q();
  const double diff = p - q;
  // A genuine report for an item with frequency f supports that item
  // with marginal probability s = f*p + (1-f)*q.
  const double s = true_freq * p + (1.0 - true_freq) * q;
  const double var = s * (1.0 - s);
  if (var <= 0.0) return 0.0;
  const double sigma = std::sqrt(var) / diff;
  const double g3 = BernoulliThirdAbsMoment(s) / (diff * diff * diff);
  return BerryEsseenBound(g3, sigma, n);
}

}  // namespace ldpr
