// Historical-frequency outlier detection (Section V-D of the paper).
//
// Targeted attacks inflate their targets enough to make them
// statistical outliers against the item's own history.  The paper
// points to time-series outlier detectors as the source of
// LDPRecover*'s partial knowledge; this module provides a robust
// z-score detector over per-item frequency histories, which suffices
// to recover the target set in the MGA regimes the paper evaluates
// (see tests/outlier_test.cc and examples/emoji_survey.cc).

#ifndef LDPR_RECOVER_OUTLIER_H_
#define LDPR_RECOVER_OUTLIER_H_

#include <cstddef>
#include <vector>

#include "ldp/report.h"

namespace ldpr {

struct OutlierDetectorOptions {
  /// Flag items whose current frequency exceeds the historical mean
  /// by more than `z_threshold` historical standard deviations.
  double z_threshold = 3.0;
  /// Minimum epochs of history required before detection runs.
  size_t min_history = 3;
  /// Standard-deviation floor guarding against near-constant
  /// histories (pure LDP noise keeps stddev positive in practice, but
  /// short histories can collapse).
  double stddev_floor = 1e-6;
};

/// Returns the items of `current` that are upward outliers against
/// `history` (each history entry is one past epoch's frequency
/// vector, all the same length as `current`).  Only upward deviations
/// are flagged: targeted poisoning inflates frequencies.
std::vector<ItemId> DetectFrequencyOutliers(
    const std::vector<std::vector<double>>& history,
    const std::vector<double>& current,
    const OutlierDetectorOptions& options = {});

/// Convenience used for AA (whose random attacker distribution has no
/// crisp target set): the `k` items with the largest frequency
/// increase from `baseline` to `current` — the paper's "items that
/// exhibit the top-r/2 frequency increase following the attack".
std::vector<ItemId> TopFrequencyGainers(const std::vector<double>& baseline,
                                        const std::vector<double>& current,
                                        size_t k);

}  // namespace ldpr

#endif  // LDPR_RECOVER_OUTLIER_H_
