// KKT-based refinement of estimated frequencies onto the probability
// simplex (Step 3 of LDPRecover, Eqs. (32)-(35) and lines 5-11 of
// Algorithm 1).
//
// Given the estimated genuine frequencies f~_X, the refinement solves
//
//     minimize   sum_v (f'(v) - f~_X(v))^2
//     subject to f'(v) >= 0,  sum_v f'(v) = 1
//
// whose KKT conditions yield: over the active set D* the solution is
// a uniform additive shift f'(v) = f~(v) - (sum_{D*} f~ - 1)/|D*|,
// and items driven negative are clamped to zero and removed from D*
// iteratively until all remaining values are non-negative.  This is
// the same "norm-sub" consistency step of Wang et al. (NDSS 2020).

#ifndef LDPR_RECOVER_SIMPLEX_PROJECTION_H_
#define LDPR_RECOVER_SIMPLEX_PROJECTION_H_

#include <cstddef>
#include <vector>

namespace ldpr {

/// Projects `estimate` onto the probability simplex using the
/// iterative KKT procedure of Algorithm 1.  The result is
/// non-negative and sums to 1 (exactly, up to float rounding).
std::vector<double> ProjectToSimplexKkt(const std::vector<double>& estimate);

/// Number of refinement iterations the last call would take — exposed
/// for tests and complexity analysis; pure function of the input.
size_t SimplexProjectionIterations(const std::vector<double>& estimate);

}  // namespace ldpr

#endif  // LDPR_RECOVER_SIMPLEX_PROJECTION_H_
