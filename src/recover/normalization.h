// Standard LDP post-processing baselines (Wang et al., NDSS 2020),
// used as ablation points against LDPRecover's CI refinement: both
// enforce the simplex constraints but neither subtracts malicious
// mass, so under poisoning they retain the attack's bias.

#ifndef LDPR_RECOVER_NORMALIZATION_H_
#define LDPR_RECOVER_NORMALIZATION_H_

#include <vector>

namespace ldpr {

/// Base-Pos: clamps negative estimates to zero (no renormalization).
std::vector<double> BasePos(const std::vector<double>& estimate);

/// Clip-and-renormalize: clamps negatives to zero then rescales to
/// sum 1.  Falls back to uniform when everything clamps to zero.
std::vector<double> ClipAndRenormalize(const std::vector<double>& estimate);

/// Norm-Sub: additive shift + clamp so the result is non-negative and
/// sums to 1.  This is exactly the KKT projection of
/// recover/simplex_projection.h and is provided under its
/// literature name for discoverability.
std::vector<double> NormSub(const std::vector<double>& estimate);

}  // namespace ldpr

#endif  // LDPR_RECOVER_NORMALIZATION_H_
