// Detection: the malicious-user detection countermeasure of Cao et
// al. (USENIX Security 2021), adapted as the paper's comparison
// baseline (Section VI-A5).
//
// Knowing the target items, the server labels a report malicious if
// it supports any target and discards it, then re-estimates
// frequencies from the survivors.  The method's weakness — which the
// paper's Figures 3-4 exhibit — is that genuine users whose perturbed
// reports happen to support a target are discarded too, biasing the
// surviving sample.
//
// DetectionFilter is a streaming classifier + aggregator so the
// simulation pipeline can run Detection without materializing the
// genuine report set.  For GRR and OUE closed-form fast paths sample
// the post-filter aggregate directly (see the .cc for the exact
// conditional laws); OLH always streams.

#ifndef LDPR_RECOVER_DETECTION_H_
#define LDPR_RECOVER_DETECTION_H_

#include <vector>

#include "ldp/protocol.h"
#include "util/random.h"

namespace ldpr {

class DetectionFilter {
 public:
  /// The protocol reference must outlive the filter.  `targets` is
  /// the item set the server believes the attacker promotes.
  DetectionFilter(const FrequencyProtocol& protocol,
                  std::vector<ItemId> targets);

  /// True iff the report supports at least `threshold()` targets.
  bool IsSuspicious(const Report& report) const;

  /// The protocol-specific suspicion threshold (see .cc).
  size_t threshold() const { return threshold_; }

  /// Feeds one report; drops it when suspicious.
  void Offer(const Report& report);

  /// Feeds a batch: classification straight off the SoA field arrays
  /// (value lookup for GRR, target-bit count for the unary family,
  /// inline split-hash matches for OLH/BLH), survivors row-copied
  /// into a flush buffer and accumulated through the protocol's
  /// batched path — byte-identical to Offer() in a loop.  Span-mode
  /// batches fall back to per-report classification.
  void OfferAll(const ReportBatch& batch);
  void OfferAll(const std::vector<Report>& reports);

  /// Incremental streaming offer: feeds one flush-sized tile of an
  /// arriving report stream (classification is per-report and
  /// stateless, so tiling never changes the outcome).  Identical to
  /// OfferAll — the separate name documents the windowed contract:
  /// offered()/kept()/Estimate() describe the *current window* (the
  /// reports offered since the last ResetWindow), and the streaming
  /// engine calls ResetWindow at every pane boundary.
  void OfferStreaming(const ReportBatch& batch);

  /// Closes the current window: folds offered()/kept() into the
  /// lifetime totals and zeroes the per-window counters and kept
  /// support counts, so the next window's classification state starts
  /// clean (no cross-window leakage of kept counts — the next
  /// Estimate() is exactly a fresh filter's; regression-tested in
  /// tests/detection_test.cc).
  void ResetWindow();

  /// Feeds the reports of genuine users summarized by an item-count
  /// histogram, simulating every user exactly: generates SoA report
  /// tiles through the protocol's batched generation (the same
  /// per-user Rng draw order as Perturb per user) and filters them
  /// via OfferAll.  The exact-genuine reference path of the
  /// experiment driver.
  void OfferExactGenuine(const std::vector<uint64_t>& item_counts, Rng& rng);

  /// Fast path: feeds the reports of genuine users summarized by an
  /// item-count histogram, sampling the post-filter aggregate from
  /// the exact conditional distribution for GRR and OUE and falling
  /// back to streaming per-user simulation for OLH.
  void OfferSampledGenuine(const std::vector<uint64_t>& item_counts,
                           Rng& rng);

  /// Sharded OfferSampledGenuine on the ShardedSupportCounts
  /// scaffold: the canonical user population splits into fixed-size
  /// chunks, chunk c filters + aggregates on Rng(DeriveSeed(seed, c)),
  /// and the partial kept counts merge in chunk order across `shards`
  /// pool workers (0 = auto).  Byte-identical at every shard count;
  /// this removes the last serial per-trial aggregation path (the OLH
  /// per-user streaming filter) from million-user Detection trials.
  /// Draws are keyed by `seed`, not a caller Rng, so the caller's
  /// stream is shard-independent (same pattern as RunPoisoningTrial).
  void OfferSampledGenuineSharded(const std::vector<uint64_t>& item_counts,
                                  uint64_t seed, size_t shards);

  /// Reports seen / kept in the current window (since the last
  /// ResetWindow; the whole stream when ResetWindow is never called).
  size_t offered() const { return offered_; }
  size_t kept() const { return kept_; }

  /// Lifetime totals across all windows, including the current one.
  size_t total_offered() const { return total_offered_base_ + offered_; }
  size_t total_kept() const { return total_kept_base_ + kept_; }

  /// Frequency estimate over the kept reports (normalized by the kept
  /// count, as the baseline prescribes).  Requires kept() > 0.
  std::vector<double> Estimate() const;

 private:
  /// The one classify-and-count step shared by the batched feeders:
  /// counts the report as offered, and as kept (buffering it into
  /// `kept`) unless suspicious.
  void OfferInto(const Report& report, BatchingAccumulator& kept);

  void OfferSampledGrr(const std::vector<uint64_t>& item_counts, Rng& rng);
  void OfferSampledOue(const std::vector<uint64_t>& item_counts, Rng& rng);
  // Per-user streaming simulation of a genuine population histogram
  // (the OLH/BLH fallback of OfferSampledGenuine).  Formerly named
  // OfferStreaming; renamed so the incremental-window entry point
  // above owns that name.
  void OfferStreamingGenuine(const std::vector<uint64_t>& item_counts,
                             Rng& rng);

  const FrequencyProtocol& protocol_;
  std::vector<ItemId> targets_;
  size_t threshold_ = 1;
  std::vector<uint8_t> is_target_;
  std::vector<double> kept_counts_;
  size_t offered_ = 0;
  size_t kept_ = 0;
  size_t total_offered_base_ = 0;
  size_t total_kept_base_ = 0;
};

}  // namespace ldpr

#endif  // LDPR_RECOVER_DETECTION_H_
