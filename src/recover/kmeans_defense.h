// k-means clustering defense and LDPRecover-KM (Section VII-B of the
// paper).
//
// Under *input* poisoning the crafted data passes through the genuine
// perturbation algorithm, so the closed-form malicious statistics of
// Eq. (21) no longer apply.  The k-means defense (after Li et al. and
// Du et al.) samples many user subsets, estimates a frequency vector
// per subset, and 2-means-clusters those vectors: the larger cluster
// is declared genuine.  The plain defense estimates frequencies from
// the genuine cluster only; LDPRecover-KM additionally *learns* the
// malicious statistics (the malicious frequency vector and the
// malicious/genuine ratio) from the minority cluster and feeds them
// into LDPRecover's constraint-inference step, recovering strictly
// more accurate frequencies (Figure 9).

#ifndef LDPR_RECOVER_KMEANS_DEFENSE_H_
#define LDPR_RECOVER_KMEANS_DEFENSE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ldp/protocol.h"
#include "util/random.h"

namespace ldpr {

struct KMeansDefenseOptions {
  /// Fraction of users in each subset (the paper's xi): users are
  /// partitioned into ~1/xi disjoint subsets.  Smaller xi gives the
  /// clustering more rows to work with but noisier per-subset
  /// estimates.
  double sample_rate = 0.1;
  /// Lloyd iterations per restart.
  size_t max_iterations = 50;
  /// k-means restarts (best inertia wins).
  size_t restarts = 4;
};

struct KMeansDefenseResult {
  /// Per-subset frequency estimates (#subsets x d).
  std::vector<std::vector<double>> subset_estimates;
  /// 1 iff the subset landed in the minority (malicious) cluster.
  std::vector<uint8_t> subset_is_malicious;
  /// Aggregate estimate over the users of the genuine-cluster subsets
  /// — the plain k-means defense's output.  The minority cluster's
  /// users are discarded, which is the defense's data-loss cost.
  std::vector<double> genuine_estimate;
  /// Aggregate estimate over the users of the minority cluster (empty
  /// when the clustering kept everything).
  std::vector<double> malicious_estimate;
  /// Fraction of subsets labelled malicious.
  double malicious_subset_fraction = 0.0;
};

/// Basic 2-means over row vectors.  Returns per-row cluster labels
/// (0/1); label 1 is the *smaller* cluster.  Exposed for tests.
std::vector<uint8_t> TwoMeansCluster(
    const std::vector<std::vector<double>>& rows, size_t max_iterations,
    size_t restarts, Rng& rng);

/// Runs the subset-sampling + clustering defense over the given
/// reports.  The protocol reference must outlive the call.
KMeansDefenseResult RunKMeansDefense(const FrequencyProtocol& protocol,
                                     const std::vector<Report>& reports,
                                     const KMeansDefenseOptions& options,
                                     Rng& rng);

/// LDPRecover-KM: integrates the defense's learnt malicious vector
/// into LDPRecover (malicious-frequency override + KKT refinement).
/// `eta` follows the usual RecoverOptions semantics.
std::vector<double> LdpRecoverKm(const FrequencyProtocol& protocol,
                                 const std::vector<Report>& reports,
                                 const KMeansDefenseOptions& options,
                                 double eta, Rng& rng);

}  // namespace ldpr

#endif  // LDPR_RECOVER_KMEANS_DEFENSE_H_
