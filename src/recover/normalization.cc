#include "recover/normalization.h"

#include "recover/simplex_projection.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace ldpr {

std::vector<double> BasePos(const std::vector<double>& estimate) {
  std::vector<double> out(estimate.size());
  for (size_t v = 0; v < estimate.size(); ++v)
    out[v] = estimate[v] > 0.0 ? estimate[v] : 0.0;
  return out;
}

std::vector<double> ClipAndRenormalize(const std::vector<double>& estimate) {
  LDPR_CHECK(!estimate.empty());
  std::vector<double> out = BasePos(estimate);
  const double total = Sum(out);
  if (total <= 0.0) {
    // Degenerate input: no information, return uniform.
    const double u = 1.0 / static_cast<double>(out.size());
    for (double& x : out) x = u;
    return out;
  }
  for (double& x : out) x /= total;
  return out;
}

std::vector<double> NormSub(const std::vector<double>& estimate) {
  return ProjectToSimplexKkt(estimate);
}

}  // namespace ldpr
