#include "recover/ldprecover.h"

#include <algorithm>

#include "recover/estimator.h"
#include "recover/malicious_stats.h"
#include "recover/simplex_projection.h"
#include "util/logging.h"

namespace ldpr {

LdpRecover::LdpRecover(const FrequencyProtocol& protocol,
                       RecoverOptions options)
    : protocol_(protocol), options_(std::move(options)) {
  LDPR_CHECK(options_.eta >= 0.0);
  if (options_.known_targets.has_value()) {
    for (ItemId t : *options_.known_targets)
      LDPR_CHECK(t < protocol_.domain_size());
    LDPR_CHECK(!options_.known_targets->empty());
    LDPR_CHECK(options_.known_targets->size() < protocol_.domain_size());
  }
  if (options_.malicious_freqs_override.has_value()) {
    LDPR_CHECK(options_.malicious_freqs_override->size() ==
               protocol_.domain_size());
  }
}

double LdpRecover::MaliciousSum() const {
  if (options_.malicious_sum_override.has_value())
    return *options_.malicious_sum_override;
  return ExpectedMaliciousFrequencySum(protocol_);
}

std::vector<double> LdpRecover::EstimateMaliciousUniform(
    const std::vector<double>& poisoned) const {
  const size_t d = protocol_.domain_size();
  LDPR_CHECK(poisoned.size() == d);
  // Non-knowledge split (Algorithm 1 line 2): D0 = {v : f~_Z(v) <= 0}
  // holds items that cannot plausibly have been boosted; D1 = D \ D0
  // holds the potential attack items, whose malicious mass is assumed
  // uniform (Eq. (26)).
  size_t d1_count = 0;
  for (double f : poisoned) {
    if (f > 0.0) ++d1_count;
  }
  std::vector<double> malicious(d, 0.0);
  if (d1_count == 0) return malicious;  // nothing positive: all zero
  const double share = MaliciousSum() / static_cast<double>(d1_count);
  for (size_t v = 0; v < d; ++v) {
    if (poisoned[v] > 0.0) malicious[v] = share;
  }
  return malicious;
}

std::vector<double> LdpRecover::EstimateMaliciousWithTargets() const {
  const size_t d = protocol_.domain_size();
  const std::vector<ItemId>& targets = *options_.known_targets;
  std::vector<uint8_t> is_target(d, 0);
  for (ItemId t : targets) is_target[t] = 1;
  size_t target_count = 0;
  for (uint8_t b : is_target) target_count += b;
  const size_t non_target_count = d - target_count;
  LDPR_CHECK(non_target_count > 0);

  // Eq. (30): items outside T carry the (negative) zero-mass
  // sub-domain share; the attacker-selected items split the remaining
  // mass uniformly.
  const double non_target_sum = ZeroMassSubdomainSum(
      protocol_, non_target_count, options_.paper_literal_subdomain_sum);
  const double target_sum = MaliciousSum() - non_target_sum;
  const double non_target_share =
      non_target_sum / static_cast<double>(non_target_count);
  const double target_share = target_sum / static_cast<double>(target_count);

  std::vector<double> malicious(d);
  for (size_t v = 0; v < d; ++v)
    malicious[v] = is_target[v] ? target_share : non_target_share;
  return malicious;
}

std::vector<double> LdpRecover::EstimateMaliciousFrequencies(
    const std::vector<double>& poisoned) const {
  LDPR_CHECK(poisoned.size() == protocol_.domain_size());
  if (options_.ablate_no_subtraction)
    return std::vector<double>(protocol_.domain_size(), 0.0);
  if (options_.malicious_freqs_override.has_value())
    return *options_.malicious_freqs_override;
  if (options_.known_targets.has_value())
    return EstimateMaliciousWithTargets();
  return EstimateMaliciousUniform(poisoned);
}

std::vector<double> LdpRecover::EstimateGenuineFrequencies(
    const std::vector<double>& poisoned) const {
  // Eq. (27) / (31): the genuine frequency estimator with the learnt
  // malicious frequencies substituted for f~_Y.
  return RecoverGenuineFrequencies(
      poisoned, EstimateMaliciousFrequencies(poisoned), options_.eta);
}

std::vector<double> LdpRecover::Recover(
    const std::vector<double>& poisoned) const {
  std::vector<double> genuine = EstimateGenuineFrequencies(poisoned);
  if (options_.ablate_no_refinement) return genuine;
  return ProjectToSimplexKkt(genuine);
}

}  // namespace ldpr
