// LDPRecover: the paper's frequency-recovery method (Section V,
// Algorithm 1).
//
// Given the poisoned frequency vector f~_Z aggregated by the server,
// LDPRecover outputs recovered frequencies f'_X close to the genuine
// f~_X by solving the constraint-inference problem (Eqs. (22)-(25)):
//
//   1. estimate the malicious frequencies f~'_Y from protocol
//      properties alone (non-knowledge, Eq. (26)) or additionally
//      from a known attacker-selected item set T (partial knowledge,
//      LDPRecover*, Eq. (30));
//   2. apply the genuine frequency estimator (Eq. (19)/(27)/(31));
//   3. refine onto the probability simplex with the KKT projection
//      (Eqs. (32)-(35)).
//
// The class also exposes its intermediate malicious-frequency
// estimate (used by the Figure 7 experiment) and accepts an override
// of the learnt malicious statistics (used by LDPRecover-KM, which
// learns them from a k-means clustering under input poisoning,
// Section VII-B).

#ifndef LDPR_RECOVER_LDPRECOVER_H_
#define LDPR_RECOVER_LDPRECOVER_H_

#include <optional>
#include <vector>

#include "ldp/protocol.h"

namespace ldpr {

/// Configuration of a recovery run.
struct RecoverOptions {
  /// The server's (over-)estimate of m/n.  The paper's default is
  /// 0.2, deliberately exceeding the true ratio (Section VI-A4); the
  /// eta sweeps of Figures 5-6 vary it.
  double eta = 0.2;

  /// Known attacker-selected items: engaging this switches the
  /// instance from LDPRecover to LDPRecover*.
  std::optional<std::vector<ItemId>> known_targets;

  /// Use the paper's literal Eq. (28) (-q*d) for the zero-mass
  /// sub-domain sum rather than the per-item-exact -q*|D'|.
  ///
  /// Default TRUE: combined with Eq. (25) the literal form assigns
  /// the attacker-selected items a total of exactly 1/(p - q), which
  /// is the self-consistent counterpart of the one-hot support model
  /// behind Eq. (21) and matches the true MGA target mass closely for
  /// GRR.  The exact form is kept for ablation (see DESIGN.md).
  bool paper_literal_subdomain_sum = true;

  /// Override of the full-domain malicious frequency sum, replacing
  /// Eq. (21).  LDPRecover-KM supplies a value learnt from the
  /// malicious cluster because under input poisoning the crafted data
  /// *does* pass through perturbation and Eq. (21) no longer applies.
  std::optional<double> malicious_sum_override;

  /// Override of the full malicious frequency vector f~_Y, replacing
  /// the uniform split of Eq. (26) entirely (LDPRecover-KM's centroid
  /// estimate).  Must have domain size when set.
  std::optional<std::vector<double>> malicious_freqs_override;

  /// Ablation switch: skip Step 2's malicious-frequency subtraction
  /// (treat f~_Y as all-zero), keeping only the (1 + eta) rescale and
  /// the simplex refinement.  Used by the ablation scenario.
  bool ablate_no_subtraction = false;

  /// Ablation switch: skip Step 3's KKT simplex refinement and return
  /// the raw Eq. (27)/(31) estimate (may be negative / not sum to 1).
  bool ablate_no_refinement = false;
};

class LdpRecover {
 public:
  /// The protocol reference must outlive this object.
  LdpRecover(const FrequencyProtocol& protocol, RecoverOptions options = {});

  /// Step 2: the estimated malicious frequencies f~'_Y (Eq. (26)) or
  /// f~*_Y (Eq. (30)) for the given poisoned frequencies.
  std::vector<double> EstimateMaliciousFrequencies(
      const std::vector<double>& poisoned) const;

  /// Steps 2-3 before refinement: the raw genuine-frequency estimate
  /// of Eq. (27)/(31) (may contain negatives; exposed for tests).
  std::vector<double> EstimateGenuineFrequencies(
      const std::vector<double>& poisoned) const;

  /// Algorithm 1 end to end: recovered frequencies on the simplex.
  std::vector<double> Recover(const std::vector<double>& poisoned) const;

  const RecoverOptions& options() const { return options_; }

  /// True when the instance operates with partial knowledge
  /// (LDPRecover*).
  bool has_partial_knowledge() const {
    return options_.known_targets.has_value();
  }

 private:
  std::vector<double> EstimateMaliciousUniform(
      const std::vector<double>& poisoned) const;
  std::vector<double> EstimateMaliciousWithTargets() const;
  double MaliciousSum() const;

  const FrequencyProtocol& protocol_;
  RecoverOptions options_;
};

}  // namespace ldpr

#endif  // LDPR_RECOVER_LDPRECOVER_H_
