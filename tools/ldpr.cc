// ldpr: the subcommand CLI (src/cli/cli.h).  Built with the scenario
// library when benches are enabled so `ldpr list` can enumerate the
// registry; the subcommands themselves never need it.

#include "cli/cli.h"

#ifdef LDPR_HAVE_SCENARIOS
#include "scenarios.h"
#endif

int main(int argc, char** argv) {
#ifdef LDPR_HAVE_SCENARIOS
  ldpr::bench::RegisterAllScenarios();
#endif
  return ldpr::cli::Main(argc, argv);
}
