// ldpr_lint: the determinism/portability linter (src/lint/).
//
//   # The CI gate — exits 0 only when the tree is clean:
//   ldpr_lint --repo=. src tools bench tests
//
//   # Findings print as `file:line: [rule-id] message`.
//
// Rules R1-R5 are documented in src/lint/lint.h and
// docs/architecture.md ("Static guarantees").  Suppress a deliberate
// exception with a `// lint: <key>-ok(<reason>)` pragma on (or just
// above) the line, or an entry in ci/lint_allowlist.txt; stale
// allowlist entries are themselves findings.
//
// Exit codes: 0 = clean, 1 = findings, 2 = usage or IO errors.

#include <cstdio>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "util/flags.h"

namespace ldpr {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: ldpr_lint [--repo=DIR] [--allowlist=FILE] ROOT...\n"
      "\n"
      "Scans the given directories (or files) for violations of the\n"
      "repo's determinism/portability contracts (rules R1-R5; see\n"
      "src/lint/lint.h).  --repo defaults to the current directory\n"
      "and locates CMakeLists.txt, the CI workflow, and relative\n"
      "roots; --allowlist defaults to ci/lint_allowlist.txt under\n"
      "the repo root.\n");
  return 2;
}

int Run(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  lint::LintOptions options;
  options.repo_root = flags.GetString("repo", ".");
  options.allowlist_path = flags.GetString("allowlist", "ci/lint_allowlist.txt");
  options.roots = flags.positional();

  const std::vector<std::string> unused = flags.unused_flags();
  if (!unused.empty()) {
    std::fprintf(stderr, "unknown flag --%s\n", unused.front().c_str());
    return Usage();
  }
  if (options.roots.empty()) return Usage();

  auto result = lint::RunLint(options);
  if (!result.ok()) {
    std::fprintf(stderr, "ldpr_lint: %s\n",
                 result.status().ToString().c_str());
    return 2;
  }
  for (const lint::Finding& finding : result.value().findings) {
    std::printf("%s\n", lint::FormatFinding(finding).c_str());
  }
  std::fprintf(stderr, "ldpr_lint: %zu finding(s) in %zu file(s) scanned\n",
               result.value().findings.size(), result.value().files_scanned);
  return result.value().findings.empty() ? 0 : 1;
}

}  // namespace
}  // namespace ldpr

int main(int argc, char** argv) { return ldpr::Run(argc, argv); }
