// ldpr_lint: the determinism/portability linter (src/lint/).
//
//   # The CI gate — exits 0 only when the tree is clean:
//   ldpr_lint --repo=. src tools bench tests examples
//
//   # Findings print as `file:line: [rule-id] message`.  For CI:
//   ldpr_lint --repo=. --format=sarif src ...    # code-scanning upload
//   ldpr_lint --repo=. --format=github src ...   # inline annotations
//
//   # Write the measured src/ include DAG (R6's evidence):
//   ldpr_lint --repo=. --dot=build/include_graph.dot src ...
//
//   # Mechanical guard repair (R5): dry-run plan, then rewrite.
//   # (--apply=1, not bare --apply: the flag parser would read a
//   # following root as the flag's value.)
//   ldpr_lint --repo=. --fix=header-guards src
//   ldpr_lint --repo=. --fix=header-guards --apply=1 src
//
// Rules R1-R8 are documented in src/lint/lint.h and
// docs/architecture.md ("Static guarantees").  Suppress a deliberate
// exception with a `// lint: <key>-ok(<reason>)` pragma on (or just
// above) the line, or an entry in ci/lint_allowlist.txt; stale
// allowlist entries are themselves findings.
//
// Exit codes: 0 = clean (or no fixes pending), 1 = findings (or fixes
// pending in --fix dry-run), 2 = usage or IO errors.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/fix.h"
#include "lint/format.h"
#include "lint/lint.h"
#include "util/flags.h"

namespace ldpr {
namespace {

namespace fs = std::filesystem;

int Usage() {
  std::fprintf(
      stderr,
      "usage: ldpr_lint [--repo=DIR] [--allowlist=FILE]\n"
      "                 [--format=plain|sarif|github] [--dot=FILE]\n"
      "                 [--fix=header-guards [--apply=1]] ROOT...\n"
      "\n"
      "Scans the given directories (or files) for violations of the\n"
      "repo's determinism/portability contracts (rules R1-R8; see\n"
      "src/lint/lint.h).  --repo defaults to the current directory\n"
      "and locates CMakeLists.txt, the CI workflow, ci/lint_layers.txt\n"
      "and relative roots; --allowlist defaults to\n"
      "ci/lint_allowlist.txt under the repo root.  --dot writes the\n"
      "measured src/ include DAG.  --fix=header-guards plans R5 guard\n"
      "renames (dry-run; exit 1 while fixes are pending) and rewrites\n"
      "the headers in place under --apply.\n");
  return 2;
}

bool WriteFileOrComplain(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  out.close();
  if (!out) {
    std::fprintf(stderr, "ldpr_lint: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

int RunFixHeaderGuards(const lint::LintOptions& options, bool apply) {
  auto tree = lint::ScanTree(options);
  if (!tree.ok()) {
    std::fprintf(stderr, "ldpr_lint: %s\n", tree.status().ToString().c_str());
    return 2;
  }
  const std::vector<lint::HeaderGuardFix> fixes =
      lint::PlanHeaderGuardFixes(tree.value());
  for (const lint::HeaderGuardFix& fix : fixes) {
    std::printf("%s: %s -> %s%s\n", fix.path.c_str(), fix.old_guard.c_str(),
                fix.new_guard.c_str(), apply ? "" : " (dry run)");
    if (!apply) continue;
    const fs::path disk = fs::path(options.repo_root) / fix.path;
    std::ifstream in(disk, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in) {
      std::fprintf(stderr, "ldpr_lint: cannot read %s\n", disk.c_str());
      return 2;
    }
    if (!WriteFileOrComplain(disk.string(),
                             lint::ApplyHeaderGuardFix(buffer.str(), fix))) {
      return 2;
    }
  }
  std::fprintf(stderr, "ldpr_lint: %zu header guard fix(es) %s\n",
               fixes.size(), apply ? "applied" : "pending (use --apply)");
  // Dry-run acts as a gate (pending fixes => dirty tree); after
  // --apply the tree is fixed, so report success.
  return apply || fixes.empty() ? 0 : 1;
}

int Run(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  lint::LintOptions options;
  options.repo_root = flags.GetString("repo", ".");
  options.allowlist_path = flags.GetString("allowlist", "ci/lint_allowlist.txt");
  options.roots = flags.positional();
  const std::string format = flags.GetString("format", "plain");
  const std::string dot_path = flags.GetString("dot", "");
  const std::string fix_mode = flags.GetString("fix", "");
  const bool apply = flags.GetBool("apply", false);

  const std::vector<std::string> unused = flags.unused_flags();
  if (!unused.empty()) {
    std::fprintf(stderr, "unknown flag --%s\n", unused.front().c_str());
    return Usage();
  }
  if (options.roots.empty()) return Usage();
  if (format != "plain" && format != "sarif" && format != "github") {
    std::fprintf(stderr, "unknown --format=%s\n", format.c_str());
    return Usage();
  }
  if (!fix_mode.empty()) {
    if (fix_mode != "header-guards") {
      std::fprintf(stderr, "unknown --fix=%s\n", fix_mode.c_str());
      return Usage();
    }
    return RunFixHeaderGuards(options, apply);
  }
  if (apply) {
    std::fprintf(stderr, "--apply requires --fix=MODE\n");
    return Usage();
  }

  auto result = lint::RunLint(options);
  if (!result.ok()) {
    std::fprintf(stderr, "ldpr_lint: %s\n",
                 result.status().ToString().c_str());
    return 2;
  }
  const std::vector<lint::Finding>& findings = result.value().findings;
  if (format == "sarif") {
    std::fputs(lint::FindingsToSarif(findings).c_str(), stdout);
  } else if (format == "github") {
    std::fputs(lint::FindingsToGithub(findings).c_str(), stdout);
  } else {
    for (const lint::Finding& finding : findings) {
      std::printf("%s\n", lint::FormatFinding(finding).c_str());
    }
  }
  if (!dot_path.empty() &&
      !WriteFileOrComplain(dot_path, result.value().include_graph_dot)) {
    return 2;
  }
  std::fprintf(stderr, "ldpr_lint: %zu finding(s) in %zu file(s) scanned\n",
               findings.size(), result.value().files_scanned);
  return findings.empty() ? 0 : 1;
}

}  // namespace
}  // namespace ldpr

int main(int argc, char** argv) { return ldpr::Run(argc, argv); }
