// ldpr_diff: compares two `ldpr_bench --out` result trees by
// (scenario, table, row) join instead of byte-diff, so runs from
// different machines — or different revisions, where RNG streams
// legitimately change — stay comparable.
//
//   # Same-seed runs of the same binary must agree exactly
//   # (timing columns excluded — they are wall-clock measurements):
//   ldpr_diff --exact results-t1 results-t8
//
//   # Cross-revision regression gate (the CI baseline check):
//   ldpr_diff --tolerance=0.25 baseline/ head/
//
// Exit codes: 0 = trees agree under the chosen mode, 1 = violations
// (a compact drift table plus the violating cells is printed),
// 2 = usage or load errors.  Default mode is --exact.

#include <cstdio>
#include <string>
#include <vector>

#include "runner/result_diff.h"
#include "util/flags.h"

namespace ldpr {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: ldpr_diff [--exact | --tolerance=REL] [--abs-floor=F]\n"
      "                 [--max-violations=N] [--quiet] TREE_A TREE_B\n"
      "\n"
      "Compares two `ldpr_bench --out` trees row by row.  --exact\n"
      "(default) requires bit-equal metrics; --tolerance=REL accepts\n"
      "relative drift up to REL.  Timing columns (declared by each\n"
      "scenario's manifest) are reported but never gate.\n");
  return 2;
}

int Run(int argc, char** argv) {
  // FlagParser's "--name value" form would swallow a tree path after
  // a bare boolean ("--exact A B"); pin the booleans to "=1" first.
  std::vector<std::string> args(argv, argv + argc);
  for (std::string& arg : args) {
    if (arg == "--exact" || arg == "--quiet") arg += "=1";
  }
  std::vector<const char*> argv_fixed;
  argv_fixed.reserve(args.size());
  for (const std::string& arg : args) argv_fixed.push_back(arg.c_str());
  const FlagParser flags(argc, argv_fixed.data());

  const bool exact_flag = flags.GetBool("exact", false);
  const bool has_tolerance = flags.Has("tolerance");
  const auto tolerance = flags.GetDouble("tolerance", 0.05);
  const auto abs_floor = flags.GetDouble("abs-floor", 1e-12);
  const auto max_violations = flags.GetInt("max-violations", 20);
  const bool quiet = flags.GetBool("quiet", false);

  for (const Status& status :
       {tolerance.ok() ? Status::Ok() : tolerance.status(),
        abs_floor.ok() ? Status::Ok() : abs_floor.status(),
        max_violations.ok() ? Status::Ok() : max_violations.status()}) {
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 2;
    }
  }
  for (const std::string& unused : flags.unused_flags()) {
    std::fprintf(stderr, "error: unknown flag --%s\n", unused.c_str());
    return Usage();
  }
  if (exact_flag && has_tolerance) {
    std::fprintf(stderr, "error: --exact and --tolerance are exclusive\n");
    return Usage();
  }
  if (flags.positional().size() != 2) return Usage();
  if (*tolerance < 0) {
    std::fprintf(stderr, "error: --tolerance must be >= 0\n");
    return 2;
  }

  DiffOptions options;
  options.exact = !has_tolerance;
  options.tolerance = *tolerance;
  options.abs_floor = *abs_floor;

  const std::string& path_a = flags.positional()[0];
  const std::string& path_b = flags.positional()[1];
  auto tree_a = LoadResultTree(path_a);
  if (!tree_a.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", path_a.c_str(),
                 tree_a.status().ToString().c_str());
    return 2;
  }
  auto tree_b = LoadResultTree(path_b);
  if (!tree_b.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", path_b.c_str(),
                 tree_b.status().ToString().c_str());
    return 2;
  }

  const DiffReport report = DiffResultTrees(*tree_a, *tree_b, options);
  if (!quiet) {
    if (options.exact) {
      std::printf("ldpr_diff --exact: %s vs %s\n\n", path_a.c_str(),
                  path_b.c_str());
    } else {
      std::printf("ldpr_diff --tolerance=%g: %s vs %s\n\n",
                  options.tolerance, path_a.c_str(), path_b.c_str());
    }
    std::printf(
        "%s", FormatDriftTable(report,
                               static_cast<size_t>(
                                   *max_violations < 0 ? 0 : *max_violations))
                  .c_str());
  }
  if (!report.ok()) {
    std::fprintf(stderr, "\nldpr_diff: %zu violation(s)\n",
                 report.violations.size());
    return 1;
  }
  if (!quiet) std::printf("\nldpr_diff: trees agree\n");
  return 0;
}

}  // namespace
}  // namespace ldpr

int main(int argc, char** argv) { return ldpr::Run(argc, argv); }
