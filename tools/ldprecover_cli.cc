// ldprecover_cli: run the full poisoning + recovery pipeline from the
// command line.
//
// Examples:
//   # Paper defaults against MGA on the IPUMS stand-in:
//   ldprecover_cli --protocol=OUE --attack=MGA --dataset=ipums
//
//   # A custom Zipf population from CSV-free synthetic data:
//   ldprecover_cli --protocol=GRR --attack=AA --dataset=zipf
//       --d=64 --n=100000 --zipf_s=1.1 --beta=0.1 --trials=10
//
//   # Your own data (one item per row, first column, header skipped):
//   ldprecover_cli --protocol=OLH --attack=MGA --csv=items.csv
//
// Flags (defaults in brackets): --protocol [GRR], --attack [AA]
// (none|Manip|MGA|AA|MGA-IPA|MUL-AA), --dataset [ipums]
// (ipums|fire|zipf|uniform), --csv FILE, --d [102], --n [100000],
// --zipf_s [1.0], --epsilon [0.5], --beta [0.05], --eta [0.2],
// --targets [10], --trials [5], --seed [1], --scale [1.0],
// --top_k [10], --threads [0 = auto: LDPR_THREADS or hardware
// concurrency; 1 = serial], --out FILE (machine-readable results via
// the runner ResultSink: CSV, or JSONL when FILE ends in .jsonl; the
// run fails on partial writes).  Results are bit-identical at any
// --threads value.
//
// Streaming mode (--stream): replay the dataset as a time-ordered
// arrival stream through the windowed streaming engine
// (src/stream/) and print one row per closed window instead of the
// batch pipeline.  Extra knobs: --window [n/10 reports],
// --stride [0 = tumbling], --wave [constant]
// (none|constant|wave|ramp; `wave` switches the MGA cohort on over
// the middle [0.3n, 0.7n) of the stream), with --beta as the
// (peak) attacker fraction and --targets as the MGA target count.
//
//   # A mid-stream MGA wave over sliding windows:
//   ldprecover_cli --stream --protocol=OUE --dataset=zipf
//       --wave=wave --beta=0.25 --window=10000 --stride=5000

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "data/loader.h"
#include "data/synthetic.h"
#include "ldp/factory.h"
#include "recover/ldprecover.h"
#include "recover/outlier.h"
#include "runner/result_sink.h"
#include "sim/experiment.h"
#include "stream/streaming_engine.h"
#include "tasks/heavy_hitters.h"
#include "util/flags.h"

namespace ldpr {
namespace {

StatusOr<WaveShape> ParseWaveShape(const std::string& name) {
  if (name == "none") return WaveShape::kNone;
  if (name == "constant") return WaveShape::kConstant;
  if (name == "wave") return WaveShape::kWave;
  if (name == "ramp") return WaveShape::kRamp;
  return InvalidArgumentError("unknown wave shape: " + name);
}

// --stream mode: replay the dataset as an arrival stream and print
// one row per closed window.
int RunStreamMode(const FlagParser& flags, ProtocolKind kind,
                  const Dataset& dataset, double epsilon, double beta,
                  double eta, size_t num_targets, uint64_t seed,
                  ResultSink& sink) {
  const auto window = flags.GetInt("window", 0);
  const auto stride = flags.GetInt("stride", 0);
  const auto wave_or = ParseWaveShape(flags.GetString("wave", "constant"));
  for (const Status& status :
       {window.ok() ? Status::Ok() : window.status(),
        stride.ok() ? Status::Ok() : stride.status(),
        wave_or.ok() ? Status::Ok() : wave_or.status()}) {
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  StreamSpec spec;
  spec.total_reports = dataset.num_users();
  spec.window_reports = *window > 0
                            ? static_cast<size_t>(*window)
                            : std::max<size_t>(1, spec.total_reports / 10);
  spec.stride_reports = *stride > 0 ? static_cast<size_t>(*stride) : 0;
  spec.item_counts = dataset.item_counts;
  spec.wave = *wave_or;
  spec.attacker_fraction = spec.wave == WaveShape::kNone ? 0.0 : beta;
  spec.num_targets = num_targets;
  if (spec.wave == WaveShape::kWave) {
    spec.wave_start = spec.total_reports * 3 / 10;
    spec.wave_end = spec.total_reports * 7 / 10;
  }
  if (const Status valid = ValidateStreamSpec(spec); !valid.ok()) {
    std::fprintf(stderr, "error: %s\n", valid.ToString().c_str());
    return 1;
  }

  const auto protocol = MakeProtocol(kind, dataset.domain_size(), epsilon);
  StreamEngineOptions options;
  options.recover.eta = eta;
  const double base = ApproxGenuineSuspicionRate(*protocol, spec.num_targets);
  const double peak =
      spec.attacker_fraction > 0.0 ? spec.attacker_fraction : 0.25;
  options.detect_fraction = base + peak * (1.0 - base) / 2.0;

  std::printf("ldprecover_cli --stream: %s on %s (d=%zu, n=%llu), eps=%g, "
              "wave=%s, beta=%g, window=%zu, stride=%zu\n\n",
              ProtocolKindName(kind), dataset.name.c_str(),
              dataset.domain_size(),
              static_cast<unsigned long long>(spec.total_reports), epsilon,
              WaveShapeName(spec.wave), spec.attacker_fraction,
              spec.window_reports, spec.stride_reports);

  const StreamSummary summary = RunStream(*protocol, spec, options, seed);

  sink.BeginTable("Streaming windows",
                  {"Reports", "Attackers", "MSE", "RecMSE", "Detected"});
  for (const WindowResult& w : summary.windows) {
    sink.AddRow("win" + std::to_string(w.index),
                {static_cast<double>(w.report_count),
                 static_cast<double>(w.attackers), w.mse_estimate,
                 w.mse_recovered, w.detected ? 1.0 : 0.0});
  }
  sink.EndTable();

  if (summary.windows_to_detection == kNoDetection) {
    std::printf("windows to detection: none flagged\n");
  } else {
    std::printf("windows to detection: %lld after attack onset\n",
                static_cast<long long>(summary.windows_to_detection));
  }
  std::printf("total: %zu reports (%zu attackers), peak buffer %zu "
              "reports, mean window MSE %.3e (recovered %.3e)\n",
              summary.total_reports, summary.total_attackers,
              summary.peak_buffered_reports, summary.mean_mse_estimate,
              summary.mean_mse_recovered);

  const Status finish = sink.Finish();
  if (!finish.ok()) {
    std::fprintf(stderr, "error: %s\n", finish.ToString().c_str());
    return 1;
  }
  return 0;
}

StatusOr<AttackKind> ParseAttack(const std::string& name) {
  if (name == "none") return AttackKind::kNone;
  if (name == "Manip" || name == "manip") return AttackKind::kManip;
  if (name == "MGA" || name == "mga") return AttackKind::kMga;
  if (name == "AA" || name == "aa") return AttackKind::kAdaptive;
  if (name == "MGA-IPA" || name == "mga-ipa") return AttackKind::kMgaIpa;
  if (name == "MUL-AA" || name == "mul-aa") return AttackKind::kMultiAdaptive;
  return InvalidArgumentError("unknown attack: " + name);
}

StatusOr<Dataset> ParseDataset(const FlagParser& flags) {
  const std::string csv = flags.GetString("csv", "");
  if (!csv.empty()) {
    auto loaded = LoadItemCsv(csv);
    if (!loaded.ok()) return loaded.status();
    return std::move(loaded).value().dataset;
  }
  const std::string name = flags.GetString("dataset", "ipums");
  const auto d = flags.GetInt("d", 102);
  const auto n = flags.GetInt("n", 100000);
  const auto s = flags.GetDouble("zipf_s", 1.0);
  if (!d.ok()) return d.status();
  if (!n.ok()) return n.status();
  if (!s.ok()) return s.status();
  if (*d < 2) return InvalidArgumentError("--d must be >= 2");
  if (*n < 1) return InvalidArgumentError("--n must be >= 1");
  if (name == "ipums") return MakeIpumsLike();
  if (name == "fire") return MakeFireLike();
  if (name == "zipf") {
    return MakeZipfDataset("zipf", static_cast<size_t>(*d),
                           static_cast<uint64_t>(*n), *s, /*shuffle_seed=*/17);
  }
  if (name == "uniform") {
    return MakeUniformDataset("uniform", static_cast<size_t>(*d),
                              static_cast<uint64_t>(*n));
  }
  return InvalidArgumentError("unknown dataset: " + name);
}

int Run(int argc, char** argv) {
  const FlagParser flags(argc, argv);

  const auto protocol_or =
      ParseProtocolKind(flags.GetString("protocol", "GRR"));
  const auto attack_or = ParseAttack(flags.GetString("attack", "AA"));
  auto dataset_or = ParseDataset(flags);
  const auto epsilon = flags.GetDouble("epsilon", 0.5);
  const auto beta = flags.GetDouble("beta", 0.05);
  const auto eta = flags.GetDouble("eta", 0.2);
  const auto targets = flags.GetInt("targets", 10);
  const auto trials = flags.GetInt("trials", 5);
  const auto seed = flags.GetInt("seed", 1);
  const auto scale = flags.GetDouble("scale", 1.0);
  const auto top_k = flags.GetInt("top_k", 10);
  const auto threads = flags.GetInt("threads", 0);
  const std::string out_path = flags.GetString("out", "");
  const bool stream_mode = flags.GetBool("stream", false);
  if (stream_mode) {
    // Streaming knobs are queried (and validated) inside
    // RunStreamMode; touch them here so the typo check below only
    // rejects them in batch mode, where they have no meaning.
    (void)flags.GetInt("window", 0);
    (void)flags.GetInt("stride", 0);
    (void)flags.GetString("wave", "constant");
  }

  for (const Status& status :
       {protocol_or.ok() ? Status::Ok() : protocol_or.status(),
        attack_or.ok() ? Status::Ok() : attack_or.status(),
        dataset_or.ok() ? Status::Ok() : dataset_or.status(),
        epsilon.ok() ? Status::Ok() : epsilon.status(),
        beta.ok() ? Status::Ok() : beta.status(),
        eta.ok() ? Status::Ok() : eta.status(),
        targets.ok() ? Status::Ok() : targets.status(),
        trials.ok() ? Status::Ok() : trials.status(),
        seed.ok() ? Status::Ok() : seed.status(),
        scale.ok() ? Status::Ok() : scale.status(),
        top_k.ok() ? Status::Ok() : top_k.status(),
        threads.ok() ? Status::Ok() : threads.status()}) {
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  for (const std::string& unused : flags.unused_flags()) {
    std::fprintf(stderr, "error: unknown flag --%s\n", unused.c_str());
    return 1;
  }

  ExperimentConfig config;
  config.protocol = *protocol_or;
  config.epsilon = *epsilon;
  config.pipeline.attack = *attack_or;
  config.pipeline.beta = *beta;
  config.pipeline.num_targets = static_cast<size_t>(*targets);
  config.eta = *eta;
  config.trials = static_cast<size_t>(*trials);
  config.seed = static_cast<uint64_t>(*seed);
  config.threads = *threads < 0 ? 0 : static_cast<size_t>(*threads);

  // Surface bad knobs as status errors before any CHECK-guarded
  // library code can abort on them (empty/scaled-away datasets, zero
  // trials, out-of-range epsilon/beta/eta/targets, ...).
  if (!(*scale > 0.0 && *scale <= 1.0)) {
    std::fprintf(stderr, "error: INVALID_ARGUMENT: --scale must be in (0, 1]\n");
    return 1;
  }
  if (*top_k < 1) {
    std::fprintf(stderr, "error: INVALID_ARGUMENT: --top_k must be >= 1\n");
    return 1;
  }
  const Dataset dataset = ScaleDataset(*dataset_or, *scale);
  if (const Status valid = ValidateExperimentInputs(config, dataset);
      !valid.ok()) {
    std::fprintf(stderr, "error: %s\n", valid.ToString().c_str());
    return 1;
  }

  // The console table and the optional --out file are two sinks over
  // one row stream, so the file always mirrors what was printed.
  // Opened before the experiment so a bad path fails in milliseconds,
  // not after a paper-scale run.
  std::vector<std::unique_ptr<ResultSink>> sinks;
  sinks.push_back(std::make_unique<ConsoleSink>());
  if (!out_path.empty()) {
    const bool jsonl = out_path.size() >= 6 &&
                       out_path.compare(out_path.size() - 6, 6, ".jsonl") == 0;
    if (jsonl) {
      auto out_sink = std::make_unique<JsonlSink>(out_path);
      if (!out_sink->ok()) {
        std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
        return 1;
      }
      sinks.push_back(std::move(out_sink));
    } else {
      auto out_sink = std::make_unique<CsvSink>(out_path);
      if (!out_sink->ok()) {
        std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
        return 1;
      }
      sinks.push_back(std::move(out_sink));
    }
  }
  MultiSink sink(std::move(sinks));
  {
    ScenarioRunInfo info;
    info.id = stream_mode ? "cli-stream" : "cli";
    sink.BeginScenario(info);
  }

  if (stream_mode) {
    const int rc = RunStreamMode(flags, config.protocol, dataset, *epsilon,
                                 *beta, *eta, config.pipeline.num_targets,
                                 config.seed, sink);
    if (rc == 0 && !out_path.empty())
      std::printf("\nwrote %s\n", out_path.c_str());
    return rc;
  }

  std::printf("ldprecover_cli: %s under %s on %s (d=%zu, n=%llu), eps=%g, "
              "beta=%g, eta=%g, %zu trials\n\n",
              ProtocolKindName(config.protocol),
              AttackKindName(config.pipeline.attack), dataset.name.c_str(),
              dataset.domain_size(),
              static_cast<unsigned long long>(dataset.num_users()),
              config.epsilon, config.pipeline.beta, config.eta,
              config.trials);

  const ExperimentResult r = RunExperiment(config, dataset);

  sink.BeginTable("Recovery accuracy", {"MSE", "FG", "samples"});
  sink.AddRow("Before", {r.mse_before.mean(), r.fg_before.mean(),
                         static_cast<double>(r.mse_before.count())});
  if (r.mse_detection.count() > 0) {
    sink.AddRow("Detection", {r.mse_detection.mean(), r.fg_detection.mean(),
                              static_cast<double>(r.mse_detection.count())});
  }
  sink.AddRow("LDPRecover", {r.mse_recover.mean(), r.fg_recover.mean(),
                             static_cast<double>(r.mse_recover.count())});
  if (r.mse_recover_star.count() > 0) {
    sink.AddRow("LDPRecover*",
                {r.mse_recover_star.mean(), r.fg_recover_star.mean(),
                 static_cast<double>(r.mse_recover_star.count())});
  }
  sink.EndTable();

  // Task-level view: how intact is the published top-k?
  // (single representative trial for the ranking illustration)
  const auto protocol =
      MakeProtocol(config.protocol, dataset.domain_size(), config.epsilon);
  Rng rng(config.seed);
  const TrialOutput t =
      RunPoisoningTrial(*protocol, config.pipeline, dataset, rng);
  RecoverOptions ropts;
  ropts.eta = config.eta;
  if (!t.attack_targets.empty()) ropts.known_targets = t.attack_targets;
  const LdpRecover recover(*protocol, ropts);
  const auto recovered = recover.Recover(t.poisoned_freqs);
  const size_t k = static_cast<size_t>(*top_k);
  std::printf("top-%zu displacement vs truth: poisoned %.2f, recovered %.2f\n",
              k, TopKDisplacement(t.true_freqs, t.poisoned_freqs, k),
              TopKDisplacement(t.true_freqs, recovered, k));
  if (!t.attack_targets.empty()) {
    std::printf("attacker targets inside top-%zu: poisoned %zu, recovered "
                "%zu (of %zu)\n",
                k, CountInTopK(t.poisoned_freqs, t.attack_targets, k),
                CountInTopK(recovered, t.attack_targets, k),
                t.attack_targets.size());
  }

  const Status finish = sink.Finish();
  if (!finish.ok()) {
    std::fprintf(stderr, "error: %s\n", finish.ToString().c_str());
    return 1;
  }
  if (!out_path.empty()) std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace ldpr

int main(int argc, char** argv) { return ldpr::Run(argc, argv); }
