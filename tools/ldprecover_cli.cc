// ldprecover_cli: DEPRECATED compatibility shim over the `ldpr`
// subcommand CLI (src/cli/cli.h).
//
// The legacy interface selected its mode with a flag (--stream); the
// subcommand CLI selects it with a word (`ldpr stream` / `ldpr run`).
// This shim keeps old invocations working unchanged — same flags,
// same output, same exit codes — by prepending the right subcommand
// and forwarding everything else verbatim.  New scripts should call
// `ldpr` directly.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::fprintf(stderr,
               "warning: ldprecover_cli is deprecated; use `ldpr run` or "
               "`ldpr stream` (same flags)\n");
  bool stream = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stream" || arg == "--stream=true" || arg == "--stream=1")
      stream = true;
  }
  static char run_word[] = "run";
  static char stream_word[] = "stream";
  std::vector<char*> args;
  args.push_back(argv[0]);
  args.push_back(stream ? stream_word : run_word);
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  return ldpr::cli::Main(static_cast<int>(args.size()), args.data());
}
