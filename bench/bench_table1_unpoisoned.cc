// Table I reproduction: MSE of LDPRecover executed on *unpoisoned*
// frequencies (beta = 0) — the cost of running recovery when no
// attack happened, for both datasets and all three protocols.
//
// The paper's pattern: GRR improves (its raw estimates are noisy
// enough that the simplex refinement helps), while OUE/OLH regress
// toward the recovery floor.  This is a full-scale effect; run with
// LDPR_BENCH_SCALE=1 to see it cleanly.

#include <string>

#include "bench_common.h"
#include "ldp/factory.h"
#include "util/table.h"

namespace ldpr {
namespace bench {
namespace {

void RunDataset(const Dataset& dataset, const char* label) {
  TablePrinter table(
      std::string("Table I (") + label +
          "): LDPRecover on unpoisoned frequencies",
      {"Before-Rec", "After-Rec"});
  std::vector<ExperimentConfig> configs;
  for (ProtocolKind protocol : kAllProtocolKinds) {
    configs.push_back(DefaultConfig(protocol, AttackKind::kNone));
  }
  const std::vector<ExperimentResult> results = RunConfigs(configs, dataset);
  for (size_t i = 0; i < results.size(); ++i) {
    table.AddRow(ProtocolKindName(kAllProtocolKinds[i]),
                 {results[i].mse_before.mean(), results[i].mse_recover.mean()});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace ldpr

int main() {
  using namespace ldpr::bench;
  PrintBanner(
      "bench_table1_unpoisoned: Table I — recovery cost without an attack");
  RunDataset(BenchIpums(), "IPUMS");
  RunDataset(BenchFire(), "Fire");
  return 0;
}
