// Table I: MSE of LDPRecover executed on *unpoisoned* frequencies
// (beta = 0) — the cost of running recovery when no attack happened,
// for both datasets and all three protocols.
//
// The paper's pattern: GRR improves (its raw estimates are noisy
// enough that the simplex refinement helps), while OUE/OLH regress
// toward the recovery floor.  This is a full-scale effect; run with
// --scale=1 to see it cleanly.

#include <iterator>

#include "ldp/factory.h"
#include "scenarios.h"

namespace ldpr {
namespace bench {

void RegisterTable1(ScenarioRegistry& registry) {
  Scenario scenario;
  ScenarioSpec& spec = scenario.spec;
  spec.id = "table1";
  spec.title = "table1: Table I — recovery cost without an attack";
  spec.artifact = "Table I";
  spec.metric_desc = "LDPRecover on unpoisoned frequencies";
  spec.datasets = {"ipums", "fire"};
  spec.protocols.assign(std::begin(kAllProtocolKinds),
                        std::end(kAllProtocolKinds));
  spec.attacks = {AttackKind::kNone};
  spec.columns = {"Before-Rec", "After-Rec"};
  scenario.format_row = [](const std::vector<ExperimentResult>& r) {
    return std::vector<double>{r[0].mse_before.mean(),
                               r[0].mse_recover.mean()};
  };
  registry.Register(std::move(scenario));
}

}  // namespace bench
}  // namespace ldpr
