// Extension bench (beyond the paper's evaluation grid): recovery
// accuracy for ALL five implemented protocols — the paper's GRR, OUE,
// OLH plus the SUE and BLH extensions — under MGA and AA, reported
// both as MSE and at the task level (how many attacker targets
// survive in the published top-10 ranking).

#include <string>

#include "bench_common.h"
#include "ldp/factory.h"
#include "recover/ldprecover.h"
#include "sim/pipeline.h"
#include "tasks/heavy_hitters.h"
#include "util/metrics.h"
#include "util/table.h"

namespace ldpr {
namespace bench {
namespace {

void RunCell(const Dataset& dataset, ProtocolKind kind, AttackKind attack,
             TablePrinter& table) {
  const auto protocol = MakeProtocol(kind, dataset.domain_size(), 0.5);
  PipelineConfig pconfig;
  pconfig.attack = attack;
  pconfig.beta = 0.05;

  Rng rng(20240213);
  RunningStat mse_before, mse_after, hits_before, hits_after;
  for (size_t trial = 0; trial < Trials(); ++trial) {
    const TrialOutput t = RunPoisoningTrial(*protocol, pconfig, dataset, rng);
    RecoverOptions opts;
    if (!t.attack_targets.empty()) opts.known_targets = t.attack_targets;
    const LdpRecover recover(*protocol, opts);
    const auto recovered = recover.Recover(t.poisoned_freqs);
    mse_before.Add(Mse(t.true_freqs, t.poisoned_freqs));
    mse_after.Add(Mse(t.true_freqs, recovered));
    if (!t.attack_targets.empty()) {
      hits_before.Add(static_cast<double>(
          CountInTopK(t.poisoned_freqs, t.attack_targets, 10)));
      hits_after.Add(
          static_cast<double>(CountInTopK(recovered, t.attack_targets, 10)));
    }
  }
  const std::string row =
      std::string(AttackKindName(attack)) + "-" + ProtocolKindName(kind);
  table.AddRow(row,
               {mse_before.mean(), mse_after.mean(),
                hits_before.count() ? hits_before.mean() : 0.0,
                hits_after.count() ? hits_after.mean() : 0.0});
}

}  // namespace
}  // namespace bench
}  // namespace ldpr

int main() {
  using namespace ldpr;
  using namespace ldpr::bench;
  PrintBanner(
      "bench_ext_protocols: recovery across all five protocols "
      "(GRR/OUE/OLH + SUE/BLH)");
  const Dataset ipums = BenchIpums();
  TablePrinter table("Extended protocols (IPUMS): MSE and targets in top-10",
                     {"MSE before", "MSE after", "top10 before",
                      "top10 after"});
  for (AttackKind attack : {AttackKind::kMga, AttackKind::kAdaptive}) {
    for (ProtocolKind kind : kExtendedProtocolKinds)
      RunCell(ipums, kind, attack, table);
    table.AddSeparator();
  }
  table.Print();
  return 0;
}
