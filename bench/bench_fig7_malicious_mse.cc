// Figure 7 reproduction: MSE between the malicious frequencies
// estimated by LDPRecover / LDPRecover* and the true malicious
// frequencies, under MGA on IPUMS, sweeping beta in [0.05, 0.25].

#include <string>

#include "bench_common.h"
#include "ldp/factory.h"
#include "util/table.h"

namespace ldpr {
namespace bench {
namespace {

const double kBetas[] = {0.05, 0.10, 0.15, 0.20, 0.25};

void RunProtocol(const Dataset& dataset, ProtocolKind protocol) {
  TablePrinter table(std::string("Figure 7 (IPUMS, MGA-") +
                         ProtocolKindName(protocol) +
                         "): malicious frequency estimation MSE",
                     {"LDPRecover", "LDPRecover*"});
  std::vector<ExperimentConfig> configs;
  for (double beta : kBetas) {
    ExperimentConfig config = DefaultConfig(protocol, AttackKind::kMga);
    config.run_detection = false;
    config.pipeline.beta = beta;
    configs.push_back(config);
  }
  const std::vector<ExperimentResult> results = RunConfigs(configs, dataset);
  for (size_t i = 0; i < results.size(); ++i) {
    char row[32];
    std::snprintf(row, sizeof(row), "beta=%g", kBetas[i]);
    table.AddRow(row, {results[i].mse_malicious_recover.mean(),
                       results[i].mse_malicious_recover_star.mean()});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace ldpr

int main() {
  using namespace ldpr::bench;
  PrintBanner(
      "bench_fig7_malicious_mse: Figure 7 — estimated vs true malicious "
      "frequencies");
  const ldpr::Dataset ipums = BenchIpums();
  for (ldpr::ProtocolKind protocol : ldpr::kAllProtocolKinds)
    RunProtocol(ipums, protocol);
  return 0;
}
