// Figure 8 reproduction: strength of MGA under the general poisoning
// model versus under input poisoning (MGA-IPA), measured as the MSE
// of the poisoned (unrecovered) estimate on IPUMS, sweeping beta.
// The general attack should be orders of magnitude stronger.

#include <iterator>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ldp/factory.h"
#include "util/table.h"

namespace ldpr {
namespace bench {
namespace {

const double kBetas[] = {0.05, 0.10, 0.15, 0.20, 0.25};

void RunProtocol(const Dataset& dataset, ProtocolKind protocol) {
  TablePrinter table(std::string("Figure 8 (IPUMS, ") +
                         ProtocolKindName(protocol) +
                         "): poisoned-estimate MSE, MGA vs MGA-IPA",
                     {"MGA", "MGA-IPA"});
  const AttackKind kinds[2] = {AttackKind::kMga, AttackKind::kMgaIpa};
  std::vector<ExperimentConfig> configs;
  for (double beta : kBetas) {
    for (AttackKind kind : kinds) {
      ExperimentConfig config = DefaultConfig(protocol, kind);
      config.pipeline.beta = beta;
      config.run_detection = false;
      config.run_star = false;
      configs.push_back(config);
    }
  }
  const std::vector<ExperimentResult> results = RunConfigs(configs, dataset);
  for (size_t b = 0; b < std::size(kBetas); ++b) {
    char row[32];
    std::snprintf(row, sizeof(row), "beta=%g", kBetas[b]);
    table.AddRow(row, {results[2 * b].mse_before.mean(),
                       results[2 * b + 1].mse_before.mean()});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace ldpr

int main() {
  using namespace ldpr::bench;
  PrintBanner("bench_fig8_mga_ipa: Figure 8 — general vs input poisoning");
  const ldpr::Dataset ipums = BenchIpums();
  for (ldpr::ProtocolKind protocol : ldpr::kAllProtocolKinds)
    RunProtocol(ipums, protocol);
  return 0;
}
