// Shared scaffolding for the figure/table reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper's
// evaluation (Section VI-VII) and prints the same rows/series the
// paper reports.  Two environment knobs trade fidelity for speed:
//
//   LDPR_BENCH_SCALE   fraction of the paper's user counts to simulate
//                      (default 0.05; set 1 for paper scale)
//   LDPR_BENCH_TRIALS  trials averaged per configuration
//                      (default 3; the paper uses 10)
//   LDPR_THREADS       worker threads for the experiment fan-out
//                      (default: hardware concurrency)
//
// All benches are deterministic for a fixed (scale, trials) pair at
// any thread count.

#ifndef LDPR_BENCH_BENCH_COMMON_H_
#define LDPR_BENCH_BENCH_COMMON_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "sim/experiment.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace ldpr {
namespace bench {

/// LDPR_BENCH_SCALE, clamped to (0, 1]; default 0.05.
double ScaleFactor();

/// LDPR_BENCH_TRIALS, at least 1; default 3.
size_t Trials();

/// The IPUMS stand-in, scaled by ScaleFactor().
Dataset BenchIpums();

/// The Fire stand-in, scaled by ScaleFactor().
Dataset BenchFire();

/// Prints the standard bench banner (dataset sizes, scale, trials).
void PrintBanner(const std::string& what);

/// Builds the default experiment config (paper defaults: eps = 0.5,
/// beta = 0.05, r = 10, eta = 0.2) with the bench trial count.
ExperimentConfig DefaultConfig(ProtocolKind protocol, AttackKind attack);

/// Runs every config against `dataset`, fanning the (config, trial)
/// grid across the LDPR_THREADS worker pool: configurations run
/// concurrently on the outer pool and each experiment's trials split
/// whatever threads remain.  Results are returned in input order and
/// are bit-identical to running each config serially.
std::vector<ExperimentResult> RunConfigs(
    const std::vector<ExperimentConfig>& configs, const Dataset& dataset);

/// Runs the (cell x trial) grid of a bespoke bench across the
/// LDPR_THREADS budget: flat index i = cell * trials + trial runs
/// fn(cell, shards, DeriveSeed(seed, i)) on the budgeted outer
/// fan-out (SplitThreadBudget in util/thread_pool.h), where `shards`
/// is each trial's within-trial aggregation share.  Rows come back
/// in flat order, so merging them per cell in trial order keeps
/// bench output byte-identical at any thread count.
template <typename Row, typename TrialFn>
std::vector<Row> RunTrialGrid(size_t cells, size_t trials, uint64_t seed,
                              const TrialFn& fn) {
  const size_t total = cells * trials;
  const ThreadBudget budget = SplitThreadBudget(0, total);
  std::vector<Row> rows(total);
  ParallelFor(budget.outer, total, [&](size_t i) {
    rows[i] = fn(i / trials, budget.inner, DeriveSeed(seed, i));
  });
  return rows;
}

}  // namespace bench
}  // namespace ldpr

#endif  // LDPR_BENCH_BENCH_COMMON_H_
