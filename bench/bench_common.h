// Shared scaffolding for the figure/table reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper's
// evaluation (Section VI-VII) and prints the same rows/series the
// paper reports.  Two environment knobs trade fidelity for speed:
//
//   LDPR_BENCH_SCALE   fraction of the paper's user counts to simulate
//                      (default 0.05; set 1 for paper scale)
//   LDPR_BENCH_TRIALS  trials averaged per configuration
//                      (default 3; the paper uses 10)
//   LDPR_THREADS       worker threads for the experiment fan-out
//                      (default: hardware concurrency)
//
// All benches are deterministic for a fixed (scale, trials) pair at
// any thread count.

#ifndef LDPR_BENCH_BENCH_COMMON_H_
#define LDPR_BENCH_BENCH_COMMON_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "sim/experiment.h"

namespace ldpr {
namespace bench {

/// LDPR_BENCH_SCALE, clamped to (0, 1]; default 0.05.
double ScaleFactor();

/// LDPR_BENCH_TRIALS, at least 1; default 3.
size_t Trials();

/// The IPUMS stand-in, scaled by ScaleFactor().
Dataset BenchIpums();

/// The Fire stand-in, scaled by ScaleFactor().
Dataset BenchFire();

/// Prints the standard bench banner (dataset sizes, scale, trials).
void PrintBanner(const std::string& what);

/// Builds the default experiment config (paper defaults: eps = 0.5,
/// beta = 0.05, r = 10, eta = 0.2) with the bench trial count.
ExperimentConfig DefaultConfig(ProtocolKind protocol, AttackKind attack);

/// Runs every config against `dataset`, fanning the (config, trial)
/// grid across the LDPR_THREADS worker pool: configurations run
/// concurrently on the outer pool and each experiment's trials split
/// whatever threads remain.  Results are returned in input order and
/// are bit-identical to running each config serially.
std::vector<ExperimentResult> RunConfigs(
    const std::vector<ExperimentConfig>& configs, const Dataset& dataset);

}  // namespace bench
}  // namespace ldpr

#endif  // LDPR_BENCH_BENCH_COMMON_H_
