// ldpr_bench: the one driver for every paper figure/table scenario.
//
//   # What can I run?
//   ldpr_bench --list
//
//   # Reproduce Figure 3 and Table I on the console:
//   ldpr_bench --scenario fig3,table1
//
//   # Machine-readable run: per-scenario results.csv / results.jsonl
//   # plus a manifest.json recording seed/scale/threads/git version,
//   # and a top-level results/manifest.json indexing the whole tree
//   # (the input ldpr_diff compares across runs):
//   ldpr_bench --scenario fig3 --out results/
//
//   # Paper fidelity:
//   ldpr_bench --scenario all --scale=1 --trials=10 --out results/
//
// Flags (defaults in brackets): --scenario ID[,ID...]|all, --list,
// --out DIR, --seed [scenario default, 20240213], --trials
// [LDPR_BENCH_TRIALS or 3], --scale [LDPR_BENCH_SCALE or 0.05],
// --threads [0 = auto: LDPR_THREADS or hardware concurrency].
//
// Output is byte-identical at any --threads value; the manifest (not
// the result files) records the thread budget actually used.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "runner/manifest.h"
#include "runner/result_sink.h"
#include "runner/scenario_runner.h"
#include "scenarios.h"
#include "util/flags.h"

namespace ldpr {
namespace bench {
namespace {

std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> out;
  std::string current;
  for (char c : list) {
    if (c == ',') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

void PrintScenarioList() {
  std::printf("%-14s %-12s %s\n", "id", "artifact", "title");
  std::printf("%s\n", std::string(72, '-').c_str());
  for (const Scenario* scenario : ScenarioRegistry::Global().scenarios()) {
    std::printf("%-14s %-12s %s\n", scenario->spec.id.c_str(),
                scenario->spec.artifact.c_str(), scenario->spec.title.c_str());
  }
  std::printf(
      "\nRun with: ldpr_bench --scenario <id>[,<id>...] [--out DIR] "
      "[--scale F] [--trials N] [--seed N] [--threads N]\n");
}

// A sink forwarding the banner to the console only: the console child
// of a --out run prints it, while the data files stay banner-free.
// On --out runs the completed scenario is appended to `tree` for the
// top-level tree manifest.
int RunScenarioById(const std::string& id, const ScenarioRunOptions& options,
                    const std::string& out_dir, TreeManifest& tree) {
  const Scenario* scenario = ScenarioRegistry::Global().Find(id);
  if (scenario == nullptr) {
    std::fprintf(stderr, "error: unknown scenario '%s' (try --list)\n",
                 id.c_str());
    return 1;
  }

  std::vector<std::unique_ptr<ResultSink>> sinks;
  sinks.push_back(std::make_unique<ConsoleSink>());
  std::string scenario_dir;
  if (!out_dir.empty()) {
    scenario_dir = out_dir + "/" + id;
    std::error_code ec;
    std::filesystem::create_directories(scenario_dir, ec);
    if (ec) {
      std::fprintf(stderr, "error: cannot create %s: %s\n",
                   scenario_dir.c_str(), ec.message().c_str());
      return 1;
    }
    auto csv = std::make_unique<CsvSink>(scenario_dir + "/results.csv");
    auto jsonl = std::make_unique<JsonlSink>(scenario_dir + "/results.jsonl");
    if (!csv->ok() || !jsonl->ok()) {
      std::fprintf(stderr, "error: cannot open result files under %s\n",
                   scenario_dir.c_str());
      return 1;
    }
    sinks.push_back(std::move(csv));
    sinks.push_back(std::move(jsonl));
  }
  MultiSink sink(std::move(sinks));

  const auto report = RunScenario(*scenario, options, sink);
  if (!report.ok()) {
    std::fprintf(stderr, "error: scenario %s: %s\n", id.c_str(),
                 report.status().ToString().c_str());
    return 1;
  }
  const Status finish = sink.Finish();
  if (!finish.ok()) {
    std::fprintf(stderr, "error: scenario %s: %s\n", id.c_str(),
                 finish.ToString().c_str());
    return 1;
  }

  if (!scenario_dir.empty()) {
    // The report carries the resolved knobs/dataset sizes the sinks
    // saw, so the manifest is guaranteed to describe the actual run.
    const RunManifest manifest = MakeRunManifest(
        scenario->spec, report->info, *report,
        {"results.csv", "results.jsonl"});
    const Status written =
        WriteManifest(scenario_dir + "/manifest.json", manifest);
    if (!written.ok()) {
      std::fprintf(stderr, "error: scenario %s: %s\n", id.c_str(),
                   written.ToString().c_str());
      return 1;
    }
    TreeManifest::Entry entry;
    entry.id = id;
    entry.seed = report->info.seed;
    entry.scale = report->info.scale;
    entry.trials = report->info.trials;
    for (const std::string& file : manifest.files)
      entry.files.push_back(id + "/" + file);
    entry.files.push_back(id + "/manifest.json");
    tree.scenarios.push_back(std::move(entry));
    std::printf("wrote %s/{results.csv,results.jsonl,manifest.json}\n\n",
                scenario_dir.c_str());
  }
  return 0;
}

int Run(int argc, char** argv) {
  RegisterAllScenarios();
  const FlagParser flags(argc, argv);

  const bool list = flags.GetBool("list", false);
  const std::string scenario_list = flags.GetString("scenario", "");
  const std::string out_dir = flags.GetString("out", "");
  const auto seed = flags.GetInt("seed", 0);
  const auto trials = flags.GetInt("trials", 0);
  const auto scale = flags.GetDouble("scale", 0.0);
  const auto threads = flags.GetInt("threads", -1);

  for (const Status& status :
       {seed.ok() ? Status::Ok() : seed.status(),
        trials.ok() ? Status::Ok() : trials.status(),
        scale.ok() ? Status::Ok() : scale.status(),
        threads.ok() ? Status::Ok() : threads.status()}) {
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  for (const std::string& unused : flags.unused_flags()) {
    std::fprintf(stderr, "error: unknown flag --%s (try --list)\n",
                 unused.c_str());
    return 1;
  }

  if (list) {
    PrintScenarioList();
    return 0;
  }
  if (scenario_list.empty()) {
    std::fprintf(stderr,
                 "usage: ldpr_bench --scenario <id>[,<id>...] [--out DIR]\n"
                 "       ldpr_bench --list\n");
    return 2;
  }
  if (*threads > 0) {
    // The pool is created lazily at first parallel work, so routing
    // the flag through LDPR_THREADS reaches every "0 = auto" caller.
    // 0 keeps the auto default (ldprecover_cli's convention).
    setenv("LDPR_THREADS", std::to_string(*threads).c_str(), 1);
  }

  ScenarioRunOptions options;
  options.seed = static_cast<uint64_t>(*seed < 0 ? 0 : *seed);
  options.trials = static_cast<size_t>(*trials < 0 ? 0 : *trials);
  options.scale = *scale;

  std::vector<std::string> ids = SplitCommaList(scenario_list);
  if (ids.size() == 1 && ids[0] == "all") {
    ids.clear();
    for (const Scenario* scenario : ScenarioRegistry::Global().scenarios())
      ids.push_back(scenario->spec.id);
  }
  if (ids.empty()) {
    std::fprintf(stderr, "error: --scenario list is empty (try --list)\n");
    return 1;
  }
  TreeManifest tree;
  tree.git_describe = GitDescribe();
  for (const std::string& id : ids) {
    const int rc = RunScenarioById(id, options, out_dir, tree);
    if (rc != 0) return rc;
  }
  if (!out_dir.empty()) {
    // The top-level manifest makes the tree self-describing for
    // ldpr_diff: which scenarios ran, under which knobs, into which
    // files.
    const Status written =
        WriteTreeManifest(out_dir + "/manifest.json", tree);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s/manifest.json (%zu scenario%s)\n", out_dir.c_str(),
                tree.scenarios.size(), tree.scenarios.size() == 1 ? "" : "s");
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ldpr

int main(int argc, char** argv) { return ldpr::bench::Run(argc, argv); }
