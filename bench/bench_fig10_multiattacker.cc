// Figure 10 reproduction: LDPRecover against five simultaneous
// adaptive attackers (the multi-attacker threat model of Section
// VII-C), sweeping the total malicious fraction beta, on IPUMS.

#include <string>

#include "bench_common.h"
#include "ldp/factory.h"
#include "util/table.h"

namespace ldpr {
namespace bench {
namespace {

const double kBetas[] = {0.05, 0.10, 0.15, 0.20, 0.25};

void RunProtocol(const Dataset& dataset, ProtocolKind protocol) {
  TablePrinter table(std::string("Figure 10 (IPUMS, MUL-AA-") +
                         ProtocolKindName(protocol) + ", 5 attackers): MSE",
                     {"Before", "LDPRecover"});
  std::vector<ExperimentConfig> configs;
  for (double beta : kBetas) {
    ExperimentConfig config =
        DefaultConfig(protocol, AttackKind::kMultiAdaptive);
    config.pipeline.beta = beta;
    config.pipeline.num_attackers = 5;
    config.run_detection = false;
    config.run_star = false;
    configs.push_back(config);
  }
  const std::vector<ExperimentResult> results = RunConfigs(configs, dataset);
  for (size_t i = 0; i < results.size(); ++i) {
    char row[32];
    std::snprintf(row, sizeof(row), "beta=%g", kBetas[i]);
    table.AddRow(row,
                 {results[i].mse_before.mean(), results[i].mse_recover.mean()});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace ldpr

int main() {
  using namespace ldpr::bench;
  PrintBanner(
      "bench_fig10_multiattacker: Figure 10 — multi-attacker adaptive "
      "poisoning");
  const ldpr::Dataset ipums = BenchIpums();
  for (ldpr::ProtocolKind protocol : ldpr::kAllProtocolKinds)
    RunProtocol(ipums, protocol);
  return 0;
}
