// Figure 6 reproduction: impact of beta, epsilon, and eta on recovery
// from the adaptive attack, Fire dataset.

#include "bench_sweeps_common.h"

int main() {
  using namespace ldpr::bench;
  PrintBanner(
      "bench_fig6_sweeps_fire: Figure 6 — parameter sweeps (AA, Fire)");
  RunAdaptiveAttackSweeps(BenchFire(), "Fire");
  return 0;
}
