// Scaling-law scenarios (beyond the paper): how accuracy and
// wall-time behave as the deployment grows along the two axes the
// paper holds fixed.
//
//   scaling_n — user count n ∈ {1e4 … 1e6} (times --scale) at the
//               default domain size;
//   scaling_d — domain size d ∈ {32 … 4096} at the default user
//               count;
//
// both swept across all five factory protocols under a genuine
// workload and under MGA, on the resizable synthetic zipf/uniform
// generators (the dataset axes resolve by generator name — fixed-
// shape datasets reject overrides).
//
// Expected trends: MSE shrinks ~1/n along the n axis (LDP estimator
// variance) and grows with d for the unary-encoding family; trial
// wall time is ~O(d) for the closed-form aggregation paths plus
// O(beta·n) for materialized malicious reports.  The timing columns
// ("secs/trial", "users/s") are wall-clock measurements and are
// declared in timing_columns, which keeps them out of exact result
// comparisons (ldpr_diff --exact, the determinism ctest entries).

#include <iterator>

#include "ldp/factory.h"
#include "scenarios.h"

namespace ldpr {
namespace bench {
namespace {

// Shared column layout of both scaling scenarios: accuracy for the
// genuine and MGA workloads plus wall-time/throughput.  Rows carry
// two configs, r[0] = genuine (AttackKind::kNone), r[1] = MGA.
void FillScalingSpec(ScenarioSpec& spec) {
  spec.artifact = "extension";
  spec.protocols.assign(std::begin(kExtendedProtocolKinds),
                        std::end(kExtendedProtocolKinds));
  spec.attacks = {AttackKind::kNone, AttackKind::kMga};
  spec.columns = {"genuine-MSE", "MGA-MSE", "MGA-Rec-MSE", "secs/trial",
                  "users/s"};
  spec.timing_columns = {"secs/trial", "users/s"};
  // Keep the grid focused on recovery + scaling: the Detection and
  // LDPRecover* baselines have their own scenarios (fig3, fig4).
  spec.defaults.run_detection = false;
  spec.defaults.run_star = false;
}

std::vector<double> FormatScalingRow(const std::vector<ExperimentResult>& r) {
  const ExperimentResult& genuine = r[0];
  const ExperimentResult& mga = r[1];
  const double secs =
      genuine.trial_seconds.mean() + mga.trial_seconds.mean();
  const double users =
      static_cast<double>(genuine.users_per_trial + mga.users_per_trial);
  return {genuine.mse_before.mean(), mga.mse_before.mean(),
          mga.mse_recover.mean(), secs, secs > 0 ? users / secs : 0.0};
}

}  // namespace

void RegisterScalingN(ScenarioRegistry& registry) {
  Scenario scenario;
  ScenarioSpec& spec = scenario.spec;
  spec.id = "scaling_n";
  spec.title = "scaling_n: accuracy/throughput scaling with user count";
  spec.metric_desc = "genuine vs MGA accuracy + throughput";
  spec.table_label = "Scaling";
  spec.title_appends_param = true;
  spec.datasets = {"zipf", "uniform"};
  FillScalingSpec(spec);
  spec.sweeps = {{SweepParam::kNumUsers, {1e4, 3e4, 1e5, 3e5, 1e6}}};
  scenario.format_row = FormatScalingRow;
  registry.Register(std::move(scenario));
}

void RegisterScalingD(ScenarioRegistry& registry) {
  Scenario scenario;
  ScenarioSpec& spec = scenario.spec;
  spec.id = "scaling_d";
  spec.title = "scaling_d: accuracy/throughput scaling with domain size";
  spec.metric_desc = "genuine vs MGA accuracy + throughput";
  spec.table_label = "Scaling";
  spec.title_appends_param = true;
  spec.datasets = {"zipf"};
  FillScalingSpec(spec);
  spec.sweeps = {{SweepParam::kDomainSize, {32, 128, 512, 2048, 4096}}};
  scenario.format_row = FormatScalingRow;
  registry.Register(std::move(scenario));
}

}  // namespace bench
}  // namespace ldpr
