// Figure 4 reproduction: frequency gain (FG) of the MGA targeted
// attack before recovery and under Detection / LDPRecover /
// LDPRecover*, for both datasets and all three protocols.

#include <string>

#include "bench_common.h"
#include "ldp/factory.h"
#include "util/table.h"

namespace ldpr {
namespace bench {
namespace {

void RunDataset(const Dataset& dataset, const char* label) {
  TablePrinter table(
      std::string("Figure 4 (") + label + "): frequency gain under MGA",
      {"Before", "Detection", "LDPRecover", "LDPRecover*"});
  for (ProtocolKind protocol : kAllProtocolKinds) {
    ExperimentConfig config = DefaultConfig(protocol, AttackKind::kMga);
    const ExperimentResult r = RunExperiment(config, dataset);
    table.AddRow(std::string("MGA-") + ProtocolKindName(protocol),
                 {r.fg_before.mean(), r.fg_detection.mean(),
                  r.fg_recover.mean(), r.fg_recover_star.mean()});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace ldpr

int main() {
  using namespace ldpr::bench;
  PrintBanner("bench_fig4_fg: Figure 4 — targeted attack frequency gain");
  RunDataset(BenchIpums(), "IPUMS");
  RunDataset(BenchFire(), "Fire");
  return 0;
}
