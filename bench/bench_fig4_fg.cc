// Figure 4 reproduction: frequency gain (FG) of the MGA targeted
// attack before recovery and under Detection / LDPRecover /
// LDPRecover*, for both datasets and all three protocols.

#include <string>
#include <vector>

#include "bench_common.h"
#include "ldp/factory.h"
#include "util/table.h"

namespace ldpr {
namespace bench {
namespace {

void RunDataset(const Dataset& dataset, const char* label) {
  TablePrinter table(
      std::string("Figure 4 (") + label + "): frequency gain under MGA",
      {"Before", "Detection", "LDPRecover", "LDPRecover*"});
  std::vector<ExperimentConfig> configs;
  for (ProtocolKind protocol : kAllProtocolKinds) {
    configs.push_back(DefaultConfig(protocol, AttackKind::kMga));
  }
  const std::vector<ExperimentResult> results = RunConfigs(configs, dataset);
  for (size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& r = results[i];
    table.AddRow(std::string("MGA-") + ProtocolKindName(kAllProtocolKinds[i]),
                 {r.fg_before.mean(), r.fg_detection.mean(),
                  r.fg_recover.mean(), r.fg_recover_star.mean()});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace ldpr

int main() {
  using namespace ldpr::bench;
  PrintBanner("bench_fig4_fg: Figure 4 — targeted attack frequency gain");
  RunDataset(BenchIpums(), "IPUMS");
  RunDataset(BenchFire(), "Fire");
  return 0;
}
