// Figures 5 and 6: impact of beta, epsilon, and eta on recovery from
// the adaptive attack — the paper's parameter sweeps (Section VI-D),
// Figure 5 on IPUMS and Figure 6 on Fire.  One table per
// (protocol, swept parameter) pair, matching the sub-figure columns.

#include <iterator>

#include "ldp/factory.h"
#include "scenarios.h"

namespace ldpr {
namespace bench {
namespace {

Scenario MakeSweepScenario(const std::string& id, const std::string& figure,
                           const std::string& dataset) {
  Scenario scenario;
  ScenarioSpec& spec = scenario.spec;
  spec.id = id;
  spec.title = id + ": " + figure + " — parameter sweeps (AA, " +
               (dataset == "ipums" ? "IPUMS" : "Fire") + ")";
  spec.artifact = figure;
  spec.table_label = "Fig 5/6";
  spec.metric_desc = "MSE";
  spec.title_appends_param = true;
  spec.datasets = {dataset};
  spec.protocols.assign(std::begin(kAllProtocolKinds),
                        std::end(kAllProtocolKinds));
  spec.attacks = {AttackKind::kAdaptive};
  spec.protocol_tag = "AA-";
  // The paper's sweep grids (Section VI-D).
  spec.sweeps = {
      {SweepParam::kBeta, {0.001, 0.005, 0.01, 0.05, 0.1}},
      {SweepParam::kEpsilon, {0.1, 0.2, 0.4, 0.8, 1.6}},
      {SweepParam::kEta, {0.01, 0.05, 0.1, 0.2, 0.4}},
  };
  spec.columns = {"Before", "LDPRecover", "LDPRecover*"};
  spec.defaults.run_detection = false;
  scenario.format_row = [](const std::vector<ExperimentResult>& r) {
    return std::vector<double>{r[0].mse_before.mean(), r[0].mse_recover.mean(),
                               r[0].mse_recover_star.mean()};
  };
  return scenario;
}

}  // namespace

void RegisterFig5Fig6(ScenarioRegistry& registry) {
  registry.Register(MakeSweepScenario("fig5", "Figure 5", "ipums"));
  registry.Register(MakeSweepScenario("fig6", "Figure 6", "fire"));
}

}  // namespace bench
}  // namespace ldpr
