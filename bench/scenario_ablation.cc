// Ablation scenario (DESIGN.md section 5): which parts of LDPRecover
// do the work?  Compares, under MGA and AA on IPUMS:
//
//   Before        the raw poisoned estimate;
//   Full          LDPRecover as published (subtract + refine);
//   NoSubtract    (1+eta) rescale + KKT refinement only;
//   NoRefine      Eq. (27) raw (subtract, no simplex projection);
//   ClipRenorm    clamp negatives + multiplicative renormalization
//                 (the standard post-processing baseline);
//   NormSub       KKT projection of the poisoned estimate directly.
//
// The (cell x trial) grid fans out across LDPR_THREADS: trial t of
// cell c runs on Rng(DeriveSeed(seed, c * trials + t)) and the
// per-trial MSEs merge in trial order, so the output is
// byte-identical at any thread count.

#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "ldp/factory.h"
#include "recover/ldprecover.h"
#include "recover/normalization.h"
#include "runner/scenario_runner.h"
#include "scenarios.h"
#include "sim/pipeline.h"
#include "util/metrics.h"

namespace ldpr {
namespace bench {
namespace {

struct TrialRow {
  double before = 0, full = 0, nosub = 0, norefine = 0, clip = 0, normsub = 0;
};

TrialRow RunOneTrial(const FrequencyProtocol& protocol, const Dataset& dataset,
                     const PipelineConfig& pconfig, uint64_t trial_seed) {
  RecoverOptions full;
  RecoverOptions no_sub;
  no_sub.ablate_no_subtraction = true;
  RecoverOptions no_refine;
  no_refine.ablate_no_refinement = true;

  Rng rng(trial_seed);
  const TrialOutput t = RunPoisoningTrial(protocol, pconfig, dataset, rng);
  TrialRow row;
  row.before = Mse(t.true_freqs, t.poisoned_freqs);
  row.full =
      Mse(t.true_freqs, LdpRecover(protocol, full).Recover(t.poisoned_freqs));
  row.nosub =
      Mse(t.true_freqs, LdpRecover(protocol, no_sub).Recover(t.poisoned_freqs));
  row.norefine = Mse(t.true_freqs,
                     LdpRecover(protocol, no_refine).Recover(t.poisoned_freqs));
  row.clip = Mse(t.true_freqs, ClipAndRenormalize(t.poisoned_freqs));
  row.normsub = Mse(t.true_freqs, NormSub(t.poisoned_freqs));
  return row;
}

Status RunAblation(ScenarioContext& ctx) {
  const ScenarioSpec& spec = ctx.spec;
  const Dataset& ipums = ctx.datasets[0];

  std::vector<ScenarioCell> cells;
  for (AttackKind attack : spec.attacks) {
    for (ProtocolKind kind : spec.protocols) cells.push_back({attack, kind});
  }
  std::vector<std::unique_ptr<FrequencyProtocol>> protocols;
  for (const ScenarioCell& cell : cells)
    protocols.push_back(MakeProtocol(cell.protocol, ipums.domain_size(),
                                     spec.defaults.epsilon));

  const size_t trials = ctx.trials;
  ThreadBudget budget;
  const std::vector<TrialRow> rows = RunTrialGrid<TrialRow>(
      cells.size(), trials, ctx.seed,
      [&](size_t cell, size_t shards, uint64_t trial_seed) {
        PipelineConfig config;
        config.attack = cells[cell].attack;
        config.beta = spec.defaults.beta;
        config.shards = shards;
        return RunOneTrial(*protocols[cell], ipums, config, trial_seed);
      },
      &budget);
  ctx.report.outer_workers = budget.outer;
  ctx.report.shards = budget.inner;

  ctx.sink.BeginTable("Ablation (IPUMS): MSE", spec.columns);
  for (size_t cell = 0; cell < cells.size(); ++cell) {
    RunningStat before, full, nosub, norefine, clip, normsub;
    for (size_t t = 0; t < trials; ++t) {
      const TrialRow& row = rows[cell * trials + t];
      before.Add(row.before);
      full.Add(row.full);
      nosub.Add(row.nosub);
      norefine.Add(row.norefine);
      clip.Add(row.clip);
      normsub.Add(row.normsub);
    }
    const std::string name =
        std::string(AttackKindName(cells[cell].attack)) + "-" +
        ProtocolKindName(cells[cell].protocol);
    ctx.sink.AddRow(name, {before.mean(), full.mean(), nosub.mean(),
                           norefine.mean(), clip.mean(), normsub.mean()});
    ++ctx.report.rows;
    if ((cell + 1) % spec.protocols.size() == 0 && cell + 1 < cells.size())
      ctx.sink.AddSeparator();
  }
  ctx.sink.EndTable();
  ++ctx.report.tables;
  return Status::Ok();
}

}  // namespace

void RegisterAblation(ScenarioRegistry& registry) {
  Scenario scenario;
  ScenarioSpec& spec = scenario.spec;
  spec.id = "ablation";
  spec.title = "ablation: LDPRecover component ablation (MSE)";
  spec.artifact = "extension";
  spec.metric_desc = "MSE";
  spec.datasets = {"ipums"};
  spec.protocols.assign(std::begin(kAllProtocolKinds),
                        std::end(kAllProtocolKinds));
  spec.attacks = {AttackKind::kMga, AttackKind::kAdaptive};
  spec.columns = {"Before",     "Full",       "NoSubtract",
                  "NoRefine",   "ClipRenorm", "NormSub"};
  spec.custom = true;
  scenario.run = RunAblation;
  registry.Register(std::move(scenario));
}

}  // namespace bench
}  // namespace ldpr
