// bench_aggregation_batch: measures the batched report-aggregation
// hot path (FrequencyProtocol::AccumulateSupportsBatch) against the
// per-report AccumulateSupports loop it replaces, on MGA-crafted
// reports — the report-heavy malicious stream every poisoning trial
// accumulates.  Three paths per protocol: the per-report loop, the
// span-mode compat shim (AoS vector wrapped in a ReportBatch view),
// and the builder-mode SoA batch the generation pipeline now produces
// everywhere.
//
// Usage:
//   bench_aggregation_batch [--d N] [--epsilon E] [--targets R]
//       [--reports N] [--reps K] [--protocol GRR|OUE|OLH|SUE|BLH]
//
// --reports 0 (default) picks a per-protocol count sized for a few
// hundred milliseconds per measurement.  Each path gets one untimed
// warmup pass (first-touch paging, frequency ramp) and then exactly
// --reps timed back-to-back passes; min and median of those rates
// are printed ("users/s": reports accumulated per second, the
// scaling scenarios' throughput unit).  Byte-identical support
// counts across all three paths are verified before any timing.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "attack/mga.h"
#include "ldp/factory.h"
#include "ldp/protocol.h"
#include "ldp/report_batch.h"
#include "util/flags.h"
#include "util/random.h"

namespace ldpr {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct RateStats {
  double min = 0.0;
  double median = 0.0;
};

// One untimed warmup pass, then exactly `reps` timed back-to-back
// passes of `run`; returns min and median of the per-pass rates.
// Back-to-back repetition (instead of interleaving the paths) keeps
// each measurement in its own steady state.
template <typename Fn>
RateStats MeasureRates(int reps, size_t n, Fn&& run) {
  run();  // warmup
  std::vector<double> rates(static_cast<size_t>(reps));
  for (double& rate : rates) {
    const auto start = std::chrono::steady_clock::now();
    run();
    rate = static_cast<double>(n) / SecondsSince(start);
  }
  std::sort(rates.begin(), rates.end());
  RateStats stats;
  stats.min = rates.front();
  const size_t mid = rates.size() / 2;
  stats.median = (rates.size() % 2 == 1)
                     ? rates[mid]
                     : 0.5 * (rates[mid - 1] + rates[mid]);
  return stats;
}

size_t DefaultReports(ProtocolKind kind, size_t d) {
  // The support-set protocols pay O(d) per report; keep total
  // (report, item) pairs comparable across protocols.
  if (kind == ProtocolKind::kGrr) return 4u << 20;
  return (64u << 20) / (d == 0 ? 1 : d);
}

int Run(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  const auto d = flags.GetInt("d", 1024);
  const auto epsilon = flags.GetDouble("epsilon", 1.0);
  const auto targets = flags.GetInt("targets", 10);
  const auto reports_flag = flags.GetInt("reports", 0);
  const auto reps = flags.GetInt("reps", 3);
  const std::string protocol_filter = flags.GetString("protocol", "");
  for (const Status& status :
       {d.ok() ? Status::Ok() : d.status(),
        epsilon.ok() ? Status::Ok() : epsilon.status(),
        targets.ok() ? Status::Ok() : targets.status(),
        reports_flag.ok() ? Status::Ok() : reports_flag.status(),
        reps.ok() ? Status::Ok() : reps.status()}) {
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  for (const std::string& unused : flags.unused_flags()) {
    std::fprintf(stderr, "error: unknown flag --%s\n", unused.c_str());
    return 1;
  }
  if (*d < 2) {
    std::fprintf(stderr, "error: INVALID_ARGUMENT: --d must be >= 2\n");
    return 1;
  }
  if (*targets < 1 || *targets > *d) {
    std::fprintf(stderr,
                 "error: INVALID_ARGUMENT: --targets must be in [1, d]\n");
    return 1;
  }
  if (*reps < 1) {
    std::fprintf(stderr, "error: INVALID_ARGUMENT: --reps must be >= 1\n");
    return 1;
  }
  if (*reports_flag < 0) {
    std::fprintf(stderr, "error: INVALID_ARGUMENT: --reports must be >= 0\n");
    return 1;
  }
  const bool filter_active = !protocol_filter.empty();
  ProtocolKind filter_kind = ProtocolKind::kGrr;
  if (filter_active) {
    const auto parsed = ParseProtocolKind(protocol_filter);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
    filter_kind = *parsed;
  }

  std::printf("aggregation batch-vs-per-report, d=%lld eps=%g r=%lld "
              "(MGA-crafted reports)\n",
              static_cast<long long>(*d), *epsilon,
              static_cast<long long>(*targets));

  for (ProtocolKind kind : kExtendedProtocolKinds) {
    if (filter_active && kind != filter_kind) continue;
    const auto proto =
        MakeProtocol(kind, static_cast<size_t>(*d), *epsilon);
    const size_t n = *reports_flag > 0
                         ? static_cast<size_t>(*reports_flag)
                         : DefaultReports(kind, static_cast<size_t>(*d));
    constexpr uint64_t kCraftSeed = 1;  // same crafted reports every run
    Rng rng(kCraftSeed);
    const MgaAttack mga(MgaAttack::SampleTargets(
        static_cast<size_t>(*d), static_cast<size_t>(*targets), rng));
    const std::vector<Report> reports = mga.Craft(*proto, n, rng);

    // Correctness first: both paths must agree byte for byte.
    std::vector<double> per_report_counts(proto->domain_size(), 0.0);
    for (const Report& r : reports)
      proto->AccumulateSupports(r, per_report_counts);
    std::vector<double> batched_counts(proto->domain_size(), 0.0);
    proto->AccumulateSupportsBatch(ReportBatch(reports), batched_counts);
    if (per_report_counts != batched_counts) {
      std::fprintf(stderr, "error: %s batched counts differ from per-report\n",
                   proto->Name().c_str());
      return 1;
    }

    // A builder-mode (SoA) copy of the same reports: the shape the
    // generation pipeline (CraftBatch, AppendGenuineReports, the
    // DetectionFilter flush buffers) hands the batch path — no
    // per-report AoS stride in the loop at all.
    ReportBatch soa;
    soa.Reserve(n, reports.empty() ? 0 : reports[0].bits.size());
    for (const Report& r : reports) soa.Append(r);

    std::vector<double> scratch(proto->domain_size());
    const RateStats per_report = MeasureRates(*reps, n, [&] {
      std::fill(scratch.begin(), scratch.end(), 0.0);
      for (const Report& r : reports) proto->AccumulateSupports(r, scratch);
    });
    // The span compat shim: AoS vector wrapped in a ReportBatch view,
    // classified and accumulated through per-row gather tiles.
    const RateStats span = MeasureRates(*reps, n, [&] {
      std::fill(scratch.begin(), scratch.end(), 0.0);
      proto->AccumulateSupportsBatch(ReportBatch(reports), scratch);
    });
    const RateStats batched = MeasureRates(*reps, n, [&] {
      std::fill(scratch.begin(), scratch.end(), 0.0);
      proto->AccumulateSupportsBatch(soa, scratch);
    });
    std::printf("%-4s reports=%-8zu per-report min %11.0f med %11.0f   "
                "batched(span) min %11.0f med %11.0f (%.2fx)   "
                "batched(SoA) min %11.0f med %11.0f (%.2fx)\n",
                proto->Name().c_str(), n, per_report.min, per_report.median,
                span.min, span.median, span.median / per_report.median,
                batched.min, batched.median,
                batched.median / per_report.median);
  }
  return 0;
}

}  // namespace
}  // namespace ldpr

int main(int argc, char** argv) { return ldpr::Run(argc, argv); }
