// Figure 7: MSE between the malicious frequencies estimated by
// LDPRecover / LDPRecover* and the true malicious frequencies, under
// MGA on IPUMS, sweeping beta in [0.05, 0.25].

#include <iterator>

#include "ldp/factory.h"
#include "scenarios.h"

namespace ldpr {
namespace bench {

void RegisterFig7(ScenarioRegistry& registry) {
  Scenario scenario;
  ScenarioSpec& spec = scenario.spec;
  spec.id = "fig7";
  spec.title =
      "fig7: Figure 7 — estimated vs true malicious frequencies";
  spec.artifact = "Figure 7";
  spec.metric_desc = "malicious frequency estimation MSE";
  spec.datasets = {"ipums"};
  spec.protocols.assign(std::begin(kAllProtocolKinds),
                        std::end(kAllProtocolKinds));
  spec.attacks = {AttackKind::kMga};
  spec.protocol_tag = "MGA-";
  spec.sweeps = {{SweepParam::kBeta, {0.05, 0.10, 0.15, 0.20, 0.25}}};
  spec.columns = {"LDPRecover", "LDPRecover*"};
  spec.defaults.run_detection = false;
  scenario.format_row = [](const std::vector<ExperimentResult>& r) {
    return std::vector<double>{r[0].mse_malicious_recover.mean(),
                               r[0].mse_malicious_recover_star.mean()};
  };
  registry.Register(std::move(scenario));
}

}  // namespace bench
}  // namespace ldpr
