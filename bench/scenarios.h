// The figure/table scenario registrations behind the ldpr_bench
// driver.  Each scenario_*.cc file re-expresses one former bespoke
// bench main as a declarative ScenarioSpec plus its row-formatting
// callback (or, for the bespoke trial loops, a custom run function),
// registered into the process-wide ScenarioRegistry.
//
// Registration is explicit: call RegisterAllScenarios() once before
// using ScenarioRegistry::Global().  Idempotent.

#ifndef LDPR_BENCH_SCENARIOS_H_
#define LDPR_BENCH_SCENARIOS_H_

#include "runner/registry.h"

namespace ldpr {
namespace bench {

void RegisterTable1(ScenarioRegistry& registry);
void RegisterFig3(ScenarioRegistry& registry);
void RegisterFig4(ScenarioRegistry& registry);
void RegisterFig5Fig6(ScenarioRegistry& registry);
void RegisterFig7(ScenarioRegistry& registry);
void RegisterFig8(ScenarioRegistry& registry);
void RegisterFig9(ScenarioRegistry& registry);
void RegisterFig10(ScenarioRegistry& registry);
void RegisterAblation(ScenarioRegistry& registry);
void RegisterExtProtocols(ScenarioRegistry& registry);
void RegisterScalingN(ScenarioRegistry& registry);
void RegisterScalingD(ScenarioRegistry& registry);
void RegisterStreamingEquiv(ScenarioRegistry& registry);
void RegisterStreamingWave(ScenarioRegistry& registry);
void RegisterStreamingRamp(ScenarioRegistry& registry);
void RegisterStreamingDrift(ScenarioRegistry& registry);
void RegisterShardFaultLoss(ScenarioRegistry& registry);
void RegisterShardFaultMixed(ScenarioRegistry& registry);

/// Registers every paper figure/table scenario into the global
/// registry, in the order `ldpr_bench --list` reports them.  Safe to
/// call more than once.
void RegisterAllScenarios();

}  // namespace bench
}  // namespace ldpr

#endif  // LDPR_BENCH_SCENARIOS_H_
