#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

#include "data/synthetic.h"
#include "util/math_util.h"
#include "util/thread_pool.h"

namespace ldpr {
namespace bench {

double ScaleFactor() {
  const char* env = std::getenv("LDPR_BENCH_SCALE");
  if (env == nullptr) return 0.05;
  const double v = std::atof(env);
  return Clamp(v, 1e-4, 1.0);
}

size_t Trials() {
  const char* env = std::getenv("LDPR_BENCH_TRIALS");
  if (env == nullptr) return 3;
  const long v = std::atol(env);
  return v < 1 ? 1 : static_cast<size_t>(v);
}

Dataset BenchIpums() { return ScaleDataset(MakeIpumsLike(), ScaleFactor()); }

Dataset BenchFire() { return ScaleDataset(MakeFireLike(), ScaleFactor()); }

void PrintBanner(const std::string& what) {
  const Dataset ipums = BenchIpums();
  const Dataset fire = BenchFire();
  std::printf(
      "%s\n"
      "scale=%.3g (LDPR_BENCH_SCALE), trials=%zu (LDPR_BENCH_TRIALS), "
      "threads=%zu (LDPR_THREADS)\n"
      "IPUMS-like: d=%zu n=%llu | Fire-like: d=%zu n=%llu\n\n",
      what.c_str(), ScaleFactor(), Trials(), DefaultThreadCount(),
      ipums.domain_size(),
      static_cast<unsigned long long>(ipums.num_users()), fire.domain_size(),
      static_cast<unsigned long long>(fire.num_users()));
}

ExperimentConfig DefaultConfig(ProtocolKind protocol, AttackKind attack) {
  ExperimentConfig config;
  config.protocol = protocol;
  config.epsilon = 0.5;
  config.pipeline.attack = attack;
  config.pipeline.beta = 0.05;
  config.pipeline.num_targets = 10;
  config.eta = 0.2;
  config.trials = Trials();
  config.seed = 20240213;
  return config;
}

std::vector<ExperimentResult> RunConfigs(
    const std::vector<ExperimentConfig>& configs, const Dataset& dataset) {
  // Split the pool between the configuration fan-out and each
  // experiment's own trial fan-out (the shared SplitThreadBudget
  // policy); the remainder of the division goes to the first configs
  // so no worker sits idle (results don't depend on thread counts,
  // so this stays deterministic).
  const size_t threads = DefaultThreadCount();
  const ThreadBudget budget = SplitThreadBudget(threads, configs.size());
  const size_t used = budget.inner * budget.outer;
  const size_t remainder = threads > used ? threads - used : 0;

  std::vector<ExperimentResult> results(configs.size());
  ParallelFor(budget.outer, configs.size(), [&](size_t i) {
    ExperimentConfig config = configs[i];
    config.threads = budget.inner + (i < remainder ? 1 : 0);
    results[i] = RunExperiment(config, dataset);
  });
  return results;
}

}  // namespace bench
}  // namespace ldpr
