#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

#include "data/synthetic.h"
#include "util/math_util.h"

namespace ldpr {
namespace bench {

double ScaleFactor() {
  const char* env = std::getenv("LDPR_BENCH_SCALE");
  if (env == nullptr) return 0.05;
  const double v = std::atof(env);
  return Clamp(v, 1e-4, 1.0);
}

size_t Trials() {
  const char* env = std::getenv("LDPR_BENCH_TRIALS");
  if (env == nullptr) return 3;
  const long v = std::atol(env);
  return v < 1 ? 1 : static_cast<size_t>(v);
}

Dataset BenchIpums() { return ScaleDataset(MakeIpumsLike(), ScaleFactor()); }

Dataset BenchFire() { return ScaleDataset(MakeFireLike(), ScaleFactor()); }

void PrintBanner(const std::string& what) {
  const Dataset ipums = BenchIpums();
  const Dataset fire = BenchFire();
  std::printf(
      "%s\n"
      "scale=%.3g (LDPR_BENCH_SCALE), trials=%zu (LDPR_BENCH_TRIALS)\n"
      "IPUMS-like: d=%zu n=%llu | Fire-like: d=%zu n=%llu\n\n",
      what.c_str(), ScaleFactor(), Trials(), ipums.domain_size(),
      static_cast<unsigned long long>(ipums.num_users()), fire.domain_size(),
      static_cast<unsigned long long>(fire.num_users()));
}

ExperimentConfig DefaultConfig(ProtocolKind protocol, AttackKind attack) {
  ExperimentConfig config;
  config.protocol = protocol;
  config.epsilon = 0.5;
  config.pipeline.attack = attack;
  config.pipeline.beta = 0.05;
  config.pipeline.num_targets = 10;
  config.eta = 0.2;
  config.trials = Trials();
  config.seed = 20240213;
  return config;
}

}  // namespace bench
}  // namespace ldpr
