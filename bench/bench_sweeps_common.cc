#include "bench_sweeps_common.h"

#include "ldp/factory.h"

#include <string>
#include <vector>

#include "util/table.h"

namespace ldpr {
namespace bench {
namespace {

// The paper's sweep grids (Section VI-D).
const double kBetas[] = {0.001, 0.005, 0.01, 0.05, 0.1};
const double kEpsilons[] = {0.1, 0.2, 0.4, 0.8, 1.6};
const double kEtas[] = {0.01, 0.05, 0.1, 0.2, 0.4};

std::string Fmt(const char* name, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s=%g", name, v);
  return buf;
}

// One sweep = one printed table; the configs of every sweep are
// collected first so RunConfigs can fan the whole grid over the
// worker pool, then rows print in grid order.
struct Sweep {
  TablePrinter table;
  std::vector<ExperimentConfig> configs;
  std::vector<std::string> rows;
};

Sweep BuildSweep(const char* label, ProtocolKind protocol,
                 const char* param) {
  Sweep sweep{TablePrinter(std::string("Fig 5/6 (") + label + ", AA-" +
                               ProtocolKindName(protocol) + "): MSE vs " +
                               param,
                           {"Before", "LDPRecover", "LDPRecover*"}),
              {},
              {}};
  auto add = [&](const ExperimentConfig& config, const std::string& row) {
    sweep.configs.push_back(config);
    sweep.rows.push_back(row);
  };

  if (std::string(param) == "beta") {
    for (double beta : kBetas) {
      ExperimentConfig config = DefaultConfig(protocol, AttackKind::kAdaptive);
      config.run_detection = false;
      config.pipeline.beta = beta;
      add(config, Fmt("beta", beta));
    }
  } else if (std::string(param) == "epsilon") {
    for (double eps : kEpsilons) {
      ExperimentConfig config = DefaultConfig(protocol, AttackKind::kAdaptive);
      config.run_detection = false;
      config.epsilon = eps;
      add(config, Fmt("eps", eps));
    }
  } else {
    for (double eta : kEtas) {
      ExperimentConfig config = DefaultConfig(protocol, AttackKind::kAdaptive);
      config.run_detection = false;
      config.eta = eta;
      add(config, Fmt("eta", eta));
    }
  }
  return sweep;
}

}  // namespace

void RunAdaptiveAttackSweeps(const Dataset& dataset, const char* label) {
  std::vector<Sweep> sweeps;
  for (ProtocolKind protocol : kAllProtocolKinds) {
    for (const char* param : {"beta", "epsilon", "eta"}) {
      sweeps.push_back(BuildSweep(label, protocol, param));
    }
  }

  // Flatten every sweep's grid into one batch so the pool sees all
  // configurations at once, then scatter results back per table.
  std::vector<ExperimentConfig> all_configs;
  for (const Sweep& sweep : sweeps) {
    all_configs.insert(all_configs.end(), sweep.configs.begin(),
                       sweep.configs.end());
  }
  const std::vector<ExperimentResult> all_results =
      RunConfigs(all_configs, dataset);

  size_t next = 0;
  for (Sweep& sweep : sweeps) {
    for (size_t i = 0; i < sweep.configs.size(); ++i) {
      const ExperimentResult& r = all_results[next++];
      sweep.table.AddRow(sweep.rows[i],
                         {r.mse_before.mean(), r.mse_recover.mean(),
                          r.mse_recover_star.mean()});
    }
    sweep.table.Print();
  }
}

}  // namespace bench
}  // namespace ldpr
