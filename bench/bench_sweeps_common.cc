#include "bench_sweeps_common.h"

#include "ldp/factory.h"

#include <string>
#include <vector>

#include "util/table.h"

namespace ldpr {
namespace bench {
namespace {

// The paper's sweep grids (Section VI-D).
const double kBetas[] = {0.001, 0.005, 0.01, 0.05, 0.1};
const double kEpsilons[] = {0.1, 0.2, 0.4, 0.8, 1.6};
const double kEtas[] = {0.01, 0.05, 0.1, 0.2, 0.4};

std::string Fmt(const char* name, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s=%g", name, v);
  return buf;
}

void RunOneSweep(const Dataset& dataset, const char* label,
                 ProtocolKind protocol, const char* param) {
  TablePrinter table(std::string("Fig 5/6 (") + label + ", AA-" +
                         ProtocolKindName(protocol) + "): MSE vs " + param,
                     {"Before", "LDPRecover", "LDPRecover*"});
  auto run = [&](const ExperimentConfig& config, const std::string& row) {
    const ExperimentResult r = RunExperiment(config, dataset);
    table.AddRow(row, {r.mse_before.mean(), r.mse_recover.mean(),
                       r.mse_recover_star.mean()});
  };

  if (std::string(param) == "beta") {
    for (double beta : kBetas) {
      ExperimentConfig config = DefaultConfig(protocol, AttackKind::kAdaptive);
      config.run_detection = false;
      config.pipeline.beta = beta;
      run(config, Fmt("beta", beta));
    }
  } else if (std::string(param) == "epsilon") {
    for (double eps : kEpsilons) {
      ExperimentConfig config = DefaultConfig(protocol, AttackKind::kAdaptive);
      config.run_detection = false;
      config.epsilon = eps;
      run(config, Fmt("eps", eps));
    }
  } else {
    for (double eta : kEtas) {
      ExperimentConfig config = DefaultConfig(protocol, AttackKind::kAdaptive);
      config.run_detection = false;
      config.eta = eta;
      run(config, Fmt("eta", eta));
    }
  }
  table.Print();
}

}  // namespace

void RunAdaptiveAttackSweeps(const Dataset& dataset, const char* label) {
  for (ProtocolKind protocol : kAllProtocolKinds) {
    RunOneSweep(dataset, label, protocol, "beta");
    RunOneSweep(dataset, label, protocol, "epsilon");
    RunOneSweep(dataset, label, protocol, "eta");
  }
}

}  // namespace bench
}  // namespace ldpr
