#include "scenarios.h"

namespace ldpr {
namespace bench {

void RegisterAllScenarios() {
  static const bool registered = [] {
    ScenarioRegistry& registry = ScenarioRegistry::Global();
    RegisterTable1(registry);
    RegisterFig3(registry);
    RegisterFig4(registry);
    RegisterFig5Fig6(registry);
    RegisterFig7(registry);
    RegisterFig8(registry);
    RegisterFig9(registry);
    RegisterFig10(registry);
    RegisterAblation(registry);
    RegisterExtProtocols(registry);
    RegisterScalingN(registry);
    RegisterScalingD(registry);
    RegisterStreamingEquiv(registry);
    RegisterStreamingWave(registry);
    RegisterStreamingRamp(registry);
    RegisterStreamingDrift(registry);
    RegisterShardFaultLoss(registry);
    RegisterShardFaultMixed(registry);
    return true;
  }();
  (void)registered;
}

}  // namespace bench
}  // namespace ldpr
