// Figure 9: defending MGA-IPA (input poisoning) with the k-means
// clustering defense alone versus LDPRecover-KM, sweeping the
// defense's subset rate xi, on IPUMS.
//
// Note: the paper sweeps xi up to 0.9 with bootstrap subsets; this
// implementation partitions users into 1/xi disjoint subsets (see
// recover/kmeans_defense.h), so xi is capped at 0.5 (two subsets).
//
// The (xi x trial) grid of each protocol fans out across
// LDPR_THREADS on counter-derived per-trial seeds; per-trial MSEs
// merge in trial order and the full poisoned report set aggregates
// through Aggregator::AddAllSharded, so output is byte-identical at
// any thread count.

#include <cstdio>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "ldp/factory.h"
#include "recover/kmeans_defense.h"
#include "runner/scenario_runner.h"
#include "scenarios.h"
#include "sim/pipeline.h"
#include "util/metrics.h"

namespace ldpr {
namespace bench {
namespace {

struct TrialRow {
  double before = 0, kmeans_alone = 0, km = 0;
};

TrialRow RunOneTrial(const FrequencyProtocol& protocol, const Dataset& dataset,
                     const std::vector<double>& truth, double xi, double beta,
                     size_t shards, uint64_t trial_seed) {
  Rng rng(trial_seed);
  // Materialize the full IPA-poisoned report set: genuine users
  // perturb honestly, malicious users perturb attacker-chosen inputs
  // honestly.
  PipelineConfig pconfig;
  pconfig.attack = AttackKind::kMgaIpa;
  pconfig.beta = beta;
  const size_t m = MaliciousUserCount(pconfig.beta, dataset.num_users());

  std::vector<Report> reports;
  reports.reserve(dataset.num_users() + m);
  for (ItemId item = 0; item < dataset.domain_size(); ++item) {
    for (uint64_t u = 0; u < dataset.item_counts[item]; ++u)
      reports.push_back(protocol.Perturb(item, rng));
  }
  const auto attack = MakeAttack(pconfig, dataset.domain_size(), rng);
  auto crafted = attack->Craft(protocol, m, rng);
  std::move(crafted.begin(), crafted.end(), std::back_inserter(reports));

  TrialRow row;
  Aggregator all(protocol);
  all.AddAllSharded(reports, shards);
  row.before = Mse(truth, all.EstimateFrequencies());

  KMeansDefenseOptions opts;
  opts.sample_rate = xi;
  const KMeansDefenseResult defense =
      RunKMeansDefense(protocol, reports, opts, rng);
  row.kmeans_alone = Mse(truth, defense.genuine_estimate);

  row.km = Mse(truth, LdpRecoverKm(protocol, reports, opts, 0.2, rng));
  return row;
}

Status RunFig9(ScenarioContext& ctx) {
  const ScenarioSpec& spec = ctx.spec;
  const Dataset& ipums = ctx.datasets[0];
  const std::vector<double> truth = ipums.TrueFrequencies();
  const std::vector<double>& xis = spec.sweeps[0].values;

  size_t protocol_index = 0;
  for (ProtocolKind kind : spec.protocols) {
    const auto protocol =
        MakeProtocol(kind, ipums.domain_size(), spec.defaults.epsilon);
    const uint64_t protocol_seed = DeriveSeed(ctx.seed, protocol_index++);

    const size_t trials = ctx.trials;
    ThreadBudget budget;
    const std::vector<TrialRow> rows = RunTrialGrid<TrialRow>(
        xis.size(), trials, protocol_seed,
        [&](size_t xi_index, size_t shards, uint64_t trial_seed) {
          return RunOneTrial(*protocol, ipums, truth, xis[xi_index],
                             spec.defaults.beta, shards, trial_seed);
        },
        &budget);
    ctx.report.outer_workers = budget.outer;
    ctx.report.shards = budget.inner;

    ctx.sink.BeginTable(std::string("Figure 9 (IPUMS, MGA-IPA, ") +
                            ProtocolKindName(kind) + "): MSE vs xi",
                        spec.columns);
    for (size_t x = 0; x < xis.size(); ++x) {
      RunningStat before, kmeans_alone, km;
      for (size_t t = 0; t < trials; ++t) {
        const TrialRow& row = rows[x * trials + t];
        before.Add(row.before);
        kmeans_alone.Add(row.kmeans_alone);
        km.Add(row.km);
      }
      char name[32];
      std::snprintf(name, sizeof(name), "xi=%g", xis[x]);
      ctx.sink.AddRow(name, {before.mean(), kmeans_alone.mean(), km.mean()});
      ++ctx.report.rows;
    }
    ctx.sink.EndTable();
    ++ctx.report.tables;
  }
  return Status::Ok();
}

}  // namespace

void RegisterFig9(ScenarioRegistry& registry) {
  Scenario scenario;
  ScenarioSpec& spec = scenario.spec;
  spec.id = "fig9";
  spec.title =
      "fig9: Figure 9 — k-means defense vs LDPRecover-KM under MGA-IPA";
  spec.artifact = "Figure 9";
  spec.metric_desc = "MSE vs xi";
  spec.datasets = {"ipums"};
  spec.protocols.assign(std::begin(kAllProtocolKinds),
                        std::end(kAllProtocolKinds));
  spec.attacks = {AttackKind::kMgaIpa};
  spec.sweeps = {{SweepParam::kXi, {0.1, 0.2, 0.3, 0.5}}};
  spec.columns = {"Before", "K-means", "LDPRecover-KM"};
  spec.custom = true;
  scenario.run = RunFig9;
  registry.Register(std::move(scenario));
}

}  // namespace bench
}  // namespace ldpr
