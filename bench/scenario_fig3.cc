// Figure 3: MSE of Before-recovery, Detection, LDPRecover, and
// LDPRecover* across two datasets, three LDP protocols, and three
// attacks (Manip-GRR, MGA-{GRR,OUE,OLH}, AA-{GRR,OUE,OLH}), at the
// paper defaults eps = 0.5, beta = 0.05, r = 10, eta = 0.2.

#include "scenarios.h"

namespace ldpr {
namespace bench {

void RegisterFig3(ScenarioRegistry& registry) {
  Scenario scenario;
  ScenarioSpec& spec = scenario.spec;
  spec.id = "fig3";
  spec.title = "fig3: Figure 3 — recovery accuracy (MSE)";
  spec.artifact = "Figure 3";
  spec.metric_desc = "MSE";
  spec.datasets = {"ipums", "fire"};
  spec.cells = {
      {AttackKind::kManip, ProtocolKind::kGrr},
      {AttackKind::kMga, ProtocolKind::kGrr},
      {AttackKind::kMga, ProtocolKind::kOue},
      {AttackKind::kMga, ProtocolKind::kOlh},
      {AttackKind::kAdaptive, ProtocolKind::kGrr},
      {AttackKind::kAdaptive, ProtocolKind::kOue},
      {AttackKind::kAdaptive, ProtocolKind::kOlh},
  };
  spec.columns = {"Before", "Detection", "LDPRecover", "LDPRecover*"};
  scenario.format_row = [](const std::vector<ExperimentResult>& r) {
    return std::vector<double>{
        r[0].mse_before.mean(), r[0].mse_detection.mean(),
        r[0].mse_recover.mean(), r[0].mse_recover_star.mean()};
  };
  registry.Register(std::move(scenario));
}

}  // namespace bench
}  // namespace ldpr
