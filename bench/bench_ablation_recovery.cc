// Ablation bench (DESIGN.md section 5): which parts of LDPRecover do
// the work?  Compares, under MGA and AA on IPUMS:
//
//   Before        the raw poisoned estimate;
//   Full          LDPRecover as published (subtract + refine);
//   NoSubtract    (1+eta) rescale + KKT refinement only;
//   NoRefine      Eq. (27) raw (subtract, no simplex projection);
//   ClipRenorm    clamp negatives + multiplicative renormalization
//                 (the standard post-processing baseline);
//   NormSub       KKT projection of the poisoned estimate directly.

#include <string>

#include "bench_common.h"
#include "ldp/factory.h"
#include "recover/ldprecover.h"
#include "recover/normalization.h"
#include "sim/pipeline.h"
#include "util/metrics.h"
#include "util/table.h"

namespace ldpr {
namespace bench {
namespace {

void RunCell(const Dataset& dataset, ProtocolKind kind, AttackKind attack,
             TablePrinter& table) {
  const auto protocol = MakeProtocol(kind, dataset.domain_size(), 0.5);
  PipelineConfig pconfig;
  pconfig.attack = attack;
  pconfig.beta = 0.05;

  RecoverOptions full;
  RecoverOptions no_sub;
  no_sub.ablate_no_subtraction = true;
  RecoverOptions no_refine;
  no_refine.ablate_no_refinement = true;

  Rng rng(20240213);
  RunningStat before, v_full, v_nosub, v_norefine, v_clip, v_normsub;
  for (size_t trial = 0; trial < Trials(); ++trial) {
    const TrialOutput t = RunPoisoningTrial(*protocol, pconfig, dataset, rng);
    before.Add(Mse(t.true_freqs, t.poisoned_freqs));
    v_full.Add(Mse(t.true_freqs,
                   LdpRecover(*protocol, full).Recover(t.poisoned_freqs)));
    v_nosub.Add(Mse(t.true_freqs,
                    LdpRecover(*protocol, no_sub).Recover(t.poisoned_freqs)));
    v_norefine.Add(
        Mse(t.true_freqs,
            LdpRecover(*protocol, no_refine).Recover(t.poisoned_freqs)));
    v_clip.Add(Mse(t.true_freqs, ClipAndRenormalize(t.poisoned_freqs)));
    v_normsub.Add(Mse(t.true_freqs, NormSub(t.poisoned_freqs)));
  }
  const std::string row =
      std::string(AttackKindName(attack)) + "-" + ProtocolKindName(kind);
  table.AddRow(row, {before.mean(), v_full.mean(), v_nosub.mean(),
                     v_norefine.mean(), v_clip.mean(), v_normsub.mean()});
}

}  // namespace
}  // namespace bench
}  // namespace ldpr

int main() {
  using namespace ldpr;
  using namespace ldpr::bench;
  PrintBanner("bench_ablation_recovery: LDPRecover component ablation (MSE)");
  const Dataset ipums = BenchIpums();
  TablePrinter table("Ablation (IPUMS): MSE",
                     {"Before", "Full", "NoSubtract", "NoRefine", "ClipRenorm",
                      "NormSub"});
  for (AttackKind attack : {AttackKind::kMga, AttackKind::kAdaptive}) {
    for (ProtocolKind kind : kAllProtocolKinds)
      RunCell(ipums, kind, attack, table);
    table.AddSeparator();
  }
  table.Print();
  return 0;
}
