// Ablation bench (DESIGN.md section 5): which parts of LDPRecover do
// the work?  Compares, under MGA and AA on IPUMS:
//
//   Before        the raw poisoned estimate;
//   Full          LDPRecover as published (subtract + refine);
//   NoSubtract    (1+eta) rescale + KKT refinement only;
//   NoRefine      Eq. (27) raw (subtract, no simplex projection);
//   ClipRenorm    clamp negatives + multiplicative renormalization
//                 (the standard post-processing baseline);
//   NormSub       KKT projection of the poisoned estimate directly.
//
// The (cell x trial) grid fans out across LDPR_THREADS: trial t of
// cell c runs on Rng(DeriveSeed(kSeed, c * Trials() + t)) and the
// per-trial MSEs merge in trial order, so the table is byte-identical
// at any thread count.

#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ldp/factory.h"
#include "recover/ldprecover.h"
#include "recover/normalization.h"
#include "sim/pipeline.h"
#include "util/metrics.h"
#include "util/table.h"

namespace ldpr {
namespace bench {
namespace {

constexpr uint64_t kSeed = 20240213;

struct CellSpec {
  AttackKind attack;
  ProtocolKind kind;
};

struct TrialRow {
  double before = 0, full = 0, nosub = 0, norefine = 0, clip = 0, normsub = 0;
};

TrialRow RunOneTrial(const FrequencyProtocol& protocol, const Dataset& dataset,
                     const PipelineConfig& pconfig, uint64_t trial_seed) {
  RecoverOptions full;
  RecoverOptions no_sub;
  no_sub.ablate_no_subtraction = true;
  RecoverOptions no_refine;
  no_refine.ablate_no_refinement = true;

  Rng rng(trial_seed);
  const TrialOutput t = RunPoisoningTrial(protocol, pconfig, dataset, rng);
  TrialRow row;
  row.before = Mse(t.true_freqs, t.poisoned_freqs);
  row.full =
      Mse(t.true_freqs, LdpRecover(protocol, full).Recover(t.poisoned_freqs));
  row.nosub =
      Mse(t.true_freqs, LdpRecover(protocol, no_sub).Recover(t.poisoned_freqs));
  row.norefine = Mse(t.true_freqs,
                     LdpRecover(protocol, no_refine).Recover(t.poisoned_freqs));
  row.clip = Mse(t.true_freqs, ClipAndRenormalize(t.poisoned_freqs));
  row.normsub = Mse(t.true_freqs, NormSub(t.poisoned_freqs));
  return row;
}

}  // namespace
}  // namespace bench
}  // namespace ldpr

int main() {
  using namespace ldpr;
  using namespace ldpr::bench;
  PrintBanner("bench_ablation_recovery: LDPRecover component ablation (MSE)");
  const Dataset ipums = BenchIpums();

  std::vector<CellSpec> cells;
  for (AttackKind attack : {AttackKind::kMga, AttackKind::kAdaptive}) {
    for (ProtocolKind kind : kAllProtocolKinds) cells.push_back({attack, kind});
  }
  std::vector<std::unique_ptr<FrequencyProtocol>> protocols;
  for (const CellSpec& cell : cells)
    protocols.push_back(MakeProtocol(cell.kind, ipums.domain_size(), 0.5));

  const size_t trials = Trials();
  const std::vector<TrialRow> rows = RunTrialGrid<TrialRow>(
      cells.size(), trials, kSeed,
      [&](size_t cell, size_t shards, uint64_t trial_seed) {
        PipelineConfig config;
        config.attack = cells[cell].attack;
        config.beta = 0.05;
        config.shards = shards;
        return RunOneTrial(*protocols[cell], ipums, config, trial_seed);
      });

  TablePrinter table("Ablation (IPUMS): MSE",
                     {"Before", "Full", "NoSubtract", "NoRefine", "ClipRenorm",
                      "NormSub"});
  for (size_t cell = 0; cell < cells.size(); ++cell) {
    RunningStat before, full, nosub, norefine, clip, normsub;
    for (size_t t = 0; t < trials; ++t) {
      const TrialRow& row = rows[cell * trials + t];
      before.Add(row.before);
      full.Add(row.full);
      nosub.Add(row.nosub);
      norefine.Add(row.norefine);
      clip.Add(row.clip);
      normsub.Add(row.normsub);
    }
    const std::string name = std::string(AttackKindName(cells[cell].attack)) +
                             "-" + ProtocolKindName(cells[cell].kind);
    table.AddRow(name, {before.mean(), full.mean(), nosub.mean(),
                        norefine.mean(), clip.mean(), normsub.mean()});
    if ((cell + 1) % std::size(kAllProtocolKinds) == 0 &&
        cell + 1 < cells.size())
      table.AddSeparator();
  }
  table.Print();
  return 0;
}
