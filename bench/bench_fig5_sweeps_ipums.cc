// Figure 5 reproduction: impact of beta, epsilon, and eta on recovery
// from the adaptive attack, IPUMS dataset.

#include "bench_sweeps_common.h"

int main() {
  using namespace ldpr::bench;
  PrintBanner(
      "bench_fig5_sweeps_ipums: Figure 5 — parameter sweeps (AA, IPUMS)");
  RunAdaptiveAttackSweeps(BenchIpums(), "IPUMS");
  return 0;
}
