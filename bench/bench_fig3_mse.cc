// Figure 3 reproduction: MSE of Before-recovery, Detection,
// LDPRecover, and LDPRecover* across two datasets, three LDP
// protocols, and three attacks (Manip-GRR, MGA-{GRR,OUE,OLH},
// AA-{GRR,OUE,OLH}), at the paper defaults eps = 0.5, beta = 0.05,
// r = 10, eta = 0.2.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "util/table.h"

namespace ldpr {
namespace bench {
namespace {

struct Cell {
  AttackKind attack;
  ProtocolKind protocol;
};

constexpr Cell kCells[] = {
    {AttackKind::kManip, ProtocolKind::kGrr},
    {AttackKind::kMga, ProtocolKind::kGrr},
    {AttackKind::kMga, ProtocolKind::kOue},
    {AttackKind::kMga, ProtocolKind::kOlh},
    {AttackKind::kAdaptive, ProtocolKind::kGrr},
    {AttackKind::kAdaptive, ProtocolKind::kOue},
    {AttackKind::kAdaptive, ProtocolKind::kOlh},
};

void RunDataset(const Dataset& dataset, const char* label) {
  TablePrinter table(
      std::string("Figure 3 (") + label + "): MSE",
      {"Before", "Detection", "LDPRecover", "LDPRecover*"});
  std::vector<ExperimentConfig> configs;
  for (const Cell& cell : kCells) {
    configs.push_back(DefaultConfig(cell.protocol, cell.attack));
  }
  const std::vector<ExperimentResult> results = RunConfigs(configs, dataset);
  for (size_t i = 0; i < configs.size(); ++i) {
    const Cell& cell = kCells[i];
    const ExperimentResult& r = results[i];
    const std::string row = std::string(AttackKindName(cell.attack)) + "-" +
                            ProtocolKindName(cell.protocol);
    table.AddRow(row, {r.mse_before.mean(), r.mse_detection.mean(),
                       r.mse_recover.mean(), r.mse_recover_star.mean()});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace ldpr

int main() {
  using namespace ldpr::bench;
  PrintBanner("bench_fig3_mse: Figure 3 — recovery accuracy (MSE)");
  RunDataset(BenchIpums(), "IPUMS");
  RunDataset(BenchFire(), "Fire");
  return 0;
}
