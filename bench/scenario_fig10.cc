// Figure 10: LDPRecover against five simultaneous adaptive attackers
// (the multi-attacker threat model of Section VII-C), sweeping the
// total malicious fraction beta, on IPUMS.

#include <iterator>

#include "ldp/factory.h"
#include "scenarios.h"

namespace ldpr {
namespace bench {

void RegisterFig10(ScenarioRegistry& registry) {
  Scenario scenario;
  ScenarioSpec& spec = scenario.spec;
  spec.id = "fig10";
  spec.title = "fig10: Figure 10 — multi-attacker adaptive poisoning";
  spec.artifact = "Figure 10";
  spec.metric_desc = "MSE";
  spec.datasets = {"ipums"};
  spec.protocols.assign(std::begin(kAllProtocolKinds),
                        std::end(kAllProtocolKinds));
  spec.attacks = {AttackKind::kMultiAdaptive};
  spec.protocol_tag = "MUL-AA-";
  spec.protocol_tag_suffix = ", 5 attackers";
  spec.sweeps = {{SweepParam::kBeta, {0.05, 0.10, 0.15, 0.20, 0.25}}};
  spec.columns = {"Before", "LDPRecover"};
  spec.defaults.num_attackers = 5;
  spec.defaults.run_detection = false;
  spec.defaults.run_star = false;
  scenario.format_row = [](const std::vector<ExperimentResult>& r) {
    return std::vector<double>{r[0].mse_before.mean(), r[0].mse_recover.mean()};
  };
  registry.Register(std::move(scenario));
}

}  // namespace bench
}  // namespace ldpr
