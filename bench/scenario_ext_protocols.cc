// Extension scenario (beyond the paper's evaluation grid): recovery
// accuracy for ALL five implemented protocols — the paper's GRR, OUE,
// OLH plus the SUE and BLH extensions — under MGA and AA, reported
// both as MSE and at the task level (how many attacker targets
// survive in the published top-10 ranking).
//
// The (cell x trial) grid fans out across LDPR_THREADS on
// counter-derived per-trial seeds, with per-trial metrics merged in
// trial order — byte-identical output at any thread count.

#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "ldp/factory.h"
#include "recover/ldprecover.h"
#include "runner/scenario_runner.h"
#include "scenarios.h"
#include "sim/pipeline.h"
#include "tasks/heavy_hitters.h"
#include "util/metrics.h"

namespace ldpr {
namespace bench {
namespace {

struct TrialRow {
  double mse_before = 0, mse_after = 0;
  double hits_before = 0, hits_after = 0;
  bool targeted = false;
};

TrialRow RunOneTrial(const FrequencyProtocol& protocol, const Dataset& dataset,
                     const PipelineConfig& pconfig, uint64_t trial_seed) {
  Rng rng(trial_seed);
  const TrialOutput t = RunPoisoningTrial(protocol, pconfig, dataset, rng);
  RecoverOptions opts;
  if (!t.attack_targets.empty()) opts.known_targets = t.attack_targets;
  const LdpRecover recover(protocol, opts);
  const auto recovered = recover.Recover(t.poisoned_freqs);

  TrialRow row;
  row.mse_before = Mse(t.true_freqs, t.poisoned_freqs);
  row.mse_after = Mse(t.true_freqs, recovered);
  if (!t.attack_targets.empty()) {
    row.targeted = true;
    row.hits_before = static_cast<double>(
        CountInTopK(t.poisoned_freqs, t.attack_targets, 10));
    row.hits_after =
        static_cast<double>(CountInTopK(recovered, t.attack_targets, 10));
  }
  return row;
}

Status RunExtProtocols(ScenarioContext& ctx) {
  const ScenarioSpec& spec = ctx.spec;
  const Dataset& ipums = ctx.datasets[0];

  std::vector<ScenarioCell> cells;
  for (AttackKind attack : spec.attacks) {
    for (ProtocolKind kind : spec.protocols) cells.push_back({attack, kind});
  }
  std::vector<std::unique_ptr<FrequencyProtocol>> protocols;
  for (const ScenarioCell& cell : cells)
    protocols.push_back(MakeProtocol(cell.protocol, ipums.domain_size(),
                                     spec.defaults.epsilon));

  const size_t trials = ctx.trials;
  ThreadBudget budget;
  const std::vector<TrialRow> rows = RunTrialGrid<TrialRow>(
      cells.size(), trials, ctx.seed,
      [&](size_t cell, size_t shards, uint64_t trial_seed) {
        PipelineConfig config;
        config.attack = cells[cell].attack;
        config.beta = spec.defaults.beta;
        config.shards = shards;
        return RunOneTrial(*protocols[cell], ipums, config, trial_seed);
      },
      &budget);
  ctx.report.outer_workers = budget.outer;
  ctx.report.shards = budget.inner;

  ctx.sink.BeginTable("Extended protocols (IPUMS): MSE and targets in top-10",
                      spec.columns);
  const size_t per_attack = spec.protocols.size();
  for (size_t cell = 0; cell < cells.size(); ++cell) {
    RunningStat mse_before, mse_after, hits_before, hits_after;
    for (size_t t = 0; t < trials; ++t) {
      const TrialRow& row = rows[cell * trials + t];
      mse_before.Add(row.mse_before);
      mse_after.Add(row.mse_after);
      if (row.targeted) {
        hits_before.Add(row.hits_before);
        hits_after.Add(row.hits_after);
      }
    }
    const std::string name =
        std::string(AttackKindName(cells[cell].attack)) + "-" +
        ProtocolKindName(cells[cell].protocol);
    ctx.sink.AddRow(name,
                    {mse_before.mean(), mse_after.mean(),
                     hits_before.count() ? hits_before.mean() : 0.0,
                     hits_after.count() ? hits_after.mean() : 0.0});
    ++ctx.report.rows;
    if ((cell + 1) % per_attack == 0 && cell + 1 < cells.size())
      ctx.sink.AddSeparator();
  }
  ctx.sink.EndTable();
  ++ctx.report.tables;
  return Status::Ok();
}

}  // namespace

void RegisterExtProtocols(ScenarioRegistry& registry) {
  Scenario scenario;
  ScenarioSpec& spec = scenario.spec;
  spec.id = "ext_protocols";
  spec.title =
      "ext_protocols: recovery across all five protocols (GRR/OUE/OLH + "
      "SUE/BLH)";
  spec.artifact = "extension";
  spec.metric_desc = "MSE and targets in top-10";
  spec.datasets = {"ipums"};
  spec.protocols.assign(std::begin(kExtendedProtocolKinds),
                        std::end(kExtendedProtocolKinds));
  spec.attacks = {AttackKind::kMga, AttackKind::kAdaptive};
  spec.columns = {"MSE before", "MSE after", "top10 before", "top10 after"};
  spec.custom = true;
  scenario.run = RunExtProtocols;
  registry.Register(std::move(scenario));
}

}  // namespace bench
}  // namespace ldpr
