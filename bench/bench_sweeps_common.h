// Shared driver for the Figure 5 / Figure 6 parameter sweeps
// (beta, epsilon, eta) of recovery from the adaptive attack.

#ifndef LDPR_BENCH_BENCH_SWEEPS_COMMON_H_
#define LDPR_BENCH_BENCH_SWEEPS_COMMON_H_

#include "bench_common.h"

namespace ldpr {
namespace bench {

/// Runs all three sweeps of Figures 5/6 on `dataset` and prints one
/// table per (sweep, protocol) pair with Before / LDPRecover /
/// LDPRecover* series, matching the figure columns.
void RunAdaptiveAttackSweeps(const Dataset& dataset, const char* label);

}  // namespace bench
}  // namespace ldpr

#endif  // LDPR_BENCH_BENCH_SWEEPS_COMMON_H_
