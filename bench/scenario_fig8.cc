// Figure 8: strength of MGA under the general poisoning model versus
// under input poisoning (MGA-IPA), measured as the MSE of the
// poisoned (unrecovered) estimate on IPUMS, sweeping beta.  The
// general attack should be orders of magnitude stronger.  The two
// columns come from the row's two lowered configs (one per attack).

#include <iterator>

#include "ldp/factory.h"
#include "scenarios.h"

namespace ldpr {
namespace bench {

void RegisterFig8(ScenarioRegistry& registry) {
  Scenario scenario;
  ScenarioSpec& spec = scenario.spec;
  spec.id = "fig8";
  spec.title = "fig8: Figure 8 — general vs input poisoning";
  spec.artifact = "Figure 8";
  spec.metric_desc = "poisoned-estimate MSE, MGA vs MGA-IPA";
  spec.datasets = {"ipums"};
  spec.protocols.assign(std::begin(kAllProtocolKinds),
                        std::end(kAllProtocolKinds));
  spec.attacks = {AttackKind::kMga, AttackKind::kMgaIpa};
  spec.sweeps = {{SweepParam::kBeta, {0.05, 0.10, 0.15, 0.20, 0.25}}};
  spec.columns = {"MGA", "MGA-IPA"};
  spec.defaults.run_detection = false;
  spec.defaults.run_star = false;
  scenario.format_row = [](const std::vector<ExperimentResult>& r) {
    return std::vector<double>{r[0].mse_before.mean(), r[1].mse_before.mean()};
  };
  registry.Register(std::move(scenario));
}

}  // namespace bench
}  // namespace ldpr
