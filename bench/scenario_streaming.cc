// Streaming scenarios (extension): the windowed streaming ingest
// engine (src/stream/) evaluated on arrival schedules batch mode
// cannot express.  Four scenarios, one row per implemented protocol:
//
//   streaming_equiv   single window spanning the whole stream under a
//                     constant attacker trickle; its CountDrift
//                     column is the max absolute difference between
//                     the streaming engine's support counts and
//                     Aggregator::AddAllSharded on the replayed batch
//                     — exactly 0.0 by the batch-equivalence
//                     contract, so ldpr_diff gates the equivalence
//                     from day one.
//   streaming_wave    a mid-stream MGA wave (on at 30%, off at 70% of
//                     the stream) vs a clean run of the same
//                     schedule: per-window MSE and windows-to-
//                     detection latency (clean cell reports the -1
//                     sentinel).  Runs sliding windows (stride =
//                     window/2) to exercise the pane path.
//   streaming_ramp    attacker fraction ramping 0 -> 0.3; first/last
//                     window attacker counts witness the monotone
//                     quota schedule.
//   streaming_drift   genuine distribution drifting Zipf(1.6) ->
//                     Zipf(0.6) across 8 segments with a wave on
//                     top; TrueDrift is the L1 distance between the
//                     first and last windows' genuine ground truth.
//
// Determinism: RunStream is serial per trial and the (cell x trial)
// grid fans out through RunTrialGrid with per-trial derived seeds, so
// every column is a pure function of (spec, seed, scale, trials) —
// no timing columns, full byte-compare determinism
// (tests/streaming_scenario_test.cc, scenario_*_determinism ctest).
//
// Detection thresholds: genuine perturbed reports trip the target
// filter at a protocol-dependent base rate b (e.g. ~q*r for GRR,
// ~0.62 for BLH's majority rule at r=10), so each row's
// detect_fraction sits halfway between b and the suspicious fraction
// a full-strength MGA window would produce, b + a*(1-b)/2.

#include <algorithm>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "ldp/factory.h"
#include "runner/scenario_runner.h"
#include "scenarios.h"
#include "stream/streaming_engine.h"
#include "util/metrics.h"

namespace ldpr {
namespace bench {
namespace {

// ~10 tumbling windows over the scaled stream, clamped so CI-scale
// streams (tens of reports) still form at least one window.
size_t DefaultWindowReports(size_t total) {
  return std::max<size_t>(1, total / 10);
}

StreamEngineOptions OptionsFor(const FrequencyProtocol& protocol,
                               size_t num_targets, double peak_fraction) {
  StreamEngineOptions options;
  const double base = ApproxGenuineSuspicionRate(protocol, num_targets);
  options.detect_fraction = base + peak_fraction * (1.0 - base) / 2.0;
  return options;
}

double DetectColumn(const StreamSummary& summary) {
  return static_cast<double>(summary.windows_to_detection);
}

// Shared registration boilerplate of the four scenarios.
Scenario MakeStreamingScenario(const char* id, const char* title,
                               std::vector<std::string> columns) {
  Scenario scenario;
  ScenarioSpec& spec = scenario.spec;
  spec.id = id;
  spec.title = title;
  spec.artifact = "extension";
  spec.metric_desc = "per-window MSE / detection latency";
  spec.datasets = {"zipf"};
  spec.protocols.assign(std::begin(kExtendedProtocolKinds),
                        std::end(kExtendedProtocolKinds));
  spec.attacks = {AttackKind::kMga};
  spec.columns = std::move(columns);
  spec.custom = true;
  return scenario;
}

// ------------------------------------------------------------ equiv

struct EquivRow {
  double stream_mse = 0, batch_mse = 0, drift = 0, detect = 0;
};

Status RunStreamingEquiv(ScenarioContext& ctx) {
  const ScenarioSpec& spec = ctx.spec;
  const Dataset& data = ctx.datasets[0];
  const size_t cells = spec.protocols.size();

  std::vector<std::unique_ptr<FrequencyProtocol>> protocols;
  for (ProtocolKind kind : spec.protocols)
    protocols.push_back(
        MakeProtocol(kind, data.domain_size(), spec.defaults.epsilon));

  StreamSpec stream;
  stream.total_reports = data.num_users();
  stream.window_reports = stream.total_reports;  // one window = the batch
  stream.item_counts = data.item_counts;
  stream.wave = WaveShape::kConstant;
  stream.attacker_fraction = 0.05;
  stream.num_targets = spec.defaults.num_targets;

  ThreadBudget budget;
  const std::vector<EquivRow> rows = RunTrialGrid<EquivRow>(
      cells, ctx.trials, ctx.seed,
      [&](size_t cell, size_t shards, uint64_t trial_seed) {
        const FrequencyProtocol& protocol = *protocols[cell];
        StreamEngineOptions options =
            OptionsFor(protocol, stream.num_targets, stream.attacker_fraction);
        options.run_recovery = false;
        const StreamSummary summary =
            RunStream(protocol, stream, options, trial_seed);

        // The batch path on the very same reports: replay the arrival
        // schedule (identical draws) and aggregate through
        // AddAllSharded.
        const StreamReplay replay =
            ReplayStream(protocol, stream, trial_seed);
        Aggregator aggregator(protocol);
        aggregator.AddAllSharded(replay.reports, shards);

        EquivRow row;
        row.stream_mse = summary.mean_mse_estimate;
        uint64_t genuine = 0;
        for (uint64_t c : replay.genuine_item_counts) genuine += c;
        std::vector<double> true_freqs(replay.genuine_item_counts.size());
        for (size_t v = 0; v < true_freqs.size(); ++v)
          true_freqs[v] = static_cast<double>(replay.genuine_item_counts[v]) /
                          static_cast<double>(genuine);
        row.batch_mse = Mse(true_freqs, aggregator.EstimateFrequencies());
        const std::vector<double>& batch_counts = aggregator.support_counts();
        for (size_t v = 0; v < batch_counts.size(); ++v) {
          row.drift = std::max(
              row.drift,
              std::abs(summary.final_support_counts[v] - batch_counts[v]));
        }
        row.detect = DetectColumn(summary);
        return row;
      },
      &budget);
  ctx.report.outer_workers = budget.outer;
  ctx.report.shards = budget.inner;

  ctx.sink.BeginTable("Streaming vs batch equivalence (Zipf)", spec.columns);
  for (size_t cell = 0; cell < cells; ++cell) {
    RunningStat stream_mse, batch_mse, drift, detect;
    for (size_t t = 0; t < ctx.trials; ++t) {
      const EquivRow& row = rows[cell * ctx.trials + t];
      stream_mse.Add(row.stream_mse);
      batch_mse.Add(row.batch_mse);
      drift.Add(row.drift);
      detect.Add(row.detect);
    }
    ctx.sink.AddRow(ProtocolKindName(spec.protocols[cell]),
                    {stream_mse.mean(), batch_mse.mean(), drift.mean(),
                     detect.mean()});
    ++ctx.report.rows;
  }
  ctx.sink.EndTable();
  ++ctx.report.tables;
  return Status::Ok();
}

// ------------------------------------------------------------- wave

struct WaveRow {
  double clean_mse = 0, wave_mse = 0, wave_rec = 0;
  double clean_detect = 0, wave_detect = 0, detected = 0;
};

Status RunStreamingWave(ScenarioContext& ctx) {
  const ScenarioSpec& spec = ctx.spec;
  const Dataset& data = ctx.datasets[0];
  const size_t cells = spec.protocols.size();

  std::vector<std::unique_ptr<FrequencyProtocol>> protocols;
  for (ProtocolKind kind : spec.protocols)
    protocols.push_back(
        MakeProtocol(kind, data.domain_size(), spec.defaults.epsilon));

  const size_t total = data.num_users();
  const size_t window = DefaultWindowReports(total);
  // Sliding windows: stride = half a window (pane path), degrading to
  // tumbling when the window is a single report.
  const size_t stride = std::max<size_t>(1, window / 2);
  const double peak = 0.25;

  StreamSpec clean;
  clean.total_reports = total;
  clean.window_reports = stride * (window / stride);
  clean.stride_reports = stride;
  clean.item_counts = data.item_counts;
  clean.wave = WaveShape::kNone;
  clean.num_targets = spec.defaults.num_targets;

  StreamSpec wave = clean;
  wave.wave = WaveShape::kWave;
  wave.attacker_fraction = peak;
  wave.wave_start = total * 3 / 10;
  wave.wave_end = total * 7 / 10;

  ThreadBudget budget;
  const std::vector<WaveRow> rows = RunTrialGrid<WaveRow>(
      cells, ctx.trials, ctx.seed,
      [&](size_t cell, size_t /*shards*/, uint64_t trial_seed) {
        const FrequencyProtocol& protocol = *protocols[cell];
        const StreamEngineOptions options =
            OptionsFor(protocol, clean.num_targets, peak);
        const StreamSummary clean_run =
            RunStream(protocol, clean, options, trial_seed);
        const StreamSummary wave_run =
            RunStream(protocol, wave, options, trial_seed);
        WaveRow row;
        row.clean_mse = clean_run.mean_mse_estimate;
        row.wave_mse = wave_run.mean_mse_estimate;
        row.wave_rec = wave_run.mean_mse_recovered;
        row.clean_detect = DetectColumn(clean_run);
        row.wave_detect = DetectColumn(wave_run);
        row.detected = wave_run.windows_to_detection != kNoDetection;
        return row;
      },
      &budget);
  ctx.report.outer_workers = budget.outer;
  ctx.report.shards = budget.inner;

  ctx.sink.BeginTable("Streaming MGA wave (Zipf): clean vs attacked",
                      spec.columns);
  for (size_t cell = 0; cell < cells; ++cell) {
    RunningStat clean_mse, wave_mse, wave_rec, clean_det, wave_det, rate;
    for (size_t t = 0; t < ctx.trials; ++t) {
      const WaveRow& row = rows[cell * ctx.trials + t];
      clean_mse.Add(row.clean_mse);
      wave_mse.Add(row.wave_mse);
      wave_rec.Add(row.wave_rec);
      clean_det.Add(row.clean_detect);
      wave_det.Add(row.wave_detect);
      rate.Add(row.detected);
    }
    ctx.sink.AddRow(ProtocolKindName(spec.protocols[cell]),
                    {clean_mse.mean(), wave_mse.mean(), wave_rec.mean(),
                     clean_det.mean(), wave_det.mean(), rate.mean()});
    ++ctx.report.rows;
  }
  ctx.sink.EndTable();
  ++ctx.report.tables;
  return Status::Ok();
}

// ------------------------------------------------------------- ramp

struct RampRow {
  double mse = 0, rec = 0, first_atk = 0, last_atk = 0, detect = 0;
};

Status RunStreamingRamp(ScenarioContext& ctx) {
  const ScenarioSpec& spec = ctx.spec;
  const Dataset& data = ctx.datasets[0];
  const size_t cells = spec.protocols.size();

  std::vector<std::unique_ptr<FrequencyProtocol>> protocols;
  for (ProtocolKind kind : spec.protocols)
    protocols.push_back(
        MakeProtocol(kind, data.domain_size(), spec.defaults.epsilon));

  StreamSpec stream;
  stream.total_reports = data.num_users();
  stream.window_reports = DefaultWindowReports(stream.total_reports);
  stream.item_counts = data.item_counts;
  stream.wave = WaveShape::kRamp;
  stream.attacker_fraction = 0.3;
  stream.num_targets = spec.defaults.num_targets;

  ThreadBudget budget;
  const std::vector<RampRow> rows = RunTrialGrid<RampRow>(
      cells, ctx.trials, ctx.seed,
      [&](size_t cell, size_t /*shards*/, uint64_t trial_seed) {
        const FrequencyProtocol& protocol = *protocols[cell];
        const StreamEngineOptions options = OptionsFor(
            protocol, stream.num_targets, stream.attacker_fraction);
        const StreamSummary summary =
            RunStream(protocol, stream, options, trial_seed);
        RampRow row;
        row.mse = summary.mean_mse_estimate;
        row.rec = summary.mean_mse_recovered;
        if (!summary.windows.empty()) {
          row.first_atk =
              static_cast<double>(summary.windows.front().attackers);
          row.last_atk = static_cast<double>(summary.windows.back().attackers);
        }
        row.detect = DetectColumn(summary);
        return row;
      },
      &budget);
  ctx.report.outer_workers = budget.outer;
  ctx.report.shards = budget.inner;

  ctx.sink.BeginTable("Streaming ramping attacker fraction (Zipf)",
                      spec.columns);
  for (size_t cell = 0; cell < cells; ++cell) {
    RunningStat mse, rec, first_atk, last_atk, detect;
    for (size_t t = 0; t < ctx.trials; ++t) {
      const RampRow& row = rows[cell * ctx.trials + t];
      mse.Add(row.mse);
      rec.Add(row.rec);
      first_atk.Add(row.first_atk);
      last_atk.Add(row.last_atk);
      detect.Add(row.detect);
    }
    ctx.sink.AddRow(ProtocolKindName(spec.protocols[cell]),
                    {mse.mean(), rec.mean(), first_atk.mean(),
                     last_atk.mean(), detect.mean()});
    ++ctx.report.rows;
  }
  ctx.sink.EndTable();
  ++ctx.report.tables;
  return Status::Ok();
}

// ------------------------------------------------------------ drift

struct DriftRow {
  double mse = 0, rec = 0, true_drift = 0, detect = 0;
};

Status RunStreamingDrift(ScenarioContext& ctx) {
  const ScenarioSpec& spec = ctx.spec;
  const Dataset& data = ctx.datasets[0];
  const size_t cells = spec.protocols.size();

  std::vector<std::unique_ptr<FrequencyProtocol>> protocols;
  for (ProtocolKind kind : spec.protocols)
    protocols.push_back(
        MakeProtocol(kind, data.domain_size(), spec.defaults.epsilon));

  const size_t total = data.num_users();
  StreamSpec stream;
  stream.total_reports = total;
  stream.window_reports = DefaultWindowReports(total);
  stream.domain_size = data.domain_size();
  stream.zipf_s_start = 1.6;
  stream.zipf_s_end = 0.6;
  stream.zipf_segments = 8;
  stream.wave = WaveShape::kWave;
  stream.attacker_fraction = 0.2;
  stream.wave_start = total * 4 / 10;
  stream.wave_end = total * 7 / 10;
  stream.num_targets = spec.defaults.num_targets;

  ThreadBudget budget;
  const std::vector<DriftRow> rows = RunTrialGrid<DriftRow>(
      cells, ctx.trials, ctx.seed,
      [&](size_t cell, size_t /*shards*/, uint64_t trial_seed) {
        const FrequencyProtocol& protocol = *protocols[cell];
        const StreamEngineOptions options = OptionsFor(
            protocol, stream.num_targets, stream.attacker_fraction);
        const StreamSummary summary =
            RunStream(protocol, stream, options, trial_seed);
        DriftRow row;
        row.mse = summary.mean_mse_estimate;
        row.rec = summary.mean_mse_recovered;
        if (summary.windows.size() >= 2) {
          const WindowResult& first = summary.windows.front();
          const WindowResult& last = summary.windows.back();
          const auto freqs = [](const WindowResult& w) {
            uint64_t genuine = 0;
            for (uint64_t c : w.genuine_tally) genuine += c;
            std::vector<double> f(w.genuine_tally.size(), 0.0);
            if (genuine > 0) {
              for (size_t v = 0; v < f.size(); ++v)
                f[v] = static_cast<double>(w.genuine_tally[v]) /
                       static_cast<double>(genuine);
            }
            return f;
          };
          row.true_drift = L1Distance(freqs(first), freqs(last));
        }
        row.detect = DetectColumn(summary);
        return row;
      },
      &budget);
  ctx.report.outer_workers = budget.outer;
  ctx.report.shards = budget.inner;

  ctx.sink.BeginTable("Streaming drifting Zipf + wave", spec.columns);
  for (size_t cell = 0; cell < cells; ++cell) {
    RunningStat mse, rec, true_drift, detect;
    for (size_t t = 0; t < ctx.trials; ++t) {
      const DriftRow& row = rows[cell * ctx.trials + t];
      mse.Add(row.mse);
      rec.Add(row.rec);
      true_drift.Add(row.true_drift);
      detect.Add(row.detect);
    }
    ctx.sink.AddRow(ProtocolKindName(spec.protocols[cell]),
                    {mse.mean(), rec.mean(), true_drift.mean(),
                     detect.mean()});
    ++ctx.report.rows;
  }
  ctx.sink.EndTable();
  ++ctx.report.tables;
  return Status::Ok();
}

}  // namespace

void RegisterStreamingEquiv(ScenarioRegistry& registry) {
  Scenario scenario = MakeStreamingScenario(
      "streaming_equiv",
      "streaming_equiv: single-window streaming vs batch equivalence",
      {"StreamMSE", "BatchMSE", "CountDrift", "Detect"});
  scenario.run = RunStreamingEquiv;
  registry.Register(std::move(scenario));
}

void RegisterStreamingWave(ScenarioRegistry& registry) {
  Scenario scenario = MakeStreamingScenario(
      "streaming_wave",
      "streaming_wave: mid-stream MGA wave, detection latency",
      {"CleanMSE", "WaveMSE", "WaveRec", "CleanDetect", "WaveDetect",
       "DetectRate"});
  scenario.run = RunStreamingWave;
  registry.Register(std::move(scenario));
}

void RegisterStreamingRamp(ScenarioRegistry& registry) {
  Scenario scenario = MakeStreamingScenario(
      "streaming_ramp",
      "streaming_ramp: ramping attacker fraction, monotone quota",
      {"MSE", "Rec", "AtkFirstWin", "AtkLastWin", "Detect"});
  scenario.run = RunStreamingRamp;
  registry.Register(std::move(scenario));
}

void RegisterStreamingDrift(ScenarioRegistry& registry) {
  Scenario scenario = MakeStreamingScenario(
      "streaming_drift",
      "streaming_drift: drifting Zipf genuine distribution + wave",
      {"MSE", "Rec", "TrueDrift", "Detect"});
  scenario.run = RunStreamingDrift;
  registry.Register(std::move(scenario));
}

}  // namespace bench
}  // namespace ldpr
