// Figure 9 reproduction: defending MGA-IPA (input poisoning) with the
// k-means clustering defense alone versus LDPRecover-KM, sweeping the
// defense's subset rate xi, on IPUMS.
//
// Note: the paper sweeps xi up to 0.9 with bootstrap subsets; this
// implementation partitions users into 1/xi disjoint subsets (see
// recover/kmeans_defense.h), so xi is capped at 0.5 (two subsets).
//
// The (xi x trial) grid of each protocol fans out across
// LDPR_THREADS on counter-derived per-trial seeds; per-trial MSEs
// merge in trial order and the full poisoned report set aggregates
// through Aggregator::AddAllSharded, so output is byte-identical at
// any thread count.

#include <cstdio>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "ldp/factory.h"
#include "recover/kmeans_defense.h"
#include "sim/pipeline.h"
#include "util/metrics.h"
#include "util/table.h"

namespace ldpr {
namespace bench {
namespace {

constexpr uint64_t kSeed = 20240213;

const double kXis[] = {0.1, 0.2, 0.3, 0.5};

struct TrialRow {
  double before = 0, kmeans_alone = 0, km = 0;
};

TrialRow RunOneTrial(const FrequencyProtocol& protocol, const Dataset& dataset,
                     const std::vector<double>& truth, double xi,
                     size_t shards, uint64_t trial_seed) {
  Rng rng(trial_seed);
  // Materialize the full IPA-poisoned report set: genuine users
  // perturb honestly, malicious users perturb attacker-chosen inputs
  // honestly (beta = 0.05 default).
  PipelineConfig pconfig;
  pconfig.attack = AttackKind::kMgaIpa;
  pconfig.beta = 0.05;
  const size_t m = MaliciousUserCount(pconfig.beta, dataset.num_users());

  std::vector<Report> reports;
  reports.reserve(dataset.num_users() + m);
  for (ItemId item = 0; item < dataset.domain_size(); ++item) {
    for (uint64_t u = 0; u < dataset.item_counts[item]; ++u)
      reports.push_back(protocol.Perturb(item, rng));
  }
  const auto attack = MakeAttack(pconfig, dataset.domain_size(), rng);
  auto crafted = attack->Craft(protocol, m, rng);
  std::move(crafted.begin(), crafted.end(), std::back_inserter(reports));

  TrialRow row;
  Aggregator all(protocol);
  all.AddAllSharded(reports, shards);
  row.before = Mse(truth, all.EstimateFrequencies());

  KMeansDefenseOptions opts;
  opts.sample_rate = xi;
  const KMeansDefenseResult defense =
      RunKMeansDefense(protocol, reports, opts, rng);
  row.kmeans_alone = Mse(truth, defense.genuine_estimate);

  row.km = Mse(truth, LdpRecoverKm(protocol, reports, opts, 0.2, rng));
  return row;
}

void RunProtocol(const Dataset& dataset, ProtocolKind kind,
                 uint64_t protocol_seed) {
  const auto protocol = MakeProtocol(kind, dataset.domain_size(), 0.5);
  const std::vector<double> truth = dataset.TrueFrequencies();

  const size_t trials = Trials();
  const size_t num_xis = std::size(kXis);
  const std::vector<TrialRow> rows = RunTrialGrid<TrialRow>(
      num_xis, trials, protocol_seed,
      [&](size_t xi_index, size_t shards, uint64_t trial_seed) {
        return RunOneTrial(*protocol, dataset, truth, kXis[xi_index], shards,
                           trial_seed);
      });

  TablePrinter table(std::string("Figure 9 (IPUMS, MGA-IPA, ") +
                         ProtocolKindName(kind) + "): MSE vs xi",
                     {"Before", "K-means", "LDPRecover-KM"});
  for (size_t x = 0; x < num_xis; ++x) {
    RunningStat before, kmeans_alone, km;
    for (size_t t = 0; t < trials; ++t) {
      const TrialRow& row = rows[x * trials + t];
      before.Add(row.before);
      kmeans_alone.Add(row.kmeans_alone);
      km.Add(row.km);
    }
    char name[32];
    std::snprintf(name, sizeof(name), "xi=%g", kXis[x]);
    table.AddRow(name, {before.mean(), kmeans_alone.mean(), km.mean()});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace ldpr

int main() {
  using namespace ldpr::bench;
  PrintBanner(
      "bench_fig9_kmeans: Figure 9 — k-means defense vs LDPRecover-KM "
      "under MGA-IPA");
  const ldpr::Dataset ipums = BenchIpums();
  size_t protocol_index = 0;
  for (ldpr::ProtocolKind protocol : ldpr::kAllProtocolKinds)
    RunProtocol(ipums, protocol, ldpr::DeriveSeed(kSeed, protocol_index++));
  return 0;
}
