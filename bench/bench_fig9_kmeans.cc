// Figure 9 reproduction: defending MGA-IPA (input poisoning) with the
// k-means clustering defense alone versus LDPRecover-KM, sweeping the
// defense's subset rate xi, on IPUMS.
//
// Note: the paper sweeps xi up to 0.9 with bootstrap subsets; this
// implementation partitions users into 1/xi disjoint subsets (see
// recover/kmeans_defense.h), so xi is capped at 0.5 (two subsets).

#include <string>
#include <vector>

#include "bench_common.h"
#include "ldp/factory.h"
#include "recover/kmeans_defense.h"
#include "sim/pipeline.h"
#include "util/metrics.h"
#include "util/table.h"

namespace ldpr {
namespace bench {
namespace {

const double kXis[] = {0.1, 0.2, 0.3, 0.5};

void RunProtocol(const Dataset& dataset, ProtocolKind kind) {
  const auto protocol = MakeProtocol(kind, dataset.domain_size(), 0.5);
  TablePrinter table(std::string("Figure 9 (IPUMS, MGA-IPA, ") +
                         ProtocolKindName(kind) + "): MSE vs xi",
                     {"Before", "K-means", "LDPRecover-KM"});

  const std::vector<double> truth = dataset.TrueFrequencies();
  Rng rng(20240213);

  for (double xi : kXis) {
    RunningStat before, kmeans_alone, km;
    for (size_t trial = 0; trial < Trials(); ++trial) {
      // Materialize the full IPA-poisoned report set: genuine users
      // perturb honestly, malicious users perturb attacker-chosen
      // inputs honestly (beta = 0.05 default).
      PipelineConfig pconfig;
      pconfig.attack = AttackKind::kMgaIpa;
      pconfig.beta = 0.05;
      const size_t m = MaliciousUserCount(pconfig.beta, dataset.num_users());

      std::vector<Report> reports;
      reports.reserve(dataset.num_users() + m);
      for (ItemId item = 0; item < dataset.domain_size(); ++item) {
        for (uint64_t u = 0; u < dataset.item_counts[item]; ++u)
          reports.push_back(protocol->Perturb(item, rng));
      }
      const auto attack = MakeAttack(pconfig, dataset.domain_size(), rng);
      auto crafted = attack->Craft(*protocol, m, rng);
      std::move(crafted.begin(), crafted.end(), std::back_inserter(reports));

      Aggregator all(*protocol);
      all.AddAll(reports);
      before.Add(Mse(truth, all.EstimateFrequencies()));

      KMeansDefenseOptions opts;
      opts.sample_rate = xi;
      const KMeansDefenseResult defense =
          RunKMeansDefense(*protocol, reports, opts, rng);
      kmeans_alone.Add(Mse(truth, defense.genuine_estimate));

      km.Add(Mse(truth, LdpRecoverKm(*protocol, reports, opts, 0.2, rng)));
    }
    char row[32];
    std::snprintf(row, sizeof(row), "xi=%g", xi);
    table.AddRow(row, {before.mean(), kmeans_alone.mean(), km.mean()});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace ldpr

int main() {
  using namespace ldpr::bench;
  PrintBanner(
      "bench_fig9_kmeans: Figure 9 — k-means defense vs LDPRecover-KM "
      "under MGA-IPA");
  const ldpr::Dataset ipums = BenchIpums();
  for (ldpr::ProtocolKind protocol : ldpr::kAllProtocolKinds)
    RunProtocol(ipums, protocol);
  return 0;
}
