// Shard-fault scenarios (extension): the multi-process sharded
// aggregation pipeline (src/shard/) run against its deterministic
// fault injector, measuring what partial-delivery failures do to
// estimate and recovery accuracy.  Two scenarios, one row per
// implemented protocol:
//
//   shard_fault_loss   estimate MSE vs the fraction of killed worker
//                      shards (0 / 25% / 50%), under a genuine-only
//                      load and under MGA, plus LDPRecover MSE at 0
//                      and 50% loss.  The merger estimates from the
//                      covered population (n_eff), so accuracy
//                      degrades through lost mass, not a wrong
//                      normalizer.
//   shard_fault_mixed  one cell per remaining fault type: duplicate
//                      delivery (DupDrift — max |counts difference|
//                      vs the clean merge, exactly 0.0 by
//                      idempotence), torn writes and payload bit
//                      flips (TornRej / FlipRej — the fraction of
//                      damaged lines the wire layer rejected, exactly
//                      1.0 by the checksum contract), stragglers
//                      (StragLoss — fraction of chunks lost), and a
//                      combined-fault estimate MSE.
//
// Chunking: the library defaults (2^16 users / 2^13 reports per
// chunk) would put a CI-scale population into a single chunk, so
// these scenarios shrink chunks to ~1/16 of the population — a pure
// function of n, so results stay a function of (spec, seed, scale,
// trials) only.  Worker fleet: 8 processes-worth of ranges, computed
// in-process (the multi-process smoke leg in CI exercises the real
// process boundary; here the wire bytes are what matters).
//
// Determinism: every fault plan derives from the trial seed
// (DeriveSeed streams), the (cell x trial) grid fans out through
// RunTrialGrid, and merging is associativity-exact integer sums — no
// timing columns, full byte-compare determinism
// (tests/shard_scenario_test.cc, scenario_*_determinism ctest).

#include <algorithm>
#include <cmath>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "ldp/factory.h"
#include "runner/scenario_runner.h"
#include "scenarios.h"
#include "shard/fault.h"
#include "shard/merge.h"
#include "shard/shard_task.h"
#include "sim/pipeline.h"
#include "util/metrics.h"
#include "util/random.h"

namespace ldpr {
namespace bench {
namespace {

constexpr uint64_t kFaultWorkers = 8;

// ~16 genuine chunks / ~8 malicious chunks at any population size, so
// fractional shard loss is expressible even on CI-scale data.
ShardChunking FaultChunking(uint64_t n, uint64_t m) {
  ShardChunking chunking;
  chunking.users_per_chunk = std::max<uint64_t>(1, (n + 15) / 16);
  chunking.reports_per_chunk = std::max<uint64_t>(1, (m + 7) / 8);
  return chunking;
}

ShardTaskSpec MakeFaultSpec(const ScenarioSpec& spec, const Dataset& data,
                            ProtocolKind protocol, AttackKind attack,
                            double scale, uint64_t trial_seed) {
  ShardTaskSpec task;
  task.protocol = protocol;
  task.epsilon = spec.defaults.epsilon;
  task.dataset = "zipf";
  task.scale = scale;
  task.attack = attack;
  task.beta = spec.defaults.beta;
  task.num_targets = spec.defaults.num_targets;
  task.eta = spec.defaults.eta;
  task.seed = trial_seed;
  const uint64_t n = data.num_users();
  const uint64_t m = attack == AttackKind::kNone
                         ? 0
                         : MaliciousUserCount(spec.defaults.beta, n);
  task.chunking = FaultChunking(n, m);
  return task;
}

std::vector<std::vector<std::string>> WorkerLines(const ShardTaskPlan& plan) {
  std::vector<std::vector<std::string>> lines(kFaultWorkers);
  for (uint64_t w = 0; w < kFaultWorkers; ++w) {
    for (const PartialRecord& rec :
         ComputeWorkerPartials(plan, w, kFaultWorkers))
      lines[w].push_back(EncodePartialLine(rec));
  }
  return lines;
}

// Merge under a fault plan and return (outcome, stats, delivery);
// returns NaN MSEs when the merge cannot estimate at all (everything
// lost) so a row stays well-defined at any loss fraction.
struct FaultedMerge {
  StatusOr<MergedPartials> merged = InternalError("unset");
  FaultyDelivery delivery;
};

FaultedMerge MergeUnderFaults(const ShardTaskPlan& plan,
                              const std::vector<std::vector<std::string>>&
                                  worker_lines,
                              const FaultSpec& fault_spec) {
  FaultedMerge result;
  const FaultPlan fault_plan = MakeFaultPlan(fault_spec, kFaultWorkers);
  result.delivery = ApplyFaultPlan(fault_plan, worker_lines);
  MergeOptions options;
  options.allow_missing = true;
  result.merged = MergeShardPartials(plan, result.delivery.lines, options);
  return result;
}

double PoisonedMseOr(const ShardTaskPlan& plan, const Dataset& data,
                     const StatusOr<MergedPartials>& merged, double fallback) {
  if (!merged.ok()) return fallback;
  return ComputeShardOutcome(plan, data, *merged).poisoned_mse;
}

// ------------------------------------------------------------- loss

struct LossRow {
  double gen_mse[3] = {0, 0, 0};
  double mga_mse[3] = {0, 0, 0};
  double rec_l0 = 0, rec_l50 = 0;
};

Status RunShardFaultLoss(ScenarioContext& ctx) {
  const ScenarioSpec& spec = ctx.spec;
  const Dataset& data = ctx.datasets[0];
  const size_t cells = spec.protocols.size();
  const double kill_fractions[3] = {0.0, 0.25, 0.5};

  ThreadBudget budget;
  const std::vector<LossRow> rows = RunTrialGrid<LossRow>(
      cells, ctx.trials, ctx.seed,
      [&](size_t cell, size_t /*shards*/, uint64_t trial_seed) {
        LossRow row;
        const ShardTaskSpec gen_spec =
            MakeFaultSpec(spec, data, spec.protocols[cell], AttackKind::kNone,
                          ctx.scale, trial_seed);
        const ShardTaskSpec mga_spec =
            MakeFaultSpec(spec, data, spec.protocols[cell], AttackKind::kMga,
                          ctx.scale, trial_seed);
        auto gen_plan = BuildShardTaskPlan(gen_spec, data);
        auto mga_plan = BuildShardTaskPlan(mga_spec, data);
        if (!gen_plan.ok() || !mga_plan.ok())
          return row;  // unreachable for the registered spec
        const auto gen_lines = WorkerLines(*gen_plan);
        const auto mga_lines = WorkerLines(*mga_plan);
        const double nan = std::nan("");
        for (int k = 0; k < 3; ++k) {
          FaultSpec fault;
          fault.kill_fraction = kill_fractions[k];
          fault.seed = DeriveSeed(trial_seed, 9000 + k);
          const FaultedMerge gen =
              MergeUnderFaults(*gen_plan, gen_lines, fault);
          const FaultedMerge mga =
              MergeUnderFaults(*mga_plan, mga_lines, fault);
          row.gen_mse[k] = PoisonedMseOr(*gen_plan, data, gen.merged, nan);
          row.mga_mse[k] = PoisonedMseOr(*mga_plan, data, mga.merged, nan);
          if (k == 0 || k == 2) {
            double rec = nan;
            if (mga.merged.ok())
              rec = ComputeShardOutcome(*mga_plan, data, *mga.merged)
                        .recovered_mse;
            (k == 0 ? row.rec_l0 : row.rec_l50) = rec;
          }
        }
        return row;
      },
      &budget);
  ctx.report.outer_workers = budget.outer;
  ctx.report.shards = budget.inner;

  ctx.sink.BeginTable("Shard loss: estimate MSE vs killed-shard fraction "
                      "(Zipf, 8 workers)",
                      spec.columns);
  for (size_t cell = 0; cell < cells; ++cell) {
    RunningStat stats[8];
    for (size_t t = 0; t < ctx.trials; ++t) {
      const LossRow& row = rows[cell * ctx.trials + t];
      for (int k = 0; k < 3; ++k) {
        stats[k].Add(row.gen_mse[k]);
        stats[3 + k].Add(row.mga_mse[k]);
      }
      stats[6].Add(row.rec_l0);
      stats[7].Add(row.rec_l50);
    }
    std::vector<double> values;
    for (RunningStat& stat : stats) values.push_back(stat.mean());
    ctx.sink.AddRow(ProtocolKindName(spec.protocols[cell]), values);
    ++ctx.report.rows;
  }
  ctx.sink.EndTable();
  ++ctx.report.tables;
  return Status::Ok();
}

// ------------------------------------------------------------ mixed

struct MixedRow {
  double dup_drift = 0, torn_rej = 0, flip_rej = 0, straggler_loss = 0;
  double fault_mse = 0;
};

Status RunShardFaultMixed(ScenarioContext& ctx) {
  const ScenarioSpec& spec = ctx.spec;
  const Dataset& data = ctx.datasets[0];
  const size_t cells = spec.protocols.size();

  ThreadBudget budget;
  const std::vector<MixedRow> rows = RunTrialGrid<MixedRow>(
      cells, ctx.trials, ctx.seed,
      [&](size_t cell, size_t /*shards*/, uint64_t trial_seed) {
        MixedRow row;
        const ShardTaskSpec task_spec =
            MakeFaultSpec(spec, data, spec.protocols[cell], AttackKind::kMga,
                          ctx.scale, trial_seed);
        auto plan = BuildShardTaskPlan(task_spec, data);
        if (!plan.ok()) return row;  // unreachable for the registered spec
        const auto lines = WorkerLines(*plan);
        const uint64_t total_chunks = plan->total_chunks();

        const auto clean = RunShardTaskInProcess(*plan, kFaultWorkers);
        if (!clean.ok()) return row;

        // Duplicate delivery must merge to the clean counts exactly.
        FaultSpec dup_fault;
        dup_fault.duplicate_fraction = 0.5;
        dup_fault.seed = DeriveSeed(trial_seed, 9100);
        const FaultedMerge dup = MergeUnderFaults(*plan, lines, dup_fault);
        if (dup.merged.ok()) {
          for (size_t v = 0; v < clean->genuine_counts.size(); ++v) {
            row.dup_drift = std::max(
                row.dup_drift,
                std::abs(dup.merged->genuine_counts[v] -
                         clean->genuine_counts[v]) +
                    std::abs(dup.merged->malicious_counts[v] -
                             clean->malicious_counts[v]));
          }
        }

        // Every torn line and every flipped line must be rejected by
        // the wire layer (fraction == 1.0).
        FaultSpec torn_fault;
        torn_fault.torn_fraction = 0.25;
        torn_fault.seed = DeriveSeed(trial_seed, 9200);
        const FaultedMerge torn = MergeUnderFaults(*plan, lines, torn_fault);
        if (torn.merged.ok() && torn.delivery.lines_torn > 0) {
          row.torn_rej =
              static_cast<double>(torn.merged->stats.lines_rejected) /
              static_cast<double>(torn.delivery.lines_torn);
        }
        FaultSpec flip_fault;
        flip_fault.bitflip_fraction = 0.25;
        flip_fault.seed = DeriveSeed(trial_seed, 9300);
        const FaultedMerge flip = MergeUnderFaults(*plan, lines, flip_fault);
        if (flip.merged.ok() && flip.delivery.lines_flipped > 0) {
          row.flip_rej =
              static_cast<double>(flip.merged->stats.lines_rejected) /
              static_cast<double>(flip.delivery.lines_flipped);
        }

        // Stragglers: coverage lost to late arrivals.
        FaultSpec straggler_fault;
        straggler_fault.straggler_fraction = 0.25;
        straggler_fault.seed = DeriveSeed(trial_seed, 9400);
        const FaultedMerge straggler =
            MergeUnderFaults(*plan, lines, straggler_fault);
        if (straggler.merged.ok() && total_chunks > 0) {
          row.straggler_loss =
              static_cast<double>(
                  straggler.merged->stats.genuine_chunks_lost +
                  straggler.merged->stats.malicious_chunks_lost) /
              static_cast<double>(total_chunks);
        }

        // Everything at once: the estimate should still come back.
        FaultSpec all_fault;
        all_fault.kill_fraction = 0.125;
        all_fault.straggler_fraction = 0.125;
        all_fault.duplicate_fraction = 0.25;
        all_fault.torn_fraction = 0.125;
        all_fault.bitflip_fraction = 0.125;
        all_fault.seed = DeriveSeed(trial_seed, 9500);
        const FaultedMerge all = MergeUnderFaults(*plan, lines, all_fault);
        row.fault_mse = PoisonedMseOr(*plan, data, all.merged, std::nan(""));
        return row;
      },
      &budget);
  ctx.report.outer_workers = budget.outer;
  ctx.report.shards = budget.inner;

  ctx.sink.BeginTable("Shard faults: duplicates, torn writes, bit flips, "
                      "stragglers (Zipf, 8 workers, MGA)",
                      spec.columns);
  for (size_t cell = 0; cell < cells; ++cell) {
    RunningStat dup, torn, flip, straggler, fault_mse;
    for (size_t t = 0; t < ctx.trials; ++t) {
      const MixedRow& row = rows[cell * ctx.trials + t];
      dup.Add(row.dup_drift);
      torn.Add(row.torn_rej);
      flip.Add(row.flip_rej);
      straggler.Add(row.straggler_loss);
      fault_mse.Add(row.fault_mse);
    }
    ctx.sink.AddRow(ProtocolKindName(spec.protocols[cell]),
                    {dup.mean(), torn.mean(), flip.mean(), straggler.mean(),
                     fault_mse.mean()});
    ++ctx.report.rows;
  }
  ctx.sink.EndTable();
  ++ctx.report.tables;
  return Status::Ok();
}

Scenario MakeShardFaultScenario(const char* id, const char* title,
                                std::vector<std::string> columns) {
  Scenario scenario;
  ScenarioSpec& spec = scenario.spec;
  spec.id = id;
  spec.title = title;
  spec.artifact = "extension";
  spec.metric_desc = "estimate MSE under shard faults";
  spec.datasets = {"zipf"};
  spec.protocols.assign(std::begin(kExtendedProtocolKinds),
                        std::end(kExtendedProtocolKinds));
  spec.attacks = {AttackKind::kMga};
  spec.columns = std::move(columns);
  spec.custom = true;
  return scenario;
}

}  // namespace

void RegisterShardFaultLoss(ScenarioRegistry& registry) {
  Scenario scenario = MakeShardFaultScenario(
      "shard_fault_loss",
      "shard_fault_loss: estimate MSE vs lost-shard fraction",
      {"GenL0", "GenL25", "GenL50", "MgaL0", "MgaL25", "MgaL50", "RecL0",
       "RecL50"});
  scenario.run = RunShardFaultLoss;
  registry.Register(std::move(scenario));
}

void RegisterShardFaultMixed(ScenarioRegistry& registry) {
  Scenario scenario = MakeShardFaultScenario(
      "shard_fault_mixed",
      "shard_fault_mixed: duplicate/torn/bit-flip/straggler delivery",
      {"DupDrift", "TornRej", "FlipRej", "StragLoss", "FaultMSE"});
  scenario.run = RunShardFaultMixed;
  registry.Register(std::move(scenario));
}

}  // namespace bench
}  // namespace ldpr
