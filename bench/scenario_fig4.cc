// Figure 4: frequency gain (FG) of the MGA targeted attack before
// recovery and under Detection / LDPRecover / LDPRecover*, for both
// datasets and all three protocols.

#include <iterator>

#include "ldp/factory.h"
#include "scenarios.h"

namespace ldpr {
namespace bench {

void RegisterFig4(ScenarioRegistry& registry) {
  Scenario scenario;
  ScenarioSpec& spec = scenario.spec;
  spec.id = "fig4";
  spec.title = "fig4: Figure 4 — targeted attack frequency gain";
  spec.artifact = "Figure 4";
  spec.metric_desc = "frequency gain under MGA";
  spec.datasets = {"ipums", "fire"};
  spec.protocols.assign(std::begin(kAllProtocolKinds),
                        std::end(kAllProtocolKinds));
  spec.attacks = {AttackKind::kMga};
  spec.row_label_prefix = "MGA-";
  spec.columns = {"Before", "Detection", "LDPRecover", "LDPRecover*"};
  scenario.format_row = [](const std::vector<ExperimentResult>& r) {
    return std::vector<double>{r[0].fg_before.mean(), r[0].fg_detection.mean(),
                               r[0].fg_recover.mean(),
                               r[0].fg_recover_star.mean()};
  };
  registry.Register(std::move(scenario));
}

}  // namespace bench
}  // namespace ldpr
