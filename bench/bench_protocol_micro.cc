// Engineering micro-benchmarks (google-benchmark): protocol perturb /
// aggregate throughput, closed-form vs exact aggregation sampling,
// and the recovery solve itself.  Not a paper figure; quantifies the
// fast-path ablation DESIGN.md section 5 calls out.

#include <benchmark/benchmark.h>

#include "data/synthetic.h"
#include "ldp/factory.h"
#include "recover/ldprecover.h"
#include "recover/simplex_projection.h"
#include "sim/pipeline.h"
#include "util/random.h"

namespace ldpr {
namespace {

std::unique_ptr<FrequencyProtocol> Proto(int kind, size_t d) {
  return MakeProtocol(static_cast<ProtocolKind>(kind), d, 0.5);
}

// Pinned per-bench seeds (lint R8): each bench gets its own stream so
// adding or reordering benches never perturbs another's inputs.
constexpr uint64_t kPerturbSeed = 1;
constexpr uint64_t kAccumulateSeed = 2;
constexpr uint64_t kSampleSeed = 3;
constexpr uint64_t kExactAggSeed = 4;
constexpr uint64_t kProjectionSeed = 5;
constexpr uint64_t kRecoverSeed = 6;

void BM_Perturb(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(1));
  const auto proto = Proto(static_cast<int>(state.range(0)), d);
  Rng rng(kPerturbSeed);
  ItemId item = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto->Perturb(item, rng));
    item = (item + 1) % d;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Perturb)
    ->ArgsProduct({{0, 1, 2}, {102, 490}})
    ->ArgNames({"protocol", "d"});

void BM_AccumulateSupports(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(1));
  const auto proto = Proto(static_cast<int>(state.range(0)), d);
  Rng rng(kAccumulateSeed);
  const Report report = proto->Perturb(0, rng);
  std::vector<double> counts(d, 0.0);
  for (auto _ : state) {
    proto->AccumulateSupports(report, counts);
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AccumulateSupports)
    ->ArgsProduct({{0, 1, 2}, {102, 490}})
    ->ArgNames({"protocol", "d"});

void BM_SampleSupportCountsFast(benchmark::State& state) {
  const auto proto = Proto(static_cast<int>(state.range(0)), 102);
  const Dataset ds = ScaleDataset(MakeIpumsLike(), 0.1);
  Rng rng(kSampleSeed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto->SampleSupportCounts(ds.item_counts, rng));
  }
  state.SetItemsProcessed(state.iterations() * ds.num_users());
}
BENCHMARK(BM_SampleSupportCountsFast)
    ->Args({0})
    ->Args({1})
    ->Args({2})
    ->ArgNames({"protocol"});

void BM_ExactGenuineAggregation(benchmark::State& state) {
  const auto proto = Proto(static_cast<int>(state.range(0)), 102);
  const Dataset ds = ScaleDataset(MakeIpumsLike(), 0.01);
  Rng rng(kExactAggSeed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ExactGenuineSupportCounts(*proto, ds.item_counts, rng));
  }
  state.SetItemsProcessed(state.iterations() * ds.num_users());
}
BENCHMARK(BM_ExactGenuineAggregation)
    ->Args({0})
    ->Args({1})
    ->Args({2})
    ->ArgNames({"protocol"});

void BM_SimplexProjection(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  Rng rng(kProjectionSeed);
  std::vector<double> est(d);
  for (double& x : est) x = rng.UniformDouble() * 0.05 - 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProjectToSimplexKkt(est));
  }
}
BENCHMARK(BM_SimplexProjection)->Arg(102)->Arg(490)->Arg(4096);

void BM_LdpRecoverEndToEnd(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const auto proto = MakeProtocol(ProtocolKind::kOue, d, 0.5);
  Rng rng(kRecoverSeed);
  std::vector<double> poisoned(d);
  for (double& x : poisoned) x = rng.UniformDouble() * 0.05 - 0.01;
  const LdpRecover recover(*proto);
  for (auto _ : state) {
    benchmark::DoNotOptimize(recover.Recover(poisoned));
  }
}
BENCHMARK(BM_LdpRecoverEndToEnd)->Arg(102)->Arg(490);

}  // namespace
}  // namespace ldpr

BENCHMARK_MAIN();
