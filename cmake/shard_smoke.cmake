# Multi-process shard smoke: runs N real `ldpr shard-worker`
# processes, merges their wire partials with `ldpr shard-merge`, and
# fails unless the merged result tree is byte-identical
# (`ldpr_diff --exact`) to the `--inprocess` reference computed from
# the same spec.  Also checks the failure contract: a torn partial
# fails the strict merge and is tolerated (with loss accounting) under
# --allow_missing.
#
# Usage: cmake -DLDPR_CLI=<path> -DLDPR_DIFF=<path> -DWORK_DIR=<dir>
#        -P shard_smoke.cmake

if(NOT LDPR_CLI OR NOT LDPR_DIFF OR NOT WORK_DIR)
  message(FATAL_ERROR "LDPR_CLI, LDPR_DIFF, and WORK_DIR must be set")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# One MGA trial, chunked small enough that 4 workers each own several
# chunks of both streams.
set(spec --protocol=OUE --attack=MGA --dataset=zipf --d=32 --n=50000
         --seed=7 --users_per_chunk=4000 --reports_per_chunk=400)

set(partials "")
foreach(worker RANGE 3)
  set(partial "${WORK_DIR}/part${worker}.jsonl")
  execute_process(COMMAND ${LDPR_CLI} shard-worker ${spec}
                          --workers=4 --worker=${worker} --out=${partial}
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "shard-worker ${worker} failed (rc=${rc})")
  endif()
  if(NOT EXISTS "${partial}")
    message(FATAL_ERROR "shard-worker ${worker} wrote no partial file")
  endif()
  list(APPEND partials "${partial}")
endforeach()

execute_process(COMMAND ${LDPR_CLI} shard-merge ${spec}
                        --out=${WORK_DIR}/merged ${partials}
                RESULT_VARIABLE rc OUTPUT_VARIABLE merge_out
                ERROR_VARIABLE merge_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "shard-merge failed (rc=${rc})\n${merge_out}\n${merge_err}")
endif()

execute_process(COMMAND ${LDPR_CLI} shard-merge ${spec}
                        --workers=4 --inprocess
                        --out=${WORK_DIR}/reference
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "shard-merge --inprocess failed (rc=${rc})")
endif()

execute_process(COMMAND ${LDPR_DIFF} --exact
                        ${WORK_DIR}/merged ${WORK_DIR}/reference
                RESULT_VARIABLE rc OUTPUT_VARIABLE diff_out
                ERROR_VARIABLE diff_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "multi-process merge is not byte-identical to the in-process "
          "reference\n${diff_out}\n${diff_err}")
endif()

# Failure contract: tear the first worker's partial mid-payload.
file(READ "${WORK_DIR}/part0.jsonl" part0_bytes)
string(LENGTH "${part0_bytes}" part0_len)
math(EXPR torn_len "${part0_len} / 2")
string(SUBSTRING "${part0_bytes}" 0 ${torn_len} torn_bytes)
file(WRITE "${WORK_DIR}/torn.jsonl" "${torn_bytes}")

list(REMOVE_AT partials 0)
execute_process(COMMAND ${LDPR_CLI} shard-merge ${spec}
                        --out=${WORK_DIR}/torn-strict
                        ${WORK_DIR}/torn.jsonl ${partials}
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "strict shard-merge accepted a torn partial")
endif()

execute_process(COMMAND ${LDPR_CLI} shard-merge ${spec} --allow_missing
                        --out=${WORK_DIR}/torn-lenient
                        ${WORK_DIR}/torn.jsonl ${partials}
                RESULT_VARIABLE rc OUTPUT_VARIABLE lenient_out
                ERROR_VARIABLE lenient_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "--allow_missing merge failed on a torn partial (rc=${rc})\n"
          "${lenient_out}\n${lenient_err}")
endif()
string(FIND "${lenient_out}" "1 rejected" has_rejected)
if(has_rejected EQUAL -1)
  message(FATAL_ERROR
          "--allow_missing merge did not report the rejected line\n"
          "${lenient_out}")
endif()

message(STATUS "shard smoke: 4-process merge byte-identical to in-process")
