# End-to-end liveness probes for the cross-TU lint rules: plant one
# seeded violation per rule in a scratch tree, run the real ldpr_lint
# binary, and require exit 1 with a finding naming the file, the line,
# and the rule id.  RULE=fix instead exercises the
# --fix=header-guards round trip (dry-run gates, --apply=1 rewrites,
# the rewritten tree lints clean and a second dry-run is empty).
#
# Usage: cmake -DLDPR_LINT=<path> -DRULE=<R6|R7|R8|fix>
#        -DWORK_DIR=<dir> -P lint_violation.cmake

if(NOT LDPR_LINT OR NOT RULE OR NOT WORK_DIR)
  message(FATAL_ERROR "LDPR_LINT, RULE, and WORK_DIR must be set")
endif()

set(tree "${WORK_DIR}/${RULE}")
file(REMOVE_RECURSE "${tree}")
file(MAKE_DIRECTORY "${tree}/src")

# Every scratch tree carries the layer contract so R6 is armed.
file(WRITE "${tree}/ci/lint_layers.txt" "util\nldp\n")

if(RULE STREQUAL "R6")
  # util (layer 0) reaches up into ldp (layer 1).
  file(WRITE "${tree}/src/ldp/b.h"
       "#ifndef LDPR_LDP_B_H_\n#define LDPR_LDP_B_H_\n#endif\n")
  file(WRITE "${tree}/src/util/a.cc" "#include \"ldp/b.h\"\nint x;\n")
  set(expect "src/util/a.cc:1: [R6]")
elseif(RULE STREQUAL "R7")
  file(WRITE "${tree}/src/util/a.cc"
       "void F(ThreadPool& pool, size_t n) {\n"
       "  double total = 0.0;\n"
       "  pool.ParallelFor(0, n, [&](size_t i) {\n"
       "    total += Work(i);\n"
       "  });\n"
       "}\n")
  set(expect "src/util/a.cc:4: [R7]")
elseif(RULE STREQUAL "R8")
  file(WRITE "${tree}/src/util/a.cc" "void F() {\n  Rng rng(123);\n}\n")
  set(expect "src/util/a.cc:2: [R8]")
elseif(RULE STREQUAL "fix")
  file(WRITE "${tree}/src/util/a.h"
       "#ifndef BAD_GUARD_H\n#define BAD_GUARD_H\n#endif  // BAD_GUARD_H\n")
else()
  message(FATAL_ERROR "unknown RULE '${RULE}'")
endif()

if(RULE STREQUAL "fix")
  execute_process(COMMAND ${LDPR_LINT} --repo=${tree} --allowlist=
                          --fix=header-guards src
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
  if(NOT rc EQUAL 1)
    message(FATAL_ERROR "dry-run with a pending fix must exit 1 (rc=${rc})\n${out}")
  endif()
  string(FIND "${out}" "BAD_GUARD_H -> LDPR_UTIL_A_H_" planned)
  if(planned EQUAL -1)
    message(FATAL_ERROR "dry-run did not plan the guard rename\n${out}")
  endif()

  execute_process(COMMAND ${LDPR_LINT} --repo=${tree} --allowlist=
                          --fix=header-guards --apply=1 src
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "--apply=1 failed (rc=${rc})\n${out}")
  endif()
  file(READ "${tree}/src/util/a.h" rewritten)
  string(FIND "${rewritten}" "LDPR_UTIL_A_H_" renamed)
  string(FIND "${rewritten}" "BAD_GUARD_H" leftover)
  if(renamed EQUAL -1 OR NOT leftover EQUAL -1)
    message(FATAL_ERROR "apply did not rewrite the guard\n${rewritten}")
  endif()

  # The rewritten tree lints clean and the fix planner is drained.
  execute_process(COMMAND ${LDPR_LINT} --repo=${tree} --allowlist= src
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "rewritten tree does not lint clean\n${out}")
  endif()
  execute_process(COMMAND ${LDPR_LINT} --repo=${tree} --allowlist=
                          --fix=header-guards src
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "second dry-run not idempotent (rc=${rc})")
  endif()
  message(STATUS "lint fix round trip: dry-run gated, apply converged")
  return()
endif()

execute_process(COMMAND ${LDPR_LINT} --repo=${tree} --allowlist= src
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR
          "seeded ${RULE} violation must exit 1 (rc=${rc})\n${out}\n${err}")
endif()
string(FIND "${out}" "${expect}" found)
if(found EQUAL -1)
  message(FATAL_ERROR
          "seeded ${RULE} violation not reported as '${expect}'\n${out}")
endif()
message(STATUS "lint violation ${RULE}: caught as '${expect}'")
