# The ldpr_diff round-trip contract (ISSUE 4 acceptance):
#
#   1. two same-seed `ldpr_bench --scenario all --out` runs at
#      different LDPR_THREADS pass `ldpr_diff --exact`;
#   2. perturbing one metric makes `--exact` (and a tight
#      `--tolerance`) fail with a non-zero exit and a drift report
#      naming the (scenario, table, row, column).
#
# Usage: cmake -DLDPR_BENCH=<path> -DLDPR_DIFF=<path> -DWORK_DIR=<dir>
#        -P ldpr_diff_roundtrip.cmake

if(NOT LDPR_BENCH OR NOT LDPR_DIFF OR NOT WORK_DIR)
  message(FATAL_ERROR "LDPR_BENCH, LDPR_DIFF, and WORK_DIR must be set")
endif()

set(ENV{LDPR_BENCH_SCALE} "0.005")
set(ENV{LDPR_BENCH_TRIALS} "1")

set(out_a "${WORK_DIR}/all-t1")
set(out_b "${WORK_DIR}/all-t2")
file(REMOVE_RECURSE "${out_a}" "${out_b}" "${WORK_DIR}/perturbed")

set(ENV{LDPR_THREADS} "1")
execute_process(COMMAND ${LDPR_BENCH} --scenario=all --out=${out_a}
                OUTPUT_QUIET RESULT_VARIABLE rc_a)
if(NOT rc_a EQUAL 0)
  message(FATAL_ERROR "ldpr_bench --scenario all failed at LDPR_THREADS=1")
endif()

set(ENV{LDPR_THREADS} "2")
execute_process(COMMAND ${LDPR_BENCH} --scenario=all --out=${out_b}
                OUTPUT_QUIET RESULT_VARIABLE rc_b)
if(NOT rc_b EQUAL 0)
  message(FATAL_ERROR "ldpr_bench --scenario all failed at LDPR_THREADS=2")
endif()

# 1. Same seed, different thread counts: trees must agree exactly.
execute_process(COMMAND ${LDPR_DIFF} --exact ${out_a} ${out_b}
                OUTPUT_VARIABLE diff_out ERROR_VARIABLE diff_err
                RESULT_VARIABLE rc_exact)
if(NOT rc_exact EQUAL 0)
  message(FATAL_ERROR
          "ldpr_diff --exact rejected two same-seed runs "
          "(rc=${rc_exact})\n${diff_out}\n${diff_err}")
endif()

# 2. Perturb one metric; the comparator must fail and name the cell.
file(COPY "${out_b}" DESTINATION "${WORK_DIR}/perturbed")
set(out_c "${WORK_DIR}/perturbed/all-t2")
file(READ "${out_c}/table1/results.jsonl" rows)
string(REGEX REPLACE "\"Before-Rec\":[0-9.eE+-]+" "\"Before-Rec\":123.456"
       perturbed "${rows}")
if(perturbed STREQUAL rows)
  message(FATAL_ERROR "perturbation did not change table1/results.jsonl")
endif()
file(WRITE "${out_c}/table1/results.jsonl" "${perturbed}")

execute_process(COMMAND ${LDPR_DIFF} --exact ${out_a} ${out_c}
                OUTPUT_VARIABLE diff_out ERROR_VARIABLE diff_err
                RESULT_VARIABLE rc_perturbed)
if(rc_perturbed EQUAL 0)
  message(FATAL_ERROR "ldpr_diff --exact accepted a perturbed tree")
endif()
foreach(needle "value-drift" "table1" "Before-Rec" "GRR")
  if(NOT diff_out MATCHES "${needle}")
    message(FATAL_ERROR
            "perturbed drift report does not name '${needle}':\n${diff_out}")
  endif()
endforeach()

execute_process(COMMAND ${LDPR_DIFF} --tolerance=1e-6 ${out_a} ${out_c}
                OUTPUT_QUIET ERROR_QUIET RESULT_VARIABLE rc_tolerance)
if(rc_tolerance EQUAL 0)
  message(FATAL_ERROR "ldpr_diff --tolerance=1e-6 accepted a perturbed tree")
endif()

message(STATUS "ldpr_diff round-trip: exact across thread counts, "
               "perturbation detected")
