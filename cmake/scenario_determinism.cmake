# Runs `ldpr_bench --scenario ${SCENARIO} --out` twice —
# LDPR_THREADS=1 and LDPR_THREADS=3 — at a tiny scale and fails unless
# the result files (results.csv, results.jsonl) and the console tables
# are byte-identical.  The banner line reporting the thread count is
# stripped from the console comparison (it is the only output that
# legitimately depends on LDPR_THREADS); the manifest is excluded for
# the same reason.
#
# Usage: cmake -DLDPR_BENCH=<path> -DSCENARIO=<id> -DWORK_DIR=<dir>
#        -P scenario_determinism.cmake

if(NOT LDPR_BENCH OR NOT SCENARIO OR NOT WORK_DIR)
  message(FATAL_ERROR "LDPR_BENCH, SCENARIO, and WORK_DIR must be set")
endif()

set(ENV{LDPR_BENCH_SCALE} "0.02")
set(ENV{LDPR_BENCH_TRIALS} "2")

set(out_serial "${WORK_DIR}/${SCENARIO}-t1")
set(out_parallel "${WORK_DIR}/${SCENARIO}-t3")
file(REMOVE_RECURSE "${out_serial}" "${out_parallel}")

set(ENV{LDPR_THREADS} "1")
execute_process(COMMAND ${LDPR_BENCH} --scenario=${SCENARIO}
                        --out=${out_serial}
                OUTPUT_VARIABLE console_serial RESULT_VARIABLE rc_serial)
if(NOT rc_serial EQUAL 0)
  message(FATAL_ERROR
          "${LDPR_BENCH} --scenario=${SCENARIO} failed at LDPR_THREADS=1 "
          "(rc=${rc_serial})")
endif()

set(ENV{LDPR_THREADS} "3")
execute_process(COMMAND ${LDPR_BENCH} --scenario=${SCENARIO}
                        --out=${out_parallel}
                OUTPUT_VARIABLE console_parallel RESULT_VARIABLE rc_parallel)
if(NOT rc_parallel EQUAL 0)
  message(FATAL_ERROR
          "${LDPR_BENCH} --scenario=${SCENARIO} failed at LDPR_THREADS=3 "
          "(rc=${rc_parallel})")
endif()

# Console tables must match modulo the threads banner line (and the
# printed --out paths, which name different directories).
string(REGEX REPLACE "[^\n]*threads=[^\n]*\n" "" console_serial
       "${console_serial}")
string(REGEX REPLACE "[^\n]*threads=[^\n]*\n" "" console_parallel
       "${console_parallel}")
string(REGEX REPLACE "wrote [^\n]*\n" "" console_serial "${console_serial}")
string(REGEX REPLACE "wrote [^\n]*\n" "" console_parallel
       "${console_parallel}")
if(NOT console_serial STREQUAL console_parallel)
  message(FATAL_ERROR
          "${SCENARIO}: console output differs between LDPR_THREADS=1 and 3\n"
          "--- threads=1 ---\n${console_serial}\n"
          "--- threads=3 ---\n${console_parallel}")
endif()

# Result files must be byte-identical.
foreach(result_file results.csv results.jsonl)
  set(serial_path "${out_serial}/${SCENARIO}/${result_file}")
  set(parallel_path "${out_parallel}/${SCENARIO}/${result_file}")
  if(NOT EXISTS "${serial_path}" OR NOT EXISTS "${parallel_path}")
    message(FATAL_ERROR "${SCENARIO}: missing ${result_file} under --out")
  endif()
  file(READ "${serial_path}" bytes_serial)
  file(READ "${parallel_path}" bytes_parallel)
  if(NOT bytes_serial STREQUAL bytes_parallel)
    message(FATAL_ERROR
            "${SCENARIO}: ${result_file} differs between LDPR_THREADS=1 "
            "and 3\n--- threads=1 ---\n${bytes_serial}\n"
            "--- threads=3 ---\n${bytes_parallel}")
  endif()
endforeach()

# The manifest must at least exist and name the scenario.
if(NOT EXISTS "${out_serial}/${SCENARIO}/manifest.json")
  message(FATAL_ERROR "${SCENARIO}: manifest.json missing under --out")
endif()

message(STATUS
        "${SCENARIO}: byte-identical results at LDPR_THREADS=1 and 3")
