# Runs `ldpr_bench --scenario ${SCENARIO} --out` twice —
# LDPR_THREADS=1 and LDPR_THREADS=3 — at a tiny scale and fails unless
# the two runs agree:
#
#   - LDPR_DIFF (when set): the result trees must pass
#     `ldpr_diff --exact`, which joins rows by (scenario, table, row)
#     and exempts the timing columns each scenario's manifest
#     declares — the only columns that may legitimately differ.
#   - Unless HAS_TIMING_COLUMNS: the result files must additionally
#     be byte-identical and the console tables equal (the banner line
#     reporting the thread count is stripped; scenarios with timing
#     columns skip both, since wall clocks differ between any two
#     runs).
#
# Usage: cmake -DLDPR_BENCH=<path> -DSCENARIO=<id> -DWORK_DIR=<dir>
#        [-DLDPR_DIFF=<path>] [-DHAS_TIMING_COLUMNS=1]
#        -P scenario_determinism.cmake

if(NOT LDPR_BENCH OR NOT SCENARIO OR NOT WORK_DIR)
  message(FATAL_ERROR "LDPR_BENCH, SCENARIO, and WORK_DIR must be set")
endif()

set(ENV{LDPR_BENCH_SCALE} "0.02")
set(ENV{LDPR_BENCH_TRIALS} "2")

set(out_serial "${WORK_DIR}/${SCENARIO}-t1")
set(out_parallel "${WORK_DIR}/${SCENARIO}-t3")
file(REMOVE_RECURSE "${out_serial}" "${out_parallel}")

set(ENV{LDPR_THREADS} "1")
execute_process(COMMAND ${LDPR_BENCH} --scenario=${SCENARIO}
                        --out=${out_serial}
                OUTPUT_VARIABLE console_serial RESULT_VARIABLE rc_serial)
if(NOT rc_serial EQUAL 0)
  message(FATAL_ERROR
          "${LDPR_BENCH} --scenario=${SCENARIO} failed at LDPR_THREADS=1 "
          "(rc=${rc_serial})")
endif()

set(ENV{LDPR_THREADS} "3")
execute_process(COMMAND ${LDPR_BENCH} --scenario=${SCENARIO}
                        --out=${out_parallel}
                OUTPUT_VARIABLE console_parallel RESULT_VARIABLE rc_parallel)
if(NOT rc_parallel EQUAL 0)
  message(FATAL_ERROR
          "${LDPR_BENCH} --scenario=${SCENARIO} failed at LDPR_THREADS=3 "
          "(rc=${rc_parallel})")
endif()

# The comparator view: row-joined, timing columns exempt.
if(LDPR_DIFF)
  execute_process(COMMAND ${LDPR_DIFF} --exact ${out_serial} ${out_parallel}
                  OUTPUT_VARIABLE diff_out ERROR_VARIABLE diff_err
                  RESULT_VARIABLE rc_diff)
  if(NOT rc_diff EQUAL 0)
    message(FATAL_ERROR
            "${SCENARIO}: ldpr_diff --exact failed between LDPR_THREADS=1 "
            "and 3 (rc=${rc_diff})\n${diff_out}\n${diff_err}")
  endif()
endif()

if(NOT HAS_TIMING_COLUMNS)
  # Console tables must match modulo the threads banner line (and the
  # printed --out paths, which name different directories).
  string(REGEX REPLACE "[^\n]*threads=[^\n]*\n" "" console_serial
         "${console_serial}")
  string(REGEX REPLACE "[^\n]*threads=[^\n]*\n" "" console_parallel
         "${console_parallel}")
  string(REGEX REPLACE "wrote [^\n]*\n" "" console_serial
         "${console_serial}")
  string(REGEX REPLACE "wrote [^\n]*\n" "" console_parallel
         "${console_parallel}")
  if(NOT console_serial STREQUAL console_parallel)
    message(FATAL_ERROR
            "${SCENARIO}: console output differs between LDPR_THREADS=1 "
            "and 3\n--- threads=1 ---\n${console_serial}\n"
            "--- threads=3 ---\n${console_parallel}")
  endif()

  # Result files must be byte-identical.
  foreach(result_file results.csv results.jsonl)
    set(serial_path "${out_serial}/${SCENARIO}/${result_file}")
    set(parallel_path "${out_parallel}/${SCENARIO}/${result_file}")
    if(NOT EXISTS "${serial_path}" OR NOT EXISTS "${parallel_path}")
      message(FATAL_ERROR "${SCENARIO}: missing ${result_file} under --out")
    endif()
    file(READ "${serial_path}" bytes_serial)
    file(READ "${parallel_path}" bytes_parallel)
    if(NOT bytes_serial STREQUAL bytes_parallel)
      message(FATAL_ERROR
              "${SCENARIO}: ${result_file} differs between LDPR_THREADS=1 "
              "and 3\n--- threads=1 ---\n${bytes_serial}\n"
              "--- threads=3 ---\n${bytes_parallel}")
    endif()
  endforeach()
endif()

# The manifests must at least exist and name the scenario.
if(NOT EXISTS "${out_serial}/${SCENARIO}/manifest.json")
  message(FATAL_ERROR "${SCENARIO}: manifest.json missing under --out")
endif()
if(NOT EXISTS "${out_serial}/manifest.json")
  message(FATAL_ERROR "${SCENARIO}: top-level manifest.json missing")
endif()

message(STATUS
        "${SCENARIO}: deterministic at LDPR_THREADS=1 vs 3")
