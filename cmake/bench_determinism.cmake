# Runs BENCH_BIN twice — LDPR_THREADS=1 and LDPR_THREADS=3 — at a
# tiny scale and fails unless the printed tables are byte-identical.
# The banner line reporting the thread count is stripped before the
# comparison (it is the only output that legitimately depends on
# LDPR_THREADS).
#
# Usage: cmake -DBENCH_BIN=<path> -P bench_determinism.cmake

if(NOT BENCH_BIN)
  message(FATAL_ERROR "BENCH_BIN not set")
endif()

set(ENV{LDPR_BENCH_SCALE} "0.02")
set(ENV{LDPR_BENCH_TRIALS} "2")

set(ENV{LDPR_THREADS} "1")
execute_process(COMMAND ${BENCH_BIN} OUTPUT_VARIABLE out_serial
                RESULT_VARIABLE rc_serial)
if(NOT rc_serial EQUAL 0)
  message(FATAL_ERROR "${BENCH_BIN} failed at LDPR_THREADS=1 (rc=${rc_serial})")
endif()

set(ENV{LDPR_THREADS} "3")
execute_process(COMMAND ${BENCH_BIN} OUTPUT_VARIABLE out_parallel
                RESULT_VARIABLE rc_parallel)
if(NOT rc_parallel EQUAL 0)
  message(FATAL_ERROR "${BENCH_BIN} failed at LDPR_THREADS=3 (rc=${rc_parallel})")
endif()

string(REGEX REPLACE "[^\n]*threads=[^\n]*\n" "" out_serial "${out_serial}")
string(REGEX REPLACE "[^\n]*threads=[^\n]*\n" "" out_parallel "${out_parallel}")

if(NOT out_serial STREQUAL out_parallel)
  message(FATAL_ERROR
          "${BENCH_BIN}: output differs between LDPR_THREADS=1 and 3\n"
          "--- threads=1 ---\n${out_serial}\n"
          "--- threads=3 ---\n${out_parallel}")
endif()
message(STATUS "${BENCH_BIN}: byte-identical at LDPR_THREADS=1 and 3")
