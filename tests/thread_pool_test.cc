#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace ldpr {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ClampsZeroThreadsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, MemberParallelForCoversEachIndexOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.ParallelFor(0, hits.size(), [&hits](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, CoversEachIndexOnce) {
  for (size_t threads : {1u, 2u, 3u, 8u}) {
    std::vector<int> hits(257, 0);
    ParallelFor(threads, hits.size(), [&hits](size_t i) { ++hits[i]; });
    const int total = std::accumulate(hits.begin(), hits.end(), 0);
    EXPECT_EQ(total, 257) << "threads=" << threads;
    for (int h : hits) ASSERT_EQ(h, 1);
  }
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::vector<int> hits(3, 0);
  ParallelFor(16, hits.size(), [&hits](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool ran = false;
  ParallelFor(4, 0, [&ran](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, PropagatesException) {
  EXPECT_THROW(
      ParallelFor(4, 100,
                  [](size_t i) {
                    if (i == 37) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, SerialFastPathPreservesCallOrder) {
  std::vector<size_t> order;
  ParallelFor(1, 5, [&order](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(DefaultThreadCountTest, IsAtLeastOne) {
  EXPECT_GE(DefaultThreadCount(), 1u);
}

TEST(GlobalThreadPoolTest, IsProcessWideAndReused) {
  ThreadPool& a = GlobalThreadPool();
  ThreadPool& b = GlobalThreadPool();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.num_threads(), DefaultThreadCount());
}

TEST(GlobalThreadPoolTest, WorkerFlagIsVisibleInsideTasksOnly) {
  EXPECT_FALSE(InThreadPoolWorker());
  std::atomic<int> inside{-1};
  GlobalThreadPool().Submit(
      [&inside] { inside.store(InThreadPoolWorker() ? 1 : 0); });
  GlobalThreadPool().Wait();
  EXPECT_EQ(inside.load(), 1);
  EXPECT_FALSE(InThreadPoolWorker());
}

TEST(GlobalThreadPoolTest, NestedParallelForInsidePoolTaskCompletes) {
  // A ParallelFor issued from inside a pool task must not re-enter
  // the pool it runs on (deadlock); it gets a transient pool instead.
  std::vector<int> hits(64, 0);
  GlobalThreadPool().Submit([&hits] {
    ParallelFor(4, hits.size(), [&hits](size_t i) { ++hits[i]; });
  });
  GlobalThreadPool().Wait();
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, MemberParallelForHonorsMaxRunners) {
  ThreadPool pool(4);
  // With a single runner the dynamic schedule degenerates to
  // in-order execution.
  std::vector<size_t> order;
  pool.ParallelFor(0, 6, [&order](size_t i) { order.push_back(i); },
                   /*max_runners=*/1);
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4, 5}));
}

TEST(ParallelForTest, ReusesGlobalPoolFromTopLevel) {
  // Requests within the global pool's capacity run on its workers;
  // this exercises the persistent-pool fast path (with
  // DefaultThreadCount() == 1 the loop runs inline instead, which is
  // equally correct — the assertion only checks coverage).
  const size_t threads = std::min<size_t>(DefaultThreadCount(), 4);
  std::vector<int> hits(200, 0);
  ParallelFor(threads, hits.size(), [&hits](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(DeriveSeedTest, DeterministicAndStreamSensitive) {
  EXPECT_EQ(DeriveSeed(42, 0), DeriveSeed(42, 0));
  EXPECT_NE(DeriveSeed(42, 0), DeriveSeed(42, 1));
  EXPECT_NE(DeriveSeed(42, 0), DeriveSeed(43, 0));
}

TEST(DeriveSeedTest, AdjacentStreamsAreUncorrelated) {
  // The derived seeds feed Rng constructors; a crude independence
  // check: streams 0..99 of one seed produce distinct values, and the
  // Rngs they seed diverge immediately.
  std::vector<uint64_t> seeds;
  for (uint64_t t = 0; t < 100; ++t) seeds.push_back(DeriveSeed(7, t));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());

  Rng a(DeriveSeed(7, 0));
  Rng b(DeriveSeed(7, 1));
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next()) ? 1 : 0;
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace ldpr
