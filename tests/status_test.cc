#include "util/status.h"

#include <gtest/gtest.h>

namespace ldpr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad d");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad d");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad d");
}

TEST(StatusTest, ConstructorsMapToCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status(), Status::Ok());
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << NotFoundError("missing");
  EXPECT_EQ(os.str(), "NOT_FOUND: missing");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOnlyFriendly) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

}  // namespace
}  // namespace ldpr
