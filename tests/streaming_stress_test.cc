// Randomized window-boundary stress: a fixed corpus of derived seeds
// (no wall-clock randomness) drives pseudo-random stream shapes —
// total / window / stride / protocol / attack schedule — and every
// shape must uphold the streaming invariants: per-window support
// counts sum byte-exactly to the stream totals, the stream totals
// equal the batch aggregator on the replayed reports, every report is
// covered by the tumbling partition, and the flush buffer never
// exceeds its slack.

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "ldp/factory.h"
#include "stream/streaming_engine.h"
#include "util/random.h"

namespace ldpr {
namespace {

constexpr uint64_t kCorpusSeed = 0xC0FFEE5EEDULL;
constexpr size_t kCorpusSize = 24;

struct FuzzCase {
  ProtocolKind kind;
  StreamSpec spec;
  uint64_t stream_seed;
  size_t shards;
};

// Derives one stream shape from a corpus seed.  All draws go through
// Rng(seed): re-running the corpus is bit-reproducible.
FuzzCase MakeCase(uint64_t seed) {
  Rng rng(seed);
  FuzzCase fuzz;
  fuzz.kind = kExtendedProtocolKinds[rng.UniformU64(
      std::size(kExtendedProtocolKinds))];

  StreamSpec& spec = fuzz.spec;
  // Totals straddle the 4096 flush and 8192 shard edges: a base size
  // plus a +/-2 jitter around the power-of-two boundaries.
  const size_t kEdges[] = {100, 1000, 4096, 8192};
  const size_t edge = kEdges[rng.UniformU64(std::size(kEdges))];
  spec.total_reports = edge + rng.UniformU64(5) - 2;

  // Window size anywhere from one report to the whole stream; stride
  // a random divisor of the window (0 = tumbling).
  spec.window_reports = 1 + rng.UniformU64(spec.total_reports);
  if (rng.Bernoulli(0.5)) {
    std::vector<size_t> divisors;
    for (size_t s = 1; s * s <= spec.window_reports; ++s) {
      if (spec.window_reports % s == 0) {
        divisors.push_back(s);
        divisors.push_back(spec.window_reports / s);
      }
    }
    spec.stride_reports = divisors[rng.UniformU64(divisors.size())];
  }

  const size_t d = 8 + rng.UniformU64(57);  // 8..64
  spec.item_counts.resize(d);
  for (size_t v = 0; v < d; ++v) spec.item_counts[v] = 1 + rng.UniformU64(50);

  switch (rng.UniformU64(4)) {
    case 0:
      spec.wave = WaveShape::kNone;
      break;
    case 1:
      spec.wave = WaveShape::kConstant;
      spec.attacker_fraction = 0.3 * rng.UniformDouble();
      break;
    case 2: {
      spec.wave = WaveShape::kWave;
      spec.attacker_fraction = 0.05 + 0.3 * rng.UniformDouble();
      spec.wave_start = rng.UniformU64(spec.total_reports);
      spec.wave_end =
          spec.wave_start +
          rng.UniformU64(spec.total_reports - spec.wave_start + 1);
      break;
    }
    default:
      spec.wave = WaveShape::kRamp;
      spec.attacker_fraction = 0.05 + 0.3 * rng.UniformDouble();
      break;
  }
  spec.num_targets = 1 + rng.UniformU64(std::min<size_t>(10, d));

  fuzz.stream_seed = rng.Next();
  const size_t kShardChoices[] = {1, 2, 3, 8};
  fuzz.shards = kShardChoices[rng.UniformU64(std::size(kShardChoices))];
  return fuzz;
}

TEST(StreamingStressTest, RandomizedShapesUpholdStreamingInvariants) {
  for (size_t c = 0; c < kCorpusSize; ++c) {
    const FuzzCase fuzz = MakeCase(DeriveSeed(kCorpusSeed, c));
    const StreamSpec& spec = fuzz.spec;
    ASSERT_TRUE(ValidateStreamSpec(spec).ok())
        << "corpus " << c << " produced an invalid spec";
    SCOPED_TRACE(::testing::Message()
                 << "corpus=" << c << " protocol="
                 << ProtocolKindName(fuzz.kind)
                 << " total=" << spec.total_reports
                 << " window=" << spec.window_reports
                 << " stride=" << spec.stride_reports
                 << " wave=" << WaveShapeName(spec.wave)
                 << " d=" << spec.item_counts.size());

    const std::unique_ptr<FrequencyProtocol> protocol =
        MakeProtocol(fuzz.kind, spec.item_counts.size(), 1.0);
    StreamEngineOptions options;
    options.run_recovery = false;
    const StreamSummary summary =
        RunStream(*protocol, spec, options, fuzz.stream_seed);

    // Bounded memory: the flush buffer never outgrows its slack.
    EXPECT_LE(summary.peak_buffered_reports, kBatchFlushReports);

    // The stream totals equal the batch path on the replayed reports,
    // byte for byte, at an arbitrary shard count.
    const StreamReplay replay =
        ReplayStream(*protocol, spec, fuzz.stream_seed);
    ASSERT_EQ(replay.reports.size(), spec.total_reports);
    Aggregator aggregator(*protocol);
    aggregator.AddAllSharded(replay.reports, fuzz.shards);
    EXPECT_EQ(summary.final_support_counts, aggregator.support_counts());

    ASSERT_FALSE(summary.windows.empty());
    const size_t stride = spec.stride_reports == 0 ? spec.window_reports
                                                   : spec.stride_reports;
    size_t attackers = 0;
    for (size_t w = 0; w < summary.windows.size(); ++w) {
      const WindowResult& window = summary.windows[w];
      EXPECT_EQ(window.index, w);
      EXPECT_EQ(window.first_report, w * stride);
      EXPECT_LE(window.first_report + window.report_count,
                spec.total_reports);
      attackers += window.attackers;
    }
    // The final window reaches the end of the stream: no report is
    // left uncovered by the pane decomposition.
    const WindowResult& last = summary.windows.back();
    EXPECT_EQ(last.first_report + last.report_count, spec.total_reports);

    if (spec.stride_reports == 0) {
      // Tumbling windows partition the stream: per-window counts,
      // tallies, and attacker counts sum back to the totals exactly.
      std::vector<double> summed(spec.item_counts.size(), 0.0);
      std::vector<uint64_t> tally(spec.item_counts.size(), 0);
      size_t covered = 0;
      for (const WindowResult& window : summary.windows) {
        EXPECT_EQ(window.first_report, covered);
        covered += window.report_count;
        for (size_t v = 0; v < summed.size(); ++v) {
          summed[v] += window.support_counts[v];
          tally[v] += window.genuine_tally[v];
        }
      }
      EXPECT_EQ(covered, spec.total_reports);
      EXPECT_EQ(summed, summary.final_support_counts);
      EXPECT_EQ(tally, summary.final_genuine_tally);
      EXPECT_EQ(attackers, summary.total_attackers);
    }
  }
}

}  // namespace
}  // namespace ldpr
