#include "ldp/harmony.h"

#include <cmath>

#include <gtest/gtest.h>

#include "recover/ldprecover.h"

namespace ldpr {
namespace {

TEST(HarmonyTest, UnderlyingProtocolIsBinaryGrr) {
  const Harmony h(1.0);
  EXPECT_EQ(h.protocol().domain_size(), 2u);
  EXPECT_EQ(h.protocol().kind(), ProtocolKind::kGrr);
}

TEST(HarmonyTest, DiscretizationMeanMatchesValue) {
  const Harmony h(1.0);
  Rng rng(1);
  const double value = 0.4;
  int plus = 0;
  const int kTrials = 40000;
  for (int i = 0; i < kTrials; ++i)
    plus += (h.Discretize(value, rng) == Harmony::kPlusOne) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(plus) / kTrials, (1.0 + value) / 2.0, 0.01);
}

TEST(HarmonyTest, MeanFrequencyConversionsAreInverse) {
  for (double mean : {-1.0, -0.3, 0.0, 0.7, 1.0}) {
    const auto freqs = Harmony::FrequenciesFromMean(mean);
    EXPECT_NEAR(Harmony::MeanFromFrequencies(freqs), mean, 1e-12);
    EXPECT_NEAR(freqs[0] + freqs[1], 1.0, 1e-12);
  }
}

TEST(HarmonyTest, EstimateMeanIsUnbiased) {
  const Harmony h(1.0);
  Rng rng(2);
  const double true_mean = -0.25;
  std::vector<Report> reports;
  const int n = 60000;
  reports.reserve(n);
  for (int i = 0; i < n; ++i) reports.push_back(h.Perturb(true_mean, rng));
  EXPECT_NEAR(h.EstimateMean(reports), true_mean, 0.03);
}

TEST(HarmonyTest, LdpRecoverRepairsPoisonedMean) {
  // Section VII-A: Harmony reduces to binary frequency estimation, so
  // LDPRecover applies.  Poison with fake users all voting +1.
  const Harmony h(1.0);
  const Grr& rr = h.protocol();
  Rng rng(3);
  const double true_mean = -0.5;
  const size_t n = 60000;
  const size_t m = 6000;  // 10% fake users

  Aggregator genuine(rr);
  for (size_t i = 0; i < n; ++i) genuine.Add(h.Perturb(true_mean, rng));

  Aggregator all(rr);
  for (size_t i = 0; i < n; ++i) all.Add(h.Perturb(true_mean, rng));
  for (size_t i = 0; i < m; ++i)
    all.Add(rr.CraftSupportingReport(Harmony::kPlusOne, rng));

  const double poisoned_mean =
      Harmony::MeanFromFrequencies(all.EstimateFrequencies());
  EXPECT_GT(poisoned_mean, true_mean + 0.1);  // attack visibly inflates

  RecoverOptions opts;
  opts.eta = 0.2;
  const LdpRecover recover(rr, opts);
  const double recovered_mean = Harmony::MeanFromFrequencies(
      recover.Recover(all.EstimateFrequencies()));
  // Recovery moves the mean back toward the truth.
  EXPECT_LT(std::abs(recovered_mean - true_mean),
            std::abs(poisoned_mean - true_mean));
}

TEST(HarmonyDeathTest, RejectsOutOfRangeValue) {
  const Harmony h(1.0);
  Rng rng(4);
  EXPECT_DEATH((void)h.Perturb(1.5, rng), "LDPR_CHECK");
}

}  // namespace
}  // namespace ldpr
