// Deterministic fault-injection locks (src/shard/fault.h): plans are
// a pure function of (spec, fleet size), fault picks are disjoint and
// hit the requested counts, and every injected fault type produces
// its contracted observable through the merge — kills and stragglers
// lose exactly their chunk ranges, duplicates merge idempotently,
// torn writes and payload bit flips are rejected by the wire layer.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "shard/fault.h"
#include "shard/merge.h"
#include "shard/shard_task.h"

namespace ldpr {
namespace {

constexpr uint64_t kWorkers = 8;

size_t CountFate(const FaultPlan& plan, WorkerFate fate) {
  size_t count = 0;
  for (WorkerFate f : plan.fates) count += (f == fate) ? 1 : 0;
  return count;
}

size_t CountTrue(const std::vector<bool>& flags) {
  size_t count = 0;
  for (bool f : flags) count += f ? 1 : 0;
  return count;
}

TEST(FaultPlanTest, PlanIsDeterministicInSpecAndFleetSize) {
  FaultSpec spec;
  spec.kill_fraction = 0.25;
  spec.straggler_fraction = 0.25;
  spec.duplicate_fraction = 0.25;
  spec.torn_fraction = 0.125;
  spec.bitflip_fraction = 0.125;
  spec.seed = 31337;
  const FaultPlan a = MakeFaultPlan(spec, kWorkers);
  const FaultPlan b = MakeFaultPlan(spec, kWorkers);
  EXPECT_EQ(a.fates, b.fates);
  EXPECT_EQ(a.duplicated, b.duplicated);
  EXPECT_EQ(a.torn, b.torn);
  EXPECT_EQ(a.bitflipped, b.bitflipped);

  spec.seed = 31338;
  const FaultPlan c = MakeFaultPlan(spec, kWorkers);
  EXPECT_TRUE(c.fates != a.fates || c.duplicated != a.duplicated ||
              c.torn != a.torn || c.bitflipped != a.bitflipped);
}

TEST(FaultPlanTest, PicksHitRequestedCountsAndStayDisjoint) {
  FaultSpec spec;
  spec.kill_fraction = 0.25;       // 2 of 8
  spec.straggler_fraction = 0.25;  // 2 of 8
  spec.duplicate_fraction = 0.25;  // 2 of the 4 survivors
  spec.torn_fraction = 0.125;      // 1
  spec.bitflip_fraction = 0.125;   // 1
  spec.seed = 7;
  const FaultPlan plan = MakeFaultPlan(spec, kWorkers);
  EXPECT_EQ(CountFate(plan, WorkerFate::kKilled), 2u);
  EXPECT_EQ(CountFate(plan, WorkerFate::kStraggler), 2u);
  EXPECT_EQ(CountTrue(plan.duplicated), 2u);
  EXPECT_EQ(CountTrue(plan.torn), 1u);
  EXPECT_EQ(CountTrue(plan.bitflipped), 1u);
  for (uint64_t w = 0; w < kWorkers; ++w) {
    const int line_faults = (plan.duplicated[w] ? 1 : 0) +
                            (plan.torn[w] ? 1 : 0) +
                            (plan.bitflipped[w] ? 1 : 0);
    EXPECT_LE(line_faults, 1) << "worker " << w;
    if (plan.fates[w] != WorkerFate::kHealthy) {
      EXPECT_EQ(line_faults, 0) << "worker " << w;
    }
  }
}

TEST(FaultPlanTest, OverfullFractionsClampToTheFleet) {
  FaultSpec spec;
  spec.kill_fraction = 1.0;
  spec.straggler_fraction = 1.0;
  spec.seed = 1;
  const FaultPlan plan = MakeFaultPlan(spec, kWorkers);
  EXPECT_EQ(CountFate(plan, WorkerFate::kKilled), kWorkers);
  EXPECT_EQ(CountFate(plan, WorkerFate::kStraggler), 0u);
}

// End-to-end fixture: a real plan's worker lines through a fault plan
// into the merger.
class FaultMergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = MakeZipfDataset("z", /*d=*/16, /*n=*/16000, /*s=*/1.0,
                               /*shuffle_seed=*/13);
    ShardTaskSpec spec;
    spec.protocol = ProtocolKind::kOue;
    spec.attack = AttackKind::kMga;
    spec.beta = 0.05;
    spec.num_targets = 4;
    spec.seed = 2024;
    spec.chunking.users_per_chunk = 1000;   // 16 genuine chunks
    spec.chunking.reports_per_chunk = 100;  // ~9 malicious chunks
    auto plan = BuildShardTaskPlan(spec, dataset_);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    plan_ = std::move(*plan);
    worker_lines_.resize(kWorkers);
    for (uint64_t w = 0; w < kWorkers; ++w) {
      for (const PartialRecord& rec : ComputeWorkerPartials(plan_, w, kWorkers))
        worker_lines_[w].push_back(EncodePartialLine(rec));
    }
    const auto clean = RunShardTaskInProcess(plan_, kWorkers);
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    clean_ = std::move(*clean);
  }

  StatusOr<MergedPartials> MergeFaulty(const FaultSpec& fault,
                                       FaultyDelivery* delivery_out = nullptr) {
    const FaultPlan fault_plan = MakeFaultPlan(fault, kWorkers);
    FaultyDelivery delivery = ApplyFaultPlan(fault_plan, worker_lines_);
    if (delivery_out != nullptr) *delivery_out = delivery;
    MergeOptions options;
    options.allow_missing = true;
    return MergeShardPartials(plan_, delivery.lines, options);
  }

  Dataset dataset_;
  ShardTaskPlan plan_;
  std::vector<std::vector<std::string>> worker_lines_;
  MergedPartials clean_;
};

TEST_F(FaultMergeTest, NoFaultsMeansTheCleanMerge) {
  FaultSpec fault;
  fault.seed = 5;
  FaultyDelivery delivery;
  const auto merged = MergeFaulty(fault, &delivery);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(delivery.workers_killed, 0u);
  EXPECT_EQ(delivery.lines_torn, 0u);
  EXPECT_EQ(merged->genuine_counts, clean_.genuine_counts);
  EXPECT_EQ(merged->malicious_counts, clean_.malicious_counts);
}

TEST_F(FaultMergeTest, KilledWorkersLoseExactlyTheirChunks) {
  FaultSpec fault;
  fault.kill_fraction = 0.25;
  fault.seed = 5;
  FaultyDelivery delivery;
  const auto merged = MergeFaulty(fault, &delivery);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(delivery.workers_killed, 2u);
  // 8 workers over 25 chunks: each owns ~3, so 2 kills lose ~6.
  const uint64_t lost = merged->stats.genuine_chunks_lost +
                        merged->stats.malicious_chunks_lost;
  EXPECT_GE(lost, 4u);
  EXPECT_LE(lost, 8u);
  EXPECT_LT(merged->stats.users_covered + merged->stats.reports_covered,
            plan_.n + plan_.m);
}

TEST_F(FaultMergeTest, StragglersAreDroppedAndTalliedSeparately) {
  FaultSpec fault;
  fault.straggler_fraction = 0.25;
  fault.seed = 6;
  FaultyDelivery delivery;
  const auto merged = MergeFaulty(fault, &delivery);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(delivery.workers_straggling, 2u);
  EXPECT_EQ(delivery.workers_killed, 0u);
  EXPECT_GT(merged->stats.genuine_chunks_lost +
                merged->stats.malicious_chunks_lost,
            0u);
}

TEST_F(FaultMergeTest, DuplicateDeliveryMergesToTheCleanCounts) {
  FaultSpec fault;
  fault.duplicate_fraction = 0.5;
  fault.seed = 7;
  FaultyDelivery delivery;
  const auto merged = MergeFaulty(fault, &delivery);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_GT(delivery.lines_duplicated, 0u);
  EXPECT_EQ(merged->stats.duplicates_dropped, delivery.lines_duplicated);
  EXPECT_EQ(merged->genuine_counts, clean_.genuine_counts);
  EXPECT_EQ(merged->malicious_counts, clean_.malicious_counts);
  EXPECT_EQ(merged->stats.users_covered, plan_.n);
  EXPECT_EQ(merged->stats.reports_covered, plan_.m);
}

TEST_F(FaultMergeTest, TornWritesAreRejectedByTheFrameScan) {
  FaultSpec fault;
  fault.torn_fraction = 0.25;
  fault.seed = 8;
  FaultyDelivery delivery;
  const auto merged = MergeFaulty(fault, &delivery);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(delivery.lines_torn, 2u);
  EXPECT_EQ(merged->stats.lines_rejected, delivery.lines_torn);
}

TEST_F(FaultMergeTest, BitFlipsAreRejectedByTheChecksum) {
  FaultSpec fault;
  fault.bitflip_fraction = 0.25;
  fault.seed = 9;
  FaultyDelivery delivery;
  const auto merged = MergeFaulty(fault, &delivery);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(delivery.lines_flipped, 2u);
  EXPECT_EQ(merged->stats.lines_rejected, delivery.lines_flipped);
}

TEST_F(FaultMergeTest, EveryFaultAtOnceStillEstimates) {
  FaultSpec fault;
  fault.kill_fraction = 0.125;
  fault.straggler_fraction = 0.125;
  fault.duplicate_fraction = 0.25;
  fault.torn_fraction = 0.125;
  fault.bitflip_fraction = 0.125;
  fault.seed = 10;
  const auto merged = MergeFaulty(fault);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_GT(merged->stats.users_covered, 0u);
  const ShardOutcome outcome = ComputeShardOutcome(plan_, dataset_, *merged);
  EXPECT_EQ(outcome.poisoned_freqs.size(), dataset_.domain_size());
  EXPECT_GE(outcome.poisoned_mse, 0.0);
  EXPECT_GE(outcome.recovered_mse, 0.0);
}

}  // namespace
}  // namespace ldpr
