#include "attack/ipa.h"

#include <gtest/gtest.h>

#include "attack/mga.h"
#include "ldp/grr.h"
#include "ldp/oue.h"
#include "util/metrics.h"

namespace ldpr {
namespace {

TEST(IpaTest, MgaIpaTargetsRecorded) {
  const auto attack = MakeMgaIpa(50, {1, 2, 3});
  EXPECT_EQ(attack->Name(), "MGA-IPA");
  EXPECT_EQ(attack->targets().size(), 3u);
}

TEST(IpaTest, ReportsAreHonestlyPerturbed) {
  // Under IPA a malicious GRR report lands on a *non*-target with
  // probability (d - r) * q — unlike the general attack, which never
  // wastes a report.
  const size_t d = 20;
  const Grr grr(d, 0.5);
  const auto attack = MakeMgaIpa(d, {0});
  Rng rng(1);
  size_t on_target = 0;
  const size_t m = 40000;
  for (const Report& r : attack->Craft(grr, m, rng))
    on_target += (r.value == 0) ? 1 : 0;
  // Pr[report = 0 | input = 0] = p < 1.
  EXPECT_NEAR(static_cast<double>(on_target) / m, grr.p(), 0.01);
  EXPECT_LT(static_cast<double>(on_target) / m, 0.25);
}

TEST(IpaTest, OueReportsLookGenuine) {
  const size_t d = 100;
  const Oue oue(d, 0.5);
  const auto attack = MakeMgaIpa(d, {5});
  Rng rng(2);
  double total_ones = 0.0;
  const size_t m = 2000;
  for (const Report& r : attack->Craft(oue, m, rng)) {
    for (uint8_t b : r.bits) total_ones += b;
  }
  // Honest perturbation: 1-count concentrates at the genuine mean,
  // not at r + padding.
  EXPECT_NEAR(total_ones / static_cast<double>(m), oue.ExpectedOnes(), 0.5);
}

TEST(IpaTest, WeakerThanGeneralMga) {
  // Figure 8's core claim: MGA-IPA moves the aggregate far less than
  // general MGA at the same malicious count.
  const size_t d = 30;
  const Grr grr(d, 0.5);
  Rng rng(3);
  const size_t n = 40000, m = 4000;
  std::vector<uint64_t> item_counts(d, n / d);
  const std::vector<ItemId> targets = {7};

  auto run = [&](const Attack& attack) {
    auto counts = grr.SampleSupportCounts(item_counts, rng);
    const auto genuine = grr.EstimateFrequencies(counts, n);
    for (const Report& r : attack.Craft(grr, m, rng))
      grr.AccumulateSupports(r, counts);
    const auto poisoned = grr.EstimateFrequencies(counts, n + m);
    return FrequencyGain(genuine, poisoned, targets);
  };

  const MgaAttack general(targets);
  const auto ipa = MakeMgaIpa(d, targets);
  const double fg_general = run(general);
  const double fg_ipa = run(*ipa);
  EXPECT_GT(fg_general, 0.0);
  EXPECT_LT(fg_ipa, 0.6 * fg_general);
}

TEST(IpaTest, CustomDistributionDrivesInputs) {
  const size_t d = 6;
  const Grr grr(d, 3.0);  // high epsilon: reports mostly truthful
  std::vector<double> dist(d, 0.0);
  dist[4] = 1.0;
  const InputPoisoningAttack attack("custom", dist, {});
  Rng rng(4);
  size_t hits = 0;
  const size_t m = 10000;
  for (const Report& r : attack.Craft(grr, m, rng))
    hits += (r.value == 4) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / m, grr.p(), 0.02);
}

}  // namespace
}  // namespace ldpr
