// Direct tests of the streaming Aggregator and the shared
// count-adjustment math in FrequencyProtocol (covered only indirectly
// by the pipeline tests elsewhere).

#include <gtest/gtest.h>

#include "ldp/factory.h"
#include "ldp/grr.h"
#include "ldp/oue.h"
#include "util/math_util.h"

namespace ldpr {
namespace {

TEST(AdjustCountsTest, InvertsTheExpectedSupportCounts) {
  // If C(v) = n*(f p + (1-f) q) exactly, AdjustCounts returns n*f.
  const Grr grr(4, 1.0);
  const size_t n = 1000;
  const std::vector<double> f = {0.5, 0.3, 0.2, 0.0};
  std::vector<double> counts(4);
  for (size_t v = 0; v < 4; ++v)
    counts[v] = n * (f[v] * grr.p() + (1.0 - f[v]) * grr.q());
  const auto adjusted = grr.AdjustCounts(counts, n);
  for (size_t v = 0; v < 4; ++v)
    EXPECT_NEAR(adjusted[v], n * f[v], 1e-9) << v;
}

TEST(AdjustCountsTest, EstimateFrequenciesDividesByN) {
  const Oue oue(3, 0.5);
  const std::vector<double> counts = {100.0, 80.0, 60.0};
  const auto adjusted = oue.AdjustCounts(counts, 200);
  const auto freqs = oue.EstimateFrequencies(counts, 200);
  for (size_t v = 0; v < 3; ++v)
    EXPECT_NEAR(freqs[v], adjusted[v] / 200.0, 1e-12);
}

TEST(AggregatorTest, CountsReportsAndSupports) {
  const Grr grr(5, 1.0);
  Aggregator agg(grr);
  EXPECT_EQ(agg.report_count(), 0u);
  Report r;
  r.value = 2;
  agg.Add(r);
  agg.Add(r);
  r.value = 4;
  agg.Add(r);
  EXPECT_EQ(agg.report_count(), 3u);
  EXPECT_DOUBLE_EQ(agg.support_counts()[2], 2.0);
  EXPECT_DOUBLE_EQ(agg.support_counts()[4], 1.0);
  EXPECT_DOUBLE_EQ(agg.support_counts()[0], 0.0);
}

TEST(AggregatorTest, AddAllMatchesSequentialAdds) {
  const Grr grr(5, 1.0);
  Rng rng(1);
  std::vector<Report> reports;
  for (int i = 0; i < 100; ++i) reports.push_back(grr.Perturb(1, rng));

  Aggregator one_by_one(grr);
  for (const Report& r : reports) one_by_one.Add(r);
  Aggregator batched(grr);
  batched.AddAll(reports);
  EXPECT_EQ(one_by_one.support_counts(), batched.support_counts());
  EXPECT_EQ(one_by_one.report_count(), batched.report_count());
}

TEST(AggregatorTest, AddSampledCountsMerges) {
  const Oue oue(3, 0.5);
  Aggregator agg(oue);
  agg.AddSampledCounts({10.0, 20.0, 30.0}, 50);
  agg.AddSampledCounts({1.0, 2.0, 3.0}, 5);
  EXPECT_EQ(agg.report_count(), 55u);
  EXPECT_DOUBLE_EQ(agg.support_counts()[1], 22.0);
}

TEST(AggregatorTest, EstimateWithOverrideCount) {
  // Detection drops reports and renormalizes with the kept count;
  // the override path must use exactly that count.
  const Grr grr(4, 1.0);
  Aggregator agg(grr);
  Report r;
  r.value = 0;
  for (int i = 0; i < 10; ++i) agg.Add(r);
  const auto with_override = agg.EstimateFrequencies(20);
  const auto without = agg.EstimateFrequencies();
  EXPECT_LT(with_override[0], without[0]);  // larger n dilutes the count
}

TEST(AggregatorTest, EndToEndUnbiasedAcrossProtocols) {
  for (ProtocolKind kind : kExtendedProtocolKinds) {
    const auto proto = MakeProtocol(kind, 6, 1.0);
    Rng rng(2);
    Aggregator agg(*proto);
    const size_t n = 20000;
    for (size_t i = 0; i < n; ++i)
      agg.Add(proto->Perturb(static_cast<ItemId>(i % 3), rng));
    const auto freqs = agg.EstimateFrequencies();
    for (ItemId v = 0; v < 3; ++v)
      EXPECT_NEAR(freqs[v], 1.0 / 3.0, 0.05) << ProtocolKindName(kind) << v;
    for (ItemId v = 3; v < 6; ++v)
      EXPECT_NEAR(freqs[v], 0.0, 0.05) << ProtocolKindName(kind) << v;
  }
}

TEST(AggregatorDeathTest, SampledCountsSizeMustMatch) {
  const Grr grr(4, 1.0);
  Aggregator agg(grr);
  EXPECT_DEATH(agg.AddSampledCounts({1.0, 2.0}, 3), "LDPR_CHECK");
}

}  // namespace
}  // namespace ldpr
