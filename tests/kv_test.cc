#include "kv/kv.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/metrics.h"

namespace ldpr {
namespace {

// Synthesizes n genuine users whose keys follow `key_freqs` and whose
// values are the per-key means in `means` (deterministic values; the
// discretization supplies the randomness).
void AddGenuineUsers(const KvProtocol& protocol, KvAggregator& agg,
                     const std::vector<double>& key_freqs,
                     const std::vector<double>& means, size_t n, Rng& rng) {
  const AliasSampler keys(key_freqs);
  for (size_t i = 0; i < n; ++i) {
    KvPair pair;
    pair.key = static_cast<ItemId>(keys.Sample(rng));
    pair.value = means[pair.key];
    agg.Add(protocol.Perturb(pair, rng));
  }
}

TEST(KvProtocolTest, RejectsOutOfRangeInput) {
  const KvProtocol protocol(4, 1.0, 1.0);
  Rng rng(1);
  EXPECT_DEATH((void)protocol.Perturb({5, 0.0}, rng), "LDPR_CHECK");
  EXPECT_DEATH((void)protocol.Perturb({0, 1.5}, rng), "LDPR_CHECK");
}

TEST(KvProtocolTest, CraftedReportPromotesKeyWithPlus) {
  const KvProtocol protocol(8, 1.0, 1.0);
  const KvReport r = protocol.CraftReport(3);
  EXPECT_EQ(r.key, 3u);
  EXPECT_EQ(r.plus_bit, 1);
}

TEST(KvProtocolTest, FlippedReportsCarryUniformFakeBit) {
  // Users whose key flips attach a fair coin: across many perturbed
  // reports of a -1-valued user, reports landing on *other* keys have
  // plus rate ~1/2 while same-key reports skew to the minus side.
  const KvProtocol protocol(4, 1.0, 2.0);
  Rng rng(2);
  size_t other = 0, other_plus = 0, same = 0, same_plus = 0;
  for (int i = 0; i < 60000; ++i) {
    const KvReport r = protocol.Perturb({0, -1.0}, rng);
    if (r.key == 0) {
      ++same;
      same_plus += r.plus_bit;
    } else {
      ++other;
      other_plus += r.plus_bit;
    }
  }
  EXPECT_NEAR(static_cast<double>(other_plus) / other, 0.5, 0.02);
  // value = -1 discretizes to minus always; RR keeps it w.p. p_v.
  EXPECT_NEAR(static_cast<double>(same_plus) / same,
              1.0 - protocol.value_keep_probability(), 0.02);
}

TEST(KvAggregatorTest, FrequencyAndMeanUnbiased) {
  const size_t d = 6;
  const KvProtocol protocol(d, 2.0, 2.0);
  const std::vector<double> key_freqs = {0.3, 0.25, 0.2, 0.15, 0.07, 0.03};
  const std::vector<double> means = {0.8, -0.5, 0.0, 0.3, -0.9, 0.6};
  Rng rng(3);
  KvAggregator agg(protocol);
  AddGenuineUsers(protocol, agg, key_freqs, means, 200000, rng);
  const KvEstimate est = agg.Estimate();
  for (size_t k = 0; k < d; ++k) {
    EXPECT_NEAR(est.frequencies[k], key_freqs[k], 0.02) << k;
    EXPECT_NEAR(est.means[k], means[k], 0.1) << k;
  }
}

TEST(KvAttackTest, CraftedReportsInflateTargetFrequencyAndMean) {
  const size_t d = 6;
  const KvProtocol protocol(d, 1.0, 1.0);
  const std::vector<double> key_freqs = {0.4, 0.3, 0.15, 0.1, 0.04, 0.01};
  const std::vector<double> means(d, -0.6);  // everyone dislikes key 5
  Rng rng(4);

  KvAggregator clean(protocol);
  AddGenuineUsers(protocol, clean, key_freqs, means, 100000, rng);
  const KvEstimate before = clean.Estimate();

  KvAggregator attacked(protocol);
  AddGenuineUsers(protocol, attacked, key_freqs, means, 100000, rng);
  for (int i = 0; i < 8000; ++i) attacked.Add(protocol.CraftReport(5));
  const KvEstimate after = attacked.Estimate();

  EXPECT_GT(after.frequencies[5], before.frequencies[5] + 0.05);
  EXPECT_GT(after.means[5], before.means[5] + 0.5);
}

TEST(KvRecoverTest, RestoresFrequenciesAndMeans) {
  const size_t d = 6;
  const KvProtocol protocol(d, 1.0, 1.0);
  const std::vector<double> key_freqs = {0.4, 0.3, 0.15, 0.1, 0.04, 0.01};
  const std::vector<double> means = {0.2, -0.1, 0.5, -0.4, 0.0, -0.6};
  Rng rng(5);

  const size_t n = 150000;
  const size_t m = 12000;  // ~7.4% malicious
  KvAggregator attacked(protocol);
  AddGenuineUsers(protocol, attacked, key_freqs, means, n, rng);
  for (size_t i = 0; i < m; ++i) attacked.Add(protocol.CraftReport(5));
  const KvEstimate poisoned = attacked.Estimate();

  KvRecoverOptions options;
  options.eta = 0.1;
  options.known_targets = std::vector<ItemId>{5};
  const KvEstimate recovered = KvRecover(protocol, attacked, options);

  // Frequencies: recovery beats the poisoned estimate.
  EXPECT_LT(Mse(key_freqs, recovered.frequencies),
            Mse(key_freqs, poisoned.frequencies));
  // Target mean: the attack drags it toward +1, recovery pulls back.
  EXPECT_GT(poisoned.means[5], means[5] + 0.4);
  EXPECT_LT(std::abs(recovered.means[5] - means[5]),
            std::abs(poisoned.means[5] - means[5]));
  // Non-target means stay reasonable.
  for (size_t k = 0; k + 1 < d; ++k)
    EXPECT_NEAR(recovered.means[k], means[k], 0.25) << k;
}

TEST(KvRecoverTest, NoAttackIsNearNoOp) {
  const size_t d = 5;
  const KvProtocol protocol(d, 2.0, 2.0);
  const std::vector<double> key_freqs = {0.3, 0.25, 0.2, 0.15, 0.1};
  const std::vector<double> means = {0.5, -0.5, 0.1, -0.1, 0.9};
  Rng rng(6);
  KvAggregator agg(protocol);
  AddGenuineUsers(protocol, agg, key_freqs, means, 150000, rng);

  // A small eta keeps the worst-case (+1) malicious assumption from
  // dragging the means far down when no attack actually happened —
  // the KV analogue of Table I's recovery-cost-on-clean-data effect.
  KvRecoverOptions options;
  options.eta = 0.02;
  const KvEstimate recovered = KvRecover(protocol, agg, options);
  for (size_t k = 0; k < d; ++k) {
    EXPECT_NEAR(recovered.frequencies[k], key_freqs[k], 0.03) << k;
    EXPECT_NEAR(recovered.means[k], means[k], 0.2) << k;
  }
}

}  // namespace
}  // namespace ldpr
