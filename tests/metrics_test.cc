#include "util/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ldpr {
namespace {

TEST(MseTest, ZeroForIdenticalVectors) {
  const std::vector<double> v = {0.1, 0.2, 0.7};
  EXPECT_DOUBLE_EQ(Mse(v, v), 0.0);
}

TEST(MseTest, MatchesHandComputation) {
  // Eq. (36) with d = 2: ((0.1)^2 + (0.2)^2) / 2 = 0.025.
  EXPECT_DOUBLE_EQ(Mse({0.5, 0.5}, {0.6, 0.3}), 0.025);
}

TEST(MseTest, SymmetricInArguments) {
  const std::vector<double> a = {0.3, 0.7};
  const std::vector<double> b = {0.6, 0.4};
  EXPECT_DOUBLE_EQ(Mse(a, b), Mse(b, a));
}

TEST(MaeTest, MatchesHandComputation) {
  EXPECT_DOUBLE_EQ(Mae({0.5, 0.5}, {0.6, 0.3}), 0.15);
}

TEST(DistanceTest, L1L2Linf) {
  const std::vector<double> a = {0.0, 0.0};
  const std::vector<double> b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(L1Distance(a, b), 7.0);
  EXPECT_DOUBLE_EQ(L2Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(LInfDistance(a, b), 4.0);
}

TEST(FrequencyGainTest, MatchesEq37) {
  const std::vector<double> genuine = {0.1, 0.2, 0.3, 0.4};
  const std::vector<double> after = {0.3, 0.2, 0.35, 0.15};
  // Targets 0 and 2: (0.3-0.1) + (0.35-0.3) = 0.25.
  EXPECT_NEAR(FrequencyGain(genuine, after, {0, 2}), 0.25, 1e-12);
}

TEST(FrequencyGainTest, NegativeWhenRecoveryOvershoots) {
  const std::vector<double> genuine = {0.5, 0.5};
  const std::vector<double> recovered = {0.4, 0.6};
  EXPECT_LT(FrequencyGain(genuine, recovered, {0}), 0.0);
}

TEST(FrequencyGainTest, EmptyTargetsIsZero) {
  EXPECT_DOUBLE_EQ(FrequencyGain({0.5, 0.5}, {0.9, 0.1}, {}), 0.0);
}

TEST(TotalVariationTest, HalfL1) {
  const std::vector<double> a = {1.0, 0.0};
  const std::vector<double> b = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(TotalVariation(a, b), 1.0);
}

TEST(KlDivergenceTest, ZeroForIdentical) {
  const std::vector<double> p = {0.25, 0.75};
  EXPECT_NEAR(KlDivergence(p, p), 0.0, 1e-9);
}

TEST(KlDivergenceTest, PositiveForDifferent) {
  EXPECT_GT(KlDivergence({0.9, 0.1}, {0.1, 0.9}), 0.5);
}

TEST(KlDivergenceTest, ToleratesNegativesAndZeros) {
  // LDP estimates routinely contain small negatives; KL must not NaN.
  const double kl = KlDivergence({-0.01, 1.01}, {0.5, 0.5});
  EXPECT_TRUE(std::isfinite(kl));
}

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStatTest, SingleSampleHasZeroVariance) {
  RunningStat s;
  s.Add(3.14);
  EXPECT_DOUBLE_EQ(s.mean(), 3.14);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

}  // namespace
}  // namespace ldpr
