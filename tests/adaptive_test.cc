#include "attack/adaptive.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ldp/grr.h"
#include "ldp/oue.h"

namespace ldpr {
namespace {

TEST(AdaptiveTest, CraftsRequestedCount) {
  const Grr grr(30, 0.5);
  const AdaptiveAttack attack;
  Rng rng(1);
  EXPECT_EQ(attack.Craft(grr, 500, rng).size(), 500u);
}

TEST(AdaptiveTest, IsUntargeted) {
  EXPECT_TRUE(AdaptiveAttack().targets().empty());
}

TEST(AdaptiveTest, FixedDistributionIsRespected) {
  const size_t d = 5;
  const Grr grr(d, 0.5);
  std::vector<double> dist(d, 0.0);
  dist[2] = 0.75;
  dist[4] = 0.25;
  const AdaptiveAttack attack(dist);
  Rng rng(2);
  std::vector<int> counts(d, 0);
  const size_t m = 40000;
  for (const Report& r : attack.Craft(grr, m, rng)) ++counts[r.value];
  EXPECT_EQ(counts[0] + counts[1] + counts[3], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / m, 0.75, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[4]) / m, 0.25, 0.01);
}

TEST(AdaptiveTest, MgaIsASpecialCase) {
  // The adaptive attack with mass 1/r on targets reproduces MGA-GRR:
  // every crafted report carries a target.
  const size_t d = 20;
  const Grr grr(d, 0.5);
  std::vector<double> dist(d, 0.0);
  dist[3] = dist[9] = 0.5;
  const AdaptiveAttack attack(dist);
  Rng rng(3);
  for (const Report& r : attack.Craft(grr, 300, rng))
    EXPECT_TRUE(r.value == 3 || r.value == 9);
}

TEST(AdaptiveTest, RandomDistributionVariesAcrossCalls) {
  // Each Craft() draws a fresh attacker-designed distribution, so two
  // large batches differ in their item histograms.
  const size_t d = 10;
  const Grr grr(d, 0.5);
  const AdaptiveAttack attack;
  Rng rng(4);
  auto histogram = [&](const std::vector<Report>& reports) {
    std::vector<double> h(d, 0.0);
    for (const Report& r : reports) h[r.value] += 1.0;
    return h;
  };
  const auto h1 = histogram(attack.Craft(grr, 20000, rng));
  const auto h2 = histogram(attack.Craft(grr, 20000, rng));
  double l1 = 0.0;
  for (size_t v = 0; v < d; ++v) l1 += std::abs(h1[v] - h2[v]) / 20000.0;
  EXPECT_GT(l1, 0.05);  // flat-Dirichlet draws differ markedly
}

TEST(AdaptiveTest, OueReportsAreOneHotEncodedSamples) {
  const Oue oue(25, 0.5);
  const AdaptiveAttack attack;
  Rng rng(5);
  for (const Report& r : attack.Craft(oue, 60, rng)) {
    int ones = 0;
    for (uint8_t b : r.bits) ones += b;
    EXPECT_EQ(ones, 1);
  }
}

TEST(AdaptiveDeathTest, RejectsWrongSizeDistribution) {
  const Grr grr(10, 0.5);
  const AdaptiveAttack attack(std::vector<double>{0.5, 0.5});
  Rng rng(6);
  EXPECT_DEATH((void)attack.Craft(grr, 5, rng), "LDPR_CHECK");
}

}  // namespace
}  // namespace ldpr
