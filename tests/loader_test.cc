#include "data/loader.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ldpr {
namespace {

class LoaderTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/ldpr_loader_test.csv";
  void Write(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(LoaderTest, BuildsHistogramInFirstAppearanceOrder) {
  Write("unit\nE01\nE02\nE01\nE03\nE01\n");
  const auto loaded = LoadItemCsv(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dataset.domain_size(), 3u);
  EXPECT_EQ(loaded->dataset.num_users(), 5u);
  EXPECT_EQ(loaded->item_labels[0], "E01");
  EXPECT_EQ(loaded->dataset.item_counts[0], 3u);  // E01
  EXPECT_EQ(loaded->dataset.item_counts[1], 1u);  // E02
}

// Regression guard for the R2 determinism audit in loader.cc: the
// internal unordered_map is keyed-access only, so label -> id
// assignment must be pure first-appearance row order — never hash
// order.  Uses enough distinct labels that any accidental dependence
// on unordered_map element order would scramble the sequence, and
// labels chosen so first-appearance order differs from sorted order.
TEST_F(LoaderTest, HashOrderNeverReachesOutput) {
  std::string csv = "unit\n";
  std::vector<std::string> first_appearance;
  for (int i = 0; i < 64; ++i) {
    // z47, y46, ... — reverse-sorted prefixes, so lexicographic order,
    // insertion order, and typical hash order all disagree.
    std::string label;
    label += static_cast<char>('z' - (i % 26));
    label += std::to_string(i);
    first_appearance.push_back(label);
    csv += label + "\n";
    csv += label + "\n";  // count 2 each
  }
  // Revisit every label once more in reverse: counts become 3, and the
  // revisit must not disturb the already-assigned ids.
  for (int i = 63; i >= 0; --i) csv += first_appearance[i] + "\n";
  Write(csv);

  const auto loaded = LoadItemCsv(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->item_labels.size(), first_appearance.size());
  for (size_t i = 0; i < first_appearance.size(); ++i) {
    EXPECT_EQ(loaded->item_labels[i], first_appearance[i]) << "id " << i;
    EXPECT_EQ(loaded->dataset.item_counts[i], 3u) << "id " << i;
  }
}

TEST_F(LoaderTest, SelectsColumn) {
  Write("id,city\n1,Springfield\n2,Shelbyville\n3,Springfield\n");
  LoadOptions opts;
  opts.column = 1;
  const auto loaded = LoadItemCsv(path_, opts);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->item_labels[0], "Springfield");
  EXPECT_EQ(loaded->dataset.item_counts[0], 2u);
}

TEST_F(LoaderTest, NoHeaderMode) {
  Write("a\nb\na\n");
  LoadOptions opts;
  opts.has_header = false;
  const auto loaded = LoadItemCsv(path_, opts);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dataset.num_users(), 3u);
}

TEST_F(LoaderTest, QuotedFieldsWithCommas) {
  Write("city\n\"San Francisco, CA\"\n\"San Francisco, CA\"\nOakland\n");
  const auto loaded = LoadItemCsv(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->item_labels[0], "San Francisco, CA");
  EXPECT_EQ(loaded->dataset.item_counts[0], 2u);
}

TEST_F(LoaderTest, MissingColumnIsError) {
  Write("a\nb\nc\n");
  LoadOptions opts;
  opts.column = 5;
  const auto loaded = LoadItemCsv(path_, opts);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(LoaderTest, SingleDistinctItemIsError) {
  Write("x\nsame\nsame\nsame\n");
  const auto loaded = LoadItemCsv(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(LoaderErrorTest, MissingFile) {
  const auto loaded = LoadItemCsv("/nonexistent/x.csv");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ldpr
