#include "data/loader.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace ldpr {
namespace {

class LoaderTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/ldpr_loader_test.csv";
  void Write(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(LoaderTest, BuildsHistogramInFirstAppearanceOrder) {
  Write("unit\nE01\nE02\nE01\nE03\nE01\n");
  const auto loaded = LoadItemCsv(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dataset.domain_size(), 3u);
  EXPECT_EQ(loaded->dataset.num_users(), 5u);
  EXPECT_EQ(loaded->item_labels[0], "E01");
  EXPECT_EQ(loaded->dataset.item_counts[0], 3u);  // E01
  EXPECT_EQ(loaded->dataset.item_counts[1], 1u);  // E02
}

TEST_F(LoaderTest, SelectsColumn) {
  Write("id,city\n1,Springfield\n2,Shelbyville\n3,Springfield\n");
  LoadOptions opts;
  opts.column = 1;
  const auto loaded = LoadItemCsv(path_, opts);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->item_labels[0], "Springfield");
  EXPECT_EQ(loaded->dataset.item_counts[0], 2u);
}

TEST_F(LoaderTest, NoHeaderMode) {
  Write("a\nb\na\n");
  LoadOptions opts;
  opts.has_header = false;
  const auto loaded = LoadItemCsv(path_, opts);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dataset.num_users(), 3u);
}

TEST_F(LoaderTest, QuotedFieldsWithCommas) {
  Write("city\n\"San Francisco, CA\"\n\"San Francisco, CA\"\nOakland\n");
  const auto loaded = LoadItemCsv(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->item_labels[0], "San Francisco, CA");
  EXPECT_EQ(loaded->dataset.item_counts[0], 2u);
}

TEST_F(LoaderTest, MissingColumnIsError) {
  Write("a\nb\nc\n");
  LoadOptions opts;
  opts.column = 5;
  const auto loaded = LoadItemCsv(path_, opts);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(LoaderTest, SingleDistinctItemIsError) {
  Write("x\nsame\nsame\nsame\n");
  const auto loaded = LoadItemCsv(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(LoaderErrorTest, MissingFile) {
  const auto loaded = LoadItemCsv("/nonexistent/x.csv");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ldpr
