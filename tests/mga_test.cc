#include "attack/mga.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "ldp/grr.h"
#include "ldp/olh.h"
#include "ldp/oue.h"
#include "util/metrics.h"

namespace ldpr {
namespace {

TEST(MgaTest, SampleTargetsDistinctInRange) {
  Rng rng(1);
  const auto targets = MgaAttack::SampleTargets(102, 10, rng);
  EXPECT_EQ(targets.size(), 10u);
  std::set<ItemId> unique(targets.begin(), targets.end());
  EXPECT_EQ(unique.size(), 10u);
  for (ItemId t : targets) EXPECT_LT(t, 102u);
}

TEST(MgaTest, ExposesTargets) {
  const MgaAttack attack({3, 7});
  const auto t = attack.targets();
  EXPECT_EQ(t.size(), 2u);
}

TEST(MgaTest, GrrReportsAreAllTargets) {
  const Grr grr(50, 0.5);
  const MgaAttack attack({5, 10, 15});
  Rng rng(2);
  std::set<uint32_t> seen;
  for (const Report& r : attack.Craft(grr, 600, rng)) {
    EXPECT_TRUE(r.value == 5 || r.value == 10 || r.value == 15);
    seen.insert(r.value);
  }
  EXPECT_EQ(seen.size(), 3u);  // uniform over targets covers all
}

TEST(MgaTest, OueReportsSetAllTargetBits) {
  const Oue oue(100, 0.5);
  const std::vector<ItemId> targets = {1, 50, 99};
  const MgaAttack attack(targets);
  Rng rng(3);
  for (const Report& r : attack.Craft(oue, 40, rng)) {
    for (ItemId t : targets) EXPECT_EQ(r.bits[t], 1);
  }
}

TEST(MgaTest, OuePaddingMatchesExpectedOnes) {
  const size_t d = 200;
  const Oue oue(d, 0.5);
  const MgaAttack attack({0, 1, 2});  // 3 targets << expected ones
  Rng rng(4);
  const size_t expected =
      static_cast<size_t>(std::llround(oue.ExpectedOnes()));
  for (const Report& r : attack.Craft(oue, 20, rng)) {
    size_t ones = 0;
    for (uint8_t b : r.bits) ones += b;
    EXPECT_EQ(ones, expected);
  }
}

TEST(MgaTest, OueNoPaddingKeepsExactlyTargets) {
  const Oue oue(200, 0.5);
  MgaOptions opts;
  opts.pad_oue = false;
  const MgaAttack attack({0, 1, 2}, opts);
  Rng rng(5);
  for (const Report& r : attack.Craft(oue, 20, rng)) {
    size_t ones = 0;
    for (uint8_t b : r.bits) ones += b;
    EXPECT_EQ(ones, 3u);
  }
}

TEST(MgaTest, OlhReportsSupportManyTargets) {
  const Olh olh(102, 0.5);  // g = 3
  Rng rng(6);
  const auto targets = MgaAttack::SampleTargets(102, 10, rng);
  const MgaAttack attack(targets);
  double total_supported = 0.0;
  const size_t m = 50;
  for (const Report& r : attack.Craft(olh, m, rng)) {
    size_t supported = 0;
    for (ItemId t : targets) supported += olh.Supports(r, t) ? 1 : 0;
    EXPECT_GE(supported, 1u);
    total_supported += static_cast<double>(supported);
  }
  // Seed search should beat the genuine rate (p for one target +
  // q for the rest ~= r/g on average); require clearly more than r/g.
  const double baseline = 10.0 / olh.g();
  EXPECT_GT(total_supported / static_cast<double>(m), baseline * 1.1);
}

TEST(MgaTest, InflatesTargetFrequencies) {
  // End-to-end sanity: MGA lifts target estimates well above truth.
  const size_t d = 60;
  const Oue oue(d, 0.5);
  Rng rng(7);
  const size_t n = 40000, m = 2000;
  std::vector<uint64_t> item_counts(d, n / d);

  const std::vector<ItemId> targets = {11, 22, 33};
  const MgaAttack attack(targets);

  auto counts = oue.SampleSupportCounts(item_counts, rng);
  const auto genuine = oue.EstimateFrequencies(counts, n);
  for (const Report& r : attack.Craft(oue, m, rng))
    oue.AccumulateSupports(r, counts);
  const auto poisoned = oue.EstimateFrequencies(counts, n + m);

  const double fg = FrequencyGain(genuine, poisoned, targets);
  // Each fake OUE user contributes gain ~1/((p-q)(n+m)) per target;
  // with m=2000 the total gain is substantial.
  EXPECT_GT(fg, 0.05);
}

TEST(MgaDeathTest, RejectsEmptyTargets) {
  EXPECT_DEATH(MgaAttack({}), "LDPR_CHECK");
}

}  // namespace
}  // namespace ldpr
