#include "sim/experiment.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace ldpr {
namespace {

Dataset SmallDataset() { return MakeZipfDataset("z", 30, 30000, 1.0, 11); }

TEST(ExperimentTest, DeterministicInSeed) {
  ExperimentConfig config;
  config.protocol = ProtocolKind::kGrr;
  config.pipeline.attack = AttackKind::kMga;
  config.trials = 3;
  config.seed = 77;
  const Dataset ds = SmallDataset();
  const ExperimentResult a = RunExperiment(config, ds);
  const ExperimentResult b = RunExperiment(config, ds);
  EXPECT_DOUBLE_EQ(a.mse_before.mean(), b.mse_before.mean());
  EXPECT_DOUBLE_EQ(a.mse_recover.mean(), b.mse_recover.mean());
}

// The parallel engine's core guarantee: every trial runs on its own
// counter-derived RNG stream and metrics merge in trial order, so the
// result is bit-identical at any thread count.
TEST(ExperimentTest, BitIdenticalAcrossThreadCounts) {
  ExperimentConfig config;
  config.protocol = ProtocolKind::kOue;
  config.pipeline.attack = AttackKind::kMga;
  config.trials = 8;
  config.seed = 123;
  const Dataset ds = SmallDataset();

  config.threads = 1;
  const ExperimentResult serial = RunExperiment(config, ds);
  for (size_t threads : {2u, 8u}) {
    config.threads = threads;
    const ExperimentResult parallel = RunExperiment(config, ds);
    const auto expect_same = [threads](const RunningStat& a,
                                       const RunningStat& b) {
      EXPECT_EQ(a.count(), b.count()) << "threads=" << threads;
      EXPECT_EQ(a.mean(), b.mean()) << "threads=" << threads;
      EXPECT_EQ(a.variance(), b.variance()) << "threads=" << threads;
    };
    expect_same(serial.mse_before, parallel.mse_before);
    expect_same(serial.mse_recover, parallel.mse_recover);
    expect_same(serial.mse_recover_star, parallel.mse_recover_star);
    expect_same(serial.mse_detection, parallel.mse_detection);
    expect_same(serial.fg_before, parallel.fg_before);
    expect_same(serial.fg_recover, parallel.fg_recover);
    expect_same(serial.fg_recover_star, parallel.fg_recover_star);
    expect_same(serial.fg_detection, parallel.fg_detection);
    expect_same(serial.mse_malicious_recover, parallel.mse_malicious_recover);
    expect_same(serial.mse_malicious_recover_star,
                parallel.mse_malicious_recover_star);
  }
}

// RunSingleTrial is the pure per-trial unit RunExperiment schedules:
// trial t of seed s must reproduce exactly from DeriveSeed(s, t).
TEST(ExperimentTest, SingleTrialMatchesExperimentStream) {
  ExperimentConfig config;
  config.protocol = ProtocolKind::kGrr;
  config.pipeline.attack = AttackKind::kMga;
  config.trials = 1;
  config.seed = 99;
  const Dataset ds = SmallDataset();
  const ExperimentResult r = RunExperiment(config, ds);
  const TrialMetrics t = RunSingleTrial(config, ds, DeriveSeed(config.seed, 0));
  ASSERT_TRUE(t.mse_before.has_value());
  ASSERT_TRUE(t.mse_recover.has_value());
  EXPECT_EQ(r.mse_before.mean(), *t.mse_before);
  EXPECT_EQ(r.mse_recover.mean(), *t.mse_recover);
}

TEST(ExperimentTest, DifferentSeedsDiffer) {
  ExperimentConfig config;
  config.pipeline.attack = AttackKind::kAdaptive;
  config.trials = 2;
  const Dataset ds = SmallDataset();
  config.seed = 1;
  const double a = RunExperiment(config, ds).mse_before.mean();
  config.seed = 2;
  const double b = RunExperiment(config, ds).mse_before.mean();
  EXPECT_NE(a, b);
}

TEST(ExperimentTest, CollectsAllMetricsForMga) {
  ExperimentConfig config;
  config.protocol = ProtocolKind::kOue;
  config.pipeline.attack = AttackKind::kMga;
  config.trials = 3;
  const ExperimentResult r = RunExperiment(config, SmallDataset());
  EXPECT_EQ(r.mse_before.count(), 3u);
  EXPECT_EQ(r.mse_recover.count(), 3u);
  EXPECT_EQ(r.mse_recover_star.count(), 3u);
  EXPECT_EQ(r.mse_detection.count(), 3u);
  EXPECT_EQ(r.fg_before.count(), 3u);
  EXPECT_EQ(r.fg_recover.count(), 3u);
  EXPECT_EQ(r.mse_malicious_recover.count(), 3u);
}

TEST(ExperimentTest, UntargetedAttackSkipsFgButRunsStar) {
  ExperimentConfig config;
  config.pipeline.attack = AttackKind::kAdaptive;
  config.trials = 2;
  const ExperimentResult r = RunExperiment(config, SmallDataset());
  EXPECT_EQ(r.fg_before.count(), 0u);      // no target set -> no FG
  EXPECT_EQ(r.mse_recover_star.count(), 2u);  // star uses top gainers
}

TEST(ExperimentTest, NoAttackControlRunsRecoveryOnly) {
  // Table I's configuration.
  ExperimentConfig config;
  config.pipeline.attack = AttackKind::kNone;
  config.trials = 2;
  const ExperimentResult r = RunExperiment(config, SmallDataset());
  EXPECT_EQ(r.mse_before.count(), 2u);
  EXPECT_EQ(r.mse_recover.count(), 2u);
  EXPECT_EQ(r.mse_detection.count(), 0u);
  EXPECT_EQ(r.mse_recover_star.count(), 0u);
}

TEST(ExperimentTest, RecoveryImprovesMseUnderMga) {
  ExperimentConfig config;
  config.protocol = ProtocolKind::kOue;
  config.pipeline.attack = AttackKind::kMga;
  config.pipeline.beta = 0.05;
  config.trials = 3;
  const ExperimentResult r = RunExperiment(config, SmallDataset());
  EXPECT_LT(r.mse_recover.mean(), r.mse_before.mean());
  EXPECT_LT(r.mse_recover_star.mean(), r.mse_before.mean());
}

TEST(ExperimentTest, StarReducesFgBelowPlainRecovery) {
  ExperimentConfig config;
  config.protocol = ProtocolKind::kOue;
  config.pipeline.attack = AttackKind::kMga;
  config.trials = 4;
  const ExperimentResult r = RunExperiment(config, SmallDataset());
  // Both crush the attack's gain; star at least matches.
  EXPECT_LT(r.fg_recover.mean(), 0.5 * r.fg_before.mean());
  EXPECT_LE(r.fg_recover_star.mean(), r.fg_recover.mean() + 0.02);
}

TEST(ExperimentTest, DisableFlagsSkipMethods) {
  ExperimentConfig config;
  config.pipeline.attack = AttackKind::kMga;
  config.trials = 2;
  config.run_detection = false;
  config.run_star = false;
  const ExperimentResult r = RunExperiment(config, SmallDataset());
  EXPECT_EQ(r.mse_detection.count(), 0u);
  EXPECT_EQ(r.mse_recover_star.count(), 0u);
}

}  // namespace
}  // namespace ldpr
