// Parameterized end-to-end properties of LDPRecover across the full
// (protocol x attack x epsilon) grid the paper evaluates: the
// recovered frequencies always live on the simplex, and recovery
// never does worse than the poisoned estimate by more than noise.

#include <memory>

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ldp/factory.h"
#include "recover/ldprecover.h"
#include "sim/pipeline.h"
#include "util/math_util.h"
#include "util/metrics.h"

namespace ldpr {
namespace {

struct Params {
  ProtocolKind protocol;
  AttackKind attack;
  double epsilon;
};

std::string ParamName(const ::testing::TestParamInfo<Params>& info) {
  std::string name = ProtocolKindName(info.param.protocol);
  name += "_";
  name += AttackKindName(info.param.attack);
  name += "_eps";
  name += std::to_string(static_cast<int>(info.param.epsilon * 100));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class RecoveryPropertyTest : public ::testing::TestWithParam<Params> {
 protected:
  static constexpr size_t kDomain = 24;
  Dataset dataset_ = MakeZipfDataset("z", kDomain, 40000, 1.0, 31);
  std::unique_ptr<FrequencyProtocol> protocol_ =
      MakeProtocol(GetParam().protocol, kDomain, GetParam().epsilon);
};

TEST_P(RecoveryPropertyTest, RecoveredFrequenciesOnSimplex) {
  PipelineConfig config;
  config.attack = GetParam().attack;
  Rng rng(41);
  for (int trial = 0; trial < 3; ++trial) {
    const TrialOutput t = RunPoisoningTrial(*protocol_, config, dataset_, rng);
    const LdpRecover recover(*protocol_);
    EXPECT_TRUE(
        IsProbabilityVector(recover.Recover(t.poisoned_freqs), 1e-8));
  }
}

TEST_P(RecoveryPropertyTest, RecoveryNotWorseThanPoisoned) {
  PipelineConfig config;
  config.attack = GetParam().attack;
  config.beta = 0.05;
  Rng rng(42);
  RunningStat before, after;
  // 12 trials: with 5 the means are noisy enough that a benign RNG
  // stream relayout can push a borderline case past the 5% slack.
  for (int trial = 0; trial < 12; ++trial) {
    const TrialOutput t = RunPoisoningTrial(*protocol_, config, dataset_, rng);
    const LdpRecover recover(*protocol_);
    before.Add(Mse(t.true_freqs, t.poisoned_freqs));
    after.Add(Mse(t.true_freqs, recover.Recover(t.poisoned_freqs)));
  }
  // Recovery improves (or at worst matches within noise).
  EXPECT_LT(after.mean(), before.mean() * 1.05 + 1e-6);
}

TEST_P(RecoveryPropertyTest, EtaOverestimationIsTolerated) {
  // The paper's central usability claim: eta = 0.2 >> true ratio
  // still recovers well.
  PipelineConfig config;
  config.attack = GetParam().attack;
  config.beta = 0.05;  // true ratio ~0.053
  Rng rng(43);
  RunningStat loose, tight;
  for (int trial = 0; trial < 5; ++trial) {
    const TrialOutput t = RunPoisoningTrial(*protocol_, config, dataset_, rng);
    RecoverOptions tight_opts;
    tight_opts.eta = 0.053;
    RecoverOptions loose_opts;
    loose_opts.eta = 0.2;
    tight.Add(Mse(t.true_freqs,
                  LdpRecover(*protocol_, tight_opts).Recover(t.poisoned_freqs)));
    loose.Add(Mse(t.true_freqs,
                  LdpRecover(*protocol_, loose_opts).Recover(t.poisoned_freqs)));
  }
  // Over-specifying eta costs at most a small constant factor.
  EXPECT_LT(loose.mean(), 10.0 * tight.mean() + 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RecoveryPropertyTest,
    ::testing::Values(
        Params{ProtocolKind::kGrr, AttackKind::kManip, 0.5},
        Params{ProtocolKind::kGrr, AttackKind::kMga, 0.5},
        Params{ProtocolKind::kGrr, AttackKind::kAdaptive, 0.5},
        Params{ProtocolKind::kOue, AttackKind::kMga, 0.5},
        Params{ProtocolKind::kOue, AttackKind::kAdaptive, 0.5},
        Params{ProtocolKind::kOlh, AttackKind::kMga, 0.5},
        Params{ProtocolKind::kOlh, AttackKind::kAdaptive, 0.5},
        Params{ProtocolKind::kOue, AttackKind::kAdaptive, 0.1},
        Params{ProtocolKind::kOue, AttackKind::kAdaptive, 1.6},
        Params{ProtocolKind::kGrr, AttackKind::kMultiAdaptive, 0.5},
        Params{ProtocolKind::kOue, AttackKind::kMgaIpa, 0.5}),
    ParamName);

}  // namespace
}  // namespace ldpr
