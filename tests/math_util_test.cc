#include "util/math_util.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ldpr {
namespace {

TEST(NormalPdfTest, StandardValues) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804, 1e-9);
  EXPECT_NEAR(NormalPdf(1.0), 0.2419707245, 1e-9);
  EXPECT_NEAR(NormalPdf(-1.0), NormalPdf(1.0), 1e-15);  // symmetry
}

TEST(NormalPdfTest, ScaledAndShifted) {
  // N(2, 0.5^2) at its mean: 1/(0.5*sqrt(2pi)).
  EXPECT_NEAR(NormalPdf(2.0, 2.0, 0.5), 0.3989422804 / 0.5, 1e-9);
}

TEST(NormalCdfTest, StandardValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.9750021, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.96), 0.0249979, 1e-6);
}

TEST(NormalCdfTest, MonotoneAndComplementary) {
  for (double x = -3.0; x < 3.0; x += 0.25) {
    EXPECT_LT(NormalCdf(x), NormalCdf(x + 0.25));
    EXPECT_NEAR(NormalCdf(x) + NormalCdf(-x), 1.0, 1e-12);
  }
}

TEST(NormalCdfTest, ShiftedMatchesStandardized) {
  EXPECT_NEAR(NormalCdf(3.0, 1.0, 2.0), NormalCdf(1.0), 1e-12);
}

TEST(VectorOpsTest, SumAddSubtractScale) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {0.5, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(Sum(a), 6.0);
  const auto sum = Add(a, b);
  EXPECT_DOUBLE_EQ(sum[0], 1.5);
  EXPECT_DOUBLE_EQ(sum[1], 1.0);
  EXPECT_DOUBLE_EQ(sum[2], 5.0);
  const auto diff = Subtract(a, b);
  EXPECT_DOUBLE_EQ(diff[1], 3.0);
  const auto scaled = Scale(a, -2.0);
  EXPECT_DOUBLE_EQ(scaled[2], -6.0);
}

TEST(VectorOpsTest, Normalize) {
  const auto n = Normalize({1.0, 3.0});
  EXPECT_DOUBLE_EQ(n[0], 0.25);
  EXPECT_DOUBLE_EQ(n[1], 0.75);
}

TEST(IsProbabilityVectorTest, AcceptsValid) {
  EXPECT_TRUE(IsProbabilityVector({0.25, 0.25, 0.5}));
  EXPECT_TRUE(IsProbabilityVector({1.0}));
  EXPECT_TRUE(IsProbabilityVector({0.0, 1.0}));
}

TEST(IsProbabilityVectorTest, RejectsInvalid) {
  EXPECT_FALSE(IsProbabilityVector({0.5, 0.6}));          // sums to 1.1
  EXPECT_FALSE(IsProbabilityVector({-0.1, 1.1}));         // negative entry
  EXPECT_FALSE(IsProbabilityVector({0.5, std::nan("")})); // NaN
}

TEST(IsProbabilityVectorTest, ToleranceScalesWithSize) {
  std::vector<double> v(1000, 1.0 / 1000.0);
  v[0] += 1e-10;  // tiny rounding drift
  EXPECT_TRUE(IsProbabilityVector(v));
}

TEST(ClampTest, Basic) {
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(Clamp(-1.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(2.0, 0.0, 1.0), 1.0);
}

}  // namespace
}  // namespace ldpr
