// Parameterized property tests over all protocols and a grid of
// privacy budgets: the pure-LDP invariants of Section III hold for
// every (protocol, epsilon, d) combination.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "ldp/factory.h"
#include "util/math_util.h"
#include "util/metrics.h"

namespace ldpr {
namespace {

struct Params {
  ProtocolKind kind;
  double epsilon;
  size_t d;
};

std::string ParamName(const ::testing::TestParamInfo<Params>& info) {
  std::string name = ProtocolKindName(info.param.kind);
  name += "_eps";
  name += std::to_string(static_cast<int>(info.param.epsilon * 100));
  name += "_d";
  name += std::to_string(info.param.d);
  return name;
}

class ProtocolPropertyTest : public ::testing::TestWithParam<Params> {
 protected:
  std::unique_ptr<FrequencyProtocol> protocol_ =
      MakeProtocol(GetParam().kind, GetParam().d, GetParam().epsilon);
};

TEST_P(ProtocolPropertyTest, ProbabilityOrderingAndLdpConstraint) {
  const double p = protocol_->p();
  const double q = protocol_->q();
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
  EXPECT_GT(q, 0.0);
  EXPECT_LT(q, 1.0);
  EXPECT_GT(p, q);
  // Pure LDP: p/q <= e^eps (equality for GRR and OLH-over-g; OUE's
  // per-bit ratio likewise equals e^eps via (p(1-q))/(q(1-p))).
  const double e = std::exp(GetParam().epsilon);
  EXPECT_LE(p / q, e * (1.0 + 1e-9));
}

TEST_P(ProtocolPropertyTest, PerturbSupportsOwnItemAtRateP) {
  Rng rng(101);
  const ItemId item = static_cast<ItemId>(GetParam().d / 2);
  int hits = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i)
    hits += protocol_->Supports(protocol_->Perturb(item, rng), item) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, protocol_->p(), 0.015);
}

TEST_P(ProtocolPropertyTest, PerturbSupportsOtherItemAtRateQ) {
  Rng rng(102);
  const ItemId item = 0;
  const ItemId other = static_cast<ItemId>(GetParam().d - 1);
  int hits = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i)
    hits += protocol_->Supports(protocol_->Perturb(item, rng), other) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, protocol_->q(), 0.015);
}

TEST_P(ProtocolPropertyTest, EstimatedFrequenciesSumNearOne) {
  // sum_v Phi(v)/n = (sum_v C(v) - n q d) / (n (p - q)) concentrates
  // on 1 for genuine data.
  Rng rng(103);
  const size_t d = GetParam().d;
  const size_t n = 20000;
  std::vector<uint64_t> item_counts(d, n / d);
  item_counts[0] += n - (n / d) * d;
  const auto counts = protocol_->SampleSupportCounts(item_counts, rng);
  const auto freqs = protocol_->EstimateFrequencies(counts, n);
  // Tolerance: ~6 standard deviations of the sum (per-item variances
  // add; cross-item correlation only tightens GRR's sum).
  const double sum_sd = std::sqrt(static_cast<double>(d) *
                                  protocol_->FrequencyVariance(1.0 / d, n));
  EXPECT_NEAR(Sum(freqs), 1.0, 6.0 * sum_sd);
}

TEST_P(ProtocolPropertyTest, EstimatorIsUnbiasedOnSkewedData) {
  Rng rng(104);
  const size_t d = GetParam().d;
  const size_t n = 30000;
  // 50% on item 1, the rest uniform.
  std::vector<uint64_t> item_counts(d, (n / 2) / (d - 1));
  item_counts[1] = n / 2;
  uint64_t total = 0;
  for (uint64_t c : item_counts) total += c;
  item_counts[0] += n - total;

  RunningStat est;
  for (int trial = 0; trial < 40; ++trial) {
    const auto counts = protocol_->SampleSupportCounts(item_counts, rng);
    est.Add(protocol_->EstimateFrequencies(counts, n)[1]);
  }
  const double truth = static_cast<double>(item_counts[1]) / n;
  EXPECT_NEAR(est.mean(), truth, 5.0 * std::sqrt(est.variance() / 40.0) + 0.01);
}

TEST_P(ProtocolPropertyTest, CraftedReportDeterministicallySupportsTarget) {
  Rng rng(105);
  for (ItemId v = 0; v < GetParam().d; v += 7) {
    const Report r = protocol_->CraftSupportingReport(v, rng);
    EXPECT_TRUE(protocol_->Supports(r, v));
  }
}

TEST_P(ProtocolPropertyTest, CountVariancePositiveAndDecreasingInEpsilon) {
  const size_t n = 1000;
  const double var = protocol_->CountVariance(0.1, n);
  EXPECT_GT(var, 0.0);
  // A substantially larger epsilon gives strictly lower variance.
  const auto looser =
      MakeProtocol(GetParam().kind, GetParam().d, GetParam().epsilon + 2.0);
  EXPECT_LT(looser->CountVariance(0.1, n), var);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProtocolPropertyTest,
    ::testing::Values(Params{ProtocolKind::kGrr, 0.1, 16},
                      Params{ProtocolKind::kGrr, 0.5, 102},
                      Params{ProtocolKind::kGrr, 1.6, 32},
                      Params{ProtocolKind::kOue, 0.1, 16},
                      Params{ProtocolKind::kOue, 0.5, 102},
                      Params{ProtocolKind::kOue, 1.6, 32},
                      Params{ProtocolKind::kOlh, 0.1, 16},
                      Params{ProtocolKind::kOlh, 0.5, 102},
                      Params{ProtocolKind::kOlh, 1.6, 32}),
    ParamName);

TEST(ProtocolFactoryTest, ParsesNamesCaseInsensitively) {
  EXPECT_EQ(ParseProtocolKind("grr").value(), ProtocolKind::kGrr);
  EXPECT_EQ(ParseProtocolKind("Oue").value(), ProtocolKind::kOue);
  EXPECT_EQ(ParseProtocolKind("OLH").value(), ProtocolKind::kOlh);
  EXPECT_FALSE(ParseProtocolKind("rappor").ok());
}

TEST(ProtocolFactoryTest, MakesNamedProtocols) {
  for (ProtocolKind kind : kAllProtocolKinds) {
    const auto proto = MakeProtocol(kind, 10, 0.5);
    ASSERT_NE(proto, nullptr);
    EXPECT_EQ(proto->kind(), kind);
    EXPECT_EQ(proto->domain_size(), 10u);
  }
}

}  // namespace
}  // namespace ldpr
