// Tests for src/lint/ — the determinism/portability linter.
//
// Per-rule fixtures run through LintScannedTree on in-memory files
// (positive finding, pragma suppression, allowlist hit, stale
// allowlist error), plus the golden run: the real tree, scanned with
// the real allowlist, must be clean — the same gate CI enforces via
// `ldpr_lint --repo=. src tools bench tests`.

#include "lint/lint.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lint/source_file.h"

namespace ldpr {
namespace lint {
namespace {

LintTree TreeOf(std::vector<std::pair<std::string, std::string>> files) {
  LintTree tree;
  for (auto& [path, text] : files) {
    tree.files.push_back(ScanSource(path, text));
  }
  return tree;
}

std::vector<Finding> Lint(const LintTree& tree,
                          const std::string& allowlist = "") {
  return LintScannedTree(tree, allowlist, "ci/lint_allowlist.txt").findings;
}

bool HasFinding(const std::vector<Finding>& findings, const std::string& rule,
                const std::string& path, size_t line) {
  for (const Finding& f : findings) {
    if (f.rule == rule && f.path == path && f.line == line) return true;
  }
  return false;
}

// ---------------------------------------------------------- scanner

TEST(SourceFileTest, BlanksCommentsAndLiterals) {
  const SourceFile file = ScanSource("src/ldp/x.cc", R"cpp(
int a = 1;  // std::rand in a comment
const char* s = "std::rand in a string";
/* block std::rand comment */ int b = 2;
char c = 'r';
const char* raw = R"x(std::rand in a raw string)x";
)cpp");
  for (const std::string& line : file.code_lines) {
    EXPECT_EQ(line.find("std::rand"), std::string::npos) << line;
  }
  // Code survives the blanking.
  EXPECT_NE(file.code_lines[1].find("int a = 1;"), std::string::npos);
  EXPECT_NE(file.code_lines[3].find("int b = 2;"), std::string::npos);
}

TEST(SourceFileTest, ExtractsPragmas) {
  const SourceFile file = ScanSource("src/ldp/x.cc", R"cpp(
double x = 0;  // lint: fp-order-ok(serial loop)
// lint: nondet-ok(test fixture)
int y = 0;
// lint: fp-order-ok()   <- empty reason never suppresses
int z = 0;
)cpp");
  ASSERT_EQ(file.pragmas.size(), 2u);
  EXPECT_EQ(file.pragmas[0].key, "fp-order");
  EXPECT_EQ(file.pragmas[0].reason, "serial loop");
  EXPECT_TRUE(file.SuppressedAt(2, "fp-order"));
  // Standalone pragma covers the next line.
  EXPECT_TRUE(file.SuppressedAt(4, "nondet"));
  EXPECT_FALSE(file.SuppressedAt(4, "fp-order"));
  EXPECT_FALSE(file.SuppressedAt(6, "fp-order"));
}

TEST(SourceFileTest, FindTokenRespectsIdentifierBoundaries) {
  EXPECT_EQ(FindToken("steady_clock::now()", "clock("), std::string::npos);
  EXPECT_NE(FindToken("clock()", "clock("), std::string::npos);
  EXPECT_EQ(FindToken("my_rand(3)", "rand("), std::string::npos);
  EXPECT_NE(FindToken("std::rand()", "std::rand"), std::string::npos);
}

// --------------------------------------------------------------- R1

TEST(RuleNondetTest, FlagsBannedSourcesInSrc) {
  const auto findings = Lint(TreeOf({{"src/ldp/grr.cc", R"cpp(
#include <random>
uint32_t Seed() {
  std::random_device rd;
  return rd();
}
)cpp"}}));
  ASSERT_TRUE(HasFinding(findings, "R1", "src/ldp/grr.cc", 4));
  // Findings format as file:line: [rule] message.
  EXPECT_EQ(FormatFinding(findings[0]).find("src/ldp/grr.cc:4: [R1] "), 0u);
}

TEST(RuleNondetTest, PragmaSuppresses) {
  const auto findings = Lint(TreeOf({{"src/ldp/grr.cc", R"cpp(
std::random_device rd;  // lint: nondet-ok(entropy for the CLI banner only)
)cpp"}}));
  EXPECT_TRUE(findings.empty());
}

TEST(RuleNondetTest, ClockWhitelistCoversExperimentAndBench) {
  const std::string clock_code = R"cpp(
auto t = std::chrono::steady_clock::now();
)cpp";
  EXPECT_TRUE(Lint(TreeOf({{"src/sim/experiment.cc", clock_code}})).empty());
  EXPECT_TRUE(Lint(TreeOf({{"bench/bench_x.cc", clock_code}})).empty());
  EXPECT_TRUE(HasFinding(Lint(TreeOf({{"src/ldp/grr.cc", clock_code}})), "R1",
                         "src/ldp/grr.cc", 2));
}

TEST(RuleNondetTest, ShuffleNeedsVisibleRng) {
  EXPECT_FALSE(Lint(TreeOf({{"src/data/x.cc", R"cpp(
void F() { std::shuffle(v.begin(), v.end(), urbg); }
)cpp"}})).empty());
  EXPECT_TRUE(Lint(TreeOf({{"src/data/x.cc", R"cpp(
void F(Rng& rng) { std::shuffle(v.begin(), v.end(), rng.Urbg()); }
)cpp"}})).empty());
}

TEST(RuleNondetTest, RawEnginesOnlyInUtilRandom) {
  const std::string engine = "std::mt19937 gen;\n";
  EXPECT_TRUE(Lint(TreeOf({{"src/util/random.cc", engine}})).empty());
  EXPECT_FALSE(Lint(TreeOf({{"src/ldp/grr.cc", engine}})).empty());
}

// --------------------------------------------------------------- R2

TEST(RuleUnorderedTest, FlagsIterationNotLookups) {
  const auto findings = Lint(TreeOf({{"src/data/x.cc", R"cpp(
std::unordered_map<std::string, size_t> ids;
void Lookup() { ids.emplace("a", 1); ids.find("a"); ids.count("a"); }
void Walk() {
  for (const auto& kv : ids) Use(kv);
}
void Iter() { auto it = ids.begin(); }
)cpp"}}));
  EXPECT_FALSE(HasFinding(findings, "R2", "src/data/x.cc", 3));
  EXPECT_TRUE(HasFinding(findings, "R2", "src/data/x.cc", 5));
  EXPECT_TRUE(HasFinding(findings, "R2", "src/data/x.cc", 7));
}

TEST(RuleUnorderedTest, PragmaSuppresses) {
  EXPECT_TRUE(Lint(TreeOf({{"src/data/x.cc", R"cpp(
std::unordered_set<int> seen;
// lint: unordered-iter-ok(order folded through a commutative reduction)
for (int v : seen) total ^= Hash(v);
)cpp"}})).empty());
}

// --------------------------------------------------------------- R3

constexpr char kFpLoop[] = R"cpp(
void Sum(const std::vector<double>& xs) {
  double total = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    total += xs[i];
  }
}
)cpp";

TEST(RuleFpOrderTest, FlagsFpAccumulationInLoopsInHotDirs) {
  EXPECT_TRUE(HasFinding(Lint(TreeOf({{"src/ldp/acc.cc", kFpLoop}})), "R3",
                         "src/ldp/acc.cc", 5));
  // Outside the hot directories the rule does not apply.
  EXPECT_TRUE(Lint(TreeOf({{"src/util/acc.cc", kFpLoop}})).empty());
  // Integer accumulation is not flagged.
  EXPECT_TRUE(Lint(TreeOf({{"src/ldp/intacc.cc", R"cpp(
void Count(const std::vector<uint64_t>& xs) {
  uint64_t n = 0;
  for (size_t i = 0; i < xs.size(); ++i) n += xs[i];
}
)cpp"}})).empty());
}

TEST(RuleFpOrderTest, MemberTypesComeFromPairedHeader) {
  const auto findings = Lint(TreeOf({
      {"src/recover/acc.h", "class A { double acc_ = 0; };\n"},
      {"src/recover/acc.cc", R"cpp(
void A::AddAll(const std::vector<int>& xs) {
  for (int x : xs) acc_ += x;
}
)cpp"},
  }));
  EXPECT_TRUE(HasFinding(findings, "R3", "src/recover/acc.cc", 3));
}

TEST(RuleFpOrderTest, AllowlistHitAndStaleEntry) {
  const LintTree tree = TreeOf({{"src/ldp/acc.cc", kFpLoop}});
  // A matching entry suppresses the finding and is not stale.
  EXPECT_TRUE(
      Lint(tree, "R3 src/ldp/acc.cc floating-point accumulation\n").empty());
  // A stale entry (nothing matches) is itself a finding.
  const auto stale =
      Lint(tree, "R3 src/ldp/acc.cc floating-point accumulation\n"
                 "R3 src/ldp/gone.cc floating-point accumulation\n");
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].rule, "allowlist");
  EXPECT_EQ(stale[0].line, 2u);
  EXPECT_NE(stale[0].message.find("stale"), std::string::npos);
}

TEST(RuleFpOrderTest, PragmaSuppresses) {
  EXPECT_TRUE(Lint(TreeOf({{"src/stream/acc.cc", R"cpp(
void F(const std::vector<double>& xs) {
  double total = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    total += xs[i];  // lint: fp-order-ok(serial fixed-order loop)
  }
}
)cpp"}})).empty());
}

// --------------------------------------------------------------- R4

constexpr char kCMakeWithGlob[] =
    "file(GLOB LDPR_TEST_SOURCES tests/*_test.cc)\n"
    "target_link_libraries(scenario_registry_test PRIVATE ldpr_scenarios)\n";

std::string CiYaml(const std::string& tsan_built, const std::string& tsan_run,
                   const std::string& asan_built, const std::string& asan_run) {
  return "jobs:\n  tsan:\n    steps:\n      - run: cmake --build b --target " +
         tsan_built + "\n      - run: ./" + tsan_run +
         "\n  asan:\n    steps:\n      - run: cmake --build b --target " +
         asan_built + "\n      - run: ./" + asan_run + "\n";
}

TEST(RuleRegistrationTest, CleanWhenConsistent) {
  const LintTree tree = TreeOf({
      {"tests/grr_test.cc", "int main() {}\n"},
      {"CMakeLists.txt", kCMakeWithGlob},
      {".github/workflows/ci.yml",
       CiYaml("grr_test", "grr_test", "grr_test", "grr_test")},
  });
  EXPECT_TRUE(Lint(tree).empty());
}

TEST(RuleRegistrationTest, FlagsBuiltButNotRun) {
  const LintTree tree = TreeOf({
      {"tests/grr_test.cc", "int main() {}\n"},
      {"tests/oue_test.cc", "int main() {}\n"},
      {"CMakeLists.txt", kCMakeWithGlob},
      {".github/workflows/ci.yml",
       CiYaml("grr_test oue_test", "grr_test", "grr_test", "grr_test")},
  });
  const auto findings = Lint(tree);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R4");
  EXPECT_NE(findings[0].message.find("oue_test"), std::string::npos);
  EXPECT_NE(findings[0].message.find("never runs"), std::string::npos);
}

TEST(RuleRegistrationTest, FlagsNonexistentTestAndMissingScenarioTest) {
  const LintTree tree = TreeOf({
      {"tests/grr_test.cc", "int main() {}\n"},
      {"tests/scenario_registry_test.cc", "int main() {}\n"},
      {"CMakeLists.txt", kCMakeWithGlob},
      {".github/workflows/ci.yml",
       CiYaml("grr_test gone_test", "grr_test gone_test", "grr_test",
              "grr_test")},
  });
  const auto findings = Lint(tree);
  // gone_test does not exist on disk (tsan), and the
  // scenario-registration-linked test is absent from both matrices.
  EXPECT_TRUE(HasFinding(findings, "R4", ".github/workflows/ci.yml", 2));
  bool missing_scenario = false;
  bool nonexistent = false;
  for (const Finding& f : findings) {
    if (f.message.find("scenario-registration") != std::string::npos) {
      missing_scenario = true;
    }
    if (f.message.find("does not exist") != std::string::npos) {
      nonexistent = true;
    }
  }
  EXPECT_TRUE(missing_scenario);
  EXPECT_TRUE(nonexistent);
}

TEST(RuleRegistrationTest, ToolsNeedCMakeTargetAndCiInvocation) {
  // Clean: the tool source is named in CMake and `./build/mytool` (a
  // `/mytool` hit with a non-identifier follower) appears in CI.
  const std::string cmake =
      std::string(kCMakeWithGlob) + "add_executable(mytool tools/mytool.cc)\n";
  const LintTree clean = TreeOf({
      {"tests/grr_test.cc", "int main() {}\n"},
      {"tools/mytool.cc", "int main() {}\n"},
      {"CMakeLists.txt", cmake},
      {".github/workflows/ci.yml",
       CiYaml("grr_test", "grr_test", "grr_test", "grr_test") +
           "      - run: ./build/mytool --help\n"},
  });
  EXPECT_TRUE(Lint(clean).empty());

  // No CMake mention of the source file.
  const LintTree no_cmake = TreeOf({
      {"tests/grr_test.cc", "int main() {}\n"},
      {"tools/mytool.cc", "int main() {}\n"},
      {"CMakeLists.txt", kCMakeWithGlob},
      {".github/workflows/ci.yml",
       CiYaml("grr_test", "grr_test", "grr_test", "grr_test") +
           "      - run: ./build/mytool --help\n"},
  });
  const auto cmake_findings = Lint(no_cmake);
  ASSERT_EQ(cmake_findings.size(), 1u);
  EXPECT_EQ(cmake_findings[0].rule, "R4");
  EXPECT_NE(cmake_findings[0].message.find("no CMake target"),
            std::string::npos);

  // No CI invocation — and a prefix hit (`/mytool_extra`) must not
  // count as one, since the follower is an identifier character.
  const LintTree no_ci = TreeOf({
      {"tests/grr_test.cc", "int main() {}\n"},
      {"tools/mytool.cc", "int main() {}\n"},
      {"CMakeLists.txt", cmake},
      {".github/workflows/ci.yml",
       CiYaml("grr_test", "grr_test", "grr_test", "grr_test") +
           "      - run: ./build/mytool_extra --help\n"},
  });
  const auto ci_findings = Lint(no_ci);
  ASSERT_EQ(ci_findings.size(), 1u);
  EXPECT_EQ(ci_findings[0].rule, "R4");
  EXPECT_NE(ci_findings[0].message.find("never invoked by CI"),
            std::string::npos);
}

TEST(RuleRegistrationTest, FlagsMissingGlob) {
  const LintTree tree = TreeOf({
      {"tests/grr_test.cc", "int main() {}\n"},
      {"CMakeLists.txt", "add_executable(other tests/other_test.cc)\n"},
  });
  const auto findings = Lint(tree);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R4");
  EXPECT_NE(findings[0].message.find("grr_test"), std::string::npos);
}

// --------------------------------------------------------------- R5

TEST(RuleHeaderGuardTest, CanonicalGuardRequired) {
  EXPECT_TRUE(Lint(TreeOf({{"src/ldp/grr.h", R"cpp(
#ifndef LDPR_LDP_GRR_H_
#define LDPR_LDP_GRR_H_
#endif
)cpp"}})).empty());

  const auto wrong = Lint(TreeOf({{"src/ldp/grr.h", R"cpp(
#ifndef LDPR_GRR_H_
#define LDPR_GRR_H_
#endif
)cpp"}}));
  ASSERT_TRUE(HasFinding(wrong, "R5", "src/ldp/grr.h", 2));
  EXPECT_NE(wrong[0].message.find("LDPR_LDP_GRR_H_"), std::string::npos);

  EXPECT_TRUE(HasFinding(Lint(TreeOf({{"src/ldp/grr.h", "int x;\n"}})), "R5",
                         "src/ldp/grr.h", 1));
}

// ------------------------------------------------------- golden run

#ifdef LDPR_SOURCE_DIR
TEST(GoldenTreeTest, RealTreeIsClean) {
  LintOptions options;
  options.repo_root = LDPR_SOURCE_DIR;
  options.allowlist_path = "ci/lint_allowlist.txt";
  options.roots = {"src", "tools", "bench", "tests"};
  auto result = RunLint(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const Finding& finding : result.value().findings) {
    ADD_FAILURE() << FormatFinding(finding);
  }
  EXPECT_GT(result.value().files_scanned, 100u);
}

TEST(GoldenTreeTest, SeededViolationIsCaught) {
  // The acceptance probe: a tree where src/ldp/grr.cc gains an R1
  // violation must produce exactly that finding, naming file, line,
  // and rule id.
  LintTree tree;
  tree.files.push_back(ScanSource(
      "src/ldp/grr.cc", "uint32_t Seed() { return std::random_device{}(); }\n"));
  const LintResult seeded = LintScannedTree(tree, "", "");
  ASSERT_EQ(seeded.findings.size(), 1u);
  EXPECT_EQ(seeded.findings[0].rule, "R1");
  EXPECT_EQ(seeded.findings[0].path, "src/ldp/grr.cc");
  EXPECT_EQ(seeded.findings[0].line, 1u);
}
#endif  // LDPR_SOURCE_DIR

}  // namespace
}  // namespace lint
}  // namespace ldpr
