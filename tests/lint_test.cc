// Tests for src/lint/ — the determinism/portability linter.
//
// Per-rule fixtures run through LintScannedTree on in-memory files
// (positive finding, pragma suppression, allowlist hit, stale
// allowlist error), golden-byte locks on the SARIF/github emitters,
// the --fix=header-guards round trip, plus the golden run: the real
// tree, scanned with the real allowlist, must be clean — the same
// gate CI enforces via `ldpr_lint --repo=. src tools bench tests
// examples`.

#include "lint/lint.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lint/fix.h"
#include "lint/format.h"
#include "lint/include_graph.h"
#include "lint/source_file.h"

namespace ldpr {
namespace lint {
namespace {

LintTree TreeOf(std::vector<std::pair<std::string, std::string>> files) {
  LintTree tree;
  for (auto& [path, text] : files) {
    tree.files.push_back(ScanSource(path, text));
  }
  return tree;
}

std::vector<Finding> Lint(const LintTree& tree,
                          const std::string& allowlist = "") {
  return LintScannedTree(tree, allowlist, "ci/lint_allowlist.txt").findings;
}

bool HasFinding(const std::vector<Finding>& findings, const std::string& rule,
                const std::string& path, size_t line) {
  for (const Finding& f : findings) {
    if (f.rule == rule && f.path == path && f.line == line) return true;
  }
  return false;
}

// ---------------------------------------------------------- scanner

TEST(SourceFileTest, BlanksCommentsAndLiterals) {
  const SourceFile file = ScanSource("src/ldp/x.cc", R"cpp(
int a = 1;  // std::rand in a comment
const char* s = "std::rand in a string";
/* block std::rand comment */ int b = 2;
char c = 'r';
const char* raw = R"x(std::rand in a raw string)x";
)cpp");
  for (const std::string& line : file.code_lines) {
    EXPECT_EQ(line.find("std::rand"), std::string::npos) << line;
  }
  // Code survives the blanking.
  EXPECT_NE(file.code_lines[1].find("int a = 1;"), std::string::npos);
  EXPECT_NE(file.code_lines[3].find("int b = 2;"), std::string::npos);
}

TEST(SourceFileTest, ExtractsPragmas) {
  const SourceFile file = ScanSource("src/ldp/x.cc", R"cpp(
double x = 0;  // lint: fp-order-ok(serial loop)
// lint: nondet-ok(test fixture)
int y = 0;
// lint: fp-order-ok()   <- empty reason never suppresses
int z = 0;
)cpp");
  ASSERT_EQ(file.pragmas.size(), 2u);
  EXPECT_EQ(file.pragmas[0].key, "fp-order");
  EXPECT_EQ(file.pragmas[0].reason, "serial loop");
  EXPECT_TRUE(file.SuppressedAt(2, "fp-order"));
  // Standalone pragma covers the next line.
  EXPECT_TRUE(file.SuppressedAt(4, "nondet"));
  EXPECT_FALSE(file.SuppressedAt(4, "fp-order"));
  EXPECT_FALSE(file.SuppressedAt(6, "fp-order"));
}

TEST(SourceFileTest, FindTokenRespectsIdentifierBoundaries) {
  EXPECT_EQ(FindToken("steady_clock::now()", "clock("), std::string::npos);
  EXPECT_NE(FindToken("clock()", "clock("), std::string::npos);
  EXPECT_EQ(FindToken("my_rand(3)", "rand("), std::string::npos);
  EXPECT_NE(FindToken("std::rand()", "std::rand"), std::string::npos);
}

// --------------------------------------------------------------- R1

TEST(RuleNondetTest, FlagsBannedSourcesInSrc) {
  const auto findings = Lint(TreeOf({{"src/ldp/grr.cc", R"cpp(
#include <random>
uint32_t Seed() {
  std::random_device rd;
  return rd();
}
)cpp"}}));
  ASSERT_TRUE(HasFinding(findings, "R1", "src/ldp/grr.cc", 4));
  // Findings format as file:line: [rule] message.
  EXPECT_EQ(FormatFinding(findings[0]).find("src/ldp/grr.cc:4: [R1] "), 0u);
}

TEST(RuleNondetTest, PragmaSuppresses) {
  const auto findings = Lint(TreeOf({{"src/ldp/grr.cc", R"cpp(
std::random_device rd;  // lint: nondet-ok(entropy for the CLI banner only)
)cpp"}}));
  EXPECT_TRUE(findings.empty());
}

TEST(RuleNondetTest, ClockWhitelistCoversExperimentAndBench) {
  const std::string clock_code = R"cpp(
auto t = std::chrono::steady_clock::now();
)cpp";
  EXPECT_TRUE(Lint(TreeOf({{"src/sim/experiment.cc", clock_code}})).empty());
  EXPECT_TRUE(Lint(TreeOf({{"bench/bench_x.cc", clock_code}})).empty());
  EXPECT_TRUE(HasFinding(Lint(TreeOf({{"src/ldp/grr.cc", clock_code}})), "R1",
                         "src/ldp/grr.cc", 2));
}

TEST(RuleNondetTest, ShuffleNeedsVisibleRng) {
  EXPECT_FALSE(Lint(TreeOf({{"src/data/x.cc", R"cpp(
void F() { std::shuffle(v.begin(), v.end(), urbg); }
)cpp"}})).empty());
  EXPECT_TRUE(Lint(TreeOf({{"src/data/x.cc", R"cpp(
void F(Rng& rng) { std::shuffle(v.begin(), v.end(), rng.Urbg()); }
)cpp"}})).empty());
}

TEST(RuleNondetTest, RawEnginesOnlyInUtilRandom) {
  const std::string engine = "std::mt19937 gen;\n";
  EXPECT_TRUE(Lint(TreeOf({{"src/util/random.cc", engine}})).empty());
  EXPECT_FALSE(Lint(TreeOf({{"src/ldp/grr.cc", engine}})).empty());
}

// --------------------------------------------------------------- R2

TEST(RuleUnorderedTest, FlagsIterationNotLookups) {
  const auto findings = Lint(TreeOf({{"src/data/x.cc", R"cpp(
std::unordered_map<std::string, size_t> ids;
void Lookup() { ids.emplace("a", 1); ids.find("a"); ids.count("a"); }
void Walk() {
  for (const auto& kv : ids) Use(kv);
}
void Iter() { auto it = ids.begin(); }
)cpp"}}));
  EXPECT_FALSE(HasFinding(findings, "R2", "src/data/x.cc", 3));
  EXPECT_TRUE(HasFinding(findings, "R2", "src/data/x.cc", 5));
  EXPECT_TRUE(HasFinding(findings, "R2", "src/data/x.cc", 7));
}

TEST(RuleUnorderedTest, PragmaSuppresses) {
  EXPECT_TRUE(Lint(TreeOf({{"src/data/x.cc", R"cpp(
std::unordered_set<int> seen;
// lint: unordered-iter-ok(order folded through a commutative reduction)
for (int v : seen) total ^= Hash(v);
)cpp"}})).empty());
}

// --------------------------------------------------------------- R3

constexpr char kFpLoop[] = R"cpp(
void Sum(const std::vector<double>& xs) {
  double total = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    total += xs[i];
  }
}
)cpp";

TEST(RuleFpOrderTest, FlagsFpAccumulationInLoopsInHotDirs) {
  EXPECT_TRUE(HasFinding(Lint(TreeOf({{"src/ldp/acc.cc", kFpLoop}})), "R3",
                         "src/ldp/acc.cc", 5));
  // Outside the hot directories the rule does not apply.
  EXPECT_TRUE(Lint(TreeOf({{"src/util/acc.cc", kFpLoop}})).empty());
  // Integer accumulation is not flagged.
  EXPECT_TRUE(Lint(TreeOf({{"src/ldp/intacc.cc", R"cpp(
void Count(const std::vector<uint64_t>& xs) {
  uint64_t n = 0;
  for (size_t i = 0; i < xs.size(); ++i) n += xs[i];
}
)cpp"}})).empty());
}

TEST(RuleFpOrderTest, MemberTypesComeFromPairedHeader) {
  const auto findings = Lint(TreeOf({
      {"src/recover/acc.h", "class A { double acc_ = 0; };\n"},
      {"src/recover/acc.cc", R"cpp(
void A::AddAll(const std::vector<int>& xs) {
  for (int x : xs) acc_ += x;
}
)cpp"},
  }));
  EXPECT_TRUE(HasFinding(findings, "R3", "src/recover/acc.cc", 3));
}

TEST(RuleFpOrderTest, AllowlistHitAndStaleEntry) {
  const LintTree tree = TreeOf({{"src/ldp/acc.cc", kFpLoop}});
  // A matching entry suppresses the finding and is not stale.
  EXPECT_TRUE(
      Lint(tree, "R3 src/ldp/acc.cc floating-point accumulation\n").empty());
  // A stale entry (nothing matches) is itself a finding.
  const auto stale =
      Lint(tree, "R3 src/ldp/acc.cc floating-point accumulation\n"
                 "R3 src/ldp/gone.cc floating-point accumulation\n");
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].rule, "allowlist");
  EXPECT_EQ(stale[0].line, 2u);
  EXPECT_NE(stale[0].message.find("stale"), std::string::npos);
}

TEST(RuleFpOrderTest, PragmaSuppresses) {
  EXPECT_TRUE(Lint(TreeOf({{"src/stream/acc.cc", R"cpp(
void F(const std::vector<double>& xs) {
  double total = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    total += xs[i];  // lint: fp-order-ok(serial fixed-order loop)
  }
}
)cpp"}})).empty());
}

// --------------------------------------------------------------- R4

constexpr char kCMakeWithGlob[] =
    "file(GLOB LDPR_TEST_SOURCES tests/*_test.cc)\n"
    "target_link_libraries(scenario_registry_test PRIVATE ldpr_scenarios)\n";

std::string CiYaml(const std::string& tsan_built, const std::string& tsan_run,
                   const std::string& asan_built, const std::string& asan_run) {
  return "jobs:\n  tsan:\n    steps:\n      - run: cmake --build b --target " +
         tsan_built + "\n      - run: ./" + tsan_run +
         "\n  asan:\n    steps:\n      - run: cmake --build b --target " +
         asan_built + "\n      - run: ./" + asan_run + "\n";
}

TEST(RuleRegistrationTest, CleanWhenConsistent) {
  const LintTree tree = TreeOf({
      {"tests/grr_test.cc", "int main() {}\n"},
      {"CMakeLists.txt", kCMakeWithGlob},
      {".github/workflows/ci.yml",
       CiYaml("grr_test", "grr_test", "grr_test", "grr_test")},
  });
  EXPECT_TRUE(Lint(tree).empty());
}

TEST(RuleRegistrationTest, FlagsBuiltButNotRun) {
  const LintTree tree = TreeOf({
      {"tests/grr_test.cc", "int main() {}\n"},
      {"tests/oue_test.cc", "int main() {}\n"},
      {"CMakeLists.txt", kCMakeWithGlob},
      {".github/workflows/ci.yml",
       CiYaml("grr_test oue_test", "grr_test", "grr_test", "grr_test")},
  });
  const auto findings = Lint(tree);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R4");
  EXPECT_NE(findings[0].message.find("oue_test"), std::string::npos);
  EXPECT_NE(findings[0].message.find("never runs"), std::string::npos);
}

TEST(RuleRegistrationTest, FlagsNonexistentTestAndMissingScenarioTest) {
  const LintTree tree = TreeOf({
      {"tests/grr_test.cc", "int main() {}\n"},
      {"tests/scenario_registry_test.cc", "int main() {}\n"},
      {"CMakeLists.txt", kCMakeWithGlob},
      {".github/workflows/ci.yml",
       CiYaml("grr_test gone_test", "grr_test gone_test", "grr_test",
              "grr_test")},
  });
  const auto findings = Lint(tree);
  // gone_test does not exist on disk (tsan), and the
  // scenario-registration-linked test is absent from both matrices.
  EXPECT_TRUE(HasFinding(findings, "R4", ".github/workflows/ci.yml", 2));
  bool missing_scenario = false;
  bool nonexistent = false;
  for (const Finding& f : findings) {
    if (f.message.find("scenario-registration") != std::string::npos) {
      missing_scenario = true;
    }
    if (f.message.find("does not exist") != std::string::npos) {
      nonexistent = true;
    }
  }
  EXPECT_TRUE(missing_scenario);
  EXPECT_TRUE(nonexistent);
}

TEST(RuleRegistrationTest, ToolsNeedCMakeTargetAndCiInvocation) {
  // Clean: the tool source is named in CMake and `./build/mytool` (a
  // `/mytool` hit with a non-identifier follower) appears in CI.
  const std::string cmake =
      std::string(kCMakeWithGlob) + "add_executable(mytool tools/mytool.cc)\n";
  const LintTree clean = TreeOf({
      {"tests/grr_test.cc", "int main() {}\n"},
      {"tools/mytool.cc", "int main() {}\n"},
      {"CMakeLists.txt", cmake},
      {".github/workflows/ci.yml",
       CiYaml("grr_test", "grr_test", "grr_test", "grr_test") +
           "      - run: ./build/mytool --help\n"},
  });
  EXPECT_TRUE(Lint(clean).empty());

  // No CMake mention of the source file.
  const LintTree no_cmake = TreeOf({
      {"tests/grr_test.cc", "int main() {}\n"},
      {"tools/mytool.cc", "int main() {}\n"},
      {"CMakeLists.txt", kCMakeWithGlob},
      {".github/workflows/ci.yml",
       CiYaml("grr_test", "grr_test", "grr_test", "grr_test") +
           "      - run: ./build/mytool --help\n"},
  });
  const auto cmake_findings = Lint(no_cmake);
  ASSERT_EQ(cmake_findings.size(), 1u);
  EXPECT_EQ(cmake_findings[0].rule, "R4");
  EXPECT_NE(cmake_findings[0].message.find("no CMake target"),
            std::string::npos);

  // No CI invocation — and a prefix hit (`/mytool_extra`) must not
  // count as one, since the follower is an identifier character.
  const LintTree no_ci = TreeOf({
      {"tests/grr_test.cc", "int main() {}\n"},
      {"tools/mytool.cc", "int main() {}\n"},
      {"CMakeLists.txt", cmake},
      {".github/workflows/ci.yml",
       CiYaml("grr_test", "grr_test", "grr_test", "grr_test") +
           "      - run: ./build/mytool_extra --help\n"},
  });
  const auto ci_findings = Lint(no_ci);
  ASSERT_EQ(ci_findings.size(), 1u);
  EXPECT_EQ(ci_findings[0].rule, "R4");
  EXPECT_NE(ci_findings[0].message.find("never invoked by CI"),
            std::string::npos);
}

TEST(RuleRegistrationTest, FlagsMissingGlob) {
  const LintTree tree = TreeOf({
      {"tests/grr_test.cc", "int main() {}\n"},
      {"CMakeLists.txt", "add_executable(other tests/other_test.cc)\n"},
  });
  const auto findings = Lint(tree);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R4");
  EXPECT_NE(findings[0].message.find("grr_test"), std::string::npos);
}

// --------------------------------------------------------------- R5

TEST(RuleHeaderGuardTest, CanonicalGuardRequired) {
  EXPECT_TRUE(Lint(TreeOf({{"src/ldp/grr.h", R"cpp(
#ifndef LDPR_LDP_GRR_H_
#define LDPR_LDP_GRR_H_
#endif
)cpp"}})).empty());

  const auto wrong = Lint(TreeOf({{"src/ldp/grr.h", R"cpp(
#ifndef LDPR_GRR_H_
#define LDPR_GRR_H_
#endif
)cpp"}}));
  ASSERT_TRUE(HasFinding(wrong, "R5", "src/ldp/grr.h", 2));
  EXPECT_NE(wrong[0].message.find("LDPR_LDP_GRR_H_"), std::string::npos);

  EXPECT_TRUE(HasFinding(Lint(TreeOf({{"src/ldp/grr.h", "int x;\n"}})), "R5",
                         "src/ldp/grr.h", 1));
}

// --------------------------------------------------------------- R6

// The layer contract fixtures opt in by carrying ci/lint_layers.txt;
// trees without it (every fixture above) skip R6 entirely.
constexpr char kTwoLayers[] = "util\nldp\n";

TEST(RuleLayeringTest, FlagsUpwardInclude) {
  const auto findings = Lint(TreeOf({
      {"ci/lint_layers.txt", kTwoLayers},
      {"src/ldp/b.h", "#ifndef LDPR_LDP_B_H_\n#define LDPR_LDP_B_H_\n#endif\n"},
      {"src/util/a.cc", "#include \"ldp/b.h\"\nint x;\n"},
  }));
  ASSERT_TRUE(HasFinding(findings, "R6", "src/util/a.cc", 1));
  bool saw_upward = false;
  for (const Finding& f : findings) {
    if (f.rule == "R6" && f.message.find("upward include") != std::string::npos)
      saw_upward = true;
  }
  EXPECT_TRUE(saw_upward);
}

TEST(RuleLayeringTest, DownwardIncludesAreClean) {
  EXPECT_TRUE(Lint(TreeOf({
                  {"ci/lint_layers.txt", kTwoLayers},
                  {"src/util/a.h",
                   "#ifndef LDPR_UTIL_A_H_\n#define LDPR_UTIL_A_H_\n#endif\n"},
                  {"src/ldp/b.cc", "#include \"util/a.h\"\nint x;\n"},
              })).empty());
}

TEST(RuleLayeringTest, FlagsUnlistedSubdir) {
  const auto findings = Lint(TreeOf({
      {"ci/lint_layers.txt", kTwoLayers},
      {"src/newdir/a.cc", "int x;\n"},
  }));
  ASSERT_TRUE(HasFinding(findings, "R6", "ci/lint_layers.txt", 1));
  EXPECT_NE(findings[0].message.find("src/newdir/"), std::string::npos);
}

TEST(RuleLayeringTest, FlagsIncludeCycle) {
  const auto findings = Lint(TreeOf({
      {"ci/lint_layers.txt", kTwoLayers},
      {"src/ldp/a.h",
       "#ifndef LDPR_LDP_A_H_\n#define LDPR_LDP_A_H_\n"
       "#include \"ldp/b.h\"\n#endif\n"},
      {"src/ldp/b.h",
       "#ifndef LDPR_LDP_B_H_\n#define LDPR_LDP_B_H_\n"
       "#include \"ldp/a.h\"\n#endif\n"},
  }));
  bool saw_cycle = false;
  for (const Finding& f : findings) {
    if (f.rule == "R6" && f.message.find("include cycle") != std::string::npos)
      saw_cycle = true;
  }
  EXPECT_TRUE(saw_cycle);
}

TEST(RuleLayeringTest, PragmaSuppressesUpwardInclude) {
  EXPECT_TRUE(Lint(TreeOf({
                  {"ci/lint_layers.txt", kTwoLayers},
                  {"src/ldp/b.h",
                   "#ifndef LDPR_LDP_B_H_\n#define LDPR_LDP_B_H_\n#endif\n"},
                  {"src/util/a.cc",
                   "// lint: layering-ok(transitional, tracked in ROADMAP)\n"
                   "#include \"ldp/b.h\"\nint x;\n"},
              })).empty());
}

TEST(RuleLayeringTest, DotRendersLayersAndEdges) {
  LintTree tree = TreeOf({
      {"ci/lint_layers.txt", kTwoLayers},
      {"src/util/a.h",
       "#ifndef LDPR_UTIL_A_H_\n#define LDPR_UTIL_A_H_\n#endif\n"},
      {"src/ldp/b.cc", "#include \"util/a.h\"\n"},
  });
  const LintResult result = LintScannedTree(tree, "", "");
  EXPECT_NE(result.include_graph_dot.find("digraph ldpr_includes"),
            std::string::npos);
  EXPECT_NE(result.include_graph_dot.find("\"ldp\" -> \"util\" [label=\"1\"]"),
            std::string::npos);
  EXPECT_NE(result.include_graph_dot.find("layer 0"), std::string::npos);
}

// --------------------------------------------------------------- R7

constexpr char kRacyParallelFor[] = R"cpp(
void F(ThreadPool& pool, std::vector<double>& rows, size_t n) {
  double total = 0.0;
  pool.ParallelFor(0, n, [&](size_t i) {
    total += Work(i);
    rows[i] = total;
  });
}
)cpp";

TEST(RuleParCaptureTest, FlagsUnindexedRefWrite) {
  const auto findings =
      Lint(TreeOf({{"src/sim/x.cc", kRacyParallelFor}}));
  ASSERT_TRUE(HasFinding(findings, "R7", "src/sim/x.cc", 5));
  EXPECT_NE(findings[0].message.find("'total'"), std::string::npos);
  // The loop-indexed write to rows[i] is the sanctioned pattern.
  EXPECT_FALSE(HasFinding(findings, "R7", "src/sim/x.cc", 6));
}

TEST(RuleParCaptureTest, LoopIndexedSlotsAndLocalsAreClean) {
  EXPECT_TRUE(Lint(TreeOf({{"src/sim/x.cc", R"cpp(
void F(ThreadPool& pool, std::vector<double>& rows, size_t n) {
  pool.ParallelFor(0, n, [&](size_t i) {
    double local = Work(i);
    local += Extra(i);
    rows[i] = local;
  });
}
)cpp"}})).empty());
}

TEST(RuleParCaptureTest, ValueCapturesAreClean) {
  // A value capture is the worker's own copy; writes to it cannot
  // race across iterations.
  EXPECT_TRUE(Lint(TreeOf({{"src/sim/x.cc", R"cpp(
void F(ThreadPool& pool, std::vector<double>& rows, size_t n, double bias) {
  pool.ParallelFor(0, n, [&rows, bias](size_t i) mutable {
    bias *= 2;
    rows[i] = bias;
  });
}
)cpp"}})).empty());
}

TEST(RuleParCaptureTest, SubmitLambdasAreCovered) {
  const auto findings = Lint(TreeOf({{"src/sim/x.cc", R"cpp(
void F(ThreadPool& pool, size_t& done) {
  pool.Submit([&] {
    done++;
  });
}
)cpp"}}));
  ASSERT_TRUE(HasFinding(findings, "R7", "src/sim/x.cc", 4));
  EXPECT_NE(findings[0].message.find("Submit"), std::string::npos);
}

TEST(RuleParCaptureTest, PragmaAndAllowlistSuppress) {
  EXPECT_TRUE(Lint(TreeOf({{"src/sim/x.cc", R"cpp(
void F(ThreadPool& pool, std::vector<double>& rows, size_t n) {
  double total = 0.0;
  pool.ParallelFor(0, n, [&](size_t i) {
    total += Work(i);  // lint: par-capture-ok(guarded by rows mutex upstream)
    rows[i] = total;
  });
}
)cpp"}})).empty());

  const LintTree tree = TreeOf({{"src/sim/x.cc", kRacyParallelFor}});
  EXPECT_TRUE(Lint(tree, "R7 src/sim/x.cc by-reference capture 'total'\n")
                  .empty());
  const auto stale =
      Lint(tree, "R7 src/sim/x.cc by-reference capture 'total'\n"
                 "R7 src/sim/gone.cc by-reference capture 'x'\n");
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].rule, "allowlist");
  EXPECT_EQ(stale[0].line, 2u);
}

// --------------------------------------------------------------- R8

TEST(RuleSeedTest, FlagsLiteralSeeds) {
  const auto findings = Lint(TreeOf({{"src/sim/x.cc", R"cpp(
void F() {
  Rng rng(123);
}
)cpp"}}));
  ASSERT_TRUE(HasFinding(findings, "R8", "src/sim/x.cc", 3));
  EXPECT_NE(findings[0].message.find("DeriveSeed"), std::string::npos);
}

TEST(RuleSeedTest, DerivedAndNamedSeedsAreClean) {
  EXPECT_TRUE(Lint(TreeOf({{"src/sim/x.cc", R"cpp(
void F(uint64_t seed, size_t chunk, const Config& config) {
  Rng a(DeriveSeed(seed, chunk));
  Rng b(trial_seed);
  Rng c(config.seed);
  Rng d(kDemoSeed);
}
)cpp"}})).empty());
}

TEST(RuleSeedTest, FlagsByValueRngParameter) {
  const auto findings = Lint(TreeOf({{"src/sim/x.cc", R"cpp(
double G(Rng rng);
double H(Rng& rng);
double I(const Rng* rng);
)cpp"}}));
  ASSERT_TRUE(HasFinding(findings, "R8", "src/sim/x.cc", 2));
  EXPECT_NE(findings[0].message.find("forks the stream"), std::string::npos);
  EXPECT_FALSE(HasFinding(findings, "R8", "src/sim/x.cc", 3));
  EXPECT_FALSE(HasFinding(findings, "R8", "src/sim/x.cc", 4));
}

TEST(RuleSeedTest, MemberDeclarationsAndUtilRandomAreExempt) {
  EXPECT_TRUE(Lint(TreeOf({{"src/stream/arrival.h", R"cpp(
#ifndef LDPR_STREAM_ARRIVAL_H_
#define LDPR_STREAM_ARRIVAL_H_
class A {
  Rng rng_;
};
#endif  // LDPR_STREAM_ARRIVAL_H_
)cpp"}})).empty());
  EXPECT_TRUE(
      Lint(TreeOf({{"src/util/random.cc", "Rng MakeDefault() { return "
                                          "Rng(0x9E3779B97F4A7C15ULL); }\n"}}))
          .empty());
}

TEST(RuleSeedTest, ExamplesAreCoveredTestsAreNot) {
  // examples/*.cpp are runnable docs and lint like product code;
  // tests/ pin literal seeds on purpose and stay exempt.
  EXPECT_TRUE(HasFinding(Lint(TreeOf({{"examples/demo.cpp",
                                       "int main() { Rng rng(5); }\n"}})),
                         "R8", "examples/demo.cpp", 1));
  EXPECT_TRUE(Lint(TreeOf({{"tests/foo_test.cc",
                            "void T() { Rng rng(5); }\n"}}))
                  .empty());
}

TEST(RuleSeedTest, PragmaSuppresses) {
  EXPECT_TRUE(Lint(TreeOf({{"src/sim/x.cc", R"cpp(
void F() {
  Rng rng(123);  // lint: seed-ok(calibration stream, never trial-visible)
}
)cpp"}})).empty());
}

// ---------------------------------------------------------- emitters

const std::vector<Finding> kEmitterFindings = {
    {"src/ldp/grr.cc", 4, "R1", "uses std::random_device"},
    {"src/sim/x.cc", 9, "R8", "Rng constructed from '42'"},
};

TEST(FormatTest, SarifGoldenBytes) {
  const std::string expected = R"json({
  "version": "2.1.0",
  "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "ldpr_lint",
          "informationUri": "https://example.invalid/ldprecover/docs/architecture",
          "rules": [
            {"id": "R1", "shortDescription": {"text": "Banned nondeterminism source (rand/random_device/clock/lgamma)"}},
            {"id": "R2", "shortDescription": {"text": "Iteration over an unordered container in src/"}},
            {"id": "R3", "shortDescription": {"text": "Floating-point accumulation in a loop outside the exact-sum allowlist"}},
            {"id": "R4", "shortDescription": {"text": "Test/tool registration drift between CMake and the CI matrix"}},
            {"id": "R5", "shortDescription": {"text": "Non-canonical or missing include guard"}},
            {"id": "R6", "shortDescription": {"text": "Layer-DAG violation in the src/ include graph"}},
            {"id": "R7", "shortDescription": {"text": "By-reference capture written inside a parallel lambda"}},
            {"id": "R8", "shortDescription": {"text": "Rng seeded outside the DeriveSeed discipline"}},
            {"id": "allowlist", "shortDescription": {"text": "Stale allowlist entry that matches no finding"}}
          ]
        }
      },
      "results": [
        {
          "ruleId": "R1",
          "level": "error",
          "message": {"text": "uses std::random_device"},
          "locations": [{"physicalLocation": {"artifactLocation": {"uri": "src/ldp/grr.cc"}, "region": {"startLine": 4}}}]
        },
        {
          "ruleId": "R8",
          "level": "error",
          "message": {"text": "Rng constructed from '42'"},
          "locations": [{"physicalLocation": {"artifactLocation": {"uri": "src/sim/x.cc"}, "region": {"startLine": 9}}}]
        }
      ]
    }
  ]
}
)json";
  EXPECT_EQ(FindingsToSarif(kEmitterFindings), expected);
}

TEST(FormatTest, SarifEscapesJson) {
  const std::vector<Finding> findings = {
      {"src/a.cc", 1, "R1", "quote \" backslash \\ newline \n done"}};
  const std::string sarif = FindingsToSarif(findings);
  EXPECT_NE(sarif.find("quote \\\" backslash \\\\ newline \\n done"),
            std::string::npos);
}

TEST(FormatTest, GithubGoldenBytes) {
  EXPECT_EQ(FindingsToGithub(kEmitterFindings),
            "::error file=src/ldp/grr.cc,line=4,title=ldpr_lint R1::"
            "[R1] uses std::random_device\n"
            "::error file=src/sim/x.cc,line=9,title=ldpr_lint R8::"
            "[R8] Rng constructed from '42'\n");
  // Workflow-command escaping of %, CR, LF.
  const std::vector<Finding> tricky = {{"a.cc", 1, "R1", "50% bad\nnext"}};
  EXPECT_EQ(FindingsToGithub(tricky),
            "::error file=a.cc,line=1,title=ldpr_lint R1::"
            "[R1] 50%25 bad%0Anext\n");
}

// --------------------------------------------------------- fix mode

TEST(FixTest, CanonicalHeaderGuardMatchesRuleR5) {
  EXPECT_EQ(CanonicalHeaderGuard("src/ldp/grr.h"), "LDPR_LDP_GRR_H_");
  EXPECT_EQ(CanonicalHeaderGuard("src/util/thread_pool.h"),
            "LDPR_UTIL_THREAD_POOL_H_");
}

TEST(FixTest, PlansOnlyWrongGuards) {
  const LintTree tree = TreeOf({
      {"src/ldp/ok.h",
       "#ifndef LDPR_LDP_OK_H_\n#define LDPR_LDP_OK_H_\n#endif\n"},
      {"src/ldp/wrong.h",
       "#ifndef WRONG_H\n#define WRONG_H\n#endif  // WRONG_H\n"},
      {"src/ldp/none.h", "int x;\n"},  // guard-less: R5 finding, not fixable
  });
  const auto fixes = PlanHeaderGuardFixes(tree);
  ASSERT_EQ(fixes.size(), 1u);
  EXPECT_EQ(fixes[0].path, "src/ldp/wrong.h");
  EXPECT_EQ(fixes[0].old_guard, "WRONG_H");
  EXPECT_EQ(fixes[0].new_guard, "LDPR_LDP_WRONG_H_");
}

TEST(FixTest, ApplyRoundTripIsCleanAndIdempotent) {
  const std::string before =
      "#ifndef WRONG_H\n#define WRONG_H\n"
      "int wrong_h_count;  // WRONG_H_EXTRA must not be touched\n"
      "#endif  // WRONG_H\n";
  const HeaderGuardFix fix{"src/ldp/wrong.h", "WRONG_H", "LDPR_LDP_WRONG_H_"};
  const std::string after = ApplyHeaderGuardFix(before, fix);
  // All three guard mentions renamed; the token-boundary lookalikes
  // (lowercase identifier, WRONG_H_EXTRA) survive.
  EXPECT_EQ(after,
            "#ifndef LDPR_LDP_WRONG_H_\n#define LDPR_LDP_WRONG_H_\n"
            "int wrong_h_count;  // WRONG_H_EXTRA must not be touched\n"
            "#endif  // LDPR_LDP_WRONG_H_\n");
  // The rewritten header lints clean and a second application is a
  // no-op.
  const LintTree fixed = TreeOf({{"src/ldp/wrong.h", after}});
  EXPECT_TRUE(Lint(fixed).empty());
  EXPECT_TRUE(PlanHeaderGuardFixes(fixed).empty());
  EXPECT_EQ(ApplyHeaderGuardFix(after, fix), after);
}

// ------------------------------------------------------- golden run

#ifdef LDPR_SOURCE_DIR
// The roots the repo gates on.  ldpr_lint_clean in CMakeLists.txt and
// the CI lint job must scan exactly this list; the assertion below
// keeps them from drifting apart.
const std::vector<std::string> kGoldenRoots = {"src", "tools", "bench",
                                               "tests", "examples"};

TEST(GoldenTreeTest, RealTreeIsClean) {
  LintOptions options;
  options.repo_root = LDPR_SOURCE_DIR;
  options.allowlist_path = "ci/lint_allowlist.txt";
  options.roots = kGoldenRoots;
  auto result = RunLint(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const Finding& finding : result.value().findings) {
    ADD_FAILURE() << FormatFinding(finding);
  }
  EXPECT_GT(result.value().files_scanned, 100u);
  // The DOT artifact the CI job uploads is part of the result.
  EXPECT_NE(result.value().include_graph_dot.find("digraph ldpr_includes"),
            std::string::npos);
}

TEST(GoldenTreeTest, CMakeGateScansTheSameRoots) {
  std::ifstream in(std::string(LDPR_SOURCE_DIR) + "/CMakeLists.txt");
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string expected;
  for (const std::string& root : kGoldenRoots) {
    expected += expected.empty() ? root : " " + root;
  }
  // The ldpr_lint_clean ctest entry must name exactly these roots, in
  // this order, as the trailing arguments of its COMMAND.
  EXPECT_NE(buffer.str().find(expected + ")"), std::string::npos)
      << "ldpr_lint_clean in CMakeLists.txt does not scan '" << expected
      << "'";
}

TEST(GoldenTreeTest, SeededViolationIsCaught) {
  // The acceptance probe: a tree where src/ldp/grr.cc gains an R1
  // violation must produce exactly that finding, naming file, line,
  // and rule id.
  LintTree tree;
  tree.files.push_back(ScanSource(
      "src/ldp/grr.cc", "uint32_t Seed() { return std::random_device{}(); }\n"));
  const LintResult seeded = LintScannedTree(tree, "", "");
  ASSERT_EQ(seeded.findings.size(), 1u);
  EXPECT_EQ(seeded.findings[0].rule, "R1");
  EXPECT_EQ(seeded.findings[0].path, "src/ldp/grr.cc");
  EXPECT_EQ(seeded.findings[0].line, 1u);
}
#endif  // LDPR_SOURCE_DIR

}  // namespace
}  // namespace lint
}  // namespace ldpr
