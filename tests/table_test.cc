#include "util/table.h"

#include <gtest/gtest.h>

namespace ldpr {
namespace {

TEST(FormatScientificTest, MatchesPaperPrecision) {
  EXPECT_EQ(FormatScientific(5.89e-4), "5.890e-04");
  EXPECT_EQ(FormatScientific(1.21e-6), "1.210e-06");
  EXPECT_EQ(FormatScientific(0.0), "0.000e+00");
}

TEST(TablePrinterTest, RendersHeaderRowsAndSeparators) {
  TablePrinter t("Table I (IPUMS)", {"Before-Rec", "After-Rec"});
  t.AddRow("GRR", {5.89e-4, 5.31e-4});
  t.AddSeparator();
  t.AddRow("OUE", {3.81e-5, 5.33e-4});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("Table I (IPUMS)"), std::string::npos);
  EXPECT_NE(s.find("Before-Rec"), std::string::npos);
  EXPECT_NE(s.find("GRR"), std::string::npos);
  EXPECT_NE(s.find("5.890e-04"), std::string::npos);
  EXPECT_NE(s.find("3.810e-05"), std::string::npos);
  // Separator appears as a dashed line beyond the header's.
  size_t dashes = 0;
  for (size_t pos = s.find("\n--"); pos != std::string::npos;
       pos = s.find("\n--", pos + 1))
    ++dashes;
  EXPECT_GE(dashes, 2u);
}

TEST(TablePrinterTest, LongLabelsWidenColumn) {
  TablePrinter t("x", {"v"});
  t.AddRow("a-very-long-method-name", {1.0});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("a-very-long-method-name"), std::string::npos);
}

TEST(TablePrinterDeathTest, RowArityMustMatch) {
  TablePrinter t("x", {"a", "b"});
  EXPECT_DEATH(t.AddRow("r", {1.0}), "LDPR_CHECK");
}

}  // namespace
}  // namespace ldpr
