// Registry round-trip for the scenario layer: every id ldpr_bench
// --list reports resolves back through the registry, every grid spec
// lowers to a valid ExperimentConfig grid whose shape matches the
// declared columns, and a real (tiny) scenario run produces the
// CSV/JSONL/manifest triple the --out contract promises.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runner/manifest.h"
#include "runner/result_sink.h"
#include "runner/scenario_runner.h"
#include "scenarios.h"
#include "util/csv.h"

namespace ldpr {
namespace bench {
namespace {

class ScenarioRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterAllScenarios(); }
};

const char* const kExpectedIds[] = {
    "table1", "fig3",  "fig4",     "fig5",          "fig6",
    "fig7",   "fig8",  "fig9",     "fig10",         "ablation",
    "ext_protocols",   "scaling_n", "scaling_d",
    "streaming_equiv", "streaming_wave", "streaming_ramp",
    "streaming_drift", "shard_fault_loss", "shard_fault_mixed"};

TEST_F(ScenarioRegistryTest, EveryListedIdResolves) {
  const ScenarioRegistry& registry = ScenarioRegistry::Global();
  std::set<std::string> listed;
  for (const Scenario* scenario : registry.scenarios()) {
    EXPECT_EQ(registry.Find(scenario->spec.id), scenario);
    EXPECT_TRUE(listed.insert(scenario->spec.id).second)
        << "duplicate id " << scenario->spec.id;
  }
  for (const char* id : kExpectedIds) {
    EXPECT_NE(registry.Find(id), nullptr) << id;
  }
  EXPECT_EQ(registry.Find("no_such_scenario"), nullptr);
  EXPECT_EQ(registry.size(), std::size(kExpectedIds));
}

TEST_F(ScenarioRegistryTest, RegistrationIsIdempotent) {
  const size_t before = ScenarioRegistry::Global().size();
  RegisterAllScenarios();
  EXPECT_EQ(ScenarioRegistry::Global().size(), before);
}

TEST_F(ScenarioRegistryTest, SpecsValidateAndGridSpecsLower) {
  for (const Scenario* scenario : ScenarioRegistry::Global().scenarios()) {
    const ScenarioSpec& spec = scenario->spec;
    EXPECT_TRUE(ValidateScenarioSpec(spec).ok()) << spec.id;
    EXPECT_FALSE(spec.title.empty()) << spec.id;
    EXPECT_FALSE(spec.columns.empty()) << spec.id;
    for (const std::string& name : spec.datasets) {
      EXPECT_TRUE(ResolveBenchDataset(name, 0.01).ok())
          << spec.id << " dataset " << name;
    }
    for (const std::string& timing : spec.timing_columns) {
      EXPECT_NE(std::find(spec.columns.begin(), spec.columns.end(), timing),
                spec.columns.end())
          << spec.id << " timing column " << timing;
    }
    if (spec.custom) {
      EXPECT_NE(scenario->run, nullptr) << spec.id;
      // Custom scenarios own their loop; lowering must refuse them.
      EXPECT_FALSE(LowerScenario(spec, 2, 7).ok()) << spec.id;
      continue;
    }
    ASSERT_NE(scenario->format_row, nullptr) << spec.id;

    const auto lowered = LowerScenario(spec, /*trials=*/2, /*seed=*/7);
    ASSERT_TRUE(lowered.ok()) << spec.id << ": "
                              << lowered.status().ToString();
    EXPECT_FALSE(lowered->tables.empty()) << spec.id;
    size_t configs_seen = 0;
    for (const LoweredTable& table : lowered->tables) {
      EXPECT_FALSE(table.title.empty()) << spec.id;
      EXPECT_LT(table.dataset_index, spec.datasets.size()) << spec.id;
      EXPECT_FALSE(table.rows.empty()) << spec.id;
      for (const LoweredRow& row : table.rows) {
        EXPECT_FALSE(row.label.empty()) << spec.id;
        ASSERT_FALSE(row.configs.empty()) << spec.id;
        configs_seen += row.configs.size();
        for (const ExperimentConfig& config : row.configs) {
          EXPECT_GT(config.epsilon, 0.0) << spec.id;
          EXPECT_GE(config.pipeline.beta, 0.0) << spec.id;
          EXPECT_LT(config.pipeline.beta, 1.0) << spec.id;
          EXPECT_GT(config.eta, 0.0) << spec.id;
          EXPECT_EQ(config.trials, 2u) << spec.id;
          EXPECT_EQ(config.seed, 7u) << spec.id;
        }
        // The row formatter must produce exactly the declared
        // columns from this row's result vector.
        const std::vector<ExperimentResult> dummy(row.configs.size());
        EXPECT_EQ(scenario->format_row(dummy).size(), spec.columns.size())
            << spec.id;
      }
    }
    EXPECT_EQ(configs_seen, lowered->config_count) << spec.id;
  }
}

TEST_F(ScenarioRegistryTest, LoweringMatchesPaperGridShapes) {
  const ScenarioRegistry& registry = ScenarioRegistry::Global();
  // fig3: one 7-row table per dataset.
  const auto fig3 = LowerScenario(registry.Find("fig3")->spec, 1, 1);
  ASSERT_TRUE(fig3.ok());
  ASSERT_EQ(fig3->tables.size(), 2u);
  EXPECT_EQ(fig3->tables[0].rows.size(), 7u);
  EXPECT_EQ(fig3->tables[0].title, "Figure 3 (IPUMS): MSE");
  EXPECT_EQ(fig3->tables[0].rows[0].label, "Manip-GRR");
  // fig5: 3 protocols x 3 sweeps, 5 rows each, IPUMS only.
  const auto fig5 = LowerScenario(registry.Find("fig5")->spec, 1, 1);
  ASSERT_TRUE(fig5.ok());
  ASSERT_EQ(fig5->tables.size(), 9u);
  EXPECT_EQ(fig5->tables[0].title, "Fig 5/6 (IPUMS, AA-GRR): MSE vs beta");
  EXPECT_EQ(fig5->tables[0].rows.size(), 5u);
  EXPECT_EQ(fig5->tables[0].rows[0].label, "beta=0.001");
  // fig8: two configs per row (MGA vs MGA-IPA column pair).
  const auto fig8 = LowerScenario(registry.Find("fig8")->spec, 1, 1);
  ASSERT_TRUE(fig8.ok());
  ASSERT_EQ(fig8->tables.size(), 3u);
  ASSERT_EQ(fig8->tables[0].rows[0].configs.size(), 2u);
  EXPECT_EQ(fig8->tables[0].rows[0].configs[0].pipeline.attack,
            AttackKind::kMga);
  EXPECT_EQ(fig8->tables[0].rows[0].configs[1].pipeline.attack,
            AttackKind::kMgaIpa);
  // fig10: the multi-attacker count reaches the pipeline config.
  const auto fig10 = LowerScenario(registry.Find("fig10")->spec, 1, 1);
  ASSERT_TRUE(fig10.ok());
  EXPECT_EQ(fig10->tables[0].title,
            "Figure 10 (IPUMS, MUL-AA-GRR, 5 attackers): MSE");
  EXPECT_EQ(fig10->tables[0].rows[0].configs[0].pipeline.num_attackers, 5u);
}

TEST_F(ScenarioRegistryTest, ScalingScenariosLowerAlongDatasetAxes) {
  const ScenarioRegistry& registry = ScenarioRegistry::Global();

  // scaling_n: 2 datasets x 5 protocols, one table each, rows whose
  // n_override follows the declared user-count axis; each row carries
  // a genuine + MGA config pair.
  const Scenario* scaling_n = registry.Find("scaling_n");
  ASSERT_NE(scaling_n, nullptr);
  const std::vector<double>& n_axis = scaling_n->spec.sweeps[0].values;
  const auto lowered_n = LowerScenario(scaling_n->spec, 2, 7);
  ASSERT_TRUE(lowered_n.ok()) << lowered_n.status().ToString();
  ASSERT_EQ(lowered_n->tables.size(), 10u);
  for (const LoweredTable& table : lowered_n->tables) {
    ASSERT_EQ(table.rows.size(), n_axis.size());
    for (size_t i = 0; i < table.rows.size(); ++i) {
      const LoweredRow& row = table.rows[i];
      EXPECT_EQ(row.n_override, static_cast<uint64_t>(n_axis[i]));
      EXPECT_EQ(row.d_override, 0u);
      EXPECT_EQ(row.label,
                "n=" + std::to_string(static_cast<uint64_t>(n_axis[i])));
      ASSERT_EQ(row.configs.size(), 2u);
      EXPECT_EQ(row.configs[0].pipeline.attack, AttackKind::kNone);
      EXPECT_EQ(row.configs[1].pipeline.attack, AttackKind::kMga);
    }
  }
  EXPECT_EQ(lowered_n->tables[0].title,
            "Scaling (zipf, GRR): genuine vs MGA accuracy + throughput "
            "vs n");

  // scaling_d: the domain-size axis lands in d_override.
  const Scenario* scaling_d = registry.Find("scaling_d");
  ASSERT_NE(scaling_d, nullptr);
  const std::vector<double>& d_axis = scaling_d->spec.sweeps[0].values;
  const auto lowered_d = LowerScenario(scaling_d->spec, 2, 7);
  ASSERT_TRUE(lowered_d.ok()) << lowered_d.status().ToString();
  ASSERT_EQ(lowered_d->tables.size(), 5u);
  for (const LoweredTable& table : lowered_d->tables) {
    ASSERT_EQ(table.rows.size(), d_axis.size());
    for (size_t i = 0; i < table.rows.size(); ++i) {
      EXPECT_EQ(table.rows[i].d_override,
                static_cast<size_t>(d_axis[i]));
      EXPECT_EQ(table.rows[i].n_override, 0u);
    }
  }

  // The dataset axes resolve against the registered synthetic
  // generators: overrides re-shape zipf/uniform (pre-scale n, exact
  // d), and the fixed-shape paper stand-ins reject them.
  EXPECT_TRUE(BenchDatasetResizable("zipf"));
  EXPECT_TRUE(BenchDatasetResizable("uniform"));
  EXPECT_FALSE(BenchDatasetResizable("ipums"));
  const auto resized =
      ResolveBenchDataset("zipf", 0.01, /*d_override=*/64,
                          /*n_override=*/200000);
  ASSERT_TRUE(resized.ok());
  EXPECT_EQ(resized->domain_size(), 64u);
  EXPECT_EQ(resized->num_users(), 2000u);
  EXPECT_FALSE(ResolveBenchDataset("ipums", 0.01, 64, 0).ok());
  EXPECT_FALSE(ResolveBenchDataset("fire", 0.01, 0, 1000).ok());
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST_F(ScenarioRegistryTest, TinyRunProducesCsvJsonlAndManifest) {
  const Scenario* table1 = ScenarioRegistry::Global().Find("table1");
  ASSERT_NE(table1, nullptr);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "ldpr_registry_test")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  std::vector<std::unique_ptr<ResultSink>> sinks;
  sinks.push_back(std::make_unique<CsvSink>(dir + "/results.csv"));
  sinks.push_back(std::make_unique<JsonlSink>(dir + "/results.jsonl"));
  MultiSink sink(std::move(sinks));

  ScenarioRunOptions options;
  options.seed = 99;
  options.trials = 1;
  options.scale = 0.002;
  const auto report = RunScenario(*table1, options, sink);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(sink.Finish().ok());
  // Two datasets x one table x three protocol rows.
  EXPECT_EQ(report->tables, 2u);
  EXPECT_EQ(report->rows, 6u);

  const std::string csv = ReadFileOrDie(dir + "/results.csv");
  // Header + 6 data rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 7);
  EXPECT_NE(csv.find("scenario,table,row,Before-Rec,After-Rec"),
            std::string::npos);
  EXPECT_NE(csv.find("table1,Table I (IPUMS): LDPRecover on unpoisoned "
                     "frequencies,GRR,"),
            std::string::npos);
  const std::string jsonl = ReadFileOrDie(dir + "/results.jsonl");
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 6);
  EXPECT_NE(jsonl.find("{\"scenario\":\"table1\",\"table\":\"Table I "
                       "(IPUMS): LDPRecover on unpoisoned frequencies\","
                       "\"row\":\"GRR\",\"values\":{\"Before-Rec\":"),
            std::string::npos);

  // Manifest round-trip: fields survive serialization.
  ScenarioRunInfo info;
  info.seed = options.seed;
  info.scale = options.scale;
  info.trials = options.trials;
  info.threads = 4;
  RunManifest manifest = MakeRunManifest(table1->spec, info, *report,
                                         {"results.csv", "results.jsonl"});
  ASSERT_TRUE(WriteManifest(dir + "/manifest.json", manifest).ok());
  const std::string json = ReadFileOrDie(dir + "/manifest.json");
  EXPECT_NE(json.find("\"scenario\":\"table1\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":99"), std::string::npos);
  EXPECT_NE(json.find("\"scale\":0.002"), std::string::npos);
  EXPECT_NE(json.find("\"simd\":\""), std::string::npos);
  EXPECT_NE(json.find("\"git_describe\":"), std::string::npos);
  EXPECT_NE(json.find("\"files\":[\"results.csv\",\"results.jsonl\"]"),
            std::string::npos);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bench
}  // namespace ldpr
