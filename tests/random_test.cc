#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace ldpr {
namespace {

TEST(SplitMix64Test, DeterministicSequence) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, Deterministic) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformU64InRange) {
  Rng rng(7);
  for (uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.UniformU64(n), n);
  }
}

TEST(RngTest, UniformU64CoversAllValues) {
  Rng rng(11);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 2000; ++i) ++seen[rng.UniformU64(5)];
  for (int count : seen) EXPECT_GT(count, 300);  // ~400 expected
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.015);
}

TEST(RngTest, BinomialEdgeCases) {
  Rng rng(23);
  EXPECT_EQ(rng.Binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.Binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.Binomial(100, 1.0), 100u);
}

// Binomial mean/variance across the inversion (small np) and BTRS
// (large np) regimes, including the p > 0.5 flip path.
class BinomialMomentsTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(BinomialMomentsTest, MatchesTheoreticalMoments) {
  const auto [n, p] = GetParam();
  Rng rng(29);
  const int kSamples = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = static_cast<double>(rng.Binomial(n, p));
    ASSERT_LE(x, static_cast<double>(n));
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  const double expect_mean = static_cast<double>(n) * p;
  const double expect_var = static_cast<double>(n) * p * (1.0 - p);
  // 6-sigma tolerance on the sample mean, generous on variance.
  const double mean_tol =
      6.0 * std::sqrt(expect_var / kSamples) + 1e-9;
  EXPECT_NEAR(mean, expect_mean, mean_tol) << "n=" << n << " p=" << p;
  EXPECT_NEAR(var, expect_var, 0.12 * expect_var + 0.05)
      << "n=" << n << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, BinomialMomentsTest,
    ::testing::Values(std::make_tuple(20ULL, 0.1),      // inversion
                      std::make_tuple(50ULL, 0.5),      // BTRS boundary
                      std::make_tuple(1000ULL, 0.02),   // BTRS
                      std::make_tuple(1000ULL, 0.97),   // flip + inversion
                      std::make_tuple(100000ULL, 0.3),  // big BTRS
                      std::make_tuple(389894ULL, 0.05)));  // IPUMS scale

TEST(RngTest, JumpDecorrelates) {
  Rng a(31);
  Rng b(31);
  b.Jump();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next()) ? 1 : 0;
  EXPECT_EQ(equal, 0);
}

TEST(AliasSamplerTest, NormalizesWeights) {
  AliasSampler s({2.0, 6.0});
  EXPECT_DOUBLE_EQ(s.probability(0), 0.25);
  EXPECT_DOUBLE_EQ(s.probability(1), 0.75);
}

TEST(AliasSamplerTest, MatchesDistribution) {
  const std::vector<double> w = {0.1, 0.0, 0.4, 0.5};
  AliasSampler s(w);
  Rng rng(37);
  std::vector<int> counts(4, 0);
  const int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) ++counts[s.Sample(rng)];
  EXPECT_EQ(counts[1], 0);  // zero-weight item never drawn
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kSamples, w[i], 0.01);
  }
}

TEST(AliasSamplerTest, SingleElement) {
  AliasSampler s(std::vector<double>{3.0});
  Rng rng(41);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(s.Sample(rng), 0u);
}

TEST(ZipfSamplerTest, ProbabilitiesDecreaseAndSumToOne) {
  ZipfSampler z(100, 1.0);
  double total = 0.0;
  for (size_t i = 0; i < z.size(); ++i) {
    total += z.probability(i);
    if (i > 0) {
      EXPECT_LT(z.probability(i), z.probability(i - 1));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfSamplerTest, HeadIsHeavy) {
  ZipfSampler z(1000, 1.2);
  Rng rng(43);
  int head = 0;
  const int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) head += (z.Sample(rng) < 10) ? 1 : 0;
  // With s=1.2 the top-10 mass is > 55%.
  EXPECT_GT(head, kSamples / 2);
}

TEST(SampleMultinomialTest, ConservesTotal) {
  Rng rng(47);
  const std::vector<double> w = {1.0, 2.0, 3.0, 4.0};
  for (uint64_t n : {0ULL, 1ULL, 10ULL, 12345ULL}) {
    const auto counts = SampleMultinomial(n, w, rng);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0ULL), n);
  }
}

TEST(SampleMultinomialTest, MatchesProportions) {
  Rng rng(53);
  const std::vector<double> w = {1.0, 3.0};
  const auto counts = SampleMultinomial(100000, w, rng);
  EXPECT_NEAR(static_cast<double>(counts[0]) / 100000.0, 0.25, 0.01);
}

TEST(SampleMultinomialTest, ZeroWeightBinGetsNothing) {
  Rng rng(59);
  const auto counts = SampleMultinomial(10000, {1.0, 0.0, 1.0}, rng);
  EXPECT_EQ(counts[1], 0ULL);
}

TEST(SampleRandomDistributionTest, IsProbabilityVector) {
  Rng rng(61);
  for (int i = 0; i < 20; ++i) {
    const auto p = SampleRandomDistribution(50, rng);
    double total = 0.0;
    for (double x : p) {
      EXPECT_GT(x, 0.0);
      total += x;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(SampleRandomDistributionTest, MeanIsUniform) {
  Rng rng(67);
  const size_t d = 10;
  std::vector<double> mean(d, 0.0);
  const int kDraws = 5000;
  for (int i = 0; i < kDraws; ++i) {
    const auto p = SampleRandomDistribution(d, rng);
    for (size_t v = 0; v < d; ++v) mean[v] += p[v];
  }
  for (size_t v = 0; v < d; ++v) EXPECT_NEAR(mean[v] / kDraws, 0.1, 0.01);
}

TEST(SampleWithoutReplacementTest, DistinctAndInRange) {
  Rng rng(71);
  const auto pick = SampleWithoutReplacement(100, 30, rng);
  EXPECT_EQ(pick.size(), 30u);
  std::vector<uint32_t> sorted = pick;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (uint32_t v : pick) EXPECT_LT(v, 100u);
}

TEST(SampleWithoutReplacementTest, FullDomainIsPermutation) {
  Rng rng(73);
  auto pick = SampleWithoutReplacement(10, 10, rng);
  std::sort(pick.begin(), pick.end());
  for (uint32_t i = 0; i < 10; ++i) EXPECT_EQ(pick[i], i);
}

}  // namespace
}  // namespace ldpr
