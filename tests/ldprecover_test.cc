#include "recover/ldprecover.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ldp/grr.h"
#include "ldp/oue.h"
#include "recover/malicious_stats.h"
#include "util/math_util.h"
#include "util/metrics.h"

namespace ldpr {
namespace {

TEST(LdpRecoverTest, OutputIsAlwaysOnSimplex) {
  const Oue oue(20, 0.5);
  const LdpRecover recover(oue);
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> poisoned(20);
    for (double& x : poisoned) x = (rng.UniformDouble() - 0.3) * 0.4;
    EXPECT_TRUE(IsProbabilityVector(recover.Recover(poisoned), 1e-8));
  }
}

TEST(LdpRecoverTest, MaliciousMassSpreadsUniformlyOverPositives) {
  const Grr grr(5, 1.0);
  RecoverOptions opts;
  opts.eta = 0.1;
  const LdpRecover recover(grr, opts);
  // Items 0 and 3 are non-positive -> D0; the rest share the sum.
  const std::vector<double> poisoned = {0.0, 0.4, 0.5, -0.02, 0.12};
  const auto malicious = recover.EstimateMaliciousFrequencies(poisoned);
  EXPECT_DOUBLE_EQ(malicious[0], 0.0);
  EXPECT_DOUBLE_EQ(malicious[3], 0.0);
  const double share = ExpectedMaliciousFrequencySum(grr) / 3.0;
  EXPECT_NEAR(malicious[1], share, 1e-12);
  EXPECT_NEAR(malicious[2], share, 1e-12);
  EXPECT_NEAR(malicious[4], share, 1e-12);
}

TEST(LdpRecoverTest, GenuineEstimateFollowsEq27) {
  const Grr grr(4, 1.0);
  RecoverOptions opts;
  opts.eta = 0.25;
  const LdpRecover recover(grr, opts);
  const std::vector<double> poisoned = {0.4, 0.3, 0.2, 0.1};
  const auto malicious = recover.EstimateMaliciousFrequencies(poisoned);
  const auto genuine = recover.EstimateGenuineFrequencies(poisoned);
  for (size_t v = 0; v < 4; ++v) {
    EXPECT_NEAR(genuine[v], 1.25 * poisoned[v] - 0.25 * malicious[v], 1e-12);
  }
}

TEST(LdpRecoverStarTest, TargetSplitFollowsEq30) {
  const Oue oue(10, 0.5);
  RecoverOptions opts;
  opts.eta = 0.2;
  opts.known_targets = std::vector<ItemId>{2, 7};
  opts.paper_literal_subdomain_sum = false;  // test the exact split
  const LdpRecover star(oue, opts);
  const std::vector<double> poisoned(10, 0.1);
  const auto malicious = star.EstimateMaliciousFrequencies(poisoned);

  const double non_target_each =
      ZeroMassSubdomainSum(oue, 8, false) / 8.0;
  const double target_each = TargetSubdomainSum(oue, 8, false) / 2.0;
  for (size_t v = 0; v < 10; ++v) {
    if (v == 2 || v == 7) {
      EXPECT_NEAR(malicious[v], target_each, 1e-12);
    } else {
      EXPECT_NEAR(malicious[v], non_target_each, 1e-12);
    }
  }
  // Targets carry far more malicious mass than non-targets.
  EXPECT_GT(target_each, non_target_each);
}

TEST(LdpRecoverStarTest, PaperLiteralModeChangesSplit) {
  const Oue oue(10, 0.5);
  RecoverOptions exact_opts, literal_opts;
  exact_opts.known_targets = literal_opts.known_targets =
      std::vector<ItemId>{0};
  exact_opts.paper_literal_subdomain_sum = false;
  literal_opts.paper_literal_subdomain_sum = true;
  const LdpRecover exact(oue, exact_opts);
  const LdpRecover literal(oue, literal_opts);
  const std::vector<double> poisoned(10, 0.1);
  const auto m_exact = exact.EstimateMaliciousFrequencies(poisoned);
  const auto m_literal = literal.EstimateMaliciousFrequencies(poisoned);
  EXPECT_LT(m_literal[1], m_exact[1]);  // literal over-subtracts non-targets
  EXPECT_GT(m_literal[0], m_exact[0]);  // ...and over-assigns targets
  // Both splits conserve the total.
  EXPECT_NEAR(Sum(m_exact), Sum(m_literal), 1e-9);
}

TEST(LdpRecoverTest, MaliciousSumOverrideRespected) {
  const Grr grr(6, 0.5);
  RecoverOptions opts;
  opts.malicious_sum_override = 2.5;
  const LdpRecover recover(grr, opts);
  const std::vector<double> poisoned(6, 0.2);
  EXPECT_NEAR(Sum(recover.EstimateMaliciousFrequencies(poisoned)), 2.5,
              1e-12);
}

TEST(LdpRecoverTest, MaliciousVectorOverrideRespected) {
  const Grr grr(3, 0.5);
  RecoverOptions opts;
  opts.malicious_freqs_override = std::vector<double>{0.9, 0.1, 0.0};
  const LdpRecover recover(grr, opts);
  const auto m = recover.EstimateMaliciousFrequencies({0.3, 0.3, 0.4});
  EXPECT_DOUBLE_EQ(m[0], 0.9);
}

TEST(LdpRecoverTest, ExactMaliciousKnowledgeRecoversExactly) {
  // With f~_Y supplied exactly and eta = true m/n, Eq. (19) undoes the
  // mixture algebraically; the projection then only cleans rounding.
  const Grr grr(4, 1.0);
  const double eta = 0.25;
  const std::vector<double> genuine = {0.4, 0.3, 0.2, 0.1};
  const std::vector<double> malicious = {2.0, -0.4, -0.3, -0.3};
  std::vector<double> poisoned(4);
  for (size_t v = 0; v < 4; ++v)
    poisoned[v] = genuine[v] / (1 + eta) + eta * malicious[v] / (1 + eta);

  RecoverOptions opts;
  opts.eta = eta;
  opts.malicious_freqs_override = malicious;
  const LdpRecover recover(grr, opts);
  const auto recovered = recover.Recover(poisoned);
  for (size_t v = 0; v < 4; ++v) EXPECT_NEAR(recovered[v], genuine[v], 1e-9);
}

TEST(LdpRecoverTest, HasPartialKnowledgeFlag) {
  const Grr grr(5, 0.5);
  EXPECT_FALSE(LdpRecover(grr).has_partial_knowledge());
  RecoverOptions opts;
  opts.known_targets = std::vector<ItemId>{1};
  EXPECT_TRUE(LdpRecover(grr, opts).has_partial_knowledge());
}

TEST(LdpRecoverTest, AllNonPositivePoisonedYieldsZeroMalicious) {
  const Grr grr(3, 0.5);
  const LdpRecover recover(grr);
  const auto m = recover.EstimateMaliciousFrequencies({-0.1, 0.0, -0.2});
  EXPECT_DOUBLE_EQ(Sum(m), 0.0);
}

TEST(LdpRecoverDeathTest, RejectsNegativeEta) {
  const Grr grr(5, 0.5);
  RecoverOptions opts;
  opts.eta = -0.1;
  EXPECT_DEATH(LdpRecover(grr, opts), "LDPR_CHECK");
}

TEST(LdpRecoverDeathTest, RejectsOutOfDomainTargets) {
  const Grr grr(5, 0.5);
  RecoverOptions opts;
  opts.known_targets = std::vector<ItemId>{7};
  EXPECT_DEATH(LdpRecover(grr, opts), "LDPR_CHECK");
}

TEST(LdpRecoverDeathTest, RejectsAllItemsAsTargets) {
  const Grr grr(3, 0.5);
  RecoverOptions opts;
  opts.known_targets = std::vector<ItemId>{0, 1, 2};
  EXPECT_DEATH(LdpRecover(grr, opts), "LDPR_CHECK");
}

}  // namespace
}  // namespace ldpr
