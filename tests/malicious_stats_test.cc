#include "recover/malicious_stats.h"

#include <memory>

#include <gtest/gtest.h>

#include "ldp/factory.h"
#include "ldp/grr.h"
#include "util/math_util.h"

namespace ldpr {
namespace {

TEST(MaliciousStatsTest, MatchesEq21ForGrr) {
  const Grr grr(10, 1.0);
  const double expected =
      (1.0 - grr.q() * 10.0) / (grr.p() - grr.q());
  EXPECT_NEAR(ExpectedMaliciousFrequencySum(grr), expected, 1e-12);
}

TEST(MaliciousStatsTest, GrrSumIsExactlyOne) {
  // For GRR, q*d = d/(d-1+e^eps) and p-q = (e^eps-1)/(d-1+e^eps), so
  // (1 - qd)/(p - q) = (e^eps - 1 - 1 + ... ) — numerically it equals
  // (d-1+e^eps-d)/(e^eps-1) = 1.  A crafted GRR report supports
  // exactly one item, so its estimated frequencies sum to exactly 1.
  for (double eps : {0.1, 0.5, 1.0, 1.6}) {
    for (size_t d : {2u, 10u, 102u, 490u}) {
      const Grr grr(d, eps);
      EXPECT_NEAR(ExpectedMaliciousFrequencySum(grr), 1.0, 1e-9)
          << "d=" << d << " eps=" << eps;
    }
  }
}

TEST(MaliciousStatsTest, OueOneHotSumIsLargeNegative) {
  // Under the one-hot support model a crafted OUE vector sets a
  // single bit while genuine reports average ~1 + (d-1)q ones, so the
  // adjusted sum (1 - qd)/(p - q) is large and negative.  The
  // uniform-split recovery is insensitive to this offset (it cancels
  // in the simplex refinement), but the sign is a useful invariant.
  const auto oue = MakeProtocol(ProtocolKind::kOue, 102, 0.5);
  EXPECT_LT(ExpectedMaliciousFrequencySum(*oue), -100.0);
  // One-hot crafting means the crafted sum coincides with Eq. (21).
  EXPECT_NEAR(CraftedMaliciousFrequencySum(*oue),
              ExpectedMaliciousFrequencySum(*oue), 1e-9);
}

TEST(MaliciousStatsTest, OlhCraftedSumAccountsForCollisions) {
  // A crafted OLH report supports its item plus ~(d-1)/g colliding
  // items, so the crafted sum is (1 - q)/(p - q) > 0, not Eq. (21).
  const auto olh = MakeProtocol(ProtocolKind::kOlh, 102, 0.5);
  const double expected =
      (1.0 - olh->q()) / (olh->p() - olh->q());
  EXPECT_NEAR(CraftedMaliciousFrequencySum(*olh), expected, 1e-9);
  EXPECT_LT(ExpectedMaliciousFrequencySum(*olh), 0.0);
}

// The malicious sum matches the empirical sum of estimated
// frequencies of one-hot crafted reports for each protocol.
class MaliciousSumEmpiricalTest
    : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(MaliciousSumEmpiricalTest, MatchesCraftedReports) {
  const size_t d = 40;
  const auto proto = MakeProtocol(GetParam(), d, 0.5);
  Rng rng(7);
  const size_t m = 30000;
  std::vector<double> counts(d, 0.0);
  for (size_t i = 0; i < m; ++i) {
    const ItemId v = static_cast<ItemId>(rng.UniformU64(d));
    proto->AccumulateSupports(proto->CraftSupportingReport(v, rng), counts);
  }
  const double empirical = Sum(proto->EstimateFrequencies(counts, m));
  EXPECT_NEAR(empirical, CraftedMaliciousFrequencySum(*proto), 0.05);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, MaliciousSumEmpiricalTest,
                         ::testing::Values(ProtocolKind::kGrr,
                                           ProtocolKind::kOue,
                                           ProtocolKind::kOlh),
                         [](const auto& param_info) {
                           return std::string(ProtocolKindName(param_info.param));
                         });

TEST(MaliciousStatsTest, ZeroMassSubdomainExactForm) {
  const Grr grr(102, 0.5);
  const size_t dprime = 92;  // d - r with r = 10
  const double exact = ZeroMassSubdomainSum(grr, dprime, false);
  EXPECT_NEAR(exact, -grr.q() * 92.0 / (grr.p() - grr.q()), 1e-12);
}

TEST(MaliciousStatsTest, PaperLiteralUsesFullDomain) {
  const Grr grr(102, 0.5);
  const double literal = ZeroMassSubdomainSum(grr, 92, true);
  EXPECT_NEAR(literal, -grr.q() * 102.0 / (grr.p() - grr.q()), 1e-12);
  // Paper-literal is more negative than the exact form.
  EXPECT_LT(literal, ZeroMassSubdomainSum(grr, 92, false));
}

TEST(MaliciousStatsTest, SplitSumsToTotal) {
  // Eq. (29): sub-domain sums must recompose to the full-domain sum,
  // in both exact and paper-literal modes.
  const auto oue = MakeProtocol(ProtocolKind::kOue, 102, 0.5);
  for (bool literal : {false, true}) {
    const double total = ExpectedMaliciousFrequencySum(*oue);
    const double non_target = ZeroMassSubdomainSum(*oue, 92, literal);
    const double target = TargetSubdomainSum(*oue, 92, literal);
    EXPECT_NEAR(non_target + target, total, 1e-12);
  }
}

TEST(MaliciousStatsTest, ZeroMassSubdomainMatchesEmpirically) {
  // Craft MGA-style GRR reports on targets {0..9}; the estimated
  // frequency sum over non-targets concentrates on Eq. (28) (exact
  // form).
  const size_t d = 60;
  const Grr grr(d, 0.5);
  Rng rng(9);
  const size_t m = 40000;
  std::vector<double> counts(d, 0.0);
  for (size_t i = 0; i < m; ++i) {
    Report r;
    r.value = static_cast<uint32_t>(rng.UniformU64(10));  // targets 0..9
    grr.AccumulateSupports(r, counts);
  }
  const auto freqs = grr.EstimateFrequencies(counts, m);
  double non_target_sum = 0.0;
  for (size_t v = 10; v < d; ++v) non_target_sum += freqs[v];
  EXPECT_NEAR(non_target_sum, ZeroMassSubdomainSum(grr, d - 10, false), 0.02);
}

}  // namespace
}  // namespace ldpr
