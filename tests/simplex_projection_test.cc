#include "recover/simplex_projection.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "util/math_util.h"
#include "util/metrics.h"
#include "util/random.h"

namespace ldpr {
namespace {

TEST(SimplexProjectionTest, FixedPointOnSimplex) {
  const std::vector<double> v = {0.2, 0.3, 0.5};
  const auto out = ProjectToSimplexKkt(v);
  for (size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(out[i], v[i], 1e-12);
}

TEST(SimplexProjectionTest, UniformShiftWhenAllStayPositive) {
  // Sum is 1.2, all entries large: each loses 0.2/4 = 0.05.
  const std::vector<double> v = {0.3, 0.3, 0.3, 0.3};
  const auto out = ProjectToSimplexKkt(v);
  for (double x : out) EXPECT_NEAR(x, 0.25, 1e-12);
}

TEST(SimplexProjectionTest, NegativesClampToZero) {
  const std::vector<double> v = {-0.5, 0.8, 0.9};
  const auto out = ProjectToSimplexKkt(v);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_TRUE(IsProbabilityVector(out));
  // The two positives split the excess evenly: 0.8 and 0.9 shift by
  // ((0.8+0.9)-1)/2 = 0.35 each.
  EXPECT_NEAR(out[1], 0.45, 1e-12);
  EXPECT_NEAR(out[2], 0.55, 1e-12);
}

TEST(SimplexProjectionTest, CascadingRemovals) {
  // First pass drives a small positive negative; a second pass must
  // remove it too (Algorithm 1's while loop).
  const std::vector<double> v = {0.05, 0.9, 0.9};
  const auto out = ProjectToSimplexKkt(v);
  EXPECT_TRUE(IsProbabilityVector(out));
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_GE(SimplexProjectionIterations(v), 2u);
}

TEST(SimplexProjectionTest, PreservesOrdering) {
  Rng rng(1);
  std::vector<double> v(20);
  for (double& x : v) x = rng.UniformDouble() * 2.0 - 0.5;
  const auto out = ProjectToSimplexKkt(v);
  for (size_t i = 0; i < v.size(); ++i) {
    for (size_t j = 0; j < v.size(); ++j) {
      if (v[i] < v[j]) {
        EXPECT_LE(out[i], out[j] + 1e-12);
      }
    }
  }
}

TEST(SimplexProjectionTest, IsEuclideanProjection) {
  // The KKT solution minimizes ||f' - f~||_2 over the simplex, so no
  // random simplex point may be closer to the input.
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> v(8);
    for (double& x : v) x = rng.UniformDouble() * 1.5 - 0.4;
    const auto proj = ProjectToSimplexKkt(v);
    const double best = L2Distance(v, proj);
    for (int probe = 0; probe < 50; ++probe) {
      const auto candidate = SampleRandomDistribution(8, rng);
      EXPECT_GE(L2Distance(v, candidate) + 1e-12, best);
    }
  }
}

TEST(SimplexProjectionTest, AllNegativeInputProjectsByShift) {
  // {-0.9, -0.1, -0.5}: the first pass shifts by -0.833 and removes
  // index 0; the second pass shifts the survivors by -0.8, yielding
  // the Euclidean projection {0, 0.7, 0.3}.
  const std::vector<double> v = {-0.9, -0.1, -0.5};
  const auto out = ProjectToSimplexKkt(v);
  EXPECT_TRUE(IsProbabilityVector(out));
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_NEAR(out[1], 0.7, 1e-12);
  EXPECT_NEAR(out[2], 0.3, 1e-12);
}

TEST(SimplexProjectionTest, SingleElement) {
  const auto out = ProjectToSimplexKkt({0.3});
  EXPECT_DOUBLE_EQ(out[0], 1.0);
}

TEST(SimplexProjectionTest, LargeRandomInputsAlwaysValid) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> v(490);
    for (double& x : v) x = (rng.UniformDouble() - 0.45) * 0.1;
    const auto out = ProjectToSimplexKkt(v);
    EXPECT_TRUE(IsProbabilityVector(out, 1e-8));
  }
}

TEST(SimplexProjectionTest, IterationCountBounded) {
  // Each pass removes at least one item, so iterations <= d.
  Rng rng(4);
  std::vector<double> v(100);
  for (double& x : v) x = rng.UniformDouble() - 0.5;
  EXPECT_LE(SimplexProjectionIterations(v), 100u);
}

// The dense-scan reference implementation the active-index compaction
// in simplex_projection.cc must match bit for bit: every pass rescans
// all d items, summing active entries in ascending index order.
std::vector<double> ReferenceProject(const std::vector<double>& estimate) {
  const size_t d = estimate.size();
  std::vector<uint8_t> active(d, 1);
  size_t active_count = d;
  std::vector<double> out(d, 0.0);
  while (true) {
    double active_sum = 0.0;
    for (size_t v = 0; v < d; ++v) {
      if (active[v]) active_sum += estimate[v];
    }
    const double shift = (active_sum - 1.0) / static_cast<double>(active_count);
    bool any_negative = false;
    for (size_t v = 0; v < d; ++v) {
      if (!active[v]) continue;
      const double value = estimate[v] - shift;
      if (value < 0.0) {
        active[v] = 0;
        --active_count;
        out[v] = 0.0;
        any_negative = true;
      } else {
        out[v] = value;
      }
    }
    if (!any_negative) break;
  }
  return out;
}

TEST(SimplexProjectionTest, BitIdenticalToDenseScanOnRandomInputs) {
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> v(257);
    for (double& x : v) x = (rng.UniformDouble() - 0.45) * 0.2;
    // EXPECT_EQ on vector<double> is bitwise equality per entry.
    EXPECT_EQ(ProjectToSimplexKkt(v), ReferenceProject(v)) << trial;
  }
}

TEST(SimplexProjectionTest, BitIdenticalToDenseScanOnAdversarialInputs) {
  // MGA-boosted shape: a few hugely boosted targets force most of the
  // domain negative, deactivating items over many cascading passes —
  // exactly the regime where the compaction pays off.
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> v(1024);
    for (double& x : v) x = rng.UniformDouble() * 0.002 - 0.0015;
    for (int t = 0; t < 10; ++t)
      v[rng.UniformU64(v.size())] = 0.5 + rng.UniformDouble();
    EXPECT_EQ(ProjectToSimplexKkt(v), ReferenceProject(v)) << trial;
    EXPECT_TRUE(IsProbabilityVector(ProjectToSimplexKkt(v), 1e-8));
  }
}

TEST(SimplexProjectionDeathTest, RejectsEmptyInput) {
  EXPECT_DEATH(ProjectToSimplexKkt({}), "LDPR_CHECK");
}

}  // namespace
}  // namespace ldpr
