#include "ldp/grr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/metrics.h"

namespace ldpr {
namespace {

TEST(GrrTest, ProbabilitiesMatchEq2) {
  const Grr grr(10, 1.0);
  const double e = std::exp(1.0);
  EXPECT_NEAR(grr.p(), e / (9.0 + e), 1e-12);
  EXPECT_NEAR(grr.q(), 1.0 / (9.0 + e), 1e-12);
  // The LDP constraint: p/q = e^eps.
  EXPECT_NEAR(grr.p() / grr.q(), e, 1e-12);
}

TEST(GrrTest, PerturbStaysInDomain) {
  const Grr grr(5, 0.5);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const Report r = grr.Perturb(3, rng);
    EXPECT_LT(r.value, 5u);
  }
}

TEST(GrrTest, PerturbKeepsWithProbabilityP) {
  const Grr grr(4, 2.0);
  Rng rng(2);
  int kept = 0;
  const int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i)
    kept += (grr.Perturb(1, rng).value == 1) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(kept) / kTrials, grr.p(), 0.01);
}

TEST(GrrTest, MisreportsAreUniformOverOthers) {
  const Grr grr(4, 0.5);
  Rng rng(3);
  std::vector<int> counts(4, 0);
  const int kTrials = 60000;
  for (int i = 0; i < kTrials; ++i) ++counts[grr.Perturb(0, rng).value];
  // Items 1..3 each get q fraction.
  for (int v = 1; v < 4; ++v)
    EXPECT_NEAR(static_cast<double>(counts[v]) / kTrials, grr.q(), 0.01);
}

TEST(GrrTest, SupportIsExactlyTheReportedItem) {
  const Grr grr(6, 1.0);
  Report r;
  r.value = 4;
  for (ItemId v = 0; v < 6; ++v) EXPECT_EQ(grr.Supports(r, v), v == 4);
}

TEST(GrrTest, AccumulateSupportsAddsOneCount) {
  const Grr grr(3, 1.0);
  std::vector<double> counts(3, 0.0);
  Report r;
  r.value = 2;
  grr.AccumulateSupports(r, counts);
  grr.AccumulateSupports(r, counts);
  EXPECT_DOUBLE_EQ(counts[2], 2.0);
  EXPECT_DOUBLE_EQ(counts[0], 0.0);
}

TEST(GrrTest, EstimationIsUnbiased) {
  const size_t d = 8;
  const Grr grr(d, 1.0);
  Rng rng(4);
  // 40% item 0, 60% item 5.
  std::vector<uint64_t> item_counts(d, 0);
  item_counts[0] = 40000;
  item_counts[5] = 60000;
  const auto counts = grr.SampleSupportCounts(item_counts, rng);
  const auto freqs = grr.EstimateFrequencies(counts, 100000);
  EXPECT_NEAR(freqs[0], 0.4, 0.02);
  EXPECT_NEAR(freqs[5], 0.6, 0.02);
  for (ItemId v : {1u, 2u, 3u, 4u, 6u, 7u}) EXPECT_NEAR(freqs[v], 0.0, 0.02);
}

TEST(GrrTest, SampledCountsConserveUsers) {
  const Grr grr(5, 0.5);
  Rng rng(5);
  const std::vector<uint64_t> item_counts = {100, 0, 250, 3, 47};
  const auto counts = grr.SampleSupportCounts(item_counts, rng);
  double total = 0.0;
  for (double c : counts) total += c;
  // GRR reports support exactly one item each.
  EXPECT_DOUBLE_EQ(total, 400.0);
}

TEST(GrrTest, CountVarianceMatchesEq4) {
  const size_t d = 10;
  const double eps = 1.0;
  const Grr grr(d, eps);
  const double e = std::exp(eps);
  const size_t n = 1000;
  const double f = 0.3;
  const double expected = n * (d - 2.0 + e) / ((e - 1.0) * (e - 1.0)) +
                          n * f * (d - 2.0) / (e - 1.0);
  EXPECT_NEAR(grr.CountVariance(f, n), expected, 1e-9);
  EXPECT_NEAR(grr.FrequencyVariance(f, n), expected / (1.0 * n * n), 1e-12);
}

TEST(GrrTest, EmpiricalVarianceMatchesTheory) {
  const size_t d = 16;
  const Grr grr(d, 1.0);
  Rng rng(6);
  const size_t n = 5000;
  std::vector<uint64_t> item_counts(d, 0);
  item_counts[3] = n / 2;
  item_counts[9] = n / 2;
  RunningStat est;
  for (int trial = 0; trial < 300; ++trial) {
    const auto counts = grr.SampleSupportCounts(item_counts, rng);
    est.Add(grr.EstimateFrequencies(counts, n)[3]);
  }
  EXPECT_NEAR(est.mean(), 0.5, 0.01);
  const double theory = grr.FrequencyVariance(0.5, n);
  EXPECT_NEAR(est.variance(), theory, 0.35 * theory);
}

TEST(GrrTest, CraftSupportingReportIsDeterministicSupport) {
  const Grr grr(7, 0.5);
  Rng rng(7);
  for (ItemId v = 0; v < 7; ++v) {
    const Report r = grr.CraftSupportingReport(v, rng);
    EXPECT_TRUE(grr.Supports(r, v));
  }
}

TEST(GrrDeathTest, RejectsTinyDomain) {
  EXPECT_DEATH(Grr(1, 1.0), "LDPR_CHECK");
}

TEST(GrrDeathTest, RejectsNonPositiveEpsilon) {
  EXPECT_DEATH(Grr(4, 0.0), "LDPR_CHECK");
}

}  // namespace
}  // namespace ldpr
