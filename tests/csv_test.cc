#include "util/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace ldpr {
namespace {

TEST(SplitCsvLineTest, PlainFields) {
  const auto f = SplitCsvLine("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(SplitCsvLineTest, EmptyFields) {
  const auto f = SplitCsvLine(",x,");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "");
  EXPECT_EQ(f[2], "");
}

TEST(SplitCsvLineTest, QuotedCommaAndQuotes) {
  const auto f = SplitCsvLine(R"("a,b","say ""hi""",plain)");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a,b");
  EXPECT_EQ(f[1], "say \"hi\"");
  EXPECT_EQ(f[2], "plain");
}

TEST(SplitCsvLineTest, StripsCarriageReturn) {
  const auto f = SplitCsvLine("a,b\r");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[1], "b");
}

class CsvFileTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/ldpr_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvFileTest, RoundTripThroughWriterAndReader) {
  {
    CsvWriter w(path_);
    ASSERT_TRUE(w.ok());
    w.WriteRow({"city", "count"});
    w.WriteRow({"San Francisco, CA", "42"});
    w.WriteNumericRow("mse", {1.5e-3, 2.0});
  }
  auto rows_or = ReadCsvFile(path_);
  ASSERT_TRUE(rows_or.ok());
  const auto& rows = rows_or.value();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], "city");
  EXPECT_EQ(rows[1][0], "San Francisco, CA");  // quoting survived
  EXPECT_EQ(rows[2][0], "mse");
  EXPECT_EQ(rows[2].size(), 3u);
}

TEST_F(CsvFileTest, SkipsEmptyLines) {
  {
    std::ofstream out(path_);
    out << "a,b\n\n\nc,d\n";
  }
  auto rows_or = ReadCsvFile(path_);
  ASSERT_TRUE(rows_or.ok());
  EXPECT_EQ(rows_or.value().size(), 2u);
}

TEST(CsvFileErrorTest, MissingFileIsNotFound) {
  auto rows_or = ReadCsvFile("/nonexistent/dir/file.csv");
  ASSERT_FALSE(rows_or.ok());
  EXPECT_EQ(rows_or.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ldpr
