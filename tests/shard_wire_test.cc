// Wire-format locks for src/shard/wire.h: golden bytes of one fully
// specified record (any encoder change must consciously bump the
// version), loss-free round-trips including 64-bit seeds a JSON
// double cannot hold, and the rejection contract — torn frames,
// flipped payload bits, wrong versions, and malformed payloads all
// refuse to decode.

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "shard/wire.h"

namespace ldpr {
namespace {

PartialRecord MakeRecord() {
  PartialRecord record;
  record.spec.protocol = ProtocolKind::kOue;
  record.spec.epsilon = 0.5;
  record.spec.dataset = "zipf";
  record.spec.d_override = 16;
  record.spec.n_override = 1000;
  record.spec.scale = 1.0;
  record.spec.attack = AttackKind::kMga;
  record.spec.beta = 0.05;
  record.spec.num_targets = 10;
  record.spec.eta = 0.2;
  record.spec.seed = 0xDEADBEEFCAFEBABEull;  // > 2^53: breaks JSON doubles
  record.spec.chunking.users_per_chunk = 64;
  record.spec.chunking.reports_per_chunk = 8;
  record.source = kShardSourceGenuine;
  record.chunk_begin = 2;
  record.chunk_end = 5;
  record.unit_begin = 128;
  record.unit_end = 320;
  record.counts = {0.0, 3.0, 17.0, 192.0};
  return record;
}

// The exact bytes of the record above.  This is the compatibility
// contract: if this test fails, the change is a wire-format break and
// kShardWireVersion must be bumped.
constexpr char kGoldenLine[] =
    "{\"payload\":{\"version\":1,\"spec\":{\"protocol\":\"OUE\","
    "\"epsilon\":0.5,\"dataset\":\"zipf\",\"d\":16,\"n\":1000,\"scale\":1,"
    "\"attack\":\"MGA\",\"beta\":0.05,\"targets\":10,\"eta\":0.2,"
    "\"seed\":\"deadbeefcafebabe\",\"users_per_chunk\":64,"
    "\"reports_per_chunk\":8},\"source\":\"genuine\",\"chunk_begin\":2,"
    "\"chunk_end\":5,\"unit_begin\":128,\"unit_end\":320,"
    "\"counts\":[0,3,17,192]},\"crc64\":\"fd7f66ef91f03843\"}\n";

TEST(ShardWireTest, GoldenBytes) {
  EXPECT_EQ(EncodePartialLine(MakeRecord()), kGoldenLine);
}

TEST(ShardWireTest, RoundTripIsLossFree) {
  const PartialRecord record = MakeRecord();
  const std::string line = EncodePartialLine(record);
  const auto decoded = DecodePartialLine(line);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(ShardTaskSpecsEqual(decoded->spec, record.spec));
  EXPECT_EQ(decoded->spec.seed, record.spec.seed);
  EXPECT_EQ(decoded->source, record.source);
  EXPECT_EQ(decoded->chunk_begin, record.chunk_begin);
  EXPECT_EQ(decoded->chunk_end, record.chunk_end);
  EXPECT_EQ(decoded->unit_begin, record.unit_begin);
  EXPECT_EQ(decoded->unit_end, record.unit_end);
  EXPECT_EQ(decoded->counts, record.counts);
  // encode(decode(line)) == line, byte for byte.
  EXPECT_EQ(EncodePartialLine(*decoded), line);
}

TEST(ShardWireTest, DecodeAcceptsLineWithoutTrailingNewline) {
  std::string line = EncodePartialLine(MakeRecord());
  line.pop_back();
  EXPECT_TRUE(DecodePartialLine(line).ok());
}

TEST(ShardWireTest, EveryTruncationIsRejected) {
  const std::string line = EncodePartialLine(MakeRecord());
  // A torn write can stop after any byte; no prefix may decode.
  for (size_t len = 0; len + 1 < line.size(); len += 7)
    EXPECT_FALSE(DecodePartialLine(line.substr(0, len)).ok()) << len;
}

TEST(ShardWireTest, EveryPayloadBitFlipIsRejected) {
  const std::string line = EncodePartialLine(MakeRecord());
  const size_t payload_begin = std::string("{\"payload\":").size();
  const size_t payload_end = line.rfind(",\"crc64\":");
  ASSERT_NE(payload_end, std::string::npos);
  for (size_t i = payload_begin; i < payload_end; i += 11) {
    for (int bit : {0, 3, 7}) {
      std::string flipped = line;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      EXPECT_FALSE(DecodePartialLine(flipped).ok())
          << "byte " << i << " bit " << bit;
    }
  }
}

TEST(ShardWireTest, WrongVersionIsRejected) {
  // Re-frame a version-bumped payload with a *valid* checksum: the
  // version check itself must reject it, not the CRC.
  std::string line = EncodePartialLine(MakeRecord());
  const std::string old_payload = "{\"version\":1,";
  const std::string new_payload = "{\"version\":2,";
  const size_t at = line.find(old_payload);
  ASSERT_NE(at, std::string::npos);
  line.replace(at, old_payload.size(), new_payload);
  const auto decoded = DecodePartialLine(line);
  EXPECT_FALSE(decoded.ok());
}

TEST(ShardWireTest, GarbageIsRejected) {
  for (const char* junk :
       {"", "\n", "{}", "not json at all",
        "{\"payload\":{},\"crc64\":\"0000000000000000\"}",
        "{\"payload\":{\"version\":1},\"crc64\":\"zz\"}"}) {
    EXPECT_FALSE(DecodePartialLine(junk).ok()) << junk;
  }
}

TEST(ShardWireTest, FileRoundTrip) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ldpr_shard_wire").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/partial.jsonl";

  PartialRecord second = MakeRecord();
  second.source = kShardSourceMalicious;
  second.chunk_begin = 0;
  second.chunk_end = 1;
  second.unit_begin = 0;
  second.unit_end = 8;
  second.counts = {1.0, 0.0, 5.0, 2.0};
  const std::vector<PartialRecord> records = {MakeRecord(), second};

  ASSERT_TRUE(WritePartialFile(path, records).ok());
  const auto lines = ReadPartialLines(path);
  ASSERT_TRUE(lines.ok()) << lines.status().ToString();
  ASSERT_EQ(lines->size(), 2u);
  for (size_t i = 0; i < records.size(); ++i) {
    const auto decoded = DecodePartialLine((*lines)[i]);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->source, records[i].source);
    EXPECT_EQ(decoded->counts, records[i].counts);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ldpr
